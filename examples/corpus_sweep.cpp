/**
 * @file
 * Corpus-scale scenario: evaluate ITS inference across a user-defined
 * mini-corpus and print per-vendor precision, the way §4.2 evaluates
 * the 59-sample dataset — but parameterized, so it doubles as a
 * template for running FITS over your own image collection.
 *
 * Usage: corpus_sweep [samples-per-vendor]   (default 4)
 */

#include <cstdio>
#include <cstdlib>
#include <map>

#include "eval/corpus_runner.hh"
#include "support/strings.hh"
#include "eval/tables.hh"
#include "synth/firmware_gen.hh"

int
main(int argc, char **argv)
{
    using namespace fits;

    int perVendor = 4;
    if (argc > 1)
        perVendor = std::max(1, std::atoi(argv[1]));

    const synth::VendorProfile profiles[] = {
        synth::netgearProfile(), synth::dlinkProfile(),
        synth::tplinkProfile(), synth::tendaProfile(),
        synth::ciscoProfile()};

    const eval::CorpusRunner runner;
    std::printf("sweeping %d samples per vendor across %zu workers "
                "(FITS_JOBS overrides)...\n\n",
                perVendor, runner.jobs());

    eval::TablePrinter table({"Vendor", "#FW", "Top-1", "Top-2",
                              "Top-3", "Avg functions",
                              "Avg time (ms)"});
    eval::PrecisionStats overall;

    for (const auto &profile : profiles) {
        std::vector<synth::SampleSpec> specs;
        for (int i = 0; i < perVendor; ++i) {
            synth::SampleSpec spec;
            spec.profile = profile;
            spec.product =
                profile.series[static_cast<std::size_t>(i) %
                               profile.series.size()];
            spec.version = support::format("V1.0.%d", i);
            spec.name = spec.product + "-" + spec.version;
            spec.seed = 0x5feed00 + 131 * static_cast<unsigned>(i) +
                        support::fnv1a(profile.vendor);
            specs.push_back(std::move(spec));
        }

        eval::PrecisionStats stats;
        double totalMs = 0.0;
        std::size_t totalFns = 0;
        for (const auto &outcome :
             runner.runInferenceOnSpecs(specs)) {
            const int rank = outcome.ok ? outcome.firstItsRank : -1;
            stats.addRank(rank);
            overall.addRank(rank);
            totalMs += outcome.analysisMs;
            totalFns += outcome.numFunctions;
        }
        table.addRow({profile.vendor, std::to_string(perVendor),
                      eval::percent(stats.p1()),
                      eval::percent(stats.p2()),
                      eval::percent(stats.p3()),
                      std::to_string(totalFns /
                                     static_cast<std::size_t>(
                                         perVendor)),
                      eval::fixed(totalMs / perVendor, 1)});
    }
    table.addSeparator();
    table.addRow({"Overall", std::to_string(overall.total),
                  eval::percent(overall.p1()),
                  eval::percent(overall.p2()),
                  eval::percent(overall.p3()), "-", "-"});
    table.print();

    std::printf("\nTo run against your own firmware, replace the "
                "generator calls with images\nread from disk and "
                "verify the top-3 candidates by hand (Appendix A of "
                "the paper\ndescribes rehosting / device debugging / "
                "version diffing for that step).\n");
    return 0;
}
