/**
 * @file
 * Reverse-engineering scenario: dig into one stripped network binary —
 * sections, imports, anchor functions, the behavior feature vectors
 * the ranking is built from, the clustering statistics of Algorithm 2,
 * and the lifted IR of the top-ranked function. This is the example to
 * read to understand *why* FITS ranks a function as an ITS.
 */

#include <cstdio>

#include "analysis/program_analysis.hh"
#include "core/anchors.hh"
#include "core/behavior.hh"
#include "core/infer.hh"
#include "firmware/fwimg.hh"
#include "firmware/select.hh"
#include "ir/printer.hh"
#include "support/strings.hh"
#include "synth/firmware_gen.hh"

namespace {

using namespace fits;

void
printBfv(const char *tag, const core::Bfv &bfv)
{
    std::printf("  %-24s bb=%3.0f loop=%d callers=%4.0f params=%.0f "
                "anchors=%2.0f libs=%2.0f pcl=%d pcb=%d pta=%d "
                "str=%d nstr=%3.0f\n",
                tag, bfv.numBlocks, bfv.hasLoop ? 1 : 0,
                bfv.numCallers, bfv.numParams, bfv.numAnchorCalls,
                bfv.numLibCalls, bfv.paramsControlLoop ? 1 : 0,
                bfv.paramsControlBranch ? 1 : 0,
                bfv.paramsToAnchor ? 1 : 0,
                bfv.argsHaveStrings ? 1 : 0, bfv.numDistinctStrings);
}

} // namespace

int
main()
{
    synth::SampleSpec spec;
    spec.profile = synth::netgearProfile();
    spec.profile.minCustomFns = 300;
    spec.profile.maxCustomFns = 400;
    spec.product = "R7800";
    spec.version = "V1.0.2.32";
    spec.name = spec.product + "-" + spec.version;
    spec.seed = 0x7800;
    const auto firmware = synth::generateFirmware(spec);

    auto unpacked = fw::unpackFirmware(firmware.bytes);
    auto target = fw::selectAnalysisTarget(unpacked.value().filesystem);
    const bin::BinaryImage &image = *target.value().main;

    // --- what the loader sees ---------------------------------------
    std::printf("=== %s (stripped: %s, arch %s) ===\n\n",
                image.name.c_str(), image.stripped ? "yes" : "no",
                bin::archName(image.arch));
    std::printf("sections:\n");
    for (const auto &sec : image.sections) {
        std::printf("  %-10s %s  %6zu bytes  [%c%c%c]\n",
                    sec.name.c_str(),
                    support::hex(sec.addr).c_str(), sec.bytes.size(),
                    (sec.flags & bin::kSecRead) ? 'r' : '-',
                    (sec.flags & bin::kSecWrite) ? 'w' : '-',
                    (sec.flags & bin::kSecExec) ? 'x' : '-');
    }
    std::printf("functions: %zu (all nameless), imports: %zu\n",
                image.program.size(), image.imports.size());
    std::printf("dynamic imports keep their names — the anchor set:\n ");
    for (const auto &imp : image.imports) {
        if (core::isAnchorName(imp.name))
            std::printf(" %s", imp.name.c_str());
    }
    std::printf("\n\n");

    // --- behavior representations -----------------------------------
    const analysis::LinkedProgram linked(image,
                                         target.value().libraries);
    const auto pa = analysis::ProgramAnalysis::analyze(linked);
    const core::BehaviorAnalyzer analyzer;
    const auto behavior = analyzer.analyze(pa);
    const auto inference = core::inferIts(behavior);

    std::printf("custom functions: %zu; anchor implementations from "
                "libc.so: %zu\n",
                behavior.customFns.size(), behavior.anchorFns.size());
    std::printf("DBSCAN classes: %zu; candidates above the average "
                "class complexity (%.3f): %zu\n\n",
                inference.numClusters,
                inference.avgClassComplexity,
                inference.numCandidates);

    std::printf("anchor BFVs (the Eq. 2 scoring matrix):\n");
    for (auto id : behavior.anchorFns) {
        printBfv(behavior.records[id].name.c_str(),
                 behavior.records[id].bfv);
    }

    std::printf("\ntop-5 ranked custom functions:\n");
    for (std::size_t i = 0;
         i < 5 && i < inference.ranking.size(); ++i) {
        const auto &rf = inference.ranking[i];
        const std::string tag = support::format(
            "#%zu %s s=%.4f", i + 1,
            support::hex(rf.entry).c_str(), rf.score);
        printBfv(tag.c_str(), behavior.records[rf.id].bfv);
    }

    // --- the winner, in IR -------------------------------------------
    const auto &top = inference.ranking.front();
    const ir::Function *fn = image.program.functionAt(top.entry);
    std::printf("\nlifted IR of the top candidate (%s):\n\n%s",
                support::hex(top.entry).c_str(),
                ir::printFunction(*fn).c_str());

    std::printf("\nThis is the websGetVar shape of the paper's Figure "
                "1b: validate the key,\nscan the request buffer with "
                "a parameter-bounded loop, strncmp each position,\n"
                "malloc + memcpy the matched field, return it — an "
                "intermediate taint source.\n");
    return 0;
}
