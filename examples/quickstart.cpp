/**
 * @file
 * Quickstart: generate one synthetic firmware image, run the full FITS
 * pipeline on it (unpack -> select network binary -> behavior
 * representation -> ITS ranking), and print the top candidates next to
 * the ground truth.
 */

#include <cstdio>

#include <algorithm>

#include "core/pipeline.hh"
#include "eval/harness.hh"
#include "support/logging.hh"
#include "support/strings.hh"
#include "synth/firmware_gen.hh"

int
main()
{
    using namespace fits;
    support::Logger::instance().setLevel(support::LogLevel::Info);

    // 1. Build a firmware image the way a vendor would ship it: a
    //    packed FWIMG containing the web server, libc, and assets.
    synth::SampleSpec spec;
    spec.profile = synth::netgearProfile();
    spec.product = "R7000P";
    spec.version = "V1.3.0.8";
    spec.name = spec.product + "-" + spec.version;
    spec.seed = 0x52700042;
    const synth::GeneratedFirmware firmware =
        synth::generateFirmware(spec);
    std::printf("firmware: %s %s (%zu bytes packed)\n",
                spec.profile.vendor.c_str(), spec.name.c_str(),
                firmware.bytes.size());

    // 2. Run FITS end to end on the raw image bytes.
    const core::FitsPipeline pipeline;
    const core::PipelineResult result = pipeline.run(firmware.bytes);
    if (!result.ok) {
        std::printf("pipeline failed: %s\n", result.error.c_str());
        return 1;
    }

    std::printf("network binary: %s (%zu functions, %zu bytes)\n",
                result.binaryName.c_str(), result.numFunctions,
                result.binaryBytes);
    std::printf("analysis time: %.1f ms (behavior %.1f ms)\n",
                result.timings.totalMs(),
                result.timings.behaviorMs);
    std::printf("custom functions: %zu, anchors: %zu, "
                "candidates after clustering: %zu\n",
                result.inference.numCustom,
                result.inference.numAnchors,
                result.inference.numCandidates);

    // 3. Show the ranking against ground truth.
    std::printf("\ntop ITS candidates:\n");
    const std::size_t shown =
        std::min<std::size_t>(5, result.inference.ranking.size());
    for (std::size_t i = 0; i < shown; ++i) {
        const auto &rf = result.inference.ranking[i];
        const bool isIts =
            std::find(firmware.truth.itsFunctions.begin(),
                      firmware.truth.itsFunctions.end(),
                      rf.entry) != firmware.truth.itsFunctions.end();
        std::printf("  #%zu %-10s score %.4f %s\n", i + 1,
                    support::hex(rf.entry).c_str(), rf.score,
                    isIts ? "<-- true ITS" : "");
    }

    const int rank = eval::rankOfFirstIts(result.inference.ranking,
                                          firmware.truth);
    std::printf("\nfirst true ITS at rank %d (ground truth: %s)\n",
                rank,
                firmware.truth.itsFunctions.empty()
                    ? "none"
                    : support::hex(firmware.truth.itsFunctions[0])
                          .c_str());
    return 0;
}
