/**
 * @file
 * Security audit scenario: take one firmware image, infer intermediate
 * taint sources with FITS, then run all four taint-analysis
 * configurations (Karonte / Karonte-ITS / STA / STA-ITS) and print a
 * vulnerability report — what a third-party analyst would do with a
 * vendor image and this library.
 */

#include <algorithm>
#include <cstdio>

#include "analysis/program_analysis.hh"
#include "core/behavior.hh"
#include "core/infer.hh"
#include "eval/harness.hh"
#include "firmware/fwimg.hh"
#include "firmware/select.hh"
#include "support/strings.hh"
#include "synth/firmware_gen.hh"
#include "taint/karonte.hh"
#include "taint/sta.hh"

namespace {

using namespace fits;

void
printReport(const char *engine, const std::vector<taint::Alert> &alerts,
            const synth::GroundTruth &truth)
{
    std::size_t bugs = 0;
    for (const auto &alert : alerts) {
        const synth::SinkSite *site = truth.siteAt(alert.sinkSite);
        if (site != nullptr && site->isBug())
            ++bugs;
    }
    std::printf("%-12s %3zu alerts, %3zu verified bugs\n", engine,
                alerts.size(), bugs);
    for (const auto &alert : alerts) {
        const synth::SinkSite *site = truth.siteAt(alert.sinkSite);
        const bool isBug = site != nullptr && site->isBug();
        std::printf("    %s at %s in fn %s  [%s]%s\n",
                    alert.sinkName.c_str(),
                    support::hex(alert.sinkSite).c_str(),
                    support::hex(alert.inFunction).c_str(),
                    taint::vulnClassName(alert.vclass),
                    isBug ? "  <-- confirmed" : "");
        if (alerts.size() > 12 && &alert - alerts.data() >= 11) {
            std::printf("    ... (%zu more)\n",
                        alerts.size() - 12);
            break;
        }
    }
}

} // namespace

int
main()
{
    // A vendor ships an image; we only have the bytes.
    synth::SampleSpec spec;
    spec.profile = synth::ciscoProfile();
    spec.product = "RV130X";
    spec.version = "V1.0.3.55";
    spec.name = spec.product + "-" + spec.version;
    spec.seed = 0xc15c0;
    const synth::GeneratedFirmware firmware =
        synth::generateFirmware(spec);

    std::printf("=== auditing %s %s (%zu bytes) ===\n\n",
                spec.profile.vendor.c_str(), spec.name.c_str(),
                firmware.bytes.size());

    // Stage 1: unpack and pick the network-facing binary.
    auto unpacked = fw::unpackFirmware(firmware.bytes);
    if (!unpacked) {
        std::printf("unpack failed: %s\n",
                    unpacked.errorMessage().c_str());
        return 1;
    }
    auto target = fw::selectAnalysisTarget(unpacked.value().filesystem);
    if (!target) {
        std::printf("selection failed: %s\n",
                    target.errorMessage().c_str());
        return 1;
    }
    std::printf("network binary: %s (%zu functions), libraries: %zu\n",
                target.value().main->name.c_str(),
                target.value().main->program.size(),
                target.value().libraries.size());

    // Stage 2+3: one shared whole-program analysis; FITS ranking.
    const analysis::LinkedProgram linked(*target.value().main,
                                         target.value().libraries);
    const auto pa = analysis::ProgramAnalysis::analyze(linked);
    const core::BehaviorAnalyzer analyzer;
    const auto behavior = analyzer.analyze(pa);
    const auto inference = core::inferIts(behavior);
    if (!inference.ok()) {
        std::printf("inference failed: %s\n",
                    inference.error.c_str());
        return 1;
    }

    std::printf("\nITS candidates (top 3):\n");
    std::vector<taint::TaintSource> its;
    for (std::size_t i = 0;
         i < 3 && i < inference.ranking.size(); ++i) {
        const auto &rf = inference.ranking[i];
        const bool verified =
            std::find(firmware.truth.itsFunctions.begin(),
                      firmware.truth.itsFunctions.end(),
                      rf.entry) != firmware.truth.itsFunctions.end();
        std::printf("  #%zu %s score %.4f — %s\n", i + 1,
                    support::hex(rf.entry).c_str(), rf.score,
                    verified ? "verified as ITS (taint origin: "
                               "return register)"
                             : "rejected during verification");
        if (verified) {
            its.push_back(taint::TaintSource::its(
                rf.entry, support::hex(rf.entry)));
        }
    }

    // Stage 4: taint analysis, CTS-only vs CTS+ITS.
    const auto cts = taint::classicalTaintSources();
    auto withIts = cts;
    withIts.insert(withIts.end(), its.begin(), its.end());

    std::printf("\n--- taint analysis ---\n");
    const taint::KaronteEngine karonte;
    const taint::StaEngine sta;
    printReport("Karonte", karonte.run(pa, cts).alerts,
                firmware.truth);
    printReport("Karonte-ITS",
                karonte.run(pa, withIts).filteredAlerts(),
                firmware.truth);
    printReport("STA", sta.run(pa, cts).alerts, firmware.truth);
    printReport("STA-ITS", sta.run(pa, withIts).filteredAlerts(),
                firmware.truth);

    std::printf("\nground truth: %zu planted bugs across %zu sink "
                "sites\n",
                firmware.truth.bugCount(),
                firmware.truth.sinkSites.size());
    return 0;
}
