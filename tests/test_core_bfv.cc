/** @file Unit tests for the BFV representation and anchor sets. */

#include <gtest/gtest.h>

#include <set>

#include "core/anchors.hh"
#include "core/bfv.hh"

namespace fits::core {
namespace {

Bfv
paperExampleBfv()
{
    // The §3.2 example: fn16's BFV is
    // [17, True, 2, 3, 5, 6, True, True, True, True, 2].
    Bfv bfv;
    bfv.numBlocks = 17;
    bfv.hasLoop = true;
    bfv.numCallers = 2;
    bfv.numParams = 3;
    bfv.numAnchorCalls = 5;
    bfv.numLibCalls = 6;
    bfv.paramsControlLoop = true;
    bfv.paramsControlBranch = true;
    bfv.paramsToAnchor = true;
    bfv.argsHaveStrings = true;
    bfv.numDistinctStrings = 2;
    return bfv;
}

TEST(BfvTest, VectorMatchesPaperOrdering)
{
    const ml::Vec v = paperExampleBfv().toVector();
    const ml::Vec expected = {17, 1, 2, 3, 5, 6, 1, 1, 1, 1, 2};
    EXPECT_EQ(v, expected);
    EXPECT_EQ(v.size(),
              static_cast<std::size_t>(Bfv::kNumFeatures));
}

TEST(BfvTest, DropFeatureRemovesExactlyOne)
{
    const Bfv bfv = paperExampleBfv();
    for (int k = 0; k < Bfv::kNumFeatures; ++k) {
        const ml::Vec v = bfv.toVectorDropping(k);
        ASSERT_EQ(v.size(),
                  static_cast<std::size_t>(Bfv::kNumFeatures - 1))
            << k;
        // The remaining values appear in order.
        const ml::Vec full = bfv.toVector();
        std::size_t j = 0;
        for (int i = 0; i < Bfv::kNumFeatures; ++i) {
            if (i == k)
                continue;
            EXPECT_EQ(v[j++], full[i]);
        }
    }
}

TEST(BfvTest, DropOutOfRangeReturnsFull)
{
    const Bfv bfv = paperExampleBfv();
    EXPECT_EQ(bfv.toVectorDropping(-1).size(), 11u);
    EXPECT_EQ(bfv.toVectorDropping(99).size(), 11u);
}

TEST(BfvTest, KeepOnly)
{
    const Bfv bfv = paperExampleBfv();
    EXPECT_EQ(bfv.toVectorKeepingOnly(0), (ml::Vec{17}));
    EXPECT_EQ(bfv.toVectorKeepingOnly(10), (ml::Vec{2}));
    EXPECT_EQ(bfv.toVectorKeepingOnly(-1).size(), 11u);
}

TEST(BfvTest, FeatureNamesDistinct)
{
    std::set<std::string> names;
    for (int k = 0; k < Bfv::kNumFeatures; ++k)
        names.insert(Bfv::featureName(k));
    EXPECT_EQ(names.size(),
              static_cast<std::size_t>(Bfv::kNumFeatures));
    EXPECT_STREQ(Bfv::featureName(2), "num-callers");
}

TEST(Anchors, KnownNames)
{
    EXPECT_TRUE(isAnchorName("strcpy"));
    EXPECT_TRUE(isAnchorName("memcmp"));
    EXPECT_TRUE(isAnchorName("strstr"));
    EXPECT_TRUE(isAnchorName("strlen"));
    EXPECT_FALSE(isAnchorName("recv"));
    EXPECT_FALSE(isAnchorName("system"));
    EXPECT_FALSE(isAnchorName("sprintf"));
    EXPECT_FALSE(isAnchorName(""));
}

TEST(Anchors, ListConsistentWithPredicate)
{
    for (const auto &name : anchorFunctionNames())
        EXPECT_TRUE(isAnchorName(name)) << name;
}

} // namespace
} // namespace fits::core
