/**
 * @file
 * Tests for the `fits serve` subsystem: the wire codec, the resident
 * server's lifecycle (admission, backpressure, graceful drain), the
 * one-shot-equivalence guarantee (a client sweep renders byte-identical
 * tables), and the `serve.*` chaos fault sites.
 */

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/chaos.hh"
#include "eval/report.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "serve/wire.hh"
#include "support/strings.hh"
#include "synth/firmware_gen.hh"

namespace fits {
namespace {

namespace wire = serve::wire;

// ---------------------------------------------------------------------
// Wire codec

TEST(ServeWire, ScalarRoundTrip)
{
    wire::Value v = wire::Value::object();
    v.set("null", wire::Value::null());
    v.set("yes", wire::Value::boolean(true));
    v.set("no", wire::Value::boolean(false));
    v.set("int", wire::Value::integer(-42));
    v.set("big", wire::Value::integer(1'234'567'890'123LL));
    v.set("pi", wire::Value::number(3.25));
    v.set("text", wire::Value::string("hello \"world\"\n\t\\x"));

    const std::string json = v.toJson();
    wire::Value back;
    std::string error;
    ASSERT_TRUE(wire::parseJson(json, &back, &error)) << error;
    EXPECT_TRUE(back.find("null")->isNull());
    EXPECT_TRUE(back.getBool("yes"));
    EXPECT_FALSE(back.getBool("no", true));
    EXPECT_EQ(back.getInt("int"), -42);
    EXPECT_EQ(back.getInt("big"), 1'234'567'890'123LL);
    EXPECT_DOUBLE_EQ(back.getNumber("pi"), 3.25);
    EXPECT_EQ(back.getString("text"), "hello \"world\"\n\t\\x");
    // Insertion order is preserved, so re-encoding is deterministic.
    EXPECT_EQ(back.toJson(), json);
}

TEST(ServeWire, NestedContainersRoundTrip)
{
    wire::Value arr = wire::Value::array();
    for (int i = 0; i < 3; ++i) {
        wire::Value entry = wire::Value::object();
        entry.set("i", wire::Value::integer(i));
        entry.set("hex", wire::Value::string(support::hex(
                             static_cast<std::uint64_t>(i) * 16)));
        arr.push(std::move(entry));
    }
    wire::Value v = wire::Value::object();
    v.set("ranking", std::move(arr));

    wire::Value back;
    ASSERT_TRUE(wire::parseJson(v.toJson(), &back, nullptr));
    ASSERT_TRUE(back.find("ranking") != nullptr);
    ASSERT_EQ(back.find("ranking")->items().size(), 3u);
    EXPECT_EQ(back.find("ranking")->items()[2].getInt("i"), 2);
}

TEST(ServeWire, UnicodeEscapeDecodes)
{
    wire::Value v;
    ASSERT_TRUE(wire::parseJson("\"a\\u00e9\\u0041\"", &v, nullptr));
    EXPECT_EQ(v.asString(), "a\xc3\xa9"
                            "A");
}

TEST(ServeWire, RejectsMalformedJson)
{
    wire::Value v;
    std::string error;
    EXPECT_FALSE(wire::parseJson("{\"a\":}", &v, &error));
    EXPECT_FALSE(wire::parseJson("{\"a\":1", &v, &error));
    EXPECT_FALSE(wire::parseJson("[1,2,]", &v, &error));
    EXPECT_FALSE(wire::parseJson("1 2", &v, &error));
    EXPECT_FALSE(wire::parseJson("nul", &v, &error));
    EXPECT_FALSE(wire::parseJson("", &v, &error));
    // Depth bomb: deeper than the parser's limit must fail cleanly.
    std::string deep(200, '[');
    deep += std::string(200, ']');
    EXPECT_FALSE(wire::parseJson(deep, &v, &error));
    EXPECT_NE(error.find("nesting"), std::string::npos);
}

TEST(ServeWire, FrameRoundTrip)
{
    wire::Value v = wire::Value::object();
    v.set("op", wire::Value::string("ping"));
    const std::string frame = wire::encodeFrame(v);
    ASSERT_GE(frame.size(), 4u);

    wire::Value out;
    std::size_t consumed = 0;
    const auto status = wire::decodeFrame(
        reinterpret_cast<const std::uint8_t *>(frame.data()),
        frame.size(), &out, &consumed, nullptr);
    EXPECT_EQ(status, wire::DecodeStatus::Ok);
    EXPECT_EQ(consumed, frame.size());
    EXPECT_EQ(out.getString("op"), "ping");
}

TEST(ServeWire, TruncatedFrameNeedsMore)
{
    wire::Value v = wire::Value::object();
    v.set("op", wire::Value::string("ping"));
    const std::string frame = wire::encodeFrame(v);

    wire::Value out;
    std::size_t consumed = 0;
    // Every proper prefix is NeedMore — nothing consumed, no error.
    for (std::size_t n = 0; n < frame.size(); ++n) {
        EXPECT_EQ(wire::decodeFrame(
                      reinterpret_cast<const std::uint8_t *>(
                          frame.data()),
                      n, &out, &consumed, nullptr),
                  wire::DecodeStatus::NeedMore)
            << "prefix length " << n;
    }
}

TEST(ServeWire, CorruptFrameIsTerminal)
{
    // Payload that is not JSON.
    std::string frame("\x03\x00\x00\x00???", 7);
    wire::Value out;
    std::size_t consumed = 0;
    std::string error;
    EXPECT_EQ(wire::decodeFrame(
                  reinterpret_cast<const std::uint8_t *>(frame.data()),
                  frame.size(), &out, &consumed, &error),
              wire::DecodeStatus::Corrupt);
    EXPECT_NE(error.find("bad frame payload"), std::string::npos);

    // Length prefix beyond the hard cap: corrupt immediately, without
    // waiting for (or allocating) the impossible payload.
    std::string oversize("\xff\xff\xff\xff", 4);
    error.clear();
    EXPECT_EQ(wire::decodeFrame(reinterpret_cast<const std::uint8_t *>(
                                    oversize.data()),
                                oversize.size(), &out, &consumed,
                                &error),
              wire::DecodeStatus::Corrupt);
    EXPECT_NE(error.find("exceeds limit"), std::string::npos);
}

TEST(ServeWire, FrameIoOverPipe)
{
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    wire::Value v = wire::Value::object();
    v.set("n", wire::Value::integer(7));
    std::string error;
    ASSERT_TRUE(wire::writeFrame(fds[1], v, &error)) << error;
    wire::Value out;
    ASSERT_TRUE(wire::readFrame(fds[0], &out, &error)) << error;
    EXPECT_EQ(out.getInt("n"), 7);

    // Clean EOF (writer closed, nothing buffered) reads as failure
    // with an empty error — "peer hung up", not a protocol fault.
    ::close(fds[1]);
    error = "sentinel";
    EXPECT_FALSE(wire::readFrame(fds[0], &out, &error));
    EXPECT_TRUE(error.empty());
    ::close(fds[0]);
}

// ---------------------------------------------------------------------
// Server fixtures

/** Unique short socket path (sockaddr_un caps at ~107 bytes). */
std::string
testSocketPath(const char *tag)
{
    static std::atomic<int> counter{0};
    return support::format("/tmp/fits_serve_%d_%s_%d.sock",
                           static_cast<int>(::getpid()), tag,
                           counter.fetch_add(1));
}

/** Generate a small on-disk corpus and return its directory. */
std::string
makeTestCorpusDir(const char *tag, std::size_t samples)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() /
        support::format("fits_serve_corpus_%d_%s",
                        static_cast<int>(::getpid()), tag);
    fs::create_directories(dir);
    for (std::size_t i = 0; i < samples; ++i) {
        synth::SampleSpec spec;
        spec.profile = synth::netgearProfile();
        spec.product = spec.profile.series.front();
        spec.version = support::format("V1.0.%zu", i);
        spec.name = spec.product + "-" + spec.version;
        spec.seed = 100 + i;
        const auto firmware = synth::generateFirmware(spec);
        std::ofstream out(dir / support::format("s%zu.fwimg", i),
                          std::ios::binary);
        out.write(
            reinterpret_cast<const char *>(firmware.bytes.data()),
            static_cast<std::streamsize>(firmware.bytes.size()));
    }
    return dir.string();
}

// ---------------------------------------------------------------------
// Lifecycle + request handling

TEST(ServeServer, PingOverSocket)
{
    serve::ServerConfig config;
    config.socketPath = testSocketPath("ping");
    config.jobs = 2;
    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    serve::Client client;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    wire::Value request = wire::Value::object();
    request.set("op", wire::Value::string("ping"));
    wire::Value response;
    ASSERT_TRUE(client.submit(request, &response, &error)) << error;
    EXPECT_EQ(response.getString("status"), "ok");
    EXPECT_EQ(response.getInt("jobs"), 2);
    EXPECT_GT(response.getInt("id", 0), 0);

    server.stop();
    EXPECT_FALSE(server.running());
    // The socket file is removed by the drain.
    EXPECT_FALSE(std::filesystem::exists(config.socketPath));
}

TEST(ServeServer, BadRequestsGetTypedErrors)
{
    serve::ServerConfig config;
    config.socketPath = testSocketPath("bad");
    serve::Server server(config);

    // handleRequest is the full service path minus the socket; the
    // admission/framing layers are exercised by the socket tests.
    wire::Value request = wire::Value::object();
    wire::Value response = server.handleRequest(request);
    EXPECT_EQ(response.getString("status"), "error");
    EXPECT_NE(response.getString("error").find("missing \"op\""),
              std::string::npos);

    request.set("op", wire::Value::string("frobnicate"));
    response = server.handleRequest(request);
    EXPECT_EQ(response.getString("status"), "error");
    EXPECT_NE(response.getString("error").find("unknown op"),
              std::string::npos);

    request.set("op", wire::Value::string("rank"));
    request.set("path", wire::Value::string("/nonexistent.fwimg"));
    response = server.handleRequest(request);
    EXPECT_EQ(response.getString("status"), "error");
    // The exact diagnostic the one-shot CLI prints.
    EXPECT_EQ(response.getString("error"),
              "cannot read /nonexistent.fwimg: no such file\n");
}

TEST(ServeServer, QueueWaitConsumesRequestBudget)
{
    serve::ServerConfig config;
    config.socketPath = testSocketPath("budget");
    config.requestTimeoutMs = 50.0;
    serve::Server server(config);

    wire::Value request = wire::Value::object();
    request.set("op", wire::Value::string("ping"));
    // Within budget: runs normally.
    EXPECT_EQ(server.handleRequest(request, 10.0).getString("status"),
              "ok");
    // Budget spent entirely in the queue: answered with a typed
    // timeout error, without running.
    const wire::Value response = server.handleRequest(request, 60.0);
    EXPECT_EQ(response.getString("status"), "error");
    EXPECT_NE(response.getString("error").find("budget"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// One-shot equivalence

TEST(ServeEquivalence, CorpusMatchesOneShotByteForByte)
{
    chaos::reset();
    const std::string dir = makeTestCorpusDir("equiv", 3);

    // The one-shot path: the same renderer `fits corpus --dir` uses.
    eval::CorpusOptions options;
    options.dir = dir;
    options.jobs = 2;
    const eval::CorpusReport oneShot = eval::runCorpusReport(options);
    ASSERT_TRUE(oneShot.ok) << oneShot.error;

    // The served path, over a real socket.
    serve::ServerConfig config;
    config.socketPath = testSocketPath("equiv");
    config.jobs = 2;
    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    serve::Client client;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    wire::Value request = wire::Value::object();
    request.set("op", wire::Value::string("corpus"));
    request.set("dir", wire::Value::string(dir));
    request.set("jobs", wire::Value::integer(2));
    wire::Value response;
    ASSERT_TRUE(client.submit(request, &response, &error)) << error;
    ASSERT_EQ(response.getString("status"), "ok");

    // Byte-identical tables (wall-clock and cache lines are data
    // fields, never part of the deterministic text).
    EXPECT_EQ(response.getString("output"),
              oneShot.header + oneShot.text);
    EXPECT_EQ(response.getString("diagnostics"), oneShot.diagnostics);
    EXPECT_EQ(response.getInt("samples"),
              static_cast<std::int64_t>(oneShot.samples));
    EXPECT_EQ(response.getInt("failed"),
              static_cast<std::int64_t>(oneShot.failed));
    EXPECT_EQ(response.getInt("exit"), oneShot.exitCode());

    server.stop();
    std::filesystem::remove_all(dir);
}

TEST(ServeEquivalence, ConcurrentClientsMatchSerialResults)
{
    chaos::reset();
    const std::string dir = makeTestCorpusDir("conc", 1);
    const std::string image = dir + "/s0.fwimg";
    std::vector<std::uint8_t> bytes;
    {
        std::ifstream in(image, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    }
    const eval::TextReport serial =
        eval::runRankReport(bytes, 10, false);
    ASSERT_TRUE(serial.ok) << serial.error;
    // The ranking lines after the (timing-bearing) header line.
    const auto rankingOf = [](const std::string &text) {
        const auto pos = text.find("\n\n");
        return pos == std::string::npos ? text : text.substr(pos + 2);
    };

    serve::ServerConfig config;
    config.socketPath = testSocketPath("conc");
    config.jobs = 4;
    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    constexpr int kClients = 6;
    std::vector<std::string> outputs(kClients);
    std::vector<std::string> errors(kClients);
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
        threads.emplace_back([&, i] {
            serve::Client client;
            std::string err;
            if (!client.connect(config.socketPath, &err)) {
                errors[i] = err;
                return;
            }
            wire::Value request = wire::Value::object();
            request.set("op", wire::Value::string("rank"));
            request.set("path", wire::Value::string(image));
            wire::Value response;
            if (!client.submit(request, &response, &err)) {
                errors[i] = err;
                return;
            }
            if (response.getString("status") != "ok") {
                errors[i] = response.getString("error");
                return;
            }
            outputs[i] = response.getString("output");
        });
    }
    for (auto &thread : threads)
        thread.join();

    for (int i = 0; i < kClients; ++i) {
        ASSERT_TRUE(errors[i].empty()) << "client " << i << ": "
                                       << errors[i];
        EXPECT_EQ(rankingOf(outputs[i]), rankingOf(serial.text))
            << "client " << i;
    }
    EXPECT_EQ(server.requestsServed(),
              static_cast<std::size_t>(kClients));

    server.stop();
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------
// Backpressure + drain

TEST(ServeServer, BackpressureRejectsAboveQueueLimit)
{
    serve::ServerConfig config;
    config.socketPath = testSocketPath("bp");
    config.jobs = 1;
    config.queueLimit = 1;
    config.retryAfterMs = 5.0;
    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // Occupy the single worker (and the whole queue budget).
    std::thread blocker([&] {
        serve::Client client;
        std::string err;
        ASSERT_TRUE(client.connect(config.socketPath, &err)) << err;
        wire::Value request = wire::Value::object();
        request.set("op", wire::Value::string("sleep"));
        request.set("ms", wire::Value::number(400.0));
        wire::Value response;
        ASSERT_TRUE(client.call(request, &response, &err)) << err;
        EXPECT_EQ(response.getString("status"), "ok");
    });
    for (int i = 0; i < 400 && server.queueDepth() == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_EQ(server.queueDepth(), 1u);

    // A raw call (no retry handling) sees the rejection itself.
    serve::Client client;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    wire::Value request = wire::Value::object();
    request.set("op", wire::Value::string("ping"));
    wire::Value response;
    ASSERT_TRUE(client.call(request, &response, &error)) << error;
    EXPECT_EQ(response.getString("status"), "retry");
    EXPECT_GT(response.getNumber("retry_after_ms"), 0.0);
    EXPECT_GE(server.requestsRejected(), 1u);

    // submit() keeps retrying per the server's hint and lands once
    // the blocker finishes.
    ASSERT_TRUE(client.submit(request, &response, &error)) << error;
    EXPECT_EQ(response.getString("status"), "ok");

    blocker.join();
    server.stop();
}

TEST(ServeServer, GracefulDrainFinishesInFlight)
{
    serve::ServerConfig config;
    config.socketPath = testSocketPath("drain");
    config.jobs = 1;
    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    std::atomic<bool> responded{false};
    std::string clientError;
    wire::Value response;
    std::thread inflight([&] {
        serve::Client client;
        std::string err;
        if (!client.connect(config.socketPath, &err)) {
            clientError = err;
            return;
        }
        wire::Value request = wire::Value::object();
        request.set("op", wire::Value::string("sleep"));
        request.set("ms", wire::Value::number(300.0));
        if (!client.call(request, &response, &err))
            clientError = err;
        responded.store(true);
    });
    for (int i = 0; i < 400 && server.queueDepth() == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_EQ(server.queueDepth(), 1u);

    // Drain must finish the admitted request — and deliver its
    // response — before tearing anything down.
    server.beginDrain();
    EXPECT_TRUE(server.draining());
    server.waitUntilDrained();
    inflight.join();

    EXPECT_TRUE(responded.load());
    EXPECT_TRUE(clientError.empty()) << clientError;
    EXPECT_EQ(response.getString("status"), "ok");
    EXPECT_DOUBLE_EQ(response.getNumber("slept_ms"), 300.0);

    // The drained server is gone: its socket no longer accepts.
    serve::Client late;
    EXPECT_FALSE(late.connect(config.socketPath, &error));
}

TEST(ServeServer, DrainingServerRejectsNewRequests)
{
    serve::ServerConfig config;
    config.socketPath = testSocketPath("drainreq");
    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // Establish the connection with one served request (a bare
    // connect() can still be sitting in the accept queue when the
    // drain hits), then drain: the next request is answered with
    // "draining", not silence.
    serve::Client client;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    wire::Value request = wire::Value::object();
    request.set("op", wire::Value::string("ping"));
    wire::Value response;
    ASSERT_TRUE(client.call(request, &response, &error)) << error;
    ASSERT_EQ(response.getString("status"), "ok");

    server.beginDrain();
    ASSERT_TRUE(client.call(request, &response, &error)) << error;
    EXPECT_EQ(response.getString("status"), "draining");

    server.waitUntilDrained();
}

TEST(ServeServer, ShutdownRequestDrains)
{
    serve::ServerConfig config;
    config.socketPath = testSocketPath("shutdown");
    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    serve::Client client;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    wire::Value request = wire::Value::object();
    request.set("op", wire::Value::string("shutdown"));
    wire::Value response;
    ASSERT_TRUE(client.submit(request, &response, &error)) << error;
    EXPECT_EQ(response.getString("status"), "ok");
    EXPECT_TRUE(response.getBool("draining"));

    server.waitUntilDrained();
    EXPECT_FALSE(server.running());
}

TEST(ServeServer, StartFailsCleanlyOnBadSocketPath)
{
    serve::ServerConfig config;
    config.socketPath = "/nonexistent-dir/deeper/fits.sock";
    serve::Server server(config);
    std::string error;
    EXPECT_FALSE(server.start(&error));
    EXPECT_NE(error.find("bind"), std::string::npos);

    config.socketPath = std::string(200, 'x');
    serve::Server longPath(config);
    EXPECT_FALSE(longPath.start(&error));
    EXPECT_NE(error.find("bad socket path"), std::string::npos);
}

// ---------------------------------------------------------------------
// Chaos fault sites

TEST(ServeChaos, ReadFaultDegradesToPerRequestError)
{
    serve::ServerConfig config;
    config.socketPath = testSocketPath("chaosread");
    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    serve::Client client;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    ASSERT_TRUE(chaos::configure("serve.read#1"));

    wire::Value request = wire::Value::object();
    request.set("op", wire::Value::string("ping"));
    wire::Value response;
    ASSERT_TRUE(client.call(request, &response, &error)) << error;
    EXPECT_EQ(response.getString("status"), "error");
    EXPECT_NE(response.getString("error").find("injected"),
              std::string::npos);
    EXPECT_EQ(chaos::fireCount("serve.read"), 1u);

    // The connection — and the server — survive; the next request on
    // the same connection succeeds.
    ASSERT_TRUE(client.call(request, &response, &error)) << error;
    EXPECT_EQ(response.getString("status"), "ok");

    chaos::reset();
    server.stop();
}

TEST(ServeChaos, AcceptFaultDropsConnectionNotServer)
{
    serve::ServerConfig config;
    config.socketPath = testSocketPath("chaosaccept");
    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ASSERT_TRUE(chaos::configure("serve.accept#1"));

    // First connection is dropped before its first request: the
    // client sees a clean transport error, never a hang.
    serve::Client dropped;
    ASSERT_TRUE(dropped.connect(config.socketPath, &error)) << error;
    wire::Value request = wire::Value::object();
    request.set("op", wire::Value::string("ping"));
    wire::Value response;
    EXPECT_FALSE(dropped.call(request, &response, &error));
    EXPECT_FALSE(error.empty());

    // The server keeps accepting: a reconnect works.
    serve::Client retry;
    ASSERT_TRUE(retry.connect(config.socketPath, &error)) << error;
    ASSERT_TRUE(retry.call(request, &response, &error)) << error;
    EXPECT_EQ(response.getString("status"), "ok");
    EXPECT_EQ(chaos::fireCount("serve.accept"), 1u);

    chaos::reset();
    server.stop();
}

TEST(ServeChaos, WriteFaultDropsResponseNotServer)
{
    serve::ServerConfig config;
    config.socketPath = testSocketPath("chaoswrite");
    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;
    ASSERT_TRUE(chaos::configure("serve.write#1"));

    serve::Client client;
    ASSERT_TRUE(client.connect(config.socketPath, &error)) << error;
    wire::Value request = wire::Value::object();
    request.set("op", wire::Value::string("ping"));
    wire::Value response;
    // The request executes but its response is lost with the
    // connection; the client sees a transport error.
    EXPECT_FALSE(client.call(request, &response, &error));
    EXPECT_EQ(chaos::fireCount("serve.write"), 1u);

    serve::Client retry;
    ASSERT_TRUE(retry.connect(config.socketPath, &error)) << error;
    ASSERT_TRUE(retry.call(request, &response, &error)) << error;
    EXPECT_EQ(response.getString("status"), "ok");

    chaos::reset();
    server.stop();
}

TEST(ServeServer, CorruptFrameClosesOnlyThatConnection)
{
    serve::ServerConfig config;
    config.socketPath = testSocketPath("corrupt");
    serve::Server server(config);
    std::string error;
    ASSERT_TRUE(server.start(&error)) << error;

    // Hand-speak the protocol badly over a raw socket: a frame whose
    // payload is not JSON. The server drops that connection (the
    // stream cannot be resynchronized) but keeps serving others.
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, config.socketPath.c_str(),
                config.socketPath.size() + 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)),
              0);
    const char garbage[] = "\x03\x00\x00\x00???";
    ASSERT_EQ(::write(fd, garbage, 7), 7);
    char byte;
    // The server answers a corrupt frame with EOF, not a response.
    EXPECT_EQ(::read(fd, &byte, 1), 0);
    ::close(fd);

    serve::Client good;
    ASSERT_TRUE(good.connect(config.socketPath, &error)) << error;
    wire::Value probe = wire::Value::object();
    probe.set("op", wire::Value::string("ping"));
    wire::Value response;
    ASSERT_TRUE(good.call(probe, &response, &error)) << error;
    EXPECT_EQ(response.getString("status"), "ok");

    server.stop();
}

} // namespace
} // namespace fits
