/** @file Unit tests for the symbol-name prior (vendor mode) and its
 * integration into inference. */

#include <gtest/gtest.h>

#include "core/infer.hh"
#include "core/semantic.hh"
#include "eval/harness.hh"
#include "synth/firmware_gen.hh"

namespace fits::core {
namespace {

TEST(SemanticName, NeutralForStripped)
{
    EXPECT_DOUBLE_EQ(semanticNameScore(""), 0.5);
}

TEST(SemanticName, GetterVocabularyScoresHigh)
{
    EXPECT_GT(semanticNameScore("websGetVar"), 0.8);
    EXPECT_GT(semanticNameScore("fetch_field"), 0.6);
    EXPECT_GT(semanticNameScore("http_param_value"), 0.6);
    EXPECT_GT(semanticNameScore("GetVar"), 0.7); // case-insensitive
}

TEST(SemanticName, LoggingAndConfigScoreLow)
{
    EXPECT_LT(semanticNameScore("print_error"), 0.3);
    EXPECT_LT(semanticNameScore("log_format"), 0.4);
    EXPECT_LT(semanticNameScore("nvram_get"), 0.5); // get vs nvram
    EXPECT_LT(semanticNameScore("cfg_find_entry"), 0.5);
}

TEST(SemanticName, NeutralForUnknownNames)
{
    EXPECT_DOUBLE_EQ(semanticNameScore("sub_10400"), 0.5);
    EXPECT_DOUBLE_EQ(semanticNameScore("xyzzy"), 0.5);
}

TEST(SemanticName, ClampedToUnitInterval)
{
    const double s =
        semanticNameScore("getvar_get_fetch_find_query_var_param");
    EXPECT_LE(s, 1.0);
    EXPECT_GE(semanticNameScore("err_log_print_dbg_nvram_cfg_sys"),
              0.0);
}

TEST(VendorMode, SymbolPriorImprovesRanking)
{
    // A vendor sample whose strong confounders outrank the ITS when
    // stripped; with symbols + the prior, websGetVar must win.
    synth::SampleSpec spec;
    spec.profile = synth::ciscoProfile(); // always 2 strong confounders
    spec.profile.minCustomFns = 150;
    spec.profile.maxCustomFns = 200;
    spec.product = "RV130X";
    spec.version = "V1";
    spec.name = "RV130X-V1";
    spec.seed = 0x99;
    spec.keepSymbols = true;
    const auto fw = synth::generateFirmware(spec);

    const auto outcome = eval::runInference(fw);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    const int plainRank = outcome.firstItsRank;
    ASSERT_GT(plainRank, 1); // confounders win without the prior

    InferConfig config;
    config.useSymbolNames = true;
    const auto boosted = inferIts(outcome.behavior, config);
    EXPECT_EQ(eval::rankOfFirstIts(boosted.ranking, fw.truth), 1);
}

TEST(VendorMode, NoEffectOnStrippedBinaries)
{
    synth::SampleSpec spec;
    spec.profile = synth::tendaProfile();
    spec.profile.minCustomFns = 150;
    spec.profile.maxCustomFns = 200;
    spec.product = "AC9";
    spec.version = "V1";
    spec.name = "AC9-V1";
    spec.seed = 0x77;
    const auto fw = synth::generateFirmware(spec); // stripped
    const auto outcome = eval::runInference(fw);
    ASSERT_TRUE(outcome.ok);

    InferConfig config;
    config.useSymbolNames = true;
    const auto with = inferIts(outcome.behavior, config);
    const auto without = inferIts(outcome.behavior);
    ASSERT_EQ(with.ranking.size(), without.ranking.size());
    for (std::size_t i = 0; i < with.ranking.size(); ++i) {
        EXPECT_EQ(with.ranking[i].entry, without.ranking[i].entry);
        EXPECT_DOUBLE_EQ(with.ranking[i].score,
                         without.ranking[i].score);
    }
}

TEST(VendorMode, GeneratorEmitsSymbols)
{
    synth::SampleSpec spec;
    spec.profile = synth::netgearProfile();
    spec.profile.minCustomFns = 120;
    spec.profile.maxCustomFns = 150;
    spec.product = "R7000P";
    spec.version = "V1";
    spec.name = "R7000P-V1";
    spec.seed = 0x31;
    spec.keepSymbols = true;
    const auto result = synth::generateHttpd(spec);
    EXPECT_FALSE(result.image.stripped);
    ASSERT_FALSE(result.truth.itsFunctions.empty());
    const ir::Function *its = result.image.program.functionAt(
        result.truth.itsFunctions[0]);
    ASSERT_NE(its, nullptr);
    EXPECT_EQ(its->name, "websGetVar");
    // Every function has a name; symbols table populated.
    for (const auto &fn : result.image.program.functions())
        EXPECT_FALSE(fn.name.empty());
    EXPECT_EQ(result.image.symbols.size(),
              result.image.program.size());
}

TEST(NoisePolicy, DiscardingNoiseDropsTheItsWhenItIsAnOutlier)
{
    // Fixture: one ITS-shaped function among 40 trivial ones. The ITS
    // is a density outlier -> DBSCAN noise. With the singleton policy
    // it survives to the complexity filter and wins; with noise
    // discarded it cannot appear in the ranking at all.
    BehaviorRepr repr;
    analysis::FnId id = 0;
    auto add = [&](Bfv bfv, bool custom, bool anchor) {
        FunctionRecord rec;
        rec.id = id;
        rec.entry = 0x1000 + 0x100 * id;
        rec.isCustom = custom;
        rec.isAnchor = anchor;
        rec.bfv = bfv;
        rec.augmentedCfg = {1, 1};
        rec.attributedCfg = {1, 1};
        repr.records.push_back(std::move(rec));
        if (custom)
            repr.customFns.push_back(id);
        if (anchor)
            repr.anchorFns.push_back(id);
        ++id;
    };

    Bfv its;
    its.numBlocks = 14;
    its.hasLoop = true;
    its.numCallers = 8;
    its.numParams = 3;
    its.numAnchorCalls = 5;
    its.numLibCalls = 6;
    its.paramsControlLoop = true;
    its.paramsControlBranch = true;
    its.paramsToAnchor = true;
    its.argsHaveStrings = true;
    its.numDistinctStrings = 5;
    add(its, true, false);
    const ir::Addr itsEntry = repr.records[0].entry;

    for (int i = 0; i < 40; ++i) {
        Bfv trivial;
        trivial.numBlocks = 1 + i % 2;
        trivial.numCallers = 1;
        add(trivial, true, false);
    }
    Bfv anchor;
    anchor.numBlocks = 5;
    anchor.hasLoop = true;
    anchor.numCallers = 10;
    anchor.numParams = 2;
    anchor.paramsControlLoop = true;
    anchor.paramsControlBranch = true;
    add(anchor, false, true);

    const auto kept = inferIts(repr);
    ASSERT_TRUE(kept.ok());
    EXPECT_EQ(kept.ranking.front().entry, itsEntry);

    InferConfig drop;
    drop.noiseAsSingletons = false;
    const auto dropped = inferIts(repr, drop);
    ASSERT_TRUE(dropped.ok());
    for (const auto &rf : dropped.ranking)
        EXPECT_NE(rf.entry, itsEntry);
}

} // namespace
} // namespace fits::core
