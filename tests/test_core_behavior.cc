/** @file Unit tests for BFV extraction (Algorithm 1) on a handcrafted
 * mini-program with known feature values. */

#include <gtest/gtest.h>

#include "core/behavior.hh"
#include "ir/builder.hh"

namespace fits::core {
namespace {

using ir::BinOp;
using ir::FunctionBuilder;
using ir::Operand;

Operand
t(ir::TmpId id)
{
    return Operand::ofTmp(id);
}

/**
 * Mini world:
 *  libc.so exports strlen (loop over its pointer parameter).
 *  main binary:
 *    getter(key, src, len): loop bounded by len; calls strlen(key);
 *        returns data — the ITS-shaped function.
 *    caller1 / caller2: call getter with a .rodata string key and a
 *        .data slot key respectively.
 *    plain: no params, no calls.
 */
struct World
{
    bin::BinaryImage main;
    std::vector<bin::BinaryImage> libs;
    ir::Addr getterEntry = 0x11000;
    ir::Addr plainEntry = 0x13000;
    ir::Addr caller1Entry = 0x14000;
    ir::Addr caller2Entry = 0x15000;
    ir::Addr strlenPlt = 0;

    World()
    {
        main.name = "httpd";
        main.neededLibraries = {"libc.so"};
        strlenPlt = main.addImport("strlen", "libc.so");

        bin::Section rodata;
        rodata.name = ".rodata";
        rodata.addr = bin::kRodataBase;
        rodata.flags = bin::kSecRead;
        const char text[] = "username\0password\0";
        rodata.bytes.assign(text, text + sizeof(text) - 1);
        main.sections.push_back(rodata);

        bin::Section data;
        data.name = ".data";
        data.addr = bin::kDataBase;
        data.flags = bin::kSecRead | bin::kSecWrite;
        data.bytes.assign(8, 0);
        const ir::Addr pw = bin::kRodataBase + 9;
        for (std::size_t i = 0; i < bin::kPtrSize; ++i)
            data.bytes[i] =
                static_cast<std::uint8_t>(pw >> (8 * i));
        main.sections.push_back(data);

        // getter(key, src, len)
        {
            FunctionBuilder b;
            auto header = b.newBlock();
            auto body = b.newBlock();
            auto exit = b.newBlock();
            b.put(4, t(b.get(ir::kRegR0))); // key
            b.put(5, t(b.get(ir::kRegR1))); // src
            b.put(6, t(b.get(ir::kRegR2))); // len
            b.setArg(0, t(b.get(4)));
            b.call(strlenPlt);
            b.put(7, t(b.retVal()));
            b.put(8, Operand::ofImm(0));
            b.jump(header);
            b.switchTo(header);
            auto done = b.binop(BinOp::CmpGe, t(b.get(8)),
                                t(b.get(6)));
            b.branch(t(done), exit);
            b.jump(body);
            b.switchTo(body);
            auto cell = b.binop(BinOp::Add, t(b.get(5)), t(b.get(8)));
            auto c = b.load(t(cell));
            b.put(9, t(c));
            b.put(8, t(b.binop(BinOp::Add, t(b.get(8)),
                               Operand::ofImm(1))));
            b.jump(header);
            b.switchTo(exit);
            b.put(ir::kRetReg, t(b.get(9)));
            b.ret();
            main.program.addFunction(b.build(getterEntry));
        }
        // plain()
        {
            FunctionBuilder b;
            b.put(ir::kRetReg, Operand::ofImm(0));
            b.ret();
            main.program.addFunction(b.build(plainEntry));
        }
        // caller1: getter("username", 0x600000, 64)
        {
            FunctionBuilder b;
            b.setArg(0, Operand::ofImm(bin::kRodataBase));
            b.setArg(1, Operand::ofImm(0x600000));
            b.setArg(2, Operand::ofImm(64));
            b.call(getterEntry);
            b.ret();
            main.program.addFunction(b.build(caller1Entry));
        }
        // caller2: getter(<data slot -> "password">, 0x600000, 64)
        {
            FunctionBuilder b;
            b.setArg(0, Operand::ofImm(bin::kDataBase));
            b.setArg(1, Operand::ofImm(0x600000));
            b.setArg(2, Operand::ofImm(64));
            b.call(getterEntry);
            b.ret();
            main.program.addFunction(b.build(caller2Entry));
        }
        main.strip();

        bin::BinaryImage libc;
        libc.name = "libc.so";
        {
            FunctionBuilder b("strlen");
            auto header = b.newBlock();
            auto body = b.newBlock();
            auto exit = b.newBlock();
            b.put(4, t(b.get(ir::kRegR0)));
            b.put(5, Operand::ofImm(0));
            b.jump(header);
            b.switchTo(header);
            auto c = b.load(t(b.get(4)));
            auto done = b.binop(BinOp::CmpEq, t(c),
                                Operand::ofImm(0));
            b.branch(t(done), exit);
            b.jump(body);
            b.switchTo(body);
            b.put(4, t(b.binop(BinOp::Add, t(b.get(4)),
                               Operand::ofImm(1))));
            b.put(5, t(b.binop(BinOp::Add, t(b.get(5)),
                               Operand::ofImm(1))));
            b.jump(header);
            b.switchTo(exit);
            b.put(ir::kRetReg, t(b.get(5)));
            b.ret();
            libc.program.addFunction(b.build(bin::kTextBase));
        }
        libs.push_back(std::move(libc));
    }
};

class BehaviorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        linked_ = std::make_unique<analysis::LinkedProgram>(
            world_.main, world_.libs);
        const BehaviorAnalyzer analyzer;
        repr_ = analyzer.analyze(*linked_);
    }

    const FunctionRecord &
    record(ir::Addr entry) const
    {
        for (const auto &rec : repr_.records) {
            if (rec.entry == entry && rec.isCustom)
                return rec;
        }
        // the anchor lives in the lib image at kTextBase
        for (const auto &rec : repr_.records) {
            if (rec.entry == entry)
                return rec;
        }
        throw std::runtime_error("record not found");
    }

    World world_;
    std::unique_ptr<analysis::LinkedProgram> linked_;
    BehaviorRepr repr_;
};

TEST_F(BehaviorTest, PartitionsCustomAndAnchors)
{
    EXPECT_EQ(repr_.customFns.size(), 4u);
    ASSERT_EQ(repr_.anchorFns.size(), 1u);
    EXPECT_EQ(repr_.records[repr_.anchorFns[0]].name, "strlen");
    EXPECT_EQ(repr_.anchorMatrix().size(), 1u);
}

TEST_F(BehaviorTest, GetterStructuralFeatures)
{
    const Bfv &bfv = record(world_.getterEntry).bfv;
    EXPECT_EQ(bfv.numBlocks, 4); // entry, header, body, exit
    EXPECT_TRUE(bfv.hasLoop);
    EXPECT_EQ(bfv.numCallers, 2);   // two call sites
    EXPECT_EQ(bfv.numParams, 3);    // key, src, len
    EXPECT_EQ(bfv.numAnchorCalls, 1);
    EXPECT_EQ(bfv.numLibCalls, 1);
}

TEST_F(BehaviorTest, GetterFlowFeatures)
{
    const Bfv &bfv = record(world_.getterEntry).bfv;
    EXPECT_TRUE(bfv.paramsControlLoop);   // i < len
    EXPECT_TRUE(bfv.paramsControlBranch);
    EXPECT_TRUE(bfv.paramsToAnchor);      // strlen(key)
}

TEST_F(BehaviorTest, GetterInterproceduralStrings)
{
    const Bfv &bfv = record(world_.getterEntry).bfv;
    EXPECT_TRUE(bfv.argsHaveStrings);
    // "username" (direct rodata) and "password" (via the data slot).
    EXPECT_EQ(bfv.numDistinctStrings, 2);
}

TEST_F(BehaviorTest, PlainFunctionHasEmptyProfile)
{
    const Bfv &bfv = record(world_.plainEntry).bfv;
    EXPECT_EQ(bfv.numBlocks, 1);
    EXPECT_FALSE(bfv.hasLoop);
    EXPECT_EQ(bfv.numCallers, 0);
    EXPECT_EQ(bfv.numParams, 0);
    EXPECT_EQ(bfv.numAnchorCalls, 0);
    EXPECT_FALSE(bfv.paramsControlLoop);
    EXPECT_FALSE(bfv.paramsControlBranch);
    EXPECT_FALSE(bfv.paramsToAnchor);
    EXPECT_FALSE(bfv.argsHaveStrings);
}

TEST_F(BehaviorTest, AnchorImplementationProfile)
{
    const Bfv &bfv = record(bin::kTextBase).bfv;
    EXPECT_TRUE(bfv.hasLoop);
    EXPECT_EQ(bfv.numParams, 1);
    EXPECT_TRUE(bfv.paramsControlLoop);
    EXPECT_TRUE(bfv.paramsControlBranch);
    EXPECT_EQ(bfv.numCallers, 1); // the getter's call via the PLT
}

TEST_F(BehaviorTest, AlternativeRepresentationsPopulated)
{
    const FunctionRecord &rec = record(world_.getterEntry);
    EXPECT_EQ(rec.augmentedCfg.size(), 10u);
    EXPECT_EQ(rec.attributedCfg.size(), 9u);
    EXPECT_GT(rec.augmentedCfg[0], 0.0); // block count
    EXPECT_GT(rec.attributedCfg[0], 0.0); // statement count
}

} // namespace
} // namespace fits::core
