/** @file Unit tests for the firmware layer (FWIMG, filesystem,
 * network-binary selection). */

#include <gtest/gtest.h>

#include "binary/fbin.hh"
#include "firmware/filesystem.hh"
#include "firmware/fwimg.hh"
#include "firmware/select.hh"
#include "ir/builder.hh"

namespace fits::fw {
namespace {

FirmwareImage
makeImage(Encoding encoding = Encoding::None)
{
    FirmwareImage image;
    image.info.vendor = "ACME";
    image.info.product = "AC1234";
    image.info.version = "V1.0";
    image.info.encoding = encoding;
    image.filesystem.addFile(
        {"etc/config", FileType::Config, {'a', '=', '1', '\n'}});
    image.filesystem.addFile(
        {"www/index.html", FileType::Other, {'<', '>'}});
    return image;
}

TEST(Filesystem, FindAndBasename)
{
    Filesystem fs;
    fs.addFile({"lib/libc.so", FileType::Library, {1, 2}});
    fs.addFile({"usr/sbin/httpd", FileType::Executable, {3}});
    EXPECT_NE(fs.find("lib/libc.so"), nullptr);
    EXPECT_EQ(fs.find("libc.so"), nullptr);
    EXPECT_NE(fs.findByBasename("libc.so"), nullptr);
    EXPECT_NE(fs.findByBasename("httpd"), nullptr);
    EXPECT_EQ(fs.findByBasename("nope.so"), nullptr);
    EXPECT_EQ(fs.filesOfType(FileType::Library).size(), 1u);
    EXPECT_EQ(fs.totalBytes(), 3u);
}

TEST(Filesystem, BasenameDoesNotMatchSuffixInsideName)
{
    Filesystem fs;
    fs.addFile({"lib/foolibc.so", FileType::Library, {}});
    EXPECT_EQ(fs.findByBasename("libc.so"), nullptr);
}

TEST(Fwimg, PlainRoundTrip)
{
    const FirmwareImage original = makeImage();
    const auto bytes = packFirmware(original);
    auto unpacked = unpackFirmware(bytes);
    ASSERT_TRUE(unpacked) << unpacked.errorMessage();
    const FirmwareImage &image = unpacked.value();
    EXPECT_EQ(image.info.vendor, "ACME");
    EXPECT_EQ(image.info.product, "AC1234");
    EXPECT_EQ(image.info.version, "V1.0");
    ASSERT_EQ(image.filesystem.size(), 2u);
    EXPECT_EQ(image.filesystem.files()[0].path, "etc/config");
    EXPECT_EQ(image.filesystem.files()[0].bytes,
              original.filesystem.files()[0].bytes);
}

TEST(Fwimg, XorAndRotEncodingsRoundTrip)
{
    for (Encoding enc : {Encoding::Xor, Encoding::Rot}) {
        const auto bytes = packFirmware(makeImage(enc));
        auto unpacked = unpackFirmware(bytes);
        ASSERT_TRUE(unpacked) << encodingName(enc);
        EXPECT_EQ(unpacked.value().filesystem.size(), 2u);
    }
}

TEST(Fwimg, EncodedPayloadActuallyDiffers)
{
    const auto plain = packFirmware(makeImage(Encoding::None));
    const auto xored = packFirmware(makeImage(Encoding::Xor));
    EXPECT_NE(plain, xored);
}

TEST(Fwimg, OpaqueEncodingFailsToUnpack)
{
    const auto bytes = packFirmware(makeImage(Encoding::Opaque));
    auto unpacked = unpackFirmware(bytes);
    ASSERT_FALSE(unpacked);
    EXPECT_NE(unpacked.errorMessage().find("encryption"),
              std::string::npos);
}

TEST(Fwimg, MagicScanSkipsBootPadding)
{
    for (std::size_t padding : {0u, 1u, 64u, 1000u}) {
        const auto bytes = packFirmware(makeImage(), padding);
        auto unpacked = unpackFirmware(bytes);
        ASSERT_TRUE(unpacked) << "padding " << padding;
    }
}

TEST(Fwimg, MissingMagicFails)
{
    std::vector<std::uint8_t> junk(256, 0x42);
    auto unpacked = unpackFirmware(junk);
    ASSERT_FALSE(unpacked);
    EXPECT_NE(unpacked.errorMessage().find("magic"),
              std::string::npos);
}

TEST(Fwimg, CorruptPayloadFailsChecksum)
{
    auto bytes = packFirmware(makeImage(), 16);
    bytes[bytes.size() - 2] ^= 0xff;
    auto unpacked = unpackFirmware(bytes);
    ASSERT_FALSE(unpacked);
    EXPECT_NE(unpacked.errorMessage().find("checksum"),
              std::string::npos);
}

TEST(Fwimg, TruncatedImageFails)
{
    const auto bytes = packFirmware(makeImage());
    for (std::size_t cut = 4; cut < bytes.size(); cut += 7) {
        std::vector<std::uint8_t> prefix(bytes.begin(),
                                         bytes.begin() + cut);
        EXPECT_FALSE(unpackFirmware(prefix)) << "cut " << cut;
    }
}

TEST(Fwimg, VendorKeyNonZero)
{
    EXPECT_NE(vendorKey(""), 0);
    EXPECT_NE(vendorKey("NETGEAR"), 0);
}

TEST(Fwimg, CodecInverses)
{
    std::vector<std::uint8_t> payload = {0, 1, 2, 250, 251, 252};
    for (Encoding enc : {Encoding::None, Encoding::Xor,
                         Encoding::Rot}) {
        auto copy = payload;
        encodePayload(copy, enc, 0x5a);
        decodePayload(copy, enc, 0x5a);
        EXPECT_EQ(copy, payload) << encodingName(enc);
    }
}

// ---- network binary selection --------------------------------------

bin::BinaryImage
makeNetworkBinary(const std::string &name, bool withRecv)
{
    bin::BinaryImage image;
    image.name = name;
    image.neededLibraries = {"libc.so"};
    const auto socketPlt = image.addImport("socket", "libc.so");
    ir::Addr recvPlt = socketPlt;
    if (withRecv)
        recvPlt = image.addImport("recv", "libc.so");
    ir::FunctionBuilder b;
    b.call(socketPlt);
    if (withRecv)
        b.call(recvPlt);
    b.ret();
    image.program.addFunction(b.build(bin::kTextBase));
    return image;
}

TEST(Select, PrefersReceiveStyleImports)
{
    const auto sender = makeNetworkBinary("sender", false);
    const auto receiver = makeNetworkBinary("httpd", true);
    EXPECT_GT(networkScore(receiver), networkScore(sender));
}

TEST(Select, PicksHighestScoringExecutable)
{
    Filesystem fs;
    fs.addFile({"bin/sender", FileType::Executable,
                bin::writeBinary(makeNetworkBinary("sender", false))});
    fs.addFile({"usr/sbin/httpd", FileType::Executable,
                bin::writeBinary(makeNetworkBinary("httpd", true))});
    auto target = selectAnalysisTarget(fs);
    ASSERT_TRUE(target) << target.errorMessage();
    EXPECT_EQ(target.value().main->name, "httpd");
    // libc.so missing from the filesystem: recorded, not fatal.
    EXPECT_EQ(target.value().missingLibraries,
              std::vector<std::string>{"libc.so"});
}

TEST(Select, FailsWithoutNetworkBinary)
{
    Filesystem fs;
    bin::BinaryImage plain;
    plain.name = "busybox";
    ir::FunctionBuilder b;
    b.ret();
    plain.program.addFunction(b.build(bin::kTextBase));
    fs.addFile({"bin/busybox", FileType::Executable,
                bin::writeBinary(plain)});
    auto target = selectAnalysisTarget(fs);
    ASSERT_FALSE(target);
    EXPECT_NE(target.errorMessage().find("network"),
              std::string::npos);
}

TEST(Select, FailsWhenNothingParses)
{
    Filesystem fs;
    fs.addFile({"bin/garbage", FileType::Executable, {1, 2, 3}});
    auto target = selectAnalysisTarget(fs);
    ASSERT_FALSE(target);
    EXPECT_NE(target.errorMessage().find("FBIN"), std::string::npos);
}

TEST(Select, ResolvesDependencyLibraries)
{
    Filesystem fs;
    fs.addFile({"usr/sbin/httpd", FileType::Executable,
                bin::writeBinary(makeNetworkBinary("httpd", true))});
    bin::BinaryImage libc;
    libc.name = "libc.so";
    ir::FunctionBuilder b("strlen");
    b.ret();
    libc.program.addFunction(b.build(bin::kTextBase));
    fs.addFile({"lib/libc.so", FileType::Library,
                bin::writeBinary(libc)});
    auto target = selectAnalysisTarget(fs);
    ASSERT_TRUE(target);
    ASSERT_EQ(target.value().libraries.size(), 1u);
    EXPECT_EQ(target.value().libraries[0]->name, "libc.so");
    EXPECT_TRUE(target.value().missingLibraries.empty());
}

} // namespace
} // namespace fits::fw
