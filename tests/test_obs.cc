/**
 * @file
 * Tests for the fits::obs observability subsystem: instrument
 * semantics, registry behavior, concurrent updates, span nesting, the
 * JSON exporter, and the two system-level guarantees the pipeline
 * instrumentation relies on — per-stage spans summing to no more than
 * the enclosing span, and bit-identical analysis output with
 * collection on or off.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hh"
#include "obs/metrics.hh"
#include "support/thread_pool.hh"
#include "synth/firmware_gen.hh"
#include "taint/common.hh"
#include "taint/sta.hh"

namespace {

using namespace fits;

/** Every obs test starts from a zeroed registry and disabled
 * collection, and leaves collection disabled (the same process may
 * run other suites afterwards, e.g. under the TSan filter). */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        obs::setEnabled(false);
        obs::Registry::instance().reset();
    }

    void
    TearDown() override
    {
        obs::setEnabled(false);
        obs::Registry::instance().reset();
    }
};

using ObsCounter = ObsTest;
using ObsGauge = ObsTest;
using ObsHistogram = ObsTest;
using ObsTimer = ObsTest;
using ObsRegistry = ObsTest;
using ObsConcurrent = ObsTest;
using ObsSpan = ObsTest;
using ObsPipeline = ObsTest;

// ---- instrument semantics ---------------------------------------------

TEST_F(ObsCounter, AddAndReset)
{
    obs::Counter counter;
    EXPECT_EQ(counter.value(), 0u);
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);
    counter.reset();
    EXPECT_EQ(counter.value(), 0u);
}

TEST_F(ObsGauge, LastWriteWins)
{
    obs::Gauge gauge;
    EXPECT_EQ(gauge.value(), 0.0);
    gauge.set(3.5);
    gauge.set(-1.25);
    EXPECT_EQ(gauge.value(), -1.25);
    gauge.reset();
    EXPECT_EQ(gauge.value(), 0.0);
}

TEST_F(ObsHistogram, BucketPlacementAndOverflow)
{
    obs::Histogram hist({1.0, 10.0, 100.0});
    hist.observe(0.5);   // bucket 0 (<= 1)
    hist.observe(1.0);   // bucket 0 (inclusive upper bound)
    hist.observe(5.0);   // bucket 1
    hist.observe(100.0); // bucket 2
    hist.observe(999.0); // overflow
    const auto counts = hist.bucketCounts();
    ASSERT_EQ(counts.size(), 4u); // 3 bounds + overflow
    EXPECT_EQ(counts[0], 2u);
    EXPECT_EQ(counts[1], 1u);
    EXPECT_EQ(counts[2], 1u);
    EXPECT_EQ(counts[3], 1u);
    EXPECT_EQ(hist.count(), 5u);
    EXPECT_NEAR(hist.sum(), 1105.5, 1e-3);

    hist.reset();
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_EQ(hist.sum(), 0.0);
    for (auto c : hist.bucketCounts())
        EXPECT_EQ(c, 0u);
}

TEST_F(ObsTimer, RecordsCountTotalAndPeak)
{
    obs::TimerStat timer;
    timer.record(1'000'000);  // 1 ms
    timer.record(3'000'000);  // 3 ms
    timer.record(2'000'000);  // 2 ms
    EXPECT_EQ(timer.count(), 3u);
    EXPECT_NEAR(timer.totalMs(), 6.0, 1e-9);
    EXPECT_NEAR(timer.maxMs(), 3.0, 1e-9);
    timer.reset();
    EXPECT_EQ(timer.count(), 0u);
    EXPECT_EQ(timer.totalMs(), 0.0);
}

// ---- registry ----------------------------------------------------------

TEST_F(ObsRegistry, FindOrCreateReturnsStableReferences)
{
    auto &reg = obs::Registry::instance();
    obs::Counter &a = reg.counter("stable.counter");
    a.add(7);
    // Registering more instruments must not invalidate `a`.
    for (int i = 0; i < 100; ++i)
        reg.counter("churn." + std::to_string(i));
    obs::Counter &b = reg.counter("stable.counter");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 7u);
}

TEST_F(ObsRegistry, HelpersAreNoOpsWhileDisabled)
{
    ASSERT_FALSE(obs::enabled());
    obs::addCounter("disabled.counter", 5);
    obs::setGauge("disabled.gauge", 1.0);
    obs::observe("disabled.hist", 1.0);
    const auto snap = obs::Registry::instance().snapshot();
    EXPECT_EQ(snap.counters.count("disabled.counter"), 0u);
    EXPECT_EQ(snap.gauges.count("disabled.gauge"), 0u);
    EXPECT_EQ(snap.histograms.count("disabled.hist"), 0u);
}

TEST_F(ObsRegistry, SnapshotReflectsEnabledWrites)
{
    obs::setEnabled(true);
    obs::addCounter("snap.counter", 3);
    obs::setGauge("snap.gauge", 2.5);
    obs::observe("snap.hist", 7.0);
    const auto snap = obs::Registry::instance().snapshot();
    EXPECT_EQ(snap.counters.at("snap.counter"), 3u);
    EXPECT_EQ(snap.gauges.at("snap.gauge"), 2.5);
    EXPECT_EQ(snap.histograms.at("snap.hist").count, 1u);
    EXPECT_NEAR(snap.histograms.at("snap.hist").sum, 7.0, 1e-6);
}

// Minimal JSON well-formedness checker (objects, arrays, strings,
// numbers, literals) — enough to prove toJson() emits a document any
// real parser accepts, without pulling in a JSON dependency.
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text)
        : text_(text)
    {
    }

    bool
    valid()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool
    value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
          case '{': return object();
          case '[': return array();
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default: return number();
        }
    }

    bool
    object()
    {
        ++pos_; // '{'
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (peek() != ':')
                return false;
            ++pos_;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++pos_; // '['
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool
    string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\')
                ++pos_;
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-')) {
            ++pos_;
        }
        return pos_ > start;
    }

    bool
    literal(const char *word)
    {
        const std::string w(word);
        if (text_.compare(pos_, w.size(), w) != 0)
            return false;
        pos_ += w.size();
        return true;
    }

    char
    peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

TEST_F(ObsRegistry, ToJsonIsWellFormed)
{
    obs::setEnabled(true);
    obs::addCounter("json.counter", 9);
    obs::setGauge("json.gauge", -0.5);
    obs::observe("json.hist", 12.0);
    obs::Registry::instance().timer("json.timer").record(1'500'000);
    // Names with JSON-hostile characters must be escaped.
    obs::addCounter("json.\"quoted\"\\slash\n", 1);

    const std::string json = obs::Registry::instance().toJson();
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"json.counter\""), std::string::npos);
    EXPECT_NE(json.find("\"json.timer\""), std::string::npos);
}

// ---- concurrency -------------------------------------------------------

TEST_F(ObsConcurrent, ParallelIncrementsSumExactly)
{
    obs::setEnabled(true);
    constexpr std::size_t kTasks = 16;
    constexpr std::size_t kPerTask = 20'000;
    auto &reg = obs::Registry::instance();
    {
        support::ThreadPool pool(4);
        for (std::size_t t = 0; t < kTasks; ++t) {
            pool.submit([&reg] {
                // Mix pre-resolved and name-resolved updates, as the
                // engines and thread pool do.
                obs::Counter &fast = reg.counter("conc.fast");
                for (std::size_t i = 0; i < kPerTask; ++i) {
                    fast.add();
                    obs::addCounter("conc.slow");
                    obs::observe("conc.hist", 1.0);
                }
            });
        }
        pool.wait();
    }
    EXPECT_EQ(reg.counter("conc.fast").value(), kTasks * kPerTask);
    EXPECT_EQ(reg.counter("conc.slow").value(), kTasks * kPerTask);
    EXPECT_EQ(reg.histogram("conc.hist").count(), kTasks * kPerTask);
}

TEST_F(ObsConcurrent, SnapshotWhileWritingIsSafeAndMonotone)
{
    obs::setEnabled(true);
    auto &reg = obs::Registry::instance();
    std::atomic<bool> stop{false};
    std::uint64_t lastSeen = 0;
    std::thread reader([&] {
        while (!stop.load(std::memory_order_relaxed)) {
            const auto snap = reg.snapshot();
            const auto it = snap.counters.find("race.counter");
            if (it != snap.counters.end()) {
                EXPECT_GE(it->second, lastSeen);
                lastSeen = it->second;
            }
        }
    });
    {
        support::ThreadPool pool(4);
        for (int t = 0; t < 8; ++t) {
            pool.submit([&reg] {
                for (int i = 0; i < 50'000; ++i)
                    reg.counter("race.counter").add();
            });
        }
        pool.wait();
    }
    stop.store(true, std::memory_order_relaxed);
    reader.join();
    EXPECT_EQ(reg.counter("race.counter").value(), 8u * 50'000u);
}

// ---- scoped spans ------------------------------------------------------

TEST_F(ObsSpan, NestsPerThread)
{
    obs::setEnabled(true);
    obs::ScopedTimer outer("outer");
    EXPECT_EQ(outer.path(), "outer");
    {
        obs::ScopedTimer inner("inner");
        EXPECT_EQ(inner.path(), "outer/inner");
        obs::ScopedTimer leaf("leaf");
        EXPECT_EQ(leaf.path(), "outer/inner/leaf");
    }
    obs::ScopedTimer sibling("sibling");
    EXPECT_EQ(sibling.path(), "outer/sibling");
}

TEST_F(ObsSpan, StopRecordsOnceAndReturnsElapsed)
{
    obs::setEnabled(true);
    obs::ScopedTimer timer("span.once");
    const double first = timer.stopMs();
    EXPECT_GE(first, 0.0);
    EXPECT_EQ(timer.stopMs(), first); // idempotent
    const auto snap = obs::Registry::instance().snapshot();
    ASSERT_EQ(snap.timers.count("span.once"), 1u);
    EXPECT_EQ(snap.timers.at("span.once").count, 1u);
}

TEST_F(ObsSpan, MeasuresButDoesNotRecordWhileDisabled)
{
    ASSERT_FALSE(obs::enabled());
    obs::ScopedTimer timer("span.disabled");
    EXPECT_GE(timer.stopMs(), 0.0); // measurement still works
    const auto snap = obs::Registry::instance().snapshot();
    EXPECT_EQ(snap.timers.count("span.disabled"), 0u);
}

TEST_F(ObsSpan, ThreadsKeepIndependentStacks)
{
    obs::setEnabled(true);
    obs::ScopedTimer outer("main.outer");
    std::string otherPath;
    std::thread worker([&otherPath] {
        // A fresh thread must not inherit this thread's span stack.
        obs::ScopedTimer span("worker.span");
        otherPath = span.path();
    });
    worker.join();
    EXPECT_EQ(otherPath, "worker.span");
}

// ---- pipeline integration ----------------------------------------------

synth::GeneratedFirmware
smallSample()
{
    synth::SampleSpec spec;
    spec.profile = synth::tendaProfile();
    spec.profile.minCustomFns = 40;
    spec.profile.maxCustomFns = 60;
    spec.product = "AC6";
    spec.version = "V1";
    spec.name = "obs-sample";
    spec.seed = 0x0b5;
    return synth::generateFirmware(spec);
}

TEST_F(ObsPipeline, StageSpansNestUnderPipelineAndSumBelowTotal)
{
    obs::setEnabled(true);
    const auto fw = smallSample();
    const core::FitsPipeline pipeline;
    const auto artifact = pipeline.analyze(fw.bytes);
    ASSERT_TRUE(artifact.ok) << artifact.error;

    const auto snap = obs::Registry::instance().snapshot();
    const char *stages[] = {"pipeline/unpack", "pipeline/select",
                            "pipeline/lift",   "pipeline/ucse",
                            "pipeline/bfv",    "pipeline/infer"};
    ASSERT_EQ(snap.timers.count("pipeline"), 1u);
    double stageSum = 0.0;
    for (const char *stage : stages) {
        ASSERT_EQ(snap.timers.count(stage), 1u)
            << stage << " span missing";
        stageSum += snap.timers.at(stage).totalMs;
    }
    // Per-stage spans cover disjoint stretches of the pipeline span,
    // so their sum cannot exceed the total (allow scheduling noise).
    EXPECT_LE(stageSum, snap.timers.at("pipeline").totalMs + 1.0);

    // StageTimings stay consistent views over the same spans.
    const auto &t = artifact.timings;
    EXPECT_NEAR(t.behaviorMs, t.liftMs + t.ucseMs + t.bfvMs, 1e-6);
    EXPECT_NEAR(t.totalMs(),
                t.unpackMs + t.selectMs + t.behaviorMs + t.inferMs,
                1e-6);
    EXPECT_LE(t.clusterMs + t.rankMs, t.inferMs + 1.0);
}

TEST_F(ObsPipeline, OutputsAreIdenticalWithMetricsOnAndOff)
{
    const auto fw = smallSample();
    const core::FitsPipeline pipeline;

    obs::setEnabled(false);
    const auto off = pipeline.analyze(fw.bytes);
    obs::setEnabled(true);
    const auto on = pipeline.analyze(fw.bytes);

    ASSERT_EQ(off.ok, on.ok);
    ASSERT_EQ(off.inference.ranking.size(),
              on.inference.ranking.size());
    for (std::size_t i = 0; i < off.inference.ranking.size(); ++i) {
        EXPECT_EQ(off.inference.ranking[i].entry,
                  on.inference.ranking[i].entry);
        EXPECT_EQ(off.inference.ranking[i].score,
                  on.inference.ranking[i].score);
    }

    // Same check on the taint side: alert streams must match.
    ASSERT_TRUE(off.hasAnalysis());
    const taint::StaEngine sta;
    obs::setEnabled(false);
    const auto reportOff =
        sta.run(*off.analysis, taint::classicalTaintSources());
    obs::setEnabled(true);
    const auto reportOn =
        sta.run(*on.analysis, taint::classicalTaintSources());
    ASSERT_EQ(reportOff.alerts.size(), reportOn.alerts.size());
    for (std::size_t i = 0; i < reportOff.alerts.size(); ++i) {
        EXPECT_EQ(reportOff.alerts[i].sinkSite,
                  reportOn.alerts[i].sinkSite);
        EXPECT_EQ(reportOff.alerts[i].sinkName,
                  reportOn.alerts[i].sinkName);
    }
}

TEST_F(ObsPipeline, ExportToFileRoundTrips)
{
    obs::setEnabled(true);
    obs::addCounter("export.counter", 4);
    const std::string path = ::testing::TempDir() + "obs_export.json";
    ASSERT_TRUE(obs::Registry::instance().exportToFile(path));
    std::FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string text;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());
    EXPECT_TRUE(JsonChecker(text).valid()) << text;
    EXPECT_NE(text.find("\"export.counter\""), std::string::npos);
}

// ---- taint alert ordering (regression) ---------------------------------

TEST_F(ObsTest, SortAlertsOrdersByStableKey)
{
    using taint::Alert;
    std::vector<Alert> alerts(3);
    alerts[0].imageIndex = 1;
    alerts[0].sinkSite = 0x100;
    alerts[1].imageIndex = 0;
    alerts[1].sinkSite = 0x200;
    alerts[1].sinkName = "strcpy";
    alerts[2].imageIndex = 0;
    alerts[2].sinkSite = 0x200;
    alerts[2].sinkName = "memcpy";
    taint::sortAlerts(alerts);
    EXPECT_EQ(alerts[0].imageIndex, 0u);
    EXPECT_EQ(alerts[0].sinkName, "memcpy"); // name breaks the tie
    EXPECT_EQ(alerts[1].sinkName, "strcpy");
    EXPECT_EQ(alerts[2].imageIndex, 1u);
}

} // namespace
