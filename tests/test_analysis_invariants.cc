/** @file Cross-analysis invariants checked over generated programs:
 * relations that must hold between the UCSE explorer, the CFG, the
 * dominator/loop analysis, and the reaching-definition results for
 * every function, regardless of shape. */

#include <gtest/gtest.h>

#include "analysis/function_analysis.hh"
#include "ir/builder.hh"
#include "support/strings.hh"
#include "synth/firmware_gen.hh"

namespace fits::analysis {
namespace {

using ir::BinOp;
using ir::FunctionBuilder;
using ir::Operand;

class InvariantSweep : public ::testing::TestWithParam<int>
{
  protected:
    static synth::HttpdResult
    sample(int seed)
    {
        synth::SampleSpec spec;
        spec.profile = seed % 2 == 0 ? synth::netgearProfile()
                                     : synth::ciscoProfile();
        spec.profile.minCustomFns = 80;
        spec.profile.maxCustomFns = 120;
        spec.product = spec.profile.series.front();
        spec.version = "V1";
        spec.name = spec.product + "-V1";
        spec.seed = 0xabc000 + static_cast<std::uint64_t>(seed);
        return synth::generateHttpd(spec);
    }
};

TEST_P(InvariantSweep, UcseReachesOnlyCfgReachableBlocks)
{
    const auto result = sample(GetParam());
    for (const auto &fn : result.image.program.functions()) {
        const auto fa =
            FunctionAnalysis::analyze(result.image, fn);
        const auto reachable = fa.cfg.reachable();
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            if (fa.ucse.reachedBlocks[b]) {
                EXPECT_TRUE(reachable[b])
                    << "UCSE reached a CFG-unreachable block in fn "
                    << support::hex(fn.entry) << " block " << b;
            }
        }
    }
}

TEST_P(InvariantSweep, LoopBlocksAreReachableAndConsistent)
{
    const auto result = sample(GetParam());
    for (const auto &fn : result.image.program.functions()) {
        const auto fa =
            FunctionAnalysis::analyze(result.image, fn);
        const auto reachable = fa.cfg.reachable();
        // hasLoop iff some back edge exists; every loop block is
        // reachable; headers dominate their latches.
        EXPECT_EQ(fa.loops.hasLoop(), !fa.loops.backEdges.empty());
        for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
            if (fa.loops.inLoop[b])
                EXPECT_TRUE(reachable[b]);
            if (fa.loops.controlsLoop[b])
                EXPECT_TRUE(fa.loops.inLoop[b]);
        }
        for (const auto &[latch, header] : fa.loops.backEdges) {
            EXPECT_TRUE(fa.loops.dominates(header, latch));
            EXPECT_TRUE(fa.loops.inLoop[header]);
            EXPECT_TRUE(fa.loops.inLoop[latch]);
        }
    }
}

TEST_P(InvariantSweep, ParamMasksStayWithinInferredParams)
{
    const auto result = sample(GetParam());
    for (const auto &fn : result.image.program.functions()) {
        const auto fa =
            FunctionAnalysis::analyze(result.image, fn);
        const std::uint8_t allowed = static_cast<std::uint8_t>(
            (1u << fa.params.count) - 1);
        for (std::size_t b = 0; b < fa.flow.stmtDeps.size(); ++b) {
            for (std::uint8_t mask : fa.flow.stmtDeps[b]) {
                EXPECT_EQ(mask & ~allowed, 0)
                    << "dependence on a non-parameter in fn "
                    << support::hex(fn.entry);
            }
        }
        EXPECT_EQ(fa.flow.branchDepMask & ~allowed, 0);
        EXPECT_EQ(fa.loopDepMask & ~allowed, 0);
        // Loop-controlling dependence is a subset of branch
        // dependence (loop exits are branches).
        EXPECT_EQ(fa.loopDepMask & ~fa.flow.branchDepMask, 0);
    }
}

TEST_P(InvariantSweep, DefUseChainsReferenceValidDefs)
{
    const auto result = sample(GetParam());
    std::size_t checked = 0;
    for (const auto &fn : result.image.program.functions()) {
        if (++checked > 40)
            break; // DDG validation is per-statement; cap the sweep
        const auto fa =
            FunctionAnalysis::analyze(result.image, fn);
        for (std::size_t b = 0; b < fa.flow.useDefs.size(); ++b) {
            for (const auto &uses : fa.flow.useDefs[b]) {
                for (std::uint32_t id : uses)
                    ASSERT_LT(id, fa.flow.defs.size());
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantSweep,
                         ::testing::Range(0, 4));

TEST(LoopShape, DoWhileLatchControls)
{
    // do { body } while (i < n): the conditional back edge lives in
    // the latch, which must be flagged as loop-controlling.
    FunctionBuilder b;
    auto body = b.newBlock();
    auto exit = b.newBlock();
    b.put(4, Operand::ofImm(0));
    b.jump(body);
    b.switchTo(body);
    auto i = b.get(4);
    b.put(4, Operand::ofTmp(b.binop(BinOp::Add, Operand::ofTmp(i),
                                    Operand::ofImm(1))));
    auto n = b.get(ir::kRegR0);
    auto again = b.binop(BinOp::CmpLt, Operand::ofTmp(i),
                         Operand::ofTmp(n));
    b.branch(Operand::ofTmp(again), body); // back edge
    b.jump(exit);
    b.switchTo(exit);
    b.ret();
    const ir::Function fn = b.build(0x100);
    const Cfg cfg = Cfg::build(fn);
    const LoopInfo info = analyzeLoops(cfg, fn);
    ASSERT_TRUE(info.hasLoop());
    EXPECT_TRUE(info.controlsLoop[1]); // the body/latch block
}

} // namespace
} // namespace fits::analysis
