/** @file Unit and property tests for the IR text parser: hand-written
 * fixtures, error reporting, and the print/parse round trip over
 * generated programs. */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/parse.hh"
#include "ir/printer.hh"
#include "ir/validate.hh"
#include "synth/firmware_gen.hh"

namespace fits::ir {
namespace {

TEST(Parse, HandWrittenFixture)
{
    const std::string text = R"(
function my_getter @ 0x1000 (2 blocks, 4 tmps)
  block 0x1000:
    0x1000: t0 = GET(r0)
    0x1004: t1 = 0x40
    0x1008: t2 = Add(t0, t1)
    0x100c: t3 = LOAD(t2)
    0x1010: IF (t3) GOTO 0x1018
    0x1014: GOTO 0x1018
  block 0x1018:
    0x1018: PUT(r0) = t3
    0x101c: RET
)";
    auto result = parseFunction(text);
    ASSERT_TRUE(result) << result.errorMessage();
    const Function &fn = result.value();
    EXPECT_EQ(fn.name, "my_getter");
    EXPECT_EQ(fn.entry, 0x1000u);
    ASSERT_EQ(fn.blocks.size(), 2u);
    EXPECT_EQ(fn.blocks[0].stmts.size(), 6u);
    EXPECT_EQ(fn.blocks[0].stmts[2].kind, StmtKind::Binop);
    EXPECT_EQ(fn.blocks[0].stmts[2].op, BinOp::Add);
    EXPECT_EQ(fn.blocks[0].stmts[4].kind, StmtKind::Branch);
    EXPECT_EQ(fn.blocks[0].stmts[4].target, 0x1018u);
    EXPECT_EQ(fn.blocks[1].stmts[1].kind, StmtKind::Ret);
    EXPECT_EQ(fn.numTmps, 4u);
    EXPECT_TRUE(validateFunction(fn).empty());
}

TEST(Parse, StrippedNameBecomesEmpty)
{
    const std::string text =
        "function <stripped> @ 0x2000 (1 blocks, 0 tmps)\n"
        "  block 0x2000:\n"
        "    0x2000: RET\n";
    auto result = parseFunction(text);
    ASSERT_TRUE(result);
    EXPECT_TRUE(result.value().name.empty());
}

TEST(Parse, IndirectForms)
{
    const std::string text =
        "function f @ 0x100 (1 blocks, 1 tmps)\n"
        "  block 0x100:\n"
        "    0x100: t0 = GET(r1)\n"
        "    0x104: CALL t0\n"
        "    0x108: GOTO t0\n";
    auto result = parseFunction(text);
    ASSERT_TRUE(result) << result.errorMessage();
    const auto &stmts = result.value().blocks[0].stmts;
    EXPECT_EQ(stmts[1].kind, StmtKind::Call);
    EXPECT_TRUE(stmts[1].indirect);
    EXPECT_EQ(stmts[2].kind, StmtKind::Jump);
    EXPECT_TRUE(stmts[2].indirect);
}

TEST(Parse, RejectsGarbage)
{
    EXPECT_FALSE(parseFunction(""));
    EXPECT_FALSE(parseFunction("not ir at all"));
    EXPECT_FALSE(parseFunction("function f @ zzz (0 blocks)"));
    // A statement before any block.
    EXPECT_FALSE(parseFunction(
        "function f @ 0x100 (1 blocks, 0 tmps)\n"
        "    0x100: RET\n"));
    // An unparsable statement.
    auto bad = parseFunction(
        "function f @ 0x100 (1 blocks, 0 tmps)\n"
        "  block 0x100:\n"
        "    0x100: FROBNICATE t1\n");
    ASSERT_FALSE(bad);
    EXPECT_NE(bad.errorMessage().find("unparsable"),
              std::string::npos);
}

TEST(Parse, RoundTripSimpleFunction)
{
    FunctionBuilder b("roundtrip");
    auto loop = b.newBlock();
    auto exit = b.newBlock();
    b.put(4, Operand::ofImm(0));
    b.jump(loop);
    b.switchTo(loop);
    auto i = b.get(4);
    auto done = b.binop(BinOp::CmpGe, Operand::ofTmp(i),
                        Operand::ofImm(8));
    b.branch(Operand::ofTmp(done), exit);
    auto cell = b.binop(BinOp::Add, Operand::ofImm(0x600000),
                        Operand::ofTmp(i));
    auto v = b.load(Operand::ofTmp(cell));
    b.store(Operand::ofTmp(cell), Operand::ofTmp(v));
    b.put(4, Operand::ofTmp(b.binop(BinOp::Add, Operand::ofTmp(i),
                                    Operand::ofImm(1))));
    b.jump(loop);
    b.switchTo(exit);
    b.call(0x8000);
    b.ret();
    const Function original = b.build(0x4000);

    auto parsed = parseFunction(printFunction(original));
    ASSERT_TRUE(parsed) << parsed.errorMessage();
    // Canonical: printing the parsed function reproduces the text.
    EXPECT_EQ(printFunction(parsed.value()),
              printFunction(original));
}

class ParseRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(ParseRoundTrip, GeneratedProgramsSurviveTextRoundTrip)
{
    // Property: print(parse(print(fn))) == print(fn) for every
    // function of a generated binary (two vendors' worth of shapes).
    synth::SampleSpec spec;
    spec.profile = GetParam() % 2 == 0 ? synth::netgearProfile()
                                       : synth::dlinkProfile();
    spec.profile.minCustomFns = 60;
    spec.profile.maxCustomFns = 90;
    spec.product = spec.profile.series.front();
    spec.version = "V1";
    spec.name = spec.product + "-V1";
    spec.seed = 0x90000 + static_cast<std::uint64_t>(GetParam());
    const auto result = synth::generateHttpd(spec);

    for (const auto &fn : result.image.program.functions()) {
        const std::string text = printFunction(fn);
        auto parsed = parseFunction(text);
        ASSERT_TRUE(parsed) << parsed.errorMessage() << "\n" << text;
        EXPECT_EQ(printFunction(parsed.value()), text);
        EXPECT_EQ(parsed.value().stmtCount(), fn.stmtCount());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParseRoundTrip,
                         ::testing::Range(0, 4));

} // namespace
} // namespace fits::ir
