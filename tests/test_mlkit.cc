/** @file Unit and property tests for the ML kit (distances, DBSCAN,
 * scaling, PCA, statistics). */

#include <gtest/gtest.h>

#include <cmath>

#include "mlkit/dbscan.hh"
#include "mlkit/distance.hh"
#include "mlkit/pca.hh"
#include "mlkit/scaling.hh"
#include "mlkit/stats.hh"
#include "support/rng.hh"

namespace fits::ml {
namespace {

TEST(VectorOps, DotAndNorm)
{
    EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
    EXPECT_DOUBLE_EQ(norm({3, 4}), 5.0);
    EXPECT_DOUBLE_EQ(norm({0, 0}), 0.0);
}

TEST(VectorOps, ColumnStats)
{
    const Matrix m = {{1, 10}, {3, 30}};
    EXPECT_EQ(columns(m), 2u);
    EXPECT_EQ(columnMean(m), (Vec{2, 20}));
    EXPECT_EQ(columnAbsMax(m), (Vec{3, 30}));
    const Vec sd = columnStddev(m, columnMean(m));
    EXPECT_DOUBLE_EQ(sd[0], 1.0);
    EXPECT_DOUBLE_EQ(sd[1], 10.0);
}

TEST(Distance, CosineKnownValues)
{
    EXPECT_DOUBLE_EQ(cosineSimilarity({1, 0}, {1, 0}), 1.0);
    EXPECT_DOUBLE_EQ(cosineSimilarity({1, 0}, {0, 1}), 0.0);
    EXPECT_DOUBLE_EQ(cosineSimilarity({1, 0}, {-1, 0}), -1.0);
    EXPECT_DOUBLE_EQ(cosineSimilarity({0, 0}, {1, 1}), 0.0); // zero vec
    // Cosine is scale-invariant.
    EXPECT_NEAR(cosineSimilarity({1, 2}, {10, 20}), 1.0, 1e-12);
}

TEST(Distance, EuclideanAndManhattan)
{
    EXPECT_DOUBLE_EQ(euclideanDistance({0, 0}, {3, 4}), 5.0);
    EXPECT_DOUBLE_EQ(manhattanDistance({0, 0}, {3, 4}), 7.0);
}

TEST(Distance, PearsonKnownValues)
{
    EXPECT_NEAR(pearsonCorrelation({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
    EXPECT_NEAR(pearsonCorrelation({1, 2, 3}, {3, 2, 1}), -1.0,
                1e-12);
    EXPECT_DOUBLE_EQ(pearsonCorrelation({1, 1, 1}, {2, 4, 6}), 0.0);
}

TEST(Distance, MetricProperties)
{
    // Property sweep: symmetry and identity over random vectors.
    support::Rng rng(99);
    for (int round = 0; round < 200; ++round) {
        Vec a(6), b(6);
        for (std::size_t i = 0; i < 6; ++i) {
            a[i] = rng.uniformReal(-5, 5);
            b[i] = rng.uniformReal(-5, 5);
        }
        for (Metric m : {Metric::Cosine, Metric::Euclidean,
                         Metric::Manhattan, Metric::Pearson}) {
            EXPECT_NEAR(distance(m, a, b), distance(m, b, a), 1e-9);
            EXPECT_GE(distance(Metric::Euclidean, a, a), 0.0);
        }
        EXPECT_NEAR(distance(Metric::Euclidean, a, a), 0.0, 1e-12);
        EXPECT_NEAR(distance(Metric::Manhattan, a, a), 0.0, 1e-12);
        const double cs = cosineSimilarity(a, b);
        EXPECT_LE(cs, 1.0 + 1e-9);
        EXPECT_GE(cs, -1.0 - 1e-9);
    }
}

TEST(Distance, SimilarityMonotoneInDistance)
{
    const Vec a = {0, 0};
    EXPECT_GT(similarity(Metric::Euclidean, a, {1, 0}),
              similarity(Metric::Euclidean, a, {5, 0}));
    EXPECT_GT(similarity(Metric::Manhattan, a, {1, 0}),
              similarity(Metric::Manhattan, a, {5, 0}));
}

TEST(Dbscan, TwoBlobsAndNoise)
{
    Matrix points;
    support::Rng rng(5);
    for (int i = 0; i < 20; ++i)
        points.push_back({rng.uniformReal(0, 0.2),
                          rng.uniformReal(0, 0.2)});
    for (int i = 0; i < 20; ++i)
        points.push_back({rng.uniformReal(5, 5.2),
                          rng.uniformReal(5, 5.2)});
    points.push_back({2.5, 2.5}); // isolated noise point

    const DbscanResult r =
        dbscan(points, {0.5, 3, Metric::Euclidean});
    EXPECT_EQ(r.numClusters, 2);
    EXPECT_EQ(r.noiseCount(), 1u);
    EXPECT_EQ(r.labels[40], -1);
    // All blob-1 members share one label; blob-2 another.
    for (int i = 1; i < 20; ++i)
        EXPECT_EQ(r.labels[i], r.labels[0]);
    for (int i = 21; i < 40; ++i)
        EXPECT_EQ(r.labels[i], r.labels[20]);
    EXPECT_NE(r.labels[0], r.labels[20]);
    EXPECT_EQ(r.members(r.labels[0]).size(), 20u);
}

TEST(Dbscan, AllNoiseWhenSparse)
{
    Matrix points = {{0, 0}, {10, 0}, {0, 10}, {10, 10}};
    const DbscanResult r = dbscan(points, {1.0, 3,
                                           Metric::Euclidean});
    EXPECT_EQ(r.numClusters, 0);
    EXPECT_EQ(r.noiseCount(), 4u);
}

TEST(Dbscan, MinPtsOneMakesEverythingCore)
{
    Matrix points = {{0, 0}, {10, 0}};
    const DbscanResult r = dbscan(points, {1.0, 1,
                                           Metric::Euclidean});
    EXPECT_EQ(r.numClusters, 2);
    EXPECT_EQ(r.noiseCount(), 0u);
}

TEST(Dbscan, EmptyInput)
{
    const DbscanResult r = dbscan({}, {0.5, 3, Metric::Euclidean});
    EXPECT_EQ(r.numClusters, 0);
    EXPECT_TRUE(r.labels.empty());
}

TEST(Scaling, MaxAbs)
{
    const Matrix out = maxAbsScale({{2, -10}, {4, 5}});
    EXPECT_DOUBLE_EQ(out[0][0], 0.5);
    EXPECT_DOUBLE_EQ(out[1][0], 1.0);
    EXPECT_DOUBLE_EQ(out[0][1], -1.0);
    EXPECT_DOUBLE_EQ(out[1][1], 0.5);
}

TEST(Scaling, MaxAbsZeroColumnUntouched)
{
    const Matrix out = maxAbsScale({{0, 1}, {0, 2}});
    EXPECT_DOUBLE_EQ(out[0][0], 0.0);
    EXPECT_DOUBLE_EQ(out[1][0], 0.0);
}

TEST(Scaling, Standardize)
{
    const Matrix out = standardize({{1, 5}, {3, 5}});
    EXPECT_DOUBLE_EQ(out[0][0], -1.0);
    EXPECT_DOUBLE_EQ(out[1][0], 1.0);
    EXPECT_DOUBLE_EQ(out[0][1], 0.0); // zero-variance column
}

TEST(Scaling, MinMax)
{
    const Matrix out = minMaxScale({{0, 2}, {10, 4}, {5, 3}});
    EXPECT_DOUBLE_EQ(out[0][0], 0.0);
    EXPECT_DOUBLE_EQ(out[1][0], 1.0);
    EXPECT_DOUBLE_EQ(out[2][0], 0.5);
    EXPECT_DOUBLE_EQ(out[2][1], 0.5);
}

TEST(Pca, RecoversDominantDirection)
{
    // Points along the line y = 2x with small noise: the first
    // component must align with (1, 2)/|.|.
    support::Rng rng(7);
    Matrix m;
    for (int i = 0; i < 200; ++i) {
        const double t = rng.uniformReal(-1, 1);
        m.push_back({t + rng.uniformReal(-0.01, 0.01),
                     2 * t + rng.uniformReal(-0.01, 0.01)});
    }
    const PcaModel model = fitPca(m, 1);
    ASSERT_EQ(model.components.size(), 1u);
    const Vec &c = model.components[0];
    const double ratio = std::fabs(c[1] / c[0]);
    EXPECT_NEAR(ratio, 2.0, 0.05);
}

TEST(Pca, TransformCentersData)
{
    const Matrix m = {{1, 1}, {3, 3}};
    const PcaModel model = fitPca(m, 2);
    const Vec projected = model.transform({2, 2}); // the mean
    for (double v : projected)
        EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(Pca, ClampsComponentCount)
{
    const Matrix m = {{1, 2}, {3, 4}};
    const PcaModel model = fitPca(m, 10);
    EXPECT_EQ(model.components.size(), 2u);
}

TEST(Stats, MeanAndStddev)
{
    EXPECT_DOUBLE_EQ(mean({1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({2, 2, 2}), 0.0);
    EXPECT_NEAR(stddev({1, 3}), 1.0, 1e-12);
}

TEST(Stats, Correlation)
{
    EXPECT_NEAR(correlation({1, 2, 3}, {10, 20, 30}), 1.0, 1e-12);
    EXPECT_NEAR(correlation({1, 2, 3}, {30, 20, 10}), -1.0, 1e-12);
    EXPECT_DOUBLE_EQ(correlation({1, 2}, {1}), 0.0); // size mismatch
    EXPECT_DOUBLE_EQ(correlation({1, 1}, {2, 3}), 0.0); // no variance
}

TEST(Stats, LinearSlope)
{
    EXPECT_NEAR(linearSlope({0, 1, 2}, {1, 3, 5}), 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(linearSlope({1, 1}, {2, 3}), 0.0);
}

} // namespace
} // namespace fits::ml
