/** @file Determinism and degradation tests for the fits::cache
 * analysis-memoization subsystem: behavior-bundle serialization
 * round-trips bit-for-bit, rankings are identical with/without the
 * cache and across cold/warm runs on both tiers, serial and parallel
 * corpus runs agree, corrupt or stale disk entries degrade to misses,
 * injected cache faults degrade gracefully, and the memory tier stays
 * within its LRU budget. */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "chaos/chaos.hh"
#include "core/behavior_io.hh"
#include "core/pipeline.hh"
#include "eval/corpus_runner.hh"
#include "eval/harness.hh"
#include "firmware/fwimg.hh"
#include "synth/firmware_gen.hh"

namespace fits {
namespace {

namespace fs = std::filesystem;

/** Every test starts from a cold cache with default options and a
 * private disk directory, and restores that state on the way out so
 * no cache contents leak between tests in this process. */
class CacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        chaos::reset();
        cache::configure(cache::Options{});
        cache::clearMemory();
        cache::resetStats();
        dir_ = (fs::temp_directory_path() /
                ("fits_cache_test_" +
                 std::string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name())))
                   .string();
        fs::remove_all(dir_);
    }

    void
    TearDown() override
    {
        chaos::reset();
        cache::configure(cache::Options{});
        cache::clearMemory();
        cache::resetStats();
        fs::remove_all(dir_);
    }

    /** Enable the disk tier rooted at this test's private directory. */
    void
    enableDisk()
    {
        cache::Options options = cache::options();
        options.disk = true;
        options.dir = dir_;
        cache::configure(options);
    }

    std::string dir_;
};

/** A small deterministic corpus with shared per-vendor libraries, so
 * cross-sample image/analysis reuse actually occurs. */
std::vector<synth::GeneratedFirmware>
smallCorpus(std::size_t n)
{
    std::vector<synth::GeneratedFirmware> corpus;
    for (std::size_t i = 0; i < n; ++i) {
        synth::SampleSpec spec;
        spec.profile = synth::tendaProfile();
        spec.profile.minCustomFns = 40;
        spec.profile.maxCustomFns = 60;
        spec.product = "AC" + std::to_string(6 + i);
        spec.version = "V1";
        spec.name = "cache-sample-" + std::to_string(i);
        spec.seed = 0xcac4e + i;
        corpus.push_back(synth::generateFirmware(spec));
    }
    return corpus;
}

/** Exact bit-level score comparison: == would also pass for -0.0 vs
 * +0.0, which the bit-identity guarantee forbids. */
std::uint64_t
scoreBits(double score)
{
    return std::bit_cast<std::uint64_t>(score);
}

void
expectIdenticalOutcomes(const std::vector<eval::InferenceOutcome> &a,
                        const std::vector<eval::InferenceOutcome> &b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].ok, b[i].ok) << "sample " << i;
        EXPECT_EQ(a[i].firstItsRank, b[i].firstItsRank);
        ASSERT_EQ(a[i].ranking.size(), b[i].ranking.size());
        for (std::size_t r = 0; r < a[i].ranking.size(); ++r) {
            EXPECT_EQ(a[i].ranking[r].id, b[i].ranking[r].id);
            EXPECT_EQ(a[i].ranking[r].entry, b[i].ranking[r].entry);
            EXPECT_EQ(a[i].ranking[r].name, b[i].ranking[r].name);
            EXPECT_EQ(scoreBits(a[i].ranking[r].score),
                      scoreBits(b[i].ranking[r].score))
                << "sample " << i << " rank " << r;
        }
    }
}

core::PipelineConfig
cachingPipelineConfig()
{
    core::PipelineConfig config;
    config.behaviorCache = true;
    return config;
}

// ---- behavior-bundle serialization -------------------------------------

TEST_F(CacheTest, BundleRoundTripIsBitIdentical)
{
    const auto corpus = smallCorpus(1);
    const core::FitsPipeline pipeline{core::PipelineConfig{}};
    const auto result = pipeline.run(corpus[0].bytes);
    ASSERT_TRUE(result.ok);

    core::BehaviorBundle bundle;
    bundle.imageInfo = result.imageInfo;
    bundle.binaryName = result.binaryName;
    bundle.numFunctions = result.numFunctions;
    bundle.binaryBytes = result.binaryBytes;
    bundle.behavior = result.behavior;

    const std::string payload = core::encodeBehaviorBundle(bundle);
    const auto decoded = core::decodeBehaviorBundle(payload);
    ASSERT_TRUE(decoded.has_value());

    EXPECT_EQ(decoded->binaryName, bundle.binaryName);
    EXPECT_EQ(decoded->numFunctions, bundle.numFunctions);
    EXPECT_EQ(decoded->binaryBytes, bundle.binaryBytes);
    EXPECT_EQ(decoded->imageInfo.vendor, bundle.imageInfo.vendor);
    ASSERT_EQ(decoded->behavior.records.size(),
              bundle.behavior.records.size());
    EXPECT_EQ(decoded->behavior.customFns, bundle.behavior.customFns);
    EXPECT_EQ(decoded->behavior.anchorFns, bundle.behavior.anchorFns);
    for (std::size_t i = 0; i < bundle.behavior.records.size(); ++i) {
        const auto &in = bundle.behavior.records[i];
        const auto &out = decoded->behavior.records[i];
        EXPECT_EQ(out.name, in.name);
        EXPECT_EQ(out.entry, in.entry);
        const auto inVec = in.bfv.toVector();
        const auto outVec = out.bfv.toVector();
        ASSERT_EQ(outVec.size(), inVec.size());
        for (std::size_t d = 0; d < inVec.size(); ++d)
            EXPECT_EQ(scoreBits(outVec[d]), scoreBits(inVec[d]));
    }

    // Re-encoding the decoded bundle must reproduce the exact bytes:
    // the payload is a pure function of the product.
    EXPECT_EQ(core::encodeBehaviorBundle(*decoded), payload);
}

TEST_F(CacheTest, DecodeRejectsCorruptPayloads)
{
    const auto corpus = smallCorpus(1);
    const core::FitsPipeline pipeline{core::PipelineConfig{}};
    const auto result = pipeline.run(corpus[0].bytes);
    ASSERT_TRUE(result.ok);
    core::BehaviorBundle bundle;
    bundle.behavior = result.behavior;
    const std::string payload = core::encodeBehaviorBundle(bundle);

    // Truncation anywhere, a wrong magic, a future version, and
    // trailing garbage must all be rejected — never misparsed.
    EXPECT_FALSE(core::decodeBehaviorBundle("").has_value());
    for (const std::size_t cut :
         {std::size_t{3}, std::size_t{7}, payload.size() / 2,
          payload.size() - 1}) {
        EXPECT_FALSE(
            core::decodeBehaviorBundle(payload.substr(0, cut))
                .has_value())
            << "cut at " << cut;
    }
    std::string badMagic = payload;
    badMagic[0] = 'X';
    EXPECT_FALSE(core::decodeBehaviorBundle(badMagic).has_value());
    std::string badVersion = payload;
    badVersion[4] = static_cast<char>(0x7f);
    EXPECT_FALSE(core::decodeBehaviorBundle(badVersion).has_value());
    EXPECT_FALSE(
        core::decodeBehaviorBundle(payload + '\0').has_value());
}

// ---- memory tier -------------------------------------------------------

TEST_F(CacheTest, LoadImageSharesOneInstancePerContent)
{
    const auto corpus = smallCorpus(1);
    auto unpacked = fw::unpackFirmware(corpus[0].bytes);
    ASSERT_TRUE(unpacked);
    const auto &files = unpacked.value().filesystem.files();
    ASSERT_FALSE(files.empty());

    // The first liftable file will do; config files fail to load and
    // (by design) are never cached.
    bool tested = false;
    for (const auto &entry : files) {
        const auto first = cache::loadImage(entry.bytes);
        if (!first)
            continue;
        const auto second = cache::loadImage(entry.bytes);
        ASSERT_TRUE(second);
        EXPECT_EQ(first.value().get(), second.value().get());
        tested = true;
        break;
    }
    ASSERT_TRUE(tested);
    EXPECT_GE(cache::stats().hits, 1u);
}

TEST_F(CacheTest, ColdAndWarmMemoryRankingsIdentical)
{
    const auto corpus = smallCorpus(3);
    eval::CorpusRunner::Config config;
    config.jobs = 1;
    config.pipeline = cachingPipelineConfig();

    const eval::CorpusRunner runner(config);
    const auto cold = runner.runInference(corpus);
    const auto coldStats = cache::stats();
    EXPECT_GT(coldStats.misses, 0u);

    const auto warm = runner.runInference(corpus);
    const auto warmStats = cache::stats();
    EXPECT_GT(warmStats.hits, coldStats.hits);
    expectIdenticalOutcomes(cold, warm);

    // And both equal the fully uncached computation.
    cache::Options off;
    off.memory = false;
    off.disk = false;
    cache::configure(off);
    eval::CorpusRunner::Config rawConfig;
    rawConfig.jobs = 1;
    rawConfig.cache = false;
    const eval::CorpusRunner raw(rawConfig);
    expectIdenticalOutcomes(cold, raw.runInference(corpus));
}

TEST_F(CacheTest, SerialAndParallelRankingsIdentical)
{
    const auto corpus = smallCorpus(4);
    eval::CorpusRunner::Config serialConfig;
    serialConfig.jobs = 1;
    serialConfig.pipeline = cachingPipelineConfig();
    eval::CorpusRunner::Config parallelConfig = serialConfig;
    parallelConfig.jobs = 4;

    const auto serial =
        eval::CorpusRunner(serialConfig).runInference(corpus);
    cache::clearMemory();
    const auto parallel =
        eval::CorpusRunner(parallelConfig).runInference(corpus);
    expectIdenticalOutcomes(serial, parallel);

    // Warm parallel run (workers race on a hot cache) agrees too.
    const auto warmParallel =
        eval::CorpusRunner(parallelConfig).runInference(corpus);
    expectIdenticalOutcomes(serial, warmParallel);
}

TEST_F(CacheTest, RunFullWithCacheMatchesWithout)
{
    const auto corpus = smallCorpus(2);
    eval::CorpusRunner::Config config;
    config.jobs = 1;
    config.pipeline = cachingPipelineConfig();
    const auto cached = eval::CorpusRunner(config).runFull(corpus);

    cache::Options off;
    off.memory = false;
    off.disk = false;
    cache::configure(off);
    eval::CorpusRunner::Config rawConfig;
    rawConfig.jobs = 1;
    rawConfig.cache = false;
    const auto raw = eval::CorpusRunner(rawConfig).runFull(corpus);

    ASSERT_EQ(cached.size(), raw.size());
    for (std::size_t i = 0; i < cached.size(); ++i) {
        EXPECT_EQ(cached[i].inference.firstItsRank,
                  raw[i].inference.firstItsRank);
        EXPECT_EQ(cached[i].taint.ok, raw[i].taint.ok);
        EXPECT_EQ(cached[i].taint.sta.alerts, raw[i].taint.sta.alerts);
        EXPECT_EQ(cached[i].taint.staIts.alerts,
                  raw[i].taint.staIts.alerts);
        EXPECT_EQ(cached[i].taint.karonte.alerts,
                  raw[i].taint.karonte.alerts);
        EXPECT_EQ(cached[i].taint.sta.bugs, raw[i].taint.sta.bugs);
    }
}

TEST_F(CacheTest, LruEvictionKeepsMemoryBounded)
{
    cache::Options options = cache::options();
    options.maxBytes = 64 * 1024;
    cache::configure(options);

    const std::string blob(16 * 1024, 'x');
    for (std::uint64_t i = 0; i < 32; ++i)
        cache::storeBlob("evict-test", i, i, blob);

    const auto stats = cache::stats();
    EXPECT_LE(stats.bytes, options.maxBytes);
    EXPECT_GT(stats.evictions, 0u);

    // The newest entry survived; the oldest was evicted.
    EXPECT_TRUE(cache::fetchBlob("evict-test", 31, 31).has_value());
    EXPECT_FALSE(cache::fetchBlob("evict-test", 0, 0).has_value());
}

// ---- disk tier ---------------------------------------------------------

TEST_F(CacheTest, DiskTierSurvivesProcessMemoryLoss)
{
    enableDisk();
    const auto corpus = smallCorpus(2);
    eval::CorpusRunner::Config config;
    config.jobs = 1;
    config.pipeline = cachingPipelineConfig();
    const eval::CorpusRunner runner(config);

    const auto cold = runner.runInference(corpus);
    // Dropping the memory tier simulates a fresh process; the second
    // run must be served from disk, bit-identically.
    cache::clearMemory();
    cache::resetStats();
    const auto warm = runner.runInference(corpus);
    const auto stats = cache::stats();
    EXPECT_GT(stats.diskHits, 0u);
    expectIdenticalOutcomes(cold, warm);
}

TEST_F(CacheTest, CorruptDiskEntriesDegradeToMisses)
{
    enableDisk();
    const std::string payload = "intermediate taint sources";
    cache::storeBlob("t", 7, 9, payload);
    cache::clearMemory();
    ASSERT_EQ(cache::fetchBlob("t", 7, 9), payload);

    const std::string path = cache::blobPath("t", 7, 9);
    ASSERT_FALSE(path.empty());
    ASSERT_TRUE(fs::exists(path));

    const auto rewrite = [&](const std::string &bytes) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    };
    std::string raw;
    {
        std::ifstream in(path, std::ios::binary);
        raw.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    }
    ASSERT_GT(raw.size(), 8u);

    // Bit flip in the payload: checksum mismatch.
    std::string flipped = raw;
    flipped[flipped.size() - 2] =
        static_cast<char>(flipped[flipped.size() - 2] ^ 0x40);
    rewrite(flipped);
    cache::clearMemory();
    cache::resetStats();
    EXPECT_FALSE(cache::fetchBlob("t", 7, 9).has_value());
    EXPECT_GT(cache::stats().diskCorrupt, 0u);

    // Version skew: a future format is a miss, not a parse attempt.
    std::string skewed = raw;
    skewed[4] = static_cast<char>(0x7f);
    rewrite(skewed);
    cache::clearMemory();
    EXPECT_FALSE(cache::fetchBlob("t", 7, 9).has_value());

    // Truncation: short reads never crash.
    rewrite(raw.substr(0, raw.size() / 2));
    cache::clearMemory();
    EXPECT_FALSE(cache::fetchBlob("t", 7, 9).has_value());

    // Key echo mismatch: an entry renamed onto another key's path
    // (stale or attacker-moved) is rejected.
    rewrite(raw);
    fs::copy_file(path, cache::blobPath("t", 8, 10),
                  fs::copy_options::overwrite_existing);
    cache::clearMemory();
    EXPECT_FALSE(cache::fetchBlob("t", 8, 10).has_value());

    // The intact original still hits.
    cache::clearMemory();
    EXPECT_EQ(cache::fetchBlob("t", 7, 9), payload);
}

// ---- fault injection ---------------------------------------------------

TEST_F(CacheTest, NonCacheFaultsBypassEveryTier)
{
    enableDisk();
    EXPECT_TRUE(cache::memoryUsable());
    EXPECT_TRUE(cache::diskUsable());

    // A rule that can fire inside a cached computation forces bypass.
    ASSERT_TRUE(chaos::configure("unpack.*@50"));
    EXPECT_FALSE(cache::memoryUsable());
    EXPECT_FALSE(cache::diskUsable());

    // Faults confined to the cache's own sites leave it usable —
    // they exercise its degradation paths instead.
    ASSERT_TRUE(chaos::configure("cache.read@50,cache.write@50"));
    EXPECT_TRUE(cache::memoryUsable());
    EXPECT_TRUE(cache::diskUsable());
}

TEST_F(CacheTest, InjectedWriteFaultSkipsDiskEntry)
{
    enableDisk();
    ASSERT_TRUE(chaos::configure("cache.write"));
    cache::storeBlob("t", 1, 2, "payload");
    chaos::reset();
    cache::clearMemory();
    EXPECT_FALSE(cache::fetchBlob("t", 1, 2).has_value());
    EXPECT_FALSE(fs::exists(cache::blobPath("t", 1, 2)));
}

TEST_F(CacheTest, InjectedReadFaultDegradesToMiss)
{
    enableDisk();
    cache::storeBlob("t", 3, 4, "payload");
    cache::clearMemory();
    ASSERT_TRUE(chaos::configure("cache.read"));
    cache::resetStats();
    EXPECT_FALSE(cache::fetchBlob("t", 3, 4).has_value());
    EXPECT_GT(cache::stats().diskCorrupt, 0u);
    chaos::reset();
    EXPECT_EQ(cache::fetchBlob("t", 3, 4), std::string("payload"));
}

TEST_F(CacheTest, PipelineUnderCacheFaultsStillCorrect)
{
    enableDisk();
    const auto corpus = smallCorpus(2);
    eval::CorpusRunner::Config config;
    config.jobs = 1;
    config.pipeline = cachingPipelineConfig();
    const eval::CorpusRunner runner(config);
    const auto baseline = runner.runInference(corpus);

    // Every cache access failing must not change a single score.
    ASSERT_TRUE(chaos::configure("cache.read,cache.write"));
    cache::clearMemory();
    const auto faulted = runner.runInference(corpus);
    expectIdenticalOutcomes(baseline, faulted);
}

} // namespace
} // namespace fits
