/** @file Property-style tests: parameterized sweeps over seeds
 * asserting the invariants every generated artifact and every analysis
 * must uphold, regardless of the random draw. */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/program_analysis.hh"
#include "binary/fbin.hh"
#include "core/behavior.hh"
#include "core/infer.hh"
#include "eval/harness.hh"
#include "firmware/fwimg.hh"
#include "firmware/select.hh"
#include "ir/validate.hh"
#include "support/rng.hh"
#include "support/strings.hh"
#include "synth/firmware_gen.hh"
#include "taint/karonte.hh"
#include "taint/sta.hh"

namespace fits {
namespace {

synth::SampleSpec
seededSpec(std::uint64_t seed)
{
    // Rotate vendor profiles so the sweep covers all generator paths.
    const synth::VendorProfile profiles[] = {
        synth::netgearProfile(), synth::dlinkProfile(),
        synth::tplinkProfile(), synth::tendaProfile(),
        synth::ciscoProfile()};
    synth::SampleSpec spec;
    spec.profile = profiles[seed % 5];
    spec.profile.minCustomFns = 120;
    spec.profile.maxCustomFns = 180;
    spec.product = spec.profile.series.front();
    spec.version = "V1";
    spec.name = spec.product + "-V1";
    spec.seed = 0xbadcafe000ULL + seed * 0x9e3779b9ULL;
    return spec;
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, GeneratedProgramsValidate)
{
    const auto result = synth::generateHttpd(seededSpec(GetParam()));
    const auto problems = ir::validateProgram(result.image.program);
    ASSERT_TRUE(problems.empty()) << problems.front();
}

TEST_P(SeedSweep, FbinRoundTripIsIdentity)
{
    const auto result = synth::generateHttpd(seededSpec(GetParam()));
    const auto bytes = bin::writeBinary(result.image);
    auto loaded = bin::loadBinary(bytes);
    ASSERT_TRUE(loaded) << loaded.errorMessage();
    EXPECT_EQ(bin::writeBinary(loaded.value()), bytes);
}

TEST_P(SeedSweep, FirmwarePackUnpackPreservesFiles)
{
    const auto fw = synth::generateFirmware(seededSpec(GetParam()));
    auto unpacked = fw::unpackFirmware(fw.bytes);
    ASSERT_TRUE(unpacked) << unpacked.errorMessage();
    // All generated file paths present with identical bytes.
    EXPECT_GE(unpacked.value().filesystem.size(), 4u);
    const auto *libc =
        unpacked.value().filesystem.findByBasename("libc.so");
    ASSERT_NE(libc, nullptr);
    EXPECT_FALSE(libc->bytes.empty());
}

TEST_P(SeedSweep, InferencePipelineNeverCrashesAndRanksDeterministically)
{
    const auto fw = synth::generateFirmware(seededSpec(GetParam()));
    const auto a = eval::runInference(fw);
    const auto b = eval::runInference(fw);
    ASSERT_EQ(a.ok, b.ok);
    if (!a.ok)
        return;
    ASSERT_EQ(a.ranking.size(), b.ranking.size());
    for (std::size_t i = 0; i < a.ranking.size(); ++i)
        EXPECT_EQ(a.ranking[i].entry, b.ranking[i].entry);
}

TEST_P(SeedSweep, BfvInvariants)
{
    const auto fw = synth::generateFirmware(seededSpec(GetParam()));
    const auto outcome = eval::runInference(fw);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    for (const auto &rec : outcome.behavior.records) {
        const core::Bfv &bfv = rec.bfv;
        EXPECT_GE(bfv.numBlocks, 1.0);
        EXPECT_GE(bfv.numCallers, 0.0);
        EXPECT_GE(bfv.numParams, 0.0);
        EXPECT_LE(bfv.numParams, 4.0);
        EXPECT_LE(bfv.numAnchorCalls, bfv.numLibCalls + 0.5)
            << "anchor calls are library calls";
        if (bfv.paramsControlLoop)
            EXPECT_TRUE(bfv.hasLoop);
        if (bfv.numDistinctStrings > 0)
            EXPECT_TRUE(bfv.argsHaveStrings);
        if (bfv.argsHaveStrings)
            EXPECT_GE(bfv.numDistinctStrings, 1.0);
        if (bfv.paramsToAnchor)
            EXPECT_GE(bfv.numAnchorCalls, 1.0);
    }
}

TEST_P(SeedSweep, TaintEngineInvariants)
{
    const auto fw = synth::generateFirmware(seededSpec(GetParam()));
    const auto outcome = eval::runTaint(fw);
    ASSERT_TRUE(outcome.ok) << outcome.error;

    auto contains = [](const std::vector<ir::Addr> &super,
                       const std::vector<ir::Addr> &sub) {
        return std::all_of(sub.begin(), sub.end(), [&](ir::Addr a) {
            return std::find(super.begin(), super.end(), a) !=
                   super.end();
        });
    };
    // ITS-augmented bug sets are supersets (the paper's claim, and the
    // budget-split design guarantee).
    EXPECT_TRUE(contains(outcome.karonteItsBugs,
                         outcome.karonteBugs));
    EXPECT_TRUE(contains(outcome.staItsBugs, outcome.staBugs));
    // Bugs never exceed alerts.
    for (const auto *stats :
         {&outcome.karonte, &outcome.karonteIts, &outcome.sta,
          &outcome.staIts}) {
        EXPECT_LE(stats->bugs, stats->alerts);
    }
}

TEST_P(SeedSweep, AlertsLandOnPlantedSinkSites)
{
    const auto fw = synth::generateFirmware(seededSpec(GetParam()));
    auto unpacked = fw::unpackFirmware(fw.bytes);
    ASSERT_TRUE(unpacked);
    auto target =
        fw::selectAnalysisTarget(unpacked.value().filesystem);
    ASSERT_TRUE(target);
    const analysis::LinkedProgram linked(*target.value().main,
                                         target.value().libraries);
    const auto pa = analysis::ProgramAnalysis::analyze(linked);
    const taint::StaEngine sta;
    const auto report =
        sta.run(pa, taint::classicalTaintSources());
    for (const auto &alert : report.alerts) {
        EXPECT_NE(fw.truth.siteAt(alert.sinkSite), nullptr)
            << "alert outside the planted sink sites at "
            << support::hex(alert.sinkSite);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range<std::uint64_t>(0, 10));

// ---- DBSCAN properties over random data ------------------------------

class DbscanSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(DbscanSweep, LabelsAreWellFormed)
{
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 1);
    ml::Matrix points;
    const std::size_t n = 20 + rng.index(60);
    for (std::size_t i = 0; i < n; ++i) {
        ml::Vec row(4);
        for (auto &v : row)
            v = rng.uniformReal(0, 2);
        points.push_back(std::move(row));
    }
    const ml::DbscanConfig config{0.4, 3, ml::Metric::Euclidean};
    const auto result = ml::dbscan(points, config);
    ASSERT_EQ(result.labels.size(), n);
    for (int label : result.labels) {
        EXPECT_GE(label, -1);
        EXPECT_LT(label, result.numClusters);
    }
    // Each non-empty cluster id below numClusters is used.
    for (int c = 0; c < result.numClusters; ++c)
        EXPECT_FALSE(result.members(c).empty());
    // Determinism.
    const auto again = ml::dbscan(points, config);
    EXPECT_EQ(result.labels, again.labels);
}

INSTANTIATE_TEST_SUITE_P(Rounds, DbscanSweep,
                         ::testing::Range(0, 8));

// ---- backtracker robustness over random programs ---------------------

class BacktrackSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BacktrackSweep, NeverCrashesOnRandomCallSites)
{
    // Random but valid functions: resolveArg must terminate and stay
    // within bounds for every call site and argument index.
    support::Rng rng(static_cast<std::uint64_t>(GetParam()) + 0x55);
    const auto result = synth::generateHttpd(seededSpec(
        static_cast<std::uint64_t>(GetParam())));
    const bin::BinaryImage &image = result.image;

    std::size_t checked = 0;
    for (const auto &fn : image.program.functions()) {
        if (checked > 300)
            break;
        const analysis::Cfg cfg = analysis::Cfg::build(fn);
        const auto consts =
            analysis::TmpConstMap::compute(fn, &image);
        const analysis::ArgBacktracker tracker(image, fn, cfg,
                                               consts);
        for (std::size_t bi = 0; bi < fn.blocks.size(); ++bi) {
            for (std::size_t si = 0;
                 si < fn.blocks[bi].stmts.size(); ++si) {
                if (fn.blocks[bi].stmts[si].kind !=
                    ir::StmtKind::Call) {
                    continue;
                }
                ++checked;
                const int arg =
                    static_cast<int>(rng.uniformInt(0, 3));
                for (std::uint64_t v :
                     tracker.resolveArg(bi, si, arg)) {
                    (void)tracker.classifyString(v);
                }
            }
        }
    }
    EXPECT_GT(checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Rounds, BacktrackSweep,
                         ::testing::Range(0, 6));

} // namespace
} // namespace fits
