/** @file Unit tests for CFG construction and dominator/loop analysis. */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/cfg.hh"
#include "analysis/loops.hh"
#include "ir/builder.hh"

namespace fits::analysis {
namespace {

using ir::BinOp;
using ir::FunctionBuilder;
using ir::Operand;

bool
hasEdge(const Cfg &cfg, std::size_t from, std::size_t to)
{
    const auto &succs = cfg.succs(from);
    return std::find(succs.begin(), succs.end(), to) != succs.end();
}

/** entry -> (branch) -> then/else -> join. */
ir::Function
diamond()
{
    FunctionBuilder b;
    auto thenBlk = b.newBlock();
    auto elseBlk = b.newBlock();
    auto join = b.newBlock();
    auto c = b.get(ir::kRegR0);
    b.branch(Operand::ofTmp(c), thenBlk);
    b.jump(elseBlk);
    b.switchTo(thenBlk);
    b.cnst(1);
    b.jump(join);
    b.switchTo(elseBlk);
    b.cnst(2);
    b.jump(join);
    b.switchTo(join);
    b.ret();
    return b.build(0x1000);
}

/** entry -> header <-> body; header -> exit. */
ir::Function
simpleLoop()
{
    FunctionBuilder b;
    auto header = b.newBlock();
    auto body = b.newBlock();
    auto exit = b.newBlock();
    b.put(4, Operand::ofImm(0));
    b.jump(header);
    b.switchTo(header);
    auto i = b.get(4);
    auto done = b.binop(BinOp::CmpGe, Operand::ofTmp(i),
                        Operand::ofImm(10));
    b.branch(Operand::ofTmp(done), exit);
    b.jump(body);
    b.switchTo(body);
    auto i2 = b.get(4);
    b.put(4, Operand::ofTmp(b.binop(BinOp::Add, Operand::ofTmp(i2),
                                    Operand::ofImm(1))));
    b.jump(header);
    b.switchTo(exit);
    b.ret();
    return b.build(0x1000);
}

TEST(CfgTest, DiamondEdges)
{
    const ir::Function fn = diamond();
    const Cfg cfg = Cfg::build(fn);
    ASSERT_EQ(cfg.numBlocks(), 4u);
    EXPECT_TRUE(hasEdge(cfg, 0, 1)); // branch taken
    EXPECT_TRUE(hasEdge(cfg, 0, 2)); // jump after the side exit
    EXPECT_TRUE(hasEdge(cfg, 1, 3));
    EXPECT_TRUE(hasEdge(cfg, 2, 3));
    EXPECT_TRUE(cfg.succs(3).empty()); // RET
    EXPECT_EQ(cfg.preds(3).size(), 2u);
    EXPECT_EQ(cfg.numEdges(), 4u);
}

TEST(CfgTest, FallthroughWithoutTerminator)
{
    ir::Function fn;
    fn.entry = 0x100;
    ir::BasicBlock a;
    a.addr = 0x100;
    a.stmts.push_back(ir::Stmt::cnst(0, 1));
    ir::BasicBlock b;
    b.addr = 0x104;
    b.stmts.push_back(ir::Stmt::ret());
    fn.blocks = {a, b};
    fn.numTmps = 1;
    const Cfg cfg = Cfg::build(fn);
    EXPECT_TRUE(hasEdge(cfg, 0, 1));
}

TEST(CfgTest, TrailingBranchGetsFallthroughEdge)
{
    FunctionBuilder b;
    auto target = b.newBlock();
    auto next = b.newBlock();
    auto c = b.get(ir::kRegR0);
    b.branch(Operand::ofTmp(c), target); // last stmt of entry block
    b.switchTo(target);
    b.ret();
    b.switchTo(next);
    b.ret();
    // layout: entry(0), target(1), next(2); fallthrough goes to 1.
    const ir::Function fn = b.build(0x100);
    const Cfg cfg = Cfg::build(fn);
    EXPECT_TRUE(hasEdge(cfg, 0, 1));
}

TEST(CfgTest, ReachableSkipsDeadBlocks)
{
    FunctionBuilder b;
    auto dead = b.newBlock();
    auto live = b.newBlock();
    b.jump(live);
    b.switchTo(dead);
    b.ret();
    b.switchTo(live);
    b.ret();
    const Cfg cfg = Cfg::build(b.build(0));
    const auto reachable = cfg.reachable();
    EXPECT_TRUE(reachable[0]);
    EXPECT_FALSE(reachable[1]);
    EXPECT_TRUE(reachable[2]);
}

TEST(CfgTest, IndirectJumpUsesResolvedTargets)
{
    FunctionBuilder b;
    auto t = b.cnst(0); // placeholder address
    b.jumpIndirect(Operand::ofTmp(t));
    auto other = b.newBlock();
    b.switchTo(other);
    b.ret();
    ir::Function fn = b.build(0x100);
    const ir::Addr jumpAddr = fn.blocks[0].stmtAddr(1);

    const Cfg without = Cfg::build(fn);
    EXPECT_TRUE(without.succs(0).empty());

    std::unordered_map<ir::Addr, std::vector<ir::Addr>> resolved;
    resolved[jumpAddr] = {fn.blocks[1].addr};
    const Cfg with = Cfg::build(fn, &resolved);
    EXPECT_TRUE(hasEdge(with, 0, 1));
}

TEST(LoopsTest, DiamondHasNoLoop)
{
    const ir::Function fn = diamond();
    const Cfg cfg = Cfg::build(fn);
    const LoopInfo info = analyzeLoops(cfg, fn);
    EXPECT_FALSE(info.hasLoop());
    EXPECT_TRUE(info.backEdges.empty());
    for (bool in : info.inLoop)
        EXPECT_FALSE(in);
}

TEST(LoopsTest, SimpleLoopDetected)
{
    const ir::Function fn = simpleLoop();
    const Cfg cfg = Cfg::build(fn);
    const LoopInfo info = analyzeLoops(cfg, fn);
    ASSERT_TRUE(info.hasLoop());
    ASSERT_EQ(info.backEdges.size(), 1u);
    EXPECT_EQ(info.backEdges[0].second, 1u); // header
    EXPECT_EQ(info.backEdges[0].first, 2u);  // latch (body)
    EXPECT_TRUE(info.inLoop[1]);
    EXPECT_TRUE(info.inLoop[2]);
    EXPECT_FALSE(info.inLoop[0]);
    EXPECT_FALSE(info.inLoop[3]);
    // The header contains the exit branch -> controls the loop.
    EXPECT_TRUE(info.controlsLoop[1]);
}

TEST(LoopsTest, DominatorsOfDiamond)
{
    const ir::Function fn = diamond();
    const Cfg cfg = Cfg::build(fn);
    const LoopInfo info = analyzeLoops(cfg, fn);
    EXPECT_EQ(info.idom[0], 0u);
    EXPECT_EQ(info.idom[1], 0u);
    EXPECT_EQ(info.idom[2], 0u);
    EXPECT_EQ(info.idom[3], 0u); // join dominated by entry only
    EXPECT_TRUE(info.dominates(0, 3));
    EXPECT_FALSE(info.dominates(1, 3));
    EXPECT_TRUE(info.dominates(2, 2));
}

TEST(LoopsTest, NestedLoops)
{
    FunctionBuilder b;
    auto outer = b.newBlock();
    auto inner = b.newBlock();
    auto innerLatch = b.newBlock();
    auto outerLatch = b.newBlock();
    auto exit = b.newBlock();
    b.jump(outer);
    b.switchTo(outer);
    auto c1 = b.get(ir::kRegR0);
    b.branch(Operand::ofTmp(c1), exit);
    b.jump(inner);
    b.switchTo(inner);
    auto c2 = b.get(ir::kRegR1);
    b.branch(Operand::ofTmp(c2), outerLatch);
    b.jump(innerLatch);
    b.switchTo(innerLatch);
    b.jump(inner);
    b.switchTo(outerLatch);
    b.jump(outer);
    b.switchTo(exit);
    b.ret();
    const ir::Function fn = b.build(0);
    const Cfg cfg = Cfg::build(fn);
    const LoopInfo info = analyzeLoops(cfg, fn);
    EXPECT_EQ(info.backEdges.size(), 2u);
    EXPECT_TRUE(info.inLoop[1]); // outer header
    EXPECT_TRUE(info.inLoop[2]); // inner header
    EXPECT_TRUE(info.inLoop[3]);
    EXPECT_TRUE(info.inLoop[4]);
    EXPECT_FALSE(info.inLoop[5]);
}

TEST(LoopsTest, UnreachableBlocksGetNposIdom)
{
    FunctionBuilder b;
    auto dead = b.newBlock();
    auto live = b.newBlock();
    b.jump(live);
    b.switchTo(dead);
    b.ret();
    b.switchTo(live);
    b.ret();
    const ir::Function fn = b.build(0);
    const Cfg cfg = Cfg::build(fn);
    const LoopInfo info = analyzeLoops(cfg, fn);
    EXPECT_EQ(info.idom[1], LoopInfo::npos);
    EXPECT_EQ(info.idom[2], 0u);
}

} // namespace
} // namespace fits::analysis
