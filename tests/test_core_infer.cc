/** @file Unit tests for Algorithm 2 (clustering, Eq.-1 complexity
 * filter, Eq.-2 scoring, ranking) on synthetic behavior fixtures. */

#include <gtest/gtest.h>

#include "core/infer.hh"

namespace fits::core {
namespace {

FunctionRecord
makeRecord(analysis::FnId id, ir::Addr entry, Bfv bfv, bool custom,
           bool anchor = false)
{
    FunctionRecord rec;
    rec.id = id;
    rec.entry = entry;
    rec.isCustom = custom;
    rec.isAnchor = anchor;
    rec.bfv = bfv;
    rec.augmentedCfg = {bfv.numBlocks, 1, 1};
    rec.attributedCfg = {bfv.numBlocks, 2, 2};
    return rec;
}

Bfv
anchorLike()
{
    Bfv b;
    b.numBlocks = 5;
    b.hasLoop = true;
    b.numCallers = 10;
    b.numParams = 2;
    b.numAnchorCalls = 0;
    b.numLibCalls = 0;
    b.paramsControlLoop = true;
    b.paramsControlBranch = true;
    b.paramsToAnchor = false;
    b.argsHaveStrings = false;
    b.numDistinctStrings = 0;
    return b;
}

Bfv
itsLike()
{
    Bfv b;
    b.numBlocks = 12;
    b.hasLoop = true;
    b.numCallers = 8;
    b.numParams = 3;
    b.numAnchorCalls = 5;
    b.numLibCalls = 6;
    b.paramsControlLoop = true;
    b.paramsControlBranch = true;
    b.paramsToAnchor = true;
    b.argsHaveStrings = true;
    b.numDistinctStrings = 6;
    return b;
}

Bfv
errorPrinterLike()
{
    // Huge caller count, no loop, no anchors: similar to anchors only
    // through the dominant callers dimension of raw cosine.
    Bfv b;
    b.numBlocks = 3;
    b.hasLoop = false;
    b.numCallers = 500;
    b.numParams = 2;
    b.numAnchorCalls = 0;
    b.numLibCalls = 1;
    b.paramsControlBranch = true;
    b.argsHaveStrings = true;
    b.numDistinctStrings = 120;
    return b;
}

Bfv
trivialLike(double blocks)
{
    Bfv b;
    b.numBlocks = blocks;
    b.numCallers = 1;
    b.numParams = 1;
    return b;
}

/** Corpus: 1 ITS, several printers, many trivial functions, 3 anchors. */
BehaviorRepr
fixture()
{
    BehaviorRepr repr;
    analysis::FnId id = 0;
    auto add = [&](Bfv bfv, bool custom, bool anchor = false) {
        const ir::Addr entry = 0x1000 + 0x100 * id;
        repr.records.push_back(
            makeRecord(id, entry, bfv, custom, anchor));
        if (custom)
            repr.customFns.push_back(id);
        if (anchor)
            repr.anchorFns.push_back(id);
        ++id;
        return entry;
    };

    add(itsLike(), true); // the target, entry 0x1000
    for (int i = 0; i < 5; ++i)
        add(errorPrinterLike(), true);
    for (int i = 0; i < 30; ++i)
        add(trivialLike(1 + i % 3), true);
    for (int i = 0; i < 3; ++i)
        add(anchorLike(), false, true);
    return repr;
}

TEST(Infer, ItsRanksFirstWithFullPipeline)
{
    const BehaviorRepr repr = fixture();
    const InferenceResult result = inferIts(repr);
    ASSERT_TRUE(result.ok());
    ASSERT_FALSE(result.ranking.empty());
    EXPECT_EQ(result.ranking[0].entry, 0x1000u);
}

TEST(Infer, ClusteringFiltersCandidates)
{
    const BehaviorRepr repr = fixture();
    const InferenceResult result = inferIts(repr);
    ASSERT_TRUE(result.ok());
    // Trivial functions fall below the average class complexity.
    EXPECT_LT(result.numCandidates, repr.customFns.size());
    EXPECT_GT(result.numCandidates, 0u);
}

TEST(Infer, DirectScoringIsWorseForTheIts)
{
    // Without clustering/normalization, raw cosine is dominated by
    // the caller-count dimension and the printers win (§4.5).
    const BehaviorRepr repr = fixture();
    InferConfig config;
    config.strategy = CandidateStrategy::DirectScoring;
    const InferenceResult result = inferIts(repr, config);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.numCandidates, repr.customFns.size());
    EXPECT_NE(result.ranking[0].entry, 0x1000u);
}

TEST(Infer, AllMetricsProduceRankings)
{
    const BehaviorRepr repr = fixture();
    for (ml::Metric metric :
         {ml::Metric::Cosine, ml::Metric::Euclidean,
          ml::Metric::Manhattan, ml::Metric::Pearson}) {
        InferConfig config;
        config.scoreMetric = metric;
        const InferenceResult result = inferIts(repr, config);
        EXPECT_TRUE(result.ok()) << ml::metricName(metric);
        EXPECT_FALSE(result.ranking.empty());
    }
}

TEST(Infer, AllStrategiesProduceRankings)
{
    const BehaviorRepr repr = fixture();
    for (CandidateStrategy strategy :
         {CandidateStrategy::BehaviorClustering,
          CandidateStrategy::DirectScoring, CandidateStrategy::Pca,
          CandidateStrategy::Standardize,
          CandidateStrategy::MinMax}) {
        InferConfig config;
        config.strategy = strategy;
        const InferenceResult result = inferIts(repr, config);
        EXPECT_TRUE(result.ok())
            << candidateStrategyName(strategy);
        EXPECT_FALSE(result.ranking.empty());
    }
}

TEST(Infer, AblationConfigsRun)
{
    const BehaviorRepr repr = fixture();
    for (int k = 0; k < Bfv::kNumFeatures; ++k) {
        InferConfig drop;
        drop.dropFeature = k;
        EXPECT_TRUE(inferIts(repr, drop).ok()) << k;
        InferConfig only;
        only.onlyFeature = k;
        EXPECT_TRUE(inferIts(repr, only).ok()) << k;
    }
}

TEST(Infer, AlternativeRepresentationsRun)
{
    const BehaviorRepr repr = fixture();
    for (Representation representation :
         {Representation::AugmentedCfg,
          Representation::AttributedCfg}) {
        InferConfig config;
        config.representation = representation;
        EXPECT_TRUE(inferIts(repr, config).ok());
    }
}

TEST(Infer, FailsWithoutAnchors)
{
    BehaviorRepr repr = fixture();
    repr.anchorFns.clear();
    const InferenceResult result = inferIts(repr);
    EXPECT_FALSE(result.ok());
    EXPECT_NE(result.error.find("anchor"), std::string::npos);
}

TEST(Infer, FailsWithoutCustomFunctions)
{
    BehaviorRepr repr = fixture();
    repr.customFns.clear();
    EXPECT_FALSE(inferIts(repr).ok());
}

TEST(Infer, RankingRespectsMaxRanked)
{
    const BehaviorRepr repr = fixture();
    InferConfig config;
    config.maxRanked = 3;
    const InferenceResult result = inferIts(repr, config);
    EXPECT_LE(result.ranking.size(), 3u);
}

TEST(Infer, RankingSortedDescendingWithDeterministicTies)
{
    const BehaviorRepr repr = fixture();
    const InferenceResult result = inferIts(repr);
    for (std::size_t i = 1; i < result.ranking.size(); ++i) {
        const auto &prev = result.ranking[i - 1];
        const auto &cur = result.ranking[i];
        EXPECT_TRUE(prev.score > cur.score ||
                    (prev.score == cur.score &&
                     prev.entry < cur.entry));
    }
}

TEST(Complexity, Eq1Normalization)
{
    Bfv maxima;
    maxima.numBlocks = 10;
    maxima.numCallers = 100;
    maxima.numLibCalls = 4;
    maxima.numAnchorCalls = 2;

    Bfv f;
    f.numBlocks = 5;
    f.numCallers = 50;
    f.numLibCalls = 2;
    f.numAnchorCalls = 1;
    EXPECT_DOUBLE_EQ(functionComplexity(f, maxima), 2.0);

    // Zero maxima contribute nothing (no division by zero).
    Bfv zeroMax;
    EXPECT_DOUBLE_EQ(functionComplexity(f, zeroMax), 0.0);
}

} // namespace
} // namespace fits::core
