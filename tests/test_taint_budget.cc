/** @file Tests of the Karonte engine's resource model — the call-depth
 * limit and step budgets that produce the paper's false negatives —
 * and of the pointer-seed range shared by both engines. */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/program_analysis.hh"
#include "ir/builder.hh"
#include "taint/karonte.hh"
#include "taint/sta.hh"

namespace fits::taint {
namespace {

using ir::FunctionBuilder;
using ir::Operand;

Operand
t(ir::TmpId id)
{
    return Operand::ofTmp(id);
}

Operand
imm(std::uint64_t v)
{
    return Operand::ofImm(v);
}

constexpr ir::Addr kBuf = bin::kBssBase;
constexpr ir::Addr kOut = bin::kBssBase + 0x200;

/**
 * recvRoot: recv(0, kBuf, 64); v = *(kBuf+off); chain1(v)
 * chain1(v) -> chain2(v) -> ... -> chainN(v) -> strcpy(kOut, v)
 */
struct ChainWorld
{
    bin::BinaryImage main;
    std::vector<bin::BinaryImage> libs;
    ir::Addr sink = 0;

    explicit ChainWorld(int depth, ir::Addr loadOffset = 4)
    {
        main.name = "httpd";
        const auto recvPlt = main.addImport("recv", "libc.so");
        const auto strcpyPlt = main.addImport("strcpy", "libc.so");

        bin::Section bss;
        bss.name = ".bss";
        bss.addr = bin::kBssBase;
        bss.flags = bin::kSecRead | bin::kSecWrite;
        bss.bytes.assign(0x400, 0);
        main.sections.push_back(bss);

        ir::Addr cursor = bin::kTextBase;

        // Innermost function: the sink.
        ir::Addr callee;
        {
            FunctionBuilder b;
            auto v = b.get(ir::kRegR0);
            b.setArg(0, imm(kOut));
            b.setArg(1, t(v));
            const auto blk = b.currentBlock();
            const auto idx = b.nextStmtIndex();
            b.call(strcpyPlt);
            b.ret();
            ir::Function fn = b.build(cursor);
            sink = fn.blocks[blk].stmtAddr(idx);
            callee = fn.entry;
            cursor += fn.byteSize() + ir::kStmtSize;
            main.program.addFunction(std::move(fn));
        }
        // Wrappers.
        for (int d = 1; d < depth; ++d) {
            FunctionBuilder b;
            auto v = b.get(ir::kRegR0);
            b.setArg(0, t(v));
            b.call(callee);
            b.ret();
            ir::Function fn = b.build(cursor);
            callee = fn.entry;
            cursor += fn.byteSize() + ir::kStmtSize;
            main.program.addFunction(std::move(fn));
        }
        // Root with the recv seed and the tainted load.
        {
            FunctionBuilder b;
            b.setArg(0, imm(0));
            b.setArg(1, imm(kBuf));
            b.setArg(2, imm(64));
            b.call(recvPlt);
            auto v = b.load(imm(kBuf + loadOffset));
            b.setArg(0, t(v));
            b.call(callee);
            b.ret();
            main.program.addFunction(b.build(cursor));
        }
        main.strip();
    }
};

bool
alertAt(const std::vector<Alert> &alerts, ir::Addr site)
{
    return std::any_of(alerts.begin(), alerts.end(),
                       [site](const Alert &a) {
                           return a.sinkSite == site;
                       });
}

TEST(KaronteBudget, FindsSinkWithinDepth)
{
    const ChainWorld world(2); // root -> wrapper -> sink: depth 3
    const analysis::LinkedProgram linked(world.main, world.libs);
    const auto pa = analysis::ProgramAnalysis::analyze(linked);
    const KaronteEngine karonte;
    const auto report = karonte.run(pa, classicalTaintSources());
    EXPECT_TRUE(alertAt(report.alerts, world.sink));
}

TEST(KaronteBudget, DepthLimitCutsDeepChains)
{
    const ChainWorld world(6); // deeper than the default limit of 4
    const analysis::LinkedProgram linked(world.main, world.libs);
    const auto pa = analysis::ProgramAnalysis::analyze(linked);
    const KaronteEngine karonte;
    const auto report = karonte.run(pa, classicalTaintSources());
    EXPECT_FALSE(alertAt(report.alerts, world.sink));
}

TEST(KaronteBudget, RaisingDepthRecoversTheSink)
{
    const ChainWorld world(6);
    const analysis::LinkedProgram linked(world.main, world.libs);
    const auto pa = analysis::ProgramAnalysis::analyze(linked);
    KaronteEngine::Config config;
    config.maxCallDepth = 10;
    const KaronteEngine karonte(config);
    const auto report = karonte.run(pa, classicalTaintSources());
    EXPECT_TRUE(alertAt(report.alerts, world.sink));
}

TEST(KaronteBudget, StepBudgetExhaustionIsReported)
{
    const ChainWorld world(3);
    const analysis::LinkedProgram linked(world.main, world.libs);
    const auto pa = analysis::ProgramAnalysis::analyze(linked);
    KaronteEngine::Config config;
    config.maxTotalSteps = 5; // far too small
    const KaronteEngine karonte(config);
    const auto report = karonte.run(pa, classicalTaintSources());
    EXPECT_TRUE(report.budgetExhausted);
    EXPECT_FALSE(alertAt(report.alerts, world.sink));
}

TEST(StaBudget, DepthDoesNotLimitDataflow)
{
    // STA's summaries propagate through arbitrarily deep direct call
    // chains — the mechanism behind the 9 bugs only STA found.
    const ChainWorld world(9);
    const analysis::LinkedProgram linked(world.main, world.libs);
    const auto pa = analysis::ProgramAnalysis::analyze(linked);
    const StaEngine sta;
    const auto report = sta.run(pa, classicalTaintSources());
    EXPECT_TRUE(alertAt(report.alerts, world.sink));
}

TEST(SeedRange, BufferCellsWithinRangeAreTainted)
{
    const ChainWorld inRange(2, kPointerSeedRange - 1);
    {
        const analysis::LinkedProgram linked(inRange.main,
                                             inRange.libs);
        const auto pa = analysis::ProgramAnalysis::analyze(linked);
        const auto report =
            StaEngine().run(pa, classicalTaintSources());
        EXPECT_TRUE(alertAt(report.alerts, inRange.sink));
    }
    const ChainWorld outOfRange(2, kPointerSeedRange + 16);
    {
        const analysis::LinkedProgram linked(outOfRange.main,
                                             outOfRange.libs);
        const auto pa = analysis::ProgramAnalysis::analyze(linked);
        const auto report =
            StaEngine().run(pa, classicalTaintSources());
        EXPECT_FALSE(alertAt(report.alerts, outOfRange.sink));
    }
}

} // namespace
} // namespace fits::taint
