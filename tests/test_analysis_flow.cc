/** @file Unit tests for constant maps, parameter inference, reaching
 * definitions (DDG + parameter dependence), and the Table-2
 * backtracker. */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/backtrack.hh"
#include "analysis/constmap.hh"
#include "analysis/function_analysis.hh"
#include "analysis/params.hh"
#include "analysis/reachdef.hh"
#include "ir/builder.hh"

namespace fits::analysis {
namespace {

using ir::BinOp;
using ir::FunctionBuilder;
using ir::Operand;

bin::BinaryImage
stringImage()
{
    bin::BinaryImage image;
    bin::Section rodata;
    rodata.name = ".rodata";
    rodata.addr = bin::kRodataBase;
    rodata.flags = bin::kSecRead;
    const char text[] = "username\0password\0\x01junk";
    rodata.bytes.assign(text, text + sizeof(text) - 1);
    image.sections.push_back(rodata);

    bin::Section data;
    data.name = ".data";
    data.addr = bin::kDataBase;
    data.flags = bin::kSecRead | bin::kSecWrite;
    data.bytes.assign(16, 0);
    // Slot at kDataBase points to "password".
    const ir::Addr pw = bin::kRodataBase + 9;
    for (std::size_t i = 0; i < bin::kPtrSize; ++i)
        data.bytes[i] = static_cast<std::uint8_t>(pw >> (8 * i));
    image.sections.push_back(data);
    return image;
}

// ---- TmpConstMap ----------------------------------------------------

TEST(ConstMap, FoldsConstChains)
{
    FunctionBuilder b;
    auto a = b.cnst(10);
    auto c = b.binop(BinOp::Mul, Operand::ofTmp(a), Operand::ofImm(4));
    auto d = b.binop(BinOp::Add, Operand::ofTmp(c), Operand::ofImm(2));
    b.ret();
    const ir::Function fn = b.build(0);
    const auto map = TmpConstMap::compute(fn, nullptr);
    EXPECT_EQ(map.valueOf(a), 10u);
    EXPECT_EQ(map.valueOf(c), 40u);
    EXPECT_EQ(map.valueOf(d), 42u);
}

TEST(ConstMap, GetIsNeverConstant)
{
    FunctionBuilder b;
    auto a = b.get(ir::kRegR0);
    auto c = b.binop(BinOp::Add, Operand::ofTmp(a), Operand::ofImm(1));
    b.ret();
    const auto map = TmpConstMap::compute(b.build(0), nullptr);
    EXPECT_FALSE(map.valueOf(a).has_value());
    EXPECT_FALSE(map.valueOf(c).has_value());
}

TEST(ConstMap, MultipleDefsConflict)
{
    // Hand-build a function where t0 is written twice.
    ir::Function fn;
    fn.entry = 0;
    fn.numTmps = 1;
    ir::BasicBlock block;
    block.addr = 0;
    block.stmts.push_back(ir::Stmt::cnst(0, 1));
    block.stmts.push_back(ir::Stmt::cnst(0, 2));
    block.stmts.push_back(ir::Stmt::ret());
    fn.blocks.push_back(block);
    const auto map = TmpConstMap::compute(fn, nullptr);
    EXPECT_FALSE(map.valueOf(ir::TmpId{0}).has_value());
}

TEST(ConstMap, FoldsRodataLoadsOnly)
{
    const auto image = stringImage();
    FunctionBuilder b;
    auto roAddr = b.cnst(bin::kDataBase); // data slot -> rodata ptr
    auto notFolded = b.load(Operand::ofTmp(roAddr));
    auto roAddr2 = b.cnst(bin::kRodataBase);
    auto folded = b.load(Operand::ofTmp(roAddr2));
    b.ret();
    const auto map = TmpConstMap::compute(b.build(0), &image);
    EXPECT_FALSE(map.valueOf(notFolded).has_value()); // writable
    ASSERT_TRUE(map.valueOf(folded).has_value()); // read-only bytes
}

TEST(ConstMap, OperandOverload)
{
    FunctionBuilder b;
    auto t = b.cnst(5);
    b.ret();
    const auto map = TmpConstMap::compute(b.build(0), nullptr);
    EXPECT_EQ(map.valueOf(Operand::ofImm(9)), 9u);
    EXPECT_EQ(map.valueOf(Operand::ofTmp(t)), 5u);
}

// ---- parameter inference ---------------------------------------------

TEST(Params, ReadBeforeWriteDetected)
{
    FunctionBuilder b;
    b.get(ir::kRegR0);
    b.get(ir::kRegR2);
    b.ret();
    const ir::Function fn = b.build(0);
    const auto info = inferParams(Cfg::build(fn), fn);
    EXPECT_EQ(info.usedMask, 0b101);
    EXPECT_EQ(info.count, 3); // contiguous ABI assignment
}

TEST(Params, WriteBeforeReadNotAParam)
{
    FunctionBuilder b;
    b.put(ir::kRegR0, Operand::ofImm(7));
    b.get(ir::kRegR0);
    b.ret();
    const ir::Function fn = b.build(0);
    const auto info = inferParams(Cfg::build(fn), fn);
    EXPECT_EQ(info.count, 0);
}

TEST(Params, CallClobbersArgRegs)
{
    FunctionBuilder b;
    b.call(0x8000);
    b.get(ir::kRegR0); // return value, not a parameter
    b.ret();
    const ir::Function fn = b.build(0);
    const auto info = inferParams(Cfg::build(fn), fn);
    EXPECT_EQ(info.count, 0);
}

TEST(Params, MustAnalysisAcrossBranches)
{
    // r0 written on only one path before the read: still a parameter.
    FunctionBuilder b;
    auto writeBlk = b.newBlock();
    auto join = b.newBlock();
    auto c = b.get(ir::kRegR1);
    b.branch(Operand::ofTmp(c), writeBlk);
    b.jump(join);
    b.switchTo(writeBlk);
    b.put(ir::kRegR0, Operand::ofImm(0));
    b.jump(join);
    b.switchTo(join);
    b.get(ir::kRegR0);
    b.ret();
    const ir::Function fn = b.build(0);
    const auto info = inferParams(Cfg::build(fn), fn);
    EXPECT_TRUE(info.usedMask & 0b01);
    EXPECT_TRUE(info.usedMask & 0b10);
    EXPECT_EQ(info.count, 2);
}

// ---- reaching definitions / parameter dependence ---------------------

struct FlowFixture
{
    ir::Function fn;
    Cfg cfg;
    TmpConstMap consts;
    ReachingDefs::Result flow;

    explicit FlowFixture(ir::Function f, const bin::BinaryImage *img,
                         int numParams)
        : fn(std::move(f)), cfg(Cfg::build(fn)),
          consts(TmpConstMap::compute(fn, img)),
          flow(ReachingDefs::analyze(cfg, fn, consts, numParams))
    {
    }
};

TEST(ReachDef, ParamFlowsThroughTmpChain)
{
    FunctionBuilder b;
    auto a = b.get(ir::kRegR0);
    auto c = b.binop(BinOp::Add, Operand::ofTmp(a), Operand::ofImm(1));
    b.put(ir::RegId{4}, Operand::ofTmp(c));
    auto d = b.get(ir::RegId{4});
    b.put(ir::kRetReg, Operand::ofTmp(d));
    b.ret();
    FlowFixture f(b.build(0), nullptr, 1);
    // The final PUT depends on param 0.
    EXPECT_EQ(f.flow.stmtDeps[0][4], 0b1);
}

TEST(ReachDef, BranchDependenceMask)
{
    FunctionBuilder b;
    auto other = b.newBlock();
    auto a = b.get(ir::kRegR1);
    auto c = b.binop(BinOp::CmpEq, Operand::ofTmp(a),
                     Operand::ofImm(0));
    b.branch(Operand::ofTmp(c), other);
    b.ret();
    b.switchTo(other);
    b.ret();
    FlowFixture f(b.build(0), nullptr, 2);
    EXPECT_EQ(f.flow.branchDepMask, 0b10);
}

TEST(ReachDef, NoParamDependenceOnConstants)
{
    FunctionBuilder b;
    auto other = b.newBlock();
    auto c = b.cnst(1);
    b.branch(Operand::ofTmp(c), other);
    b.ret();
    b.switchTo(other);
    b.ret();
    FlowFixture f(b.build(0), nullptr, 2);
    EXPECT_EQ(f.flow.branchDepMask, 0);
}

TEST(ReachDef, ParamThroughConstAddressMemory)
{
    FunctionBuilder b;
    auto a = b.get(ir::kRegR0);
    b.store(Operand::ofImm(0x500000), Operand::ofTmp(a));
    auto v = b.load(Operand::ofImm(0x500000));
    b.put(ir::kRetReg, Operand::ofTmp(v));
    b.ret();
    FlowFixture f(b.build(0), nullptr, 1);
    // The load's deps include param 0 via the memory cell.
    EXPECT_EQ(f.flow.stmtDeps[0][2], 0b1);
}

TEST(ReachDef, LoopCarriedDependence)
{
    FunctionBuilder b;
    auto header = b.newBlock();
    auto body = b.newBlock();
    auto exit = b.newBlock();
    auto p = b.get(ir::kRegR0);
    b.put(ir::RegId{4}, Operand::ofTmp(p));
    b.jump(header);
    b.switchTo(header);
    auto i = b.get(ir::RegId{4});
    auto done = b.binop(BinOp::CmpEq, Operand::ofTmp(i),
                        Operand::ofImm(0));
    b.branch(Operand::ofTmp(done), exit);
    b.jump(body);
    b.switchTo(body);
    auto i2 = b.get(ir::RegId{4});
    b.put(ir::RegId{4}, Operand::ofTmp(b.binop(
                          BinOp::Sub, Operand::ofTmp(i2),
                          Operand::ofImm(1))));
    b.jump(header);
    b.switchTo(exit);
    b.ret();
    FlowFixture f(b.build(0), nullptr, 1);
    // The loop-exit branch depends on param 0 through the back edge.
    EXPECT_EQ(f.flow.stmtDeps[1][1], 0b1);
    EXPECT_EQ(f.flow.branchDepMask, 0b1);
}

TEST(ReachDef, CallArgumentsExcludeStaleParams)
{
    // A call whose arguments were never materialized must not appear
    // parameter-dependent just because arg registers still hold the
    // caller-provided values.
    FunctionBuilder b;
    b.call(0x8000);
    b.ret();
    FlowFixture f(b.build(0), nullptr, 4);
    EXPECT_EQ(f.flow.stmtDeps[0][0], 0);
}

TEST(ReachDef, CallArgumentsIncludeMaterializedParams)
{
    FunctionBuilder b;
    auto a = b.get(ir::kRegR0);
    b.setArg(0, Operand::ofTmp(a));
    b.call(0x8000);
    b.ret();
    FlowFixture f(b.build(0), nullptr, 1);
    EXPECT_EQ(f.flow.stmtDeps[0][2], 0b1); // the call statement
}

TEST(ReachDef, CallReturnIsParamDependentIfArgsAre)
{
    FunctionBuilder b;
    auto a = b.get(ir::kRegR0);
    b.setArg(0, Operand::ofTmp(a));
    b.call(0x8000);
    auto r = b.retVal();
    b.put(ir::kRetReg, Operand::ofTmp(r));
    b.ret();
    FlowFixture f(b.build(0), nullptr, 1);
    // GET(r0) after the call sees the call's definition of r0, whose
    // taint came from the materialized argument.
    EXPECT_EQ(f.flow.stmtDeps[0][3], 0b1);
}

TEST(ReachDef, DefUseChainsPopulated)
{
    FunctionBuilder b;
    auto a = b.cnst(1);
    b.put(ir::RegId{4}, Operand::ofTmp(a));
    b.ret();
    FlowFixture f(b.build(0), nullptr, 0);
    // The PUT uses exactly one definition: t0's.
    ASSERT_EQ(f.flow.useDefs[0][1].size(), 1u);
    const Definition &def =
        f.flow.defs[f.flow.useDefs[0][1][0]];
    EXPECT_EQ(def.target, Definition::Target::Tmp);
    EXPECT_EQ(def.tmp, a);
}

// ---- Table-2 backtracker ---------------------------------------------

struct TrackFixture
{
    bin::BinaryImage image = stringImage();
    ir::Function fn;
    Cfg cfg;
    TmpConstMap consts;

    explicit TrackFixture(ir::Function f)
        : fn(std::move(f)), cfg(Cfg::build(fn)),
          consts(TmpConstMap::compute(fn, &image))
    {
    }

    ArgBacktracker
    tracker() const
    {
        return ArgBacktracker(image, fn, cfg, consts);
    }
};

TEST(Backtrack, ImmediatePut)
{
    FunctionBuilder b;
    b.setArg(0, Operand::ofImm(0x1234));
    b.call(0x8000);
    b.ret();
    TrackFixture f(b.build(0));
    const auto values = f.tracker().resolveArg(0, 1, 0);
    ASSERT_EQ(values.size(), 1u);
    EXPECT_EQ(values[0], 0x1234u);
}

TEST(Backtrack, ThroughTmpAndGet)
{
    FunctionBuilder b;
    auto t = b.cnst(0x4242);
    b.put(ir::RegId{4}, Operand::ofTmp(t));
    auto u = b.get(ir::RegId{4});
    b.setArg(1, Operand::ofTmp(u));
    b.call(0x8000);
    b.ret();
    TrackFixture f(b.build(0));
    const auto values = f.tracker().resolveArg(0, 4, 1);
    ASSERT_EQ(values.size(), 1u);
    EXPECT_EQ(values[0], 0x4242u);
}

TEST(Backtrack, AdditiveOffsetAccumulation)
{
    FunctionBuilder b;
    auto base = b.get(ir::kRegR0); // symbolic
    auto adj = b.binop(BinOp::Add, Operand::ofTmp(base),
                       Operand::ofImm(8));
    b.setArg(0, Operand::ofTmp(adj));
    b.call(0x8000);
    b.ret();
    TrackFixture f(b.build(0));
    // base is symbolic: no constant resolution possible.
    EXPECT_TRUE(f.tracker().resolveArg(0, 3, 0).empty());
}

TEST(Backtrack, OffsetOverConstBase)
{
    FunctionBuilder b;
    auto t = b.cnst(0x100);
    b.put(ir::RegId{4}, Operand::ofTmp(t));
    auto u = b.get(ir::RegId{4});
    auto v = b.binop(BinOp::Add, Operand::ofTmp(u),
                     Operand::ofImm(0x20));
    b.setArg(0, Operand::ofTmp(v));
    b.call(0x8000);
    b.ret();
    TrackFixture f(b.build(0));
    const auto values = f.tracker().resolveArg(0, 5, 0);
    ASSERT_EQ(values.size(), 1u);
    EXPECT_EQ(values[0], 0x120u);
}

TEST(Backtrack, MultiplePredecessorsYieldMultipleValues)
{
    FunctionBuilder b;
    auto left = b.newBlock();
    auto right = b.newBlock();
    auto join = b.newBlock();
    auto c = b.get(ir::kRegR0);
    b.branch(Operand::ofTmp(c), left);
    b.jump(right);
    b.switchTo(left);
    b.put(ir::kRegR1, Operand::ofImm(0x111));
    b.jump(join);
    b.switchTo(right);
    b.put(ir::kRegR1, Operand::ofImm(0x222));
    b.jump(join);
    b.switchTo(join);
    b.call(0x8000);
    b.ret();
    TrackFixture f(b.build(0));
    auto values = f.tracker().resolveArg(3, 0, 1);
    std::sort(values.begin(), values.end());
    ASSERT_EQ(values.size(), 2u);
    EXPECT_EQ(values[0], 0x111u);
    EXPECT_EQ(values[1], 0x222u);
}

TEST(Backtrack, AbortsAtClobberingCall)
{
    FunctionBuilder b;
    b.put(ir::kRegR0, Operand::ofImm(0x1234));
    b.call(0x9000); // clobbers r0
    b.call(0x8000); // the queried site: r0 is the previous return
    b.ret();
    TrackFixture f(b.build(0));
    EXPECT_TRUE(f.tracker().resolveArg(0, 2, 0).empty());
}

TEST(Backtrack, ClassifyRodataString)
{
    TrackFixture f([] {
        FunctionBuilder b;
        b.ret();
        return b.build(0);
    }());
    auto s = f.tracker().classifyString(bin::kRodataBase);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->text, "username");
    EXPECT_FALSE(s->viaDataSection);
}

TEST(Backtrack, ClassifyDataSlotIndirection)
{
    // PT in .data -> MT -> "password" (the paper's GOT-style case).
    TrackFixture f([] {
        FunctionBuilder b;
        b.ret();
        return b.build(0);
    }());
    auto s = f.tracker().classifyString(bin::kDataBase);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->text, "password");
    EXPECT_TRUE(s->viaDataSection);
}

TEST(Backtrack, RejectsNonPrintable)
{
    TrackFixture f([] {
        FunctionBuilder b;
        b.ret();
        return b.build(0);
    }());
    // The byte after "password\0" is 0x01: not printable.
    EXPECT_FALSE(
        f.tracker().classifyString(bin::kRodataBase + 18).has_value());
}

TEST(Backtrack, RejectsUnmappedAddress)
{
    TrackFixture f([] {
        FunctionBuilder b;
        b.ret();
        return b.build(0);
    }());
    EXPECT_FALSE(f.tracker().classifyString(0xdeadbeef).has_value());
}

} // namespace
} // namespace fits::analysis
