/** @file Unit tests for the under-constrained symbolic explorer. */

#include <gtest/gtest.h>

#include "analysis/ucse.hh"
#include "ir/builder.hh"

namespace fits::analysis {
namespace {

using ir::BinOp;
using ir::FunctionBuilder;
using ir::Operand;

bin::BinaryImage
imageWithTable()
{
    bin::BinaryImage image;
    image.name = "t";
    bin::Section rodata;
    rodata.name = ".rodata";
    rodata.addr = bin::kRodataBase;
    rodata.flags = bin::kSecRead;
    rodata.bytes.assign(16, 0);
    // Two table slots: function pointers 0x5000 and 0x6000.
    rodata.bytes[0] = 0x00;
    rodata.bytes[1] = 0x50;
    rodata.bytes[4] = 0x00;
    rodata.bytes[5] = 0x60;
    image.sections.push_back(rodata);

    bin::Section data;
    data.name = ".data";
    data.addr = bin::kDataBase;
    data.flags = bin::kSecRead | bin::kSecWrite;
    data.bytes.assign(8, 0);
    data.bytes[1] = 0x70; // 0x7000 — but writable, must not fold
    image.sections.push_back(data);
    return image;
}

TEST(Ucse, ResolvesIndirectCallThroughRodataTable)
{
    const auto image = imageWithTable();
    FunctionBuilder b;
    auto slot = b.cnst(bin::kRodataBase);
    auto target = b.load(Operand::ofTmp(slot));
    b.callIndirect(Operand::ofTmp(target));
    b.ret();
    const ir::Function fn = b.build(0x100);
    const ir::Addr callAddr = fn.blocks[0].stmtAddr(2);

    const UcseExplorer explorer(image);
    const UcseResult result = explorer.explore(fn);
    auto it = result.resolvedCalls.find(callAddr);
    ASSERT_NE(it, result.resolvedCalls.end());
    ASSERT_EQ(it->second.size(), 1u);
    EXPECT_EQ(it->second[0], 0x5000u);
}

TEST(Ucse, DoesNotFoldWritableMemory)
{
    const auto image = imageWithTable();
    FunctionBuilder b;
    auto slot = b.cnst(bin::kDataBase);
    auto target = b.load(Operand::ofTmp(slot));
    b.callIndirect(Operand::ofTmp(target));
    b.ret();
    const ir::Function fn = b.build(0x100);
    const UcseExplorer explorer(image);
    const UcseResult result = explorer.explore(fn);
    EXPECT_TRUE(result.resolvedCalls.empty());
}

TEST(Ucse, FoldsConstantArithmetic)
{
    const auto image = imageWithTable();
    FunctionBuilder b;
    auto base = b.cnst(bin::kRodataBase);
    auto idx = b.cnst(1);
    auto off = b.binop(BinOp::Mul, Operand::ofTmp(idx),
                       Operand::ofImm(4));
    auto slot = b.binop(BinOp::Add, Operand::ofTmp(base),
                        Operand::ofTmp(off));
    auto target = b.load(Operand::ofTmp(slot));
    b.callIndirect(Operand::ofTmp(target));
    b.ret();
    const ir::Function fn = b.build(0x100);
    const UcseExplorer explorer(image);
    const UcseResult result = explorer.explore(fn);
    ASSERT_EQ(result.resolvedCalls.size(), 1u);
    EXPECT_EQ(result.resolvedCalls.begin()->second[0], 0x6000u);
}

TEST(Ucse, ConstantBranchPrunesDeadSide)
{
    const auto image = imageWithTable();
    FunctionBuilder b;
    auto dead = b.newBlock();
    auto live = b.newBlock();
    auto flag = b.cnst(0);
    b.branch(Operand::ofTmp(flag), dead); // never taken
    b.jump(live);
    b.switchTo(dead);
    b.ret();
    b.switchTo(live);
    b.ret();
    const ir::Function fn = b.build(0);
    const UcseExplorer explorer(image);
    const UcseResult result = explorer.explore(fn);
    EXPECT_TRUE(result.reachedBlocks[0]);
    EXPECT_FALSE(result.reachedBlocks[1]); // pruned
    EXPECT_TRUE(result.reachedBlocks[2]);
}

TEST(Ucse, SymbolicBranchExploresBothSides)
{
    const auto image = imageWithTable();
    FunctionBuilder b;
    auto thenBlk = b.newBlock();
    auto elseBlk = b.newBlock();
    auto c = b.get(ir::kRegR0); // under-constrained argument
    b.branch(Operand::ofTmp(c), thenBlk);
    b.jump(elseBlk);
    b.switchTo(thenBlk);
    b.ret();
    b.switchTo(elseBlk);
    b.ret();
    const UcseExplorer explorer(image);
    const UcseResult result = explorer.explore(b.build(0));
    EXPECT_TRUE(result.reachedBlocks[1]);
    EXPECT_TRUE(result.reachedBlocks[2]);
}

TEST(Ucse, ArgumentsStartSymbolic)
{
    // A branch on an argument-derived comparison must fork (the
    // argument is not a constant).
    const auto image = imageWithTable();
    FunctionBuilder b;
    auto taken = b.newBlock();
    auto arg = b.get(ir::kRegR1);
    auto cmp = b.binop(BinOp::CmpEq, Operand::ofTmp(arg),
                       Operand::ofImm(0));
    b.branch(Operand::ofTmp(cmp), taken);
    b.ret();
    b.switchTo(taken);
    b.ret();
    const UcseExplorer explorer(image);
    const UcseResult result = explorer.explore(b.build(0));
    EXPECT_TRUE(result.reachedBlocks[1]);
}

TEST(Ucse, CallClobbersArgRegisters)
{
    const auto image = imageWithTable();
    FunctionBuilder b;
    auto taken = b.newBlock();
    b.put(ir::kRegR0, Operand::ofImm(1));
    b.call(0x9999); // some callee
    auto v = b.get(ir::kRegR0);
    b.branch(Operand::ofTmp(v), taken); // must fork: r0 unknown now
    b.ret();
    b.switchTo(taken);
    b.ret();
    const UcseExplorer explorer(image);
    const UcseResult result = explorer.explore(b.build(0));
    EXPECT_TRUE(result.reachedBlocks[1]);
}

TEST(Ucse, LoopBounded)
{
    const auto image = imageWithTable();
    FunctionBuilder b;
    auto header = b.newBlock();
    b.jump(header);
    b.switchTo(header);
    b.jump(header); // infinite loop
    UcseConfig config;
    config.maxVisitsPerBlock = 3;
    const UcseExplorer explorer(image, config);
    const UcseResult result = explorer.explore(b.build(0));
    EXPECT_LT(result.steps, 100u); // bounded, no hang
}

TEST(Ucse, StepBudgetExhaustion)
{
    const auto image = imageWithTable();
    FunctionBuilder b;
    for (int i = 0; i < 100; ++i)
        b.cnst(static_cast<std::uint64_t>(i));
    b.ret();
    UcseConfig config;
    config.maxSteps = 10;
    const UcseExplorer explorer(image, config);
    const UcseResult result = explorer.explore(b.build(0));
    // One block is executed atomically, so the budget check happens
    // between paths; the flag reflects the exhaustion.
    EXPECT_GE(result.steps, 10u);
}

TEST(Ucse, Deterministic)
{
    const auto image = imageWithTable();
    FunctionBuilder b;
    auto x = b.newBlock();
    auto c = b.get(ir::kRegR0);
    b.branch(Operand::ofTmp(c), x);
    b.ret();
    b.switchTo(x);
    b.ret();
    const ir::Function fn = b.build(0);
    const UcseExplorer explorer(image);
    const UcseResult a = explorer.explore(fn);
    const UcseResult bResult = explorer.explore(fn);
    EXPECT_EQ(a.steps, bResult.steps);
    EXPECT_EQ(a.reachedBlocks, bResult.reachedBlocks);
}

} // namespace
} // namespace fits::analysis
