/** @file Unit tests for the linked-program view and the call graph. */

#include <gtest/gtest.h>

#include "analysis/program_analysis.hh"
#include "ir/builder.hh"

namespace fits::analysis {
namespace {

using ir::FunctionBuilder;
using ir::Operand;

/** Main binary importing strlen + recv, calling a local helper and the
 * imports; plus a libc exporting strlen. */
struct Fixture
{
    bin::BinaryImage main;
    std::vector<bin::BinaryImage> libs;
    ir::Addr helperEntry = 0;
    ir::Addr strlenPlt = 0;
    ir::Addr recvPlt = 0;

    Fixture()
    {
        main.name = "httpd";
        main.neededLibraries = {"libc.so"};
        strlenPlt = main.addImport("strlen", "libc.so");
        recvPlt = main.addImport("recv", "libc.so");

        FunctionBuilder helper;
        helper.ret();
        helperEntry = 0x20000;
        main.program.addFunction(helper.build(helperEntry));

        FunctionBuilder entry;
        entry.call(helperEntry);
        entry.call(helperEntry);
        entry.call(strlenPlt);
        entry.call(recvPlt);
        entry.ret();
        main.program.addFunction(entry.build(bin::kTextBase));

        bin::BinaryImage libc;
        libc.name = "libc.so";
        FunctionBuilder strlenImpl("strlen");
        strlenImpl.ret();
        libc.program.addFunction(strlenImpl.build(bin::kTextBase));
        libs.push_back(std::move(libc));
    }
};

TEST(LinkedProgram, CountsAllFunctions)
{
    Fixture f;
    const LinkedProgram linked(f.main, f.libs);
    EXPECT_EQ(linked.fnCount(), 3u);
    EXPECT_TRUE(linked.isMainFn(0));
    EXPECT_TRUE(linked.isMainFn(1));
    EXPECT_FALSE(linked.isMainFn(2));
}

TEST(LinkedProgram, ResolvesLocalFunction)
{
    Fixture f;
    const LinkedProgram linked(f.main, f.libs);
    const auto target = linked.resolve(&f.main, f.helperEntry);
    EXPECT_EQ(target.kind,
              LinkedProgram::CallTarget::Kind::Function);
    EXPECT_TRUE(target.library.empty());
}

TEST(LinkedProgram, BindsImportToLibraryExport)
{
    Fixture f;
    const LinkedProgram linked(f.main, f.libs);
    const auto target = linked.resolve(&f.main, f.strlenPlt);
    EXPECT_EQ(target.kind,
              LinkedProgram::CallTarget::Kind::Function);
    EXPECT_EQ(target.name, "strlen");
    EXPECT_EQ(target.library, "libc.so");
    EXPECT_FALSE(linked.isMainFn(target.fn));
}

TEST(LinkedProgram, UnboundImportIsExternal)
{
    Fixture f;
    const LinkedProgram linked(f.main, f.libs);
    const auto target = linked.resolve(&f.main, f.recvPlt);
    EXPECT_EQ(target.kind,
              LinkedProgram::CallTarget::Kind::ExternalImport);
    EXPECT_EQ(target.name, "recv");
}

TEST(LinkedProgram, UnknownAddress)
{
    Fixture f;
    const LinkedProgram linked(f.main, f.libs);
    const auto target = linked.resolve(&f.main, 0xdeadbeef);
    EXPECT_EQ(target.kind, LinkedProgram::CallTarget::Kind::Unknown);
}

TEST(LinkedProgram, FnIdOf)
{
    Fixture f;
    const LinkedProgram linked(f.main, f.libs);
    auto id = linked.fnIdOf(&f.main, f.helperEntry);
    ASSERT_TRUE(id.has_value());
    EXPECT_EQ(linked.fn(*id).fn->entry, f.helperEntry);
    EXPECT_FALSE(linked.fnIdOf(&f.main, 0x1).has_value());
}

TEST(CallGraphTest, CallerAndCalleeSites)
{
    Fixture f;
    const LinkedProgram linked(f.main, f.libs);
    const CallGraph cg = CallGraph::build(linked);

    const auto helperId = *linked.fnIdOf(&f.main, f.helperEntry);
    const auto entryId = *linked.fnIdOf(&f.main, bin::kTextBase);

    EXPECT_EQ(cg.callerSiteCount(helperId), 2u); // two call sites
    EXPECT_EQ(cg.distinctCallerCount(helperId), 1u);
    EXPECT_EQ(cg.sitesOfCaller(entryId).size(), 4u);
    // strlen (bound import) + recv (external) are library calls.
    EXPECT_EQ(cg.libraryCallCount(entryId), 2u);
    EXPECT_EQ(cg.libraryCallCount(helperId), 0u);
}

TEST(CallGraphTest, IndirectCallsResolvedViaUcse)
{
    bin::BinaryImage main;
    main.name = "m";
    bin::Section rodata;
    rodata.name = ".rodata";
    rodata.addr = bin::kRodataBase;
    rodata.flags = bin::kSecRead;
    rodata.bytes.assign(bin::kPtrSize, 0);
    const ir::Addr callee = 0x30000;
    for (std::size_t i = 0; i < bin::kPtrSize; ++i)
        rodata.bytes[i] = static_cast<std::uint8_t>(callee >> (8 * i));
    main.sections.push_back(rodata);

    FunctionBuilder calleeB;
    calleeB.ret();
    main.program.addFunction(calleeB.build(callee));

    FunctionBuilder caller;
    auto slot = caller.cnst(bin::kRodataBase);
    auto target = caller.load(Operand::ofTmp(slot));
    caller.callIndirect(Operand::ofTmp(target));
    caller.ret();
    main.program.addFunction(caller.build(bin::kTextBase));

    const std::vector<bin::BinaryImage> libs;
    const LinkedProgram linked(main, libs);
    const ProgramAnalysis pa = ProgramAnalysis::analyze(linked);

    const auto calleeId = *linked.fnIdOf(&main, callee);
    EXPECT_EQ(pa.callGraph.callerSiteCount(calleeId), 1u);
    const auto &site =
        pa.callGraph.sites()[pa.callGraph.sitesOfCallee(calleeId)[0]];
    EXPECT_TRUE(site.indirect);
    EXPECT_TRUE(site.resolvesToFunction());
}

TEST(CallGraphTest, UnresolvedIndirectKeptAsUnknownSite)
{
    bin::BinaryImage main;
    main.name = "m";
    FunctionBuilder caller;
    auto t = caller.get(ir::kRegR0); // symbolic target
    caller.callIndirect(Operand::ofTmp(t));
    caller.ret();
    main.program.addFunction(caller.build(bin::kTextBase));
    const std::vector<bin::BinaryImage> libs;
    const LinkedProgram linked(main, libs);
    const ProgramAnalysis pa = ProgramAnalysis::analyze(linked);
    ASSERT_EQ(pa.callGraph.sites().size(), 1u);
    EXPECT_TRUE(pa.callGraph.sites()[0].indirect);
    EXPECT_FALSE(pa.callGraph.sites()[0].resolvesToFunction());
}

TEST(ProgramAnalysisTest, AnalyzesEveryFunction)
{
    Fixture f;
    const LinkedProgram linked(f.main, f.libs);
    const ProgramAnalysis pa = ProgramAnalysis::analyze(linked);
    EXPECT_EQ(pa.fns.size(), linked.fnCount());
    for (const auto &fa : pa.fns)
        EXPECT_GT(fa.cfg.numBlocks(), 0u);
}

} // namespace
} // namespace fits::analysis
