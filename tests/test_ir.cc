/** @file Unit tests for the FIR intermediate representation. */

#include <gtest/gtest.h>

#include "ir/builder.hh"
#include "ir/printer.hh"
#include "ir/validate.hh"

namespace fits::ir {
namespace {

TEST(BinOpEval, Arithmetic)
{
    EXPECT_EQ(evalBinOp(BinOp::Add, 3, 4), 7u);
    EXPECT_EQ(evalBinOp(BinOp::Sub, 3, 4),
              static_cast<std::uint64_t>(-1));
    EXPECT_EQ(evalBinOp(BinOp::Mul, 6, 7), 42u);
    EXPECT_EQ(evalBinOp(BinOp::UDiv, 42, 6), 7u);
    EXPECT_EQ(evalBinOp(BinOp::UDiv, 42, 0), 0u); // defined, not UB
    EXPECT_EQ(evalBinOp(BinOp::And, 0b1100, 0b1010), 0b1000u);
    EXPECT_EQ(evalBinOp(BinOp::Or, 0b1100, 0b1010), 0b1110u);
    EXPECT_EQ(evalBinOp(BinOp::Xor, 0b1100, 0b1010), 0b0110u);
    EXPECT_EQ(evalBinOp(BinOp::Shl, 1, 4), 16u);
    EXPECT_EQ(evalBinOp(BinOp::Shr, 16, 4), 1u);
    EXPECT_EQ(evalBinOp(BinOp::Shl, 1, 64), 0u); // shift overflow
    EXPECT_EQ(evalBinOp(BinOp::Shr, 1, 64), 0u);
}

TEST(BinOpEval, Comparisons)
{
    EXPECT_EQ(evalBinOp(BinOp::CmpEq, 5, 5), 1u);
    EXPECT_EQ(evalBinOp(BinOp::CmpEq, 5, 6), 0u);
    EXPECT_EQ(evalBinOp(BinOp::CmpNe, 5, 6), 1u);
    EXPECT_EQ(evalBinOp(BinOp::CmpLt, 5, 6), 1u);
    EXPECT_EQ(evalBinOp(BinOp::CmpLe, 6, 6), 1u);
    EXPECT_EQ(evalBinOp(BinOp::CmpGt, 7, 6), 1u);
    EXPECT_EQ(evalBinOp(BinOp::CmpGe, 6, 7), 0u);
}

TEST(BinOpEval, IsComparison)
{
    EXPECT_TRUE(isComparison(BinOp::CmpEq));
    EXPECT_TRUE(isComparison(BinOp::CmpGe));
    EXPECT_FALSE(isComparison(BinOp::Add));
    EXPECT_FALSE(isComparison(BinOp::Xor));
}

TEST(Operand, Equality)
{
    EXPECT_EQ(Operand::ofTmp(3), Operand::ofTmp(3));
    EXPECT_FALSE(Operand::ofTmp(3) == Operand::ofTmp(4));
    EXPECT_EQ(Operand::ofImm(7), Operand::ofImm(7));
    EXPECT_FALSE(Operand::ofImm(7) == Operand::ofTmp(7));
}

TEST(Operand, ToString)
{
    EXPECT_EQ(Operand::ofTmp(12).toString(), "t12");
    EXPECT_EQ(Operand::ofImm(0x40).toString(), "0x40");
}

TEST(StmtTest, TerminatorClassification)
{
    EXPECT_TRUE(Stmt::ret().isTerminator());
    EXPECT_TRUE(Stmt::jump(0x100).isTerminator());
    EXPECT_TRUE(Stmt::jumpIndirect(Operand::ofTmp(0)).isTerminator());
    // Branch is a VEX-style side exit, not a terminator.
    EXPECT_FALSE(
        Stmt::branch(Operand::ofTmp(0), 0x100).isTerminator());
    EXPECT_FALSE(Stmt::call(0x100).isTerminator());
    EXPECT_FALSE(Stmt::get(0, kRegR0).isTerminator());
}

TEST(StmtTest, DefinesTmp)
{
    EXPECT_TRUE(Stmt::get(1, kRegR0).definesTmp());
    EXPECT_TRUE(Stmt::cnst(1, 5).definesTmp());
    EXPECT_TRUE(Stmt::load(1, Operand::ofImm(8)).definesTmp());
    EXPECT_TRUE(Stmt::binop(1, BinOp::Add, Operand::ofImm(1),
                            Operand::ofImm(2))
                    .definesTmp());
    EXPECT_FALSE(Stmt::put(kRegR0, Operand::ofImm(0)).definesTmp());
    EXPECT_FALSE(Stmt::ret().definesTmp());
    EXPECT_FALSE(Stmt::call(0).definesTmp());
}

TEST(StmtTest, ToStringForms)
{
    EXPECT_EQ(Stmt::get(3, 2).toString(), "t3 = GET(r2)");
    EXPECT_EQ(Stmt::put(1, Operand::ofTmp(3)).toString(),
              "PUT(r1) = t3");
    EXPECT_EQ(Stmt::cnst(4, 16).toString(), "t4 = 0x10");
    EXPECT_EQ(Stmt::load(5, Operand::ofTmp(4)).toString(),
              "t5 = LOAD(t4)");
    EXPECT_EQ(Stmt::store(Operand::ofTmp(4), Operand::ofImm(0))
                  .toString(),
              "STORE(t4) = 0x0");
    EXPECT_EQ(Stmt::call(0x8000).toString(), "CALL 0x8000");
    EXPECT_EQ(Stmt::ret().toString(), "RET");
}

TEST(FunctionTest, StmtCountAndSize)
{
    FunctionBuilder b("f");
    b.cnst(1);
    b.cnst(2);
    b.ret();
    Function fn = b.build(0x1000);
    EXPECT_EQ(fn.stmtCount(), 3u);
    EXPECT_EQ(fn.byteSize(), 3 * kStmtSize);
}

TEST(FunctionTest, BlockIndexAt)
{
    FunctionBuilder b;
    auto second = b.newBlock();
    b.cnst(1);
    b.jump(second);
    b.switchTo(second);
    b.ret();
    Function fn = b.build(0x1000);
    ASSERT_EQ(fn.blocks.size(), 2u);
    EXPECT_EQ(fn.blockIndexAt(0x1000), 0u);
    EXPECT_EQ(fn.blockIndexAt(fn.blocks[1].addr), 1u);
    EXPECT_EQ(fn.blockIndexAt(0xdead), Function::npos);
}

TEST(ProgramTest, LookupByEntryAndContaining)
{
    Program program;
    FunctionBuilder a("a");
    a.ret();
    program.addFunction(a.build(0x1000));
    FunctionBuilder c("c");
    c.cnst(0);
    c.ret();
    program.addFunction(c.build(0x2000));

    ASSERT_NE(program.functionAt(0x1000), nullptr);
    EXPECT_EQ(program.functionAt(0x1000)->name, "a");
    EXPECT_EQ(program.functionAt(0x1500), nullptr);

    const Function *fn = program.functionContaining(0x2004);
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn->name, "c");
    EXPECT_EQ(program.functionContaining(0x3000), nullptr);
}

TEST(BuilderTest, SequentialLayout)
{
    FunctionBuilder b;
    b.cnst(1); // entry block: 2 stmts (incl. jump below)
    auto next = b.newBlock();
    b.jump(next);
    b.switchTo(next);
    b.ret();
    Function fn = b.build(0x400);
    ASSERT_EQ(fn.blocks.size(), 2u);
    EXPECT_EQ(fn.blocks[0].addr, 0x400u);
    EXPECT_EQ(fn.blocks[1].addr, 0x400u + 2 * kStmtSize);
}

TEST(BuilderTest, TargetPatching)
{
    FunctionBuilder b;
    auto target = b.newBlock();
    auto cond = b.cnst(1);
    b.branch(Operand::ofTmp(cond), target);
    b.ret();
    b.switchTo(target);
    b.ret();
    Function fn = b.build(0x100);
    // The branch target must equal block 1's final address.
    EXPECT_EQ(fn.blocks[0].stmts[1].target, fn.blocks[1].addr);
}

TEST(BuilderTest, EmptyBlocksArePadded)
{
    FunctionBuilder b;
    b.newBlock(); // never filled
    b.ret();
    Function fn = b.build(0x100);
    for (const auto &block : fn.blocks)
        EXPECT_FALSE(block.stmts.empty());
}

TEST(BuilderTest, AbiHelpers)
{
    FunctionBuilder b;
    b.setArg(0, Operand::ofImm(1));
    b.setArg(3, Operand::ofImm(2));
    b.call(0x8000);
    auto ret = b.retVal();
    b.put(kRetReg, Operand::ofTmp(ret));
    b.ret();
    Function fn = b.build(0);
    EXPECT_EQ(fn.blocks[0].stmts[0].reg, kRegR0);
    EXPECT_EQ(fn.blocks[0].stmts[1].reg, kRegR3);
    EXPECT_EQ(fn.blocks[0].stmts[3].kind, StmtKind::Get);
    EXPECT_EQ(fn.blocks[0].stmts[3].reg, kRetReg);
}

TEST(BuilderTest, FreshTmpsAreUnique)
{
    FunctionBuilder b;
    const auto t1 = b.cnst(0);
    const auto t2 = b.cnst(0);
    const auto t3 = b.get(kRegR0);
    EXPECT_NE(t1, t2);
    EXPECT_NE(t2, t3);
    b.ret();
    Function fn = b.build(0);
    EXPECT_EQ(fn.numTmps, 3u);
}

TEST(ValidateTest, AcceptsWellFormedFunction)
{
    FunctionBuilder b;
    auto loop = b.newBlock();
    auto exit = b.newBlock();
    b.put(4, Operand::ofImm(0));
    b.jump(loop);
    b.switchTo(loop);
    auto i = b.get(4);
    auto done = b.binop(BinOp::CmpGe, Operand::ofTmp(i),
                        Operand::ofImm(10));
    b.branch(Operand::ofTmp(done), exit);
    b.put(4, Operand::ofTmp(b.binop(BinOp::Add, Operand::ofTmp(i),
                                    Operand::ofImm(1))));
    b.jump(loop);
    b.switchTo(exit);
    b.ret();
    Function fn = b.build(0x1000);
    EXPECT_TRUE(validateFunction(fn).empty());
}

TEST(ValidateTest, RejectsUndefinedTmp)
{
    Function fn;
    fn.entry = 0x100;
    fn.numTmps = 1;
    BasicBlock block;
    block.addr = 0x100;
    block.stmts.push_back(Stmt::put(0, Operand::ofTmp(0))); // t0 undef
    block.stmts.push_back(Stmt::ret());
    fn.blocks.push_back(block);
    EXPECT_FALSE(validateFunction(fn).empty());
}

TEST(ValidateTest, RejectsTmpBeyondNumTmps)
{
    Function fn;
    fn.entry = 0x100;
    fn.numTmps = 1;
    BasicBlock block;
    block.addr = 0x100;
    block.stmts.push_back(Stmt::cnst(5, 1)); // t5 >= numTmps
    block.stmts.push_back(Stmt::ret());
    fn.blocks.push_back(block);
    EXPECT_FALSE(validateFunction(fn).empty());
}

TEST(ValidateTest, RejectsNonContiguousBlocks)
{
    Function fn;
    fn.entry = 0x100;
    BasicBlock a;
    a.addr = 0x100;
    a.stmts.push_back(Stmt::ret());
    BasicBlock b;
    b.addr = 0x200; // gap
    b.stmts.push_back(Stmt::ret());
    fn.blocks = {a, b};
    EXPECT_FALSE(validateFunction(fn).empty());
}

TEST(ValidateTest, RejectsBadBranchTarget)
{
    Function fn;
    fn.entry = 0x100;
    fn.numTmps = 1;
    BasicBlock block;
    block.addr = 0x100;
    block.stmts.push_back(Stmt::cnst(0, 1));
    block.stmts.push_back(Stmt::branch(Operand::ofTmp(0), 0x777));
    block.stmts.push_back(Stmt::ret());
    fn.blocks.push_back(block);
    EXPECT_FALSE(validateFunction(fn).empty());
}

TEST(ValidateTest, RejectsMidBlockJump)
{
    Function fn;
    fn.entry = 0x100;
    BasicBlock block;
    block.addr = 0x100;
    block.stmts.push_back(Stmt::jump(0x100));
    block.stmts.push_back(Stmt::ret()); // after a terminator
    fn.blocks.push_back(block);
    EXPECT_FALSE(validateFunction(fn).empty());
}

TEST(ValidateTest, AllowsMidBlockBranch)
{
    // Branch is a side exit; statements may follow it.
    FunctionBuilder b;
    auto other = b.newBlock();
    auto c = b.cnst(1);
    b.branch(Operand::ofTmp(c), other);
    b.cnst(2); // after the branch: legal
    b.ret();
    b.switchTo(other);
    b.ret();
    EXPECT_TRUE(validateFunction(b.build(0x100)).empty());
}

TEST(ValidateTest, RejectsBadRegister)
{
    Function fn;
    fn.entry = 0;
    fn.numTmps = 1;
    BasicBlock block;
    block.addr = 0;
    block.stmts.push_back(Stmt::get(0, 99)); // register out of range
    block.stmts.push_back(Stmt::ret());
    fn.blocks.push_back(block);
    EXPECT_FALSE(validateFunction(fn).empty());
}

TEST(PrinterTest, ContainsAddressesAndMnemonics)
{
    FunctionBuilder b("loop_fn");
    auto t = b.cnst(3);
    b.put(kRegR0, Operand::ofTmp(t));
    b.ret();
    const std::string text = printFunction(b.build(0x2000));
    EXPECT_NE(text.find("loop_fn"), std::string::npos);
    EXPECT_NE(text.find("0x2000"), std::string::npos);
    EXPECT_NE(text.find("PUT(r0)"), std::string::npos);
    EXPECT_NE(text.find("RET"), std::string::npos);
}

} // namespace
} // namespace fits::ir
