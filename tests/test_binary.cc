/** @file Unit tests for the binary container layer (bytebuf, image,
 * FBIN serialization). */

#include <gtest/gtest.h>

#include "binary/bytebuf.hh"
#include "binary/fbin.hh"
#include "binary/image.hh"
#include "ir/builder.hh"
#include "support/rng.hh"

namespace fits::bin {
namespace {

TEST(ByteBuf, ScalarRoundTrip)
{
    ByteWriter w;
    w.u8(0xab);
    w.u16(0x1234);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefULL);
    w.str("hello");

    ByteReader r(w.bytes());
    std::uint8_t a;
    std::uint16_t b;
    std::uint32_t c;
    std::uint64_t d;
    std::string s;
    ASSERT_TRUE(r.u8(a));
    ASSERT_TRUE(r.u16(b));
    ASSERT_TRUE(r.u32(c));
    ASSERT_TRUE(r.u64(d));
    ASSERT_TRUE(r.str(s));
    EXPECT_EQ(a, 0xab);
    EXPECT_EQ(b, 0x1234);
    EXPECT_EQ(c, 0xdeadbeefu);
    EXPECT_EQ(d, 0x0123456789abcdefULL);
    EXPECT_EQ(s, "hello");
    EXPECT_TRUE(r.atEnd());
    EXPECT_TRUE(r.ok());
}

TEST(ByteBuf, ReadPastEndFailsSticky)
{
    ByteWriter w;
    w.u8(1);
    ByteReader r(w.bytes());
    std::uint32_t v;
    EXPECT_FALSE(r.u32(v));
    EXPECT_FALSE(r.ok());
    std::uint8_t b;
    EXPECT_FALSE(r.u8(b)); // sticky failure
}

TEST(ByteBuf, StringLengthBeyondBufferFails)
{
    ByteWriter w;
    w.u32(1000); // claims 1000 bytes follow
    w.u8('x');
    ByteReader r(w.bytes());
    std::string s;
    EXPECT_FALSE(r.str(s));
}

TEST(ByteBuf, PatchU32)
{
    ByteWriter w;
    const std::size_t at = w.size();
    w.u32(0);
    w.patchU32(at, 0xcafebabe);
    ByteReader r(w.bytes());
    std::uint32_t v;
    ASSERT_TRUE(r.u32(v));
    EXPECT_EQ(v, 0xcafebabeu);
}

TEST(ByteBuf, Seek)
{
    ByteWriter w;
    w.u8(1);
    w.u8(2);
    ByteReader r(w.bytes());
    ASSERT_TRUE(r.seek(1));
    std::uint8_t v;
    ASSERT_TRUE(r.u8(v));
    EXPECT_EQ(v, 2);
    EXPECT_FALSE(r.seek(5));
}

BinaryImage
makeImage()
{
    BinaryImage image;
    image.name = "httpd";
    image.arch = Arch::Arm;
    image.neededLibraries = {"libc.so"};

    Section rodata;
    rodata.name = ".rodata";
    rodata.addr = kRodataBase;
    rodata.flags = kSecRead;
    const char text[] = "username\0password\0";
    rodata.bytes.assign(text, text + sizeof(text) - 1);
    image.sections.push_back(rodata);

    Section data;
    data.name = ".data";
    data.addr = kDataBase;
    data.flags = kSecRead | kSecWrite;
    data.bytes.assign(16, 0);
    // Slot 0 points to "password" in rodata.
    const Addr target = kRodataBase + 9;
    for (std::size_t i = 0; i < kPtrSize; ++i)
        data.bytes[i] = static_cast<std::uint8_t>(target >> (8 * i));
    image.sections.push_back(data);

    image.addImport("recv", "libc.so");
    image.addImport("strcmp", "libc.so");

    ir::FunctionBuilder b("main");
    b.setArg(0, ir::Operand::ofImm(kRodataBase));
    b.call(image.imports[1].pltAddr);
    b.ret();
    image.program.addFunction(b.build(kTextBase));
    image.symbols.push_back({kTextBase, "main"});
    return image;
}

TEST(Image, SectionClassification)
{
    const BinaryImage image = makeImage();
    EXPECT_TRUE(image.isRodata(kRodataBase));
    EXPECT_TRUE(image.isRodata(kRodataBase + 5));
    EXPECT_FALSE(image.isRodata(kDataBase));
    EXPECT_TRUE(image.isData(kDataBase));
    EXPECT_FALSE(image.isData(kRodataBase));
    EXPECT_TRUE(image.isMapped(kRodataBase));
    EXPECT_FALSE(image.isMapped(0xdeadbeef));
}

TEST(Image, ReadWord)
{
    const BinaryImage image = makeImage();
    auto word = image.readWord(kDataBase);
    ASSERT_TRUE(word.has_value());
    EXPECT_EQ(*word, kRodataBase + 9);
    EXPECT_FALSE(image.readWord(0x12345).has_value());
    // Word straddling the end of a section fails.
    EXPECT_FALSE(image.readWord(kDataBase + 14).has_value());
}

TEST(Image, ReadCString)
{
    const BinaryImage image = makeImage();
    auto s = image.readCString(kRodataBase);
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(*s, "username");
    auto s2 = image.readCString(kRodataBase + 9);
    ASSERT_TRUE(s2.has_value());
    EXPECT_EQ(*s2, "password");
    EXPECT_FALSE(image.readCString(0xdead).has_value());
}

TEST(Image, ImportLookups)
{
    const BinaryImage image = makeImage();
    ASSERT_EQ(image.imports.size(), 2u);
    const Import *recv = image.importByName("recv");
    ASSERT_NE(recv, nullptr);
    EXPECT_TRUE(image.isImportAddr(recv->pltAddr));
    EXPECT_EQ(image.importAt(recv->pltAddr), recv);
    EXPECT_EQ(image.importByName("nope"), nullptr);
    EXPECT_FALSE(image.isImportAddr(kTextBase));
}

TEST(Image, NameOfResolvesSymbolsAndImports)
{
    const BinaryImage image = makeImage();
    EXPECT_EQ(image.nameOf(kTextBase), "main");
    EXPECT_EQ(image.nameOf(image.imports[0].pltAddr), "recv");
    EXPECT_EQ(image.nameOf(0x999999), "");
}

TEST(Image, StripRemovesLocalNamesKeepsImports)
{
    BinaryImage image = makeImage();
    image.strip();
    EXPECT_TRUE(image.stripped);
    EXPECT_TRUE(image.symbols.empty());
    EXPECT_TRUE(image.program.functions().front().name.empty());
    EXPECT_EQ(image.imports.size(), 2u); // dynamic symbols survive
    EXPECT_NE(image.importByName("recv"), nullptr);
}

TEST(Fbin, RoundTripPreservesEverything)
{
    const BinaryImage original = makeImage();
    const auto bytes = writeBinary(original);
    auto loaded = loadBinary(bytes);
    ASSERT_TRUE(loaded) << loaded.errorMessage();
    const BinaryImage &image = loaded.value();

    EXPECT_EQ(image.name, original.name);
    EXPECT_EQ(image.arch, original.arch);
    EXPECT_EQ(image.neededLibraries, original.neededLibraries);
    ASSERT_EQ(image.sections.size(), original.sections.size());
    for (std::size_t i = 0; i < image.sections.size(); ++i) {
        EXPECT_EQ(image.sections[i].name, original.sections[i].name);
        EXPECT_EQ(image.sections[i].addr, original.sections[i].addr);
        EXPECT_EQ(image.sections[i].bytes,
                  original.sections[i].bytes);
    }
    ASSERT_EQ(image.imports.size(), original.imports.size());
    EXPECT_EQ(image.imports[0].name, "recv");
    ASSERT_EQ(image.program.size(), original.program.size());
    const ir::Function &fn = image.program.functions().front();
    EXPECT_EQ(fn.stmtCount(),
              original.program.functions().front().stmtCount());
    // Re-serializing yields identical bytes (canonical encoding).
    EXPECT_EQ(writeBinary(image), bytes);
}

TEST(Fbin, RejectsBadMagic)
{
    auto bytes = writeBinary(makeImage());
    bytes[0] = 'X';
    const auto loaded = loadBinary(bytes);
    EXPECT_FALSE(loaded);
    EXPECT_EQ(loaded.status().code(), support::ErrorCode::BadMagic);
    EXPECT_EQ(loaded.status().stage(), support::Stage::Lift);
}

TEST(Fbin, RejectsBadVersion)
{
    auto bytes = writeBinary(makeImage());
    bytes[4] = 0xee;
    const auto loaded = loadBinary(bytes);
    EXPECT_FALSE(loaded);
    EXPECT_EQ(loaded.status().code(),
              support::ErrorCode::BadVersion);
}

TEST(Fbin, RejectsTrailingGarbage)
{
    auto bytes = writeBinary(makeImage());
    bytes.push_back(0);
    const auto loaded = loadBinary(bytes);
    EXPECT_FALSE(loaded);
    EXPECT_EQ(loaded.status().code(), support::ErrorCode::Corrupt);
}

TEST(Fbin, RejectsEveryTruncation)
{
    // Property: no prefix of a valid FBIN parses (the decoder never
    // reads out of bounds and never accepts a truncated file).
    const auto bytes = writeBinary(makeImage());
    for (std::size_t cut = 0; cut < bytes.size(); cut += 3) {
        std::vector<std::uint8_t> prefix(bytes.begin(),
                                         bytes.begin() + cut);
        const auto loaded = loadBinary(prefix);
        EXPECT_FALSE(loaded) << "prefix length " << cut;
        // Truncation is reported as a typed lift-stage error, never
        // the catch-all Internal code.
        EXPECT_EQ(loaded.status().stage(), support::Stage::Lift)
            << "prefix length " << cut;
        EXPECT_NE(loaded.status().code(),
                  support::ErrorCode::Internal)
            << "prefix length " << cut << ": "
            << loaded.status().toString();
    }
}

TEST(Fbin, SurvivesRandomByteFlips)
{
    // Property: bit-flipped images either fail cleanly or parse; the
    // decoder must never crash.
    const auto bytes = writeBinary(makeImage());
    support::Rng rng(123);
    for (int round = 0; round < 200; ++round) {
        auto mutated = bytes;
        const std::size_t n = 1 + rng.index(4);
        for (std::size_t i = 0; i < n; ++i)
            mutated[rng.index(mutated.size())] ^=
                static_cast<std::uint8_t>(1 + rng.index(255));
        (void)loadBinary(mutated); // must not crash or hang
    }
    SUCCEED();
}

TEST(ArchName, Names)
{
    EXPECT_STREQ(archName(Arch::Arm), "ARM");
    EXPECT_STREQ(archName(Arch::Aarch64), "AARCH64");
    EXPECT_STREQ(archName(Arch::Mips), "MIPS");
}

} // namespace
} // namespace fits::bin
