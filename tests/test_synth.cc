/** @file Unit tests for the synthetic firmware generator: determinism,
 * ground-truth consistency, corpus composition, and structural validity
 * of everything it emits. */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "binary/fbin.hh"
#include "core/anchors.hh"
#include "firmware/fwimg.hh"
#include "firmware/select.hh"
#include "ir/validate.hh"
#include "support/strings.hh"
#include "synth/firmware_gen.hh"
#include "synth/libc_gen.hh"
#include "synth/wordpools.hh"
#include "taint/common.hh"

namespace fits::synth {
namespace {

SampleSpec
smallSpec(std::uint64_t seed = 0xabcd)
{
    SampleSpec spec;
    spec.profile = tendaProfile();
    spec.profile.minCustomFns = 150;
    spec.profile.maxCustomFns = 200;
    spec.product = "AC9";
    spec.version = "V1";
    spec.name = "AC9-V1";
    spec.seed = seed;
    return spec;
}

TEST(LibcGen, ExportsAllCoreAnchors)
{
    const bin::BinaryImage libc = generateLibc();
    std::set<std::string> names;
    for (const auto &fn : libc.program.functions())
        names.insert(fn.name);
    for (const char *anchor :
         {"strcpy", "strncpy", "memcmp", "strcmp", "strncmp",
          "strstr", "strchr", "strlen", "memcpy", "memset",
          "strdup", "strtok"}) {
        EXPECT_TRUE(names.count(anchor)) << anchor;
    }
    // Plus non-anchor realism.
    EXPECT_TRUE(names.count("malloc"));
    EXPECT_TRUE(names.count("atoi"));
}

TEST(LibcGen, AllFunctionsValidate)
{
    const bin::BinaryImage libc = generateLibc();
    const auto problems = ir::validateProgram(libc.program);
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());
}

TEST(HttpdGen, DeterministicForEqualSeeds)
{
    const auto a = generateHttpd(smallSpec(7));
    const auto b = generateHttpd(smallSpec(7));
    EXPECT_EQ(bin::writeBinary(a.image), bin::writeBinary(b.image));
    EXPECT_EQ(a.truth.sinkSites.size(), b.truth.sinkSites.size());
    EXPECT_EQ(a.truth.itsFunctions, b.truth.itsFunctions);
}

TEST(HttpdGen, DifferentSeedsDiffer)
{
    const auto a = generateHttpd(smallSpec(1));
    const auto b = generateHttpd(smallSpec(2));
    EXPECT_NE(bin::writeBinary(a.image), bin::writeBinary(b.image));
}

TEST(HttpdGen, ProgramValidates)
{
    const auto result = generateHttpd(smallSpec());
    const auto problems = ir::validateProgram(result.image.program);
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());
}

TEST(HttpdGen, IsStrippedButKeepsImports)
{
    const auto result = generateHttpd(smallSpec());
    EXPECT_TRUE(result.image.stripped);
    EXPECT_TRUE(result.image.symbols.empty());
    for (const auto &fn : result.image.program.functions())
        EXPECT_TRUE(fn.name.empty());
    EXPECT_NE(result.image.importByName("recv"), nullptr);
    EXPECT_NE(result.image.importByName("strcmp"), nullptr);
}

TEST(HttpdGen, FunctionCountWithinProfile)
{
    const auto spec = smallSpec();
    const auto result = generateHttpd(spec);
    EXPECT_GE(result.image.program.size(),
              static_cast<std::size_t>(spec.profile.minCustomFns));
    // A little slack: the builder finishes the function in flight.
    EXPECT_LE(result.image.program.size(),
              static_cast<std::size_t>(spec.profile.maxCustomFns) +
                  8);
}

TEST(HttpdGen, ItsFunctionExistsInProgram)
{
    const auto result = generateHttpd(smallSpec());
    ASSERT_EQ(result.truth.itsFunctions.size(), 1u);
    EXPECT_NE(result.image.program.functionAt(
                  result.truth.itsFunctions[0]),
              nullptr);
    for (ir::Addr conf : result.truth.confounders)
        EXPECT_NE(result.image.program.functionAt(conf), nullptr);
}

TEST(HttpdGen, SinkSitesPointAtRealSinkCalls)
{
    const auto result = generateHttpd(smallSpec());
    ASSERT_FALSE(result.truth.sinkSites.empty());
    for (const auto &site : result.truth.sinkSites) {
        const ir::Function *fn =
            result.image.program.functionContaining(site.addr);
        ASSERT_NE(fn, nullptr) << support::hex(site.addr);
        bool found = false;
        for (const auto &block : fn->blocks) {
            for (std::size_t i = 0; i < block.stmts.size(); ++i) {
                if (block.stmtAddr(i) != site.addr)
                    continue;
                const ir::Stmt &stmt = block.stmts[i];
                ASSERT_EQ(stmt.kind, ir::StmtKind::Call);
                const bin::Import *imp =
                    result.image.importAt(stmt.target);
                ASSERT_NE(imp, nullptr);
                EXPECT_EQ(imp->name, site.sinkName);
                EXPECT_NE(taint::sinkByName(imp->name), nullptr);
                found = true;
            }
        }
        EXPECT_TRUE(found) << support::hex(site.addr);
    }
}

TEST(HttpdGen, StructOffsetDesignHasNoIts)
{
    auto spec = smallSpec();
    spec.failure = SampleSpec::FailureMode::StructOffset;
    const auto result = generateHttpd(spec);
    EXPECT_FALSE(result.truth.hasIts);
    EXPECT_TRUE(result.truth.itsFunctions.empty());
    EXPECT_FALSE(result.truth.sinkSites.empty()); // bugs still exist
}

TEST(HttpdGen, BugCountMatchesRealBugSites)
{
    const auto result = generateHttpd(smallSpec());
    std::size_t bugs = 0;
    for (const auto &site : result.truth.sinkSites) {
        if (site.isBug())
            ++bugs;
    }
    EXPECT_EQ(result.truth.bugCount(), bugs);
    EXPECT_EQ(result.truth.bugSites().size(), bugs);
}

TEST(HttpdGen, SystemDataSitesUseSystemKeys)
{
    // Every SystemData site must be the kind the string filter can
    // remove: the generator only indexes them by system keys, which
    // the taint layer's list must contain.
    for (const auto &key : systemConfigKeys())
        EXPECT_TRUE(taint::isSystemDataKey(key)) << key;
}

TEST(FirmwareGen, RoundTripsThroughUnpackAndSelect)
{
    const auto fw = generateFirmware(smallSpec());
    auto unpacked = fw::unpackFirmware(fw.bytes);
    ASSERT_TRUE(unpacked) << unpacked.errorMessage();
    auto target =
        fw::selectAnalysisTarget(unpacked.value().filesystem);
    ASSERT_TRUE(target) << target.errorMessage();
    EXPECT_EQ(target.value().libraries.size(), 1u);
    EXPECT_EQ(target.value().libraries[0]->name, "libc.so");
    EXPECT_TRUE(target.value().missingLibraries.empty());
    // The selected binary is the generated network binary, not the
    // busybox filler.
    EXPECT_NE(target.value().main->importByName("recv"), nullptr);
}

TEST(FirmwareGen, FailureModesFailAtTheRightStage)
{
    using FM = SampleSpec::FailureMode;
    {
        auto spec = smallSpec();
        spec.failure = FM::OpaqueEncoding;
        spec.profile.encoding = fw::Encoding::Opaque;
        const auto fw = generateFirmware(spec);
        EXPECT_FALSE(fw::unpackFirmware(fw.bytes));
    }
    {
        auto spec = smallSpec();
        spec.failure = FM::CorruptImage;
        const auto fw = generateFirmware(spec);
        EXPECT_FALSE(fw::unpackFirmware(fw.bytes));
    }
    {
        auto spec = smallSpec();
        spec.failure = FM::NoNetworkBinary;
        const auto fw = generateFirmware(spec);
        auto unpacked = fw::unpackFirmware(fw.bytes);
        ASSERT_TRUE(unpacked);
        EXPECT_FALSE(fw::selectAnalysisTarget(
            unpacked.value().filesystem));
    }
}

TEST(Dataset, ComposedLikeThePaper)
{
    const auto dataset = standardDataset();
    ASSERT_EQ(dataset.size(), 59u);

    std::map<std::string, int> perVendor;
    int latest = 0, preprocessingFailures = 0, structOffset = 0;
    for (const auto &spec : dataset) {
        ++perVendor[spec.profile.vendor];
        if (spec.latest)
            ++latest;
        using FM = SampleSpec::FailureMode;
        if (spec.failure == FM::OpaqueEncoding ||
            spec.failure == FM::CorruptImage ||
            spec.failure == FM::NoNetworkBinary) {
            ++preprocessingFailures;
        }
        if (spec.failure == FM::StructOffset)
            ++structOffset;
    }
    EXPECT_EQ(perVendor["NETGEAR"], 19);
    EXPECT_EQ(perVendor["D-Link"], 12);
    EXPECT_EQ(perVendor["TP-Link"], 18);
    EXPECT_EQ(perVendor["Tenda"], 9);
    EXPECT_EQ(perVendor["Cisco"], 1);
    EXPECT_EQ(latest, 10);
    EXPECT_EQ(preprocessingFailures, 4); // §4.2: four samples
    EXPECT_EQ(structOffset, 2);          // §4.2: two samples
}

TEST(Dataset, SeedsAreUnique)
{
    std::set<std::uint64_t> seeds;
    for (const auto &spec : standardDataset())
        seeds.insert(spec.seed);
    EXPECT_EQ(seeds.size(), 59u);
}

TEST(Profiles, VendorsDistinct)
{
    EXPECT_EQ(netgearProfile().vendor, "NETGEAR");
    EXPECT_EQ(dlinkProfile().vendor, "D-Link");
    EXPECT_EQ(tplinkProfile().vendor, "TP-Link");
    EXPECT_EQ(tendaProfile().vendor, "Tenda");
    EXPECT_EQ(ciscoProfile().vendor, "Cisco");
    EXPECT_NE(netgearProfile().minCustomFns,
              tplinkProfile().minCustomFns);
}

TEST(Manifest, SiteLookups)
{
    GroundTruth truth;
    truth.sinkSites.push_back(
        {0x100, SiteClass::RealBug, FlowKind::DirectGlobal,
         "strcpy"});
    truth.sinkSites.push_back(
        {0x200, SiteClass::DeadGuard, FlowKind::DirectGlobal,
         "sprintf"});
    EXPECT_EQ(truth.bugCount(), 1u);
    EXPECT_EQ(truth.bugSites(), std::set<ir::Addr>{0x100});
    ASSERT_NE(truth.siteAt(0x200), nullptr);
    EXPECT_FALSE(truth.siteAt(0x200)->isBug());
    EXPECT_EQ(truth.siteAt(0x300), nullptr);
}

} // namespace
} // namespace fits::synth
