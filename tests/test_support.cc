/** @file Unit tests for the support utilities (RNG, strings, Result). */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "support/result.hh"
#include "support/rng.hh"
#include "support/strings.hh"

namespace fits::support {
namespace {

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next())
            ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformIntRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(-5, 17);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 17);
    }
}

TEST(Rng, UniformIntCoversFullRange)
{
    Rng rng(9);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.uniformInt(0, 7));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntSingleton)
{
    Rng rng(3);
    EXPECT_EQ(rng.uniformInt(5, 5), 5);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double v = rng.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformRealRange)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniformReal(2.0, 4.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 4.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(17);
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(19);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) {
        if (rng.chance(0.3))
            ++hits;
    }
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, IndexInBounds)
{
    Rng rng(23);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rng.index(13), 13u);
}

TEST(Rng, PickReturnsElement)
{
    Rng rng(29);
    const std::vector<int> items = {10, 20, 30};
    for (int i = 0; i < 100; ++i) {
        const int v = rng.pick(items);
        EXPECT_TRUE(v == 10 || v == 20 || v == 30);
    }
}

TEST(Rng, ShufflePreservesElements)
{
    Rng rng(31);
    std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = items;
    rng.shuffle(items);
    std::sort(items.begin(), items.end());
    EXPECT_EQ(items, sorted);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(5);
    Rng child = a.fork();
    // The child should not replay the parent's stream.
    Rng b(5);
    b.fork();
    EXPECT_NE(child.next(), b.next() + 1); // sanity: streams differ
    // Determinism of forks from equal parents:
    Rng p1(77), p2(77);
    Rng c1 = p1.fork(), c2 = p2.fork();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(c1.next(), c2.next());
}

TEST(Strings, Join)
{
    EXPECT_EQ(join({}, ", "), "");
    EXPECT_EQ(join({"a"}, ", "), "a");
    EXPECT_EQ(join({"a", "b", "c"}, "-"), "a-b-c");
}

TEST(Strings, Split)
{
    EXPECT_EQ(split("a,b,c", ','),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(split("a,,c", ','),
              (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(split(",x,", ','),
              (std::vector<std::string>{"", "x", ""}));
}

TEST(Strings, StartsEndsWith)
{
    EXPECT_TRUE(startsWith("firmware.bin", "firm"));
    EXPECT_FALSE(startsWith("firm", "firmware"));
    EXPECT_TRUE(endsWith("lib/libc.so", "libc.so"));
    EXPECT_FALSE(endsWith(".so", "libc.so"));
    EXPECT_TRUE(startsWith("x", ""));
    EXPECT_TRUE(endsWith("x", ""));
}

TEST(Strings, ToLower)
{
    EXPECT_EQ(toLower("HeLLo-123"), "hello-123");
}

TEST(Strings, Hex)
{
    EXPECT_EQ(hex(0), "0x0");
    EXPECT_EQ(hex(0x19090), "0x19090");
    EXPECT_EQ(hex(0xdeadbeef), "0xdeadbeef");
}

TEST(Strings, Format)
{
    EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(format("%05.1f", 3.25), "003.2");
    EXPECT_EQ(format("empty"), "empty");
}

TEST(Strings, Fnv1aStableAndDistinct)
{
    EXPECT_EQ(fnv1a("abc"), fnv1a("abc"));
    EXPECT_NE(fnv1a("abc"), fnv1a("abd"));
    EXPECT_NE(fnv1a(""), fnv1a(std::string_view("\0", 1)));
}

TEST(Result, OkCarriesValue)
{
    auto r = Result<int>::ok(42);
    ASSERT_TRUE(r.hasValue());
    EXPECT_TRUE(static_cast<bool>(r));
    EXPECT_EQ(r.value(), 42);
    EXPECT_TRUE(r.errorMessage().empty());
}

TEST(Result, ErrorCarriesMessage)
{
    auto r = Result<int>::error("boom");
    EXPECT_FALSE(r.hasValue());
    EXPECT_EQ(r.errorMessage(), "boom");
}

TEST(Result, TakeMovesValue)
{
    auto r = Result<std::string>::ok("payload");
    const std::string v = r.take();
    EXPECT_EQ(v, "payload");
}

} // namespace
} // namespace fits::support
