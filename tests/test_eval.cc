/** @file Unit tests for the evaluation harness and table printer. */

#include <gtest/gtest.h>

#include "eval/harness.hh"
#include "eval/tables.hh"

namespace fits::eval {
namespace {

TEST(PrecisionStats, TopNCounting)
{
    PrecisionStats stats;
    stats.addRank(1);
    stats.addRank(2);
    stats.addRank(3);
    stats.addRank(-1);
    EXPECT_EQ(stats.total, 4);
    EXPECT_DOUBLE_EQ(stats.p1(), 0.25);
    EXPECT_DOUBLE_EQ(stats.p2(), 0.50);
    EXPECT_DOUBLE_EQ(stats.p3(), 0.75);
}

TEST(PrecisionStats, EmptyIsZero)
{
    PrecisionStats stats;
    EXPECT_DOUBLE_EQ(stats.p1(), 0.0);
    EXPECT_DOUBLE_EQ(stats.p3(), 0.0);
}

TEST(RankOfFirstIts, FindsGroundTruthEntry)
{
    synth::GroundTruth truth;
    truth.itsFunctions = {0x2000};
    std::vector<core::RankedFunction> ranking(3);
    ranking[0].entry = 0x1000;
    ranking[1].entry = 0x2000;
    ranking[2].entry = 0x3000;
    EXPECT_EQ(rankOfFirstIts(ranking, truth), 2);
    truth.itsFunctions = {0x9999};
    EXPECT_EQ(rankOfFirstIts(ranking, truth), -1);
    EXPECT_EQ(rankOfFirstIts({}, truth), -1);
}

TEST(EngineStats, FalsePositiveRate)
{
    EngineStats stats;
    stats.alerts = 10;
    stats.bugs = 4;
    EXPECT_DOUBLE_EQ(stats.falsePositiveRate(), 0.6);
    EngineStats empty;
    EXPECT_DOUBLE_EQ(empty.falsePositiveRate(), 0.0);
}

TEST(EngineStats, Accumulation)
{
    EngineStats a, b;
    a.alerts = 3;
    a.bugs = 1;
    a.ms = 2.0;
    b.alerts = 5;
    b.bugs = 2;
    b.ms = 3.0;
    a += b;
    EXPECT_EQ(a.alerts, 8u);
    EXPECT_EQ(a.bugs, 3u);
    EXPECT_DOUBLE_EQ(a.ms, 5.0);
}

TEST(ScoreReport, ClassifiesAgainstGroundTruth)
{
    synth::GroundTruth truth;
    truth.sinkSites.push_back({0x100, synth::SiteClass::RealBug,
                               synth::FlowKind::DirectGlobal,
                               "strcpy"});
    truth.sinkSites.push_back({0x200, synth::SiteClass::DeadGuard,
                               synth::FlowKind::DirectGlobal,
                               "strcpy"});

    std::vector<taint::Alert> alerts(3);
    alerts[0].sinkSite = 0x100; // true positive
    alerts[1].sinkSite = 0x200; // known non-bug site
    alerts[2].sinkSite = 0x300; // unknown site
    std::vector<ir::Addr> bugs;
    const EngineStats stats = scoreReport(alerts, truth, 1.5, &bugs);
    EXPECT_EQ(stats.alerts, 3u);
    EXPECT_EQ(stats.bugs, 1u);
    EXPECT_DOUBLE_EQ(stats.ms, 1.5);
    EXPECT_EQ(bugs, std::vector<ir::Addr>{0x100});
}

TEST(ScoreReport, DeduplicatesBugSites)
{
    synth::GroundTruth truth;
    truth.sinkSites.push_back({0x100, synth::SiteClass::RealBug,
                               synth::FlowKind::DirectGlobal,
                               "strcpy"});
    std::vector<taint::Alert> alerts(2);
    alerts[0].sinkSite = 0x100;
    alerts[1].sinkSite = 0x100;
    const EngineStats stats = scoreReport(alerts, truth, 0.0);
    EXPECT_EQ(stats.bugs, 1u);
}

TEST(Tables, Formatting)
{
    EXPECT_EQ(percent(0.888), "89%");
    EXPECT_EQ(percent(0.0), "0%");
    EXPECT_EQ(percent(1.0), "100%");
    EXPECT_EQ(fixed(3.14159, 2), "3.14");
    EXPECT_EQ(hmm(0), "0:00.000");
    EXPECT_EQ(hmm(61234), "1:01.234");
}

TEST(Tables, PrinterDoesNotCrash)
{
    TablePrinter table({"A", "B"});
    table.addRow({"1", "2"});
    table.addSeparator();
    table.addRow({"33", "4444"});
    table.addRow({"only-one"});
    table.print(); // visual output; must not throw
    SUCCEED();
}

} // namespace
} // namespace fits::eval
