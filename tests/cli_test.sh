#!/bin/sh
# Integration test of the `fits` CLI: generate, inspect, rank, taint,
# disassemble, and score one image end to end. Invoked by ctest with
# the path to the fits binary as $1.
set -e

FITS="$1"
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT
IMG="$DIR/cli_test.fwimg"

"$FITS" gen "$IMG" --vendor Tenda --seed 77 > "$DIR/gen.out"
grep -q "wrote" "$DIR/gen.out"
test -s "$IMG"
test -s "$IMG.truth"

"$FITS" info "$IMG" > "$DIR/info.out"
grep -q "network binary" "$DIR/info.out"
grep -q "libc.so" "$DIR/info.out"

"$FITS" rank "$IMG" --top 3 > "$DIR/rank.out"
grep -q "#1" "$DIR/rank.out"

# The rank-1 entry should be the ground-truth ITS for this seed.
ITS=$(grep '^its' "$IMG.truth" | awk '{print $2}')
grep -q "$ITS" "$DIR/rank.out"

"$FITS" taint "$IMG" --engine sta --its "$ITS" > "$DIR/taint.out"
grep -q "alerts" "$DIR/taint.out"

"$FITS" disasm "$IMG" "$ITS" > "$DIR/disasm.out"
grep -q "function" "$DIR/disasm.out"
grep -q "GET(r0)" "$DIR/disasm.out"

"$FITS" score "$IMG" > "$DIR/score.out"
grep -q "top-3 hit" "$DIR/score.out"

# Parallel corpus evaluation honors FITS_JOBS and reports totals.
FITS_JOBS=2 "$FITS" corpus > "$DIR/corpus.out"
grep -q "2 worker threads" "$DIR/corpus.out"
grep -q "Overall" "$DIR/corpus.out"
grep -q "wall clock" "$DIR/corpus.out"
grep -q "failed samples:" "$DIR/corpus.out"
grep -q "^cache: .* tier=mem$" "$DIR/corpus.out"

# --no-cache turns every tier off; a persistent tier via FITS_CACHE_DIR
# makes the second invocation warm. Result tables are identical in all
# three configurations.
FITS_JOBS=2 "$FITS" corpus --no-cache > "$DIR/corpus_nocache.out"
grep -q "tier=off" "$DIR/corpus_nocache.out"
FITS_JOBS=2 FITS_CACHE_DIR="$DIR/cache" "$FITS" corpus \
    > "$DIR/corpus_cold.out"
grep -q "tier=mem+disk" "$DIR/corpus_cold.out"
ls "$DIR/cache"/*.fcb > /dev/null
FITS_JOBS=2 FITS_CACHE_DIR="$DIR/cache" "$FITS" corpus \
    > "$DIR/corpus_warm.out"
grep -v "wall clock\|^cache:" "$DIR/corpus.out" > "$DIR/corpus.ref"
for out in corpus_nocache corpus_cold corpus_warm; do
    grep -v "wall clock\|^cache:" "$DIR/$out.out" > "$DIR/$out.cmp"
    cmp "$DIR/corpus.ref" "$DIR/$out.cmp" || {
        echo "corpus output differs under cache config $out" >&2
        exit 1
    }
done

# --dir evaluates on-disk images; --metrics-out writes a JSON snapshot
# with the instrumented pipeline stages and taint counters.
mkdir "$DIR/corpus"
cp "$IMG" "$DIR/corpus/"
"$FITS" corpus --dir "$DIR/corpus" --taint --jobs 2 \
    --metrics-out "$DIR/metrics.json" > "$DIR/corpus_dir.out"
test -s "$DIR/metrics.json"
for key in pipeline/unpack pipeline/select pipeline/lift \
           pipeline/ucse pipeline/bfv pipeline/infer \
           taint/karonte taint/sta \
           taint.karonte.phase_a_steps taint.sta.fixpoint_steps \
           corpus.samples threadpool.tasks; do
    grep -q "\"$key\"" "$DIR/metrics.json" || {
        echo "metrics.json is missing $key" >&2
        exit 1
    }
done

# A corpus where every sample fails must exit non-zero and say so.
mkdir "$DIR/badcorpus"
echo "not a firmware image" > "$DIR/badcorpus/garbage.fwimg"
if "$FITS" corpus --dir "$DIR/badcorpus" > "$DIR/allfail.out" \
        2> "$DIR/allfail.err"; then
    echo "expected failure when every sample fails" >&2
    exit 1
fi
grep -q "failed samples: 1/1" "$DIR/allfail.out"
grep -q "garbage.fwimg" "$DIR/allfail.err"

# Error paths exit non-zero with a per-path diagnostic.
if "$FITS" info /nonexistent.fwimg 2> "$DIR/missing.err"; then
    echo "expected failure on a missing file" >&2
    exit 1
fi
grep -q "no such file" "$DIR/missing.err"
if "$FITS" info "$DIR" 2> "$DIR/isdir.err"; then
    echo "expected failure on a directory argument" >&2
    exit 1
fi
grep -q "is a directory" "$DIR/isdir.err"
if "$FITS" corpus --dir /no/such/dir 2> "$DIR/baddir.err"; then
    echo "expected failure on a missing corpus dir" >&2
    exit 1
fi
grep -q "no such directory" "$DIR/baddir.err"
if "$FITS" bogus-command x 2> /dev/null; then
    echo "expected usage failure" >&2
    exit 1
fi

# Corrupted on-disk images fail with a typed unpack error — never a
# crash: a truncated copy and a bit-flipped copy of a valid image.
head -c 100 "$IMG" > "$DIR/trunc.fwimg"
if "$FITS" info "$DIR/trunc.fwimg" 2> "$DIR/trunc.err"; then
    echo "expected failure on a truncated image" >&2
    exit 1
fi
grep -q "unpack failed" "$DIR/trunc.err"
cp "$IMG" "$DIR/flipped.fwimg"
printf '\377' | dd of="$DIR/flipped.fwimg" bs=1 seek=200 \
    conv=notrunc 2> /dev/null
if "$FITS" info "$DIR/flipped.fwimg" 2> "$DIR/flipped.err"; then
    echo "expected failure on a bit-flipped image" >&2
    exit 1
fi
grep -q "unpack failed" "$DIR/flipped.err"
mkdir "$DIR/corrupt"
cp "$DIR/trunc.fwimg" "$DIR/flipped.fwimg" "$DIR/corrupt/"
if "$FITS" corpus --dir "$DIR/corrupt" > "$DIR/corrupt.out" \
        2> /dev/null; then
    echo "expected failure on an all-corrupt corpus" >&2
    exit 1
fi
grep -q "failed samples: 2/2" "$DIR/corrupt.out"

# The fault-site catalog is printed by `fits faults`.
"$FITS" faults > "$DIR/faults.out"
grep -q "unpack.magic" "$DIR/faults.out"
grep -q "taint.karonte" "$DIR/faults.out"
grep -q "FITS_FAULTS" "$DIR/faults.out"

# An injected unpack fault surfaces as a typed, named error.
if FITS_FAULTS=unpack.magic "$FITS" info "$IMG" \
        2> "$DIR/fault.err"; then
    echo "expected failure under FITS_FAULTS=unpack.magic" >&2
    exit 1
fi
grep -q "injected fault at unpack.magic" "$DIR/fault.err"

# A malformed spec is reported and ignored; the run still succeeds.
FITS_FAULTS=bogus.site "$FITS" info "$IMG" > /dev/null \
    2> "$DIR/badspec.err"
grep -q "ignoring FITS_FAULTS" "$DIR/badspec.err"

# A one-shot fault is absorbed by the corpus runner's retry.
FITS_FAULTS="unpack.magic#1:1" "$FITS" corpus --dir "$DIR/corpus" \
    --jobs 1 > "$DIR/retry.out"
grep -q "degraded samples: 0/1 (1 retried)" "$DIR/retry.out"

# An immediately-expiring stage budget degrades instead of failing.
FITS_STAGE_TIMEOUT_MS=0.001 "$FITS" corpus --dir "$DIR/corpus" \
    --jobs 1 > "$DIR/degraded.out" 2> "$DIR/degraded.err"
grep -q "degraded samples: 1/1" "$DIR/degraded.out"
grep -q "sample degraded" "$DIR/degraded.err"

# ---------------------------------------------------------------------
# Resident service: `fits serve` + `fits client` render the same
# tables as the one-shot CLI, share the analysis cache across
# requests, and drain gracefully on SIGTERM.
SOCK="$DIR/serve.sock"
"$FITS" serve --socket "$SOCK" --jobs 2 > "$DIR/serve.out" 2>&1 &
SERVE_PID=$!
i=0
while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do
    sleep 0.1
    i=$((i + 1))
done
test -S "$SOCK"

"$FITS" client --socket "$SOCK" ping > "$DIR/ping.out"
grep -q '"status":"ok"' "$DIR/ping.out"

# A served corpus sweep is byte-identical to the one-shot tool (wall
# clock and cache lines are nondeterministic and filtered, as above).
"$FITS" corpus --dir "$DIR/corpus" --jobs 2 \
    > "$DIR/oneshot.out" 2> "$DIR/oneshot.err"
"$FITS" client --socket "$SOCK" corpus --dir "$DIR/corpus" --jobs 2 \
    > "$DIR/served.out" 2> "$DIR/served.err"
grep -v "wall clock\|^cache:" "$DIR/oneshot.out" > "$DIR/oneshot.cmp"
grep -v "wall clock\|^cache:" "$DIR/served.out" > "$DIR/served.cmp"
cmp "$DIR/oneshot.cmp" "$DIR/served.cmp" || {
    echo "served corpus output differs from one-shot" >&2
    exit 1
}
cmp "$DIR/oneshot.err" "$DIR/served.err" || {
    echo "served corpus stderr differs from one-shot" >&2
    exit 1
}

# A second served sweep reuses the first request's analyses: the
# server's cumulative cache hit count grows across requests.
"$FITS" client --socket "$SOCK" corpus --dir "$DIR/corpus" --jobs 2 \
    > "$DIR/served2.out"
HITS1=$(sed -n 's/^cache: \([0-9]*\) hits.*/\1/p' "$DIR/served.out")
HITS2=$(sed -n 's/^cache: \([0-9]*\) hits.*/\1/p' "$DIR/served2.out")
test "$HITS2" -gt "$HITS1" || {
    echo "expected served cache hits to grow ($HITS1 -> $HITS2)" >&2
    exit 1
}

# Served rank matches the one-shot ranking (the header line carries a
# wall-clock figure; the ranking lines are deterministic).
"$FITS" client --socket "$SOCK" rank "$IMG" --top 3 \
    > "$DIR/served_rank.out"
tail -n +2 "$DIR/rank.out" > "$DIR/rank.cmp"
tail -n +2 "$DIR/served_rank.out" > "$DIR/served_rank.cmp"
cmp "$DIR/rank.cmp" "$DIR/served_rank.cmp" || {
    echo "served rank output differs from one-shot" >&2
    exit 1
}

# The metrics request reports server-side counters and cache state.
"$FITS" client --socket "$SOCK" metrics > "$DIR/served_metrics.out"
grep -q '"requests":' "$DIR/served_metrics.out"
grep -q '"cache":' "$DIR/served_metrics.out"

# Server-side errors are relayed verbatim with a non-zero exit.
if "$FITS" client --socket "$SOCK" rank /nonexistent.fwimg \
        2> "$DIR/served_err.err"; then
    echo "expected served rank of a missing file to fail" >&2
    exit 1
fi
grep -q "no such file" "$DIR/served_err.err"

# SIGTERM drains gracefully: the server finishes, reports its tally,
# and removes the socket file.
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
grep -q "drained" "$DIR/serve.out"
test ! -e "$SOCK"

# A client with no server reports a clean connection error.
if "$FITS" client --socket "$SOCK" ping 2> "$DIR/noserver.err"; then
    echo "expected client to fail without a server" >&2
    exit 1
fi
grep -q "client:" "$DIR/noserver.err"

echo "cli ok"
