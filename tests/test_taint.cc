/** @file Unit tests for the taint layer: label tables, the STA
 * dataflow engine, and the Karonte-style path engine, on a handcrafted
 * program with one of each flow/sanitization pattern. */

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/program_analysis.hh"
#include "ir/builder.hh"
#include "taint/karonte.hh"
#include "taint/labels.hh"
#include "taint/sta.hh"

namespace fits::taint {
namespace {

using ir::BinOp;
using ir::FunctionBuilder;
using ir::Operand;

Operand
t(ir::TmpId id)
{
    return Operand::ofTmp(id);
}

Operand
imm(std::uint64_t v)
{
    return Operand::ofImm(v);
}

constexpr ir::Addr kBuf = bin::kBssBase;          // recv target
constexpr ir::Addr kCfg = bin::kBssBase + 0x100;  // config, clean
constexpr ir::Addr kOut = bin::kBssBase + 0x200;  // sink scratch

/**
 * The handcrafted binary:
 *   recvLoop:   recv(0, kBuf, 64)
 *   directBug:  v = *(kBuf+4); strcpy(kOut, v)            [bug]
 *   deadGuard:  v = *(kBuf+8); if (0) strcpy(kOut, v)     [not a bug]
 *   checked:    v = *(kBuf+12); if (strlen(v) < 64)
 *                   strcpy(kOut, v)                       [not a bug]
 *   getter(key, src, len): return *(src)   [the ITS]
 *   userHandler: v = getter("username", kBuf, 64); system(v)  [bug]
 *   sysHandler:  v = getter("lan_mac", kCfg, 64);
 *                strcpy(kOut, v)            [system data, filtered]
 */
struct World
{
    bin::BinaryImage main;
    std::vector<bin::BinaryImage> libs; // none: imports stay external
    ir::Addr getterEntry = 0;
    ir::Addr directSink = 0;
    ir::Addr deadSink = 0;
    ir::Addr checkedSink = 0;
    ir::Addr userSink = 0;
    ir::Addr sysSink = 0;

    World()
    {
        main.name = "httpd";
        const auto recvPlt = main.addImport("recv", "libc.so");
        const auto strcpyPlt = main.addImport("strcpy", "libc.so");
        const auto systemPlt = main.addImport("system", "libc.so");
        const auto strlenPlt = main.addImport("strlen", "libc.so");

        bin::Section rodata;
        rodata.name = ".rodata";
        rodata.addr = bin::kRodataBase;
        rodata.flags = bin::kSecRead;
        const char text[] = "username\0lan_mac\0";
        rodata.bytes.assign(text, text + sizeof(text) - 1);
        main.sections.push_back(rodata);
        const ir::Addr userKey = bin::kRodataBase;
        const ir::Addr sysKey = bin::kRodataBase + 9;

        bin::Section bss;
        bss.name = ".bss";
        bss.addr = bin::kBssBase;
        bss.flags = bin::kSecRead | bin::kSecWrite;
        bss.bytes.assign(0x400, 0);
        main.sections.push_back(bss);

        ir::Addr cursor = bin::kTextBase;
        auto place = [&](FunctionBuilder &b) {
            ir::Function fn = b.build(cursor);
            const ir::Addr entry = fn.entry;
            cursor += fn.byteSize() + ir::kStmtSize;
            main.program.addFunction(std::move(fn));
            return entry;
        };

        { // recvLoop
            FunctionBuilder b;
            b.setArg(0, imm(0));
            b.setArg(1, imm(kBuf));
            b.setArg(2, imm(64));
            b.call(recvPlt);
            b.ret();
            place(b);
        }
        { // directBug
            FunctionBuilder b;
            auto v = b.load(imm(kBuf + 4));
            b.setArg(0, imm(kOut));
            b.setArg(1, t(v));
            directSink = 0; // patched below via the builder position
            const auto blk = b.currentBlock();
            const auto idx = b.nextStmtIndex();
            b.call(strcpyPlt);
            b.ret();
            ir::Function fn = b.build(cursor);
            directSink = fn.blocks[blk].stmtAddr(idx);
            cursor += fn.byteSize() + ir::kStmtSize;
            main.program.addFunction(std::move(fn));
        }
        { // deadGuard
            FunctionBuilder b;
            auto deadBlk = b.newBlock();
            auto out = b.newBlock();
            auto v = b.load(imm(kBuf + 8));
            b.put(4, t(v));
            auto flag = b.cnst(0);
            b.branch(t(flag), deadBlk);
            b.jump(out);
            b.switchTo(deadBlk);
            b.setArg(0, imm(kOut));
            b.setArg(1, t(b.get(4)));
            const auto blk = b.currentBlock();
            const auto idx = b.nextStmtIndex();
            b.call(strcpyPlt);
            b.jump(out);
            b.switchTo(out);
            b.ret();
            ir::Function fn = b.build(cursor);
            deadSink = fn.blocks[blk].stmtAddr(idx);
            cursor += fn.byteSize() + ir::kStmtSize;
            main.program.addFunction(std::move(fn));
        }
        { // checked
            FunctionBuilder b;
            auto copyBlk = b.newBlock();
            auto out = b.newBlock();
            auto v = b.load(imm(kBuf + 12));
            b.put(4, t(v));
            b.setArg(0, t(b.get(4)));
            b.call(strlenPlt);
            auto len = b.retVal();
            auto ok = b.binop(BinOp::CmpLt, t(len), imm(64));
            b.branch(t(ok), copyBlk);
            b.jump(out);
            b.switchTo(copyBlk);
            b.setArg(0, imm(kOut));
            b.setArg(1, t(b.get(4)));
            const auto blk = b.currentBlock();
            const auto idx = b.nextStmtIndex();
            b.call(strcpyPlt);
            b.jump(out);
            b.switchTo(out);
            b.ret();
            ir::Function fn = b.build(cursor);
            checkedSink = fn.blocks[blk].stmtAddr(idx);
            cursor += fn.byteSize() + ir::kStmtSize;
            main.program.addFunction(std::move(fn));
        }
        { // getter(key, src, len): return *src
            FunctionBuilder b;
            auto src = b.get(ir::kRegR1);
            auto v = b.load(t(src));
            b.put(ir::kRetReg, t(v));
            b.ret();
            getterEntry = place(b);
        }
        { // userHandler
            FunctionBuilder b;
            b.setArg(0, imm(userKey));
            b.setArg(1, imm(kBuf));
            b.setArg(2, imm(64));
            b.call(getterEntry);
            auto v = b.retVal();
            b.setArg(0, t(v));
            const auto blk = b.currentBlock();
            const auto idx = b.nextStmtIndex();
            b.call(systemPlt);
            b.ret();
            ir::Function fn = b.build(cursor);
            userSink = fn.blocks[blk].stmtAddr(idx);
            cursor += fn.byteSize() + ir::kStmtSize;
            main.program.addFunction(std::move(fn));
        }
        { // sysHandler
            FunctionBuilder b;
            b.setArg(0, imm(sysKey));
            b.setArg(1, imm(kCfg));
            b.setArg(2, imm(64));
            b.call(getterEntry);
            auto v = b.retVal();
            b.setArg(0, imm(kOut));
            b.setArg(1, t(v));
            const auto blk = b.currentBlock();
            const auto idx = b.nextStmtIndex();
            b.call(strcpyPlt);
            b.ret();
            ir::Function fn = b.build(cursor);
            sysSink = fn.blocks[blk].stmtAddr(idx);
            cursor += fn.byteSize() + ir::kStmtSize;
            main.program.addFunction(std::move(fn));
        }
        main.strip();
    }
};

struct TaintFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        linked = std::make_unique<analysis::LinkedProgram>(world.main,
                                                           world.libs);
        pa = std::make_unique<analysis::ProgramAnalysis>(
            analysis::ProgramAnalysis::analyze(*linked));
        cts = classicalTaintSources();
        ctsPlusIts = cts;
        ctsPlusIts.push_back(
            TaintSource::its(world.getterEntry, "getter"));
    }

    static bool
    alertAt(const std::vector<Alert> &alerts, ir::Addr site)
    {
        return std::any_of(alerts.begin(), alerts.end(),
                           [site](const Alert &a) {
                               return a.sinkSite == site;
                           });
    }

    World world;
    std::unique_ptr<analysis::LinkedProgram> linked;
    std::unique_ptr<analysis::ProgramAnalysis> pa;
    std::vector<TaintSource> cts, ctsPlusIts;
};

// ---- common ----------------------------------------------------------

TEST(TaintCommon, SinkSpecs)
{
    ASSERT_NE(sinkByName("strcpy"), nullptr);
    EXPECT_EQ(sinkByName("strcpy")->vclass,
              VulnClass::BufferOverflow);
    ASSERT_NE(sinkByName("system"), nullptr);
    EXPECT_EQ(sinkByName("system")->vclass,
              VulnClass::CommandInjection);
    EXPECT_EQ(sinkByName("strlen"), nullptr);
}

TEST(TaintCommon, SystemDataKeys)
{
    EXPECT_TRUE(isSystemDataKey("lan_mac"));
    EXPECT_TRUE(isSystemDataKey("subnet_mask"));
    EXPECT_FALSE(isSystemDataKey("username"));
}

TEST(TaintCommon, LabelTableAssignsBits)
{
    std::vector<TaintSource> sources = classicalTaintSources();
    sources.push_back(TaintSource::its(0x1000, "its0"));
    const LabelTable table = buildLabelTable(sources);
    // Every CTS: one user bit; the ITS: user + system bits.
    EXPECT_EQ(table.labels.size(), sources.size() + 1);
    const auto &its = table.bySource.back();
    EXPECT_NE(its.userBit, 0u);
    EXPECT_NE(its.systemBit, 0u);
    EXPECT_NE(its.userBit, its.systemBit);
    EXPECT_TRUE(table.hasUserData(its.userBit));
    EXPECT_FALSE(table.hasUserData(its.systemBit));
}

// ---- STA --------------------------------------------------------------

TEST_F(TaintFixture, StaFindsDirectGlobalFlow)
{
    const StaEngine sta;
    const auto report = sta.run(*pa, cts);
    EXPECT_TRUE(alertAt(report.alerts, world.directSink));
}

TEST_F(TaintFixture, StaReportsDeadGuardAndCheckedSites)
{
    // STA is flow-insensitive: the dead debug path and the
    // bounds-checked copy both alert (its false-positive classes).
    const StaEngine sta;
    const auto report = sta.run(*pa, cts);
    EXPECT_TRUE(alertAt(report.alerts, world.deadSink));
    EXPECT_TRUE(alertAt(report.alerts, world.checkedSink));
}

TEST_F(TaintFixture, StaMissesItsFlowWithCtsOnly)
{
    // The getter reads through its pointer parameter — invisible to
    // the address-based dataflow (the paper's STA false negatives).
    const StaEngine sta;
    const auto report = sta.run(*pa, cts);
    EXPECT_FALSE(alertAt(report.alerts, world.userSink));
}

TEST_F(TaintFixture, StaItsFindsItsFlow)
{
    const StaEngine sta;
    const auto report = sta.run(*pa, ctsPlusIts);
    EXPECT_TRUE(alertAt(report.alerts, world.userSink));
    // Superset of the CTS-only run.
    const auto base = sta.run(*pa, cts);
    for (const auto &alert : base.alerts)
        EXPECT_TRUE(alertAt(report.alerts, alert.sinkSite));
}

TEST_F(TaintFixture, StaItsSystemDataIsFiltered)
{
    const StaEngine sta;
    const auto report = sta.run(*pa, ctsPlusIts);
    ASSERT_TRUE(alertAt(report.alerts, world.sysSink));
    const auto filtered = report.filteredAlerts();
    EXPECT_FALSE(alertAt(filtered, world.sysSink));
    EXPECT_TRUE(alertAt(filtered, world.userSink)); // user data kept
}

TEST_F(TaintFixture, StaAlertCarriesVulnClass)
{
    const StaEngine sta;
    const auto report = sta.run(*pa, ctsPlusIts);
    for (const auto &alert : report.alerts) {
        if (alert.sinkSite == world.userSink) {
            EXPECT_EQ(alert.vclass, VulnClass::CommandInjection);
        }
        if (alert.sinkSite == world.directSink) {
            EXPECT_EQ(alert.vclass, VulnClass::BufferOverflow);
        }
    }
}

// ---- Karonte ------------------------------------------------------------

TEST_F(TaintFixture, KaronteFindsDirectGlobalFlow)
{
    const KaronteEngine karonte;
    const auto report = karonte.run(*pa, cts);
    EXPECT_TRUE(alertAt(report.alerts, world.directSink));
}

TEST_F(TaintFixture, KarontePrunesDeadGuard)
{
    const KaronteEngine karonte;
    const auto report = karonte.run(*pa, cts);
    EXPECT_FALSE(alertAt(report.alerts, world.deadSink));
}

TEST_F(TaintFixture, KaronteSuppressesBoundsCheckedCopy)
{
    const KaronteEngine karonte;
    const auto report = karonte.run(*pa, cts);
    EXPECT_FALSE(alertAt(report.alerts, world.checkedSink));
}

TEST_F(TaintFixture, KaronteItsSupersetAndItsFlow)
{
    const KaronteEngine karonte;
    const auto base = karonte.run(*pa, cts);
    const auto augmented = karonte.run(*pa, ctsPlusIts);
    EXPECT_TRUE(alertAt(augmented.alerts, world.userSink));
    for (const auto &alert : base.alerts)
        EXPECT_TRUE(alertAt(augmented.alerts, alert.sinkSite));
}

TEST_F(TaintFixture, KaronteItsFiltersSystemData)
{
    const KaronteEngine karonte;
    const auto report = karonte.run(*pa, ctsPlusIts);
    const auto filtered = report.filteredAlerts();
    EXPECT_FALSE(alertAt(filtered, world.sysSink));
}

TEST_F(TaintFixture, KaronteDeterministic)
{
    const KaronteEngine karonte;
    const auto a = karonte.run(*pa, ctsPlusIts);
    const auto b = karonte.run(*pa, ctsPlusIts);
    ASSERT_EQ(a.alerts.size(), b.alerts.size());
    for (std::size_t i = 0; i < a.alerts.size(); ++i) {
        EXPECT_EQ(a.alerts[i].sinkSite, b.alerts[i].sinkSite);
        EXPECT_EQ(a.alerts[i].labelMask, b.alerts[i].labelMask);
    }
}

TEST_F(TaintFixture, StaDeterministic)
{
    const StaEngine sta;
    const auto a = sta.run(*pa, ctsPlusIts);
    const auto b = sta.run(*pa, ctsPlusIts);
    ASSERT_EQ(a.alerts.size(), b.alerts.size());
    for (std::size_t i = 0; i < a.alerts.size(); ++i)
        EXPECT_EQ(a.alerts[i].sinkSite, b.alerts[i].sinkSite);
}

TEST(TaintCommon, LabelTableClampsBeyond64Bits)
{
    // More sources than bits: surplus sources share the last bit (a
    // coarsening, never an out-of-range shift).
    std::vector<TaintSource> sources;
    for (int i = 0; i < 80; ++i)
        sources.push_back(TaintSource::its(
            0x1000 + static_cast<ir::Addr>(i) * 0x10,
            "its" + std::to_string(i)));
    const LabelTable table = buildLabelTable(sources);
    ASSERT_EQ(table.bySource.size(), sources.size());
    for (const auto &bits : table.bySource) {
        EXPECT_NE(bits.userBit, 0u);
        EXPECT_NE(bits.systemBit, 0u);
    }
    // The final sources all share the top bit.
    EXPECT_EQ(table.bySource.back().userBit, 1ULL << 63);
}

TEST_F(TaintFixture, RunTaintFailsGracefullyOnBadInput)
{
    // Engines with an empty source list: no labels, no alerts.
    const StaEngine sta;
    const auto report = sta.run(*pa, {});
    EXPECT_TRUE(report.alerts.empty());
    const KaronteEngine karonte;
    const auto kreport = karonte.run(*pa, {});
    EXPECT_TRUE(kreport.alerts.empty());
}

} // namespace
} // namespace fits::taint
