/** @file Tests for the fits::chaos fault-injection subsystem, the
 * support::Deadline cancel token, and pipeline robustness under
 * injected faults and corrupted inputs: spec parsing, deterministic
 * replay, a sweep proving every catalog site fires and is handled as
 * a typed error or degraded result, the corpus-runner retry path, and
 * truncation/bit-flip corruption of whole firmware images. */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "chaos/chaos.hh"
#include "core/pipeline.hh"
#include "eval/corpus_runner.hh"
#include "eval/harness.hh"
#include "firmware/fwimg.hh"
#include "ir/parse.hh"
#include "support/deadline.hh"
#include "support/rng.hh"
#include "synth/firmware_gen.hh"
#include "taint/karonte.hh"
#include "taint/sta.hh"

namespace fits {
namespace {

/** Every chaos test disarms injection on the way out so no global
 * state leaks into tests that run later in the same process. */
class ChaosTest : public ::testing::Test
{
  protected:
    void SetUp() override { chaos::reset(); }
    void TearDown() override { chaos::reset(); }
};

/** One small-but-complete firmware sample shared within a test. */
const synth::GeneratedFirmware &
sampleFw()
{
    static const synth::GeneratedFirmware fw = [] {
        synth::SampleSpec spec;
        spec.profile = synth::tendaProfile();
        spec.profile.minCustomFns = 40;
        spec.profile.maxCustomFns = 60;
        spec.product = "AC6";
        spec.version = "V1";
        spec.name = "chaos-sample";
        spec.seed = 0xc0a5;
        return synth::generateFirmware(spec);
    }();
    return fw;
}

// ---- spec parsing ------------------------------------------------------

TEST_F(ChaosTest, DisabledByDefault)
{
    EXPECT_FALSE(chaos::enabled());
    EXPECT_FALSE(chaos::shouldInject("unpack.magic"));
    // The disabled fast path must not even count hits.
    EXPECT_EQ(chaos::hitCount("unpack.magic"), 0u);
    EXPECT_EQ(chaos::totalFires(), 0u);
}

TEST_F(ChaosTest, ConfigureAcceptsGrammarForms)
{
    std::string error;
    EXPECT_TRUE(chaos::configure("unpack.magic", &error)) << error;
    EXPECT_TRUE(chaos::enabled());
    EXPECT_TRUE(chaos::configure("unpack.*", &error)) << error;
    EXPECT_TRUE(chaos::configure("*", &error)) << error;
    EXPECT_TRUE(chaos::configure("unpack.magic@50", &error)) << error;
    EXPECT_TRUE(chaos::configure("unpack.magic#3", &error)) << error;
    EXPECT_TRUE(chaos::configure("unpack.magic@50#3:42", &error))
        << error;
    EXPECT_TRUE(chaos::configure("unpack.magic,fbin.load,taint.*:7",
                                 &error))
        << error;
    // Empty spec disarms and is not an error.
    EXPECT_TRUE(chaos::configure("", &error)) << error;
    EXPECT_FALSE(chaos::enabled());
}

TEST_F(ChaosTest, ConfigureRejectsMalformedSpecs)
{
    const char *bad[] = {
        "bogus.site",       // not in the catalog
        "unpack.magic@",    // missing percentage
        "unpack.magic@abc", // non-numeric percentage
        "unpack.magic@101", // percentage out of range
        "unpack.magic#",    // missing fire limit
        "unpack.magic#0",   // fire limit below 1
        "unpack.magic:",    // empty seed
        "unpack.magic:xyz", // non-numeric seed
        "un*ack.magic",     // '*' not a trailing glob
        ",",                // empty rules
        "@50",              // rule without a site
    };
    for (const char *spec : bad) {
        std::string error;
        EXPECT_FALSE(chaos::configure(spec, &error))
            << "spec '" << spec << "' should be rejected";
        EXPECT_FALSE(error.empty()) << spec;
        EXPECT_FALSE(chaos::enabled())
            << "a rejected spec must leave injection disarmed";
    }
}

TEST_F(ChaosTest, CatalogIsConsistent)
{
    const auto &sites = chaos::knownSites();
    ASSERT_GE(sites.size(), 14u);
    std::vector<std::string> names;
    for (const auto &site : sites) {
        names.push_back(site.name);
        EXPECT_EQ(chaos::siteByName(site.name), &site);
        EXPECT_NE(site.stage, support::Stage::None) << site.name;
        EXPECT_NE(std::string(site.description), "") << site.name;

        const auto status = chaos::injectedStatus(site.name);
        EXPECT_EQ(status.code(), support::ErrorCode::FaultInjected);
        EXPECT_EQ(status.stage(), site.stage);
        EXPECT_TRUE(status.isTransient()) << site.name;
    }
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::unique(names.begin(), names.end()), names.end())
        << "site names must be unique";
    EXPECT_EQ(chaos::siteByName("no.such.site"), nullptr);
}

// ---- deterministic decisions -------------------------------------------

TEST_F(ChaosTest, PercentDecisionsReplayPerSeed)
{
    const auto pattern = [](const char *spec) {
        std::string error;
        EXPECT_TRUE(chaos::configure(spec, &error)) << error;
        std::vector<bool> fired;
        for (int i = 0; i < 256; ++i)
            fired.push_back(chaos::shouldInject("unpack.magic"));
        return fired;
    };

    const auto a = pattern("unpack.magic@40:123");
    const auto b = pattern("unpack.magic@40:123");
    EXPECT_EQ(a, b) << "same spec + seed must replay exactly";

    const auto c = pattern("unpack.magic@40:124");
    EXPECT_NE(a, c) << "a different seed reshuffles the hit indices";

    // ~40% of 256 hits fire; the deterministic hash keeps this within
    // very loose bounds.
    const auto fires = std::count(a.begin(), a.end(), true);
    EXPECT_GT(fires, 256 / 10);
    EXPECT_LT(fires, 256 * 9 / 10);
}

TEST_F(ChaosTest, FireLimitStopsInjection)
{
    ASSERT_TRUE(chaos::configure("unpack.magic#2"));
    int fires = 0;
    for (int i = 0; i < 10; ++i)
        fires += chaos::shouldInject("unpack.magic") ? 1 : 0;
    EXPECT_EQ(fires, 2);
    EXPECT_EQ(chaos::fireCount("unpack.magic"), 2u);
    EXPECT_EQ(chaos::hitCount("unpack.magic"), 10u);
    EXPECT_EQ(chaos::totalFires(), 2u);
}

TEST_F(ChaosTest, GlobPatternsMatchByPrefix)
{
    ASSERT_TRUE(chaos::configure("unpack.*"));
    EXPECT_TRUE(chaos::shouldInject("unpack.magic"));
    EXPECT_TRUE(chaos::shouldInject("unpack.header"));
    EXPECT_FALSE(chaos::shouldInject("fbin.load"));

    ASSERT_TRUE(chaos::configure("*"));
    for (const auto &site : chaos::knownSites())
        EXPECT_TRUE(chaos::shouldInject(site.name)) << site.name;
}

TEST_F(ChaosTest, FirstMatchingRuleWins)
{
    // The exact-name rule at 0% shadows the glob for unpack.magic
    // only; sibling sites still fall through to the glob.
    ASSERT_TRUE(chaos::configure("unpack.magic@0,unpack.*"));
    EXPECT_FALSE(chaos::shouldInject("unpack.magic"));
    EXPECT_TRUE(chaos::shouldInject("unpack.header"));
}

// ---- every site fires and is handled -----------------------------------

TEST_F(ChaosTest, InjectedUnpackFaultIsTyped)
{
    ASSERT_TRUE(chaos::configure("unpack.magic"));
    const auto unpacked = fw::unpackFirmware(sampleFw().bytes);
    ASSERT_FALSE(unpacked);
    const auto &status = unpacked.status();
    EXPECT_EQ(status.code(), support::ErrorCode::FaultInjected);
    EXPECT_EQ(status.stage(), support::Stage::Unpack);
    EXPECT_NE(status.message().find("unpack.magic"),
              std::string::npos);
}

TEST_F(ChaosTest, EveryPipelineSiteFiresAndIsHandled)
{
    // Arm one site at a time (× several seeds) at 100% and push a
    // valid image through the full pipeline: the run must not crash,
    // the site must actually fire, and the outcome must be either a
    // typed failure or a degraded-but-ok partial result.
    const core::FitsPipeline pipeline;
    for (const auto &site : chaos::knownSites()) {
        const std::string name = site.name;
        if (name.rfind("taint.", 0) == 0 || name == "ir.parse")
            continue; // those paths are driven separately below
        if (name.rfind("cache.", 0) == 0)
            continue; // driven by test_cache.cc (needs a disk tier)
        if (name.rfind("serve.", 0) == 0)
            continue; // driven by test_serve.cc (needs a socket)
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            ASSERT_TRUE(chaos::configure(
                name + ":" + std::to_string(seed)));
            const auto artifact = pipeline.analyze(sampleFw().bytes);
            EXPECT_GE(chaos::fireCount(name), 1u)
                << name << " seed " << seed << " never fired";
            if (artifact.ok) {
                EXPECT_TRUE(artifact.degraded)
                    << name << " seed " << seed
                    << ": an ok run under injection must be degraded";
                EXPECT_FALSE(artifact.issues.empty()) << name;
            } else {
                EXPECT_FALSE(artifact.status.isOk())
                    << name << " seed " << seed
                    << ": failures must carry a typed status";
                EXPECT_FALSE(artifact.error.empty()) << name;
            }
        }
    }
}

TEST_F(ChaosTest, IrParseSiteFailsTextualParse)
{
    // The pipeline lifts binaries straight from FBIN statements; the
    // ir.parse site guards the *textual* FIR parser, so it is driven
    // here directly.
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        ASSERT_TRUE(chaos::configure(
            "ir.parse:" + std::to_string(seed)));
        const auto parsed =
            ir::parseFunction("func f 0x1000 tmps 0 {\n}\n");
        ASSERT_FALSE(parsed) << "seed " << seed;
        EXPECT_EQ(parsed.status().code(),
                  support::ErrorCode::FaultInjected);
        EXPECT_EQ(parsed.status().stage(), support::Stage::IrParse);
        EXPECT_GE(chaos::fireCount("ir.parse"), 1u);
    }
}

TEST_F(ChaosTest, TaintSitesDegradeEngineRuns)
{
    // Build one clean analysis, then make each engine trip its
    // injected deadline: the report is cut short (flagged), never a
    // crash, and alerts stay a valid (possibly empty) partial set.
    const core::FitsPipeline pipeline;
    const auto artifact = pipeline.analyze(sampleFw().bytes);
    ASSERT_TRUE(artifact.ok) << artifact.error;
    ASSERT_TRUE(artifact.hasAnalysis());
    const auto sources = taint::classicalTaintSources();

    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        ASSERT_TRUE(chaos::configure(
            "taint.sta:" + std::to_string(seed)));
        const taint::StaEngine sta;
        const auto staReport = sta.run(*artifact.analysis, sources);
        EXPECT_TRUE(staReport.deadlineExpired) << "seed " << seed;
        EXPECT_GE(chaos::fireCount("taint.sta"), 1u);

        ASSERT_TRUE(chaos::configure(
            "taint.karonte:" + std::to_string(seed)));
        const taint::KaronteEngine karonte;
        const auto kReport = karonte.run(*artifact.analysis, sources);
        EXPECT_TRUE(kReport.deadlineExpired) << "seed " << seed;
        EXPECT_GE(chaos::fireCount("taint.karonte"), 1u);
    }
}

TEST_F(ChaosTest, MissingLibraryDegradesNotFails)
{
    // select.library makes every dependency lift fail. The pipeline
    // must keep going on the main binary: either a degraded success
    // or a typed inference failure (no anchors without libraries) —
    // never a crash, never an untyped error.
    ASSERT_TRUE(chaos::configure("select.library"));
    const core::FitsPipeline pipeline;
    const auto artifact = pipeline.analyze(sampleFw().bytes);
    if (artifact.ok) {
        EXPECT_TRUE(artifact.degraded);
        bool sawMissingLibrary = false;
        for (const auto &issue : artifact.issues) {
            if (issue.code() == support::ErrorCode::NotFound)
                sawMissingLibrary = true;
        }
        EXPECT_TRUE(sawMissingLibrary);
    } else {
        EXPECT_EQ(artifact.failureStage,
                  core::PipelineResult::FailureStage::Inference);
        EXPECT_FALSE(artifact.status.isOk());
    }
}

// ---- retry and bit-identity --------------------------------------------

TEST_F(ChaosTest, CorpusRunnerRetriesTransientFaultOnce)
{
    // A single-shot unpack fault: the first attempt fails with a
    // transient typed error, the retry sails through (the fire limit
    // is exhausted), and the outcome is flagged as retried.
    ASSERT_TRUE(chaos::configure("unpack.magic#1:1"));
    eval::CorpusRunner::Config config;
    config.jobs = 1;
    const eval::CorpusRunner runner(config);
    const std::vector<synth::GeneratedFirmware> corpus = {sampleFw()};
    const auto outcomes = runner.runInference(corpus);
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_TRUE(outcomes[0].retried);
    EXPECT_EQ(chaos::fireCount("unpack.magic"), 1u);
}

TEST_F(ChaosTest, DeterministicParseErrorsAreNotRetried)
{
    // An opaque-encoded image fails the same way every time; the
    // runner must not waste a retry on it.
    synth::SampleSpec spec = sampleFw().spec;
    spec.name = "chaos-opaque";
    spec.failure = synth::SampleSpec::FailureMode::OpaqueEncoding;
    spec.profile.encoding = fw::Encoding::Opaque;
    eval::CorpusRunner::Config config;
    config.jobs = 1;
    const eval::CorpusRunner runner(config);
    const auto outcomes =
        runner.runInference({synth::generateFirmware(spec)});
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_FALSE(outcomes[0].retried);
    EXPECT_FALSE(outcomes[0].status.isTransient())
        << outcomes[0].status.toString();
}

TEST_F(ChaosTest, DisarmedRunsAreIdentical)
{
    // With injection off, repeated runs are bit-identical and no site
    // records a hit (the disabled path is a single atomic load).
    const core::FitsPipeline pipeline;
    const auto first = pipeline.run(sampleFw().bytes);
    const auto second = pipeline.run(sampleFw().bytes);
    ASSERT_TRUE(first.ok) << first.error;
    ASSERT_TRUE(second.ok);
    EXPECT_FALSE(first.degraded);
    ASSERT_EQ(first.inference.ranking.size(),
              second.inference.ranking.size());
    for (std::size_t i = 0; i < first.inference.ranking.size(); ++i) {
        EXPECT_EQ(first.inference.ranking[i].entry,
                  second.inference.ranking[i].entry);
        EXPECT_DOUBLE_EQ(first.inference.ranking[i].score,
                         second.inference.ranking[i].score);
    }
    for (const auto &site : chaos::knownSites())
        EXPECT_EQ(chaos::hitCount(site.name), 0u) << site.name;
}

// ---- deadlines ---------------------------------------------------------

TEST(Deadline, DefaultNeverExpires)
{
    const support::Deadline d;
    EXPECT_FALSE(d.active());
    EXPECT_FALSE(d.expired());
    for (std::size_t i = 0; i < 1024; ++i)
        EXPECT_FALSE(d.expiredCoarse(i));
    EXPECT_GT(d.remainingMs(), 1e12);
}

TEST(Deadline, AfterMsExpiresAndCoarseChecksAmortize)
{
    const auto expired = support::Deadline::afterMs(-1.0);
    EXPECT_TRUE(expired.active());
    EXPECT_TRUE(expired.expired());
    EXPECT_LT(expired.remainingMs(), 0.0);
    // The coarse check only reads the clock every 256th iteration.
    EXPECT_TRUE(expired.expiredCoarse(0));
    EXPECT_FALSE(expired.expiredCoarse(1));
    EXPECT_FALSE(expired.expiredCoarse(255));
    EXPECT_TRUE(expired.expiredCoarse(256));

    const auto distant = support::Deadline::afterMs(1e9);
    EXPECT_TRUE(distant.active());
    EXPECT_FALSE(distant.expired());
    EXPECT_GT(distant.remainingMs(), 0.0);
}

TEST(Deadline, EnvStageTimeoutIsNonNegative)
{
    // Unset (the test environment) parses as "no deadline".
    EXPECT_GE(support::envStageTimeoutMs(), 0.0);
}

TEST(Deadline, ExpiredBehaviorBudgetDegradesPipeline)
{
    synth::SampleSpec spec;
    spec.profile = synth::tendaProfile();
    spec.profile.minCustomFns = 40;
    spec.profile.maxCustomFns = 60;
    spec.product = "AC6";
    spec.version = "V1";
    spec.name = "deadline-sample";
    spec.seed = 0xdead;
    const auto fw = synth::generateFirmware(spec);

    core::PipelineConfig config;
    config.budgets.behaviorMs = 1e-6; // expires immediately
    const core::FitsPipeline pipeline(config);
    const auto artifact = pipeline.analyze(fw.bytes);
    ASSERT_TRUE(artifact.ok) << artifact.error;
    EXPECT_TRUE(artifact.degraded);
    bool sawTimeout = false;
    for (const auto &issue : artifact.issues) {
        if (issue.code() == support::ErrorCode::Timeout &&
            issue.stage() == support::Stage::Ucse)
            sawTimeout = true;
    }
    EXPECT_TRUE(sawTimeout);
}

TEST(Deadline, ExpiredTaintBudgetFlagsReports)
{
    synth::SampleSpec spec;
    spec.profile = synth::tendaProfile();
    spec.profile.minCustomFns = 40;
    spec.profile.maxCustomFns = 60;
    spec.product = "AC6";
    spec.version = "V1";
    spec.name = "taint-deadline-sample";
    spec.seed = 0x7a1;
    const auto fw = synth::generateFirmware(spec);

    const core::FitsPipeline pipeline;
    const auto artifact = pipeline.analyze(fw.bytes);
    ASSERT_TRUE(artifact.ok) << artifact.error;

    const auto outcome =
        eval::taintOutcome(artifact, fw.spec, fw.truth, 1e-6);
    EXPECT_TRUE(outcome.ok);
    EXPECT_TRUE(outcome.degraded);
    EXPECT_FALSE(outcome.issues.empty());
    for (const auto &issue : outcome.issues)
        EXPECT_EQ(issue.code(), support::ErrorCode::Timeout);
}

// ---- corrupted whole images --------------------------------------------

TEST(Corruption, TruncatedImagesFailTypedNeverCrash)
{
    const auto &bytes = sampleFw().bytes;
    const core::FitsPipeline pipeline;
    // Every short prefix plus a stride over the long tail: each must
    // come back as a typed unpack-stage failure, not a crash.
    for (std::size_t cut = 0; cut < bytes.size();
         cut += (cut < 512 ? 13 : 997)) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + cut);
        const auto artifact = pipeline.analyze(prefix);
        ASSERT_FALSE(artifact.ok) << "prefix length " << cut;
        EXPECT_FALSE(artifact.status.isOk()) << cut;
        EXPECT_EQ(artifact.status.stage(), support::Stage::Unpack)
            << "prefix length " << cut << ": "
            << artifact.status.toString();
    }
}

TEST(Corruption, BitFlippedImagesFailCleanlyOrParse)
{
    const auto &bytes = sampleFw().bytes;
    const core::FitsPipeline pipeline;
    support::Rng rng(0xf11b);
    for (int round = 0; round < 100; ++round) {
        auto mutated = bytes;
        // Bias toward the structural front of the image (magic,
        // header, file table) where flips exercise parser edges.
        const std::size_t limit = round % 2 == 0
                                      ? std::min<std::size_t>(
                                            mutated.size(), 2048)
                                      : mutated.size();
        const std::size_t flips = 1 + rng.index(4);
        for (std::size_t i = 0; i < flips; ++i)
            mutated[rng.index(limit)] ^=
                static_cast<std::uint8_t>(1u << rng.index(8));
        const auto artifact = pipeline.analyze(mutated);
        if (!artifact.ok) {
            EXPECT_FALSE(artifact.status.isOk()) << "round " << round;
            EXPECT_FALSE(artifact.error.empty()) << "round " << round;
        }
    }
    SUCCEED();
}

} // namespace
} // namespace fits
