/** @file End-to-end integration tests: raw firmware bytes through the
 * full FITS pipeline and all four taint-engine configurations. */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/pipeline.hh"
#include "eval/harness.hh"
#include "synth/firmware_gen.hh"

namespace fits {
namespace {

synth::SampleSpec
spec(const synth::VendorProfile &profile, std::uint64_t seed)
{
    synth::SampleSpec s;
    s.profile = profile;
    s.profile.minCustomFns = 150;
    s.profile.maxCustomFns = 220;
    s.product = s.profile.series.front();
    s.version = "V1";
    s.name = s.product + "-V1";
    s.seed = seed;
    return s;
}

TEST(PipelineIntegration, EndToEndSuccess)
{
    const auto fw =
        synth::generateFirmware(spec(synth::netgearProfile(), 0xf00));
    const core::FitsPipeline pipeline;
    const auto result = pipeline.run(fw.bytes);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.failureStage,
              core::PipelineResult::FailureStage::None);
    EXPECT_GT(result.numFunctions, 100u);
    EXPECT_GT(result.binaryBytes, 0u);
    EXPECT_FALSE(result.inference.ranking.empty());
    EXPECT_GT(result.inference.numAnchors, 10u);
    EXPECT_GT(result.timings.totalMs(), 0.0);
}

TEST(PipelineIntegration, ItsRanksHighAcrossVendors)
{
    // Full-size binaries reach the paper's top-3 guarantee; the
    // miniature test profiles used elsewhere shift the feature maxima
    // slightly, so this test runs on the real vendor profiles.
    const synth::VendorProfile profiles[] = {
        synth::netgearProfile(), synth::dlinkProfile(),
        synth::tplinkProfile(), synth::tendaProfile(),
        synth::ciscoProfile()};
    for (std::uint64_t i = 0; i < 5; ++i) {
        synth::SampleSpec s;
        s.profile = profiles[i];
        s.product = s.profile.series.front();
        s.version = "V1";
        s.name = s.product + "-V1";
        s.seed = 0x5000 + i;
        const auto fw = synth::generateFirmware(s);
        const auto outcome = eval::runInference(fw);
        ASSERT_TRUE(outcome.ok)
            << profiles[i].vendor << ": " << outcome.error;
        EXPECT_GE(outcome.firstItsRank, 1) << profiles[i].vendor;
        EXPECT_LE(outcome.firstItsRank, 3) << profiles[i].vendor;
    }
}

TEST(PipelineIntegration, UnpackFailureReported)
{
    auto s = spec(synth::dlinkProfile(), 0x1);
    s.failure = synth::SampleSpec::FailureMode::OpaqueEncoding;
    s.profile.encoding = fw::Encoding::Opaque;
    const auto firmware = synth::generateFirmware(s);
    const core::FitsPipeline pipeline;
    const auto result = pipeline.run(firmware.bytes);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.failureStage,
              core::PipelineResult::FailureStage::Unpack);
}

TEST(PipelineIntegration, SelectFailureReported)
{
    auto s = spec(synth::tendaProfile(), 0x2);
    s.failure = synth::SampleSpec::FailureMode::NoNetworkBinary;
    const auto firmware = synth::generateFirmware(s);
    const core::FitsPipeline pipeline;
    const auto result = pipeline.run(firmware.bytes);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.failureStage,
              core::PipelineResult::FailureStage::Select);
}

TEST(PipelineIntegration, StructOffsetDesignYieldsNoIts)
{
    auto s = spec(synth::tplinkProfile(), 0x3);
    s.failure = synth::SampleSpec::FailureMode::StructOffset;
    const auto firmware = synth::generateFirmware(s);
    const auto outcome = eval::runInference(firmware);
    ASSERT_TRUE(outcome.ok) << outcome.error;
    // The pipeline runs, but nothing it ranks is a true ITS.
    EXPECT_EQ(outcome.firstItsRank, -1);
}

TEST(PipelineIntegration, DeterministicAcrossRuns)
{
    const auto fw =
        synth::generateFirmware(spec(synth::tendaProfile(), 0x77));
    const core::FitsPipeline pipeline;
    const auto a = pipeline.run(fw.bytes);
    const auto b = pipeline.run(fw.bytes);
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    ASSERT_EQ(a.inference.ranking.size(), b.inference.ranking.size());
    for (std::size_t i = 0; i < a.inference.ranking.size(); ++i) {
        EXPECT_EQ(a.inference.ranking[i].entry,
                  b.inference.ranking[i].entry);
        EXPECT_DOUBLE_EQ(a.inference.ranking[i].score,
                         b.inference.ranking[i].score);
    }
}

TEST(TaintIntegration, EngineRelationsHoldEndToEnd)
{
    const auto fw = synth::generateFirmware(
        spec(synth::netgearProfile(), 0x9001));
    const auto outcome = eval::runTaint(fw);
    ASSERT_TRUE(outcome.ok) << outcome.error;

    // The paper's structural claims, per sample:
    //  - ITS-augmented runs find supersets of the vanilla runs;
    auto contains = [](const std::vector<ir::Addr> &super,
                       const std::vector<ir::Addr> &sub) {
        return std::all_of(sub.begin(), sub.end(), [&](ir::Addr a) {
            return std::find(super.begin(), super.end(), a) !=
                   super.end();
        });
    };
    EXPECT_TRUE(
        contains(outcome.karonteItsBugs, outcome.karonteBugs));
    EXPECT_TRUE(contains(outcome.staItsBugs, outcome.staBugs));

    //  - STA-ITS dominates every configuration in bugs found;
    EXPECT_GE(outcome.staIts.bugs, outcome.sta.bugs);
    EXPECT_GE(outcome.staIts.bugs, outcome.karonteIts.bugs);

    //  - STA's false-positive rate is the worst of the four.
    EXPECT_GE(outcome.sta.falsePositiveRate(),
              outcome.karonte.falsePositiveRate());
    EXPECT_GE(outcome.sta.falsePositiveRate(),
              outcome.staIts.falsePositiveRate());
}

TEST(TaintIntegration, AlertsOnlyAtPlantedSites)
{
    const auto fw = synth::generateFirmware(
        spec(synth::tendaProfile(), 0x9002));
    const auto outcome = eval::runTaint(fw);
    ASSERT_TRUE(outcome.ok);
    // Every bug the engines report is a planted real-bug site.
    for (const auto &bugs :
         {outcome.karonteBugs, outcome.karonteItsBugs,
          outcome.staBugs, outcome.staItsBugs}) {
        for (ir::Addr site : bugs) {
            const synth::SinkSite *s = fw.truth.siteAt(site);
            ASSERT_NE(s, nullptr);
            EXPECT_TRUE(s->isBug());
        }
    }
}

TEST(TaintIntegration, RunOnTargetSkipsStageOne)
{
    const auto fw = synth::generateFirmware(
        spec(synth::tplinkProfile(), 0x9003));
    auto unpacked = fw::unpackFirmware(fw.bytes);
    ASSERT_TRUE(unpacked);
    auto target =
        fw::selectAnalysisTarget(unpacked.value().filesystem);
    ASSERT_TRUE(target);
    const core::FitsPipeline pipeline;
    const auto result = pipeline.runOnTarget(target.take());
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_FALSE(result.inference.ranking.empty());
}

} // namespace
} // namespace fits
