/** @file Tests of the parallel corpus evaluation engine: ThreadPool
 * semantics, CorpusRunner determinism vs the serial path, per-sample
 * failure isolation, the intra-sample parallel BFV stage, logger
 * thread-safety, and the DBSCAN duplicate-seed regression. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <deque>
#include <set>
#include <thread>
#include <vector>

#include "core/behavior.hh"
#include "core/pipeline.hh"
#include "eval/corpus_runner.hh"
#include "mlkit/dbscan.hh"
#include "support/logging.hh"
#include "support/rng.hh"
#include "support/thread_pool.hh"
#include "synth/firmware_gen.hh"

namespace fits {
namespace {

// ---- ThreadPool ----------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedTask)
{
    support::ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&counter] { ++counter; });
    pool.wait();
    EXPECT_EQ(counter.load(), 100);
    EXPECT_EQ(pool.uncaughtExceptions(), 0u);
}

TEST(ThreadPool, ThrowingTaskDoesNotPoisonThePool)
{
    support::ThreadPool pool(3);
    std::atomic<int> completed{0};
    for (int i = 0; i < 20; ++i) {
        pool.submit([&completed, i] {
            if (i == 7)
                throw std::runtime_error("task 7 exploded");
            ++completed;
        });
    }
    pool.wait();
    EXPECT_EQ(completed.load(), 19);
    EXPECT_EQ(pool.uncaughtExceptions(), 1u);
    EXPECT_EQ(pool.firstExceptionMessage(), "task 7 exploded");

    // The pool still accepts and runs work afterwards.
    pool.submit([&completed] { ++completed; });
    pool.wait();
    EXPECT_EQ(completed.load(), 20);
}

TEST(ThreadPool, WaitIsReusableAndIdempotent)
{
    support::ThreadPool pool(2);
    pool.wait(); // nothing submitted yet
    std::atomic<int> counter{0};
    pool.submit([&counter] { ++counter; });
    pool.wait();
    pool.wait();
    EXPECT_EQ(counter.load(), 1);
}

TEST(ParallelFor, CoversEachIndexExactlyOnce)
{
    std::vector<int> hits(1000, 0);
    support::ThreadPool::parallelFor(
        8, hits.size(), [&hits](std::size_t i) { hits[i] += 1; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ParallelFor, SerialFallbackAndRethrow)
{
    // jobs == 1 degrades to a serial loop.
    std::vector<std::size_t> order;
    support::ThreadPool::parallelFor(
        1, 5, [&order](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));

    // An exception from the body propagates like a serial loop's.
    EXPECT_THROW(support::ThreadPool::parallelFor(
                     4, 64,
                     [](std::size_t i) {
                         if (i == 33)
                             throw std::runtime_error("boom");
                     }),
                 std::runtime_error);
}

TEST(ResolveJobs, ExplicitThenEnvThenHardware)
{
    EXPECT_EQ(support::resolveJobs(5), 5u);

    ::setenv("FITS_JOBS", "3", 1);
    EXPECT_EQ(support::resolveJobs(0), 3u);
    EXPECT_EQ(support::resolveJobs(2), 2u); // explicit wins

    ::setenv("FITS_JOBS", "not-a-number", 1);
    EXPECT_EQ(support::resolveJobs(0), support::hardwareJobs());
    ::setenv("FITS_JOBS", "0", 1);
    EXPECT_EQ(support::resolveJobs(0), support::hardwareJobs());

    ::unsetenv("FITS_JOBS");
    EXPECT_EQ(support::resolveJobs(0), support::hardwareJobs());
    EXPECT_GE(support::hardwareJobs(), 1u);
}

// ---- CorpusRunner --------------------------------------------------

eval::CorpusRunner
runnerWithJobs(std::size_t jobs)
{
    eval::CorpusRunner::Config config;
    config.jobs = jobs;
    return eval::CorpusRunner(config);
}

void
expectIdenticalInference(const eval::InferenceOutcome &a,
                         const eval::InferenceOutcome &b)
{
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.error, b.error);
    EXPECT_EQ(a.failureStage, b.failureStage);
    EXPECT_EQ(a.firstItsRank, b.firstItsRank);
    EXPECT_EQ(a.binaryName, b.binaryName);
    EXPECT_EQ(a.numFunctions, b.numFunctions);
    EXPECT_EQ(a.binaryBytes, b.binaryBytes);
    ASSERT_EQ(a.ranking.size(), b.ranking.size());
    for (std::size_t i = 0; i < a.ranking.size(); ++i) {
        EXPECT_EQ(a.ranking[i].entry, b.ranking[i].entry);
        EXPECT_EQ(a.ranking[i].name, b.ranking[i].name);
        EXPECT_DOUBLE_EQ(a.ranking[i].score, b.ranking[i].score);
    }
}

TEST(CorpusRunner, ParallelInferenceMatchesSerialOnStandardCorpus)
{
    const auto corpus = synth::generateStandardCorpus();
    const auto serial = runnerWithJobs(1).runInference(corpus);
    const auto parallel = runnerWithJobs(4).runInference(corpus);
    ASSERT_EQ(serial.size(), corpus.size());
    ASSERT_EQ(parallel.size(), corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        SCOPED_TRACE(corpus[i].spec.name);
        expectIdenticalInference(serial[i], parallel[i]);
    }
}

void
expectIdenticalEngine(const eval::EngineStats &a,
                      const eval::EngineStats &b)
{
    EXPECT_EQ(a.alerts, b.alerts);
    EXPECT_EQ(a.bugs, b.bugs);
}

void
expectIdenticalTaint(const eval::TaintOutcome &a,
                     const eval::TaintOutcome &b)
{
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.error, b.error);
    expectIdenticalEngine(a.karonte, b.karonte);
    expectIdenticalEngine(a.karonteIts, b.karonteIts);
    expectIdenticalEngine(a.sta, b.sta);
    expectIdenticalEngine(a.staIts, b.staIts);
    EXPECT_EQ(a.karonteBugs, b.karonteBugs);
    EXPECT_EQ(a.karonteItsBugs, b.karonteItsBugs);
    EXPECT_EQ(a.staBugs, b.staBugs);
    EXPECT_EQ(a.staItsBugs, b.staItsBugs);
}

/** A miniature corpus (one sample per vendor plus one failure) so the
 * heavier taint comparisons stay fast. */
std::vector<synth::GeneratedFirmware>
miniCorpus()
{
    std::vector<synth::GeneratedFirmware> corpus;
    const synth::VendorProfile profiles[] = {
        synth::netgearProfile(), synth::dlinkProfile(),
        synth::tplinkProfile(), synth::tendaProfile(),
        synth::ciscoProfile()};
    for (std::uint64_t i = 0; i < 5; ++i) {
        synth::SampleSpec spec;
        spec.profile = profiles[i];
        spec.profile.minCustomFns = 150;
        spec.profile.maxCustomFns = 220;
        spec.product = spec.profile.series.front();
        spec.version = "V1";
        spec.name = spec.product + "-V1";
        spec.seed = 0xab00 + i;
        corpus.push_back(synth::generateFirmware(spec));
    }
    synth::SampleSpec broken;
    broken.profile = synth::dlinkProfile();
    broken.product = broken.profile.series.front();
    broken.version = "V9";
    broken.name = broken.product + "-V9";
    broken.seed = 0xdead;
    broken.failure = synth::SampleSpec::FailureMode::OpaqueEncoding;
    broken.profile.encoding = fw::Encoding::Opaque;
    corpus.push_back(synth::generateFirmware(broken));
    return corpus;
}

TEST(CorpusRunner, ParallelTaintMatchesSerial)
{
    const auto corpus = miniCorpus();
    const auto serial = runnerWithJobs(1).runTaint(corpus);
    const auto parallel = runnerWithJobs(4).runTaint(corpus);
    ASSERT_EQ(serial.size(), corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        SCOPED_TRACE(corpus[i].spec.name);
        expectIdenticalTaint(serial[i], parallel[i]);
    }
    // The broken sample failed alone; the rest analyzed fine.
    EXPECT_FALSE(parallel.back().ok);
    for (std::size_t i = 0; i + 1 < corpus.size(); ++i)
        EXPECT_TRUE(parallel[i].ok);
}

TEST(CorpusRunner, RunFullSharesOneAnalysisPerSample)
{
    const auto corpus = miniCorpus();
    const auto runner = runnerWithJobs(3);
    const auto full = runner.runFull(corpus);
    const auto inference = runner.runInference(corpus);
    const auto taint = runner.runTaint(corpus);
    ASSERT_EQ(full.size(), corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        SCOPED_TRACE(corpus[i].spec.name);
        expectIdenticalInference(full[i].inference, inference[i]);
        expectIdenticalTaint(full[i].taint, taint[i]);
    }
}

TEST(CorpusRunner, TaintOutcomesCarrySampleIdentityEvenOnFailure)
{
    // Regression: the runTaint/runFull failure paths used to discard
    // the sample index, so an errored TaintOutcome could not be traced
    // back to the sample that produced it.
    const auto corpus = miniCorpus();
    const auto runner = runnerWithJobs(2);
    const auto taint = runner.runTaint(corpus);
    ASSERT_EQ(taint.size(), corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i)
        EXPECT_EQ(taint[i].spec.name, corpus[i].spec.name);
    EXPECT_FALSE(taint.back().ok); // the broken sample still failed
    EXPECT_FALSE(taint.back().spec.name.empty());

    const auto full = runner.runFull(corpus);
    ASSERT_EQ(full.size(), corpus.size());
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        EXPECT_EQ(full[i].taint.spec.name, corpus[i].spec.name);
        EXPECT_EQ(full[i].inference.spec.name, corpus[i].spec.name);
    }
}

TEST(CorpusRunner, ThrowingTaskFailsOnlyItsOwnSample)
{
    const auto runner = runnerWithJobs(4);
    struct Slot
    {
        bool ok = false;
        std::string error;
        int value = 0;
    };
    const auto results = runner.map<Slot>(
        16,
        [](std::size_t i) {
            if (i == 2)
                throw std::runtime_error("sample 2 crashed");
            if (i == 9)
                throw 42; // non-std exception
            Slot slot;
            slot.ok = true;
            slot.value = static_cast<int>(i) * 10;
            return slot;
        },
        [](std::size_t, const std::string &message) {
            Slot slot;
            slot.error = message;
            return slot;
        });
    ASSERT_EQ(results.size(), 16u);
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (i == 2) {
            EXPECT_FALSE(results[i].ok);
            EXPECT_EQ(results[i].error, "sample 2 crashed");
        } else if (i == 9) {
            EXPECT_FALSE(results[i].ok);
            EXPECT_EQ(results[i].error, "unknown exception");
        } else {
            EXPECT_TRUE(results[i].ok);
            EXPECT_EQ(results[i].value, static_cast<int>(i) * 10);
        }
    }
}

// ---- Intra-sample parallel BFV extraction --------------------------

TEST(BehaviorAnalyzer, ParallelBfvStageMatchesSerial)
{
    synth::SampleSpec spec;
    spec.profile = synth::tendaProfile();
    spec.profile.minCustomFns = 150;
    spec.profile.maxCustomFns = 220;
    spec.product = spec.profile.series.front();
    spec.version = "V1";
    spec.name = spec.product + "-V1";
    spec.seed = 0x60d;
    const auto fw = synth::generateFirmware(spec);

    core::PipelineConfig serialConfig;
    core::PipelineConfig parallelConfig;
    parallelConfig.behavior.jobs = 4;
    const auto serial =
        core::FitsPipeline(serialConfig).analyze(fw.bytes);
    const auto parallel =
        core::FitsPipeline(parallelConfig).analyze(fw.bytes);
    ASSERT_TRUE(serial.ok);
    ASSERT_TRUE(parallel.ok);

    const auto &a = serial.behavior;
    const auto &b = parallel.behavior;
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].bfv.toVector(),
                  b.records[i].bfv.toVector());
        EXPECT_EQ(a.records[i].isCustom, b.records[i].isCustom);
        EXPECT_EQ(a.records[i].isAnchor, b.records[i].isAnchor);
        EXPECT_EQ(a.records[i].augmentedCfg, b.records[i].augmentedCfg);
        EXPECT_EQ(a.records[i].attributedCfg,
                  b.records[i].attributedCfg);
    }
    EXPECT_EQ(a.customFns, b.customFns);
    EXPECT_EQ(a.anchorFns, b.anchorFns);

    ASSERT_EQ(serial.inference.ranking.size(),
              parallel.inference.ranking.size());
    for (std::size_t i = 0; i < serial.inference.ranking.size(); ++i) {
        EXPECT_EQ(serial.inference.ranking[i].entry,
                  parallel.inference.ranking[i].entry);
        EXPECT_DOUBLE_EQ(serial.inference.ranking[i].score,
                         parallel.inference.ranking[i].score);
    }
}

// ---- Logger thread-safety ------------------------------------------

TEST(Logger, ConcurrentLoggingAndLevelChangesAreSafe)
{
    auto &logger = support::Logger::instance();
    const support::LogLevel before = logger.level();
    logger.setLevel(support::LogLevel::Error);

    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([t, &logger] {
            for (int i = 0; i < 64; ++i) {
                // Below the threshold: exercises the concurrent
                // level check without spamming test output.
                support::logDebug("parallel-test",
                                  "worker " + std::to_string(t));
                if (i % 16 == 0) {
                    logger.setLevel(support::LogLevel::Error);
                }
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    logger.setLevel(before);
    SUCCEED();
}

// ---- DBSCAN duplicate-seed regression ------------------------------

/** The pre-fix expansion: enqueues every neighbor unconditionally.
 * Kept as the reference semantics for the regression test. */
ml::DbscanResult
referenceDbscan(const ml::Matrix &points, const ml::DbscanConfig &config)
{
    constexpr int kUnvisited = -2;
    constexpr int kNoise = -1;
    auto regionQuery = [&](std::size_t p) {
        std::vector<std::size_t> neighbors;
        for (std::size_t q = 0; q < points.size(); ++q) {
            if (ml::distance(config.metric, points[p], points[q]) <=
                config.eps) {
                neighbors.push_back(q);
            }
        }
        return neighbors;
    };

    ml::DbscanResult result;
    result.labels.assign(points.size(), kUnvisited);
    int cluster = 0;
    for (std::size_t p = 0; p < points.size(); ++p) {
        if (result.labels[p] != kUnvisited)
            continue;
        auto neighbors = regionQuery(p);
        if (neighbors.size() < config.minPts) {
            result.labels[p] = kNoise;
            continue;
        }
        result.labels[p] = cluster;
        std::deque<std::size_t> seeds(neighbors.begin(),
                                      neighbors.end());
        while (!seeds.empty()) {
            const std::size_t q = seeds.front();
            seeds.pop_front();
            if (result.labels[q] == kNoise)
                result.labels[q] = cluster;
            if (result.labels[q] != kUnvisited)
                continue;
            result.labels[q] = cluster;
            auto qNeighbors = regionQuery(q);
            if (qNeighbors.size() >= config.minPts) {
                for (std::size_t r : qNeighbors)
                    seeds.push_back(r);
            }
        }
        ++cluster;
    }
    result.numClusters = cluster;
    return result;
}

TEST(Dbscan, DedupedSeedsPreserveLabelsOnDenseBlob)
{
    // A dense blob (every point within eps of every other) is the
    // worst case for the old expansion: each expanded point re-enqueued
    // all n neighbors, growing the deque O(n^2). Labels must be
    // identical with the duplicate-seed fix.
    support::Rng rng(0x5eed);
    ml::Matrix points;
    for (int i = 0; i < 120; ++i) {
        ml::Vec v(3);
        for (auto &x : v)
            x = rng.uniformReal() * 0.01;
        points.push_back(std::move(v));
    }
    // Two looser satellite groups plus genuine noise points.
    for (int i = 0; i < 40; ++i) {
        ml::Vec v(3);
        v[0] = 5.0 + rng.uniformReal() * 0.2;
        v[1] = rng.uniformReal() * 0.2;
        v[2] = (i % 2 == 0) ? rng.uniformReal() * 0.2
                            : 3.0 + rng.uniformReal() * 0.2;
        points.push_back(std::move(v));
    }
    for (int i = 0; i < 5; ++i) {
        ml::Vec v(3);
        v[0] = 100.0 + 10.0 * i;
        v[1] = -50.0;
        v[2] = 7.0 * i;
        points.push_back(std::move(v));
    }

    const ml::DbscanConfig config{0.5, 4, ml::Metric::Euclidean};
    const auto fixed = ml::dbscan(points, config);
    const auto reference = referenceDbscan(points, config);
    EXPECT_EQ(fixed.labels, reference.labels);
    EXPECT_EQ(fixed.numClusters, reference.numClusters);
    EXPECT_GE(fixed.numClusters, 3);
    EXPECT_EQ(fixed.noiseCount(), 5u);
}

TEST(Dbscan, UniformNoiseStillMatchesReference)
{
    support::Rng rng(0xd5);
    ml::Matrix points;
    for (int i = 0; i < 200; ++i) {
        ml::Vec v(4);
        for (auto &x : v)
            x = rng.uniformReal() * 10.0;
        points.push_back(std::move(v));
    }
    const ml::DbscanConfig config{0.8, 3, ml::Metric::Euclidean};
    const auto fixed = ml::dbscan(points, config);
    const auto reference = referenceDbscan(points, config);
    EXPECT_EQ(fixed.labels, reference.labels);
    EXPECT_EQ(fixed.numClusters, reference.numClusters);
}

} // namespace
} // namespace fits
