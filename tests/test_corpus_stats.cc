/** @file Corpus-level regression tests: the paper-shape claims the
 * bench tables report must keep holding on the deterministic
 * 59-sample dataset. These run the full corpus once and assert the
 * *relations* (not exact counts), so implementation tuning cannot
 * silently break the reproduction. */

#include <gtest/gtest.h>

#include "core/triage.hh"
#include "eval/harness.hh"
#include "synth/firmware_gen.hh"

namespace fits {
namespace {

/** Shared corpus evaluation, computed once per test binary run. */
struct CorpusResults
{
    eval::PrecisionStats precision;
    int failures = 0;
    eval::EngineStats karonte, karonteIts, sta, staIts;

    static const CorpusResults &
    get()
    {
        static const CorpusResults results = [] {
            CorpusResults r;
            for (const auto &spec : synth::standardDataset()) {
                const auto fw = synth::generateFirmware(spec);
                const auto outcome = eval::runInference(fw);
                const int rank =
                    outcome.ok ? outcome.firstItsRank : -1;
                r.precision.addRank(rank);
                if (!outcome.ok || rank < 0)
                    ++r.failures;

                const auto taint = eval::runTaint(fw);
                if (taint.ok) {
                    r.karonte += taint.karonte;
                    r.karonteIts += taint.karonteIts;
                    r.sta += taint.sta;
                    r.staIts += taint.staIts;
                }
            }
            return r;
        }();
        return results;
    }
};

TEST(CorpusShape, InferencePrecisionNearPaper)
{
    const auto &r = CorpusResults::get();
    // Paper: 47/63/89. Accept the calibrated band.
    EXPECT_GE(r.precision.p1(), 0.40);
    EXPECT_LE(r.precision.p1(), 0.70);
    EXPECT_GE(r.precision.p2(), r.precision.p1());
    EXPECT_GE(r.precision.p3(), 0.85);
    EXPECT_GE(r.precision.p3(), r.precision.p2());
}

TEST(CorpusShape, ExactlySixFailures)
{
    EXPECT_EQ(CorpusResults::get().failures, 6); // §4.2
}

TEST(CorpusShape, ItsRunsFindMoreBugs)
{
    const auto &r = CorpusResults::get();
    EXPECT_GT(r.karonteIts.bugs, r.karonte.bugs);
    EXPECT_GT(r.staIts.bugs, r.sta.bugs);
}

TEST(CorpusShape, StaticEngineGainsDwarfSymbolicGains)
{
    // Paper: +339 vs +15 — at least 4x here.
    const auto &r = CorpusResults::get();
    const auto staGain = r.staIts.bugs - r.sta.bugs;
    const auto karonteGain = r.karonteIts.bugs - r.karonte.bugs;
    EXPECT_GE(staGain, 4 * karonteGain);
}

TEST(CorpusShape, FalsePositiveRateOrdering)
{
    // Paper's Table 6: STA worst by far; both ITS configurations at or
    // below their vanilla counterparts.
    const auto &r = CorpusResults::get();
    EXPECT_GT(r.sta.falsePositiveRate(), 0.6);
    EXPECT_LT(r.karonte.falsePositiveRate(), 0.5);
    EXPECT_LE(r.karonteIts.falsePositiveRate(),
              r.karonte.falsePositiveRate() + 0.02);
    EXPECT_LT(r.staIts.falsePositiveRate(),
              r.sta.falsePositiveRate() - 0.2);
}

TEST(CorpusShape, StaIsTheNoisiestEngine)
{
    const auto &r = CorpusResults::get();
    EXPECT_GT(r.sta.alerts, r.karonte.alerts);
    EXPECT_GT(r.staIts.alerts, r.karonteIts.alerts);
}

TEST(Triage, ItsGetterProfilesAsMemoryOperator)
{
    synth::SampleSpec spec;
    spec.profile = synth::tendaProfile();
    spec.profile.minCustomFns = 120;
    spec.profile.maxCustomFns = 160;
    spec.product = "AC9";
    spec.version = "V1";
    spec.name = "AC9-V1";
    spec.seed = 0x7a1;
    const auto fw = synth::generateFirmware(spec);
    auto unpacked = fw::unpackFirmware(fw.bytes);
    ASSERT_TRUE(unpacked);
    auto target =
        fw::selectAnalysisTarget(unpacked.value().filesystem);
    ASSERT_TRUE(target);
    const analysis::LinkedProgram linked(*target.value().main,
                                         target.value().libraries);
    const auto pa = analysis::ProgramAnalysis::analyze(linked);

    ASSERT_FALSE(fw.truth.itsFunctions.empty());
    const auto itsId = linked.fnIdOf(&linked.mainImage(),
                                     fw.truth.itsFunctions[0]);
    ASSERT_TRUE(itsId.has_value());
    const auto profile = core::profileFunction(pa, *itsId);
    EXPECT_GE(profile.memOps, 3); // strlen/strncmp/memcpy calls
    EXPECT_EQ(profile.execOps, 0);
    EXPECT_NE(profile.summary().find("mem:"), std::string::npos);
}

TEST(Triage, CommandHandlersAreSensitive)
{
    // At least one planted command-injection handler must profile as
    // exec-capable.
    synth::SampleSpec spec;
    spec.profile = synth::ciscoProfile();
    spec.profile.minCustomFns = 120;
    spec.profile.maxCustomFns = 160;
    spec.product = "RV130X";
    spec.version = "V1";
    spec.name = "RV130X-V1";
    spec.seed = 0x7a2;
    const auto fw = synth::generateFirmware(spec);
    auto unpacked = fw::unpackFirmware(fw.bytes);
    ASSERT_TRUE(unpacked);
    auto target =
        fw::selectAnalysisTarget(unpacked.value().filesystem);
    ASSERT_TRUE(target);
    const analysis::LinkedProgram linked(*target.value().main,
                                         target.value().libraries);
    const auto pa = analysis::ProgramAnalysis::analyze(linked);

    int execCapable = 0;
    for (analysis::FnId id = 0; id < linked.fnCount(); ++id) {
        if (!linked.isMainFn(id))
            continue;
        if (core::profileFunction(pa, id).execOps > 0)
            ++execCapable;
    }
    EXPECT_GE(execCapable, 1);
}

TEST(Triage, EmptyFunctionIsNotSensitive)
{
    core::OperationProfile profile;
    EXPECT_FALSE(profile.sensitive());
    EXPECT_EQ(profile.summary(), "none");
    profile.execOps = 2;
    profile.memOps = 1;
    EXPECT_TRUE(profile.sensitive());
    EXPECT_EQ(profile.summary(), "exec:2+mem:1");
}

} // namespace
} // namespace fits
