#include "chaos.hh"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "support/strings.hh"

namespace fits::chaos {

namespace {

using support::Stage;

std::atomic<bool> g_enabled{false};

/** The static fault-site catalog. Order is append-only and stable so
 * tests and docs can rely on it. */
const std::vector<SiteInfo> &
catalog()
{
    static const std::vector<SiteInfo> sites = {
        {"unpack.magic", Stage::Unpack,
         "firmware magic scan fails (unrecognized container)"},
        {"unpack.header", Stage::Unpack,
         "firmware header decode fails as if truncated"},
        {"unpack.payload", Stage::Unpack,
         "payload checksum verification fails (corrupt image)"},
        {"fs.filetable", Stage::Filesystem,
         "file-table parse fails (malformed entry)"},
        {"select.binary", Stage::Select,
         "network-binary selection finds no candidate"},
        {"select.library", Stage::Select,
         "a dependency library fails to lift (degraded target)"},
        {"fbin.load", Stage::Lift,
         "FBIN decode rejects the binary outright"},
        {"fbin.truncate", Stage::Lift,
         "FBIN decode sees only the front half of the buffer"},
        {"ir.parse", Stage::IrParse, "textual FIR parse fails"},
        {"ucse.explore", Stage::Ucse,
         "symbolic exploration aborts before the first step"},
        {"flow.reachdef", Stage::Flow,
         "reaching-definitions fixpoint aborts early (partial DDG)"},
        {"infer.rank", Stage::Infer,
         "inference reports an empty ranking as a failure"},
        {"taint.sta", Stage::Taint,
         "STA fixpoint aborts at an expired deadline (partial alerts)"},
        {"taint.karonte", Stage::Taint,
         "Karonte exploration aborts at an expired deadline "
         "(partial alerts)"},
        {"cache.read", Stage::Io,
         "a persistent cache entry fails to read (degrades to a "
         "miss)"},
        {"cache.write", Stage::Io,
         "a persistent cache entry fails to write (entry skipped)"},
        {"serve.accept", Stage::Serve,
         "an accepted connection drops before its first request"},
        {"serve.read", Stage::Serve,
         "a received request frame is treated as unreadable "
         "(per-request error response)"},
        {"serve.write", Stage::Serve,
         "a response frame fails to send (connection dropped)"},
    };
    return sites;
}

constexpr std::size_t kMaxSites = 64;

/** name -> catalog index, built once. */
const std::unordered_map<std::string_view, std::size_t> &
siteIndex()
{
    static const auto *index = [] {
        auto *m =
            new std::unordered_map<std::string_view, std::size_t>;
        const auto &sites = catalog();
        assert(sites.size() <= kMaxSites);
        for (std::size_t i = 0; i < sites.size(); ++i)
            m->emplace(sites[i].name, i);
        return m;
    }();
    return *index;
}

struct Rule
{
    std::string pattern; ///< exact name, "prefix*", or "*"
    int percent = 100;   ///< deterministic fire probability per hit
    std::uint64_t maxFires = 0; ///< 0 = unlimited
};

struct Config
{
    std::vector<Rule> rules;
    std::uint64_t seed = 1;
};

/** Active spec. Swapped whole on configure(); superseded configs are
 * retired to an immortal list (never freed) so in-flight readers
 * (workers mid-shouldInject) never see a dead pointer. Tests
 * reconfigure between runs, not during them. */
std::atomic<const Config *> g_config{nullptr};

/** Keeps every config ever installed alive (and reachable, so leak
 * checkers stay quiet). Guarded by its own mutex; configure() is not
 * a hot path. */
void
retireConfig(const Config *config)
{
    static std::mutex mutex;
    // Leaked on purpose: retiring must stay valid during static
    // destruction (mirrors the obs registry's immortality).
    static auto *retired =
        new std::vector<std::unique_ptr<const Config>>;
    if (config == nullptr)
        return;
    const std::lock_guard<std::mutex> lock(mutex);
    retired->emplace_back(config);
}

std::atomic<std::uint64_t> g_hits[kMaxSites];
std::atomic<std::uint64_t> g_fires[kMaxSites];

void
resetCounters()
{
    for (std::size_t i = 0; i < kMaxSites; ++i) {
        g_hits[i].store(0, std::memory_order_relaxed);
        g_fires[i].store(0, std::memory_order_relaxed);
    }
}

bool
matches(const std::string &pattern, std::string_view site)
{
    if (pattern == "*")
        return true;
    if (!pattern.empty() && pattern.back() == '*') {
        const std::string_view prefix(pattern.data(),
                                      pattern.size() - 1);
        return site.size() >= prefix.size() &&
               site.substr(0, prefix.size()) == prefix;
    }
    return site == pattern;
}

std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Pure per-hit decision: (site, hit index, seed) -> fire?  */
bool
decides(const Rule &rule, std::string_view site, std::uint64_t hit,
        std::uint64_t seed)
{
    if (rule.percent >= 100)
        return true;
    if (rule.percent <= 0)
        return false;
    const std::uint64_t h = splitmix64(
        seed ^ support::fnv1a(site) ^ (hit * 0x2545f4914f6cdd1dull));
    return static_cast<int>(h % 100) <
           rule.percent;
}

/** Parse one "pattern[@pct][#max]" rule. */
bool
parseRule(std::string_view text, Rule &rule, std::string *error)
{
    std::string body(text);
    const auto fail = [&](const std::string &why) {
        if (error != nullptr)
            *error = "bad FITS_FAULTS rule '" + body + "': " + why;
        return false;
    };

    std::string pattern = body;
    const auto parseTail = [&](char marker, std::uint64_t &out,
                               std::uint64_t lo, std::uint64_t hi,
                               const char *what) {
        const auto pos = pattern.find(marker);
        if (pos == std::string::npos)
            return true;
        const std::string digits = pattern.substr(pos + 1);
        pattern.resize(pos);
        char *end = nullptr;
        const std::uint64_t v =
            std::strtoull(digits.c_str(), &end, 10);
        if (end == digits.c_str() || *end != '\0' || v < lo || v > hi)
            return fail(std::string("bad ") + what);
        out = v;
        return true;
    };

    // '#' may follow '@'; strip it first so '@' digits stay clean.
    std::uint64_t maxFires = 0, percent = 100;
    if (!parseTail('#', maxFires, 1, ~0ull, "fire limit"))
        return false;
    if (!parseTail('@', percent, 0, 100, "percentage"))
        return false;

    if (pattern.empty())
        return fail("empty site pattern");
    const bool glob =
        pattern == "*" ||
        (pattern.back() == '*' && pattern.find('*') ==
                                      pattern.size() - 1);
    if (!glob) {
        if (pattern.find('*') != std::string::npos)
            return fail("'*' is only valid as a trailing glob");
        if (siteByName(pattern) == nullptr)
            return fail("unknown fault site (see `fits faults`)");
    }

    rule.pattern = std::move(pattern);
    rule.percent = static_cast<int>(percent);
    rule.maxFires = maxFires;
    return true;
}

/** Parse FITS_FAULTS once at load time (mirrors obs::EnvInit). */
struct EnvInit
{
    EnvInit()
    {
        const char *env = std::getenv("FITS_FAULTS");
        if (env == nullptr || *env == '\0')
            return;
        std::string error;
        if (!configure(env, &error)) {
            std::fprintf(stderr,
                         "fits: ignoring FITS_FAULTS: %s\n",
                         error.c_str());
        }
    }
};

const EnvInit g_envInit;

} // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

const std::vector<SiteInfo> &
knownSites()
{
    return catalog();
}

const SiteInfo *
siteByName(std::string_view name)
{
    const auto &index = siteIndex();
    const auto it = index.find(name);
    return it == index.end() ? nullptr : &catalog()[it->second];
}

bool
configure(std::string_view spec, std::string *error)
{
    resetCounters();
    if (spec.empty()) {
        g_enabled.store(false, std::memory_order_relaxed);
        return true;
    }

    auto config = std::make_unique<Config>();

    // The seed is everything after the last ':' (site names never
    // contain one).
    std::string rulesText(spec);
    const auto colon = rulesText.rfind(':');
    if (colon != std::string::npos) {
        const std::string digits = rulesText.substr(colon + 1);
        char *end = nullptr;
        const std::uint64_t seed =
            std::strtoull(digits.c_str(), &end, 10);
        if (digits.empty() || end == digits.c_str() ||
            *end != '\0') {
            if (error != nullptr)
                *error = "bad seed '" + digits + "'";
            g_enabled.store(false, std::memory_order_relaxed);
            return false;
        }
        config->seed = seed;
        rulesText.resize(colon);
    }

    for (const auto &part : support::split(rulesText, ',')) {
        Rule rule;
        if (!parseRule(part, rule, error)) {
            g_enabled.store(false, std::memory_order_relaxed);
            return false;
        }
        config->rules.push_back(std::move(rule));
    }
    if (config->rules.empty()) {
        if (error != nullptr)
            *error = "no rules in spec";
        g_enabled.store(false, std::memory_order_relaxed);
        return false;
    }

    retireConfig(g_config.exchange(config.release(),
                                   std::memory_order_acq_rel));
    g_enabled.store(true, std::memory_order_relaxed);
    return true;
}

void
reset()
{
    g_enabled.store(false, std::memory_order_relaxed);
    resetCounters();
}

bool
shouldInject(std::string_view site)
{
    if (!enabled())
        return false;
    const auto &index = siteIndex();
    const auto it = index.find(site);
    assert(it != index.end() && "unregistered fault site");
    if (it == index.end())
        return false;
    const std::size_t idx = it->second;

    const Config *config =
        g_config.load(std::memory_order_acquire);
    const std::uint64_t hit =
        g_hits[idx].fetch_add(1, std::memory_order_relaxed);
    if (config == nullptr)
        return false;

    for (const auto &rule : config->rules) {
        if (!matches(rule.pattern, site))
            continue;
        if (!decides(rule, site, hit, config->seed))
            return false; // first matching rule decides
        const std::uint64_t prev =
            g_fires[idx].fetch_add(1, std::memory_order_relaxed);
        if (rule.maxFires != 0 && prev >= rule.maxFires) {
            // Fire limit reached: undo and pass the site through.
            g_fires[idx].fetch_sub(1, std::memory_order_relaxed);
            return false;
        }
        return true;
    }
    return false;
}

bool
rulesConfinedTo(std::string_view prefix)
{
    if (!enabled())
        return true;
    const Config *config = g_config.load(std::memory_order_acquire);
    if (config == nullptr)
        return true;
    for (const auto &rule : config->rules) {
        std::string_view pattern = rule.pattern;
        if (pattern == "*")
            return false;
        if (!pattern.empty() && pattern.back() == '*')
            pattern.remove_suffix(1);
        if (pattern.size() < prefix.size() ||
            pattern.substr(0, prefix.size()) != prefix) {
            return false;
        }
    }
    return true;
}

std::uint64_t
hitCount(std::string_view site)
{
    const SiteInfo *info = siteByName(site);
    if (info == nullptr)
        return 0;
    return g_hits[static_cast<std::size_t>(info - catalog().data())]
        .load(std::memory_order_relaxed);
}

std::uint64_t
fireCount(std::string_view site)
{
    const SiteInfo *info = siteByName(site);
    if (info == nullptr)
        return 0;
    return g_fires[static_cast<std::size_t>(info - catalog().data())]
        .load(std::memory_order_relaxed);
}

std::uint64_t
totalFires()
{
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < kMaxSites; ++i)
        total += g_fires[i].load(std::memory_order_relaxed);
    return total;
}

support::Status
injectedStatus(std::string_view site)
{
    const SiteInfo *info = siteByName(site);
    const Stage stage =
        info == nullptr ? Stage::None : info->stage;
    return support::Status::error(
        stage, support::ErrorCode::FaultInjected,
        "injected fault at " + std::string(site));
}

} // namespace fits::chaos
