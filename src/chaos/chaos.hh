#ifndef FITS_CHAOS_CHAOS_HH_
#define FITS_CHAOS_CHAOS_HH_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "support/status.hh"

namespace fits::chaos {

/**
 * Deterministic fault injection: named fault sites planted at the
 * pipeline's error boundaries (unpack, filesystem, binary lift,
 * IR parse, taint engines), armed by the `FITS_FAULTS` environment
 * variable, so every error path is reachable — and replayable — from
 * tests without hand-crafting a corrupt input per path.
 *
 * Design constraints (mirroring `fits::obs`):
 *  - *Off by default, near-zero overhead:* every `shouldInject()`
 *    first checks one relaxed atomic flag and returns false; no
 *    locks, no allocation, no hashing on the disabled path. With
 *    `FITS_FAULTS` unset, pipeline output is bit-identical.
 *  - *Deterministic:* whether a site fires on its k-th hit is a pure
 *    function of (site name, k, seed). Replaying the same spec over
 *    the same serial run reproduces the same faults; sites that fire
 *    on every hit (the default) are deterministic under any thread
 *    interleaving.
 *  - *Typed:* a fired site surfaces as a `support::Status` with
 *    ErrorCode::FaultInjected, so nothing downstream confuses an
 *    injected fault with a real input property.
 *
 * Spec grammar (`FITS_FAULTS=<spec>` or `configure()`):
 *
 *     spec  := rules [":" seed]
 *     rules := rule ("," rule)*
 *     rule  := site-pattern ["@" percent] ["#" max-fires]
 *
 * A site pattern is a catalog name, or a prefix ending in "*"
 * ("unpack.*"), or "*" alone for every site. `@percent` fires the
 * site on roughly that percentage of hits (deterministically chosen
 * per hit index from the seed); `#max-fires` stops the site after N
 * fires — `unpack.magic#1` makes exactly the first unpack fail,
 * which is how the degraded-retry path is tested. The trailing
 * `:seed` (default 1) reshuffles which hit indices fire.
 */

/** True when fault injection is armed (FITS_FAULTS / configure). */
bool enabled();

/** One entry of the static fault-site catalog. */
struct SiteInfo
{
    const char *name;          ///< e.g. "unpack.checksum"
    support::Stage stage;      ///< stage the injected error reports
    const char *description;   ///< what failing here simulates
};

/** Every fault site planted in the codebase, in a stable order. The
 * chaos tests iterate this to prove each error path is reachable. */
const std::vector<SiteInfo> &knownSites();

/** Catalog entry by name; nullptr if not a registered site. */
const SiteInfo *siteByName(std::string_view name);

/**
 * Arm injection with a spec (see grammar above). Returns false and
 * fills `error` (if given) on a malformed spec, leaving injection
 * disarmed. An empty spec disarms. Counters are reset either way.
 */
bool configure(std::string_view spec, std::string *error = nullptr);

/** Disarm injection and clear all hit/fire counters. */
void reset();

/**
 * The decision point a fault site compiles down to: true when `site`
 * must fail now. Counts the hit either way (when armed). `site` must
 * be a name from the catalog — unknown names never fire (and assert
 * in debug builds, so a typo cannot silently disable a site).
 */
bool shouldInject(std::string_view site);

/**
 * True when every armed rule's site pattern falls under `prefix`
 * (vacuously true when injection is disarmed). The analysis cache uses
 * this to decide whether memoization is safe: faults confined to
 * "cache." sites exercise the cache's own degradation paths, while any
 * rule that can fire *inside* a cached computation (UCSE, reach-defs,
 * lift, ...) forces a full bypass so injected faults are never masked
 * by — or baked into — a cached result.
 */
bool rulesConfinedTo(std::string_view prefix);

/** Times `site` was reached since the last configure/reset. */
std::uint64_t hitCount(std::string_view site);

/** Times `site` fired since the last configure/reset. */
std::uint64_t fireCount(std::string_view site);

/** Total fires across all sites since the last configure/reset. */
std::uint64_t totalFires();

/** The typed status an armed site returns when it fires. */
support::Status injectedStatus(std::string_view site);

} // namespace fits::chaos

#endif // FITS_CHAOS_CHAOS_HH_
