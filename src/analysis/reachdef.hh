#ifndef FITS_ANALYSIS_REACHDEF_HH_
#define FITS_ANALYSIS_REACHDEF_HH_

#include <cstdint>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/constmap.hh"
#include "support/deadline.hh"

namespace fits::analysis {

/**
 * One reaching definition: a program point that writes a register, a
 * temporary, or a memory cell. Virtual definitions (param >= 0, block ==
 * npos) model the caller-provided values in the argument registers at
 * the function entry; they are what connects the DDG to the function's
 * parameters.
 */
struct Definition
{
    enum class Target : std::uint8_t { Reg, Tmp, MemConst, MemUnknown };

    Target target = Target::Reg;
    ir::RegId reg = 0;
    ir::TmpId tmp = 0;
    std::uint64_t memAddr = 0;

    std::size_t block = npos;
    std::size_t stmt = npos;
    /** Parameter index for virtual entry definitions, else -1. */
    int param = -1;

    bool isVirtual() const { return param >= 0; }

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/**
 * Reaching-definition analysis over one function's CFG, producing the
 * data-dependency graph (DDG) and the parameter-dependence mask of
 * every statement (Algorithm 1, lines 6-8 of the paper).
 *
 * Memory is modeled with one cell per constant store address plus a
 * single "unknown" cell that aliases everything; loads from unknown
 * addresses conservatively use all memory definitions. Calls define the
 * return register and the unknown memory cell (the callee may write
 * memory derived from its arguments), and their argument-register uses
 * exclude virtual definitions: compilers materialize call arguments
 * with explicit writes, so a stale caller-provided value in an argument
 * register is not an argument of the call.
 */
class ReachingDefs
{
  public:
    struct Result
    {
        std::vector<Definition> defs;

        /** DDG edges: def ids reaching the uses of each statement,
         * indexed [block][stmt]. */
        std::vector<std::vector<std::vector<std::uint32_t>>> useDefs;

        /** Parameter mask (bit i = param i) of each definition. */
        std::vector<std::uint8_t> defDeps;

        /** Parameter mask of the inputs of each statement. */
        std::vector<std::vector<std::uint8_t>> stmtDeps;

        /** Union of stmtDeps over all Branch statements. */
        std::uint8_t branchDepMask = 0;

        /** Union of stmtDeps over Branch statements in blocks flagged
         * by LoopInfo::controlsLoop; filled by callers that have loop
         * info (feature extraction), zero otherwise. */
        std::uint8_t loopDepMask = 0;

        /** The fixpoint loops were cut short by the deadline (or a
         * fault injection). Every vector is still fully sized — only
         * the masks and IN sets may be under-approximated. */
        bool deadlineExpired = false;
    };

    static Result analyze(const Cfg &cfg, const ir::Function &fn,
                          const TmpConstMap &consts, int numParams,
                          support::Deadline deadline = {});
};

} // namespace fits::analysis

#endif // FITS_ANALYSIS_REACHDEF_HH_
