#include "callgraph.hh"

#include <unordered_set>

namespace fits::analysis {

const std::vector<std::size_t> CallGraph::kEmpty_;

CallGraph
CallGraph::build(const LinkedProgram &linked,
                 const std::unordered_map<FnId, const UcseResult *>
                     *ucseByFn)
{
    CallGraph cg;

    for (FnId caller = 0; caller < linked.fnCount(); ++caller) {
        const FnRef &ref = linked.fn(caller);
        const UcseResult *ucse = nullptr;
        if (ucseByFn != nullptr) {
            auto it = ucseByFn->find(caller);
            if (it != ucseByFn->end())
                ucse = it->second;
        }

        for (std::size_t bi = 0; bi < ref.fn->blocks.size(); ++bi) {
            const ir::BasicBlock &block = ref.fn->blocks[bi];
            for (std::size_t si = 0; si < block.stmts.size(); ++si) {
                const ir::Stmt &stmt = block.stmts[si];
                if (stmt.kind != ir::StmtKind::Call)
                    continue;

                const Addr stmtAddr = block.stmtAddr(si);

                auto emit = [&](Addr targetAddr, bool indirect) {
                    CallSite site;
                    site.caller = caller;
                    site.blockIdx = bi;
                    site.stmtIdx = si;
                    site.stmtAddr = stmtAddr;
                    site.indirect = indirect;
                    site.target = linked.resolve(ref.image, targetAddr);
                    const std::size_t idx = cg.sites_.size();
                    cg.byCaller_[caller].push_back(idx);
                    if (site.resolvesToFunction())
                        cg.byCallee_[site.target.fn].push_back(idx);
                    cg.sites_.push_back(std::move(site));
                };

                if (!stmt.indirect) {
                    emit(stmt.target, false);
                } else if (ucse != nullptr) {
                    auto it = ucse->resolvedCalls.find(stmtAddr);
                    if (it != ucse->resolvedCalls.end()) {
                        for (Addr t : it->second)
                            emit(t, true);
                    } else {
                        // Unresolved indirect call: keep the site with
                        // an Unknown target so engines can account for
                        // interrupted data flow.
                        CallSite site;
                        site.caller = caller;
                        site.blockIdx = bi;
                        site.stmtIdx = si;
                        site.stmtAddr = stmtAddr;
                        site.indirect = true;
                        cg.byCaller_[caller].push_back(
                            cg.sites_.size());
                        cg.sites_.push_back(std::move(site));
                    }
                } else {
                    CallSite site;
                    site.caller = caller;
                    site.blockIdx = bi;
                    site.stmtIdx = si;
                    site.stmtAddr = stmtAddr;
                    site.indirect = true;
                    cg.byCaller_[caller].push_back(cg.sites_.size());
                    cg.sites_.push_back(std::move(site));
                }
            }
        }
    }

    return cg;
}

const std::vector<std::size_t> &
CallGraph::sitesOfCaller(FnId caller) const
{
    auto it = byCaller_.find(caller);
    return it == byCaller_.end() ? kEmpty_ : it->second;
}

const std::vector<std::size_t> &
CallGraph::sitesOfCallee(FnId callee) const
{
    auto it = byCallee_.find(callee);
    return it == byCallee_.end() ? kEmpty_ : it->second;
}

std::size_t
CallGraph::callerSiteCount(FnId callee) const
{
    return sitesOfCallee(callee).size();
}

std::size_t
CallGraph::distinctCallerCount(FnId callee) const
{
    std::unordered_set<FnId> callers;
    for (std::size_t idx : sitesOfCallee(callee))
        callers.insert(sites_[idx].caller);
    return callers.size();
}

std::size_t
CallGraph::libraryCallCount(FnId caller) const
{
    std::size_t n = 0;
    for (std::size_t idx : sitesOfCaller(caller)) {
        if (sites_[idx].isLibraryCall())
            ++n;
    }
    return n;
}

} // namespace fits::analysis
