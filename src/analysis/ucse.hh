#ifndef FITS_ANALYSIS_UCSE_HH_
#define FITS_ANALYSIS_UCSE_HH_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "binary/image.hh"
#include "ir/function.hh"
#include "support/deadline.hh"

namespace fits::analysis {

using ir::Addr;

/**
 * Abstract value tracked by the under-constrained symbolic explorer:
 * a known constant, an unconstrained function argument (the "under-
 * constrained" part — analysis starts at the function entry with
 * arguments left symbolic), or unknown.
 */
struct AbsVal
{
    enum class Kind : std::uint8_t { Unknown, Const, Arg };

    Kind kind = Kind::Unknown;
    std::uint64_t value = 0;
    int arg = -1;

    static AbsVal
    unknown()
    {
        return {};
    }

    static AbsVal
    constant(std::uint64_t v)
    {
        AbsVal a;
        a.kind = Kind::Const;
        a.value = v;
        return a;
    }

    static AbsVal
    argument(int i)
    {
        AbsVal a;
        a.kind = Kind::Arg;
        a.arg = i;
        return a;
    }

    bool isConst() const { return kind == Kind::Const; }
    bool isArg() const { return kind == Kind::Arg; }
    bool isUnknown() const { return kind == Kind::Unknown; }
};

/** Tuning knobs for the explorer. */
struct UcseConfig
{
    /** Overall statement budget per function. */
    std::size_t maxSteps = 50000;
    /** Re-entry bound per block, which also bounds loop unrolling. */
    std::size_t maxVisitsPerBlock = 4;
    /** Wall-clock budget; default never expires. Checked coarsely in
     * the exploration loop, so expiry yields partial results rather
     * than an error. */
    support::Deadline deadline;
};

/** Results of exploring one function. */
struct UcseResult
{
    /** Indirect Call statement address -> resolved callee addresses. */
    std::unordered_map<Addr, std::vector<Addr>> resolvedCalls;
    /** Indirect Jump statement address -> resolved block addresses. */
    std::unordered_map<Addr, std::vector<Addr>> resolvedJumps;
    /** Blocks reached by at least one explored path. */
    std::vector<bool> reachedBlocks;
    std::size_t steps = 0;
    bool budgetExhausted = false;
    /** The wall-clock deadline (or a fault injection) cut exploration
     * short; resolved targets and reached blocks are partial. */
    bool deadlineExpired = false;
};

/**
 * Under-constrained symbolic explorer over FIR, in the spirit of UC-KLEE
 * as used by FITS: analysis starts directly at the entry of the function
 * under analysis with its arguments unconstrained, propagates constants
 * through temporaries and registers, folds binary operations, reads
 * initialized image memory for loads from constant addresses (which is
 * how jump tables and function-pointer tables resolve), and forks on
 * branches whose condition is not constant. Exploration is bounded by a
 * statement budget and a per-block visit bound, trading completeness for
 * the tractable memory behaviour the paper requires.
 */
class UcseExplorer
{
  public:
    explicit UcseExplorer(const bin::BinaryImage &image,
                          UcseConfig config = {});

    /** Explore fn from its entry. */
    UcseResult explore(const ir::Function &fn) const;

  private:
    const bin::BinaryImage &image_;
    UcseConfig config_;
};

} // namespace fits::analysis

#endif // FITS_ANALYSIS_UCSE_HH_
