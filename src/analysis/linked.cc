#include "linked.hh"

namespace fits::analysis {

LinkedProgram::LinkedProgram(const bin::BinaryImage &main,
                             const std::vector<bin::BinaryImage> &libraries)
    : main_(&main)
{
    images_.push_back(&main);
    for (const auto &lib : libraries)
        images_.push_back(&lib);
    link();
}

LinkedProgram::LinkedProgram(
    const bin::BinaryImage &main,
    const std::vector<std::shared_ptr<const bin::BinaryImage>> &libraries)
    : main_(&main)
{
    images_.push_back(&main);
    for (const auto &lib : libraries)
        images_.push_back(lib.get());
    link();
}

void
LinkedProgram::link()
{
    for (const bin::BinaryImage *image : images_) {
        for (const auto &fn : image->program.functions()) {
            const FnId id = static_cast<FnId>(fns_.size());
            fns_.push_back({image, &fn});
            byEntry_[image][fn.entry] = id;
            // Library functions export their names; the first exporter
            // wins (standard dynamic-linker binding order).
            if (image != main_ && !fn.name.empty() &&
                exports_.find(fn.name) == exports_.end()) {
                exports_[fn.name] = id;
            }
        }
    }
}

std::optional<FnId>
LinkedProgram::fnIdOf(const bin::BinaryImage *image, ir::Addr entry) const
{
    auto imgIt = byEntry_.find(image);
    if (imgIt == byEntry_.end())
        return std::nullopt;
    auto it = imgIt->second.find(entry);
    if (it == imgIt->second.end())
        return std::nullopt;
    return it->second;
}

LinkedProgram::CallTarget
LinkedProgram::resolve(const bin::BinaryImage *image,
                       ir::Addr target) const
{
    CallTarget result;

    // PLT stub: bind by name against library exports.
    if (const bin::Import *imp = image->importAt(target)) {
        result.name = imp->name;
        result.library = imp->library;
        auto it = exports_.find(imp->name);
        if (it != exports_.end()) {
            result.kind = CallTarget::Kind::Function;
            result.fn = it->second;
        } else {
            result.kind = CallTarget::Kind::ExternalImport;
        }
        return result;
    }

    // Local function entry.
    if (auto id = fnIdOf(image, target)) {
        result.kind = CallTarget::Kind::Function;
        result.fn = *id;
        result.name = fns_[*id].fn->name;
        return result;
    }

    return result; // Unknown
}

} // namespace fits::analysis
