#ifndef FITS_ANALYSIS_BACKTRACK_HH_
#define FITS_ANALYSIS_BACKTRACK_HH_

#include <optional>
#include <string>
#include <vector>

#include "analysis/cfg.hh"
#include "analysis/constmap.hh"
#include "binary/image.hh"

namespace fits::analysis {

/** A call-site argument classified as a string (feature 10/11). */
struct StringArg
{
    /** The constant pointer recovered by backtracking (the paper's PT). */
    std::uint64_t addr = 0;
    /** The string content (read directly from .rodata, or through the
     * data-section pointer table — the paper's MT indirection). */
    std::string text;
    /** True when resolution went through the MT indirection. */
    bool viaDataSection = false;
};

/**
 * Backward argument resolution at call sites, implementing the Table-2
 * rules of the paper: registers are tracked backward through PUT,
 * temporaries through GET/Binop/Load until the value is a constant.
 *
 * Binops with one constant operand accumulate an additive offset and
 * keep tracking the other side (indexed addressing). Loads from
 * constant .rodata addresses fold (read-only bytes are stable); loads
 * from the writable data section stop the walk and yield the slot
 * address, so that classifyString() can apply the paper's PT -> MT
 * global-offset-table-style indirection. Tracking aborts at calls that
 * clobber the tracked register.
 *
 * Multiple predecessors are all explored (bounded), so a site can
 * resolve to several constants; all are returned.
 */
class ArgBacktracker
{
  public:
    ArgBacktracker(const bin::BinaryImage &image, const ir::Function &fn,
                   const Cfg &cfg, const TmpConstMap &consts,
                   std::size_t maxSteps = 512);

    /**
     * Resolve the possible constant values of argument register argIdx
     * at the call statement (blockIdx, stmtIdx).
     */
    std::vector<std::uint64_t> resolveArg(std::size_t blockIdx,
                                          std::size_t stmtIdx,
                                          int argIdx) const;

    /**
     * Classify a resolved constant per the paper: a pointer into
     * .rodata is a string; a pointer into the data section is
     * dereferenced once (MT) and, if that is a mapped address, the hint
     * string behind it is read. Non-printable or unmapped content is
     * rejected.
     */
    std::optional<StringArg> classifyString(std::uint64_t value) const;

  private:
    struct Track
    {
        bool isReg = true;
        ir::RegId reg = 0;
        ir::TmpId tmp = 0;
        std::int64_t offset = 0;
    };

    void walk(std::size_t blockIdx, std::size_t beforeStmt, Track track,
              std::vector<std::uint64_t> &results,
              std::vector<std::uint8_t> &visited,
              std::size_t &steps) const;

    const bin::BinaryImage &image_;
    const ir::Function &fn_;
    const Cfg &cfg_;
    const TmpConstMap &consts_;
    std::size_t maxSteps_;
};

} // namespace fits::analysis

#endif // FITS_ANALYSIS_BACKTRACK_HH_
