#include "function_analysis.hh"

namespace fits::analysis {

FunctionAnalysis
FunctionAnalysis::analyze(const bin::BinaryImage &image,
                          const ir::Function &fn,
                          const UcseConfig &config)
{
    FunctionAnalysis fa;
    fa.image = &image;
    fa.fn = &fn;

    UcseExplorer explorer(image, config);
    fa.ucse = explorer.explore(fn);

    fa.cfg = Cfg::build(fn, &fa.ucse.resolvedJumps);
    fa.loops = analyzeLoops(fa.cfg, fn);
    fa.consts = TmpConstMap::compute(fn, &image);
    fa.params = inferParams(fa.cfg, fn);
    fa.flow = ReachingDefs::analyze(fa.cfg, fn, fa.consts,
                                    fa.params.count, config.deadline);

    // Parameter dependence of loop-controlling branches (feature 7).
    for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
        if (b >= fa.loops.controlsLoop.size() ||
            !fa.loops.controlsLoop[b]) {
            continue;
        }
        const auto &stmts = fn.blocks[b].stmts;
        for (std::size_t s = 0; s < stmts.size(); ++s) {
            if (stmts[s].kind == ir::StmtKind::Branch)
                fa.loopDepMask |= fa.flow.stmtDeps[b][s];
        }
    }
    fa.flow.loopDepMask = fa.loopDepMask;

    return fa;
}

} // namespace fits::analysis
