#include "backtrack.hh"

#include <algorithm>

#include "ir/types.hh"

namespace fits::analysis {

namespace {

using ir::Operand;
using ir::Stmt;
using ir::StmtKind;

constexpr std::size_t kMaxResults = 8;

bool
isPrintable(const std::string &text)
{
    if (text.empty() || text.size() > 256)
        return false;
    return std::all_of(text.begin(), text.end(), [](char c) {
        return c >= 0x20 && c < 0x7f;
    });
}

void
addResult(std::vector<std::uint64_t> &results, std::uint64_t v)
{
    if (results.size() >= kMaxResults)
        return;
    if (std::find(results.begin(), results.end(), v) == results.end())
        results.push_back(v);
}

} // namespace

ArgBacktracker::ArgBacktracker(const bin::BinaryImage &image,
                               const ir::Function &fn, const Cfg &cfg,
                               const TmpConstMap &consts,
                               std::size_t maxSteps)
    : image_(image), fn_(fn), cfg_(cfg), consts_(consts),
      maxSteps_(maxSteps)
{
}

void
ArgBacktracker::walk(std::size_t blockIdx, std::size_t beforeStmt,
                     Track track, std::vector<std::uint64_t> &results,
                     std::vector<std::uint8_t> &visited,
                     std::size_t &steps) const
{
    if (results.size() >= kMaxResults)
        return;

    const auto &stmts = fn_.blocks[blockIdx].stmts;
    std::size_t s = beforeStmt;
    while (s > 0) {
        --s;
        if (++steps > maxSteps_)
            return;
        const Stmt &stmt = stmts[s];

        if (track.isReg) {
            if (stmt.kind == StmtKind::Put && stmt.reg == track.reg) {
                if (stmt.a.isImm()) {
                    addResult(results,
                              stmt.a.imm +
                                  static_cast<std::uint64_t>(
                                      track.offset));
                    return;
                }
                if (auto v = consts_.valueOf(stmt.a)) {
                    addResult(results,
                              *v + static_cast<std::uint64_t>(
                                       track.offset));
                    return;
                }
                track.isReg = false;
                track.tmp = stmt.a.tmp;
                continue;
            }
            if (stmt.kind == StmtKind::Call &&
                (track.reg < ir::kNumArgRegs ||
                 track.reg == ir::kRetReg)) {
                // The callee clobbered the tracked register; the value
                // is a runtime return value, not a constant.
                return;
            }
        } else {
            if (!stmt.definesTmp() || stmt.dst != track.tmp)
                continue;
            switch (stmt.kind) {
              case StmtKind::Const:
                addResult(results,
                          stmt.a.imm +
                              static_cast<std::uint64_t>(track.offset));
                return;
              case StmtKind::Get:
                track.isReg = true;
                track.reg = stmt.reg;
                continue;
              case StmtKind::Binop: {
                auto lhs = consts_.valueOf(stmt.a);
                auto rhs = consts_.valueOf(stmt.b);
                if (lhs && rhs) {
                    addResult(results,
                              ir::evalBinOp(stmt.op, *lhs, *rhs) +
                                  static_cast<std::uint64_t>(
                                      track.offset));
                    return;
                }
                // Additive indexed addressing: keep tracking the
                // non-constant side and accumulate the offset.
                if (stmt.op == ir::BinOp::Add && rhs && stmt.a.isTmp()) {
                    track.offset += static_cast<std::int64_t>(*rhs);
                    track.tmp = stmt.a.tmp;
                    continue;
                }
                if (stmt.op == ir::BinOp::Add && lhs && stmt.b.isTmp()) {
                    track.offset += static_cast<std::int64_t>(*lhs);
                    track.tmp = stmt.b.tmp;
                    continue;
                }
                if (stmt.op == ir::BinOp::Sub && rhs && stmt.a.isTmp()) {
                    track.offset -= static_cast<std::int64_t>(*rhs);
                    track.tmp = stmt.a.tmp;
                    continue;
                }
                return; // non-additive on symbolic input: give up
              }
              case StmtKind::Load: {
                auto addr = consts_.valueOf(stmt.a);
                if (!addr)
                    return;
                if (image_.isRodata(*addr)) {
                    if (auto word = image_.readWord(*addr)) {
                        addResult(results,
                                  *word + static_cast<std::uint64_t>(
                                              track.offset));
                    }
                    return;
                }
                // Writable data: stop at the slot address (PT); the
                // MT indirection happens in classifyString().
                addResult(results,
                          *addr + static_cast<std::uint64_t>(
                                      track.offset));
                return;
              }
              default:
                return;
            }
        }
    }

    // Reached the block start while still tracking: continue into every
    // predecessor not yet visited with this tracking state.
    for (std::size_t p : cfg_.preds(blockIdx)) {
        const std::size_t key =
            p * 2 + (track.isReg ? 0 : 1);
        // visited is indexed [block * 2 + isTmp]; the tracked id is
        // folded in coarsely: revisiting a block with any state is
        // cut off after a few entries to bound the walk.
        if (visited[key] >= 2)
            continue;
        ++visited[key];
        walk(p, fn_.blocks[p].stmts.size(), track, results, visited,
             steps);
    }
}

std::vector<std::uint64_t>
ArgBacktracker::resolveArg(std::size_t blockIdx, std::size_t stmtIdx,
                           int argIdx) const
{
    std::vector<std::uint64_t> results;
    if (blockIdx >= fn_.blocks.size() || argIdx < 0 ||
        argIdx >= ir::kNumArgRegs) {
        return results;
    }
    Track track;
    track.isReg = true;
    track.reg = static_cast<ir::RegId>(argIdx);
    std::vector<std::uint8_t> visited(fn_.blocks.size() * 2, 0);
    std::size_t steps = 0;
    walk(blockIdx, stmtIdx, track, results, visited, steps);
    return results;
}

std::optional<StringArg>
ArgBacktracker::classifyString(std::uint64_t value) const
{
    if (image_.isRodata(value)) {
        auto text = image_.readCString(value);
        if (text && isPrintable(*text)) {
            StringArg arg;
            arg.addr = value;
            arg.text = *text;
            return arg;
        }
        return std::nullopt;
    }

    if (image_.isData(value)) {
        // PT points into the data section: dereference once (MT) and
        // read the hint string behind it, GOT-style.
        auto mt = image_.readWord(value);
        if (!mt || !image_.isMapped(*mt))
            return std::nullopt;
        auto text = image_.readCString(*mt);
        if (text && isPrintable(*text)) {
            StringArg arg;
            arg.addr = value;
            arg.text = *text;
            arg.viaDataSection = true;
            return arg;
        }
    }

    return std::nullopt;
}

} // namespace fits::analysis
