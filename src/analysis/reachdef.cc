#include "reachdef.hh"

#include <algorithm>
#include <deque>
#include <unordered_map>

#include "chaos/chaos.hh"
#include "ir/types.hh"
#include "obs/metrics.hh"

namespace fits::analysis {

namespace {

using ir::kNumArgRegs;
using ir::Operand;
using ir::Stmt;
using ir::StmtKind;

/** Dense bitset over definition ids. */
class DefSet
{
  public:
    explicit DefSet(std::size_t bits = 0)
        : words_((bits + 63) / 64, 0)
    {}

    void
    set(std::size_t i)
    {
        words_[i / 64] |= 1ULL << (i % 64);
    }

    void
    clear(std::size_t i)
    {
        words_[i / 64] &= ~(1ULL << (i % 64));
    }

    bool
    test(std::size_t i) const
    {
        return (words_[i / 64] >> (i % 64)) & 1;
    }

    /** this |= other; returns true if this changed. */
    bool
    unionWith(const DefSet &other)
    {
        bool changed = false;
        for (std::size_t w = 0; w < words_.size(); ++w) {
            const std::uint64_t merged = words_[w] | other.words_[w];
            if (merged != words_[w]) {
                words_[w] = merged;
                changed = true;
            }
        }
        return changed;
    }

    /** this &= ~other. */
    void
    subtract(const DefSet &other)
    {
        for (std::size_t w = 0; w < words_.size(); ++w)
            words_[w] &= ~other.words_[w];
    }

    bool
    operator==(const DefSet &other) const
    {
        return words_ == other.words_;
    }

  private:
    std::vector<std::uint64_t> words_;
};

/** All definitions made by one statement. */
struct StmtDefs
{
    // At most two: Call defines the return register and unknown memory.
    std::uint32_t ids[2];
    int count = 0;
};

} // namespace

ReachingDefs::Result
ReachingDefs::analyze(const Cfg &cfg, const ir::Function &fn,
                      const TmpConstMap &consts, int numParams,
                      support::Deadline deadline)
{
    const obs::ScopedTimer kernelTimer("kernel.reachdef");
    Result result;
    const std::size_t n = fn.blocks.size();

    // Fault injection behaves like a deadline that expired before the
    // first iteration: every structure below is still fully sized, but
    // neither fixpoint refines.
    result.deadlineExpired = chaos::shouldInject("flow.reachdef");
    std::size_t tick = 0;

    // ---- Collect definitions -------------------------------------
    // Virtual entry definitions for every argument register first.
    for (int i = 0; i < kNumArgRegs; ++i) {
        Definition d;
        d.target = Definition::Target::Reg;
        d.reg = static_cast<ir::RegId>(i);
        d.param = i;
        result.defs.push_back(d);
    }

    // Map (block, stmt) -> def ids.
    std::vector<std::vector<StmtDefs>> stmtDefs(n);
    for (std::size_t b = 0; b < n; ++b) {
        stmtDefs[b].resize(fn.blocks[b].stmts.size());
        for (std::size_t s = 0; s < fn.blocks[b].stmts.size(); ++s) {
            const Stmt &stmt = fn.blocks[b].stmts[s];
            auto add = [&](Definition d) {
                d.block = b;
                d.stmt = s;
                auto &slot = stmtDefs[b][s];
                slot.ids[slot.count++] =
                    static_cast<std::uint32_t>(result.defs.size());
                result.defs.push_back(d);
            };

            switch (stmt.kind) {
              case StmtKind::Get:
              case StmtKind::Const:
              case StmtKind::Binop:
              case StmtKind::Load: {
                Definition d;
                d.target = Definition::Target::Tmp;
                d.tmp = stmt.dst;
                add(d);
                break;
              }
              case StmtKind::Put: {
                Definition d;
                d.target = Definition::Target::Reg;
                d.reg = stmt.reg;
                add(d);
                break;
              }
              case StmtKind::Store: {
                Definition d;
                if (auto addr = consts.valueOf(stmt.a)) {
                    d.target = Definition::Target::MemConst;
                    d.memAddr = *addr;
                } else {
                    d.target = Definition::Target::MemUnknown;
                }
                add(d);
                break;
              }
              case StmtKind::Call: {
                Definition ret;
                ret.target = Definition::Target::Reg;
                ret.reg = ir::kRetReg;
                add(ret);
                Definition mem;
                mem.target = Definition::Target::MemUnknown;
                add(mem);
                break;
              }
              default:
                break;
            }
        }
    }

    const std::size_t nDefs = result.defs.size();

    // ---- Index defs by target for kill computation and use lookup --
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> byReg;
    std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> byTmp;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> byMem;
    std::vector<std::uint32_t> memUnknownDefs;
    std::vector<std::uint32_t> allMemDefs;
    for (std::uint32_t i = 0; i < nDefs; ++i) {
        const Definition &d = result.defs[i];
        switch (d.target) {
          case Definition::Target::Reg:
            byReg[d.reg].push_back(i);
            break;
          case Definition::Target::Tmp:
            byTmp[d.tmp].push_back(i);
            break;
          case Definition::Target::MemConst:
            byMem[d.memAddr].push_back(i);
            allMemDefs.push_back(i);
            break;
          case Definition::Target::MemUnknown:
            memUnknownDefs.push_back(i);
            allMemDefs.push_back(i);
            break;
        }
    }

    auto killSetOf = [&](std::uint32_t defId, DefSet &kill) {
        const Definition &d = result.defs[defId];
        switch (d.target) {
          case Definition::Target::Reg:
            for (std::uint32_t other : byReg[d.reg]) {
                if (other != defId)
                    kill.set(other);
            }
            break;
          case Definition::Target::Tmp:
            for (std::uint32_t other : byTmp[d.tmp]) {
                if (other != defId)
                    kill.set(other);
            }
            break;
          case Definition::Target::MemConst:
            for (std::uint32_t other : byMem[d.memAddr]) {
                if (other != defId)
                    kill.set(other);
            }
            break;
          case Definition::Target::MemUnknown:
            break; // may-aliases kill nothing
        }
    };

    // ---- Block-level GEN/KILL, then IN/OUT fixpoint ----------------
    std::vector<DefSet> gen(n, DefSet(nDefs));
    std::vector<DefSet> kill(n, DefSet(nDefs));
    for (std::size_t b = 0; b < n; ++b) {
        for (std::size_t s = 0; s < fn.blocks[b].stmts.size(); ++s) {
            for (int k = 0; k < stmtDefs[b][s].count; ++k) {
                const std::uint32_t id = stmtDefs[b][s].ids[k];
                DefSet dkill(nDefs);
                killSetOf(id, dkill);
                gen[b].subtract(dkill);
                gen[b].set(id);
                kill[b].unionWith(dkill);
            }
        }
    }

    std::vector<DefSet> in(n, DefSet(nDefs));
    std::vector<DefSet> out(n, DefSet(nDefs));
    // The entry receives the virtual parameter definitions.
    DefSet entryIn(nDefs);
    for (int i = 0; i < kNumArgRegs; ++i)
        entryIn.set(static_cast<std::size_t>(i));
    if (n > 0)
        in[cfg.entry()] = entryIn;

    // Reverse-post-order worklist instead of round-robin whole-CFG
    // sweeps: each pop recomputes one block's IN/OUT from its
    // predecessors and re-enqueues the successors whose input just
    // changed. The equations are monotone over a finite lattice, so
    // any processing order converges to the same unique least
    // fixpoint as the sweeps — RPO seeding just reaches it in
    // near-minimal visits (one pass for acyclic regions). Blocks
    // unreachable from the entry are seeded too, in index order:
    // their OUT = GEN \ KILL feeds the IN of any reachable successor
    // exactly as the sweeps propagated it.
    if (!result.deadlineExpired && n > 0) {
        std::vector<std::size_t> order;
        order.reserve(n);
        std::vector<char> seen(n, 0);
        std::vector<std::pair<std::size_t, std::size_t>> stack;
        seen[cfg.entry()] = 1;
        stack.emplace_back(cfg.entry(), 0);
        while (!stack.empty()) {
            auto &[b, next] = stack.back();
            const auto &succs = cfg.succs(b);
            if (next < succs.size()) {
                const std::size_t succ = succs[next++];
                if (!seen[succ]) {
                    seen[succ] = 1;
                    stack.emplace_back(succ, 0);
                }
            } else {
                order.push_back(b);
                stack.pop_back();
            }
        }
        std::reverse(order.begin(), order.end());
        for (std::size_t b = 0; b < n; ++b) {
            if (!seen[b])
                order.push_back(b);
        }

        std::deque<std::size_t> work(order.begin(), order.end());
        std::vector<char> queued(n, 1);
        while (!work.empty()) {
            if (deadline.expiredCoarse(tick++)) {
                result.deadlineExpired = true;
                break;
            }
            const std::size_t b = work.front();
            work.pop_front();
            queued[b] = 0;

            DefSet newIn = b == cfg.entry() ? entryIn : DefSet(nDefs);
            for (std::size_t p : cfg.preds(b))
                newIn.unionWith(out[p]);
            DefSet newOut = newIn;
            newOut.subtract(kill[b]);
            newOut.unionWith(gen[b]);

            if (!(newIn == in[b]))
                in[b] = std::move(newIn);
            if (!(newOut == out[b])) {
                out[b] = std::move(newOut);
                for (std::size_t succ : cfg.succs(b)) {
                    if (!queued[succ]) {
                        queued[succ] = 1;
                        work.push_back(succ);
                    }
                }
            }
        }
    }

    // ---- Per-statement use-def chains (the DDG) --------------------
    result.useDefs.resize(n);
    result.stmtDeps.resize(n);
    for (std::size_t b = 0; b < n; ++b) {
        result.useDefs[b].resize(fn.blocks[b].stmts.size());
        result.stmtDeps[b].assign(fn.blocks[b].stmts.size(), 0);

        DefSet live = in[b];
        for (std::size_t s = 0; s < fn.blocks[b].stmts.size(); ++s) {
            const Stmt &stmt = fn.blocks[b].stmts[s];
            auto &uses = result.useDefs[b][s];

            auto useReg = [&](ir::RegId r, bool includeVirtual) {
                auto it = byReg.find(r);
                if (it == byReg.end())
                    return;
                for (std::uint32_t id : it->second) {
                    if (!live.test(id))
                        continue;
                    if (!includeVirtual && result.defs[id].isVirtual())
                        continue;
                    uses.push_back(id);
                }
            };
            auto useTmp = [&](const Operand &op) {
                if (!op.isTmp())
                    return;
                auto it = byTmp.find(op.tmp);
                if (it == byTmp.end())
                    return;
                for (std::uint32_t id : it->second) {
                    if (live.test(id))
                        uses.push_back(id);
                }
            };
            auto useMem = [&](const Operand &addrOp) {
                if (auto addr = consts.valueOf(addrOp)) {
                    auto it = byMem.find(*addr);
                    if (it != byMem.end()) {
                        for (std::uint32_t id : it->second) {
                            if (live.test(id))
                                uses.push_back(id);
                        }
                    }
                    for (std::uint32_t id : memUnknownDefs) {
                        if (live.test(id))
                            uses.push_back(id);
                    }
                } else {
                    // Unknown address: may read any memory cell.
                    for (std::uint32_t id : allMemDefs) {
                        if (live.test(id))
                            uses.push_back(id);
                    }
                }
            };

            switch (stmt.kind) {
              case StmtKind::Get:
                useReg(stmt.reg, true);
                break;
              case StmtKind::Put:
                useTmp(stmt.a);
                break;
              case StmtKind::Const:
                break;
              case StmtKind::Binop:
                useTmp(stmt.a);
                useTmp(stmt.b);
                break;
              case StmtKind::Load:
                useTmp(stmt.a);
                useMem(stmt.a);
                break;
              case StmtKind::Store:
                useTmp(stmt.a);
                useTmp(stmt.b);
                break;
              case StmtKind::Call:
                // Explicitly materialized arguments only.
                for (int r = 0; r < kNumArgRegs; ++r)
                    useReg(static_cast<ir::RegId>(r), false);
                if (stmt.indirect)
                    useTmp(stmt.a);
                break;
              case StmtKind::Branch:
                useTmp(stmt.a);
                break;
              case StmtKind::Jump:
                if (stmt.indirect)
                    useTmp(stmt.a);
                break;
              case StmtKind::Ret:
                useReg(ir::kRetReg, true);
                break;
            }

            // Apply this statement's definitions to the running set.
            for (int k = 0; k < stmtDefs[b][s].count; ++k) {
                const std::uint32_t id = stmtDefs[b][s].ids[k];
                DefSet dkill(nDefs);
                killSetOf(id, dkill);
                live.subtract(dkill);
                live.set(id);
            }
        }
    }

    // ---- Parameter dependence over the DDG -------------------------
    result.defDeps.assign(nDefs, 0);
    for (int i = 0; i < kNumArgRegs && i < numParams; ++i)
        result.defDeps[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(1u << i);

    // def id -> statements that use it.
    std::vector<std::vector<std::pair<std::size_t, std::size_t>>>
        defToUses(nDefs);
    for (std::size_t b = 0; b < n; ++b) {
        for (std::size_t s = 0; s < result.useDefs[b].size(); ++s) {
            for (std::uint32_t id : result.useDefs[b][s])
                defToUses[id].emplace_back(b, s);
        }
    }

    // Worklist over statements until the def masks stabilize.
    std::vector<std::pair<std::size_t, std::size_t>> worklist;
    if (!result.deadlineExpired) {
        for (std::size_t b = 0; b < n; ++b) {
            for (std::size_t s = 0; s < result.useDefs[b].size(); ++s)
                worklist.emplace_back(b, s);
        }
    }
    while (!worklist.empty()) {
        if (deadline.expiredCoarse(tick++)) {
            result.deadlineExpired = true;
            break;
        }
        const auto [b, s] = worklist.back();
        worklist.pop_back();
        std::uint8_t mask = 0;
        for (std::uint32_t id : result.useDefs[b][s])
            mask |= result.defDeps[id];
        result.stmtDeps[b][s] = mask;
        for (int k = 0; k < stmtDefs[b][s].count; ++k) {
            const std::uint32_t id = stmtDefs[b][s].ids[k];
            const std::uint8_t merged =
                static_cast<std::uint8_t>(result.defDeps[id] | mask);
            if (merged != result.defDeps[id]) {
                result.defDeps[id] = merged;
                for (const auto &use : defToUses[id])
                    worklist.push_back(use);
            }
        }
    }

    // Branch dependence summary.
    for (std::size_t b = 0; b < n; ++b) {
        for (std::size_t s = 0; s < fn.blocks[b].stmts.size(); ++s) {
            if (fn.blocks[b].stmts[s].kind == StmtKind::Branch)
                result.branchDepMask |= result.stmtDeps[b][s];
        }
    }

    return result;
}

} // namespace fits::analysis
