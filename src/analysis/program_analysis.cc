#include "program_analysis.hh"

namespace fits::analysis {

ProgramAnalysis
ProgramAnalysis::analyze(const LinkedProgram &linked,
                         const UcseConfig &config)
{
    ProgramAnalysis pa;
    pa.linked = &linked;
    pa.fns.reserve(linked.fnCount());
    for (FnId id = 0; id < linked.fnCount(); ++id) {
        const auto &ref = linked.fn(id);
        pa.fns.push_back(FunctionAnalysis::analyze(*ref.image, *ref.fn,
                                                   config));
    }

    std::unordered_map<FnId, const UcseResult *> ucseByFn;
    for (FnId id = 0; id < linked.fnCount(); ++id)
        ucseByFn[id] = &pa.fns[id].ucse;
    pa.callGraph = CallGraph::build(linked, &ucseByFn);
    return pa;
}

} // namespace fits::analysis
