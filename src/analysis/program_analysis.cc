#include "program_analysis.hh"

#include <cassert>

namespace fits::analysis {

ProgramAnalysis
ProgramAnalysis::analyze(const LinkedProgram &linked,
                         const UcseConfig &config)
{
    std::vector<FunctionAnalysis> fns;
    fns.reserve(linked.fnCount());
    for (FnId id = 0; id < linked.fnCount(); ++id) {
        const auto &ref = linked.fn(id);
        fns.push_back(FunctionAnalysis::analyze(*ref.image, *ref.fn,
                                                config));
    }
    return fromFunctionAnalyses(linked, std::move(fns));
}

ProgramAnalysis
ProgramAnalysis::fromFunctionAnalyses(const LinkedProgram &linked,
                                      std::vector<FunctionAnalysis> fns)
{
    assert(fns.size() == linked.fnCount());
    ProgramAnalysis pa;
    pa.linked = &linked;
    pa.fns = std::move(fns);

    std::unordered_map<FnId, const UcseResult *> ucseByFn;
    for (FnId id = 0; id < linked.fnCount(); ++id)
        ucseByFn[id] = &pa.fns[id].ucse;
    pa.callGraph = CallGraph::build(linked, &ucseByFn);
    return pa;
}

} // namespace fits::analysis
