#include "loops.hh"

#include <algorithm>

namespace fits::analysis {

bool
LoopInfo::dominates(std::size_t a, std::size_t b) const
{
    if (b >= idom.size() || idom[b] == npos)
        return false;
    std::size_t cur = b;
    while (true) {
        if (cur == a)
            return true;
        if (idom[cur] == cur) // reached the entry
            return false;
        cur = idom[cur];
        if (cur == npos)
            return false;
    }
}

namespace {

/** Reverse-postorder numbering of reachable blocks. */
void
postorder(const Cfg &cfg, std::size_t block, std::vector<bool> &seen,
          std::vector<std::size_t> &order)
{
    seen[block] = true;
    for (std::size_t s : cfg.succs(block)) {
        if (!seen[s])
            postorder(cfg, s, seen, order);
    }
    order.push_back(block);
}

} // namespace

LoopInfo
analyzeLoops(const Cfg &cfg, const ir::Function &fn)
{
    const std::size_t n = cfg.numBlocks();
    LoopInfo info;
    info.idom.assign(n, LoopInfo::npos);
    info.inLoop.assign(n, false);
    info.controlsLoop.assign(n, false);
    if (n == 0)
        return info;

    // Postorder, then RPO index per block.
    std::vector<bool> seen(n, false);
    std::vector<std::size_t> order;
    order.reserve(n);
    postorder(cfg, cfg.entry(), seen, order);
    std::vector<std::size_t> rpoIndex(n, LoopInfo::npos);
    {
        std::size_t idx = 0;
        for (auto it = order.rbegin(); it != order.rend(); ++it)
            rpoIndex[*it] = idx++;
    }

    // Cooper/Harvey/Kennedy "engineering a simple, fast dominator
    // algorithm" fixpoint.
    auto intersect = [&](std::size_t a, std::size_t b) {
        while (a != b) {
            while (rpoIndex[a] > rpoIndex[b])
                a = info.idom[a];
            while (rpoIndex[b] > rpoIndex[a])
                b = info.idom[b];
        }
        return a;
    };

    info.idom[cfg.entry()] = cfg.entry();
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto it = order.rbegin(); it != order.rend(); ++it) {
            const std::size_t b = *it;
            if (b == cfg.entry())
                continue;
            std::size_t newIdom = LoopInfo::npos;
            for (std::size_t p : cfg.preds(b)) {
                if (!seen[p] || info.idom[p] == LoopInfo::npos)
                    continue;
                newIdom = newIdom == LoopInfo::npos
                              ? p
                              : intersect(p, newIdom);
            }
            if (newIdom != LoopInfo::npos && info.idom[b] != newIdom) {
                info.idom[b] = newIdom;
                changed = true;
            }
        }
    }

    // Back edges: a -> h where h dominates a.
    for (std::size_t a = 0; a < n; ++a) {
        if (!seen[a])
            continue;
        for (std::size_t h : cfg.succs(a)) {
            if (info.dominates(h, a))
                info.backEdges.emplace_back(a, h);
        }
    }

    // Natural loop bodies: header plus everything reaching the latch
    // without passing through the header.
    for (const auto &[latch, header] : info.backEdges) {
        info.inLoop[header] = true;
        std::vector<std::size_t> stack;
        if (!info.inLoop[latch] || latch == header) {
            // (still walk: latch may already be in another loop)
        }
        stack.push_back(latch);
        std::vector<bool> visited(n, false);
        visited[header] = true;
        while (!stack.empty()) {
            const std::size_t b = stack.back();
            stack.pop_back();
            if (visited[b])
                continue;
            visited[b] = true;
            info.inLoop[b] = true;
            for (std::size_t p : cfg.preds(b))
                stack.push_back(p);
        }
    }

    // Loop-controlling branches: headers and latches containing a
    // conditional side exit.
    auto containsBranch = [&](std::size_t b) {
        for (const auto &stmt : fn.blocks[b].stmts) {
            if (stmt.kind == ir::StmtKind::Branch)
                return true;
        }
        return false;
    };
    for (const auto &[latch, header] : info.backEdges) {
        if (containsBranch(header))
            info.controlsLoop[header] = true;
        if (containsBranch(latch))
            info.controlsLoop[latch] = true;
    }

    return info;
}

} // namespace fits::analysis
