#ifndef FITS_ANALYSIS_PARAMS_HH_
#define FITS_ANALYSIS_PARAMS_HH_

#include <cstdint>

#include "analysis/cfg.hh"

namespace fits::analysis {

/** Result of parameter inference for one function. */
struct ParamInfo
{
    /** Bit i set iff arg register r_i is read before being written on
     * some path from the entry. */
    std::uint8_t usedMask = 0;

    /** Inferred parameter count: highest used arg register + 1 (the
     * ABI assigns argument registers contiguously). */
    int count = 0;
};

/**
 * Infer how many register arguments a function takes, the standard
 * read-before-write analysis over the argument registers: a GET of an
 * argument register at a point where no path from the entry has yet
 * PUT it must be reading a caller-provided value. Stripped binaries
 * have no signatures, so this is what real tools (angr, IDA) do too.
 */
ParamInfo inferParams(const Cfg &cfg, const ir::Function &fn);

} // namespace fits::analysis

#endif // FITS_ANALYSIS_PARAMS_HH_
