#include "params.hh"

#include "ir/types.hh"

namespace fits::analysis {

ParamInfo
inferParams(const Cfg &cfg, const ir::Function &fn)
{
    using ir::kNumArgRegs;
    const std::size_t n = fn.blocks.size();
    ParamInfo info;
    if (n == 0)
        return info;

    constexpr std::uint8_t kAll = (1u << kNumArgRegs) - 1;

    // writtenIn[b]: arg registers written on *all* paths from the entry
    // to the start of b (must-analysis, intersection at joins).
    std::vector<std::uint8_t> writtenIn(n, kAll);
    writtenIn[cfg.entry()] = 0;

    // Per-block transfer: registers PUT anywhere in the block (once a
    // block both reads and writes, the read is handled in the use scan
    // below with intra-block ordering).
    std::vector<std::uint8_t> writeMask(n, 0);
    for (std::size_t b = 0; b < n; ++b) {
        for (const auto &stmt : fn.blocks[b].stmts) {
            if (stmt.kind == ir::StmtKind::Put &&
                stmt.reg < kNumArgRegs) {
                writeMask[b] |= static_cast<std::uint8_t>(1u << stmt.reg);
            }
            // A call clobbers the argument registers.
            if (stmt.kind == ir::StmtKind::Call)
                writeMask[b] = kAll;
        }
    }

    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t b = 0; b < n; ++b) {
            const std::uint8_t out =
                static_cast<std::uint8_t>(writtenIn[b] | writeMask[b]);
            for (std::size_t s : cfg.succs(b)) {
                const std::uint8_t merged =
                    static_cast<std::uint8_t>(writtenIn[s] & out);
                if (merged != writtenIn[s]) {
                    writtenIn[s] = merged;
                    changed = true;
                }
            }
        }
    }

    // Use scan with intra-block ordering.
    const auto reachable = cfg.reachable();
    for (std::size_t b = 0; b < n; ++b) {
        if (!reachable[b])
            continue;
        std::uint8_t written = writtenIn[b];
        for (const auto &stmt : fn.blocks[b].stmts) {
            if (stmt.kind == ir::StmtKind::Get &&
                stmt.reg < kNumArgRegs) {
                const auto bit =
                    static_cast<std::uint8_t>(1u << stmt.reg);
                if ((written & bit) == 0)
                    info.usedMask |= bit;
            } else if (stmt.kind == ir::StmtKind::Put &&
                       stmt.reg < kNumArgRegs) {
                written |= static_cast<std::uint8_t>(1u << stmt.reg);
            } else if (stmt.kind == ir::StmtKind::Call) {
                written = kAll;
            }
        }
    }

    for (int i = 0; i < kNumArgRegs; ++i) {
        if (info.usedMask & (1u << i))
            info.count = i + 1;
    }
    return info;
}

} // namespace fits::analysis
