#ifndef FITS_ANALYSIS_FUNCTION_ANALYSIS_HH_
#define FITS_ANALYSIS_FUNCTION_ANALYSIS_HH_

#include <memory>

#include "analysis/backtrack.hh"
#include "analysis/cfg.hh"
#include "analysis/constmap.hh"
#include "analysis/loops.hh"
#include "analysis/params.hh"
#include "analysis/reachdef.hh"
#include "analysis/ucse.hh"

namespace fits::analysis {

/**
 * All per-function analysis artifacts, computed in dependency order:
 * UCSE exploration (resolving indirect targets), the CFG (with resolved
 * indirect jump edges), dominators/loops, constant temporaries,
 * parameter inference, and reaching definitions with parameter
 * dependence (Algorithm 1 lines 2 and 5-8).
 */
struct FunctionAnalysis
{
    const bin::BinaryImage *image = nullptr;
    const ir::Function *fn = nullptr;

    UcseResult ucse;
    Cfg cfg;
    LoopInfo loops;
    TmpConstMap consts;
    ParamInfo params;
    ReachingDefs::Result flow;

    /** Union of parameter masks at loop-controlling branches. */
    std::uint8_t loopDepMask = 0;

    /** Build everything for one function. */
    static FunctionAnalysis analyze(const bin::BinaryImage &image,
                                    const ir::Function &fn,
                                    const UcseConfig &config = {});

    /** A backtracker bound to this function's artifacts. */
    ArgBacktracker
    backtracker() const
    {
        return ArgBacktracker(*image, *fn, cfg, consts);
    }
};

} // namespace fits::analysis

#endif // FITS_ANALYSIS_FUNCTION_ANALYSIS_HH_
