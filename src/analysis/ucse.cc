#include "ucse.hh"

#include <algorithm>

#include "chaos/chaos.hh"
#include "ir/types.hh"

namespace fits::analysis {

namespace {

using ir::kNumArgRegs;
using ir::kNumRegs;
using ir::Operand;
using ir::Stmt;
using ir::StmtKind;

/** One in-flight path state. */
struct PathState
{
    std::size_t block;
    std::vector<AbsVal> regs;
    std::vector<AbsVal> tmps;
};

AbsVal
evalOperand(const Operand &op, const PathState &state)
{
    if (op.isImm())
        return AbsVal::constant(op.imm);
    if (op.tmp < state.tmps.size())
        return state.tmps[op.tmp];
    return AbsVal::unknown();
}

void
recordTarget(std::unordered_map<Addr, std::vector<Addr>> &map,
             Addr site, Addr target)
{
    auto &targets = map[site];
    if (std::find(targets.begin(), targets.end(), target) ==
        targets.end()) {
        targets.push_back(target);
    }
}

} // namespace

UcseExplorer::UcseExplorer(const bin::BinaryImage &image,
                           UcseConfig config)
    : image_(image), config_(config)
{
}

UcseResult
UcseExplorer::explore(const ir::Function &fn) const
{
    UcseResult result;
    const std::size_t n = fn.blocks.size();
    result.reachedBlocks.assign(n, false);
    if (n == 0)
        return result;

    std::unordered_map<Addr, std::size_t> blockAt;
    for (std::size_t i = 0; i < n; ++i)
        blockAt[fn.blocks[i].addr] = i;

    // Initial state: arguments symbolic (under-constrained), everything
    // else unknown.
    PathState init;
    init.block = 0;
    init.regs.assign(kNumRegs, AbsVal::unknown());
    for (int i = 0; i < kNumArgRegs; ++i)
        init.regs[i] = AbsVal::argument(i);
    init.tmps.assign(fn.numTmps, AbsVal::unknown());

    std::vector<PathState> worklist;
    worklist.push_back(std::move(init));
    std::vector<std::size_t> visits(n, 0);

    if (chaos::shouldInject("ucse.explore")) {
        result.deadlineExpired = true;
        return result;
    }

    std::size_t tick = 0;
    while (!worklist.empty()) {
        if (result.steps >= config_.maxSteps) {
            result.budgetExhausted = true;
            break;
        }
        if (config_.deadline.expiredCoarse(tick++)) {
            result.deadlineExpired = true;
            break;
        }
        PathState state = std::move(worklist.back());
        worklist.pop_back();

        if (visits[state.block] >= config_.maxVisitsPerBlock)
            continue;
        ++visits[state.block];
        result.reachedBlocks[state.block] = true;

        const ir::BasicBlock &block = fn.blocks[state.block];
        bool fellThrough = true;
        bool pathEnded = false;

        for (std::size_t si = 0;
             si < block.stmts.size() && !pathEnded; ++si) {
            ++result.steps;
            const Stmt &stmt = block.stmts[si];
            const Addr stmtAddr = block.stmtAddr(si);

            switch (stmt.kind) {
              case StmtKind::Get:
                state.tmps[stmt.dst] = stmt.reg < state.regs.size()
                                           ? state.regs[stmt.reg]
                                           : AbsVal::unknown();
                break;
              case StmtKind::Put:
                if (stmt.reg < state.regs.size())
                    state.regs[stmt.reg] = evalOperand(stmt.a, state);
                break;
              case StmtKind::Const:
                state.tmps[stmt.dst] = AbsVal::constant(stmt.a.imm);
                break;
              case StmtKind::Binop: {
                const AbsVal lhs = evalOperand(stmt.a, state);
                const AbsVal rhs = evalOperand(stmt.b, state);
                if (lhs.isConst() && rhs.isConst()) {
                    state.tmps[stmt.dst] = AbsVal::constant(
                        ir::evalBinOp(stmt.op, lhs.value, rhs.value));
                } else {
                    state.tmps[stmt.dst] = AbsVal::unknown();
                }
                break;
              }
              case StmtKind::Load: {
                const AbsVal addr = evalOperand(stmt.a, state);
                AbsVal loaded = AbsVal::unknown();
                if (addr.isConst() && image_.isRodata(addr.value)) {
                    // Only read-only memory is stable at runtime; this
                    // is what makes jump tables and function-pointer
                    // tables resolve.
                    if (auto word = image_.readWord(addr.value))
                        loaded = AbsVal::constant(*word);
                }
                state.tmps[stmt.dst] = loaded;
                break;
              }
              case StmtKind::Store:
                // Path-local stores are not modeled; later loads from
                // that address fall back to image bytes or Unknown.
                break;
              case StmtKind::Call: {
                if (stmt.indirect) {
                    const AbsVal target = evalOperand(stmt.a, state);
                    if (target.isConst())
                        recordTarget(result.resolvedCalls, stmtAddr,
                                     target.value);
                }
                // Caller-saved registers are clobbered by the callee;
                // the return value is unconstrained.
                for (int r = 0; r < kNumArgRegs; ++r)
                    state.regs[r] = AbsVal::unknown();
                break;
              }
              case StmtKind::Branch: {
                // Conditional side exit: taken -> target block;
                // not taken -> continue with the next statement.
                const AbsVal cond = evalOperand(stmt.a, state);
                auto taken = blockAt.find(stmt.target);
                const bool haveTaken = taken != blockAt.end();

                if (cond.isConst() && cond.value != 0) {
                    if (haveTaken) {
                        PathState next = state;
                        next.block = taken->second;
                        worklist.push_back(std::move(next));
                    }
                    fellThrough = false;
                    pathEnded = true;
                } else if (!cond.isConst() && haveTaken) {
                    PathState next = state;
                    next.block = taken->second;
                    worklist.push_back(std::move(next));
                }
                // Constant-false or symbolic: keep executing in place.
                break;
              }
              case StmtKind::Jump: {
                Addr target = stmt.target;
                bool haveTarget = !stmt.indirect;
                if (stmt.indirect) {
                    const AbsVal v = evalOperand(stmt.a, state);
                    if (v.isConst()) {
                        recordTarget(result.resolvedJumps, stmtAddr,
                                     v.value);
                        target = v.value;
                        haveTarget = true;
                    }
                }
                if (haveTarget) {
                    auto it = blockAt.find(target);
                    if (it != blockAt.end()) {
                        PathState next = state;
                        next.block = it->second;
                        worklist.push_back(std::move(next));
                    }
                }
                fellThrough = false;
                pathEnded = true;
                break;
              }
              case StmtKind::Ret:
                fellThrough = false;
                pathEnded = true;
                break;
            }
        }

        if (fellThrough && state.block + 1 < n) {
            PathState next = std::move(state);
            next.block += 1;
            worklist.push_back(std::move(next));
        }
    }

    return result;
}

} // namespace fits::analysis
