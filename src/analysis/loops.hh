#ifndef FITS_ANALYSIS_LOOPS_HH_
#define FITS_ANALYSIS_LOOPS_HH_

#include <cstddef>
#include <utility>
#include <vector>

#include "analysis/cfg.hh"

namespace fits::analysis {

/**
 * Dominator and natural-loop information for one CFG, computed with the
 * Cooper/Harvey/Kennedy iterative dominator algorithm followed by
 * back-edge detection (an edge a->b with b dominating a) and natural-
 * loop body collection.
 */
struct LoopInfo
{
    /** Immediate dominator per block; idom[entry] == entry and
     * unreachable blocks get npos. */
    std::vector<std::size_t> idom;

    /** Back edges as (latch, header) pairs. */
    std::vector<std::pair<std::size_t, std::size_t>> backEdges;

    /** Whether the block belongs to any natural loop body. */
    std::vector<bool> inLoop;

    /**
     * Whether the block's terminating conditional branch controls a
     * loop: true for loop headers and latches that end in a Branch.
     * This is what BFV feature 7 ("parameters control loops") keys on.
     */
    std::vector<bool> controlsLoop;

    bool hasLoop() const { return !backEdges.empty(); }

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** True if a dominates b (walks the idom chain). */
    bool dominates(std::size_t a, std::size_t b) const;
};

/** Compute dominators and natural loops for the CFG of fn. */
LoopInfo analyzeLoops(const Cfg &cfg, const ir::Function &fn);

} // namespace fits::analysis

#endif // FITS_ANALYSIS_LOOPS_HH_
