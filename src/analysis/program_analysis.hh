#ifndef FITS_ANALYSIS_PROGRAM_ANALYSIS_HH_
#define FITS_ANALYSIS_PROGRAM_ANALYSIS_HH_

#include <vector>

#include "analysis/callgraph.hh"
#include "analysis/function_analysis.hh"
#include "analysis/linked.hh"

namespace fits::analysis {

/**
 * Whole-program analysis bundle: one FunctionAnalysis per function of a
 * linked program plus the call graph built from their UCSE results.
 * Computed once per binary and shared by the feature extractor and both
 * taint engines. Borrows the LinkedProgram (and transitively the
 * images), which must outlive it.
 */
struct ProgramAnalysis
{
    const LinkedProgram *linked = nullptr;
    std::vector<FunctionAnalysis> fns;
    CallGraph callGraph;

    static ProgramAnalysis analyze(const LinkedProgram &linked,
                                   const UcseConfig &config = {});

    const FunctionAnalysis &
    fn(FnId id) const
    {
        return fns[id];
    }
};

} // namespace fits::analysis

#endif // FITS_ANALYSIS_PROGRAM_ANALYSIS_HH_
