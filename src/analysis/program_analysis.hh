#ifndef FITS_ANALYSIS_PROGRAM_ANALYSIS_HH_
#define FITS_ANALYSIS_PROGRAM_ANALYSIS_HH_

#include <vector>

#include "analysis/callgraph.hh"
#include "analysis/function_analysis.hh"
#include "analysis/linked.hh"

namespace fits::analysis {

/**
 * Whole-program analysis bundle: one FunctionAnalysis per function of a
 * linked program plus the call graph built from their UCSE results.
 * Computed once per binary and shared by the feature extractor and both
 * taint engines. Borrows the LinkedProgram (and transitively the
 * images), which must outlive it.
 */
struct ProgramAnalysis
{
    const LinkedProgram *linked = nullptr;
    std::vector<FunctionAnalysis> fns;
    CallGraph callGraph;

    static ProgramAnalysis analyze(const LinkedProgram &linked,
                                   const UcseConfig &config = {});

    /** Assemble from precomputed per-function analyses (the analysis
     * cache concatenates per-image vectors). `fns` must be in the
     * linked program's FnId order — each element analyzing exactly
     * `linked.fn(i)` — which per-image `program.functions()` chunks in
     * [main, libs...] order reproduce by construction. Only the call
     * graph is computed here. */
    static ProgramAnalysis
    fromFunctionAnalyses(const LinkedProgram &linked,
                         std::vector<FunctionAnalysis> fns);

    const FunctionAnalysis &
    fn(FnId id) const
    {
        return fns[id];
    }
};

} // namespace fits::analysis

#endif // FITS_ANALYSIS_PROGRAM_ANALYSIS_HH_
