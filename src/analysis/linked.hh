#ifndef FITS_ANALYSIS_LINKED_HH_
#define FITS_ANALYSIS_LINKED_HH_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "binary/image.hh"

namespace fits::analysis {

/** Dense id of a function within a LinkedProgram. */
using FnId = std::uint32_t;

/** A function together with the image that contains it. */
struct FnRef
{
    const bin::BinaryImage *image = nullptr;
    const ir::Function *fn = nullptr;
};

/**
 * A pseudo-linked view over the network binary and its dependency
 * libraries, mirroring Algorithm 1's "UCSE-based analysis on Bin, Libs".
 *
 * Each image keeps its own address space; cross-image references only
 * happen through the dynamic import table (PLT stub -> symbol name ->
 * exporting library), exactly as the dynamic linker would bind them.
 * The class provides dense function ids across all images and resolves
 * call targets to functions or external imports.
 */
class LinkedProgram
{
  public:
    LinkedProgram(const bin::BinaryImage &main,
                  const std::vector<bin::BinaryImage> &libraries);

    /** Same view over cache-owned library instances. The caller keeps
     * the shared_ptrs alive for the program's lifetime (the view stores
     * raw pointers either way). */
    LinkedProgram(
        const bin::BinaryImage &main,
        const std::vector<std::shared_ptr<const bin::BinaryImage>>
            &libraries);

    std::size_t fnCount() const { return fns_.size(); }
    const FnRef &fn(FnId id) const { return fns_[id]; }

    /** True if the function lives in the main (network) binary. */
    bool isMainFn(FnId id) const { return fns_[id].image == main_; }

    const bin::BinaryImage &mainImage() const { return *main_; }

    /** Id of the function at `entry` inside `image`, if any. */
    std::optional<FnId> fnIdOf(const bin::BinaryImage *image,
                               ir::Addr entry) const;

    /** Resolution result for a direct (or UCSE-resolved) call target. */
    struct CallTarget
    {
        enum class Kind : std::uint8_t {
            Function,       ///< resolves to a function we have IR for
            ExternalImport, ///< an import with no implementation loaded
            Unknown,        ///< not a function entry or PLT stub
        };

        Kind kind = Kind::Unknown;
        FnId fn = 0;
        /** Symbol name when known: the import name, or the callee's own
         * (unstripped) name. Empty for stripped local callees. */
        std::string name;
        std::string library;
    };

    /**
     * Resolve a call-target address evaluated inside `image`: local
     * function entry, PLT stub (bound by name against library exports),
     * or unknown.
     */
    CallTarget resolve(const bin::BinaryImage *image,
                       ir::Addr target) const;

  private:
    void link();

    const bin::BinaryImage *main_;
    std::vector<const bin::BinaryImage *> images_;
    std::vector<FnRef> fns_;
    /** (image, entry) -> FnId. */
    std::unordered_map<const bin::BinaryImage *,
                       std::unordered_map<ir::Addr, FnId>>
        byEntry_;
    /** Exported symbol name -> FnId (library functions keep names). */
    std::unordered_map<std::string, FnId> exports_;
};

} // namespace fits::analysis

#endif // FITS_ANALYSIS_LINKED_HH_
