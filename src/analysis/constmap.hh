#ifndef FITS_ANALYSIS_CONSTMAP_HH_
#define FITS_ANALYSIS_CONSTMAP_HH_

#include <optional>
#include <unordered_map>

#include "binary/image.hh"
#include "ir/function.hh"

namespace fits::analysis {

/**
 * Flow-insensitive constant values of temporaries in a function.
 *
 * A temporary maps to a constant iff every definition of it evaluates to
 * that same constant using only Const statements, foldable Binops, and
 * Loads from constant addresses in read-only sections (whose initialized
 * bytes cannot change at runtime). Builder- and lifter-produced code
 * assigns each temporary once, so in practice this recovers all
 * address-formation arithmetic, which is what the Table-2 backtracker
 * and the taint engines need.
 */
class TmpConstMap
{
  public:
    /** image may be null; Loads are then never folded. */
    static TmpConstMap compute(const ir::Function &fn,
                               const bin::BinaryImage *image);

    /** Constant value of tmp t, if known. */
    std::optional<std::uint64_t> valueOf(ir::TmpId t) const;

    /** Constant value of an operand (immediates are constants). */
    std::optional<std::uint64_t> valueOf(const ir::Operand &op) const;

    std::size_t knownCount() const { return values_.size(); }

  private:
    std::unordered_map<ir::TmpId, std::uint64_t> values_;
    std::unordered_map<ir::TmpId, bool> conflicted_;
};

} // namespace fits::analysis

#endif // FITS_ANALYSIS_CONSTMAP_HH_
