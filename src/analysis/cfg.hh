#ifndef FITS_ANALYSIS_CFG_HH_
#define FITS_ANALYSIS_CFG_HH_

#include <unordered_map>
#include <vector>

#include "ir/function.hh"

namespace fits::analysis {

using ir::Addr;

/**
 * Control-flow graph of one function. Nodes are indices into
 * Function::blocks; block 0 is the entry.
 *
 * Edges:
 *  - Branch (a conditional side exit that may appear anywhere in the
 *    block): an edge to the taken target; the not-taken path stays
 *    inside the block, so it contributes no edge of its own;
 *  - Jump (direct): the target block;
 *  - Jump (indirect): targets supplied by the UCSE explorer, if any;
 *  - block ends without Jump/Ret: fall-through to the next layout
 *    block (this covers a trailing Branch's not-taken path);
 *  - Ret: no successors.
 *
 * Calls are not block terminators in FIR (as in VEX, control returns to
 * the following statement), so they contribute no CFG edges.
 */
class Cfg
{
  public:
    /**
     * Build the CFG. resolvedTargets optionally maps the address of an
     * indirect Jump statement to the block addresses the UCSE explorer
     * proved reachable from it.
     */
    static Cfg build(const ir::Function &fn,
                     const std::unordered_map<Addr, std::vector<Addr>>
                         *resolvedTargets = nullptr);

    std::size_t numBlocks() const { return succs_.size(); }
    std::size_t entry() const { return 0; }

    const std::vector<std::size_t> &
    succs(std::size_t block) const
    {
        return succs_[block];
    }

    const std::vector<std::size_t> &
    preds(std::size_t block) const
    {
        return preds_[block];
    }

    /** Blocks reachable from the entry (DFS over successor edges). */
    std::vector<bool> reachable() const;

    /** Number of edges in the graph. */
    std::size_t numEdges() const;

  private:
    void addEdge(std::size_t from, std::size_t to);

    std::vector<std::vector<std::size_t>> succs_;
    std::vector<std::vector<std::size_t>> preds_;
};

} // namespace fits::analysis

#endif // FITS_ANALYSIS_CFG_HH_
