#include "constmap.hh"

namespace fits::analysis {

TmpConstMap
TmpConstMap::compute(const ir::Function &fn, const bin::BinaryImage *image)
{
    TmpConstMap map;

    // Phase 1: temporaries with more than one definition are never
    // treated as constant (flow-insensitivity would conflate paths).
    std::unordered_map<ir::TmpId, int> defCount;
    for (const auto &block : fn.blocks) {
        for (const auto &stmt : block.stmts) {
            if (stmt.definesTmp())
                ++defCount[stmt.dst];
        }
    }
    for (const auto &[tmp, count] : defCount) {
        if (count > 1)
            map.conflicted_[tmp] = true;
    }

    auto eligible = [&map](ir::TmpId t) {
        auto it = map.conflicted_.find(t);
        return it == map.conflicted_.end() || !it->second;
    };

    // Phase 2: fold single-definition temporaries to a fixpoint. A
    // Binop/Load may only fold after its inputs did, so iterate until
    // no new values appear.
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &block : fn.blocks) {
            for (const auto &stmt : block.stmts) {
                if (!stmt.definesTmp() || !eligible(stmt.dst) ||
                    map.values_.count(stmt.dst) != 0) {
                    continue;
                }
                switch (stmt.kind) {
                  case ir::StmtKind::Const:
                    map.values_[stmt.dst] = stmt.a.imm;
                    changed = true;
                    break;
                  case ir::StmtKind::Binop: {
                    auto lhs = map.valueOf(stmt.a);
                    auto rhs = map.valueOf(stmt.b);
                    if (lhs && rhs) {
                        map.values_[stmt.dst] =
                            ir::evalBinOp(stmt.op, *lhs, *rhs);
                        changed = true;
                    }
                    break;
                  }
                  case ir::StmtKind::Load: {
                    // Only read-only memory is stable enough to fold.
                    auto addr = map.valueOf(stmt.a);
                    if (addr && image != nullptr &&
                        image->isRodata(*addr)) {
                        if (auto word = image->readWord(*addr)) {
                            map.values_[stmt.dst] = *word;
                            changed = true;
                        }
                    }
                    break;
                  }
                  default:
                    break; // Get never folds
                }
            }
        }
    }

    return map;
}

std::optional<std::uint64_t>
TmpConstMap::valueOf(ir::TmpId t) const
{
    auto it = values_.find(t);
    if (it == values_.end())
        return std::nullopt;
    return it->second;
}

std::optional<std::uint64_t>
TmpConstMap::valueOf(const ir::Operand &op) const
{
    if (op.isImm())
        return op.imm;
    return valueOf(op.tmp);
}

} // namespace fits::analysis
