#include "cfg.hh"

#include <algorithm>

namespace fits::analysis {

void
Cfg::addEdge(std::size_t from, std::size_t to)
{
    auto &out = succs_[from];
    if (std::find(out.begin(), out.end(), to) != out.end())
        return;
    out.push_back(to);
    preds_[to].push_back(from);
}

Cfg
Cfg::build(const ir::Function &fn,
           const std::unordered_map<Addr, std::vector<Addr>>
               *resolvedTargets)
{
    Cfg cfg;
    const std::size_t n = fn.blocks.size();
    cfg.succs_.resize(n);
    cfg.preds_.resize(n);

    std::unordered_map<Addr, std::size_t> blockAt;
    for (std::size_t i = 0; i < n; ++i)
        blockAt[fn.blocks[i].addr] = i;

    for (std::size_t i = 0; i < n; ++i) {
        const ir::BasicBlock &block = fn.blocks[i];

        // Conditional side exits may appear anywhere in the block.
        for (const auto &stmt : block.stmts) {
            if (stmt.kind != ir::StmtKind::Branch)
                continue;
            auto it = blockAt.find(stmt.target);
            if (it != blockAt.end())
                cfg.addEdge(i, it->second);
        }

        // Final control transfer.
        const ir::Stmt *term = block.terminator();
        if (term == nullptr) {
            // Implicit fallthrough (also the not-taken path of a
            // trailing Branch).
            if (i + 1 < n)
                cfg.addEdge(i, i + 1);
            continue;
        }
        if (term->kind == ir::StmtKind::Jump) {
            if (!term->indirect) {
                auto it = blockAt.find(term->target);
                if (it != blockAt.end())
                    cfg.addEdge(i, it->second);
            } else if (resolvedTargets != nullptr) {
                const Addr stmtAddr =
                    block.stmtAddr(block.stmts.size() - 1);
                auto rt = resolvedTargets->find(stmtAddr);
                if (rt != resolvedTargets->end()) {
                    for (Addr target : rt->second) {
                        auto it = blockAt.find(target);
                        if (it != blockAt.end())
                            cfg.addEdge(i, it->second);
                    }
                }
            }
        }
        // Ret: no successors.
    }

    return cfg;
}

std::vector<bool>
Cfg::reachable() const
{
    std::vector<bool> seen(numBlocks(), false);
    if (numBlocks() == 0)
        return seen;
    std::vector<std::size_t> stack = {entry()};
    seen[entry()] = true;
    while (!stack.empty()) {
        const std::size_t b = stack.back();
        stack.pop_back();
        for (std::size_t s : succs_[b]) {
            if (!seen[s]) {
                seen[s] = true;
                stack.push_back(s);
            }
        }
    }
    return seen;
}

std::size_t
Cfg::numEdges() const
{
    std::size_t n = 0;
    for (const auto &out : succs_)
        n += out.size();
    return n;
}

} // namespace fits::analysis
