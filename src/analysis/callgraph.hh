#ifndef FITS_ANALYSIS_CALLGRAPH_HH_
#define FITS_ANALYSIS_CALLGRAPH_HH_

#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/linked.hh"
#include "analysis/ucse.hh"

namespace fits::analysis {

/**
 * One call instruction, with its resolution. stmtAddr is the address of
 * the Call statement inside the caller's image.
 */
struct CallSite
{
    FnId caller = 0;
    std::size_t blockIdx = 0;
    std::size_t stmtIdx = 0;
    Addr stmtAddr = 0;
    bool indirect = false;

    LinkedProgram::CallTarget target;

    bool
    resolvesToFunction() const
    {
        return target.kind == LinkedProgram::CallTarget::Kind::Function;
    }

    bool
    isLibraryCall() const
    {
        // Calls through the PLT (named) or to external imports are
        // library calls from the caller's perspective.
        return target.kind ==
                   LinkedProgram::CallTarget::Kind::ExternalImport ||
               (resolvesToFunction() && !target.library.empty());
    }
};

/**
 * Whole-program call graph over a LinkedProgram. Direct calls are
 * resolved through the import table; indirect calls use the UCSE
 * explorer's resolved targets (function-pointer tables).
 */
class CallGraph
{
  public:
    /**
     * Build the call graph. ucseByFn optionally supplies, per FnId, the
     * explorer result whose resolvedCalls disambiguate indirect calls.
     */
    static CallGraph build(
        const LinkedProgram &linked,
        const std::unordered_map<FnId, const UcseResult *> *ucseByFn =
            nullptr);

    const std::vector<CallSite> &sites() const { return sites_; }

    /** Indices into sites() of calls made by `caller`. */
    const std::vector<std::size_t> &sitesOfCaller(FnId caller) const;

    /** Indices into sites() of calls targeting function `callee`. */
    const std::vector<std::size_t> &sitesOfCallee(FnId callee) const;

    /** Number of call sites targeting `callee` ("number of callers" in
     * the BFV; the paper counts call sites, which is what separates an
     * ITS from an error printer called from everywhere). */
    std::size_t callerSiteCount(FnId callee) const;

    /** Number of distinct calling functions. */
    std::size_t distinctCallerCount(FnId callee) const;

    /** Call sites in `caller` that target a named library symbol. */
    std::size_t libraryCallCount(FnId caller) const;

  private:
    std::vector<CallSite> sites_;
    std::unordered_map<FnId, std::vector<std::size_t>> byCaller_;
    std::unordered_map<FnId, std::vector<std::size_t>> byCallee_;
    static const std::vector<std::size_t> kEmpty_;
};

} // namespace fits::analysis

#endif // FITS_ANALYSIS_CALLGRAPH_HH_
