#include "status.hh"

namespace fits::support {

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::None:       return "none";
      case Stage::Io:         return "io";
      case Stage::Unpack:     return "unpack";
      case Stage::Filesystem: return "filesystem";
      case Stage::Select:     return "select";
      case Stage::Lift:       return "lift";
      case Stage::IrParse:    return "ir-parse";
      case Stage::Ucse:       return "ucse";
      case Stage::Flow:       return "flow";
      case Stage::Bfv:        return "bfv";
      case Stage::Infer:      return "infer";
      case Stage::Taint:      return "taint";
      case Stage::Corpus:     return "corpus";
      case Stage::Serve:      return "serve";
    }
    return "?";
}

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:            return "ok";
      case ErrorCode::Truncated:     return "truncated";
      case ErrorCode::BadMagic:      return "bad-magic";
      case ErrorCode::BadVersion:    return "bad-version";
      case ErrorCode::Corrupt:       return "corrupt";
      case ErrorCode::Unsupported:   return "unsupported";
      case ErrorCode::NotFound:      return "not-found";
      case ErrorCode::Timeout:       return "timeout";
      case ErrorCode::FaultInjected: return "fault-injected";
      case ErrorCode::Internal:      return "internal";
    }
    return "?";
}

std::string
Status::toString() const
{
    if (isOk())
        return "ok";
    std::string out;
    out.reserve(message_.size() + 32);
    out += '[';
    out += stageName(stage_);
    out += '/';
    out += errorCodeName(code_);
    out += "] ";
    out += message_;
    return out;
}

} // namespace fits::support
