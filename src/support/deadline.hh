#ifndef FITS_SUPPORT_DEADLINE_HH_
#define FITS_SUPPORT_DEADLINE_HH_

#include <chrono>

namespace fits::support {

/**
 * Cooperative cancellation point: a wall-clock deadline checked by the
 * long-running analyses (UCSE exploration, reaching definitions, both
 * taint engines). A default-constructed Deadline never expires, so all
 * default paths behave exactly as before; only callers that arm a
 * budget pay the (periodic) clock read.
 *
 * Deadlines are plain values — copy them into worker configs freely.
 * Loops should check `expiredCoarse(counter)` rather than `expired()`
 * directly so the steady_clock read is amortized over ~256 iterations.
 */
class Deadline
{
  public:
    /** Never expires. */
    Deadline() = default;

    static Deadline
    never()
    {
        return Deadline();
    }

    /** Expires `ms` milliseconds from now; ms <= 0 means "already
     * expired" (useful for tests and fault injection). */
    static Deadline
    afterMs(double ms)
    {
        Deadline d;
        d.active_ = true;
        d.at_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(ms));
        return d;
    }

    bool active() const { return active_; }

    /** One clock read; always false when inactive. */
    bool
    expired() const
    {
        return active_ && std::chrono::steady_clock::now() >= at_;
    }

    /** Amortized check for hot loops: reads the clock only every 256th
     * call (per counter). Pass the loop's own step counter. */
    bool
    expiredCoarse(std::size_t counter) const
    {
        return active_ && (counter & 0xff) == 0 && expired();
    }

    /** Milliseconds until expiry; negative once expired. Meaningless
     * (a large positive number) when inactive. */
    double
    remainingMs() const
    {
        if (!active_)
            return 1e18;
        return std::chrono::duration<double, std::milli>(
                   at_ - std::chrono::steady_clock::now())
            .count();
    }

  private:
    bool active_ = false;
    std::chrono::steady_clock::time_point at_{};
};

/**
 * The `FITS_STAGE_TIMEOUT_MS` environment knob: default per-stage
 * budget in milliseconds applied by PipelineConfig (and the taint
 * engine configs) when no explicit budget is set. 0 (or unset, or
 * unparsable) means "no deadline" — the exact pre-knob behavior.
 * Parsed once at first use.
 */
double envStageTimeoutMs();

} // namespace fits::support

#endif // FITS_SUPPORT_DEADLINE_HH_
