#include "thread_pool.hh"

#include <atomic>
#include <cstdlib>
#include <exception>

#include "obs/metrics.hh"

namespace fits::support {

std::size_t
hardwareJobs()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<std::size_t>(n);
}

std::size_t
resolveJobs(std::size_t requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("FITS_JOBS")) {
        char *end = nullptr;
        const unsigned long parsed = std::strtoul(env, &end, 10);
        if (end != env && *end == '\0' && parsed > 0)
            return static_cast<std::size_t>(parsed);
    }
    return hardwareJobs();
}

ThreadPool::ThreadPool(std::size_t workers)
{
    const std::size_t n = resolveJobs(workers);
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    QueuedTask queued;
    queued.fn = std::move(task);
    if (obs::enabled())
        queued.enqueued = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(queued));
    }
    wake_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock,
               [this] { return queue_.empty() && inFlight_ == 0; });
}

std::size_t
ThreadPool::uncaughtExceptions() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return uncaught_;
}

std::string
ThreadPool::firstExceptionMessage() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return firstError_;
}

void
ThreadPool::workerLoop(std::size_t workerIndex)
{
    // Lazily-resolved per-worker instruments (only touched while
    // metrics collection is enabled; the registry hands out stable
    // references, so resolving once per worker is safe).
    obs::Counter *taskCounter = nullptr;

    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty())
            return; // stop_ set and nothing left to run
        QueuedTask task = std::move(queue_.front());
        queue_.pop_front();
        ++inFlight_;
        lock.unlock();

        if (obs::enabled()) {
            if (taskCounter == nullptr) {
                taskCounter = &obs::Registry::instance().counter(
                    "threadpool.worker." +
                    std::to_string(workerIndex) + ".tasks");
            }
            taskCounter->add(1);
            obs::addCounter("threadpool.tasks");
            if (task.enqueued.time_since_epoch().count() != 0) {
                obs::observe(
                    "threadpool.queue_wait_ms",
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() -
                        task.enqueued)
                        .count());
            }
        }

        std::string error;
        bool threw = false;
        try {
            task.fn();
        } catch (const std::exception &e) {
            threw = true;
            error = e.what();
        } catch (...) {
            threw = true;
            error = "unknown exception";
        }
        if (threw)
            obs::addCounter("threadpool.uncaught_exceptions");

        lock.lock();
        --inFlight_;
        if (threw) {
            ++uncaught_;
            if (firstError_.empty())
                firstError_ = error.empty() ? "exception" : error;
        }
        if (queue_.empty() && inFlight_ == 0)
            idle_.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t jobs, std::size_t n,
                        const std::function<void(std::size_t)> &body)
{
    if (jobs <= 1 || n <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr firstException;
    std::mutex exceptionMutex;
    auto drain = [&] {
        for (;;) {
            const std::size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(exceptionMutex);
                if (!firstException)
                    firstException = std::current_exception();
            }
        }
    };

    std::vector<std::thread> threads;
    const std::size_t spawned = std::min(jobs, n) - 1;
    threads.reserve(spawned);
    for (std::size_t t = 0; t < spawned; ++t)
        threads.emplace_back(drain);
    drain(); // the calling thread is worker #0
    for (auto &thread : threads)
        thread.join();

    if (firstException)
        std::rethrow_exception(firstException);
}

} // namespace fits::support
