#include "strings.hh"

#include <cstdarg>
#include <cstdio>

namespace fits::support {

std::string
join(const std::vector<std::string> &items, std::string_view sep)
{
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i > 0)
            out.append(sep);
        out.append(items[i]);
    }
    return out;
}

std::vector<std::string>
split(std::string_view text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= text.size(); ++i) {
        if (i == text.size() || text[i] == sep) {
            out.emplace_back(text.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

bool
startsWith(std::string_view text, std::string_view prefix)
{
    return text.size() >= prefix.size() &&
           text.substr(0, prefix.size()) == prefix;
}

bool
endsWith(std::string_view text, std::string_view suffix)
{
    return text.size() >= suffix.size() &&
           text.substr(text.size() - suffix.size()) == suffix;
}

std::string
toLower(std::string_view text)
{
    std::string out(text);
    for (auto &c : out) {
        if (c >= 'A' && c <= 'Z')
            c = static_cast<char>(c - 'A' + 'a');
    }
    return out;
}

std::string
hex(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

std::string
format(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list copy;
    va_copy(copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(out.data(), out.size(), fmt, args);
        out.resize(static_cast<std::size_t>(needed));
    }
    va_end(args);
    return out;
}

std::uint64_t
fnv1a(std::string_view bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : bytes) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

std::uint64_t
fnv1a(const std::uint8_t *data, std::size_t size)
{
    return fnv1a(std::string_view(
        reinterpret_cast<const char *>(data), size));
}

} // namespace fits::support
