#ifndef FITS_SUPPORT_THREAD_POOL_HH_
#define FITS_SUPPORT_THREAD_POOL_HH_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace fits::support {

/** Number of hardware threads; never returns 0. */
std::size_t hardwareJobs();

/**
 * Effective worker count for corpus-level fan-out: `requested` when
 * positive, otherwise the `FITS_JOBS` environment variable when it is a
 * positive integer, otherwise hardwareJobs().
 */
std::size_t resolveJobs(std::size_t requested = 0);

/**
 * Fixed-size worker pool over a FIFO task queue.
 *
 * Every submitted task runs inside an exception-isolating wrapper: a
 * throwing task never tears down a worker or the pool. Escaped
 * exceptions are counted and the first message is retained so callers
 * that want stronger guarantees can assert on them; tasks that need
 * per-item error *reporting* (the CorpusRunner pattern) should catch
 * their own exceptions and record the failure in their result slot.
 */
class ThreadPool
{
  public:
    /** `workers` == 0 resolves via resolveJobs() (FITS_JOBS / hw). */
    explicit ThreadPool(std::size_t workers = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t workerCount() const { return workers_.size(); }

    /** Enqueue one task; returns immediately. */
    void submit(std::function<void()> task);

    /** Block until every task submitted so far has finished. */
    void wait();

    /** Tasks whose exceptions escaped into the pool wrapper. */
    std::size_t uncaughtExceptions() const;

    /** what() of the first escaped exception ("" if none). */
    std::string firstExceptionMessage() const;

    /**
     * Run body(0) .. body(n-1) across up to `jobs` worker threads and
     * block until all calls returned. Indices are claimed dynamically,
     * so per-index work may run in any order and on any thread; the
     * caller owns deterministic result placement (write slot i from
     * body(i)). jobs <= 1 or n <= 1 degrades to a plain serial loop.
     *
     * Unlike submit(), an exception thrown by `body` propagates: the
     * first one is captured and rethrown on the calling thread after
     * all workers have drained, matching serial-loop semantics.
     */
    static void parallelFor(std::size_t jobs, std::size_t n,
                            const std::function<void(std::size_t)> &body);

  private:
    /** A queued task plus its enqueue time (stamped only while
     * metrics collection is enabled; zero otherwise). */
    struct QueuedTask
    {
        std::function<void()> fn;
        std::chrono::steady_clock::time_point enqueued;
    };

    void workerLoop(std::size_t workerIndex);

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable idle_;
    std::deque<QueuedTask> queue_;
    std::vector<std::thread> workers_;
    std::size_t inFlight_ = 0;
    std::size_t uncaught_ = 0;
    std::string firstError_;
    bool stop_ = false;
};

} // namespace fits::support

#endif // FITS_SUPPORT_THREAD_POOL_HH_
