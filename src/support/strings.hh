#ifndef FITS_SUPPORT_STRINGS_HH_
#define FITS_SUPPORT_STRINGS_HH_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fits::support {

/** Join the items with the separator ("a, b, c"). */
std::string join(const std::vector<std::string> &items,
                 std::string_view sep);

/** Split on a single-character separator; keeps empty fields. */
std::vector<std::string> split(std::string_view text, char sep);

/** True if text starts with prefix. */
bool startsWith(std::string_view text, std::string_view prefix);

/** True if text ends with suffix. */
bool endsWith(std::string_view text, std::string_view suffix);

/** Lower-case a copy (ASCII only). */
std::string toLower(std::string_view text);

/** "0x%x" rendering of an address. */
std::string hex(std::uint64_t value);

/** printf-style helper returning std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** FNV-1a 64-bit hash of a byte string; stable across platforms. */
std::uint64_t fnv1a(std::string_view bytes);

/** FNV-1a 64-bit hash of a raw byte buffer (same stream as above). */
std::uint64_t fnv1a(const std::uint8_t *data, std::size_t size);

} // namespace fits::support

#endif // FITS_SUPPORT_STRINGS_HH_
