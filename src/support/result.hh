#ifndef FITS_SUPPORT_RESULT_HH_
#define FITS_SUPPORT_RESULT_HH_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace fits::support {

/**
 * A value-or-error-message result, used across module boundaries instead
 * of exceptions (firmware parsing in particular must report malformed
 * input as data, not control flow).
 */
template <typename T>
class Result
{
  public:
    /** Successful result. */
    static Result
    ok(T value)
    {
        Result r;
        r.value_ = std::move(value);
        return r;
    }

    /** Failed result carrying a human-readable reason. */
    static Result
    error(std::string message)
    {
        Result r;
        r.error_ = std::move(message);
        return r;
    }

    bool hasValue() const { return value_.has_value(); }
    explicit operator bool() const { return hasValue(); }

    /** Access the value; asserts on error results. */
    const T &
    value() const
    {
        assert(value_.has_value());
        return *value_;
    }

    T &
    value()
    {
        assert(value_.has_value());
        return *value_;
    }

    /** Move the value out; asserts on error results. */
    T
    take()
    {
        assert(value_.has_value());
        return std::move(*value_);
    }

    /** Error message; empty for successful results. */
    const std::string &errorMessage() const { return error_; }

  private:
    Result() = default;
    std::optional<T> value_;
    std::string error_;
};

} // namespace fits::support

#endif // FITS_SUPPORT_RESULT_HH_
