#ifndef FITS_SUPPORT_RESULT_HH_
#define FITS_SUPPORT_RESULT_HH_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

#include "support/status.hh"

namespace fits::support {

/**
 * A value-or-error result, used across module boundaries instead of
 * exceptions (firmware parsing in particular must report malformed
 * input as data, not control flow). Errors carry a typed Status
 * (stage + error code + message); the legacy string-only constructor
 * produces an untyped Internal status so old call sites keep working.
 */
template <typename T>
class Result
{
  public:
    /** Successful result. */
    static Result
    ok(T value)
    {
        Result r;
        r.value_ = std::move(value);
        return r;
    }

    /** Failed result carrying a typed status. */
    static Result
    error(Status status)
    {
        assert(!status.isOk());
        Result r;
        r.status_ = std::move(status);
        return r;
    }

    /** Failed result carrying only a human-readable reason (legacy;
     * attributed as Stage::None / Internal). */
    static Result
    error(std::string message)
    {
        return error(Status::internal(std::move(message)));
    }

    bool hasValue() const { return value_.has_value(); }
    explicit operator bool() const { return hasValue(); }

    /** Access the value; asserts on error results. */
    const T &
    value() const
    {
        assert(value_.has_value());
        return *value_;
    }

    T &
    value()
    {
        assert(value_.has_value());
        return *value_;
    }

    /** Move the value out; asserts on error results. */
    T
    take()
    {
        assert(value_.has_value());
        return std::move(*value_);
    }

    /** Typed status; Status::ok() for successful results. */
    const Status &status() const { return status_; }

    /** Error message; empty for successful results. */
    const std::string &errorMessage() const { return status_.message(); }

  private:
    Result() = default;
    std::optional<T> value_;
    Status status_;
};

} // namespace fits::support

#endif // FITS_SUPPORT_RESULT_HH_
