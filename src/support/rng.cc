#include "rng.hh"

#include <cassert>

namespace fits::support {

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

namespace {

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    // Expand the seed into four non-zero words via splitmix64, per the
    // xoshiro authors' recommendation.
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitmix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    assert(lo <= hi);
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
    std::uint64_t v = next();
    while (v >= limit)
        v = next();
    return lo + static_cast<std::int64_t>(v % span);
}

double
Rng::uniformReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniformReal(double lo, double hi)
{
    return lo + (hi - lo) * uniformReal();
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniformReal() < p;
}

std::size_t
Rng::index(std::size_t size)
{
    assert(size > 0);
    return static_cast<std::size_t>(
        uniformInt(0, static_cast<std::int64_t>(size) - 1));
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xa0761d6478bd642fULL);
}

} // namespace fits::support
