#include "deadline.hh"

#include <cstdlib>

namespace fits::support {

double
envStageTimeoutMs()
{
    static const double value = [] {
        const char *env = std::getenv("FITS_STAGE_TIMEOUT_MS");
        if (env == nullptr || *env == '\0')
            return 0.0;
        char *end = nullptr;
        const double parsed = std::strtod(env, &end);
        if (end == env || parsed <= 0.0)
            return 0.0;
        return parsed;
    }();
    return value;
}

} // namespace fits::support
