#include "logging.hh"

#include <cstdio>

namespace fits::support {

namespace {

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Error: return "ERROR";
    }
    return "?";
}

} // namespace

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel level, std::string_view component,
            std::string_view message)
{
    if (level < level_.load(std::memory_order_relaxed))
        return;
    // Render the whole record first so it reaches stderr as a single
    // write; the mutex keeps records from different threads ordered.
    std::string line;
    line.reserve(component.size() + message.size() + 16);
    line += '[';
    line += levelName(level);
    line += "] ";
    line.append(component.data(), component.size());
    line += ": ";
    line.append(message.data(), message.size());
    line += '\n';
    std::lock_guard<std::mutex> lock(writeMutex_);
    std::fwrite(line.data(), 1, line.size(), stderr);
}

void
logDebug(std::string_view component, std::string_view message)
{
    Logger::instance().log(LogLevel::Debug, component, message);
}

void
logInfo(std::string_view component, std::string_view message)
{
    Logger::instance().log(LogLevel::Info, component, message);
}

void
logWarn(std::string_view component, std::string_view message)
{
    Logger::instance().log(LogLevel::Warn, component, message);
}

void
logError(std::string_view component, std::string_view message)
{
    Logger::instance().log(LogLevel::Error, component, message);
}

} // namespace fits::support
