#include "logging.hh"

#include <cstdio>

namespace fits::support {

namespace {

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Info:  return "INFO";
      case LogLevel::Warn:  return "WARN";
      case LogLevel::Error: return "ERROR";
    }
    return "?";
}

} // namespace

Logger &
Logger::instance()
{
    static Logger logger;
    return logger;
}

void
Logger::log(LogLevel level, std::string_view component,
            std::string_view message)
{
    if (level < level_)
        return;
    std::fprintf(stderr, "[%s] %.*s: %.*s\n", levelName(level),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
}

void
logDebug(std::string_view component, std::string_view message)
{
    Logger::instance().log(LogLevel::Debug, component, message);
}

void
logInfo(std::string_view component, std::string_view message)
{
    Logger::instance().log(LogLevel::Info, component, message);
}

void
logWarn(std::string_view component, std::string_view message)
{
    Logger::instance().log(LogLevel::Warn, component, message);
}

void
logError(std::string_view component, std::string_view message)
{
    Logger::instance().log(LogLevel::Error, component, message);
}

} // namespace fits::support
