#ifndef FITS_SUPPORT_LOGGING_HH_
#define FITS_SUPPORT_LOGGING_HH_

#include <atomic>
#include <mutex>
#include <string>
#include <string_view>

namespace fits::support {

/** Severity levels in increasing order of importance. */
enum class LogLevel { Debug, Info, Warn, Error };

/**
 * Minimal leveled logger writing to stderr.
 *
 * The library is silent by default (Warn threshold) so that bench binaries
 * can print clean tables; examples raise the level to Info for narration.
 *
 * Thread-safe: the threshold is atomic and each record is rendered into
 * one buffer and emitted as a single write under a mutex, so concurrent
 * workers never interleave characters within a line.
 */
class Logger
{
  public:
    /** Process-wide logger instance. */
    static Logger &instance();

    /** Set the minimum level that is emitted. */
    void
    setLevel(LogLevel level)
    {
        level_.store(level, std::memory_order_relaxed);
    }

    LogLevel
    level() const
    {
        return level_.load(std::memory_order_relaxed);
    }

    /** Emit one line if level passes the threshold. */
    void log(LogLevel level, std::string_view component,
             std::string_view message);

  private:
    Logger() = default;
    std::atomic<LogLevel> level_{LogLevel::Warn};
    std::mutex writeMutex_;
};

/** Convenience wrappers; component names the emitting subsystem. */
void logDebug(std::string_view component, std::string_view message);
void logInfo(std::string_view component, std::string_view message);
void logWarn(std::string_view component, std::string_view message);
void logError(std::string_view component, std::string_view message);

} // namespace fits::support

#endif // FITS_SUPPORT_LOGGING_HH_
