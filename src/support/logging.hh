#ifndef FITS_SUPPORT_LOGGING_HH_
#define FITS_SUPPORT_LOGGING_HH_

#include <string>
#include <string_view>

namespace fits::support {

/** Severity levels in increasing order of importance. */
enum class LogLevel { Debug, Info, Warn, Error };

/**
 * Minimal leveled logger writing to stderr.
 *
 * The library is silent by default (Warn threshold) so that bench binaries
 * can print clean tables; examples raise the level to Info for narration.
 */
class Logger
{
  public:
    /** Process-wide logger instance. */
    static Logger &instance();

    /** Set the minimum level that is emitted. */
    void setLevel(LogLevel level) { level_ = level; }
    LogLevel level() const { return level_; }

    /** Emit one line if level passes the threshold. */
    void log(LogLevel level, std::string_view component,
             std::string_view message);

  private:
    Logger() = default;
    LogLevel level_ = LogLevel::Warn;
};

/** Convenience wrappers; component names the emitting subsystem. */
void logDebug(std::string_view component, std::string_view message);
void logInfo(std::string_view component, std::string_view message);
void logWarn(std::string_view component, std::string_view message);
void logError(std::string_view component, std::string_view message);

} // namespace fits::support

#endif // FITS_SUPPORT_LOGGING_HH_
