#ifndef FITS_SUPPORT_RNG_HH_
#define FITS_SUPPORT_RNG_HH_

#include <cstdint>
#include <vector>

namespace fits::support {

/**
 * Deterministic pseudo-random number generator (xoshiro256** seeded via
 * splitmix64).
 *
 * Every stochastic component in this repository draws from an explicitly
 * seeded Rng so that the synthetic firmware corpus, the planted ground
 * truth, and therefore every experiment table are bit-for-bit reproducible
 * across runs and machines. std::mt19937 is avoided because distribution
 * implementations differ across standard libraries.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [lo, hi] (inclusive). Requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Uniform double in [lo, hi). */
    double uniformReal(double lo, double hi);

    /** True with probability p (clamped to [0, 1]). */
    bool chance(double p);

    /** Uniformly chosen index in [0, size). Requires size > 0. */
    std::size_t index(std::size_t size);

    /** Uniformly chosen element of a non-empty vector. */
    template <typename T>
    const T &
    pick(const std::vector<T> &items)
    {
        return items[index(items.size())];
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &items)
    {
        if (items.size() < 2)
            return;
        for (std::size_t i = items.size() - 1; i > 0; --i) {
            std::size_t j = index(i + 1);
            std::swap(items[i], items[j]);
        }
    }

    /**
     * Derive an independent child generator. Used to give each synthetic
     * firmware sample its own stream so samples are order-independent.
     */
    Rng fork();

  private:
    std::uint64_t state_[4];
};

/** splitmix64 step; exposed for seed derivation in tests. */
std::uint64_t splitmix64(std::uint64_t &state);

} // namespace fits::support

#endif // FITS_SUPPORT_RNG_HH_
