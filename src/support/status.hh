#ifndef FITS_SUPPORT_STATUS_HH_
#define FITS_SUPPORT_STATUS_HH_

#include <cstdint>
#include <string>
#include <utility>

namespace fits::support {

/**
 * Pipeline stage an error is attributed to. Every failure that crosses
 * a module boundary names the stage that produced it, so corpus-level
 * failure accounting (and the `pipeline.errors.<stage>` observability
 * counters) can aggregate without parsing message text.
 */
enum class Stage : std::uint8_t {
    None,       ///< not attributed (legacy string-only errors)
    Io,         ///< reading the image from disk
    Unpack,     ///< firmware container decode (magic/crypto/checksum)
    Filesystem, ///< file-table / file-system structure
    Select,     ///< network-binary selection
    Lift,       ///< FBIN decode ("lifting") of a binary or library
    IrParse,    ///< textual FIR parsing
    Ucse,       ///< under-constrained symbolic exploration
    Flow,       ///< reaching definitions / dataflow
    Bfv,        ///< behavior feature extraction
    Infer,      ///< clustering + ranking
    Taint,      ///< taint engines
    Corpus,     ///< corpus-level driver
    Serve,      ///< resident analysis service (fits serve)
};

const char *stageName(Stage stage);

/**
 * Machine-readable failure class. `Timeout` and `FaultInjected` are the
 * two codes the degraded-retry logic treats as transient; everything
 * else is a property of the input.
 */
enum class ErrorCode : std::uint8_t {
    Ok,
    Truncated,     ///< input ends before a structure completes
    BadMagic,      ///< container/format magic not found
    BadVersion,    ///< recognized container, unsupported version
    Corrupt,       ///< structure decodes but is inconsistent (checksum)
    Unsupported,   ///< valid input the implementation refuses (opaque
                   ///< vendor crypto, unknown arch)
    NotFound,      ///< a referenced object is absent (file, library)
    Timeout,       ///< a per-stage deadline expired
    FaultInjected, ///< a fits::chaos fault site fired
    Internal,      ///< unexpected failure (escaped exception, legacy)
};

const char *errorCodeName(ErrorCode code);

/**
 * Typed error status: stage + code + human-readable message. The unit
 * of the structured error taxonomy — module boundaries return
 * `Result<T>` carrying one of these instead of a bare string, so
 * callers can branch on *what* failed (and the corpus layer can decide
 * retry/degrade) without string matching.
 */
class Status
{
  public:
    /** Default-constructed status is OK. */
    Status() = default;

    static Status
    ok()
    {
        return Status();
    }

    static Status
    error(Stage stage, ErrorCode code, std::string message)
    {
        Status s;
        s.stage_ = stage;
        s.code_ = code;
        s.message_ = std::move(message);
        return s;
    }

    /** Legacy untyped error (Stage::None / Internal). */
    static Status
    internal(std::string message)
    {
        return error(Stage::None, ErrorCode::Internal,
                     std::move(message));
    }

    bool isOk() const { return code_ == ErrorCode::Ok; }
    explicit operator bool() const { return isOk(); }

    Stage stage() const { return stage_; }
    ErrorCode code() const { return code_; }
    const std::string &message() const { return message_; }

    /** True for failures a degraded retry might clear (timeouts and
     * injected faults), as opposed to properties of the input. */
    bool
    isTransient() const
    {
        return code_ == ErrorCode::Timeout ||
               code_ == ErrorCode::FaultInjected ||
               code_ == ErrorCode::Internal;
    }

    /** "[stage/code] message" rendering ("ok" for success). */
    std::string toString() const;

  private:
    Stage stage_ = Stage::None;
    ErrorCode code_ = ErrorCode::Ok;
    std::string message_;
};

} // namespace fits::support

#endif // FITS_SUPPORT_STATUS_HH_
