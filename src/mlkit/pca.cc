#include "pca.hh"

#include <cmath>

namespace fits::ml {

Vec
PcaModel::transform(const Vec &row) const
{
    Vec centered(row.size());
    for (std::size_t c = 0; c < row.size(); ++c)
        centered[c] = row[c] - mean[c];
    Vec out(components.size());
    for (std::size_t k = 0; k < components.size(); ++k)
        out[k] = dot(components[k], centered);
    return out;
}

Matrix
PcaModel::transformAll(const Matrix &m) const
{
    Matrix out;
    out.reserve(m.size());
    for (const auto &row : m)
        out.push_back(transform(row));
    return out;
}

PcaModel
fitPca(const Matrix &m, std::size_t numComponents,
       std::size_t iterations)
{
    PcaModel model;
    const std::size_t cols = columns(m);
    model.mean = columnMean(m);
    numComponents = std::min(numComponents, cols);
    if (m.empty() || cols == 0)
        return model;

    // Covariance matrix (cols x cols).
    Matrix cov(cols, Vec(cols, 0.0));
    for (const auto &row : m) {
        for (std::size_t i = 0; i < cols; ++i) {
            const double di = row[i] - model.mean[i];
            for (std::size_t j = 0; j < cols; ++j)
                cov[i][j] += di * (row[j] - model.mean[j]);
        }
    }
    for (auto &r : cov) {
        for (auto &v : r)
            v /= static_cast<double>(m.size());
    }

    for (std::size_t k = 0; k < numComponents; ++k) {
        // Power iteration from a deterministic start vector.
        Vec v(cols, 0.0);
        v[k % cols] = 1.0;
        double eigen = 0.0;
        for (std::size_t it = 0; it < iterations; ++it) {
            Vec next(cols, 0.0);
            for (std::size_t i = 0; i < cols; ++i) {
                for (std::size_t j = 0; j < cols; ++j)
                    next[i] += cov[i][j] * v[j];
            }
            const double len = norm(next);
            if (len < 1e-12) {
                // Exhausted variance: remaining components are zero.
                next.assign(cols, 0.0);
                v = next;
                eigen = 0.0;
                break;
            }
            for (auto &x : next)
                x /= len;
            v = next;
            eigen = len;
        }
        model.components.push_back(v);

        // Deflate: cov -= eigen * v v^T.
        for (std::size_t i = 0; i < cols; ++i) {
            for (std::size_t j = 0; j < cols; ++j)
                cov[i][j] -= eigen * v[i] * v[j];
        }
    }

    return model;
}

} // namespace fits::ml
