#include "scaling.hh"

#include <algorithm>

namespace fits::ml {

Matrix
maxAbsScale(const Matrix &m)
{
    const Vec maxes = columnAbsMax(m);
    Matrix out = m;
    for (auto &row : out) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (maxes[c] != 0.0)
                row[c] /= maxes[c];
        }
    }
    return out;
}

Matrix
standardize(const Matrix &m)
{
    const Vec mean = columnMean(m);
    const Vec stddev = columnStddev(m, mean);
    Matrix out = m;
    for (auto &row : out) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            row[c] = stddev[c] != 0.0
                         ? (row[c] - mean[c]) / stddev[c]
                         : 0.0;
        }
    }
    return out;
}

Matrix
minMaxScale(const Matrix &m)
{
    const std::size_t cols = columns(m);
    Vec lo(cols, 0.0), hi(cols, 0.0);
    if (!m.empty()) {
        lo = m.front();
        hi = m.front();
        for (const auto &row : m) {
            for (std::size_t c = 0; c < cols; ++c) {
                lo[c] = std::min(lo[c], row[c]);
                hi[c] = std::max(hi[c], row[c]);
            }
        }
    }
    Matrix out = m;
    for (auto &row : out) {
        for (std::size_t c = 0; c < cols; ++c) {
            const double span = hi[c] - lo[c];
            row[c] = span != 0.0 ? (row[c] - lo[c]) / span : 0.0;
        }
    }
    return out;
}

} // namespace fits::ml
