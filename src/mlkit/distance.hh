#ifndef FITS_MLKIT_DISTANCE_HH_
#define FITS_MLKIT_DISTANCE_HH_

#include "mlkit/vector.hh"

namespace fits::ml {

/** Distance/similarity metrics compared in Table 8 of the paper. */
enum class Metric { Cosine, Euclidean, Manhattan, Pearson };

const char *metricName(Metric metric);

/** Cosine similarity in [-1, 1]; 0 if either vector is zero. */
double cosineSimilarity(const Vec &a, const Vec &b);

/** Cosine distance: 1 - cosineSimilarity. */
double cosineDistance(const Vec &a, const Vec &b);

double euclideanDistance(const Vec &a, const Vec &b);

double manhattanDistance(const Vec &a, const Vec &b);

/** Pearson correlation coefficient; 0 for constant vectors. */
double pearsonCorrelation(const Vec &a, const Vec &b);

/** Distance under the given metric (Pearson mapped to 1 - r). */
double distance(Metric metric, const Vec &a, const Vec &b);

/**
 * Similarity in [0, 1]-ish under the given metric, used for scoring:
 * Cosine -> cosine similarity; Pearson -> r; Euclidean/Manhattan ->
 * 1 / (1 + d), the standard monotone inversion.
 */
double similarity(Metric metric, const Vec &a, const Vec &b);

} // namespace fits::ml

#endif // FITS_MLKIT_DISTANCE_HH_
