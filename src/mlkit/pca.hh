#ifndef FITS_MLKIT_PCA_HH_
#define FITS_MLKIT_PCA_HH_

#include "mlkit/vector.hh"

namespace fits::ml {

/**
 * Principal component analysis via power iteration with deflation —
 * enough for the small (11-column) matrices this project projects, and
 * dependency-free. Rows are centered first; components are unit
 * vectors of the covariance matrix in decreasing eigenvalue order.
 */
struct PcaModel
{
    Vec mean;
    Matrix components; // one row per component

    /** Project a row into component space. */
    Vec transform(const Vec &row) const;

    /** Project a whole matrix. */
    Matrix transformAll(const Matrix &m) const;
};

/** Fit a PCA with the given number of components (clamped to the
 * column count). */
PcaModel fitPca(const Matrix &m, std::size_t numComponents,
                std::size_t iterations = 200);

} // namespace fits::ml

#endif // FITS_MLKIT_PCA_HH_
