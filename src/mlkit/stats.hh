#ifndef FITS_MLKIT_STATS_HH_
#define FITS_MLKIT_STATS_HH_

#include <vector>

namespace fits::ml {

/** Arithmetic mean; 0 for empty input. */
double mean(const std::vector<double> &xs);

/** Population standard deviation. */
double stddev(const std::vector<double> &xs);

/** Pearson correlation between two equal-length series (used to check
 * the Figure-4 time-vs-size claim); 0 for degenerate input. */
double correlation(const std::vector<double> &xs,
                   const std::vector<double> &ys);

/** Least-squares slope of y over x; 0 for degenerate input. */
double linearSlope(const std::vector<double> &xs,
                   const std::vector<double> &ys);

} // namespace fits::ml

#endif // FITS_MLKIT_STATS_HH_
