#ifndef FITS_MLKIT_SCALING_HH_
#define FITS_MLKIT_SCALING_HH_

#include "mlkit/vector.hh"

namespace fits::ml {

/**
 * Feature-scaling transforms. These implement the preprocessing
 * alternatives the paper compares the clustering stage against in
 * §4.5 (standardization, min-max normalization, PCA) — and the
 * per-column max normalization that Eq. (1) applies when computing
 * class complexity.
 */

/** Divide each column by its maximum absolute value (no-op on all-zero
 * columns). This is the normalization used in Eq. (1). */
Matrix maxAbsScale(const Matrix &m);

/** Z-score standardization per column (zero-stddev columns become 0). */
Matrix standardize(const Matrix &m);

/** Min-max normalization per column into [0, 1]. */
Matrix minMaxScale(const Matrix &m);

} // namespace fits::ml

#endif // FITS_MLKIT_SCALING_HH_
