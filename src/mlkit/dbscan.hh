#ifndef FITS_MLKIT_DBSCAN_HH_
#define FITS_MLKIT_DBSCAN_HH_

#include <cstdint>
#include <vector>

#include "mlkit/distance.hh"

namespace fits::ml {

/** DBSCAN parameters. */
struct DbscanConfig
{
    double eps = 0.5;
    std::size_t minPts = 3;
    Metric metric = Metric::Euclidean;
};

/** Clustering outcome; label -1 marks noise points. */
struct DbscanResult
{
    std::vector<int> labels;
    int numClusters = 0;

    /** Row indices of one cluster. */
    std::vector<std::size_t> members(int cluster) const;

    /** Member lists of all clusters (indexed by label) in one pass;
     * prefer this over calling members() per cluster. */
    std::vector<std::vector<std::size_t>> allMembers() const;

    std::size_t noiseCount() const;
};

/**
 * Density-based spatial clustering (Ester et al.), the algorithm FITS
 * uses for behavior clustering. The classic O(n^2) region-query
 * formulation: corpora here are a few thousand functions per binary,
 * where quadratic scans are faster than index structures.
 */
DbscanResult dbscan(const Matrix &points, const DbscanConfig &config);

} // namespace fits::ml

#endif // FITS_MLKIT_DBSCAN_HH_
