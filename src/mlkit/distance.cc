#include "distance.hh"

#include <cassert>
#include <cmath>

namespace fits::ml {

const char *
metricName(Metric metric)
{
    switch (metric) {
      case Metric::Cosine:    return "Cosine";
      case Metric::Euclidean: return "Euclidean";
      case Metric::Manhattan: return "Manhattan";
      case Metric::Pearson:   return "Pearson";
    }
    return "?";
}

double
cosineSimilarity(const Vec &a, const Vec &b)
{
    const double na = norm(a);
    const double nb = norm(b);
    if (na == 0.0 || nb == 0.0)
        return 0.0;
    return dot(a, b) / (na * nb);
}

double
cosineDistance(const Vec &a, const Vec &b)
{
    return 1.0 - cosineSimilarity(a, b);
}

double
euclideanDistance(const Vec &a, const Vec &b)
{
    assert(a.size() == b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        s += d * d;
    }
    return std::sqrt(s);
}

double
manhattanDistance(const Vec &a, const Vec &b)
{
    assert(a.size() == b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s += std::fabs(a[i] - b[i]);
    return s;
}

double
pearsonCorrelation(const Vec &a, const Vec &b)
{
    assert(a.size() == b.size());
    const std::size_t n = a.size();
    if (n == 0)
        return 0.0;
    double meanA = 0.0, meanB = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        meanA += a[i];
        meanB += b[i];
    }
    meanA /= static_cast<double>(n);
    meanB /= static_cast<double>(n);
    double cov = 0.0, varA = 0.0, varB = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double da = a[i] - meanA;
        const double db = b[i] - meanB;
        cov += da * db;
        varA += da * da;
        varB += db * db;
    }
    if (varA == 0.0 || varB == 0.0)
        return 0.0;
    return cov / std::sqrt(varA * varB);
}

double
distance(Metric metric, const Vec &a, const Vec &b)
{
    switch (metric) {
      case Metric::Cosine:    return cosineDistance(a, b);
      case Metric::Euclidean: return euclideanDistance(a, b);
      case Metric::Manhattan: return manhattanDistance(a, b);
      case Metric::Pearson:   return 1.0 - pearsonCorrelation(a, b);
    }
    return 0.0;
}

double
similarity(Metric metric, const Vec &a, const Vec &b)
{
    switch (metric) {
      case Metric::Cosine:
        return cosineSimilarity(a, b);
      case Metric::Pearson:
        return pearsonCorrelation(a, b);
      case Metric::Euclidean:
        return 1.0 / (1.0 + euclideanDistance(a, b));
      case Metric::Manhattan:
        return 1.0 / (1.0 + manhattanDistance(a, b));
    }
    return 0.0;
}

} // namespace fits::ml
