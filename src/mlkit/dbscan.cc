#include "dbscan.hh"

#include <deque>

namespace fits::ml {

std::vector<std::size_t>
DbscanResult::members(int cluster) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (labels[i] == cluster)
            out.push_back(i);
    }
    return out;
}

std::size_t
DbscanResult::noiseCount() const
{
    std::size_t n = 0;
    for (int label : labels) {
        if (label == -1)
            ++n;
    }
    return n;
}

namespace {

std::vector<std::size_t>
regionQuery(const Matrix &points, std::size_t p,
            const DbscanConfig &config)
{
    std::vector<std::size_t> neighbors;
    for (std::size_t q = 0; q < points.size(); ++q) {
        if (distance(config.metric, points[p], points[q]) <= config.eps)
            neighbors.push_back(q);
    }
    return neighbors;
}

} // namespace

DbscanResult
dbscan(const Matrix &points, const DbscanConfig &config)
{
    constexpr int kUnvisited = -2;
    constexpr int kNoise = -1;

    DbscanResult result;
    result.labels.assign(points.size(), kUnvisited);

    int cluster = 0;
    for (std::size_t p = 0; p < points.size(); ++p) {
        if (result.labels[p] != kUnvisited)
            continue;

        auto neighbors = regionQuery(points, p, config);
        if (neighbors.size() < config.minPts) {
            result.labels[p] = kNoise;
            continue;
        }

        result.labels[p] = cluster;
        std::deque<std::size_t> seeds(neighbors.begin(),
                                      neighbors.end());
        while (!seeds.empty()) {
            const std::size_t q = seeds.front();
            seeds.pop_front();
            if (result.labels[q] == kNoise)
                result.labels[q] = cluster; // border point
            if (result.labels[q] != kUnvisited)
                continue;
            result.labels[q] = cluster;
            auto qNeighbors = regionQuery(points, q, config);
            if (qNeighbors.size() >= config.minPts) {
                // Only unvisited and noise points can still change
                // label; re-enqueueing cluster-assigned neighbors is a
                // no-op on pop but grows the deque O(n^2) on dense
                // blobs, so skip them at push time.
                for (std::size_t r : qNeighbors) {
                    if (result.labels[r] < 0)
                        seeds.push_back(r);
                }
            }
        }
        ++cluster;
    }

    result.numClusters = cluster;
    return result;
}

} // namespace fits::ml
