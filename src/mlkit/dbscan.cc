#include "dbscan.hh"

#include <cmath>
#include <deque>

namespace fits::ml {

std::vector<std::size_t>
DbscanResult::members(int cluster) const
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (labels[i] == cluster)
            out.push_back(i);
    }
    return out;
}

std::vector<std::vector<std::size_t>>
DbscanResult::allMembers() const
{
    // One pass over the labels instead of one members() scan per
    // cluster (O(n) vs O(n * k)).
    std::vector<std::vector<std::size_t>> out(
        static_cast<std::size_t>(numClusters));
    for (std::size_t i = 0; i < labels.size(); ++i) {
        if (labels[i] >= 0)
            out[static_cast<std::size_t>(labels[i])].push_back(i);
    }
    return out;
}

std::size_t
DbscanResult::noiseCount() const
{
    std::size_t n = 0;
    for (int label : labels) {
        if (label == -1)
            ++n;
    }
    return n;
}

namespace {

/**
 * Pairwise-distance scanner over a flattened copy of the points.
 *
 * DBSCAN's cost is regionQuery: n scans of all n points. The generic
 * path pays a `distance()` dispatch, two `Vec` indirections, and (for
 * cosine/Pearson) redundant per-row norm/mean recomputation on every
 * pair. This scanner flattens the matrix into one contiguous buffer,
 * hoists the metric dispatch out of the scan, and precomputes the
 * per-row invariants (norms for cosine, means for Pearson) once.
 *
 * Every per-pair formula below keeps the exact operation order of
 * distance.cc — same accumulation sequence, same zero checks, same
 * final sqrt/divide — and the precomputed invariants are obtained by
 * calling the very same norm()/mean computation those formulas use, so
 * clustering output is bit-identical to the generic path.
 */
class DistanceScanner
{
  public:
    DistanceScanner(const Matrix &points, const DbscanConfig &config)
        : points_(points), config_(config), n_(points.size())
    {
        dim_ = n_ > 0 ? points[0].size() : 0;
        flat_ = true;
        for (const Vec &row : points) {
            if (row.size() != dim_) {
                flat_ = false; // ragged input: generic path only
                break;
            }
        }
        if (flat_) {
            buffer_.reserve(n_ * dim_);
            for (const Vec &row : points)
                buffer_.insert(buffer_.end(), row.begin(), row.end());
            if (config.metric == Metric::Cosine) {
                norms_.reserve(n_);
                for (const Vec &row : points)
                    norms_.push_back(norm(row));
            } else if (config.metric == Metric::Pearson) {
                means_.reserve(n_);
                for (const Vec &row : points) {
                    double mean = 0.0;
                    for (double v : row)
                        mean += v;
                    means_.push_back(
                        dim_ > 0 ? mean / static_cast<double>(dim_)
                                 : 0.0);
                }
            }
        }
    }

    /** All points within eps of `p` (including p), into `out`. The
     * buffer is caller-owned so one allocation serves every query. */
    void
    neighbors(std::size_t p, std::vector<std::size_t> &out) const
    {
        out.clear();
        if (!flat_) {
            for (std::size_t q = 0; q < n_; ++q) {
                if (distance(config_.metric, points_[p], points_[q]) <=
                    config_.eps)
                    out.push_back(q);
            }
            return;
        }
        switch (config_.metric) {
          case Metric::Euclidean: scan<Metric::Euclidean>(p, out); break;
          case Metric::Manhattan: scan<Metric::Manhattan>(p, out); break;
          case Metric::Cosine:    scan<Metric::Cosine>(p, out); break;
          case Metric::Pearson:   scan<Metric::Pearson>(p, out); break;
        }
    }

  private:
    template <Metric M>
    void
    scan(std::size_t p, std::vector<std::size_t> &out) const
    {
        const double *a = buffer_.data() + p * dim_;
        const double *b = buffer_.data();
        for (std::size_t q = 0; q < n_; ++q, b += dim_) {
            double d = 0.0;
            if constexpr (M == Metric::Euclidean) {
                double s = 0.0;
                for (std::size_t i = 0; i < dim_; ++i) {
                    const double diff = a[i] - b[i];
                    s += diff * diff;
                }
                d = std::sqrt(s);
            } else if constexpr (M == Metric::Manhattan) {
                double s = 0.0;
                for (std::size_t i = 0; i < dim_; ++i)
                    s += std::fabs(a[i] - b[i]);
                d = s;
            } else if constexpr (M == Metric::Cosine) {
                const double na = norms_[p];
                const double nb = norms_[q];
                double sim = 0.0;
                if (na != 0.0 && nb != 0.0) {
                    double s = 0.0;
                    for (std::size_t i = 0; i < dim_; ++i)
                        s += a[i] * b[i];
                    sim = s / (na * nb);
                }
                d = 1.0 - sim;
            } else { // Pearson
                double corr = 0.0;
                if (dim_ > 0) {
                    const double meanA = means_[p];
                    const double meanB = means_[q];
                    double cov = 0.0, varA = 0.0, varB = 0.0;
                    for (std::size_t i = 0; i < dim_; ++i) {
                        const double da = a[i] - meanA;
                        const double db = b[i] - meanB;
                        cov += da * db;
                        varA += da * da;
                        varB += db * db;
                    }
                    if (varA != 0.0 && varB != 0.0)
                        corr = cov / std::sqrt(varA * varB);
                }
                d = 1.0 - corr;
            }
            if (d <= config_.eps)
                out.push_back(q);
        }
    }

    const Matrix &points_;
    const DbscanConfig &config_;
    std::size_t n_;
    std::size_t dim_ = 0;
    bool flat_ = false;
    std::vector<double> buffer_; ///< row-major n_ x dim_
    std::vector<double> norms_;  ///< per-row L2 norms (cosine)
    std::vector<double> means_;  ///< per-row means (Pearson)
};

} // namespace

DbscanResult
dbscan(const Matrix &points, const DbscanConfig &config)
{
    constexpr int kUnvisited = -2;
    constexpr int kNoise = -1;

    DbscanResult result;
    result.labels.assign(points.size(), kUnvisited);

    const DistanceScanner scanner(points, config);
    std::vector<std::size_t> neighbors;
    std::vector<std::size_t> qNeighbors;

    int cluster = 0;
    for (std::size_t p = 0; p < points.size(); ++p) {
        if (result.labels[p] != kUnvisited)
            continue;

        scanner.neighbors(p, neighbors);
        if (neighbors.size() < config.minPts) {
            result.labels[p] = kNoise;
            continue;
        }

        result.labels[p] = cluster;
        std::deque<std::size_t> seeds(neighbors.begin(),
                                      neighbors.end());
        while (!seeds.empty()) {
            const std::size_t q = seeds.front();
            seeds.pop_front();
            if (result.labels[q] == kNoise)
                result.labels[q] = cluster; // border point
            if (result.labels[q] != kUnvisited)
                continue;
            result.labels[q] = cluster;
            scanner.neighbors(q, qNeighbors);
            if (qNeighbors.size() >= config.minPts) {
                // Only unvisited and noise points can still change
                // label; re-enqueueing cluster-assigned neighbors is a
                // no-op on pop but grows the deque O(n^2) on dense
                // blobs, so skip them at push time.
                for (std::size_t r : qNeighbors) {
                    if (result.labels[r] < 0)
                        seeds.push_back(r);
                }
            }
        }
        ++cluster;
    }

    result.numClusters = cluster;
    return result;
}

} // namespace fits::ml
