#include "stats.hh"

#include <cmath>

namespace fits::ml {

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size()));
}

double
correlation(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size() || xs.size() < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double cov = 0.0, vx = 0.0, vy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if (vx == 0.0 || vy == 0.0)
        return 0.0;
    return cov / std::sqrt(vx * vy);
}

double
linearSlope(const std::vector<double> &xs, const std::vector<double> &ys)
{
    if (xs.size() != ys.size() || xs.size() < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double cov = 0.0, vx = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        cov += (xs[i] - mx) * (ys[i] - my);
        vx += (xs[i] - mx) * (xs[i] - mx);
    }
    if (vx == 0.0)
        return 0.0;
    return cov / vx;
}

} // namespace fits::ml
