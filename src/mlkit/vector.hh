#ifndef FITS_MLKIT_VECTOR_HH_
#define FITS_MLKIT_VECTOR_HH_

#include <cstddef>
#include <vector>

namespace fits::ml {

/** A feature vector: one row of a feature matrix. */
using Vec = std::vector<double>;

/** A row-major feature matrix; all rows must share one dimension. */
using Matrix = std::vector<Vec>;

/** Dot product; vectors must have equal dimension. */
double dot(const Vec &a, const Vec &b);

/** Euclidean (L2) norm. */
double norm(const Vec &a);

/** Column count of a matrix (0 for an empty matrix). */
std::size_t columns(const Matrix &m);

/** Per-column maxima of absolute values (size = columns). */
Vec columnAbsMax(const Matrix &m);

/** Per-column means. */
Vec columnMean(const Matrix &m);

/** Per-column standard deviations (population). */
Vec columnStddev(const Matrix &m, const Vec &mean);

} // namespace fits::ml

#endif // FITS_MLKIT_VECTOR_HH_
