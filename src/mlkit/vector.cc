#include "vector.hh"

#include <cassert>
#include <cmath>

namespace fits::ml {

double
dot(const Vec &a, const Vec &b)
{
    assert(a.size() == b.size());
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s += a[i] * b[i];
    return s;
}

double
norm(const Vec &a)
{
    return std::sqrt(dot(a, a));
}

std::size_t
columns(const Matrix &m)
{
    return m.empty() ? 0 : m.front().size();
}

Vec
columnAbsMax(const Matrix &m)
{
    Vec out(columns(m), 0.0);
    for (const auto &row : m) {
        for (std::size_t c = 0; c < row.size(); ++c)
            out[c] = std::max(out[c], std::fabs(row[c]));
    }
    return out;
}

Vec
columnMean(const Matrix &m)
{
    Vec out(columns(m), 0.0);
    if (m.empty())
        return out;
    for (const auto &row : m) {
        for (std::size_t c = 0; c < row.size(); ++c)
            out[c] += row[c];
    }
    for (auto &v : out)
        v /= static_cast<double>(m.size());
    return out;
}

Vec
columnStddev(const Matrix &m, const Vec &mean)
{
    Vec out(columns(m), 0.0);
    if (m.empty())
        return out;
    for (const auto &row : m) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            const double d = row[c] - mean[c];
            out[c] += d * d;
        }
    }
    for (auto &v : out)
        v = std::sqrt(v / static_cast<double>(m.size()));
    return out;
}

} // namespace fits::ml
