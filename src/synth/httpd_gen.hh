#ifndef FITS_SYNTH_HTTPD_GEN_HH_
#define FITS_SYNTH_HTTPD_GEN_HH_

#include "binary/image.hh"
#include "synth/manifest.hh"
#include "synth/profiles.hh"

namespace fits::synth {

/** A generated network binary plus its ground truth. */
struct HttpdResult
{
    bin::BinaryImage image;
    GroundTruth truth;
};

/**
 * Generate the network-facing binary of one firmware sample: the full
 * user-input pipeline of Figure 1a (socket chain -> recv -> parse ->
 * dispatch -> handlers), a websGetVar-style ITS getter (Figure 1b),
 * NVRAM-getter confounders, error printers, filler functions, and the
 * planted sink sites whose classes (real bug / bounds-checked / dead
 * guard / escaped / system data) and flow shapes (direct global load /
 * scan loop / ITS fetch / deep chain / indirect param) drive the
 * Table 5 and Table 6 engine differences.
 *
 * The result is stripped (no local symbols, no function names); only
 * the dynamic import table keeps names, as in real firmware.
 */
HttpdResult generateHttpd(const SampleSpec &spec);

} // namespace fits::synth

#endif // FITS_SYNTH_HTTPD_GEN_HH_
