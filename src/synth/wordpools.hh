#ifndef FITS_SYNTH_WORDPOOLS_HH_
#define FITS_SYNTH_WORDPOOLS_HH_

#include <string>
#include <vector>

namespace fits::synth {

/**
 * String pools used by the synthetic firmware generator. User-data keys
 * are the request-field names an Internet-facing device parses out of
 * HTTP requests; system keys match taint::systemDataKeys() so the
 * STA-ITS string filter has something real to match against.
 */
const std::vector<std::string> &userDataKeys();
const std::vector<std::string> &systemConfigKeys();
const std::vector<std::string> &errorMessages();
const std::vector<std::string> &formatStrings();
const std::vector<std::string> &urlPaths();
const std::vector<std::string> &configLines();

} // namespace fits::synth

#endif // FITS_SYNTH_WORDPOOLS_HH_
