#include "datapool.hh"

#include <cassert>

namespace fits::synth {

RodataPool::RodataPool(ir::Addr base)
    : base_(base)
{
}

ir::Addr
RodataPool::intern(const std::string &text)
{
    auto it = interned_.find(text);
    if (it != interned_.end())
        return it->second;
    const ir::Addr addr = base_ + bytes_.size();
    bytes_.insert(bytes_.end(), text.begin(), text.end());
    bytes_.push_back(0);
    interned_[text] = addr;
    return addr;
}

ir::Addr
RodataPool::addWord(std::uint64_t value)
{
    const ir::Addr addr = base_ + bytes_.size();
    for (std::size_t i = 0; i < bin::kPtrSize; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    return addr;
}

ir::Addr
RodataPool::reserveWords(std::size_t n)
{
    const ir::Addr addr = base_ + bytes_.size();
    bytes_.insert(bytes_.end(), n * bin::kPtrSize, 0);
    return addr;
}

void
RodataPool::patchWord(ir::Addr addr, std::uint64_t value)
{
    assert(addr >= base_);
    const std::size_t off = static_cast<std::size_t>(addr - base_);
    assert(off + bin::kPtrSize <= bytes_.size());
    for (std::size_t i = 0; i < bin::kPtrSize; ++i)
        bytes_[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
}

bin::Section
RodataPool::finish() const
{
    bin::Section sec;
    sec.name = ".rodata";
    sec.addr = base_;
    sec.flags = bin::kSecRead;
    sec.bytes = bytes_;
    return sec;
}

DataPool::DataPool(ir::Addr base)
    : base_(base)
{
}

ir::Addr
DataPool::addWord(std::uint64_t value)
{
    const ir::Addr addr = cursor();
    for (std::size_t i = 0; i < bin::kPtrSize; ++i)
        bytes_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    return addr;
}

ir::Addr
DataPool::reserveWords(std::size_t n)
{
    const ir::Addr addr = cursor();
    bytes_.insert(bytes_.end(), n * bin::kPtrSize, 0);
    return addr;
}

void
DataPool::patchWord(ir::Addr addr, std::uint64_t value)
{
    assert(addr >= base_);
    const std::size_t off = static_cast<std::size_t>(addr - base_);
    assert(off + bin::kPtrSize <= bytes_.size());
    for (std::size_t i = 0; i < bin::kPtrSize; ++i)
        bytes_[off + i] = static_cast<std::uint8_t>(value >> (8 * i));
}

ir::Addr
DataPool::addBytes(const std::vector<std::uint8_t> &newBytes)
{
    const ir::Addr addr = cursor();
    bytes_.insert(bytes_.end(), newBytes.begin(), newBytes.end());
    return addr;
}

bin::Section
DataPool::finish() const
{
    bin::Section sec;
    sec.name = ".data";
    sec.addr = base_;
    sec.flags = bin::kSecRead | bin::kSecWrite;
    sec.bytes = bytes_;
    return sec;
}

} // namespace fits::synth
