#ifndef FITS_SYNTH_PROFILES_HH_
#define FITS_SYNTH_PROFILES_HH_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "binary/image.hh"
#include "firmware/fwimg.hh"

namespace fits::synth {

/**
 * Per-vendor generation profile. The knobs encode the firmware traits
 * the paper attributes to each vendor: how distinctive the ITS getter
 * is relative to look-alike config getters (drives top-1 vs top-3
 * precision), how big the network binary is (drives Figure 4), and the
 * mix of data-flow shapes (drives the Table 5/6 engine differences).
 */
struct VendorProfile
{
    std::string vendor;
    std::vector<std::string> series;
    std::vector<std::string> binaryNames;
    bin::Arch arch = bin::Arch::Arm;

    /** Custom-function count range of the network binary. */
    int minCustomFns = 400;
    int maxCustomFns = 1200;

    // ---- ITS-inference difficulty ----------------------------------
    /** NVRAM-style config getters that imitate the ITS shape. */
    int numNvramConfounders = 2;
    /** 0..1: how closely confounders match the ITS behaviour profile
     * (higher -> the true ITS ranks lower). */
    double confounderItsSimilarity = 0.5;
    /** Probability weights for the number (0/1/2) of *strong*
     * confounders — param-bounded config getters that outrank the
     * true ITS. These weights set each vendor's top-1/top-2 rates. */
    std::array<double, 3> strongConfounderWeights{1.0, 0.0, 0.0};
    /** Error-printer functions (many callers, string args). */
    int numErrorPrinters = 4;

    // ---- Taint workload (base counts; jittered per sample) ---------
    int directBugs = 2;        ///< const-address request-buffer flows
    int deepDirectBugs = 0;    ///< same, but behind deep call chains
    int scanLoopBugs = 0;      ///< loop-indexed buffer scans
    int indirectParamBugs = 0; ///< taint crossing indirect calls
    int itsFetchBugs = 4;      ///< shallow flows from the ITS getter
    int itsDeepBugs = 4;       ///< deep call chains from the ITS getter
    int boundsCheckedSites = 2;
    int deadGuardSites = 2;
    int escapedSites = 1;
    int systemDataSites = 2;

    // ---- Packaging --------------------------------------------------
    fw::Encoding encoding = fw::Encoding::None;
    std::size_t bootPadding = 64;
};

/** Profiles of the five vendors in the evaluation. */
VendorProfile netgearProfile();
VendorProfile dlinkProfile();
VendorProfile tplinkProfile();
VendorProfile tendaProfile();
VendorProfile ciscoProfile();

/** One firmware sample to generate. */
struct SampleSpec
{
    enum class FailureMode : std::uint8_t
    {
        None,
        OpaqueEncoding,  ///< unpack fails: unsupported vendor crypto
        CorruptImage,    ///< unpack fails: checksum mismatch
        NoNetworkBinary, ///< selection fails: no network executable
        StructOffset,    ///< unpacks fine, but no ITS exists by design
    };

    std::string name;    ///< e.g. "R7000P-V1.3.0.8"
    std::string product; ///< series/model
    std::string version;
    bool latest = false; ///< belongs to the "latest firmware" dataset
    /** Vendor mode: keep function symbols instead of stripping (a
     * vendor analyzing its own build — Discussion §5). */
    bool keepSymbols = false;
    std::uint64_t seed = 0;
    VendorProfile profile;
    FailureMode failure = FailureMode::None;
};

/**
 * The 59-sample corpus mirroring the paper's dataset: the Karonte-set
 * counts per vendor (NETGEAR 17, D-Link 9, TP-Link 16, Tenda 7) plus
 * the latest-firmware samples (NETGEAR 2, D-Link 3, TP-Link 2, Tenda
 * 2, Cisco 1), including four pre-processing failures and two
 * struct-offset designs.
 */
std::vector<SampleSpec> standardDataset();

} // namespace fits::synth

#endif // FITS_SYNTH_PROFILES_HH_
