#ifndef FITS_SYNTH_MANIFEST_HH_
#define FITS_SYNTH_MANIFEST_HH_

#include <set>
#include <string>
#include <vector>

#include "ir/types.hh"

namespace fits::synth {

/**
 * Classification of every planted sink call site. This is the ground
 * truth that replaces the paper's manual verification / device
 * debugging: an alert at a site is a true positive iff the site's
 * class is a real bug.
 */
enum class SiteClass : std::uint8_t
{
    RealBug,      ///< unsanitized user data reaches the sink
    BoundsChecked,///< a length check guards the copy (not a bug)
    DeadGuard,    ///< sink is behind a constant-false debug guard
    Escaped,      ///< a custom escape/sanitize function intervenes
    SystemData,   ///< data is device config (MAC, mask), not user input
};

const char *siteClassName(SiteClass cls);

/** How the flow reaches the sink — determines which engines can see
 * it; recorded for per-experiment diagnostics. */
enum class FlowKind : std::uint8_t
{
    DirectGlobal,  ///< handler loads the request buffer at a constant
                   ///< address
    ScanLoop,      ///< handler scans the buffer with a loop index
    ItsFetch,      ///< data comes from an ITS getter's return value
    ItsDeepChain,  ///< ItsFetch, then a deep call chain to the sink
    IndirectParam, ///< tainted data crosses an indirect call as an
                   ///< argument
    ConfigOnly,    ///< no user data involved at all
};

const char *flowKindName(FlowKind kind);

/** One planted sink call site. */
struct SinkSite
{
    ir::Addr addr = 0;   ///< statement address of the sink call
    SiteClass cls = SiteClass::RealBug;
    FlowKind flow = FlowKind::DirectGlobal;
    std::string sinkName;

    bool isBug() const { return cls == SiteClass::RealBug; }
};

/** Ground truth for one generated firmware sample. */
struct GroundTruth
{
    /** Entry addresses of functions that genuinely are ITSs. */
    std::vector<ir::Addr> itsFunctions;

    /** Entry addresses of ITS look-alike confounders (not ITSs). */
    std::vector<ir::Addr> confounders;

    std::vector<SinkSite> sinkSites;

    /** False if this sample uses the struct-offset design in which no
     * custom function qualifies as an ITS (§4.2's two failures). */
    bool hasIts = true;

    /** Addresses of real-bug sink sites. */
    std::set<ir::Addr> bugSites() const;

    /** The site record at an address, or nullptr. */
    const SinkSite *siteAt(ir::Addr addr) const;

    std::size_t bugCount() const;
};

} // namespace fits::synth

#endif // FITS_SYNTH_MANIFEST_HH_
