#include "profiles.hh"

#include "support/rng.hh"
#include "support/strings.hh"

namespace fits::synth {

VendorProfile
netgearProfile()
{
    VendorProfile p;
    p.vendor = "NETGEAR";
    p.series = {"R7000P", "R7800", "R8900", "XR500", "WNR3500",
                "AC1450", "R6400", "R8000"};
    p.binaryNames = {"httpd", "netcgi"};
    p.arch = bin::Arch::Arm;
    p.minCustomFns = 1200;
    p.maxCustomFns = 2300;
    // NETGEAR's getter is distinctive: top-1 mostly succeeds.
    p.numNvramConfounders = 2;
    p.confounderItsSimilarity = 0.25;
    p.strongConfounderWeights = {0.72, 0.20, 0.08};
    p.numErrorPrinters = 6;
    // Large binaries with handler tables and scan loops: Karonte sees
    // more than STA; STA drowns in guarded debug sites.
    p.directBugs = 1;
    p.deepDirectBugs = 1;
    p.scanLoopBugs = 1;
    p.indirectParamBugs = 1;
    p.itsFetchBugs = 4;
    p.itsDeepBugs = 3;
    p.boundsCheckedSites = 5;
    p.deadGuardSites = 3;
    p.escapedSites = 1;
    p.systemDataSites = 2;
    p.encoding = fw::Encoding::None;
    p.bootPadding = 128;
    return p;
}

VendorProfile
dlinkProfile()
{
    VendorProfile p;
    p.vendor = "D-Link";
    p.series = {"DIR826L", "DAP1860", "DIR1960", "DWR921", "DCS935",
                "DIR868L"};
    p.binaryNames = {"miniupnpd", "uhttpd", "prog.cgi"};
    p.arch = bin::Arch::Mips;
    p.minCustomFns = 350;
    p.maxCustomFns = 1400;
    // Strong NVRAM confounders: the true ITS mostly ranks 2nd-3rd.
    p.numNvramConfounders = 4;
    p.confounderItsSimilarity = 0.85;
    p.strongConfounderWeights = {0.38, 0.00, 0.62};
    p.numErrorPrinters = 4;
    p.directBugs = 2;
    p.deepDirectBugs = 0;
    p.scanLoopBugs = 0;
    p.indirectParamBugs = 0;
    p.itsFetchBugs = 2;
    p.itsDeepBugs = 1;
    p.boundsCheckedSites = 1;
    p.deadGuardSites = 0;
    p.escapedSites = 1;
    p.systemDataSites = 1;
    p.encoding = fw::Encoding::Xor;
    p.bootPadding = 32;
    return p;
}

VendorProfile
tplinkProfile()
{
    VendorProfile p;
    p.vendor = "TP-Link";
    p.series = {"AP500", "C2", "W8968", "TD-W9980", "WA901ND",
                "WR941ND", "TX-VG1530", "KC120"};
    p.binaryNames = {"httpd"};
    p.arch = bin::Arch::Arm;
    p.minCustomFns = 250;
    p.maxCustomFns = 1900;
    p.numNvramConfounders = 3;
    p.confounderItsSimilarity = 0.8;
    p.strongConfounderWeights = {0.44, 0.33, 0.23};
    p.numErrorPrinters = 5;
    // Small binaries; Karonte handles most flows, STA sees few.
    p.directBugs = 0;
    p.deepDirectBugs = 0;
    p.scanLoopBugs = 0;
    p.indirectParamBugs = 0;
    p.itsFetchBugs = 1;
    p.itsDeepBugs = 1;
    p.boundsCheckedSites = 0;
    p.deadGuardSites = 0;
    p.escapedSites = 0;
    p.systemDataSites = 1;
    p.encoding = fw::Encoding::Rot;
    p.bootPadding = 48;
    return p;
}

VendorProfile
tendaProfile()
{
    VendorProfile p;
    p.vendor = "Tenda";
    p.series = {"AC9", "AC15", "FH1201", "WH450A", "G3"};
    p.binaryNames = {"httpd"};
    p.arch = bin::Arch::Arm;
    p.minCustomFns = 900;
    p.maxCustomFns = 2000;
    p.numNvramConfounders = 3;
    p.confounderItsSimilarity = 0.7;
    p.strongConfounderWeights = {0.48, 0.26, 0.26};
    p.numErrorPrinters = 4;
    p.directBugs = 1;
    p.deepDirectBugs = 0;
    p.scanLoopBugs = 0;
    p.indirectParamBugs = 0;
    p.itsFetchBugs = 6;
    p.itsDeepBugs = 5;
    p.boundsCheckedSites = 1;
    p.deadGuardSites = 0;
    p.escapedSites = 0;
    p.systemDataSites = 2;
    p.encoding = fw::Encoding::None;
    p.bootPadding = 64;
    return p;
}

VendorProfile
ciscoProfile()
{
    VendorProfile p;
    p.vendor = "Cisco";
    p.series = {"RV130X", "RV340"};
    p.binaryNames = {"httpd"};
    p.arch = bin::Arch::Arm;
    p.minCustomFns = 1200;
    p.maxCustomFns = 1500;
    // Very strong confounders: top-1/top-2 fail, top-3 succeeds (the
    // RV130X row of Table 3).
    p.numNvramConfounders = 5;
    p.confounderItsSimilarity = 0.95;
    p.strongConfounderWeights = {0.00, 0.00, 1.00};
    p.numErrorPrinters = 5;
    p.directBugs = 1;
    p.deepDirectBugs = 0;
    p.scanLoopBugs = 1;
    p.indirectParamBugs = 0;
    p.itsFetchBugs = 20;
    p.itsDeepBugs = 20;
    p.boundsCheckedSites = 4;
    p.deadGuardSites = 4;
    p.escapedSites = 2;
    p.systemDataSites = 3;
    p.encoding = fw::Encoding::None;
    p.bootPadding = 96;
    return p;
}

namespace {

/** Deterministic per-sample jitter so the corpus is not uniform. */
void
jitter(VendorProfile &p, support::Rng &rng)
{
    auto bump = [&rng](int &v, int lo, int hi) {
        v += static_cast<int>(rng.uniformInt(lo, hi));
        if (v < 0)
            v = 0;
    };
    bump(p.directBugs, -1, 0);
    bump(p.scanLoopBugs, -1, 0);
    bump(p.indirectParamBugs, -1, 0);
    bump(p.itsFetchBugs, -1, 2);
    bump(p.itsDeepBugs, -1, 2);
    bump(p.boundsCheckedSites, -1, 1);
    bump(p.deadGuardSites, -1, 1);
    bump(p.systemDataSites, 0, 1);
    bump(p.numNvramConfounders, 0, 1);
}

SampleSpec
makeSample(const VendorProfile &base, std::size_t index, bool latest,
           std::uint64_t seed,
           SampleSpec::FailureMode failure = SampleSpec::FailureMode::None)
{
    support::Rng rng(seed);
    SampleSpec spec;
    spec.profile = base;
    jitter(spec.profile, rng);
    // The paper's dataset spans ARM, AARCH64 and MIPS; NETGEAR's
    // high-end models (R8900/XR500) are AARCH64.
    if (spec.profile.vendor == "NETGEAR" && rng.chance(0.3))
        spec.profile.arch = bin::Arch::Aarch64;
    spec.product = base.series[index % base.series.size()];
    spec.version = support::format(
        "V%d.%d.%d.%d", static_cast<int>(rng.uniformInt(1, 2)),
        static_cast<int>(rng.uniformInt(0, 3)),
        static_cast<int>(rng.uniformInt(0, 9)),
        static_cast<int>(rng.uniformInt(2, 60)));
    spec.name = spec.product + "-" + spec.version;
    spec.latest = latest;
    spec.seed = seed;
    spec.failure = failure;
    if (failure == SampleSpec::FailureMode::OpaqueEncoding)
        spec.profile.encoding = fw::Encoding::Opaque;
    return spec;
}

} // namespace

std::vector<SampleSpec>
standardDataset()
{
    using FM = SampleSpec::FailureMode;
    std::vector<SampleSpec> out;
    std::uint64_t seed = 0xf175e00d00000000ULL;

    auto add = [&out, &seed](const VendorProfile &p, std::size_t idx,
                             bool latest, FM failure = FM::None) {
        out.push_back(makeSample(p, idx, latest, seed, failure));
        seed += 0x9e3779b97f4a7c15ULL;
    };

    const auto ng = netgearProfile();
    const auto dl = dlinkProfile();
    const auto tp = tplinkProfile();
    const auto td = tendaProfile();
    const auto cs = ciscoProfile();

    // --- Karonte dataset --------------------------------------------
    for (std::size_t i = 0; i < 17; ++i)
        add(ng, i, false);
    // D-Link: one opaque-crypto failure, one struct-offset design.
    for (std::size_t i = 0; i < 7; ++i)
        add(dl, i, false);
    add(dl, 7, false, FM::OpaqueEncoding);
    add(dl, 8, false, FM::StructOffset);
    // TP-Link: one opaque, one corrupt, one struct-offset.
    for (std::size_t i = 0; i < 13; ++i)
        add(tp, i, false);
    add(tp, 13, false, FM::OpaqueEncoding);
    add(tp, 14, false, FM::CorruptImage);
    add(tp, 15, false, FM::StructOffset);
    // Tenda: one sample whose file system lacks a network binary.
    for (std::size_t i = 0; i < 6; ++i)
        add(td, i, false);
    add(td, 6, false, FM::NoNetworkBinary);

    // --- Latest firmware --------------------------------------------
    for (std::size_t i = 0; i < 2; ++i)
        add(ng, i, true);
    for (std::size_t i = 0; i < 3; ++i)
        add(dl, i, true);
    for (std::size_t i = 0; i < 2; ++i)
        add(tp, i, true);
    for (std::size_t i = 0; i < 2; ++i)
        add(td, i, true);
    add(cs, 0, true);

    return out;
}

} // namespace fits::synth
