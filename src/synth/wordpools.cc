#include "wordpools.hh"

namespace fits::synth {

const std::vector<std::string> &
userDataKeys()
{
    static const std::vector<std::string> keys = {
        "username",    "password",   "hostname",   "ssid",
        "wpa_psk",     "url",        "redirect",   "lang",
        "session_id",  "token",      "email",      "device_name",
        "ntp_server",  "ddns_user",  "ddns_pass",  "port_fwd",
        "vpn_user",    "vpn_pass",   "share_name", "ftp_user",
        "ftp_pass",    "wps_pin",    "guest_ssid", "schedule",
        "mac_filter",  "dmz_host",   "static_route", "wan_user",
        "wan_pass",    "proxy_host", "syslog_host", "upnp_desc",
    };
    return keys;
}

const std::vector<std::string> &
systemConfigKeys()
{
    // Must stay in sync with taint::systemDataKeys(); the generator
    // indexes system flows by these so the string filter can act.
    static const std::vector<std::string> keys = {
        "lan_mac",     "wan_mac",     "subnet_mask", "lan_gateway",
        "wan_gateway", "lan_ipaddr",  "wan_ipaddr",  "dns_server",
        "fw_version",  "hw_id",       "uptime",      "wan_proto",
        "lan_netmask", "serial_no",
    };
    return keys;
}

const std::vector<std::string> &
errorMessages()
{
    static const std::vector<std::string> msgs = {
        "error: invalid request",    "error: out of memory",
        "error: bad parameter",      "error: socket failed",
        "error: timeout",            "error: permission denied",
        "error: malformed header",   "error: unsupported method",
        "error: session expired",    "error: checksum mismatch",
        "warn: retrying operation",  "warn: config missing",
        "fatal: cannot bind port",   "fatal: watchdog reset",
        "info: request handled",     "info: session opened",
    };
    return msgs;
}

const std::vector<std::string> &
formatStrings()
{
    static const std::vector<std::string> fmts = {
        "%s: %s",       "GET %s HTTP/1.1",   "val=%s",
        "user %s logged in", "cfg %s=%s",    "ifconfig %s up",
        "ping -c 1 %s", "echo %s > /tmp/x",  "%s\r\n",
        "name=%s id=%d",
    };
    return fmts;
}

const std::vector<std::string> &
urlPaths()
{
    static const std::vector<std::string> paths = {
        "/cgi-bin/login",  "/apply.cgi",      "/setup.cgi",
        "/goform/SetCfg",  "/status.html",    "/wan.htm",
        "/wireless.htm",   "/reboot.cgi",     "/upgrade.cgi",
        "/api/device",
    };
    return paths;
}

const std::vector<std::string> &
configLines()
{
    static const std::vector<std::string> lines = {
        "lan_ipaddr=192.168.1.1",  "subnet_mask=255.255.255.0",
        "wan_proto=dhcp",          "dns_server=8.8.8.8",
        "fw_version=1.0.0.42",     "hw_id=A1",
        "lan_mac=aa:bb:cc:dd:ee:ff",
    };
    return lines;
}

} // namespace fits::synth
