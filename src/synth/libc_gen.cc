#include "libc_gen.hh"

#include "ir/builder.hh"

namespace fits::synth {

namespace {

using ir::BinOp;
using ir::FunctionBuilder;
using ir::Operand;
using ir::RegId;

constexpr RegId kP0 = 4; // callee-local scratch registers
constexpr RegId kP1 = 5;
constexpr RegId kP2 = 6;
constexpr RegId kAcc = 7;

Operand
tmp(ir::TmpId t)
{
    return Operand::ofTmp(t);
}

Operand
imm(std::uint64_t v)
{
    return Operand::ofImm(v);
}

/** size_t strlen(const char *s): count until the NUL byte. */
ir::Function
buildStrlen(ir::Addr entry)
{
    FunctionBuilder b("strlen");
    auto header = b.newBlock();
    auto body = b.newBlock();
    auto exit = b.newBlock();

    // entry: p = s; n = 0
    b.put(kP0, tmp(b.get(ir::kRegR0)));
    b.put(kAcc, imm(0));
    b.jump(header);

    b.switchTo(header);
    auto c = b.load(tmp(b.get(kP0)));
    auto isEnd = b.binop(BinOp::CmpEq, tmp(c), imm(0));
    b.branch(tmp(isEnd), exit);

    b.switchTo(body);
    b.put(kP0, tmp(b.binop(BinOp::Add, tmp(b.get(kP0)), imm(1))));
    b.put(kAcc, tmp(b.binop(BinOp::Add, tmp(b.get(kAcc)), imm(1))));
    b.jump(header);

    b.switchTo(exit);
    b.put(ir::kRetReg, tmp(b.get(kAcc)));
    b.ret();
    return b.build(entry);
}

/** char *strcpy(char *dst, const char *src). */
ir::Function
buildStrcpy(ir::Addr entry)
{
    FunctionBuilder b("strcpy");
    auto header = b.newBlock();
    auto body = b.newBlock();
    auto exit = b.newBlock();

    b.put(kP0, tmp(b.get(ir::kRegR0)));
    b.put(kP1, tmp(b.get(ir::kRegR1)));
    b.jump(header);

    b.switchTo(header);
    auto c = b.load(tmp(b.get(kP1)));
    b.store(tmp(b.get(kP0)), tmp(c));
    auto done = b.binop(BinOp::CmpEq, tmp(c), imm(0));
    b.branch(tmp(done), exit);

    b.switchTo(body);
    b.put(kP0, tmp(b.binop(BinOp::Add, tmp(b.get(kP0)), imm(1))));
    b.put(kP1, tmp(b.binop(BinOp::Add, tmp(b.get(kP1)), imm(1))));
    b.jump(header);

    b.switchTo(exit);
    b.ret(); // r0 still holds dst per convention
    return b.build(entry);
}

/** char *strncpy(char *dst, const char *src, size_t n). */
ir::Function
buildStrncpy(ir::Addr entry)
{
    FunctionBuilder b("strncpy");
    auto header = b.newBlock();
    auto body = b.newBlock();
    auto exit = b.newBlock();

    b.put(kP0, tmp(b.get(ir::kRegR0)));
    b.put(kP1, tmp(b.get(ir::kRegR1)));
    b.put(kP2, tmp(b.get(ir::kRegR2)));
    b.jump(header);

    b.switchTo(header);
    auto n = b.get(kP2);
    auto done = b.binop(BinOp::CmpEq, tmp(n), imm(0));
    b.branch(tmp(done), exit);

    b.switchTo(body);
    auto c = b.load(tmp(b.get(kP1)));
    b.store(tmp(b.get(kP0)), tmp(c));
    b.put(kP0, tmp(b.binop(BinOp::Add, tmp(b.get(kP0)), imm(1))));
    b.put(kP1, tmp(b.binop(BinOp::Add, tmp(b.get(kP1)), imm(1))));
    b.put(kP2, tmp(b.binop(BinOp::Sub, tmp(b.get(kP2)), imm(1))));
    b.jump(header);

    b.switchTo(exit);
    b.ret();
    return b.build(entry);
}

/** int memcmp(const void *a, const void *b, size_t n). */
ir::Function
buildMemcmp(ir::Addr entry)
{
    FunctionBuilder b("memcmp");
    auto header = b.newBlock();
    auto check = b.newBlock();
    auto body = b.newBlock();
    auto exit = b.newBlock();

    b.put(kP0, tmp(b.get(ir::kRegR0)));
    b.put(kP1, tmp(b.get(ir::kRegR1)));
    b.put(kP2, tmp(b.get(ir::kRegR2)));
    b.jump(header);

    b.switchTo(header);
    auto done = b.binop(BinOp::CmpEq, tmp(b.get(kP2)), imm(0));
    b.branch(tmp(done), exit);

    b.switchTo(check);
    auto ca = b.load(tmp(b.get(kP0)));
    auto cb = b.load(tmp(b.get(kP1)));
    auto ne = b.binop(BinOp::CmpNe, tmp(ca), tmp(cb));
    b.branch(tmp(ne), exit);

    b.switchTo(body);
    b.put(kP0, tmp(b.binop(BinOp::Add, tmp(b.get(kP0)), imm(1))));
    b.put(kP1, tmp(b.binop(BinOp::Add, tmp(b.get(kP1)), imm(1))));
    b.put(kP2, tmp(b.binop(BinOp::Sub, tmp(b.get(kP2)), imm(1))));
    b.jump(header);

    b.switchTo(exit);
    auto da = b.load(tmp(b.get(kP0)));
    auto db = b.load(tmp(b.get(kP1)));
    b.put(ir::kRetReg, tmp(b.binop(BinOp::Sub, tmp(da), tmp(db))));
    b.ret();
    return b.build(entry);
}

/** Shared shape for strcmp/strncmp (bounded flag switches the check). */
ir::Function
buildStrcmpLike(ir::Addr entry, const char *name, bool bounded)
{
    FunctionBuilder b(name);
    auto header = b.newBlock();
    auto body = b.newBlock();
    auto exit = b.newBlock();

    b.put(kP0, tmp(b.get(ir::kRegR0)));
    b.put(kP1, tmp(b.get(ir::kRegR1)));
    if (bounded)
        b.put(kP2, tmp(b.get(ir::kRegR2)));
    b.jump(header);

    b.switchTo(header);
    if (bounded) {
        auto done = b.binop(BinOp::CmpEq, tmp(b.get(kP2)), imm(0));
        b.branch(tmp(done), exit);
    }
    auto ca = b.load(tmp(b.get(kP0)));
    auto cb = b.load(tmp(b.get(kP1)));
    auto diff = b.binop(BinOp::Sub, tmp(ca), tmp(cb));
    b.put(kAcc, tmp(diff));
    auto differs = b.binop(BinOp::CmpNe, tmp(diff), imm(0));
    b.branch(tmp(differs), exit);

    b.switchTo(body);
    auto end = b.binop(BinOp::CmpEq, tmp(ca), imm(0));
    b.branch(tmp(end), exit);
    b.put(kP0, tmp(b.binop(BinOp::Add, tmp(b.get(kP0)), imm(1))));
    b.put(kP1, tmp(b.binop(BinOp::Add, tmp(b.get(kP1)), imm(1))));
    if (bounded)
        b.put(kP2, tmp(b.binop(BinOp::Sub, tmp(b.get(kP2)), imm(1))));
    b.jump(header);

    b.switchTo(exit);
    b.put(ir::kRetReg, tmp(b.get(kAcc)));
    b.ret();
    return b.build(entry);
}

/** char *strstr(const char *hay, const char *needle): nested scan
 * calling strlen (an anchor calling an anchor). */
ir::Function
buildStrstr(ir::Addr entry, ir::Addr strlenEntry)
{
    FunctionBuilder b("strstr");
    auto outer = b.newBlock();
    auto inner = b.newBlock();
    auto innerStep = b.newBlock();
    auto advance = b.newBlock();
    auto found = b.newBlock();
    auto exit = b.newBlock();

    b.put(kP0, tmp(b.get(ir::kRegR0))); // cp
    b.put(kP1, tmp(b.get(ir::kRegR1))); // needle
    b.setArg(0, tmp(b.get(kP1)));
    b.call(strlenEntry);
    b.put(kAcc, tmp(b.retVal())); // needle length (unused, realistic)
    b.jump(outer);

    b.switchTo(outer);
    auto c = b.load(tmp(b.get(kP0)));
    auto end = b.binop(BinOp::CmpEq, tmp(c), imm(0));
    b.branch(tmp(end), exit);

    b.switchTo(inner);
    b.put(kP2, imm(0)); // offset
    b.jump(innerStep);

    b.switchTo(innerStep);
    auto s2 = b.binop(BinOp::Add, tmp(b.get(kP1)), tmp(b.get(kP2)));
    auto c2 = b.load(tmp(s2));
    auto matched = b.binop(BinOp::CmpEq, tmp(c2), imm(0));
    b.branch(tmp(matched), found);
    auto s1 = b.binop(BinOp::Add, tmp(b.get(kP0)), tmp(b.get(kP2)));
    auto c1 = b.load(tmp(s1));
    auto miss = b.binop(BinOp::CmpNe, tmp(c1), tmp(c2));
    b.branch(tmp(miss), advance);
    b.put(kP2, tmp(b.binop(BinOp::Add, tmp(b.get(kP2)), imm(1))));
    b.jump(innerStep);

    b.switchTo(advance);
    b.put(kP0, tmp(b.binop(BinOp::Add, tmp(b.get(kP0)), imm(1))));
    b.jump(outer);

    b.switchTo(found);
    b.put(ir::kRetReg, tmp(b.get(kP0)));
    b.ret();

    b.switchTo(exit);
    b.put(ir::kRetReg, imm(0));
    b.ret();
    return b.build(entry);
}

/** char *strchr(const char *s, int c) — or strrchr with a tail scan. */
ir::Function
buildStrchrLike(ir::Addr entry, const char *name)
{
    FunctionBuilder b(name);
    auto header = b.newBlock();
    auto match = b.newBlock();
    auto step = b.newBlock();
    auto exit = b.newBlock();

    b.put(kP0, tmp(b.get(ir::kRegR0)));
    b.put(kP1, tmp(b.get(ir::kRegR1)));
    b.jump(header);

    b.switchTo(header);
    auto c = b.load(tmp(b.get(kP0)));
    auto eq = b.binop(BinOp::CmpEq, tmp(c), tmp(b.get(kP1)));
    b.branch(tmp(eq), match);
    auto end = b.binop(BinOp::CmpEq, tmp(c), imm(0));
    b.branch(tmp(end), exit);
    b.jump(step);

    b.switchTo(step);
    b.put(kP0, tmp(b.binop(BinOp::Add, tmp(b.get(kP0)), imm(1))));
    b.jump(header);

    b.switchTo(match);
    b.put(ir::kRetReg, tmp(b.get(kP0)));
    b.ret();

    b.switchTo(exit);
    b.put(ir::kRetReg, imm(0));
    b.ret();
    return b.build(entry);
}

/** void *memcpy(void *dst, const void *src, size_t n) (memmove gets an
 * extra direction branch). */
ir::Function
buildMemcpyLike(ir::Addr entry, const char *name, bool directionCheck)
{
    FunctionBuilder b(name);
    auto header = b.newBlock();
    auto body = b.newBlock();
    auto exit = b.newBlock();

    b.put(kP0, tmp(b.get(ir::kRegR0)));
    b.put(kP1, tmp(b.get(ir::kRegR1)));
    b.put(kP2, tmp(b.get(ir::kRegR2)));
    if (directionCheck) {
        auto overlap = b.binop(BinOp::CmpLt, tmp(b.get(kP0)),
                               tmp(b.get(kP1)));
        b.branch(tmp(overlap), header);
    }
    b.jump(header);

    b.switchTo(header);
    auto done = b.binop(BinOp::CmpEq, tmp(b.get(kP2)), imm(0));
    b.branch(tmp(done), exit);

    b.switchTo(body);
    auto c = b.load(tmp(b.get(kP1)));
    b.store(tmp(b.get(kP0)), tmp(c));
    b.put(kP0, tmp(b.binop(BinOp::Add, tmp(b.get(kP0)), imm(1))));
    b.put(kP1, tmp(b.binop(BinOp::Add, tmp(b.get(kP1)), imm(1))));
    b.put(kP2, tmp(b.binop(BinOp::Sub, tmp(b.get(kP2)), imm(1))));
    b.jump(header);

    b.switchTo(exit);
    b.ret();
    return b.build(entry);
}

/** void *memset(void *dst, int c, size_t n). */
ir::Function
buildMemset(ir::Addr entry)
{
    FunctionBuilder b("memset");
    auto header = b.newBlock();
    auto body = b.newBlock();
    auto exit = b.newBlock();

    b.put(kP0, tmp(b.get(ir::kRegR0)));
    b.put(kP1, tmp(b.get(ir::kRegR1)));
    b.put(kP2, tmp(b.get(ir::kRegR2)));
    b.jump(header);

    b.switchTo(header);
    auto done = b.binop(BinOp::CmpEq, tmp(b.get(kP2)), imm(0));
    b.branch(tmp(done), exit);

    b.switchTo(body);
    b.store(tmp(b.get(kP0)), tmp(b.get(kP1)));
    b.put(kP0, tmp(b.binop(BinOp::Add, tmp(b.get(kP0)), imm(1))));
    b.put(kP2, tmp(b.binop(BinOp::Sub, tmp(b.get(kP2)), imm(1))));
    b.jump(header);

    b.switchTo(exit);
    b.ret();
    return b.build(entry);
}

/** void *malloc(size_t n): bump allocator over a static arena. */
ir::Function
buildMalloc(ir::Addr entry, ir::Addr arenaPtrSlot)
{
    FunctionBuilder b("malloc");
    auto cur = b.load(imm(arenaPtrSlot));
    auto next = b.binop(BinOp::Add, tmp(cur), tmp(b.get(ir::kRegR0)));
    b.store(imm(arenaPtrSlot), tmp(next));
    b.put(ir::kRetReg, tmp(cur));
    b.ret();
    return b.build(entry);
}

/** char *strdup(const char *s): strlen + malloc + memcpy. */
ir::Function
buildStrdup(ir::Addr entry, ir::Addr strlenEntry, ir::Addr mallocEntry,
            ir::Addr memcpyEntry)
{
    FunctionBuilder b("strdup");
    b.put(kP0, tmp(b.get(ir::kRegR0)));
    b.setArg(0, tmp(b.get(kP0)));
    b.call(strlenEntry);
    auto len = b.retVal();
    b.put(kAcc, tmp(b.binop(BinOp::Add, tmp(len), imm(1))));
    b.setArg(0, tmp(b.get(kAcc)));
    b.call(mallocEntry);
    auto buf = b.retVal();
    b.put(kP1, tmp(buf));
    b.setArg(0, tmp(b.get(kP1)));
    b.setArg(1, tmp(b.get(kP0)));
    b.setArg(2, tmp(b.get(kAcc)));
    b.call(memcpyEntry);
    b.put(ir::kRetReg, tmp(b.get(kP1)));
    b.ret();
    return b.build(entry);
}

/** char *strtok(char *s, const char *delim) — simplified scan. */
ir::Function
buildStrtok(ir::Addr entry, ir::Addr stateSlot)
{
    FunctionBuilder b("strtok");
    auto useArg = b.newBlock();
    auto useState = b.newBlock();
    auto header = b.newBlock();
    auto hit = b.newBlock();
    auto step = b.newBlock();
    auto exit = b.newBlock();

    auto s = b.get(ir::kRegR0);
    auto isNull = b.binop(BinOp::CmpEq, tmp(s), imm(0));
    b.branch(tmp(isNull), useState);
    b.jump(useArg);

    b.switchTo(useArg);
    b.put(kP0, tmp(s));
    b.jump(header);

    b.switchTo(useState);
    b.put(kP0, tmp(b.load(imm(stateSlot))));
    b.jump(header);

    b.switchTo(header);
    auto c = b.load(tmp(b.get(kP0)));
    auto end = b.binop(BinOp::CmpEq, tmp(c), imm(0));
    b.branch(tmp(end), exit);
    auto dc = b.load(tmp(b.get(ir::kRegR1)));
    auto eq = b.binop(BinOp::CmpEq, tmp(c), tmp(dc));
    b.branch(tmp(eq), hit);
    b.jump(step);

    b.switchTo(step);
    b.put(kP0, tmp(b.binop(BinOp::Add, tmp(b.get(kP0)), imm(1))));
    b.jump(header);

    b.switchTo(hit);
    b.store(tmp(b.get(kP0)), imm(0));
    auto nxt = b.binop(BinOp::Add, tmp(b.get(kP0)), imm(1));
    b.store(imm(stateSlot), tmp(nxt));
    b.put(ir::kRetReg, tmp(b.get(kP0)));
    b.ret();

    b.switchTo(exit);
    b.put(ir::kRetReg, imm(0));
    b.ret();
    return b.build(entry);
}

/** int atoi(const char *s): digit loop. */
ir::Function
buildAtoi(ir::Addr entry)
{
    FunctionBuilder b("atoi");
    auto header = b.newBlock();
    auto body = b.newBlock();
    auto exit = b.newBlock();

    b.put(kP0, tmp(b.get(ir::kRegR0)));
    b.put(kAcc, imm(0));
    b.jump(header);

    b.switchTo(header);
    auto c = b.load(tmp(b.get(kP0)));
    auto lo = b.binop(BinOp::CmpLt, tmp(c), imm('0'));
    b.branch(tmp(lo), exit);
    auto hi = b.binop(BinOp::CmpGt, tmp(c), imm('9'));
    b.branch(tmp(hi), exit);
    b.jump(body);

    b.switchTo(body);
    auto ten = b.binop(BinOp::Mul, tmp(b.get(kAcc)), imm(10));
    auto digitBase = b.load(tmp(b.get(kP0)));
    auto digit = b.binop(BinOp::Sub, tmp(digitBase), imm('0'));
    b.put(kAcc, tmp(b.binop(BinOp::Add, tmp(ten), tmp(digit))));
    b.put(kP0, tmp(b.binop(BinOp::Add, tmp(b.get(kP0)), imm(1))));
    b.jump(header);

    b.switchTo(exit);
    b.put(ir::kRetReg, tmp(b.get(kAcc)));
    b.ret();
    return b.build(entry);
}

} // namespace

bin::BinaryImage
generateLibc()
{
    bin::BinaryImage lib;
    lib.name = "libc.so";
    lib.arch = bin::Arch::Arm;

    // A small data section: the malloc arena pointer and strtok state.
    bin::Section data;
    data.name = ".data";
    data.addr = bin::kDataBase;
    data.flags = bin::kSecRead | bin::kSecWrite;
    data.bytes.assign(64, 0);
    const ir::Addr arenaPtrSlot = bin::kDataBase;
    const ir::Addr strtokSlot = bin::kDataBase + 8;
    lib.sections.push_back(std::move(data));

    ir::Addr cursor = bin::kTextBase;
    auto place = [&cursor, &lib](ir::Function fn) {
        const ir::Addr entry = fn.entry;
        cursor += fn.byteSize() + ir::kStmtSize; // gap between functions
        lib.symbols.push_back({entry, fn.name});
        lib.program.addFunction(std::move(fn));
        return entry;
    };

    const ir::Addr strlenAt = place(buildStrlen(cursor));
    place(buildStrcpy(cursor));
    place(buildStrncpy(cursor));
    place(buildMemcmp(cursor));
    place(buildStrcmpLike(cursor, "strcmp", false));
    place(buildStrcmpLike(cursor, "strncmp", true));
    place(buildStrstr(cursor, strlenAt));
    place(buildStrchrLike(cursor, "strchr"));
    place(buildStrchrLike(cursor, "strrchr"));
    place(buildStrchrLike(cursor, "memchr"));
    const ir::Addr memcpyAt =
        place(buildMemcpyLike(cursor, "memcpy", false));
    place(buildMemcpyLike(cursor, "memmove", true));
    place(buildMemset(cursor));
    const ir::Addr mallocAt = place(buildMalloc(cursor, arenaPtrSlot));
    place(buildStrdup(cursor, strlenAt, mallocAt, memcpyAt));
    place(buildStrtok(cursor, strtokSlot));
    place(buildAtoi(cursor));

    return lib;
}

} // namespace fits::synth
