#ifndef FITS_SYNTH_DATAPOOL_HH_
#define FITS_SYNTH_DATAPOOL_HH_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "binary/image.hh"

namespace fits::synth {

/**
 * Builder for a .rodata section: interns NUL-terminated strings and
 * returns their virtual addresses (deduplicated).
 */
class RodataPool
{
  public:
    explicit RodataPool(ir::Addr base = bin::kRodataBase);

    /** Address of the string, appending it on first use. */
    ir::Addr intern(const std::string &text);

    /** Append a constant word (e.g. a jump/handler table entry that
     * belongs in read-only memory); returns its address. */
    ir::Addr addWord(std::uint64_t value);

    /** Reserve n contiguous words for later patching. */
    ir::Addr reserveWords(std::size_t n);

    /** Patch a previously reserved word. */
    void patchWord(ir::Addr addr, std::uint64_t value);

    /** Finish into a read-only section. */
    bin::Section finish() const;

    ir::Addr base() const { return base_; }

  private:
    ir::Addr base_;
    std::vector<std::uint8_t> bytes_;
    std::unordered_map<std::string, ir::Addr> interned_;
};

/**
 * Builder for a writable .data section: word slots (pointers or
 * integers), reservable first and patchable later — needed for handler
 * tables whose function entries are only known after the handlers are
 * built.
 */
class DataPool
{
  public:
    explicit DataPool(ir::Addr base = bin::kDataBase);

    /** Append a word; returns its address. */
    ir::Addr addWord(std::uint64_t value);

    /** Reserve n contiguous words; returns the first address. */
    ir::Addr reserveWords(std::size_t n);

    /** Patch a previously added/reserved word. */
    void patchWord(ir::Addr addr, std::uint64_t value);

    /** Append raw bytes (e.g. a config blob); returns the address. */
    ir::Addr addBytes(const std::vector<std::uint8_t> &bytes);

    bin::Section finish() const;

    ir::Addr base() const { return base_; }
    ir::Addr cursor() const { return base_ + bytes_.size(); }

  private:
    ir::Addr base_;
    std::vector<std::uint8_t> bytes_;
};

} // namespace fits::synth

#endif // FITS_SYNTH_DATAPOOL_HH_
