#ifndef FITS_SYNTH_LIBC_GEN_HH_
#define FITS_SYNTH_LIBC_GEN_HH_

#include "binary/image.hh"

namespace fits::synth {

/**
 * Generate the dependency library "libc.so": FIR implementations of the
 * anchor functions (strcpy, memcmp, strstr, ... — the paper's Figure 2)
 * plus a handful of ordinary libc functions. Library function names are
 * exported (real shared objects keep their dynamic symbols), which is
 * what lets FITS identify anchors by name and extract their BFVs from
 * the implementations.
 */
bin::BinaryImage generateLibc();

} // namespace fits::synth

#endif // FITS_SYNTH_LIBC_GEN_HH_
