#include "manifest.hh"

namespace fits::synth {

const char *
siteClassName(SiteClass cls)
{
    switch (cls) {
      case SiteClass::RealBug:       return "real-bug";
      case SiteClass::BoundsChecked: return "bounds-checked";
      case SiteClass::DeadGuard:     return "dead-guard";
      case SiteClass::Escaped:       return "escaped";
      case SiteClass::SystemData:    return "system-data";
    }
    return "?";
}

const char *
flowKindName(FlowKind kind)
{
    switch (kind) {
      case FlowKind::DirectGlobal:  return "direct-global";
      case FlowKind::ScanLoop:      return "scan-loop";
      case FlowKind::ItsFetch:      return "its-fetch";
      case FlowKind::ItsDeepChain:  return "its-deep-chain";
      case FlowKind::IndirectParam: return "indirect-param";
      case FlowKind::ConfigOnly:    return "config-only";
    }
    return "?";
}

std::set<ir::Addr>
GroundTruth::bugSites() const
{
    std::set<ir::Addr> out;
    for (const auto &site : sinkSites) {
        if (site.isBug())
            out.insert(site.addr);
    }
    return out;
}

const SinkSite *
GroundTruth::siteAt(ir::Addr addr) const
{
    for (const auto &site : sinkSites) {
        if (site.addr == addr)
            return &site;
    }
    return nullptr;
}

std::size_t
GroundTruth::bugCount() const
{
    std::size_t n = 0;
    for (const auto &site : sinkSites) {
        if (site.isBug())
            ++n;
    }
    return n;
}

} // namespace fits::synth
