#ifndef FITS_SYNTH_FIRMWARE_GEN_HH_
#define FITS_SYNTH_FIRMWARE_GEN_HH_

#include <cstdint>
#include <vector>

#include "synth/httpd_gen.hh"
#include "synth/profiles.hh"

namespace fits::synth {

/** One fully generated firmware sample. */
struct GeneratedFirmware
{
    SampleSpec spec;
    /** The packed FWIMG bytes (what the pipeline consumes). */
    std::vector<std::uint8_t> bytes;
    /** Ground truth of the network binary. */
    GroundTruth truth;
};

/**
 * Generate one complete firmware sample: network binary + libc + config
 * and web assets, packed into an FWIMG image with the profile's
 * encoding and boot padding. Failure modes produce images that fail at
 * the right pipeline stage (opaque crypto, corrupt payload, or a file
 * system without a network binary).
 */
GeneratedFirmware generateFirmware(const SampleSpec &spec);

/** Generate the whole standard 59-sample corpus. */
std::vector<GeneratedFirmware> generateStandardCorpus();

} // namespace fits::synth

#endif // FITS_SYNTH_FIRMWARE_GEN_HH_
