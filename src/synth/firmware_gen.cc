#include "firmware_gen.hh"

#include "binary/fbin.hh"
#include "ir/builder.hh"
#include "support/rng.hh"
#include "synth/libc_gen.hh"
#include "synth/wordpools.hh"

namespace fits::synth {

namespace {

std::vector<std::uint8_t>
textFile(const std::vector<std::string> &lines)
{
    std::vector<std::uint8_t> bytes;
    for (const auto &line : lines) {
        bytes.insert(bytes.end(), line.begin(), line.end());
        bytes.push_back('\n');
    }
    return bytes;
}

/** A small utility binary with no network imports (for the
 * no-network-binary failure sample, and as file-system filler). */
bin::BinaryImage
utilityBinary(const std::string &name)
{
    bin::BinaryImage image;
    image.name = name;
    image.arch = bin::Arch::Arm;
    image.neededLibraries = {"libc.so"};
    const ir::Addr strlenPlt = image.addImport("strlen", "libc.so");

    ir::FunctionBuilder b;
    b.setArg(0, ir::Operand::ofImm(bin::kRodataBase));
    b.call(strlenPlt);
    b.put(ir::kRetReg, ir::Operand::ofTmp(b.retVal()));
    b.ret();
    image.program.addFunction(b.build(bin::kTextBase));

    bin::Section rodata;
    rodata.name = ".rodata";
    rodata.addr = bin::kRodataBase;
    rodata.flags = bin::kSecRead;
    const char *text = "busybox-like utility\0";
    rodata.bytes.assign(text, text + 21);
    image.sections.push_back(std::move(rodata));

    image.strip();
    return image;
}

} // namespace

GeneratedFirmware
generateFirmware(const SampleSpec &spec)
{
    using FM = SampleSpec::FailureMode;

    GeneratedFirmware out;
    out.spec = spec;

    fw::FirmwareImage image;
    image.info.vendor = spec.profile.vendor;
    image.info.product = spec.product;
    image.info.version = spec.version;
    image.info.encoding = spec.profile.encoding;

    // Library and assets are present in every sample.
    const bin::BinaryImage libc = generateLibc();
    image.filesystem.addFile({"lib/libc.so", fw::FileType::Library,
                              bin::writeBinary(libc)});
    image.filesystem.addFile({"etc/config", fw::FileType::Config,
                              textFile(configLines())});
    image.filesystem.addFile(
        {"www/index.html", fw::FileType::Other,
         textFile({"<html><body>setup</body></html>"})});
    image.filesystem.addFile({"bin/busybox", fw::FileType::Executable,
                              bin::writeBinary(utilityBinary(
                                  "busybox"))});

    if (spec.failure != FM::NoNetworkBinary) {
        HttpdResult httpd = generateHttpd(spec);
        out.truth = std::move(httpd.truth);
        image.filesystem.addFile(
            {"usr/sbin/" + httpd.image.name, fw::FileType::Executable,
             bin::writeBinary(httpd.image)});
    }

    out.bytes = fw::packFirmware(image, spec.profile.bootPadding);

    if (spec.failure == FM::CorruptImage) {
        // Damage the payload so the checksum fails (truncated flash
        // dump / bad download).
        support::Rng rng(spec.seed ^ 0xc0441u);
        for (int i = 0; i < 8 && !out.bytes.empty(); ++i) {
            const std::size_t at =
                out.bytes.size() / 2 + rng.index(out.bytes.size() / 4);
            out.bytes[at] ^= 0xa5;
        }
    }

    return out;
}

std::vector<GeneratedFirmware>
generateStandardCorpus()
{
    std::vector<GeneratedFirmware> corpus;
    for (const auto &spec : standardDataset())
        corpus.push_back(generateFirmware(spec));
    return corpus;
}

} // namespace fits::synth
