#include "httpd_gen.hh"

#include <unordered_map>

#include "ir/builder.hh"
#include "support/rng.hh"
#include "support/strings.hh"
#include "synth/datapool.hh"
#include "synth/wordpools.hh"

namespace fits::synth {

namespace {

using ir::BinOp;
using ir::FunctionBuilder;
using ir::Operand;
using ir::RegId;

Operand
tmp(ir::TmpId t)
{
    return Operand::ofTmp(t);
}

Operand
imm(std::uint64_t v)
{
    return Operand::ofImm(v);
}

// Scratch registers used by generated bodies (r4..r12 are callee
// "locals" under the guest convention).
constexpr RegId kL0 = 4;
constexpr RegId kL1 = 5;
constexpr RegId kL2 = 6;
constexpr RegId kL3 = 7;
constexpr RegId kL4 = 8;
constexpr RegId kL5 = 9;
constexpr RegId kL6 = 10;

// BSS layout of the network binary.
constexpr ir::Addr kBssSize = 0x1800;
constexpr ir::Addr kRecvBuf = bin::kBssBase;          // raw request
constexpr ir::Addr kReqBuf = bin::kBssBase + 0x400;   // parsed request
constexpr ir::Addr kCfgBuf = bin::kBssBase + 0x800;   // device config
constexpr ir::Addr kSelector = bin::kBssBase + 0xc00; // request type
constexpr ir::Addr kScratchBase = bin::kBssBase + 0x1000;

/** A sink call recorded before layout is known. */
struct LocalSite
{
    FunctionBuilder::BlockId block;
    std::size_t stmt;
    SiteClass cls;
    FlowKind flow;
    std::string sink;
};

class Gen
{
  public:
    explicit Gen(const SampleSpec &spec)
        : spec_(spec), rng_(spec.seed ^ 0x5109ddfca3f1e2b7ULL)
    {
    }

    HttpdResult run();

  private:
    // ---- infrastructure -------------------------------------------
    ir::Addr plt(const std::string &name);
    ir::Addr place(FunctionBuilder &b,
                   const std::vector<LocalSite> &sites = {});
    ir::Addr scratchBuffer();
    ir::Addr userKeyAddr(const std::string &key, bool viaDataSlot);

    /** Emit a sink call consuming `value`; records the site. */
    void emitSink(FunctionBuilder &b, const std::string &sinkName,
                  Operand value, std::vector<LocalSite> &sites,
                  SiteClass cls, FlowKind flow);

    /** Wrap `value` in the class-specific guard pattern and sink it. */
    void emitClassified(FunctionBuilder &b, Operand value,
                        std::vector<LocalSite> &sites, SiteClass cls,
                        FlowKind flow);

    void emitErrorCall(FunctionBuilder &b);
    std::string pickSinkName(bool commandOk = true);

    // ---- function builders ----------------------------------------
    ir::Addr buildEscapeFn();
    ir::Addr buildErrorPrinter();
    ir::Addr buildNvramGetter(double similarity);
    ir::Addr buildStrongConfounder();
    ir::Addr buildLogFormatter();
    ir::Addr buildItsGetter();
    ir::Addr buildChain(int depth, SiteClass cls, FlowKind flow);
    ir::Addr buildHandler(SiteClass cls, FlowKind flow);
    ir::Addr buildScanHandler(SiteClass cls);
    ir::Addr buildIndirectHandler(SiteClass cls);
    ir::Addr buildBenignHandler();
    ir::Addr buildDispatcher(const std::vector<ir::Addr> &handlers,
                             const std::vector<ir::Addr> &indirect);
    ir::Addr buildParseRequest();
    ir::Addr buildRecvLoop(ir::Addr parse, ir::Addr dispatcher);
    ir::Addr buildPassThrough(ir::Addr callee, int extraBranches);
    ir::Addr buildFiller();

    const SampleSpec &spec_;
    support::Rng rng_;
    bin::BinaryImage image_;
    GroundTruth truth_;
    RodataPool rodata_;
    DataPool data_;
    ir::Addr cursor_ = bin::kTextBase;
    ir::Addr scratchCursor_ = kScratchBase;
    std::unordered_map<std::string, ir::Addr> pltCache_;

    ir::Addr escapeFn_ = 0;
    std::vector<ir::Addr> errorPrinters_;
    std::vector<ir::Addr> logFormatters_;
    std::vector<ir::Addr> nvramGetters_;
    ir::Addr itsGetter_ = 0;
    ir::Addr nvramTable_ = 0;
    std::vector<ir::Addr> fillers_;
    std::size_t nextUserKey_ = 0;
    std::size_t nextErrorMsg_ = 0;
    /** Entry -> plausible symbol name (used in vendor mode). */
    std::unordered_map<ir::Addr, std::string> names_;

    void
    tag(ir::Addr entry, std::string name)
    {
        names_[entry] = std::move(name);
    }
};

ir::Addr
Gen::plt(const std::string &name)
{
    auto it = pltCache_.find(name);
    if (it != pltCache_.end())
        return it->second;
    const ir::Addr addr = image_.addImport(name, "libc.so");
    pltCache_[name] = addr;
    return addr;
}

ir::Addr
Gen::place(FunctionBuilder &b, const std::vector<LocalSite> &sites)
{
    ir::Function fn = b.build(cursor_);
    const ir::Addr entry = fn.entry;
    for (const auto &site : sites) {
        SinkSite record;
        record.addr = fn.blocks[site.block].stmtAddr(site.stmt);
        record.cls = site.cls;
        record.flow = site.flow;
        record.sinkName = site.sink;
        truth_.sinkSites.push_back(std::move(record));
    }
    cursor_ += fn.byteSize() + ir::kStmtSize;
    image_.program.addFunction(std::move(fn));
    return entry;
}

ir::Addr
Gen::scratchBuffer()
{
    const ir::Addr addr = scratchCursor_;
    scratchCursor_ += 0x40;
    if (scratchCursor_ >= bin::kBssBase + kBssSize)
        scratchCursor_ = kScratchBase; // reuse; only identity matters
    return addr;
}

ir::Addr
Gen::userKeyAddr(const std::string &key, bool viaDataSlot)
{
    const ir::Addr str = rodata_.intern(key);
    if (!viaDataSlot)
        return str;
    // GOT-style indirection: the argument points into .data, and the
    // slot holds the pointer to the string (the paper's PT -> MT case).
    return data_.addWord(str);
}

void
Gen::emitSink(FunctionBuilder &b, const std::string &sinkName,
              Operand value, std::vector<LocalSite> &sites,
              SiteClass cls, FlowKind flow)
{
    if (sinkName == "system" || sinkName == "popen") {
        b.setArg(0, value);
    } else if (sinkName == "sprintf") {
        b.setArg(0, imm(scratchBuffer()));
        b.setArg(1, imm(rodata_.intern(
                      rng_.pick(formatStrings()))));
        b.setArg(2, value);
    } else if (sinkName == "strncpy" || sinkName == "strncat" ||
               sinkName == "memcpy") {
        b.setArg(0, imm(scratchBuffer()));
        b.setArg(1, value);
        b.setArg(2, imm(64));
    } else { // strcpy / strcat
        b.setArg(0, imm(scratchBuffer()));
        b.setArg(1, value);
    }
    sites.push_back({b.currentBlock(), b.nextStmtIndex(), cls, flow,
                     sinkName});
    b.call(plt(sinkName));
}

void
Gen::emitClassified(FunctionBuilder &b, Operand value,
                    std::vector<LocalSite> &sites, SiteClass cls,
                    FlowKind flow)
{
    const std::string sink =
        pickSinkName(cls == SiteClass::RealBug);

    switch (cls) {
      case SiteClass::RealBug:
      case SiteClass::SystemData:
        emitSink(b, sink, value, sites, cls, flow);
        break;

      case SiteClass::BoundsChecked: {
        // len = strlen(v); if (len < 64) copy(v);
        b.setArg(0, value);
        b.call(plt("strlen"));
        auto len = b.retVal();
        auto inRange = b.binop(BinOp::CmpLt, tmp(len), imm(64));
        auto copyBlk = b.newBlock();
        auto outBlk = b.newBlock();
        b.branch(tmp(inRange), copyBlk);
        emitErrorCall(b);
        b.jump(outBlk);
        b.switchTo(copyBlk);
        emitSink(b, sink, value, sites, cls, flow);
        b.jump(outBlk);
        b.switchTo(outBlk);
        break;
      }

      case SiteClass::DeadGuard: {
        // if (DEBUG) copy(v); — DEBUG is the constant 0.
        auto flag = b.cnst(0);
        auto deadBlk = b.newBlock();
        auto outBlk = b.newBlock();
        b.branch(tmp(flag), deadBlk);
        b.jump(outBlk);
        b.switchTo(deadBlk);
        emitSink(b, sink, value, sites, cls, flow);
        b.jump(outBlk);
        b.switchTo(outBlk);
        break;
      }

      case SiteClass::Escaped: {
        b.setArg(0, value);
        b.call(escapeFn_);
        auto escaped = b.retVal();
        emitSink(b, sink, tmp(escaped), sites, cls, flow);
        break;
      }
    }
}

void
Gen::emitErrorCall(FunctionBuilder &b)
{
    if (errorPrinters_.empty())
        return;
    const std::string &msg =
        errorMessages()[nextErrorMsg_++ % errorMessages().size()];
    // Distinct per-call-site strings: append a deterministic code so
    // printers accumulate many distinct strings (feature 11).
    const std::string unique =
        msg + support::format(" (#%u)",
                              static_cast<unsigned>(nextErrorMsg_));
    b.setArg(0, imm(rodata_.intern(unique)));
    b.setArg(1, imm(rng_.uniformInt(0, 7)));
    b.call(rng_.pick(errorPrinters_));
}

std::string
Gen::pickSinkName(bool commandOk)
{
    static const std::vector<std::string> overflow = {
        "sprintf", "strcpy", "strncpy", "strcat", "strncat",
    };
    static const std::vector<std::string> command = {"system",
                                                     "popen"};
    if (commandOk && rng_.chance(0.2))
        return rng_.pick(command);
    return rng_.pick(overflow);
}

// ---- leaf / support functions --------------------------------------

ir::Addr
Gen::buildEscapeFn()
{
    FunctionBuilder b;
    auto header = b.newBlock();
    auto replace = b.newBlock();
    auto step = b.newBlock();
    auto exit = b.newBlock();

    b.put(kL0, tmp(b.get(ir::kRegR0))); // cursor
    b.put(kL1, tmp(b.get(ir::kRegR0))); // original pointer
    b.jump(header);

    b.switchTo(header);
    auto c = b.load(tmp(b.get(kL0)));
    auto end = b.binop(BinOp::CmpEq, tmp(c), imm(0));
    b.branch(tmp(end), exit);
    auto bad = b.binop(BinOp::CmpEq, tmp(c), imm(';'));
    b.branch(tmp(bad), replace);
    b.jump(step);

    b.switchTo(replace);
    b.store(tmp(b.get(kL0)), imm('_'));
    b.jump(step);

    b.switchTo(step);
    b.put(kL0, tmp(b.binop(BinOp::Add, tmp(b.get(kL0)), imm(1))));
    b.jump(header);

    b.switchTo(exit);
    b.put(ir::kRetReg, tmp(b.get(kL1)));
    b.ret();
    return place(b);
}

ir::Addr
Gen::buildErrorPrinter()
{
    FunctionBuilder b;
    auto severe = b.newBlock();
    auto exit = b.newBlock();

    b.put(kL0, tmp(b.get(ir::kRegR0))); // message
    auto code = b.get(ir::kRegR1);
    auto isSevere = b.binop(BinOp::CmpGt, tmp(code), imm(3));
    b.branch(tmp(isSevere), severe);
    b.setArg(0, imm(2)); // stderr
    b.setArg(1, tmp(b.get(kL0)));
    b.call(plt("fprintf"));
    b.jump(exit);

    b.switchTo(severe);
    b.setArg(0, imm(2));
    b.setArg(1, tmp(b.get(kL0)));
    b.call(plt("fprintf"));
    b.call(plt("syslog"));
    b.jump(exit);

    b.switchTo(exit);
    b.put(ir::kRetReg, imm(0));
    b.ret();
    return place(b);
}

ir::Addr
Gen::buildNvramGetter(double similarity)
{
    FunctionBuilder b;
    auto header = b.newBlock();
    auto body = b.newBlock();
    auto step = b.newBlock();
    auto found = b.newBlock();
    auto notFound = b.newBlock();

    // Precondition checks add blocks, like the ITS getter's format
    // validation.
    auto key = b.get(ir::kRegR0);
    b.put(kL1, tmp(key));
    auto nullKey = b.binop(BinOp::CmpEq, tmp(key), imm(0));
    b.branch(tmp(nullKey), notFound);
    b.put(kL0, imm(0)); // index
    b.jump(header);

    b.switchTo(header);
    auto limit = b.binop(BinOp::CmpGe, tmp(b.get(kL0)), imm(16));
    b.branch(tmp(limit), notFound);
    b.jump(body);

    b.switchTo(body);
    auto off = b.binop(BinOp::Mul, tmp(b.get(kL0)),
                       imm(2 * bin::kPtrSize));
    auto slot = b.binop(BinOp::Add, imm(nvramTable_), tmp(off));
    b.put(kL2, tmp(slot));
    auto keyPtr = b.load(tmp(slot));
    auto endTable = b.binop(BinOp::CmpEq, tmp(keyPtr), imm(0));
    b.branch(tmp(endTable), notFound);
    b.setArg(0, tmp(b.get(kL1)));
    b.setArg(1, tmp(keyPtr));
    b.call(plt("strcmp"));
    auto cmp = b.retVal();
    auto match = b.binop(BinOp::CmpEq, tmp(cmp), imm(0));
    b.branch(tmp(match), found);
    b.jump(step);

    b.switchTo(step);
    b.put(kL0, tmp(b.binop(BinOp::Add, tmp(b.get(kL0)), imm(1))));
    b.jump(header);

    b.switchTo(found);
    auto valSlot = b.binop(BinOp::Add, tmp(b.get(kL2)),
                           imm(bin::kPtrSize));
    auto valPtr = b.load(tmp(valSlot));
    b.put(kL3, tmp(valPtr));
    if (rng_.chance(similarity)) {
        // Copy-out variant: behaviourally very close to the ITS
        // (strlen + malloc + memcpy on the fetched value).
        b.setArg(0, tmp(b.get(kL3)));
        b.call(plt("strlen"));
        auto len = b.retVal();
        b.put(kL4, tmp(b.binop(BinOp::Add, tmp(len), imm(1))));
        b.setArg(0, tmp(b.get(kL4)));
        b.call(plt("malloc"));
        auto buf = b.retVal();
        b.put(kL5, tmp(buf));
        b.setArg(0, tmp(b.get(kL5)));
        b.setArg(1, tmp(b.get(kL3)));
        b.setArg(2, tmp(b.get(kL4)));
        b.call(plt("memcpy"));
        b.put(ir::kRetReg, tmp(b.get(kL5)));
    } else {
        b.put(ir::kRetReg, tmp(b.get(kL3)));
    }
    b.ret();

    b.switchTo(notFound);
    b.put(ir::kRetReg, imm(0));
    b.ret();
    return place(b);
}

ir::Addr
Gen::buildStrongConfounder()
{
    // A config getter whose *behaviour profile* matches the ITS: the
    // scan loop is bounded by a parameter, the key parameter feeds
    // anchor calls, and the fetched value is copied out. Samples where
    // this variant exists are the ones whose true ITS ranks 2nd/3rd
    // (the paper's top-1-vs-top-3 gap).
    FunctionBuilder b;
    auto checkLimit = b.newBlock();
    auto header = b.newBlock();
    auto body = b.newBlock();
    auto step = b.newBlock();
    auto found = b.newBlock();
    auto notFound = b.newBlock();

    auto key = b.get(ir::kRegR0);
    b.put(kL1, tmp(key));
    b.put(kL3, tmp(b.get(ir::kRegR1))); // default value (parameter)
    b.put(kL4, tmp(b.get(ir::kRegR2))); // max entries (parameter)
    auto nullKey = b.binop(BinOp::CmpEq, tmp(key), imm(0));
    b.branch(tmp(nullKey), notFound);
    b.jump(checkLimit);

    b.switchTo(checkLimit);
    auto badLimit = b.binop(BinOp::CmpLe, tmp(b.get(kL4)), imm(0));
    b.branch(tmp(badLimit), notFound);
    b.setArg(0, tmp(b.get(kL1)));
    b.call(plt("strlen"));
    b.put(kL6, tmp(b.retVal()));
    b.put(kL0, imm(0));
    b.jump(header);

    b.switchTo(header);
    // Loop bound is the parameter: "params control loops" holds, as
    // it does for the true ITS and the anchor implementations.
    auto limit = b.binop(BinOp::CmpGe, tmp(b.get(kL0)),
                         tmp(b.get(kL4)));
    b.branch(tmp(limit), notFound);
    b.jump(body);

    b.switchTo(body);
    auto off = b.binop(BinOp::Mul, tmp(b.get(kL0)),
                       imm(2 * bin::kPtrSize));
    auto slot = b.binop(BinOp::Add, imm(nvramTable_), tmp(off));
    b.put(kL2, tmp(slot));
    auto keyPtr = b.load(tmp(slot));
    auto endTable = b.binop(BinOp::CmpEq, tmp(keyPtr), imm(0));
    b.branch(tmp(endTable), notFound);
    b.setArg(0, tmp(b.get(kL1)));
    b.setArg(1, tmp(keyPtr));
    b.setArg(2, tmp(b.get(kL6)));
    b.call(plt("strncmp"));
    auto cmp = b.retVal();
    auto match = b.binop(BinOp::CmpEq, tmp(cmp), imm(0));
    b.branch(tmp(match), found);
    b.jump(step);

    b.switchTo(step);
    b.put(kL0, tmp(b.binop(BinOp::Add, tmp(b.get(kL0)), imm(1))));
    b.jump(header);

    b.switchTo(found);
    auto valSlot = b.binop(BinOp::Add, tmp(b.get(kL2)),
                           imm(bin::kPtrSize));
    auto valPtr = b.load(tmp(valSlot));
    b.put(kL3, tmp(valPtr));
    b.setArg(0, tmp(b.get(kL3)));
    b.call(plt("strlen"));
    auto len = b.retVal();
    b.put(kL5, tmp(b.binop(BinOp::Add, tmp(len), imm(1))));
    b.setArg(0, tmp(b.get(kL5)));
    b.call(plt("malloc"));
    auto buf = b.retVal();
    b.put(kL2, tmp(buf));
    b.setArg(0, tmp(b.get(kL2)));
    b.setArg(1, tmp(b.get(kL3)));
    b.setArg(2, tmp(b.get(kL5)));
    b.call(plt("memcpy"));
    b.setArg(0, tmp(b.get(kL2)));
    b.setArg(1, imm('='));
    b.call(plt("strchr"));
    auto sep = b.retVal();
    auto hasSep = b.binop(BinOp::CmpNe, tmp(sep), imm(0));
    auto trimBlk = b.newBlock();
    auto retBlk = b.newBlock();
    b.branch(tmp(hasSep), trimBlk);
    b.jump(retBlk);
    b.switchTo(trimBlk);
    b.store(tmp(sep), imm(0)); // cut the value at the separator
    b.jump(retBlk);
    b.switchTo(retBlk);
    b.put(ir::kRetReg, tmp(b.get(kL2)));
    b.ret();

    b.switchTo(notFound);
    b.put(ir::kRetReg, tmp(b.get(kL3)));
    b.ret();
    return place(b);
}

ir::Addr
Gen::buildLogFormatter()
{
    // A printf-style formatter: behaviourally very close to the ITS
    // (parameter-bounded scan loop, anchor calls on the parameter,
    // string call-site arguments) *except* that it is called from
    // everywhere — removing the number-of-callers feature (CF-3) is
    // what lets it overtake the true ITS.
    FunctionBuilder b;
    auto header = b.newBlock();
    auto body = b.newBlock();
    auto spec = b.newBlock();
    auto step = b.newBlock();
    auto exit = b.newBlock();

    auto fmt = b.get(ir::kRegR0);
    b.put(kL1, tmp(fmt));
    auto nullFmt = b.binop(BinOp::CmpEq, tmp(fmt), imm(0));
    b.branch(tmp(nullFmt), exit);
    b.setArg(0, tmp(b.get(kL1)));
    b.call(plt("strlen"));
    b.put(kL4, tmp(b.retVal()));
    b.put(kL0, imm(0));
    b.jump(header);

    b.switchTo(header);
    auto atEnd = b.binop(BinOp::CmpGe, tmp(b.get(kL0)),
                         tmp(b.get(kL4)));
    b.branch(tmp(atEnd), exit);
    b.jump(body);

    b.switchTo(body);
    auto cell = b.binop(BinOp::Add, tmp(b.get(kL1)),
                        tmp(b.get(kL0)));
    auto c = b.load(tmp(cell));
    auto isSpec = b.binop(BinOp::CmpEq, tmp(c), imm('%'));
    b.branch(tmp(isSpec), spec);
    b.jump(step);

    b.switchTo(spec);
    b.setArg(0, tmp(b.get(kL1)));
    b.setArg(1, imm('s'));
    b.call(plt("strchr"));
    // Format into the log buffer: the same anchor-call profile as a
    // field getter (strncpy/strcat of parameter-derived data).
    b.setArg(0, imm(kScratchBase));
    b.setArg(1, tmp(b.get(kL1)));
    b.setArg(2, imm(64));
    b.call(plt("strncpy"));
    b.setArg(0, imm(kScratchBase));
    auto tail = b.binop(BinOp::Add, tmp(b.get(kL1)),
                        tmp(b.get(kL0)));
    b.setArg(1, tmp(tail));
    b.call(plt("strcat"));
    b.setArg(0, imm(2));
    b.setArg(1, tmp(b.get(kL1)));
    b.call(plt("fprintf"));
    b.jump(step);

    b.switchTo(step);
    b.put(kL0, tmp(b.binop(BinOp::Add, tmp(b.get(kL0)), imm(1))));
    b.jump(header);

    b.switchTo(exit);
    b.put(ir::kRetReg, imm(0));
    b.ret();
    return place(b);
}

ir::Addr
Gen::buildItsGetter()
{
    // char *getter(char *key, char *src, int len) — Figure 1b.
    FunctionBuilder b;
    auto checkLen = b.newBlock();
    auto header = b.newBlock();
    auto body = b.newBlock();
    auto step = b.newBlock();
    auto found = b.newBlock();
    auto alloc = b.newBlock();
    auto fail = b.newBlock();
    auto notFound = b.newBlock();

    auto checkSrc = b.newBlock();
    auto checkCap = b.newBlock();
    auto checkFirst = b.newBlock();
    auto key = b.get(ir::kRegR0);
    b.put(kL1, tmp(key));                  // key
    b.put(kL2, tmp(b.get(ir::kRegR1)));    // src
    b.put(kL3, tmp(b.get(ir::kRegR2)));    // len
    // Format validation preamble (the paper's fn16 runs to ~17 basic
    // blocks; real getters validate every input).
    auto nullKey = b.binop(BinOp::CmpEq, tmp(key), imm(0));
    b.branch(tmp(nullKey), notFound);
    b.jump(checkSrc);

    b.switchTo(checkSrc);
    auto nullSrc = b.binop(BinOp::CmpEq, tmp(b.get(kL2)), imm(0));
    b.branch(tmp(nullSrc), notFound);
    b.jump(checkCap);

    b.switchTo(checkCap);
    auto tooBig = b.binop(BinOp::CmpGt, tmp(b.get(kL3)), imm(1024));
    b.branch(tmp(tooBig), notFound);
    b.jump(checkFirst);

    b.switchTo(checkFirst);
    auto first = b.load(tmp(b.get(kL2)));
    auto emptySrc = b.binop(BinOp::CmpEq, tmp(first), imm(0));
    b.branch(tmp(emptySrc), notFound);
    b.jump(checkLen);

    b.switchTo(checkLen);
    auto badLen = b.binop(BinOp::CmpLe, tmp(b.get(kL3)), imm(0));
    b.branch(tmp(badLen), notFound);
    b.setArg(0, tmp(b.get(kL1)));
    b.call(plt("strlen"));
    b.put(kL4, tmp(b.retVal())); // v1 = strlen(key)
    b.put(kL0, imm(0));          // i
    b.jump(header);

    b.switchTo(header);
    auto atEnd = b.binop(BinOp::CmpGe, tmp(b.get(kL0)),
                         tmp(b.get(kL3)));
    b.branch(tmp(atEnd), notFound);
    b.jump(body);

    b.switchTo(body);
    auto cell = b.binop(BinOp::Add, tmp(b.get(kL2)),
                        tmp(b.get(kL0)));
    auto c = b.load(tmp(cell));
    auto endOfData = b.binop(BinOp::CmpEq, tmp(c), imm(0));
    b.branch(tmp(endOfData), fail);
    b.setArg(0, tmp(b.get(kL1)));
    auto cell2 = b.binop(BinOp::Add, tmp(b.get(kL2)),
                         tmp(b.get(kL0)));
    b.setArg(1, tmp(cell2));
    b.setArg(2, tmp(b.get(kL4)));
    b.call(plt("strncmp"));
    auto cmp = b.retVal();
    auto matched = b.binop(BinOp::CmpEq, tmp(cmp), imm(0));
    b.branch(tmp(matched), found);
    b.jump(step);

    b.switchTo(step);
    b.put(kL0, tmp(b.binop(BinOp::Add, tmp(b.get(kL0)), imm(1))));
    b.jump(header);

    b.switchTo(found);
    auto hit = b.binop(BinOp::Add, tmp(b.get(kL2)), tmp(b.get(kL0)));
    b.put(kL5, tmp(hit));
    b.setArg(0, tmp(b.get(kL5)));
    b.call(plt("strlen"));
    b.put(kL6, tmp(b.retVal())); // v2 = strlen(src + i)
    b.jump(alloc);

    b.switchTo(alloc);
    auto size = b.binop(BinOp::Add, tmp(b.get(kL4)),
                        tmp(b.get(kL6)));
    auto sizep = b.binop(BinOp::Add, tmp(size), imm(1));
    b.setArg(0, tmp(sizep));
    b.call(plt("malloc"));
    auto buf = b.retVal();
    b.put(kL2, tmp(buf)); // reuse: v3
    auto noMem = b.binop(BinOp::CmpEq, tmp(buf), imm(0));
    b.branch(tmp(noMem), fail);
    b.setArg(0, tmp(b.get(kL2)));
    b.setArg(1, tmp(b.get(kL1)));
    b.setArg(2, tmp(b.get(kL4)));
    b.call(plt("memcpy"));
    auto dst2 = b.binop(BinOp::Add, tmp(b.get(kL2)),
                        tmp(b.get(kL4)));
    b.setArg(0, tmp(dst2));
    b.setArg(1, tmp(b.get(kL5)));
    b.setArg(2, tmp(b.get(kL6)));
    b.call(plt("memcpy"));
    b.put(ir::kRetReg, tmp(b.get(kL2)));
    b.ret();

    b.switchTo(fail);
    b.put(ir::kRetReg, imm(0xffffffff));
    b.ret();

    b.switchTo(notFound);
    b.put(ir::kRetReg, imm(0));
    b.ret();
    return place(b);
}

ir::Addr
Gen::buildChain(int depth, SiteClass cls, FlowKind flow)
{
    // Innermost function holds the sink; each wrapper forwards its
    // first argument.
    std::vector<LocalSite> sites;
    FunctionBuilder leaf;
    {
        auto v = leaf.get(ir::kRegR0);
        leaf.put(kL0, tmp(v));
        emitClassified(leaf, tmp(leaf.get(kL0)), sites, cls, flow);
        leaf.put(ir::kRetReg, imm(0));
        leaf.ret();
    }
    ir::Addr callee = place(leaf, sites);

    for (int d = 1; d < depth; ++d) {
        FunctionBuilder b;
        auto v = b.get(ir::kRegR0);
        b.put(kL0, tmp(v));
        // A little realism: branch on an unrelated config word.
        auto cfg = b.load(imm(kCfgBuf));
        auto skip = b.binop(BinOp::CmpEq, tmp(cfg), imm(0x7f));
        auto out = b.newBlock();
        auto cont = b.newBlock();
        b.branch(tmp(skip), out);
        b.jump(cont);
        b.switchTo(cont);
        b.setArg(0, tmp(b.get(kL0)));
        b.call(callee);
        b.jump(out);
        b.switchTo(out);
        b.put(ir::kRetReg, imm(0));
        b.ret();
        callee = place(b);
    }
    return callee;
}

ir::Addr
Gen::buildHandler(SiteClass cls, FlowKind flow)
{
    std::vector<LocalSite> sites;
    FunctionBuilder b;

    Operand value;
    switch (flow) {
      case FlowKind::DirectGlobal: {
        const ir::Addr off =
            static_cast<ir::Addr>(rng_.uniformInt(0, 15)) * 4;
        auto v = b.load(imm(kReqBuf + off));
        b.put(kL0, tmp(v));
        value = tmp(b.get(kL0));
        break;
      }
      case FlowKind::ItsFetch:
      case FlowKind::ItsDeepChain: {
        if (cls == SiteClass::SystemData) {
            // Config data fetched *through the ITS getter*: the
            // false-positive class the string filter removes.
            const std::string &key = rng_.pick(systemConfigKeys());
            b.setArg(0, imm(rodata_.intern(key)));
            b.setArg(1, imm(kCfgBuf));
        } else {
            const std::string &key =
                userDataKeys()[nextUserKey_++ %
                               userDataKeys().size()];
            const bool viaSlot = rng_.chance(0.3);
            b.setArg(0, imm(userKeyAddr(key, viaSlot)));
            b.setArg(1, imm(kReqBuf));
        }
        b.setArg(2, imm(64));
        b.call(itsGetter_);
        b.put(kL0, tmp(b.retVal()));
        value = tmp(b.get(kL0));
        break;
      }
      case FlowKind::ConfigOnly: {
        const std::string &key = rng_.pick(systemConfigKeys());
        b.setArg(0, imm(rodata_.intern(key)));
        b.setArg(1, imm(rodata_.intern("0.0.0.0")));
        b.setArg(2, imm(16));
        b.call(rng_.pick(nvramGetters_));
        b.put(kL0, tmp(b.retVal()));
        value = tmp(b.get(kL0));
        break;
      }
      default: {
        // Remaining flows read a config word (never tainted).
        auto v = b.load(imm(kCfgBuf + 8));
        b.put(kL0, tmp(v));
        value = tmp(b.get(kL0));
        break;
      }
    }

    if (flow == FlowKind::ItsDeepChain) {
        const int depth =
            4 + static_cast<int>(rng_.uniformInt(0, 2));
        const ir::Addr chain = buildChain(depth, cls, flow);
        // buildChain placed functions; this builder's layout cursor
        // is still pending, which is fine: place() assigns the entry
        // when the handler itself is finished.
        b.setArg(0, value);
        b.call(chain);
        b.put(ir::kRetReg, imm(0));
        b.ret();
        return place(b, sites);
    }

    emitClassified(b, value, sites, cls, flow);
    if (rng_.chance(0.4))
        emitErrorCall(b);
    b.put(ir::kRetReg, imm(0));
    b.ret();
    return place(b, sites);
}

ir::Addr
Gen::buildScanHandler(SiteClass cls)
{
    std::vector<LocalSite> sites;
    FunctionBuilder b;
    auto header = b.newBlock();
    auto body = b.newBlock();
    auto after = b.newBlock();
    auto exit = b.newBlock();

    // First-byte probe at a constant address: this is what lets the
    // path-based engine discover the function as a data-flow root; the
    // probed value itself never reaches the sink.
    auto probe = b.load(imm(kReqBuf));
    auto empty = b.binop(BinOp::CmpEq, tmp(probe), imm(0));
    b.branch(tmp(empty), exit);
    b.put(kL0, imm(0)); // i
    b.put(kL1, imm(0)); // last seen token pointer
    b.jump(header);

    b.switchTo(header);
    auto limit = b.binop(BinOp::CmpGe, tmp(b.get(kL0)), imm(32));
    b.branch(tmp(limit), after);
    b.jump(body);

    b.switchTo(body);
    auto cell = b.binop(BinOp::Add, imm(kReqBuf), tmp(b.get(kL0)));
    auto c = b.load(tmp(cell));
    auto end = b.binop(BinOp::CmpEq, tmp(c), imm(0));
    b.branch(tmp(end), after);
    b.put(kL1, tmp(c)); // last token value, not the pointer
    b.put(kL0, tmp(b.binop(BinOp::Add, tmp(b.get(kL0)), imm(1))));
    b.jump(header);

    b.switchTo(after);
    emitClassified(b, tmp(b.get(kL1)), sites, cls,
                   FlowKind::ScanLoop);
    b.jump(exit);

    b.switchTo(exit);
    b.put(ir::kRetReg, imm(0));
    b.ret();
    return place(b, sites);
}

ir::Addr
Gen::buildIndirectHandler(SiteClass cls)
{
    // Receives tainted data as its first parameter; only reachable
    // through the handler table.
    std::vector<LocalSite> sites;
    FunctionBuilder b;
    auto v = b.get(ir::kRegR0);
    b.put(kL0, tmp(v));
    emitClassified(b, tmp(b.get(kL0)), sites, cls,
                   FlowKind::IndirectParam);
    b.put(ir::kRetReg, imm(0));
    b.ret();
    return place(b, sites);
}

ir::Addr
Gen::buildBenignHandler()
{
    FunctionBuilder b;
    auto v = b.load(imm(kCfgBuf + 4));
    auto zero = b.binop(BinOp::CmpEq, tmp(v), imm(0));
    auto exit = b.newBlock();
    b.branch(tmp(zero), exit);
    emitErrorCall(b);
    b.jump(exit);
    b.switchTo(exit);
    b.put(ir::kRetReg, imm(0));
    b.ret();
    return place(b);
}

ir::Addr
Gen::buildDispatcher(const std::vector<ir::Addr> &handlers,
                     const std::vector<ir::Addr> &indirect)
{
    // Indirect handler-table dispatch lives in its own routine: it
    // loads tainted request fields (which makes it a data-flow root
    // for the path-based engine), whereas the main dispatcher only
    // reads the parser-derived selector.
    ir::Addr ipcDispatcher = 0;
    if (!indirect.empty()) {
        // Handler table in .rodata so UCSE can resolve the targets.
        const ir::Addr table = rodata_.reserveWords(indirect.size());
        for (std::size_t i = 0; i < indirect.size(); ++i) {
            rodata_.patchWord(table + i * bin::kPtrSize,
                              indirect[i]);
        }
        FunctionBuilder ib;
        for (std::size_t i = 0; i < indirect.size(); ++i) {
            const ir::Addr off =
                static_cast<ir::Addr>(rng_.uniformInt(0, 15)) * 4;
            // Tainted request data crosses the indirect call as an
            // argument — invisible to a name-based call graph.
            auto v = ib.load(imm(kReqBuf + off));
            ib.setArg(0, tmp(v));
            auto target = ib.load(imm(table + i * bin::kPtrSize));
            ib.callIndirect(tmp(target));
        }
        ib.put(ir::kRetReg, imm(0));
        ib.ret();
        ipcDispatcher = place(ib);
    }

    FunctionBuilder b;
    auto sel = b.load(imm(kSelector));
    b.put(kL0, tmp(sel));

    auto join = b.newBlock();
    for (std::size_t i = 0; i < handlers.size(); ++i) {
        auto hit = b.binop(BinOp::CmpEq, tmp(b.get(kL0)),
                           imm(i + 1));
        auto callBlk = b.newBlock();
        auto nextBlk = b.newBlock();
        b.branch(tmp(hit), callBlk);
        b.jump(nextBlk);
        b.switchTo(callBlk);
        b.call(handlers[i]);
        b.jump(join);
        b.switchTo(nextBlk);
    }
    if (ipcDispatcher != 0)
        b.call(ipcDispatcher);
    b.jump(join);

    b.switchTo(join);
    b.put(ir::kRetReg, imm(0));
    b.ret();
    return place(b);
}

ir::Addr
Gen::buildParseRequest()
{
    FunctionBuilder b;
    auto bad = b.newBlock();
    auto copy = b.newBlock();
    auto exit = b.newBlock();

    // Format check on the first byte.
    auto first = b.load(imm(kRecvBuf));
    auto empty = b.binop(BinOp::CmpEq, tmp(first), imm(0));
    b.branch(tmp(empty), bad);
    b.jump(copy);

    b.switchTo(copy);
    // Fixed-offset header copy: raw buffer -> parsed request buffer.
    for (ir::Addr off = 0; off < 64; off += 4) {
        auto v = b.load(imm(kRecvBuf + off));
        b.store(imm(kReqBuf + off), tmp(v));
    }
    // The request type selector is derived by the parser itself (a
    // small constant), so dispatching is not input-tainted.
    b.store(imm(kSelector), imm(1));
    b.put(ir::kRetReg, imm(0));
    b.jump(exit);

    b.switchTo(bad);
    emitErrorCall(b);
    b.put(ir::kRetReg, imm(0xffffffff));
    b.jump(exit);

    b.switchTo(exit);
    b.ret();
    return place(b);
}

ir::Addr
Gen::buildRecvLoop(ir::Addr parse, ir::Addr dispatcher)
{
    // Note the dispatcher is *not* called from here: as in Figure 1a,
    // receiving (deep in the socket chain) and request handling are
    // far apart in the call graph, connected only through the shared
    // request buffer. The daemon main loop drives both.
    (void)dispatcher;
    FunctionBuilder b;
    auto header = b.newBlock();
    auto handle = b.newBlock();
    auto exit = b.newBlock();

    b.put(kL0, tmp(b.get(ir::kRegR0))); // socket fd
    b.jump(header);

    b.switchTo(header);
    b.setArg(0, tmp(b.get(kL0)));
    b.setArg(1, imm(kRecvBuf));
    b.setArg(2, imm(1024));
    b.call(plt("recv"));
    auto n = b.retVal();
    auto closed = b.binop(BinOp::CmpLe, tmp(n), imm(0));
    b.branch(tmp(closed), exit);
    b.jump(handle);

    b.switchTo(handle);
    b.call(parse);
    auto parsed = b.retVal();
    auto failed = b.binop(BinOp::CmpNe, tmp(parsed), imm(0));
    b.branch(tmp(failed), header);
    b.jump(header);

    b.switchTo(exit);
    b.put(ir::kRetReg, imm(0));
    b.ret();
    return place(b);
}

ir::Addr
Gen::buildPassThrough(ir::Addr callee, int extraBranches)
{
    FunctionBuilder b;
    auto exit = b.newBlock();
    b.put(kL0, tmp(b.get(ir::kRegR0)));
    for (int i = 0; i < extraBranches; ++i) {
        auto cfg = b.load(imm(kCfgBuf + 8 + 4 * (i % 4)));
        auto c = b.binop(BinOp::CmpEq, tmp(cfg),
                         imm(rng_.uniformInt(1, 9)));
        auto next = b.newBlock();
        b.branch(tmp(c), exit);
        b.jump(next);
        b.switchTo(next);
    }
    b.setArg(0, tmp(b.get(kL0)));
    b.call(callee);
    b.jump(exit);
    b.switchTo(exit);
    b.put(ir::kRetReg, imm(0));
    b.ret();
    return place(b);
}

ir::Addr
Gen::buildFiller()
{
    FunctionBuilder b;
    const int kind = static_cast<int>(rng_.uniformInt(0, 3));

    switch (kind) {
      case 0: { // arithmetic leaf with a parameter-driven branch
        auto a = b.get(ir::kRegR0);
        auto bb = b.get(ir::kRegR1);
        auto sum = b.binop(BinOp::Add, tmp(a), tmp(bb));
        auto big = b.binop(BinOp::CmpGt, tmp(sum), imm(255));
        auto clampBlk = b.newBlock();
        auto outBlk = b.newBlock();
        b.put(kL0, tmp(sum));
        b.branch(tmp(big), clampBlk);
        b.jump(outBlk);
        b.switchTo(clampBlk);
        b.put(kL0, imm(255));
        b.jump(outBlk);
        b.switchTo(outBlk);
        b.put(ir::kRetReg, tmp(b.get(kL0)));
        b.ret();
        break;
      }
      case 1: { // anchor user: compares a parameter against a keyword
        if (!logFormatters_.empty() && rng_.chance(0.5)) {
            b.setArg(0, imm(rodata_.intern(
                          rng_.pick(formatStrings()))));
            b.setArg(1, imm(rng_.uniformInt(0, 7)));
            b.call(rng_.pick(logFormatters_));
        }
        auto s = b.get(ir::kRegR0);
        b.put(kL0, tmp(s));
        b.setArg(0, tmp(b.get(kL0)));
        b.setArg(1, imm(rodata_.intern(rng_.pick(urlPaths()))));
        b.call(plt("strcmp"));
        auto r = b.retVal();
        auto ne = b.binop(BinOp::CmpNe, tmp(r), imm(0));
        auto errBlk = b.newBlock();
        auto outBlk = b.newBlock();
        b.branch(tmp(ne), errBlk);
        b.jump(outBlk);
        b.switchTo(errBlk);
        emitErrorCall(b);
        b.jump(outBlk);
        b.switchTo(outBlk);
        b.put(ir::kRetReg, imm(0));
        b.ret();
        break;
      }
      case 2: { // config user: reads NVRAM and formats it
        if (!nvramGetters_.empty()) {
            b.setArg(0, imm(rodata_.intern(
                          rng_.pick(systemConfigKeys()))));
            b.setArg(1, imm(rodata_.intern("0.0.0.0")));
            b.setArg(2, imm(16));
            b.call(rng_.pick(nvramGetters_));
            auto v = b.retVal();
            b.put(kL0, tmp(v));
            b.setArg(0, imm(scratchBuffer()));
            b.setArg(1, imm(rodata_.intern(
                          rng_.pick(formatStrings()))));
            b.setArg(2, tmp(b.get(kL0)));
            b.call(plt("snprintf"));
        }
        b.put(ir::kRetReg, imm(0));
        b.ret();
        break;
      }
      default: { // wrapper around an earlier filler
        if (!fillers_.empty()) {
            auto a = b.get(ir::kRegR0);
            b.setArg(0, tmp(a));
            b.call(rng_.pick(fillers_));
            if (rng_.chance(0.5))
                emitErrorCall(b);
        }
        b.put(ir::kRetReg, imm(0));
        b.ret();
        break;
      }
    }
    return place(b);
}

HttpdResult
Gen::run()
{
    const VendorProfile &p = spec_.profile;
    image_.name = p.binaryNames[rng_.index(p.binaryNames.size())];
    image_.arch = p.arch;
    image_.neededLibraries = {"libc.so"};

    const bool structOffset =
        spec_.failure == SampleSpec::FailureMode::StructOffset;
    truth_.hasIts = !structOffset;

    // Network imports so the PIE-style selector picks this binary.
    plt("socket");
    plt("bind");
    plt("listen");
    plt("accept");
    plt("recv");
    plt("select");
    plt("htons");

    // NVRAM key/value table in .data: keys point to .rodata, values to
    // config strings in .rodata (writable slots in real firmware).
    {
        std::vector<std::pair<ir::Addr, ir::Addr>> entries;
        for (const auto &key : systemConfigKeys()) {
            const ir::Addr k = rodata_.intern(key);
            const ir::Addr v = rodata_.intern(
                configLines()[entries.size() % configLines().size()]);
            entries.emplace_back(k, v);
        }
        nvramTable_ =
            data_.reserveWords(2 * entries.size() + 2);
        for (std::size_t i = 0; i < entries.size(); ++i) {
            data_.patchWord(nvramTable_ + (2 * i) * bin::kPtrSize,
                            entries[i].first);
            data_.patchWord(nvramTable_ + (2 * i + 1) * bin::kPtrSize,
                            entries[i].second);
        }
    }

    // ---- leaf infrastructure ---------------------------------------
    escapeFn_ = buildEscapeFn();
    tag(escapeFn_, "escape_shell_arg");
    for (int i = 0; i < p.numErrorPrinters; ++i) {
        errorPrinters_.push_back(buildErrorPrinter());
        tag(errorPrinters_.back(),
            support::format("print_error_%d", i));
    }
    for (int i = 0; i < 2; ++i) {
        logFormatters_.push_back(buildLogFormatter());
        tag(logFormatters_.back(), support::format("log_format_%d", i));
    }
    for (int i = 0; i < p.numNvramConfounders; ++i) {
        nvramGetters_.push_back(
            buildNvramGetter(p.confounderItsSimilarity));
        truth_.confounders.push_back(nvramGetters_.back());
        tag(nvramGetters_.back(), support::format("nvram_get_%d", i));
    }
    // Strong (ITS-shaped) confounders: their count per sample is drawn
    // from the vendor's weights and decides whether the true ITS lands
    // at rank 1, 2, or 3. Unlike the weak getters they are reached
    // from a handful of dedicated config routines, so their caller
    // profile stays close to a field getter's in every vendor's
    // binary size class.
    {
        const double draw = rng_.uniformReal();
        const auto &w = p.strongConfounderWeights;
        int strongCount = 0;
        if (!structOffset) {
            if (draw >= w[0] + w[1])
                strongCount = 2;
            else if (draw >= w[0])
                strongCount = 1;
        }
        for (int i = 0; i < strongCount; ++i) {
            const ir::Addr strong = buildStrongConfounder();
            truth_.confounders.push_back(strong);
            tag(strong, support::format("cfg_find_entry_%d", i));
            const int callers =
                6 + static_cast<int>(rng_.uniformInt(0, 4));
            for (int c = 0; c < callers; ++c) {
                FunctionBuilder b;
                // A small fixed key set: the confounder's distinct-
                // string count stays in the ITS's range.
                b.setArg(0, imm(rodata_.intern(systemConfigKeys()[
                              static_cast<std::size_t>(c) % 4])));
                b.setArg(1, imm(rodata_.intern("0.0.0.0")));
                b.setArg(2, imm(16));
                b.call(strong);
                auto v = b.retVal();
                b.put(kL0, tmp(v));
                b.setArg(0, imm(scratchBuffer()));
                b.setArg(1, imm(rodata_.intern(
                              rng_.pick(formatStrings()))));
                b.setArg(2, tmp(b.get(kL0)));
                b.call(plt("snprintf"));
                b.put(ir::kRetReg, imm(0));
                b.ret();
                fillers_.push_back(place(b));
            }
        }
    }
    if (!structOffset) {
        itsGetter_ = buildItsGetter();
        truth_.itsFunctions.push_back(itsGetter_);
        tag(itsGetter_, "websGetVar");
    }

    // ---- handlers with planted sites --------------------------------
    std::vector<ir::Addr> handlers;
    std::vector<ir::Addr> indirectHandlers;

    // Plan the handler mix first, then build in shuffled order so the
    // handler-address order (which is the engines' exploration order)
    // does not correlate with the planted site class.
    struct HandlerPlan
    {
        int type; // 0 generic, 1 deep-direct, 2 scan, 3 indirect
        SiteClass cls;
        FlowKind flow;
    };
    std::vector<HandlerPlan> plans;
    auto plan = [&plans](int count, int type, SiteClass cls,
                         FlowKind flow) {
        for (int i = 0; i < count; ++i)
            plans.push_back({type, cls, flow});
    };

    if (structOffset) {
        // The simple-design variant: handlers read the request buffer
        // at fixed offsets; there is no getter function at all.
        plan(p.directBugs + p.itsFetchBugs, 0, SiteClass::RealBug,
             FlowKind::DirectGlobal);
        plan(p.boundsCheckedSites, 0, SiteClass::BoundsChecked,
             FlowKind::DirectGlobal);
    } else {
        plan(p.directBugs, 0, SiteClass::RealBug,
             FlowKind::DirectGlobal);
        plan(p.itsFetchBugs, 0, SiteClass::RealBug,
             FlowKind::ItsFetch);
        plan(p.itsDeepBugs, 0, SiteClass::RealBug,
             FlowKind::ItsDeepChain);
        plan(p.systemDataSites, 0, SiteClass::SystemData,
             FlowKind::ItsFetch);
        plan(p.boundsCheckedSites, 0, SiteClass::BoundsChecked,
             FlowKind::DirectGlobal);
        plan(p.deadGuardSites, 0, SiteClass::DeadGuard,
             FlowKind::DirectGlobal);
        plan(p.escapedSites, 0, SiteClass::Escaped,
             FlowKind::DirectGlobal);
        plan(p.deepDirectBugs, 1, SiteClass::RealBug,
             FlowKind::DirectGlobal);
        plan(p.scanLoopBugs, 2, SiteClass::RealBug,
             FlowKind::ScanLoop);
        plan(p.indirectParamBugs, 3, SiteClass::RealBug,
             FlowKind::IndirectParam);
    }
    rng_.shuffle(plans);

    for (const auto &hp : plans) {
        switch (hp.type) {
          case 0:
            handlers.push_back(buildHandler(hp.cls, hp.flow));
            break;
          case 1: {
            // Deep chain on a direct-global flow: beyond the symbolic
            // engine's depth budget, visible to the dataflow engine.
            const ir::Addr chain = buildChain(
                5 + static_cast<int>(rng_.uniformInt(0, 2)),
                SiteClass::RealBug, FlowKind::DirectGlobal);
            FunctionBuilder b;
            auto v = b.load(imm(kReqBuf + 4));
            b.setArg(0, tmp(v));
            b.call(chain);
            b.put(ir::kRetReg, imm(0));
            b.ret();
            handlers.push_back(place(b));
            break;
          }
          case 2:
            handlers.push_back(buildScanHandler(hp.cls));
            break;
          case 3:
            indirectHandlers.push_back(buildIndirectHandler(hp.cls));
            break;
        }
    }

    // Benign handlers for realism.
    const int benign = 2 + static_cast<int>(rng_.uniformInt(0, 3));
    for (int i = 0; i < benign; ++i)
        handlers.push_back(buildBenignHandler());
    rng_.shuffle(handlers);

    // ---- plumbing ----------------------------------------------------
    const ir::Addr dispatcher =
        buildDispatcher(handlers, indirectHandlers);
    tag(dispatcher, "websDataHandlers");
    const ir::Addr parse = buildParseRequest();
    tag(parse, "websParseRequest");
    const ir::Addr recvLoop = buildRecvLoop(parse, dispatcher);
    tag(recvLoop, "websReadEvent");
    for (std::size_t i = 0; i < handlers.size(); ++i)
        tag(handlers[i], support::format("websFormHandler_%zu", i));

    // Socket chain: main -> initWeb -> openServer -> ... -> recvLoop
    // (the Figure 1a depth between the daemon entry and recv).
    ir::Addr chainTop = recvLoop;
    const int plumbing = 3 + static_cast<int>(rng_.uniformInt(0, 2));
    for (int i = 0; i < plumbing; ++i)
        chainTop = buildPassThrough(chainTop,
                                    static_cast<int>(
                                        rng_.uniformInt(0, 2)));
    {
        // main: daemon loop — open the socket, run the receive chain,
        // then handle the parsed request.
        FunctionBuilder b;
        auto loop = b.newBlock();
        b.setArg(0, imm(3));
        b.call(plt("socket"));
        b.put(kL0, tmp(b.retVal()));
        b.jump(loop);
        b.switchTo(loop);
        b.setArg(0, tmp(b.get(kL0)));
        b.call(chainTop);
        b.call(dispatcher);
        auto again = b.load(imm(kCfgBuf + 12));
        auto stop = b.binop(BinOp::CmpEq, tmp(again), imm(0));
        auto exit = b.newBlock();
        b.branch(tmp(stop), exit);
        b.jump(loop);
        b.switchTo(exit);
        b.put(ir::kRetReg, imm(0));
        b.ret();
        place(b);
    }

    // ---- fillers to reach the profile's function count --------------
    const int target = static_cast<int>(
        rng_.uniformInt(p.minCustomFns, p.maxCustomFns));
    while (static_cast<int>(image_.program.size()) < target)
        fillers_.push_back(buildFiller());

    // ---- finalize sections ------------------------------------------
    image_.sections.push_back(rodata_.finish());
    image_.sections.push_back(data_.finish());
    bin::Section bss;
    bss.name = ".bss";
    bss.addr = bin::kBssBase;
    bss.flags = bin::kSecRead | bin::kSecWrite;
    bss.bytes.assign(kBssSize, 0);
    image_.sections.push_back(std::move(bss));

    if (spec_.keepSymbols) {
        // Vendor mode: keep plausible symbols (untagged functions get
        // neutral IDA-style names).
        for (auto &fn : image_.program.functions()) {
            auto it = names_.find(fn.entry);
            fn.name = it != names_.end()
                          ? it->second
                          : "sub_" + support::hex(fn.entry).substr(2);
            image_.symbols.push_back({fn.entry, fn.name});
        }
    } else {
        image_.strip();
    }

    HttpdResult result;
    result.image = std::move(image_);
    result.truth = std::move(truth_);
    return result;
}

} // namespace

HttpdResult
generateHttpd(const SampleSpec &spec)
{
    Gen gen(spec);
    return gen.run();
}

} // namespace fits::synth
