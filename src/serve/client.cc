#include "serve/client.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

namespace fits::serve {

Client::~Client()
{
    close();
}

bool
Client::connect(const std::string &socketPath, std::string *error)
{
    close();
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.empty() ||
        socketPath.size() >= sizeof(addr.sun_path)) {
        if (error != nullptr)
            *error = "bad socket path";
        return false;
    }
    std::memcpy(addr.sun_path, socketPath.c_str(),
                socketPath.size() + 1);
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (error != nullptr)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        if (error != nullptr)
            *error = "connect " + socketPath + ": " +
                     std::strerror(errno);
        close();
        return false;
    }
    return true;
}

void
Client::close()
{
    if (fd_ >= 0) {
        while (::close(fd_) < 0 && errno == EINTR) {
        }
        fd_ = -1;
    }
}

bool
Client::call(const wire::Value &request, wire::Value *response,
             std::string *error)
{
    if (fd_ < 0) {
        if (error != nullptr)
            *error = "not connected";
        return false;
    }
    wire::Value tagged = request;
    tagged.set("id", wire::Value::integer(
                         static_cast<std::int64_t>(nextId_++)));
    if (!wire::writeFrame(fd_, tagged, error))
        return false;
    std::string readError;
    if (!wire::readFrame(fd_, response, &readError)) {
        if (error != nullptr)
            *error = readError.empty()
                         ? "server closed the connection"
                         : readError;
        return false;
    }
    return true;
}

bool
Client::submit(const wire::Value &request, wire::Value *response,
               std::string *error, int maxAttempts)
{
    for (int attempt = 0; attempt < maxAttempts; ++attempt) {
        if (!call(request, response, error))
            return false;
        const std::string status = response->getString("status");
        if (status != "retry") {
            return true;
        }
        const double pauseMs =
            response->getNumber("retry_after_ms", 25.0);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(pauseMs));
    }
    if (error != nullptr)
        *error = "request still rejected after " +
                 std::to_string(maxAttempts) + " attempts";
    return false;
}

} // namespace fits::serve
