#ifndef FITS_SERVE_WIRE_HH_
#define FITS_SERVE_WIRE_HH_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fits::serve::wire {

/**
 * The `fits serve` wire protocol: length-prefixed JSON frames over a
 * unix-domain socket. No third-party dependencies — this header is the
 * whole codec.
 *
 * Frame layout (little-endian):
 *
 *     [u32 payload-length][payload-length bytes of UTF-8 JSON]
 *
 * A frame is rejected (never partially consumed) when its declared
 * length exceeds `kMaxFrameBytes`, when the stream ends mid-payload,
 * or when the payload is not a single well-formed JSON value. The
 * decoder is incremental: callers feed it whatever bytes they have
 * and get back "need more", "one value + bytes consumed", or a
 * terminal error.
 *
 * The JSON model is deliberately small: objects preserve insertion
 * order (so re-encoding is deterministic and responses diff cleanly),
 * numbers are doubles printed with round-trip precision (integral
 * values print without an exponent or trailing ".0"), and strings are
 * UTF-8 passed through verbatim with the mandatory escapes.
 */

/** Hard ceiling on one frame's JSON payload. Large enough for a whole
 * corpus report, small enough that a corrupt length prefix cannot ask
 * the reader to allocate gigabytes. */
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

class Value;
using Member = std::pair<std::string, Value>;

/** One JSON value. Plain value semantics; cheap to move. */
class Value
{
  public:
    enum class Kind : std::uint8_t {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    Value() = default;

    static Value null() { return Value(); }
    static Value boolean(bool b);
    static Value number(double n);
    static Value integer(std::int64_t n);
    static Value string(std::string s);
    static Value array();
    static Value object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** Typed accessors; the fallback is returned on kind mismatch so
     * protocol handlers can read optional fields in one line. */
    bool asBool(bool fallback = false) const;
    double asNumber(double fallback = 0.0) const;
    std::int64_t asInt(std::int64_t fallback = 0) const;
    const std::string &asString() const; ///< "" on mismatch

    /** Array access. */
    const std::vector<Value> &items() const;
    void push(Value v);

    /** Object access (insertion-ordered). */
    const std::vector<Member> &members() const;
    /** Member by key; nullptr when absent (or not an object). */
    const Value *find(std::string_view key) const;
    /** Set (replace or append) a member; makes this an object. */
    void set(std::string key, Value v);

    /** Convenience typed lookups over find(). */
    std::string getString(std::string_view key,
                          std::string_view fallback = "") const;
    double getNumber(std::string_view key, double fallback = 0.0) const;
    std::int64_t getInt(std::string_view key,
                        std::int64_t fallback = 0) const;
    bool getBool(std::string_view key, bool fallback = false) const;

    /** Serialize to compact JSON text (no whitespace). */
    std::string toJson() const;

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    std::vector<Value> items_;
    std::vector<Member> members_;
};

/** Outcome of one decode attempt. */
enum class DecodeStatus : std::uint8_t {
    Ok,       ///< one value decoded; `consumed` bytes used
    NeedMore, ///< the buffer holds a valid frame prefix; read more
    Corrupt,  ///< unrecoverable: bad length, bad JSON, oversize frame
};

const char *decodeStatusName(DecodeStatus status);

/** Parse one JSON value from `text` (the whole string must be one
 * value plus optional trailing whitespace). Returns false and fills
 * `error` on malformed input. */
bool parseJson(std::string_view text, Value *out,
               std::string *error = nullptr);

/** Encode one frame: 4-byte little-endian payload length + JSON. */
std::string encodeFrame(const Value &value);

/**
 * Try to decode one frame from the front of `data`. On Ok, `*out` is
 * the decoded value and `*consumed` the total frame size (prefix +
 * payload). On NeedMore nothing is consumed. On Corrupt the stream is
 * unusable and must be closed; `error` (if given) says why.
 */
DecodeStatus decodeFrame(const std::uint8_t *data, std::size_t size,
                         Value *out, std::size_t *consumed,
                         std::string *error = nullptr);

/**
 * Blocking frame I/O over a file descriptor (the server and client
 * connection paths). Both return false on EOF, I/O error, or a
 * corrupt frame, with the reason in `error`.
 */
bool readFrame(int fd, Value *out, std::string *error);
bool writeFrame(int fd, const Value &value, std::string *error);

} // namespace fits::serve::wire

#endif // FITS_SERVE_WIRE_HH_
