#include "serve/server.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "chaos/chaos.hh"
#include "obs/metrics.hh"
#include "support/logging.hh"

namespace fits::serve {

namespace {

/** Close an fd, retrying on EINTR; tolerates -1. */
void
closeFd(int &fd)
{
    if (fd >= 0) {
        while (::close(fd) < 0 && errno == EINTR) {
        }
        fd = -1;
    }
}

} // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      resolvedJobs_(support::resolveJobs(config_.jobs))
{
    if (config_.queueLimit == 0)
        config_.queueLimit = 1;
}

Server::~Server()
{
    stop();
}

bool
Server::start(std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config_.socketPath.empty() ||
        config_.socketPath.size() >= sizeof(addr.sun_path)) {
        if (error != nullptr)
            *error = "bad socket path: " +
                     (config_.socketPath.empty()
                          ? std::string("empty")
                          : "longer than " +
                                std::to_string(
                                    sizeof(addr.sun_path) - 1) +
                                " bytes");
        return false;
    }
    std::memcpy(addr.sun_path, config_.socketPath.c_str(),
                config_.socketPath.size() + 1);

    listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd_ < 0) {
        if (error != nullptr)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    // A stale socket file from a dead server blocks bind; remove it.
    // A live server would still win the race to listen first.
    ::unlink(config_.socketPath.c_str());
    if (::bind(listenFd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        if (error != nullptr)
            *error = "bind " + config_.socketPath + ": " +
                     std::strerror(errno);
        closeFd(listenFd_);
        return false;
    }
    if (::listen(listenFd_, 64) < 0) {
        if (error != nullptr)
            *error = std::string("listen: ") + std::strerror(errno);
        closeFd(listenFd_);
        return false;
    }
    if (::pipe(drainPipe_) < 0) {
        if (error != nullptr)
            *error = std::string("pipe: ") + std::strerror(errno);
        closeFd(listenFd_);
        return false;
    }

    pool_ = std::make_unique<support::ThreadPool>(resolvedJobs_);
    running_.store(true);
    draining_.store(false);
    drained_.store(false);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return true;
}

void
Server::beginDrain()
{
    // Async-signal-safe: one atomic store, one pipe write. The
    // acceptor wakes on the pipe and exits its loop.
    draining_.store(true);
    if (drainPipe_[1] >= 0) {
        const char byte = 'd';
        [[maybe_unused]] const ssize_t w =
            ::write(drainPipe_[1], &byte, 1);
    }
}

void
Server::waitUntilDrained()
{
    if (!running_.load() || drained_.exchange(true))
        return;

    if (acceptThread_.joinable())
        acceptThread_.join();

    // Finish in-flight: every admitted request completes and its
    // response is written before any connection is torn down.
    {
        std::unique_lock<std::mutex> lock(pendingMutex_);
        pendingCv_.wait(lock, [this] { return pending_ == 0; });
    }

    // Wake connection readers and join them.
    {
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        for (const auto &conn : connections_) {
            if (!conn->dead.exchange(true))
                ::shutdown(conn->fd, SHUT_RDWR);
        }
    }
    for (auto &thread : connectionThreads_)
        thread.join();
    {
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        for (const auto &conn : connections_)
            closeFd(conn->fd);
        connections_.clear();
        connectionThreads_.clear();
    }

    pool_.reset(); // joins workers after the (empty) queue drains

    if (!config_.metricsOut.empty() && obs::enabled()) {
        if (!obs::Registry::instance().exportToFile(
                config_.metricsOut)) {
            support::logWarn("serve", "cannot write metrics to " +
                                          config_.metricsOut);
        }
    }

    closeFd(drainPipe_[0]);
    closeFd(drainPipe_[1]);
    ::unlink(config_.socketPath.c_str());
    running_.store(false);
}

void
Server::stop()
{
    if (!running_.load())
        return;
    beginDrain();
    waitUntilDrained();
}

std::size_t
Server::queueDepth() const
{
    std::lock_guard<std::mutex> lock(pendingMutex_);
    return pending_;
}

void
Server::acceptLoop()
{
    for (;;) {
        pollfd fds[2];
        fds[0].fd = listenFd_;
        fds[0].events = POLLIN;
        fds[1].fd = drainPipe_[0];
        fds[1].events = POLLIN;
        const int n = ::poll(fds, 2, -1);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (draining_.load() || (fds[1].revents & POLLIN) != 0)
            break;
        if ((fds[0].revents & POLLIN) == 0)
            continue;

        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            break;
        }
        if (chaos::shouldInject("serve.accept")) {
            // Injected accept fault: the connection drops before its
            // first request. Clients see EOF and report a clean
            // transport error; the server keeps serving.
            obs::addCounter("serve.faults");
            ::close(fd);
            continue;
        }
        obs::addCounter("serve.connections");
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        std::lock_guard<std::mutex> lock(connectionsMutex_);
        connections_.push_back(conn);
        connectionThreads_.emplace_back(
            [this, conn] { connectionLoop(conn); });
    }
    closeFd(listenFd_);
}

bool
Server::admit(wire::Value *rejection)
{
    if (draining_.load()) {
        *rejection = wire::Value::object();
        rejection->set("status", wire::Value::string("draining"));
        rejection->set(
            "error",
            wire::Value::string("server is draining; resubmit to the "
                                "next instance"));
        return false;
    }
    std::lock_guard<std::mutex> lock(pendingMutex_);
    if (pending_ >= config_.queueLimit) {
        rejected_.fetch_add(1);
        obs::addCounter("serve.rejected");
        *rejection = wire::Value::object();
        rejection->set("status", wire::Value::string("retry"));
        rejection->set("retry_after_ms",
                       wire::Value::number(config_.retryAfterMs));
        rejection->set(
            "error",
            wire::Value::string(
                "request queue is full (" +
                std::to_string(config_.queueLimit) + " in flight)"));
        return false;
    }
    ++pending_;
    requests_.fetch_add(1);
    obs::addCounter("serve.requests");
    obs::setGauge("serve.queue_depth",
                  static_cast<double>(pending_));
    return true;
}

void
Server::finishRequest()
{
    {
        std::lock_guard<std::mutex> lock(pendingMutex_);
        --pending_;
        obs::setGauge("serve.queue_depth",
                      static_cast<double>(pending_));
    }
    pendingCv_.notify_all();
}

void
Server::writeResponse(const std::shared_ptr<Connection> &conn,
                      const wire::Value &response)
{
    std::lock_guard<std::mutex> lock(conn->writeMutex);
    if (conn->dead.load())
        return;
    if (chaos::shouldInject("serve.write")) {
        // Injected write fault: the response is lost and the
        // connection dropped, as if the peer's link died. The request
        // itself completed; only delivery fails.
        obs::addCounter("serve.faults");
        conn->dead.store(true);
        ::shutdown(conn->fd, SHUT_RDWR);
        return;
    }
    std::string error;
    if (!wire::writeFrame(conn->fd, response, &error)) {
        errors_.fetch_add(1);
        obs::addCounter("serve.errors");
        conn->dead.store(true);
        ::shutdown(conn->fd, SHUT_RDWR);
    }
}

void
Server::connectionLoop(std::shared_ptr<Connection> conn)
{
    for (;;) {
        wire::Value request;
        std::string error;
        if (!wire::readFrame(conn->fd, &request, &error)) {
            // "" = clean EOF (peer closed); anything else is a
            // transport or framing error worth counting. Either way
            // this connection is done — a corrupt frame leaves the
            // stream unsynchronized.
            if (!error.empty() && !conn->dead.load()) {
                errors_.fetch_add(1);
                obs::addCounter("serve.errors");
            }
            // Surface the close to the peer now (EOF on its next
            // read) instead of holding the fd open until the drain.
            if (!conn->dead.exchange(true))
                ::shutdown(conn->fd, SHUT_RDWR);
            break;
        }
        if (chaos::shouldInject("serve.read")) {
            // Injected read fault: the frame arrived but is treated
            // as unreadable. Degrades to a clean per-request error;
            // the connection (and server) keep going.
            obs::addCounter("serve.faults");
            wire::Value response = wire::Value::object();
            if (const wire::Value *id = request.find("id"))
                response.set("id", *id);
            response.set("status", wire::Value::string("error"));
            response.set("error",
                         wire::Value::string(
                             chaos::injectedStatus("serve.read")
                                 .toString()));
            writeResponse(conn, response);
            continue;
        }

        wire::Value rejection;
        if (!admit(&rejection)) {
            if (const wire::Value *id = request.find("id"))
                rejection.set("id", *id);
            writeResponse(conn, rejection);
            continue;
        }

        const auto enqueued = std::chrono::steady_clock::now();
        pool_->submit([this, conn, request = std::move(request),
                       enqueued]() mutable {
            const double waitedMs =
                std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - enqueued)
                    .count();
            obs::observe("serve.wait_ms", waitedMs);
            wire::Value response;
            try {
                response = handleRequest(request, waitedMs);
            } catch (const std::exception &e) {
                errors_.fetch_add(1);
                obs::addCounter("serve.errors");
                response = wire::Value::object();
                response.set("status", wire::Value::string("error"));
                response.set("error",
                             wire::Value::string(
                                 std::string("worker exception: ") +
                                 e.what()));
            }
            if (const wire::Value *id = request.find("id"))
                response.set("id", *id);
            writeResponse(conn, response);
            finishRequest();
        });
    }
}

} // namespace fits::serve
