#include "serve/wire.hh"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sys/socket.h>
#include <unistd.h>

namespace fits::serve::wire {

namespace {

const std::string &
emptyString()
{
    static const std::string s;
    return s;
}

const std::vector<Value> &
emptyItems()
{
    static const std::vector<Value> v;
    return v;
}

const std::vector<Member> &
emptyMembers()
{
    static const std::vector<Member> m;
    return m;
}

void
appendEscaped(std::string &out, std::string_view s)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendNumber(std::string &out, double n)
{
    if (std::isfinite(n) && n == std::floor(n) && n >= -9.0e15 &&
        n <= 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(n));
        out += buf;
        return;
    }
    if (!std::isfinite(n)) {
        // JSON has no NaN/Inf; degrade to null rather than emit an
        // unparsable token.
        out += "null";
        return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", n);
    out += buf;
}

void
appendValue(std::string &out, const Value &v)
{
    switch (v.kind()) {
    case Value::Kind::Null:
        out += "null";
        break;
    case Value::Kind::Bool:
        out += v.asBool() ? "true" : "false";
        break;
    case Value::Kind::Number:
        appendNumber(out, v.asNumber());
        break;
    case Value::Kind::String:
        appendEscaped(out, v.asString());
        break;
    case Value::Kind::Array: {
        out += '[';
        bool first = true;
        for (const Value &item : v.items()) {
            if (!first)
                out += ',';
            first = false;
            appendValue(out, item);
        }
        out += ']';
        break;
    }
    case Value::Kind::Object: {
        out += '{';
        bool first = true;
        for (const Member &member : v.members()) {
            if (!first)
                out += ',';
            first = false;
            appendEscaped(out, member.first);
            out += ':';
            appendValue(out, member.second);
        }
        out += '}';
        break;
    }
    }
}

/** Recursive-descent JSON parser over a string_view. Depth-limited so
 * a hostile frame cannot overflow the stack. */
class Parser
{
  public:
    explicit Parser(std::string_view text)
        : text_(text)
    {
    }

    bool
    parse(Value *out, std::string *error)
    {
        if (!parseValue(out, 0)) {
            if (error != nullptr)
                *error = error_;
            return false;
        }
        skipWs();
        if (pos_ != text_.size()) {
            if (error != nullptr)
                *error = "trailing bytes after JSON value";
            return false;
        }
        return true;
    }

  private:
    static constexpr std::size_t kMaxDepth = 64;

    bool
    fail(const char *why)
    {
        if (error_.empty()) {
            error_ = why;
            error_ += " at offset ";
            error_ += std::to_string(pos_);
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseValue(Value *out, std::size_t depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(out, depth);
        if (c == '[')
            return parseArray(out, depth);
        if (c == '"') {
            std::string s;
            if (!parseString(&s))
                return false;
            *out = Value::string(std::move(s));
            return true;
        }
        if (consumeWord("null")) {
            *out = Value::null();
            return true;
        }
        if (consumeWord("true")) {
            *out = Value::boolean(true);
            return true;
        }
        if (consumeWord("false")) {
            *out = Value::boolean(false);
            return true;
        }
        return parseNumber(out);
    }

    bool
    parseObject(Value *out, std::size_t depth)
    {
        consume('{');
        *out = Value::object();
        skipWs();
        if (consume('}'))
            return true;
        while (true) {
            skipWs();
            std::string key;
            if (!parseString(&key))
                return fail("expected object key");
            skipWs();
            if (!consume(':'))
                return fail("expected ':'");
            Value v;
            if (!parseValue(&v, depth + 1))
                return false;
            out->set(std::move(key), std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return true;
            return fail("expected ',' or '}'");
        }
    }

    bool
    parseArray(Value *out, std::size_t depth)
    {
        consume('[');
        *out = Value::array();
        skipWs();
        if (consume(']'))
            return true;
        while (true) {
            Value v;
            if (!parseValue(&v, depth + 1))
                return false;
            out->push(std::move(v));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']'))
                return true;
            return fail("expected ',' or ']'");
        }
    }

    bool
    parseString(std::string *out)
    {
        if (!consume('"'))
            return fail("expected string");
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                *out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
            case '"':
                *out += '"';
                break;
            case '\\':
                *out += '\\';
                break;
            case '/':
                *out += '/';
                break;
            case 'b':
                *out += '\b';
                break;
            case 'f':
                *out += '\f';
                break;
            case 'n':
                *out += '\n';
                break;
            case 'r':
                *out += '\r';
                break;
            case 't':
                *out += '\t';
                break;
            case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // Encode the code point as UTF-8. Surrogate pairs are
                // not combined (the protocol never emits them); each
                // half round-trips as its raw three-byte form.
                if (code < 0x80) {
                    *out += static_cast<char>(code);
                } else if (code < 0x800) {
                    *out += static_cast<char>(0xc0 | (code >> 6));
                    *out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    *out += static_cast<char>(0xe0 | (code >> 12));
                    *out += static_cast<char>(0x80 |
                                              ((code >> 6) & 0x3f));
                    *out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
            }
            default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(Value *out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() &&
            (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '-' ||
                text_[pos_] == '+')) {
            if (text_[pos_] >= '0' && text_[pos_] <= '9')
                digits = true;
            ++pos_;
        }
        if (!digits) {
            pos_ = start;
            return fail("expected a value");
        }
        const std::string token(text_.substr(start, pos_ - start));
        errno = 0;
        char *end = nullptr;
        const double n = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0' || errno == ERANGE) {
            pos_ = start;
            return fail("malformed number");
        }
        *out = Value::number(n);
        return true;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    std::string error_;
};

} // namespace

Value
Value::boolean(bool b)
{
    Value v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

Value
Value::number(double n)
{
    Value v;
    v.kind_ = Kind::Number;
    v.number_ = n;
    return v;
}

Value
Value::integer(std::int64_t n)
{
    return number(static_cast<double>(n));
}

Value
Value::string(std::string s)
{
    Value v;
    v.kind_ = Kind::String;
    v.string_ = std::move(s);
    return v;
}

Value
Value::array()
{
    Value v;
    v.kind_ = Kind::Array;
    return v;
}

Value
Value::object()
{
    Value v;
    v.kind_ = Kind::Object;
    return v;
}

bool
Value::asBool(bool fallback) const
{
    return kind_ == Kind::Bool ? bool_ : fallback;
}

double
Value::asNumber(double fallback) const
{
    return kind_ == Kind::Number ? number_ : fallback;
}

std::int64_t
Value::asInt(std::int64_t fallback) const
{
    return kind_ == Kind::Number ? static_cast<std::int64_t>(number_)
                                 : fallback;
}

const std::string &
Value::asString() const
{
    return kind_ == Kind::String ? string_ : emptyString();
}

const std::vector<Value> &
Value::items() const
{
    return kind_ == Kind::Array ? items_ : emptyItems();
}

void
Value::push(Value v)
{
    if (kind_ != Kind::Array) {
        *this = array();
    }
    items_.push_back(std::move(v));
}

const std::vector<Member> &
Value::members() const
{
    return kind_ == Kind::Object ? members_ : emptyMembers();
}

const Value *
Value::find(std::string_view key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const Member &member : members_) {
        if (member.first == key)
            return &member.second;
    }
    return nullptr;
}

void
Value::set(std::string key, Value v)
{
    if (kind_ != Kind::Object) {
        *this = object();
    }
    for (Member &member : members_) {
        if (member.first == key) {
            member.second = std::move(v);
            return;
        }
    }
    members_.emplace_back(std::move(key), std::move(v));
}

std::string
Value::getString(std::string_view key, std::string_view fallback) const
{
    const Value *v = find(key);
    return v != nullptr && v->isString() ? v->asString()
                                         : std::string(fallback);
}

double
Value::getNumber(std::string_view key, double fallback) const
{
    const Value *v = find(key);
    return v != nullptr ? v->asNumber(fallback) : fallback;
}

std::int64_t
Value::getInt(std::string_view key, std::int64_t fallback) const
{
    const Value *v = find(key);
    return v != nullptr ? v->asInt(fallback) : fallback;
}

bool
Value::getBool(std::string_view key, bool fallback) const
{
    const Value *v = find(key);
    return v != nullptr ? v->asBool(fallback) : fallback;
}

std::string
Value::toJson() const
{
    std::string out;
    appendValue(out, *this);
    return out;
}

const char *
decodeStatusName(DecodeStatus status)
{
    switch (status) {
    case DecodeStatus::Ok:
        return "ok";
    case DecodeStatus::NeedMore:
        return "need-more";
    case DecodeStatus::Corrupt:
        return "corrupt";
    }
    return "?";
}

bool
parseJson(std::string_view text, Value *out, std::string *error)
{
    return Parser(text).parse(out, error);
}

std::string
encodeFrame(const Value &value)
{
    const std::string payload = value.toJson();
    std::string frame;
    frame.reserve(4 + payload.size());
    const auto n = static_cast<std::uint32_t>(payload.size());
    frame += static_cast<char>(n & 0xff);
    frame += static_cast<char>((n >> 8) & 0xff);
    frame += static_cast<char>((n >> 16) & 0xff);
    frame += static_cast<char>((n >> 24) & 0xff);
    frame += payload;
    return frame;
}

DecodeStatus
decodeFrame(const std::uint8_t *data, std::size_t size, Value *out,
            std::size_t *consumed, std::string *error)
{
    if (size < 4)
        return DecodeStatus::NeedMore;
    const std::uint32_t length =
        static_cast<std::uint32_t>(data[0]) |
        (static_cast<std::uint32_t>(data[1]) << 8) |
        (static_cast<std::uint32_t>(data[2]) << 16) |
        (static_cast<std::uint32_t>(data[3]) << 24);
    if (length > kMaxFrameBytes) {
        if (error != nullptr)
            *error = "frame length " + std::to_string(length) +
                     " exceeds limit";
        return DecodeStatus::Corrupt;
    }
    if (size < 4 + static_cast<std::size_t>(length))
        return DecodeStatus::NeedMore;
    const std::string_view payload(
        reinterpret_cast<const char *>(data + 4), length);
    std::string parseError;
    if (!parseJson(payload, out, &parseError)) {
        if (error != nullptr)
            *error = "bad frame payload: " + parseError;
        return DecodeStatus::Corrupt;
    }
    if (consumed != nullptr)
        *consumed = 4 + static_cast<std::size_t>(length);
    return DecodeStatus::Ok;
}

namespace {

/** Read exactly `n` bytes; false on EOF or error. A clean EOF before
 * the first byte sets `error` to "" so callers can tell "peer hung
 * up" from "stream died mid-frame". */
bool
readExact(int fd, std::uint8_t *buf, std::size_t n, bool *cleanEof,
          std::string *error)
{
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = ::read(fd, buf + got, n - got);
        if (r == 0) {
            if (cleanEof != nullptr)
                *cleanEof = got == 0;
            if (error != nullptr)
                *error = got == 0 ? "" : "stream ended mid-frame";
            return false;
        }
        if (r < 0) {
            if (errno == EINTR)
                continue;
            if (error != nullptr)
                *error = std::string("read failed: ") +
                         std::strerror(errno);
            return false;
        }
        got += static_cast<std::size_t>(r);
    }
    return true;
}

} // namespace

bool
readFrame(int fd, Value *out, std::string *error)
{
    std::uint8_t prefix[4];
    if (!readExact(fd, prefix, 4, nullptr, error))
        return false;
    const std::uint32_t length =
        static_cast<std::uint32_t>(prefix[0]) |
        (static_cast<std::uint32_t>(prefix[1]) << 8) |
        (static_cast<std::uint32_t>(prefix[2]) << 16) |
        (static_cast<std::uint32_t>(prefix[3]) << 24);
    if (length > kMaxFrameBytes) {
        if (error != nullptr)
            *error = "frame length " + std::to_string(length) +
                     " exceeds limit";
        return false;
    }
    std::vector<std::uint8_t> payload(length);
    if (length > 0 &&
        !readExact(fd, payload.data(), payload.size(), nullptr, error))
        return false;
    const std::string_view text(
        reinterpret_cast<const char *>(payload.data()),
        payload.size());
    std::string parseError;
    if (!parseJson(text, out, &parseError)) {
        if (error != nullptr)
            *error = "bad frame payload: " + parseError;
        return false;
    }
    return true;
}

bool
writeFrame(int fd, const Value &value, std::string *error)
{
    const std::string frame = encodeFrame(value);
    std::size_t sent = 0;
    while (sent < frame.size()) {
        // MSG_NOSIGNAL: a peer that hung up mid-response must surface
        // as EPIPE, not kill the server. Plain files (tests) fall
        // back to write().
        ssize_t w = ::send(fd, frame.data() + sent,
                           frame.size() - sent, MSG_NOSIGNAL);
        if (w < 0 && errno == ENOTSOCK)
            w = ::write(fd, frame.data() + sent, frame.size() - sent);
        if (w < 0) {
            if (errno == EINTR)
                continue;
            if (error != nullptr)
                *error = std::string("write failed: ") +
                         std::strerror(errno);
            return false;
        }
        sent += static_cast<std::size_t>(w);
    }
    return true;
}

} // namespace fits::serve::wire
