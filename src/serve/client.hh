#ifndef FITS_SERVE_CLIENT_HH_
#define FITS_SERVE_CLIENT_HH_

#include <string>

#include "serve/wire.hh"

namespace fits::serve {

/**
 * Blocking client for the `fits serve` daemon: one unix-domain
 * connection, one request/response round trip at a time. `submit()`
 * additionally honors the server's backpressure protocol — a
 * `{"status":"retry","retry_after_ms":...}` response is retried
 * after the hinted pause, so callers see only final outcomes.
 */
class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    /** Connect to a server socket; false + `error` on failure. */
    bool connect(const std::string &socketPath, std::string *error);

    void close();

    bool connected() const { return fd_ >= 0; }

    /** One round trip, no retry handling. False on any transport
     * failure (connection refused, dropped mid-response, corrupt
     * frame); the response may still be a protocol-level error
     * (status "error") — that returns true. */
    bool call(const wire::Value &request, wire::Value *response,
              std::string *error);

    /** call() with backpressure handling: "retry" responses sleep
     * for the server's retry_after_ms hint and resubmit, up to
     * `maxAttempts` total tries. A "draining" response is terminal.
     */
    bool submit(const wire::Value &request, wire::Value *response,
                std::string *error, int maxAttempts = 200);

  private:
    int fd_ = -1;
    std::uint64_t nextId_ = 1;
};

} // namespace fits::serve

#endif // FITS_SERVE_CLIENT_HH_
