/**
 * @file
 * Request execution for the `fits serve` daemon: the dispatch table
 * behind Server::handleRequest. Each op reuses the exact machinery of
 * the one-shot CLI — `eval::runCorpusReport`, `eval::runRankReport`,
 * `eval::runTaintReport`, the `core::FitsPipeline` — so a client
 * submitting the same work gets byte-identical tables, with the
 * process-wide analysis cache shared across requests.
 *
 * Protocol: requests are JSON objects with an "op" member; responses
 * echo the request "id" (if any) and carry "status": "ok", "error",
 * "retry" (backpressure), or "draining". Error responses carry the
 * exact stderr text the one-shot tool would print in "error", so
 * `fits client` can relay it verbatim.
 */

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <thread>

#include "core/pipeline.hh"
#include "eval/report.hh"
#include "obs/metrics.hh"
#include "serve/server.hh"
#include "support/deadline.hh"
#include "support/status.hh"
#include "support/strings.hh"

namespace fits::serve {

namespace {

wire::Value
okResponse(const std::string &op)
{
    wire::Value response = wire::Value::object();
    response.set("status", wire::Value::string("ok"));
    response.set("op", wire::Value::string(op));
    return response;
}

wire::Value
errorResponse(const std::string &op, std::string stderrText)
{
    wire::Value response = wire::Value::object();
    response.set("status", wire::Value::string("error"));
    response.set("op", wire::Value::string(op));
    response.set("error", wire::Value::string(std::move(stderrText)));
    return response;
}

/** Read an image request argument with the one-shot CLI's exact
 * diagnostics (missing / directory / unreadable). */
bool
readImageArg(const std::string &path,
             std::vector<std::uint8_t> *bytes, std::string *error)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::file_status st = fs::status(path, ec);
    if (ec || st.type() == fs::file_type::not_found) {
        *error = support::format("cannot read %s: no such file\n",
                                 path.c_str());
        return false;
    }
    if (st.type() == fs::file_type::directory) {
        *error = support::format("cannot read %s: is a directory "
                                 "(expected a .fwimg file)\n",
                                 path.c_str());
        return false;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *error = support::format("cannot read %s: open failed "
                                 "(permissions?)\n",
                                 path.c_str());
        return false;
    }
    bytes->assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    return true;
}

/** Clamp a pipeline config's stage budgets to the request's remaining
 * wall-clock budget, keeping any tighter pre-existing budget. */
void
applyRequestBudget(core::PipelineConfig *config, double remainingMs)
{
    if (remainingMs <= 0.0)
        return;
    if (config->budgets.behaviorMs <= 0.0 ||
        config->budgets.behaviorMs > remainingMs)
        config->budgets.behaviorMs = remainingMs;
    if (config->budgets.taintMs <= 0.0 ||
        config->budgets.taintMs > remainingMs)
        config->budgets.taintMs = remainingMs;
}

} // namespace

wire::Value
Server::handleRequest(const wire::Value &request, double waitedMs)
{
    const std::string op = request.getString("op");
    if (op.empty()) {
        return errorResponse(
            "", "bad request: missing \"op\" member\n");
    }

    // Per-request wall-clock budget covers queue wait and execution:
    // a request that waited out its whole budget is answered without
    // running.
    double remainingMs = 0.0;
    if (config_.requestTimeoutMs > 0.0) {
        remainingMs = config_.requestTimeoutMs - waitedMs;
        if (remainingMs <= 0.0) {
            obs::addCounter("serve.timeouts");
            return errorResponse(
                op, support::Status::error(
                        support::Stage::Serve,
                        support::ErrorCode::Timeout,
                        "request spent its " +
                            std::to_string(static_cast<long>(
                                config_.requestTimeoutMs)) +
                            " ms budget waiting in the queue")
                            .toString() +
                        "\n");
        }
    }

    obs::ScopedTimer timer("serve/" + op);

    wire::Value response;
    if (op == "ping") {
        response = okResponse(op);
        response.set("jobs",
                     wire::Value::integer(
                         static_cast<std::int64_t>(resolvedJobs_)));
        response.set("queue_limit",
                     wire::Value::integer(static_cast<std::int64_t>(
                         config_.queueLimit)));
    } else if (op == "sleep") {
        // Diagnostic op: occupy one worker slot for `ms`. The
        // backpressure and drain tests use it to make queue states
        // deterministic.
        const double ms = request.getNumber("ms", 10.0);
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
        response = okResponse(op);
        response.set("slept_ms", wire::Value::number(ms));
    } else if (op == "rank" || op == "infer") {
        const std::string path = request.getString("path");
        std::vector<std::uint8_t> bytes;
        std::string error;
        if (!readImageArg(path, &bytes, &error)) {
            response = errorResponse(op, std::move(error));
        } else if (op == "rank") {
            core::PipelineConfig config;
            applyRequestBudget(&config, remainingMs);
            const auto top = static_cast<std::size_t>(
                request.getInt("top", 10));
            const bool useSymbols =
                request.getBool("use_symbols", false);
            const auto report =
                eval::runRankReport(bytes, top, useSymbols, config);
            if (!report.ok) {
                response = errorResponse(op, report.error);
            } else {
                response = okResponse(op);
                response.set("output",
                             wire::Value::string(report.text));
            }
        } else {
            // infer: the machine-readable sibling of rank — the full
            // ranking as structured JSON instead of a rendered table.
            core::PipelineConfig config;
            config.behaviorCache = true;
            config.infer.useSymbolNames =
                request.getBool("use_symbols", false);
            applyRequestBudget(&config, remainingMs);
            const core::FitsPipeline pipeline(config);
            const auto result = pipeline.run(bytes);
            if (!result.ok) {
                response = errorResponse(
                    op, support::format("pipeline failed: %s\n",
                                        result.error.c_str()));
            } else {
                response = okResponse(op);
                response.set("binary",
                             wire::Value::string(result.binaryName));
                response.set(
                    "functions",
                    wire::Value::integer(static_cast<std::int64_t>(
                        result.numFunctions)));
                response.set(
                    "candidates",
                    wire::Value::integer(static_cast<std::int64_t>(
                        result.inference.numCandidates)));
                response.set("degraded",
                             wire::Value::boolean(result.degraded));
                wire::Value ranking = wire::Value::array();
                for (const auto &rf : result.inference.ranking) {
                    wire::Value entry = wire::Value::object();
                    entry.set("entry",
                              wire::Value::string(
                                  support::hex(rf.entry)));
                    entry.set("score", wire::Value::number(rf.score));
                    if (!rf.name.empty())
                        entry.set("name",
                                  wire::Value::string(rf.name));
                    ranking.push(std::move(entry));
                }
                response.set("ranking", std::move(ranking));
            }
        }
    } else if (op == "taint") {
        const std::string path = request.getString("path");
        const std::string engine = request.getString("engine", "sta");
        std::vector<std::uint8_t> bytes;
        std::string error;
        if (engine != "sta" && engine != "karonte") {
            response = errorResponse(
                op, "bad taint engine \"" + engine +
                        "\" (expected sta or karonte)\n");
        } else if (!readImageArg(path, &bytes, &error)) {
            response = errorResponse(op, std::move(error));
        } else {
            std::vector<std::uint64_t> itsAddrs;
            if (const wire::Value *its = request.find("its")) {
                for (const wire::Value &addr : its->items())
                    itsAddrs.push_back(static_cast<std::uint64_t>(
                        addr.isString()
                            ? std::strtoull(
                                  addr.asString().c_str(), nullptr,
                                  0)
                            : addr.asInt()));
            }
            const auto report =
                eval::runTaintReport(bytes, engine, itsAddrs);
            if (!report.ok) {
                response = errorResponse(op, report.error);
            } else {
                response = okResponse(op);
                response.set("output",
                             wire::Value::string(report.text));
            }
        }
    } else if (op == "corpus") {
        eval::CorpusOptions options;
        options.dir = request.getString("dir");
        options.taint = request.getBool("taint", false);
        options.cache = request.getBool("cache", true);
        options.jobs = static_cast<std::size_t>(
            request.getInt("jobs", 0));
        applyRequestBudget(&options.pipeline, remainingMs);
        const auto report = eval::runCorpusReport(options);
        if (!report.ok) {
            response = errorResponse(op, report.error);
        } else {
            response = okResponse(op);
            response.set("output", wire::Value::string(
                                       report.header + report.text));
            response.set("diagnostics",
                         wire::Value::string(report.diagnostics));
            response.set("wall_ms",
                         wire::Value::number(report.wallMs));
            response.set("jobs",
                         wire::Value::integer(
                             static_cast<std::int64_t>(report.jobs)));
            response.set("samples",
                         wire::Value::integer(
                             static_cast<std::int64_t>(
                                 report.samples)));
            response.set("failed",
                         wire::Value::integer(
                             static_cast<std::int64_t>(
                                 report.failed)));
            response.set("degraded",
                         wire::Value::integer(
                             static_cast<std::int64_t>(
                                 report.degraded)));
            response.set("retried",
                         wire::Value::integer(
                             static_cast<std::int64_t>(
                                 report.retried)));
            response.set("cache", wire::Value::string(
                                      eval::renderCacheSummary()));
            response.set("exit",
                         wire::Value::integer(report.exitCode()));
        }
    } else if (op == "metrics") {
        response = okResponse(op);
        response.set("metrics_json",
                     wire::Value::string(
                         obs::Registry::instance().toJson()));
        response.set("requests",
                     wire::Value::integer(static_cast<std::int64_t>(
                         requests_.load())));
        response.set("rejected",
                     wire::Value::integer(static_cast<std::int64_t>(
                         rejected_.load())));
        response.set("queue_depth",
                     wire::Value::integer(
                         static_cast<std::int64_t>(queueDepth())));
        response.set("cache", wire::Value::string(
                                  eval::renderCacheSummary()));
    } else if (op == "shutdown") {
        beginDrain();
        response = okResponse(op);
        response.set("draining", wire::Value::boolean(true));
    } else {
        response = errorResponse(
            op, "unknown op \"" + op + "\"\n");
    }

    obs::observe("serve.request_ms", timer.stopMs());
    return response;
}

} // namespace fits::serve
