#ifndef FITS_SERVE_SERVER_HH_
#define FITS_SERVE_SERVER_HH_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/wire.hh"
#include "support/thread_pool.hh"

namespace fits::serve {

/**
 * The resident analysis daemon behind `fits serve`: a unix-domain
 * socket accepting length-prefixed JSON requests (`serve::wire`),
 * executed on a shared `support::ThreadPool` over the process-wide
 * analysis cache — N clients analyzing overlapping firmware share
 * lifted images and behavior bundles across requests.
 *
 * Flow control: admitted-but-unfinished requests are bounded by
 * `ServerConfig::queueLimit`. A request arriving above the limit is
 * rejected immediately with `{"status":"retry","retry_after_ms":...}`
 * — backpressure is explicit and cheap, never a silent deepening
 * queue. Clients (`serve::Client::submit`) honor the hint and
 * resubmit.
 *
 * Lifecycle: `start()` binds and spawns the acceptor; `beginDrain()`
 * (directly, via a SIGTERM writing to `drainTriggerFd()`, or via a
 * `shutdown` request) stops accepting work; `waitUntilDrained()`
 * blocks until every in-flight request has finished and its response
 * has been written, then tears down connections, flushes metrics, and
 * removes the socket. beginDrain() is async-signal-safe: one atomic
 * store and one pipe write.
 *
 * Integration points:
 *  - per-request `support::Deadline` budgets
 *    (`ServerConfig::requestTimeoutMs`, covering queue wait AND
 *    execution: a request that waited out its budget is answered with
 *    a timeout error without running);
 *  - `fits::obs` counters/gauges/histograms (`serve.*`) and per-op
 *    spans (`serve/<op>`), exported via the `metrics` request or the
 *    usual `FITS_METRICS` dump;
 *  - `fits::chaos` fault sites `serve.accept` / `serve.read` /
 *    `serve.write`, which degrade to dropped connections or clean
 *    per-request errors — never a crash, never a wedged server.
 */
struct ServerConfig
{
    /** Filesystem path of the unix-domain listening socket. */
    std::string socketPath;
    /** Analysis worker threads; 0 = FITS_JOBS / hardware. */
    std::size_t jobs = 0;
    /** Maximum admitted-but-unfinished requests before backpressure
     * rejections. */
    std::size_t queueLimit = 16;
    /** Per-request wall-clock budget in ms (queue wait + execution);
     * 0 = unlimited. Expiry degrades the analysis (partial result)
     * or, when spent entirely in the queue, rejects the request with
     * a typed timeout error. */
    double requestTimeoutMs = 0.0;
    /** Hint carried by backpressure rejections. */
    double retryAfterMs = 25.0;
    /** Non-empty: write an obs registry snapshot here when the drain
     * completes (in addition to any FITS_METRICS exit dump). */
    std::string metricsOut;
};

class Server
{
  public:
    explicit Server(ServerConfig config);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind, listen, and spawn the acceptor. False + `error` on any
     * socket failure (path too long, bind refused, ...). */
    bool start(std::string *error);

    /** Stop accepting connections and admitting requests. Safe from
     * any thread and from a signal handler. Idempotent. */
    void beginDrain();

    /** Block until the drain completes: the acceptor has exited,
     * every admitted request has finished and answered, connections
     * are closed, metrics are flushed, and the socket file is gone.
     * Returns immediately if start() never succeeded. */
    void waitUntilDrained();

    /** beginDrain() + waitUntilDrained(). */
    void stop();

    bool running() const { return running_.load(); }
    bool draining() const { return draining_.load(); }

    /** Admitted-but-unfinished requests right now. */
    std::size_t queueDepth() const;

    /** Requests admitted (not rejected) since start. */
    std::size_t requestsServed() const { return requests_.load(); }

    /** Backpressure rejections since start. */
    std::size_t requestsRejected() const { return rejected_.load(); }

    /** Resolved analysis worker count (after FITS_JOBS / hardware
     * defaulting). Valid once start() has succeeded. */
    std::size_t workerCount() const { return resolvedJobs_; }

    const ServerConfig &config() const { return config_; }

    /**
     * Execute one request synchronously and produce its response.
     * Public so tests (and the one-shot equivalence suite) can drive
     * the exact service path without a socket. Request admission,
     * queueing, and framing are the caller's business.
     */
    wire::Value handleRequest(const wire::Value &request,
                              double waitedMs = 0.0);

  private:
    struct Connection
    {
        int fd = -1;
        std::mutex writeMutex;
        std::atomic<bool> dead{false};
    };

    void acceptLoop();
    void connectionLoop(std::shared_ptr<Connection> conn);

    /** Serialize and send one response; chaos site `serve.write`
     * drops the connection instead. */
    void writeResponse(const std::shared_ptr<Connection> &conn,
                       const wire::Value &response);

    /** Admission control: false (with a ready-to-send rejection in
     * `*rejection`) when draining or the queue is full. */
    bool admit(wire::Value *rejection);

    void finishRequest();

    ServerConfig config_;
    std::size_t resolvedJobs_ = 1;

    int listenFd_ = -1;
    int drainPipe_[2] = {-1, -1};

    std::atomic<bool> running_{false};
    std::atomic<bool> draining_{false};
    std::atomic<bool> drained_{false};

    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> rejected_{0};
    std::atomic<std::uint64_t> errors_{0};

    mutable std::mutex pendingMutex_;
    std::condition_variable pendingCv_;
    std::size_t pending_ = 0;

    std::unique_ptr<support::ThreadPool> pool_;
    std::thread acceptThread_;

    std::mutex connectionsMutex_;
    std::vector<std::shared_ptr<Connection>> connections_;
    std::vector<std::thread> connectionThreads_;
};

} // namespace fits::serve

#endif // FITS_SERVE_SERVER_HH_
