#include "bench_record.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/metrics.hh"

namespace fits::obs {

namespace {

void
appendEscaped(std::string &out, const std::string &text)
{
    out += '"';
    for (const char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default:   out += c;
        }
    }
    out += '"';
}

} // namespace

BenchRecord::BenchRecord(std::string name)
    : name_(std::move(name))
{
}

void
BenchRecord::add(std::string key, double value)
{
    numbers_.emplace_back(std::move(key), value);
}

void
BenchRecord::add(std::string key, std::string value)
{
    strings_.emplace_back(std::move(key), std::move(value));
}

std::string
BenchRecord::toJson() const
{
    std::string out = "{\n  \"bench\": ";
    appendEscaped(out, name_);
    out += ",\n  \"fields\": {";
    bool first = true;
    for (const auto &[key, value] : numbers_) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendEscaped(out, key);
        out += ": ";
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6g",
                      std::isfinite(value) ? value : 0.0);
        out += buf;
    }
    for (const auto &[key, value] : strings_) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendEscaped(out, key);
        out += ": ";
        appendEscaped(out, value);
    }
    out += "\n  },\n  \"metrics\": ";
    // Indent the registry document to keep the record readable.
    const std::string metrics = Registry::instance().toJson();
    for (const char c : metrics) {
        out += c;
        if (c == '\n')
            out += "  ";
    }
    while (!out.empty() &&
           (out.back() == ' ' || out.back() == '\n'))
        out.pop_back();
    out += "\n}\n";
    return out;
}

std::string
BenchRecord::outputPath() const
{
    std::string dir;
    if (const char *env = std::getenv("FITS_BENCH_DIR")) {
        dir = env;
        if (!dir.empty() && dir.back() != '/')
            dir += '/';
    }
    return dir + "BENCH_" + name_ + ".json";
}

bool
BenchRecord::write() const
{
    const std::string path = outputPath();
    std::ofstream out(path);
    if (out)
        out << toJson();
    if (!out) {
        std::fprintf(stderr, "bench: cannot write %s\n",
                     path.c_str());
        return false;
    }
    std::printf("\n[bench json: %s]\n", path.c_str());
    return true;
}

} // namespace fits::obs
