#include "metrics.hh"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace fits::obs {

namespace {

std::atomic<bool> g_enabled{false};

/** Destination of the atexit auto-dump ("" = none). */
std::string &
autoExportPath()
{
    static std::string path;
    return path;
}

void
dumpAtExit()
{
    const std::string &path = autoExportPath();
    if (!path.empty())
        Registry::instance().exportToFile(path);
}

/** Parse FITS_METRICS once at load time (see header contract). */
struct EnvInit
{
    EnvInit()
    {
        const char *env = std::getenv("FITS_METRICS");
        if (env == nullptr || *env == '\0')
            return;
        if (std::strcmp(env, "0") == 0 ||
            std::strcmp(env, "off") == 0) {
            return;
        }
        g_enabled.store(true, std::memory_order_relaxed);
        if (std::strcmp(env, "1") != 0 &&
            std::strcmp(env, "on") != 0 &&
            std::strcmp(env, "true") != 0) {
            autoExportPath() = env;
            std::atexit(dumpAtExit);
        }
    }
};

const EnvInit g_envInit;

/** Per-thread span nesting stack (full paths). */
thread_local std::vector<std::string> t_spanStack;

void
appendJsonString(std::string &out, std::string_view text)
{
    out += '"';
    for (const char c : text) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
appendJsonNumber(std::string &out, double value)
{
    if (!std::isfinite(value)) {
        out += "0"; // JSON has no NaN/Inf; clamp rather than corrupt
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    out += buf;
}

} // namespace

bool
enabled()
{
    return g_enabled.load(std::memory_order_relaxed);
}

void
setEnabled(bool on)
{
    g_enabled.store(on, std::memory_order_relaxed);
}

// ---- Histogram -------------------------------------------------------

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      counts_(bounds_.size() + 1)
{
}

void
Histogram::observe(double value)
{
    std::size_t bucket = bounds_.size(); // overflow bucket
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (value <= bounds_[i]) {
            bucket = i;
            break;
        }
    }
    counts_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sumMicro_.fetch_add(static_cast<std::int64_t>(value * 1e6),
                        std::memory_order_relaxed);
}

std::vector<std::uint64_t>
Histogram::bucketCounts() const
{
    std::vector<std::uint64_t> out(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i)
        out[i] = counts_[i].load(std::memory_order_relaxed);
    return out;
}

void
Histogram::reset()
{
    for (auto &c : counts_)
        c.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sumMicro_.store(0, std::memory_order_relaxed);
}

void
TimerStat::reset()
{
    count_.store(0, std::memory_order_relaxed);
    totalNs_.store(0, std::memory_order_relaxed);
    maxNs_.store(0, std::memory_order_relaxed);
}

// ---- Registry --------------------------------------------------------

Registry &
Registry::instance()
{
    // Intentionally leaked: the FITS_METRICS atexit dump (and any
    // static-storage ScopedTimer) may touch the registry after local
    // statics have been destroyed, so it must never be torn down.
    static Registry *registry = new Registry;
    return *registry;
}

const std::vector<double> &
Registry::defaultTimeBucketsMs()
{
    static const std::vector<double> buckets = {
        0.1, 0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000,
        5000};
    return buckets;
}

Counter &
Registry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end())
        it = counters_.try_emplace(std::string(name)).first;
    return it->second;
}

Gauge &
Registry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end())
        it = gauges_.try_emplace(std::string(name)).first;
    return it->second;
}

Histogram &
Registry::histogram(std::string_view name,
                    const std::vector<double> &bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_
                 .emplace(std::piecewise_construct,
                          std::forward_as_tuple(std::string(name)),
                          std::forward_as_tuple(bounds))
                 .first;
    }
    return it->second;
}

TimerStat &
Registry::timer(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = timers_.find(name);
    if (it == timers_.end())
        it = timers_.try_emplace(std::string(name)).first;
    return it->second;
}

Snapshot
Registry::snapshot() const
{
    Snapshot snap;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &[name, counter] : counters_)
        snap.counters[name] = counter.value();
    for (const auto &[name, gauge] : gauges_)
        snap.gauges[name] = gauge.value();
    for (const auto &[name, histogram] : histograms_) {
        Snapshot::HistogramView view;
        view.bounds = histogram.bounds();
        view.counts = histogram.bucketCounts();
        view.count = histogram.count();
        view.sum = histogram.sum();
        snap.histograms[name] = std::move(view);
    }
    for (const auto &[name, timer] : timers_) {
        Snapshot::TimerView view;
        view.count = timer.count();
        view.totalMs = timer.totalMs();
        view.maxMs = timer.maxMs();
        snap.timers[name] = std::move(view);
    }
    return snap;
}

std::string
Registry::toJson() const
{
    const Snapshot snap = snapshot();
    std::string out;
    out.reserve(1024);
    out += "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : snap.counters) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        char buf[32];
        std::snprintf(buf, sizeof buf, ": %" PRIu64, value);
        out += buf;
    }
    out += "\n  },\n  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : snap.gauges) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += ": ";
        appendJsonNumber(out, value);
    }
    out += "\n  },\n  \"histograms\": {";
    first = true;
    for (const auto &[name, view] : snap.histograms) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        out += ": {\"bounds\": [";
        for (std::size_t i = 0; i < view.bounds.size(); ++i) {
            if (i > 0)
                out += ", ";
            appendJsonNumber(out, view.bounds[i]);
        }
        out += "], \"counts\": [";
        for (std::size_t i = 0; i < view.counts.size(); ++i) {
            if (i > 0)
                out += ", ";
            char buf[32];
            std::snprintf(buf, sizeof buf, "%" PRIu64,
                          view.counts[i]);
            out += buf;
        }
        char buf[64];
        std::snprintf(buf, sizeof buf, "], \"count\": %" PRIu64,
                      view.count);
        out += buf;
        out += ", \"sum\": ";
        appendJsonNumber(out, view.sum);
        out += "}";
    }
    out += "\n  },\n  \"timers\": {";
    first = true;
    for (const auto &[name, view] : snap.timers) {
        out += first ? "\n    " : ",\n    ";
        first = false;
        appendJsonString(out, name);
        char buf[64];
        std::snprintf(buf, sizeof buf, ": {\"count\": %" PRIu64,
                      view.count);
        out += buf;
        out += ", \"total_ms\": ";
        appendJsonNumber(out, view.totalMs);
        out += ", \"max_ms\": ";
        appendJsonNumber(out, view.maxMs);
        out += "}";
    }
    out += "\n  }\n}\n";
    return out;
}

bool
Registry::exportToFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJson();
    return static_cast<bool>(out);
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter.reset();
    for (auto &[name, gauge] : gauges_)
        gauge.reset();
    for (auto &[name, histogram] : histograms_)
        histogram.reset();
    for (auto &[name, timer] : timers_)
        timer.reset();
}

// ---- One-shot helpers ------------------------------------------------

void
addCounter(std::string_view name, std::uint64_t delta)
{
    if (!enabled())
        return;
    Registry::instance().counter(name).add(delta);
}

void
setGauge(std::string_view name, double value)
{
    if (!enabled())
        return;
    Registry::instance().gauge(name).set(value);
}

void
observe(std::string_view name, double value)
{
    if (!enabled())
        return;
    Registry::instance().histogram(name).observe(value);
}

// ---- ScopedTimer -----------------------------------------------------

ScopedTimer::ScopedTimer(std::string name)
    : start_(std::chrono::steady_clock::now())
{
    if (enabled()) {
        if (!t_spanStack.empty())
            path_ = t_spanStack.back() + "/" + name;
        else
            path_ = std::move(name);
        t_spanStack.push_back(path_);
        pushed_ = true;
    } else {
        path_ = std::move(name);
    }
}

ScopedTimer::~ScopedTimer()
{
    if (!stopped_)
        stopMs();
}

double
ScopedTimer::elapsedMs() const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
}

double
ScopedTimer::stopMs()
{
    if (!stopped_) {
        const auto elapsed =
            std::chrono::steady_clock::now() - start_;
        stopped_ = true;
        stoppedMs_ =
            std::chrono::duration<double, std::milli>(elapsed)
                .count();
        if (pushed_) {
            // Pop this span (and anything a misnested child left).
            while (!t_spanStack.empty() &&
                   t_spanStack.back() != path_) {
                t_spanStack.pop_back();
            }
            if (!t_spanStack.empty())
                t_spanStack.pop_back();
            Registry::instance().timer(path_).record(
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(elapsed)
                        .count()));
        }
    }
    return stoppedMs_;
}

} // namespace fits::obs
