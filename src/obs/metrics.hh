#ifndef FITS_OBS_METRICS_HH_
#define FITS_OBS_METRICS_HH_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fits::obs {

/**
 * Process-wide observability: a metrics registry (counters, gauges,
 * fixed-bucket histograms, span timers), RAII stage timers that nest,
 * and a JSON snapshot exporter.
 *
 * Design constraints, relied on throughout the pipeline:
 *  - *Passive:* metrics never feed back into analysis results, so
 *    inference and taint outputs are bit-identical with collection on
 *    or off.
 *  - *Near-zero overhead when disabled:* every recording entry point
 *    first checks one relaxed atomic flag and returns; no locks, no
 *    allocation, no name formatting on the disabled path.
 *  - *Thread-safe when enabled:* instruments are plain atomics that
 *    workers update concurrently; the registry mutex guards only the
 *    name -> instrument maps (node-based, so references handed out
 *    stay valid forever) and is never held while a value is updated.
 *  - *Snapshot-consistent enough:* snapshot() reads each atomic once;
 *    concurrent writers may land between reads, which is fine for
 *    monotone counters and timing aggregates.
 *
 * The `FITS_METRICS` environment variable arms collection without code
 * changes: "1"/"on"/"true" enables it, "0"/"off"/empty leaves it
 * disabled, and any other value enables it AND dumps a JSON snapshot
 * to that path at process exit.
 */

/** True when metric collection is armed (FITS_METRICS / setEnabled). */
bool enabled();

/** Arm or disarm collection at runtime (tests, --metrics-out). */
void setEnabled(bool on);

/** Monotone counter. */
class Counter
{
  public:
    void
    add(std::uint64_t delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        value_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-write-wins scalar. */
class Gauge
{
  public:
    void
    set(double value)
    {
        value_.store(value, std::memory_order_relaxed);
    }

    double
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        value_.store(0.0, std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/**
 * Fixed-bucket histogram. Bucket i counts observations <= bounds[i];
 * one implicit overflow bucket counts the rest. Bounds are fixed at
 * first registration; sum is kept in micro-units so concurrent
 * observe() needs only integer fetch_add.
 */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> bounds);

    void observe(double value);

    const std::vector<double> &bounds() const { return bounds_; }
    std::vector<std::uint64_t> bucketCounts() const;

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double
    sum() const
    {
        return static_cast<double>(
                   sumMicro_.load(std::memory_order_relaxed)) /
               1e6;
    }

    void reset();

  private:
    std::vector<double> bounds_;
    std::vector<std::atomic<std::uint64_t>> counts_;
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::int64_t> sumMicro_{0};
};

/** Aggregate of one named span: completions, total and peak time. */
class TimerStat
{
  public:
    void
    record(std::uint64_t ns)
    {
        count_.fetch_add(1, std::memory_order_relaxed);
        totalNs_.fetch_add(ns, std::memory_order_relaxed);
        std::uint64_t prev = maxNs_.load(std::memory_order_relaxed);
        while (prev < ns &&
               !maxNs_.compare_exchange_weak(
                   prev, ns, std::memory_order_relaxed)) {
        }
    }

    std::uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double
    totalMs() const
    {
        return static_cast<double>(
                   totalNs_.load(std::memory_order_relaxed)) /
               1e6;
    }

    double
    maxMs() const
    {
        return static_cast<double>(
                   maxNs_.load(std::memory_order_relaxed)) /
               1e6;
    }

    void reset();

  private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> totalNs_{0};
    std::atomic<std::uint64_t> maxNs_{0};
};

/** Point-in-time copy of every registered instrument. */
struct Snapshot
{
    struct HistogramView
    {
        std::vector<double> bounds;
        std::vector<std::uint64_t> counts; ///< bounds.size() + 1
        std::uint64_t count = 0;
        double sum = 0.0;
    };

    struct TimerView
    {
        std::uint64_t count = 0;
        double totalMs = 0.0;
        double maxMs = 0.0;
    };

    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramView> histograms;
    std::map<std::string, TimerView> timers;
};

/** The process-wide instrument registry. */
class Registry
{
  public:
    static Registry &instance();

    /** Find-or-create; returned references stay valid forever. */
    Counter &counter(std::string_view name);
    Gauge &gauge(std::string_view name);
    Histogram &histogram(std::string_view name,
                         const std::vector<double> &bounds =
                             defaultTimeBucketsMs());
    TimerStat &timer(std::string_view name);

    Snapshot snapshot() const;

    /** Full registry state as a JSON document. */
    std::string toJson() const;

    /** Write toJson() to a file; false on I/O failure. */
    bool exportToFile(const std::string &path) const;

    /** Zero every instrument (names stay registered). Test support. */
    void reset();

    /** Millisecond-scale latency buckets shared by time histograms. */
    static const std::vector<double> &defaultTimeBucketsMs();

  private:
    Registry() = default;

    mutable std::mutex mutex_;
    // Node-based maps: inserting never moves existing instruments.
    std::map<std::string, Counter, std::less<>> counters_;
    std::map<std::string, Gauge, std::less<>> gauges_;
    std::map<std::string, Histogram, std::less<>> histograms_;
    std::map<std::string, TimerStat, std::less<>> timers_;
};

/** One-shot helpers; no-ops (one atomic load) while disabled. */
void addCounter(std::string_view name, std::uint64_t delta = 1);
void setGauge(std::string_view name, double value);
void observe(std::string_view name, double value);

/**
 * RAII span timer. Always measures wall time (so callers can keep
 * plain-data timing fields as views over the same measurement), but
 * records into the registry only while collection is enabled.
 *
 * Spans nest per thread: a timer created while another is live on the
 * same thread records under "<parent-path>/<name>". The pipeline uses
 * this for its pipeline -> stage -> sub-stage hierarchy.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(std::string name);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

    /** Wall milliseconds since construction (still running). */
    double elapsedMs() const;

    /** Stop now, record once, and return the elapsed milliseconds.
     * Further calls return the first measurement unchanged. */
    double stopMs();

    /** The full (nesting-resolved) span path. */
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::chrono::steady_clock::time_point start_;
    double stoppedMs_ = 0.0;
    bool stopped_ = false;
    bool pushed_ = false;
};

} // namespace fits::obs

#endif // FITS_OBS_METRICS_HH_
