#ifndef FITS_OBS_BENCH_RECORD_HH_
#define FITS_OBS_BENCH_RECORD_HH_

#include <string>
#include <utility>
#include <vector>

namespace fits::obs {

/**
 * Structured result record of one bench binary run. Every bench main
 * fills one of these with its headline numbers and calls write(),
 * which produces `BENCH_<name>.json` containing:
 *
 *   { "bench": "<name>", "fields": {...}, "metrics": {...} }
 *
 * `fields` are the scalars the bench itself reports (precision rates,
 * correlations, wall time); `metrics` is the full obs registry
 * snapshot, so per-stage timings and taint budget counters ride along
 * whenever collection is enabled.
 *
 * The record lands in `$FITS_BENCH_DIR` when that variable is set,
 * otherwise in the current working directory.
 */
class BenchRecord
{
  public:
    explicit BenchRecord(std::string name);

    void add(std::string key, double value);
    void add(std::string key, std::string value);

    /** Serialize the record (valid JSON document). */
    std::string toJson() const;

    /** Resolved output path (env dir + BENCH_<name>.json). */
    std::string outputPath() const;

    /** Write to outputPath(); prints one status line, returns
     * false (after a warning) on I/O failure. */
    bool write() const;

  private:
    std::string name_;
    std::vector<std::pair<std::string, double>> numbers_;
    std::vector<std::pair<std::string, std::string>> strings_;
};

} // namespace fits::obs

#endif // FITS_OBS_BENCH_RECORD_HH_
