#ifndef FITS_BINARY_FBIN_HH_
#define FITS_BINARY_FBIN_HH_

#include <cstdint>
#include <vector>

#include "binary/image.hh"
#include "support/result.hh"

namespace fits::bin {

/**
 * FBIN is the container format for binaries in this substrate, playing
 * the role ELF plays for real firmware: sections with backing bytes, a
 * dynamic import table (kept after stripping), an optional symbol
 * table, dependency library names, and the code. The code is stored as
 * FIR statements, so decoding a FBIN is simultaneously "lifting" it.
 *
 * Layout (all little-endian, strings length-prefixed):
 *   "FBIN" u32 version
 *   name, u8 arch, u8 stripped
 *   u32 nSections { name, u64 addr, u8 flags, u32 size, bytes }
 *   u32 nImports  { u64 pltAddr, name, library }
 *   u32 nSymbols  { u64 addr, name }
 *   u32 nDeps     { name }
 *   u32 nFunctions{ u64 entry, name, u32 numTmps,
 *                   u32 nBlocks { u64 addr, u32 nStmts { stmt } } }
 */
constexpr std::uint32_t kFbinVersion = 1;

/** Serialize an image to FBIN bytes. */
std::vector<std::uint8_t> writeBinary(const BinaryImage &image);

/** Parse FBIN bytes; returns a diagnostic message on malformed input. */
support::Result<BinaryImage> loadBinary(
    const std::vector<std::uint8_t> &bytes);

} // namespace fits::bin

#endif // FITS_BINARY_FBIN_HH_
