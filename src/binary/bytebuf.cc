#include "bytebuf.hh"

#include <cstring>

namespace fits::bin {

void
ByteWriter::u8(std::uint8_t v)
{
    out_.push_back(v);
}

void
ByteWriter::u16(std::uint16_t v)
{
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
}

void
ByteWriter::u32(std::uint32_t v)
{
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
}

void
ByteWriter::u64(std::uint64_t v)
{
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
}

void
ByteWriter::str(const std::string &s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
}

void
ByteWriter::raw(const std::vector<std::uint8_t> &bytes)
{
    out_.insert(out_.end(), bytes.begin(), bytes.end());
}

void
ByteWriter::patchU32(std::size_t offset, std::uint32_t v)
{
    if (offset + 4 > out_.size())
        return;
    out_[offset + 0] = static_cast<std::uint8_t>(v);
    out_[offset + 1] = static_cast<std::uint8_t>(v >> 8);
    out_[offset + 2] = static_cast<std::uint8_t>(v >> 16);
    out_[offset + 3] = static_cast<std::uint8_t>(v >> 24);
}

bool
ByteReader::take(std::size_t n, const std::uint8_t *&p)
{
    if (!ok_ || size_ - offset_ < n) {
        ok_ = false;
        return false;
    }
    p = data_ + offset_;
    offset_ += n;
    return true;
}

bool
ByteReader::u8(std::uint8_t &v)
{
    const std::uint8_t *p;
    if (!take(1, p))
        return false;
    v = p[0];
    return true;
}

bool
ByteReader::u16(std::uint16_t &v)
{
    const std::uint8_t *p;
    if (!take(2, p))
        return false;
    v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
    return true;
}

bool
ByteReader::u32(std::uint32_t &v)
{
    const std::uint8_t *p;
    if (!take(4, p))
        return false;
    v = static_cast<std::uint32_t>(p[0]) |
        (static_cast<std::uint32_t>(p[1]) << 8) |
        (static_cast<std::uint32_t>(p[2]) << 16) |
        (static_cast<std::uint32_t>(p[3]) << 24);
    return true;
}

bool
ByteReader::u64(std::uint64_t &v)
{
    std::uint32_t lo, hi;
    if (!u32(lo) || !u32(hi))
        return false;
    v = static_cast<std::uint64_t>(lo) |
        (static_cast<std::uint64_t>(hi) << 32);
    return true;
}

bool
ByteReader::str(std::string &s)
{
    std::uint32_t n;
    if (!u32(n))
        return false;
    const std::uint8_t *p;
    if (!take(n, p))
        return false;
    s.assign(reinterpret_cast<const char *>(p), n);
    return true;
}

bool
ByteReader::raw(std::vector<std::uint8_t> &bytes, std::size_t n)
{
    const std::uint8_t *p;
    if (!take(n, p))
        return false;
    bytes.assign(p, p + n);
    return true;
}

bool
ByteReader::seek(std::size_t offset)
{
    if (offset > size_) {
        ok_ = false;
        return false;
    }
    offset_ = offset;
    return true;
}

} // namespace fits::bin
