#ifndef FITS_BINARY_BYTEBUF_HH_
#define FITS_BINARY_BYTEBUF_HH_

#include <cstdint>
#include <string>
#include <vector>

namespace fits::bin {

/** Little-endian byte-stream writer used by the FBIN/FWIMG encoders. */
class ByteWriter
{
  public:
    void u8(std::uint8_t v);
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    /** Length-prefixed (u32) byte string. */
    void str(const std::string &s);
    /** Raw bytes without a length prefix. */
    void raw(const std::vector<std::uint8_t> &bytes);

    const std::vector<std::uint8_t> &bytes() const { return out_; }
    std::vector<std::uint8_t> take() { return std::move(out_); }
    std::size_t size() const { return out_.size(); }

    /** Overwrite 4 bytes at an earlier offset (for patching lengths). */
    void patchU32(std::size_t offset, std::uint32_t v);

  private:
    std::vector<std::uint8_t> out_;
};

/**
 * Bounds-checked little-endian reader. All accessors return false (and
 * leave the output untouched) past end-of-buffer, and set a sticky error
 * flag, so decoders can batch reads and check ok() once.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {}

    explicit ByteReader(const std::vector<std::uint8_t> &bytes)
        : data_(bytes.data()), size_(bytes.size())
    {}

    bool u8(std::uint8_t &v);
    bool u16(std::uint16_t &v);
    bool u32(std::uint32_t &v);
    bool u64(std::uint64_t &v);
    bool str(std::string &s);
    /** Read exactly n raw bytes. */
    bool raw(std::vector<std::uint8_t> &bytes, std::size_t n);

    /** True if no read has gone out of bounds. */
    bool ok() const { return ok_; }
    std::size_t offset() const { return offset_; }
    std::size_t remaining() const { return size_ - offset_; }
    bool atEnd() const { return offset_ == size_; }

    /** Move the cursor; fails (sticky) if out of range. */
    bool seek(std::size_t offset);

  private:
    bool take(std::size_t n, const std::uint8_t *&p);

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t offset_ = 0;
    bool ok_ = true;
};

} // namespace fits::bin

#endif // FITS_BINARY_BYTEBUF_HH_
