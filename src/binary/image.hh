#ifndef FITS_BINARY_IMAGE_HH_
#define FITS_BINARY_IMAGE_HH_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/function.hh"

namespace fits::bin {

using ir::Addr;

/** Guest architectures found in the firmware corpus. */
enum class Arch : std::uint8_t { Arm, Aarch64, Mips };

const char *archName(Arch arch);

/** Section permission bits. */
enum SectionFlags : std::uint8_t {
    kSecRead = 1,
    kSecWrite = 2,
    kSecExec = 4,
};

/**
 * One loadable section with its backing bytes. Data words (pointers) in
 * .data are stored little-endian with kPtrSize bytes.
 */
struct Section
{
    std::string name;
    Addr addr = 0;
    std::uint8_t flags = kSecRead;
    std::vector<std::uint8_t> bytes;

    bool
    contains(Addr a) const
    {
        return a >= addr && a < addr + bytes.size();
    }
};

/** Pointer width of the guest (32-bit firmware). */
constexpr std::size_t kPtrSize = 4;

/** A dynamic import: a PLT stub address bound to a library symbol.
 * Import names survive stripping (they live in the dynamic symbol
 * table), which is what makes anchor identification possible. */
struct Import
{
    Addr pltAddr = 0;
    std::string name;
    std::string library;
};

/** A local/export symbol; erased by strip(). */
struct Symbol
{
    Addr addr = 0;
    std::string name;
};

/**
 * Conventional load addresses used by both the synthetic generator and
 * the loader. Fixed layout keeps statement/function addresses meaningful
 * across serialize/load round trips.
 */
constexpr Addr kPltBase = 0x8000;
constexpr Addr kTextBase = 0x10000;
constexpr Addr kRodataBase = 0x400000;
constexpr Addr kDataBase = 0x500000;
constexpr Addr kBssBase = 0x600000;

/**
 * A loaded (and lifted) firmware binary: sections, dynamic imports,
 * optional symbols, dependency list, and the lifted FIR program.
 *
 * In this substrate the FBIN container stores FIR directly, so loading
 * doubles as lifting; all address-space queries the analyses need
 * (rodata/data classification, word and C-string reads, import lookup)
 * live here.
 */
class BinaryImage
{
  public:
    std::string name;
    Arch arch = Arch::Arm;
    std::vector<Section> sections;
    std::vector<Import> imports;
    std::vector<Symbol> symbols;
    /** DT_NEEDED-style dependency library names. */
    std::vector<std::string> neededLibraries;
    ir::Program program;
    bool stripped = false;
    /** FNV-1a of the FBIN bytes this image was loaded from; 0 for
     * images built programmatically. Content-addresses the image in
     * the cross-sample analysis cache. */
    std::uint64_t contentHash = 0;

    /** Section containing the address, or nullptr. */
    const Section *sectionContaining(Addr addr) const;
    Section *sectionContaining(Addr addr);

    /** Section by name, or nullptr. */
    const Section *sectionByName(const std::string &name) const;
    Section *sectionByName(const std::string &name);

    /** True if addr falls in a read-only data section (.rodata). */
    bool isRodata(Addr addr) const;

    /** True if addr falls in a writable data section (.data/.bss). */
    bool isData(Addr addr) const;

    /** True if addr falls in any mapped section. */
    bool isMapped(Addr addr) const;

    /** Read a kPtrSize-wide little-endian word; nullopt if unmapped. */
    std::optional<Addr> readWord(Addr addr) const;

    /** Read a NUL-terminated string; nullopt if unmapped/unterminated. */
    std::optional<std::string> readCString(Addr addr) const;

    /** Import bound to the PLT stub at addr, or nullptr. */
    const Import *importAt(Addr pltAddr) const;

    /** Import by symbol name, or nullptr. */
    const Import *importByName(const std::string &name) const;

    /** True if the address is a PLT stub (i.e. a library call target). */
    bool isImportAddr(Addr addr) const;

    /** Register an import, allocating the next PLT stub address. */
    Addr addImport(const std::string &name, const std::string &library);

    /** Name of the function at the address: symbol name if present,
     * import name for PLT stubs, empty otherwise. */
    std::string nameOf(Addr addr) const;

    /**
     * Remove local symbols and function names, as vendors do before
     * shipping. Dynamic imports are retained (they are required by the
     * loader and survive in real stripped binaries too).
     */
    void strip();

    /** Sum of section sizes plus code size: the "file size" used by the
     * Figure 4 experiment. */
    std::size_t byteSize() const;

    /** Rebuild the import-address index (after bulk edits). */
    void reindexImports();

  private:
    std::unordered_map<Addr, std::size_t> importIndex_;
    Addr nextPlt_ = kPltBase;
};

} // namespace fits::bin

#endif // FITS_BINARY_IMAGE_HH_
