#include "image.hh"

namespace fits::bin {

const char *
archName(Arch arch)
{
    switch (arch) {
      case Arch::Arm:     return "ARM";
      case Arch::Aarch64: return "AARCH64";
      case Arch::Mips:    return "MIPS";
    }
    return "?";
}

const Section *
BinaryImage::sectionContaining(Addr addr) const
{
    for (const auto &sec : sections) {
        if (sec.contains(addr))
            return &sec;
    }
    return nullptr;
}

Section *
BinaryImage::sectionContaining(Addr addr)
{
    for (auto &sec : sections) {
        if (sec.contains(addr))
            return &sec;
    }
    return nullptr;
}

const Section *
BinaryImage::sectionByName(const std::string &secName) const
{
    for (const auto &sec : sections) {
        if (sec.name == secName)
            return &sec;
    }
    return nullptr;
}

Section *
BinaryImage::sectionByName(const std::string &secName)
{
    for (auto &sec : sections) {
        if (sec.name == secName)
            return &sec;
    }
    return nullptr;
}

bool
BinaryImage::isRodata(Addr addr) const
{
    const Section *sec = sectionContaining(addr);
    return sec && (sec->flags & kSecWrite) == 0 &&
           (sec->flags & kSecExec) == 0;
}

bool
BinaryImage::isData(Addr addr) const
{
    const Section *sec = sectionContaining(addr);
    return sec && (sec->flags & kSecWrite) != 0;
}

bool
BinaryImage::isMapped(Addr addr) const
{
    return sectionContaining(addr) != nullptr;
}

std::optional<Addr>
BinaryImage::readWord(Addr addr) const
{
    const Section *sec = sectionContaining(addr);
    if (!sec)
        return std::nullopt;
    const std::size_t off = static_cast<std::size_t>(addr - sec->addr);
    if (off + kPtrSize > sec->bytes.size())
        return std::nullopt;
    Addr v = 0;
    for (std::size_t i = 0; i < kPtrSize; ++i)
        v |= static_cast<Addr>(sec->bytes[off + i]) << (8 * i);
    return v;
}

std::optional<std::string>
BinaryImage::readCString(Addr addr) const
{
    const Section *sec = sectionContaining(addr);
    if (!sec)
        return std::nullopt;
    std::size_t off = static_cast<std::size_t>(addr - sec->addr);
    std::string out;
    while (off < sec->bytes.size()) {
        const char c = static_cast<char>(sec->bytes[off++]);
        if (c == '\0')
            return out;
        out.push_back(c);
    }
    return std::nullopt; // ran off the section without a terminator
}

const Import *
BinaryImage::importAt(Addr pltAddr) const
{
    auto it = importIndex_.find(pltAddr);
    if (it == importIndex_.end())
        return nullptr;
    return &imports[it->second];
}

const Import *
BinaryImage::importByName(const std::string &symName) const
{
    for (const auto &imp : imports) {
        if (imp.name == symName)
            return &imp;
    }
    return nullptr;
}

bool
BinaryImage::isImportAddr(Addr addr) const
{
    return importIndex_.find(addr) != importIndex_.end();
}

Addr
BinaryImage::addImport(const std::string &symName,
                       const std::string &library)
{
    Import imp;
    imp.pltAddr = nextPlt_;
    imp.name = symName;
    imp.library = library;
    nextPlt_ += kPtrSize;
    importIndex_[imp.pltAddr] = imports.size();
    imports.push_back(std::move(imp));
    return imports.back().pltAddr;
}

std::string
BinaryImage::nameOf(Addr addr) const
{
    if (const Import *imp = importAt(addr))
        return imp->name;
    for (const auto &sym : symbols) {
        if (sym.addr == addr)
            return sym.name;
    }
    if (const ir::Function *fn = program.functionAt(addr))
        return fn->name;
    return {};
}

void
BinaryImage::strip()
{
    symbols.clear();
    for (auto &fn : program.functions())
        fn.name.clear();
    stripped = true;
}

std::size_t
BinaryImage::byteSize() const
{
    std::size_t n = 0;
    for (const auto &sec : sections)
        n += sec.bytes.size();
    for (const auto &fn : program.functions())
        n += static_cast<std::size_t>(fn.byteSize());
    return n;
}

void
BinaryImage::reindexImports()
{
    importIndex_.clear();
    Addr maxPlt = kPltBase;
    for (std::size_t i = 0; i < imports.size(); ++i) {
        importIndex_[imports[i].pltAddr] = i;
        if (imports[i].pltAddr + kPtrSize > maxPlt)
            maxPlt = imports[i].pltAddr + kPtrSize;
    }
    nextPlt_ = maxPlt;
}

} // namespace fits::bin
