#include "fbin.hh"

#include "binary/bytebuf.hh"
#include "chaos/chaos.hh"
#include "support/status.hh"
#include "support/strings.hh"

namespace fits::bin {

namespace {

using ir::Operand;
using ir::Stmt;
using ir::StmtKind;

void
writeOperand(ByteWriter &w, const Operand &op)
{
    w.u8(static_cast<std::uint8_t>(op.kind));
    if (op.isTmp())
        w.u32(op.tmp);
    else
        w.u64(op.imm);
}

bool
readOperand(ByteReader &r, Operand &op)
{
    std::uint8_t kind;
    if (!r.u8(kind) || kind > 1)
        return false;
    if (kind == static_cast<std::uint8_t>(Operand::Kind::Tmp)) {
        std::uint32_t tmp;
        if (!r.u32(tmp))
            return false;
        op = Operand::ofTmp(tmp);
    } else {
        std::uint64_t imm;
        if (!r.u64(imm))
            return false;
        op = Operand::ofImm(imm);
    }
    return true;
}

void
writeStmt(ByteWriter &w, const Stmt &s)
{
    w.u8(static_cast<std::uint8_t>(s.kind));
    switch (s.kind) {
      case StmtKind::Get:
        w.u32(s.dst);
        w.u16(s.reg);
        break;
      case StmtKind::Put:
        w.u16(s.reg);
        writeOperand(w, s.a);
        break;
      case StmtKind::Const:
        w.u32(s.dst);
        w.u64(s.a.imm);
        break;
      case StmtKind::Binop:
        w.u32(s.dst);
        w.u8(static_cast<std::uint8_t>(s.op));
        writeOperand(w, s.a);
        writeOperand(w, s.b);
        break;
      case StmtKind::Load:
        w.u32(s.dst);
        writeOperand(w, s.a);
        break;
      case StmtKind::Store:
        writeOperand(w, s.a);
        writeOperand(w, s.b);
        break;
      case StmtKind::Call:
        w.u8(s.indirect ? 1 : 0);
        if (s.indirect)
            writeOperand(w, s.a);
        else
            w.u64(s.target);
        break;
      case StmtKind::Branch:
        writeOperand(w, s.a);
        w.u64(s.target);
        break;
      case StmtKind::Jump:
        w.u8(s.indirect ? 1 : 0);
        if (s.indirect)
            writeOperand(w, s.a);
        else
            w.u64(s.target);
        break;
      case StmtKind::Ret:
        break;
    }
}

bool
readStmt(ByteReader &r, Stmt &s)
{
    std::uint8_t kind;
    if (!r.u8(kind) || kind > static_cast<std::uint8_t>(StmtKind::Ret))
        return false;
    s = Stmt();
    s.kind = static_cast<StmtKind>(kind);
    std::uint8_t flag;
    std::uint64_t imm;
    switch (s.kind) {
      case StmtKind::Get:
        return r.u32(s.dst) && r.u16(s.reg);
      case StmtKind::Put:
        return r.u16(s.reg) && readOperand(r, s.a);
      case StmtKind::Const:
        if (!r.u32(s.dst) || !r.u64(imm))
            return false;
        s.a = Operand::ofImm(imm);
        return true;
      case StmtKind::Binop: {
        std::uint8_t op;
        if (!r.u32(s.dst) || !r.u8(op) ||
            op > static_cast<std::uint8_t>(ir::BinOp::CmpGe)) {
            return false;
        }
        s.op = static_cast<ir::BinOp>(op);
        return readOperand(r, s.a) && readOperand(r, s.b);
      }
      case StmtKind::Load:
        return r.u32(s.dst) && readOperand(r, s.a);
      case StmtKind::Store:
        return readOperand(r, s.a) && readOperand(r, s.b);
      case StmtKind::Call:
        if (!r.u8(flag))
            return false;
        s.indirect = flag != 0;
        return s.indirect ? readOperand(r, s.a) : r.u64(s.target);
      case StmtKind::Branch:
        return readOperand(r, s.a) && r.u64(s.target);
      case StmtKind::Jump:
        if (!r.u8(flag))
            return false;
        s.indirect = flag != 0;
        return s.indirect ? readOperand(r, s.a) : r.u64(s.target);
      case StmtKind::Ret:
        return true;
    }
    return false;
}

} // namespace

std::vector<std::uint8_t>
writeBinary(const BinaryImage &image)
{
    ByteWriter w;
    w.u8('F');
    w.u8('B');
    w.u8('I');
    w.u8('N');
    w.u32(kFbinVersion);
    w.str(image.name);
    w.u8(static_cast<std::uint8_t>(image.arch));
    w.u8(image.stripped ? 1 : 0);

    w.u32(static_cast<std::uint32_t>(image.sections.size()));
    for (const auto &sec : image.sections) {
        w.str(sec.name);
        w.u64(sec.addr);
        w.u8(sec.flags);
        w.u32(static_cast<std::uint32_t>(sec.bytes.size()));
        w.raw(sec.bytes);
    }

    w.u32(static_cast<std::uint32_t>(image.imports.size()));
    for (const auto &imp : image.imports) {
        w.u64(imp.pltAddr);
        w.str(imp.name);
        w.str(imp.library);
    }

    w.u32(static_cast<std::uint32_t>(image.symbols.size()));
    for (const auto &sym : image.symbols) {
        w.u64(sym.addr);
        w.str(sym.name);
    }

    w.u32(static_cast<std::uint32_t>(image.neededLibraries.size()));
    for (const auto &dep : image.neededLibraries)
        w.str(dep);

    w.u32(static_cast<std::uint32_t>(image.program.size()));
    for (const auto &fn : image.program.functions()) {
        w.u64(fn.entry);
        w.str(fn.name);
        w.u32(fn.numTmps);
        w.u32(static_cast<std::uint32_t>(fn.blocks.size()));
        for (const auto &block : fn.blocks) {
            w.u64(block.addr);
            w.u32(static_cast<std::uint32_t>(block.stmts.size()));
            for (const auto &stmt : block.stmts)
                writeStmt(w, stmt);
        }
    }

    return w.take();
}

support::Result<BinaryImage>
loadBinary(const std::vector<std::uint8_t> &bytes)
{
    using R = support::Result<BinaryImage>;
    using support::ErrorCode;
    using support::Stage;
    const auto err = [](ErrorCode code, std::string message) {
        return R::error(support::Status::error(
            Stage::Lift, code, std::move(message)));
    };

    if (chaos::shouldInject("fbin.load"))
        return R::error(chaos::injectedStatus("fbin.load"));

    // The truncation fault decodes only the front half of the buffer,
    // which must surface as a typed Truncated error somewhere below —
    // exactly what a half-written file or short read produces.
    const std::size_t limit =
        chaos::shouldInject("fbin.truncate") ? bytes.size() / 2
                                             : bytes.size();
    ByteReader r(bytes.data(), limit);

    std::uint8_t magic[4];
    for (auto &m : magic) {
        if (!r.u8(m))
            return err(ErrorCode::Truncated, "truncated header");
    }
    if (magic[0] != 'F' || magic[1] != 'B' || magic[2] != 'I' ||
        magic[3] != 'N') {
        return err(ErrorCode::BadMagic, "bad magic (not an FBIN)");
    }

    std::uint32_t version;
    if (!r.u32(version))
        return err(ErrorCode::Truncated, "truncated header");
    if (version != kFbinVersion) {
        return err(ErrorCode::BadVersion,
                   support::format("unsupported FBIN version %u",
                                   version));
    }

    BinaryImage image;
    std::uint8_t arch, stripped;
    if (!r.str(image.name) || !r.u8(arch) || !r.u8(stripped))
        return err(ErrorCode::Truncated, "truncated identification");
    if (arch > static_cast<std::uint8_t>(Arch::Mips))
        return err(ErrorCode::Corrupt, "unknown architecture tag");
    image.arch = static_cast<Arch>(arch);
    image.stripped = stripped != 0;

    std::uint32_t count;
    if (!r.u32(count))
        return err(ErrorCode::Truncated, "truncated section table");
    for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
        Section sec;
        std::uint32_t size;
        if (!r.str(sec.name) || !r.u64(sec.addr) || !r.u8(sec.flags) ||
            !r.u32(size) || !r.raw(sec.bytes, size)) {
            return err(ErrorCode::Corrupt, "malformed section");
        }
        image.sections.push_back(std::move(sec));
    }

    if (!r.u32(count))
        return err(ErrorCode::Truncated, "truncated import table");
    for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
        Import imp;
        if (!r.u64(imp.pltAddr) || !r.str(imp.name) ||
            !r.str(imp.library)) {
            return err(ErrorCode::Corrupt, "malformed import");
        }
        image.imports.push_back(std::move(imp));
    }

    if (!r.u32(count))
        return err(ErrorCode::Truncated, "truncated symbol table");
    for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
        Symbol sym;
        if (!r.u64(sym.addr) || !r.str(sym.name))
            return err(ErrorCode::Corrupt, "malformed symbol");
        image.symbols.push_back(std::move(sym));
    }

    if (!r.u32(count))
        return err(ErrorCode::Truncated, "truncated dependency table");
    for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
        std::string dep;
        if (!r.str(dep))
            return err(ErrorCode::Corrupt, "malformed dependency entry");
        image.neededLibraries.push_back(std::move(dep));
    }

    if (!r.u32(count))
        return err(ErrorCode::Truncated, "truncated function table");
    for (std::uint32_t i = 0; i < count && r.ok(); ++i) {
        ir::Function fn;
        std::uint32_t nBlocks;
        if (!r.u64(fn.entry) || !r.str(fn.name) || !r.u32(fn.numTmps) ||
            !r.u32(nBlocks)) {
            return err(ErrorCode::Corrupt, "malformed function header");
        }
        if (image.program.functionAt(fn.entry) != nullptr)
            return err(ErrorCode::Corrupt, "duplicate function entry");
        for (std::uint32_t b = 0; b < nBlocks && r.ok(); ++b) {
            ir::BasicBlock block;
            std::uint32_t nStmts;
            if (!r.u64(block.addr) || !r.u32(nStmts))
                return err(ErrorCode::Corrupt, "malformed block header");
            block.stmts.reserve(std::min<std::uint32_t>(nStmts, 4096));
            for (std::uint32_t s = 0; s < nStmts; ++s) {
                ir::Stmt stmt;
                if (!readStmt(r, stmt))
                    return err(ErrorCode::Corrupt, "malformed statement");
                block.stmts.push_back(stmt);
            }
            fn.blocks.push_back(std::move(block));
        }
        if (!r.ok())
            return err(ErrorCode::Truncated, "truncated function body");
        image.program.addFunction(std::move(fn));
    }

    if (!r.ok())
        return err(ErrorCode::Truncated, "truncated file");
    if (!r.atEnd())
        return err(ErrorCode::Corrupt, "trailing bytes after function table");

    image.reindexImports();
    // Content-address the image by the bytes it came from; the cache
    // keys cross-sample lift/analysis sharing on this hash. Hash the
    // full buffer (not the chaos-truncated view): a truncated decode
    // errors out above and never reaches this point.
    image.contentHash = support::fnv1a(bytes.data(), bytes.size());
    return R::ok(std::move(image));
}

} // namespace fits::bin
