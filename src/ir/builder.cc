#include "builder.hh"

#include <cassert>

namespace fits::ir {

FunctionBuilder::FunctionBuilder(std::string name)
    : name_(std::move(name))
{
    blocks_.emplace_back();
}

FunctionBuilder::BlockId
FunctionBuilder::newBlock()
{
    blocks_.emplace_back();
    return blocks_.size() - 1;
}

void
FunctionBuilder::switchTo(BlockId block)
{
    assert(block < blocks_.size());
    current_ = block;
}

void
FunctionBuilder::append(Stmt stmt)
{
    blocks_[current_].stmts.push_back(stmt);
}

TmpId
FunctionBuilder::get(RegId reg)
{
    TmpId t = freshTmp();
    append(Stmt::get(t, reg));
    return t;
}

void
FunctionBuilder::put(RegId reg, Operand value)
{
    append(Stmt::put(reg, value));
}

TmpId
FunctionBuilder::cnst(std::uint64_t value)
{
    TmpId t = freshTmp();
    append(Stmt::cnst(t, value));
    return t;
}

TmpId
FunctionBuilder::binop(BinOp op, Operand lhs, Operand rhs)
{
    TmpId t = freshTmp();
    append(Stmt::binop(t, op, lhs, rhs));
    return t;
}

TmpId
FunctionBuilder::load(Operand addr)
{
    TmpId t = freshTmp();
    append(Stmt::load(t, addr));
    return t;
}

void
FunctionBuilder::store(Operand addr, Operand value)
{
    append(Stmt::store(addr, value));
}

void
FunctionBuilder::call(Addr target)
{
    append(Stmt::call(target));
}

void
FunctionBuilder::callIndirect(Operand target)
{
    append(Stmt::callIndirect(target));
}

void
FunctionBuilder::branch(Operand cond, BlockId taken)
{
    pending_.push_back({current_, blocks_[current_].stmts.size(), taken});
    append(Stmt::branch(cond, 0));
}

void
FunctionBuilder::jump(BlockId target)
{
    pending_.push_back({current_, blocks_[current_].stmts.size(), target});
    append(Stmt::jump(0));
}

void
FunctionBuilder::jumpIndirect(Operand target)
{
    append(Stmt::jumpIndirect(target));
}

void
FunctionBuilder::ret()
{
    append(Stmt::ret());
}

void
FunctionBuilder::setArg(int i, Operand value)
{
    assert(i >= 0 && i < kNumArgRegs);
    put(static_cast<RegId>(i), value);
}

TmpId
FunctionBuilder::retVal()
{
    return get(kRetReg);
}

Function
FunctionBuilder::build(Addr entry)
{
    // Guarantee no block is empty: an empty block would alias the next
    // block's address, breaking the addr -> block mapping. Pad with RET
    // (unreachable filler in practice).
    for (auto &block : blocks_) {
        if (block.stmts.empty())
            block.stmts.push_back(Stmt::ret());
    }

    // Lay out blocks sequentially and record their addresses.
    std::vector<Addr> addrs(blocks_.size());
    Addr cursor = entry;
    for (std::size_t i = 0; i < blocks_.size(); ++i) {
        addrs[i] = cursor;
        blocks_[i].addr = cursor;
        cursor += blocks_[i].byteSize();
    }

    // Patch label targets to final addresses.
    for (const auto &p : pending_) {
        assert(p.label < blocks_.size());
        blocks_[p.block].stmts[p.stmt].target = addrs[p.label];
    }

    Function fn;
    fn.entry = entry;
    fn.name = std::move(name_);
    fn.blocks = std::move(blocks_);
    fn.numTmps = nextTmp_;
    return fn;
}

} // namespace fits::ir
