#ifndef FITS_IR_PARSE_HH_
#define FITS_IR_PARSE_HH_

#include <string>

#include "ir/function.hh"
#include "support/result.hh"

namespace fits::ir {

/**
 * Parse the textual form produced by printFunction() back into a
 * Function. Together with the printer this gives a lossless text
 * round trip, which makes IR fixtures writable by hand in tests and
 * lets tools exchange lifted functions as text.
 *
 * Accepted grammar (one construct per line; addresses in hex):
 *
 *   function <name|<stripped>> @ <addr> (<n> blocks, <n> tmps)
 *     block <addr>:
 *       <addr>: <stmt>
 *
 * where <stmt> is any printer form, e.g. "t3 = LOAD(t2)",
 * "PUT(r1) = t3", "IF (t4) GOTO 0x1010", "CALL 0x8000", "RET".
 */
support::Result<Function> parseFunction(const std::string &text);

} // namespace fits::ir

#endif // FITS_IR_PARSE_HH_
