#ifndef FITS_IR_BUILDER_HH_
#define FITS_IR_BUILDER_HH_

#include <string>
#include <vector>

#include "ir/function.hh"

namespace fits::ir {

/**
 * Incremental constructor for Function objects.
 *
 * Blocks are created under label ids and control-flow targets refer to
 * labels; build() lays the blocks out sequentially from the entry
 * address, computes each block's final address, and patches branch/jump
 * targets. This lets the synthetic firmware generator emit functions
 * without pre-computing a layout.
 */
class FunctionBuilder
{
  public:
    using BlockId = std::size_t;

    explicit FunctionBuilder(std::string name = "");

    /** Create a new, initially empty block and return its label. */
    BlockId newBlock();

    /** Make the given block the insertion point. */
    void switchTo(BlockId block);

    /** Label of the current insertion block. */
    BlockId currentBlock() const { return current_; }

    /** Index the next statement will get in the current block (used to
     * compute statement addresses after build()). */
    std::size_t
    nextStmtIndex() const
    {
        return blocks_[current_].stmts.size();
    }

    /** Allocate a fresh temporary id. */
    TmpId freshTmp() { return nextTmp_++; }

    // --- statement emitters (each appends to the current block) ---

    /** t = GET(reg); returns t. */
    TmpId get(RegId reg);

    /** PUT(reg) = value. */
    void put(RegId reg, Operand value);

    /** t = constant; returns t. */
    TmpId cnst(std::uint64_t value);

    /** t = op(lhs, rhs); returns t. */
    TmpId binop(BinOp op, Operand lhs, Operand rhs);

    /** t = LOAD(addr); returns t. */
    TmpId load(Operand addr);

    /** STORE(addr) = value. */
    void store(Operand addr, Operand value);

    /** Direct call to an absolute entry address (function or PLT stub). */
    void call(Addr target);

    /** Indirect call through a temporary/immediate operand. */
    void callIndirect(Operand target);

    /** Conditional side exit to a label (VEX Ist_Exit semantics):
     * when the condition is false, execution continues with the next
     * emitted statement. */
    void branch(Operand cond, BlockId taken);

    /** Unconditional jump to a label. */
    void jump(BlockId target);

    /** Indirect jump (e.g. via a jump-table load). */
    void jumpIndirect(Operand target);

    /** Return to caller. */
    void ret();

    // --- ABI conveniences ---

    /**
     * PUT the i-th call argument (register args only; i < kNumArgRegs).
     */
    void setArg(int i, Operand value);

    /** t = GET(r0), the return value after a call; returns t. */
    TmpId retVal();

    /** Number of blocks created so far. */
    std::size_t blockCount() const { return blocks_.size(); }

    /**
     * Finalize: lay blocks out from entry, patch label targets to
     * addresses, and return the finished function. The builder must not
     * be reused afterwards.
     */
    Function build(Addr entry);

  private:
    struct PendingTarget
    {
        std::size_t block;
        std::size_t stmt;
        BlockId label;
    };

    void append(Stmt stmt);

    std::string name_;
    std::vector<BasicBlock> blocks_;
    std::vector<PendingTarget> pending_;
    BlockId current_ = 0;
    TmpId nextTmp_ = 0;
};

} // namespace fits::ir

#endif // FITS_IR_BUILDER_HH_
