#include "printer.hh"

#include "support/strings.hh"

namespace fits::ir {

std::string
printFunction(const Function &fn)
{
    using support::format;
    using support::hex;
    std::string out = format("function %s @ %s (%zu blocks, %u tmps)\n",
                             fn.name.empty() ? "<stripped>"
                                             : fn.name.c_str(),
                             hex(fn.entry).c_str(), fn.blocks.size(),
                             fn.numTmps);
    for (const auto &block : fn.blocks) {
        out += format("  block %s:\n", hex(block.addr).c_str());
        for (std::size_t i = 0; i < block.stmts.size(); ++i) {
            out += format("    %s: %s\n",
                          hex(block.stmtAddr(i)).c_str(),
                          block.stmts[i].toString().c_str());
        }
    }
    return out;
}

std::string
printProgram(const Program &program)
{
    std::string out;
    for (const auto &fn : program.functions())
        out += printFunction(fn);
    return out;
}

} // namespace fits::ir
