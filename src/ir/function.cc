#include "function.hh"

#include <cassert>

namespace fits::ir {

std::size_t
Function::stmtCount() const
{
    std::size_t n = 0;
    for (const auto &block : blocks)
        n += block.stmts.size();
    return n;
}

Addr
Function::byteSize() const
{
    return static_cast<Addr>(stmtCount()) * kStmtSize;
}

std::size_t
Function::blockIndexAt(Addr addr) const
{
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        if (blocks[i].addr == addr)
            return i;
    }
    return npos;
}

void
Program::addFunction(Function fn)
{
    assert(byEntry_.find(fn.entry) == byEntry_.end() &&
           "duplicate function entry");
    byEntry_[fn.entry] = functions_.size();
    functions_.push_back(std::move(fn));
}

const Function *
Program::functionAt(Addr entry) const
{
    auto it = byEntry_.find(entry);
    if (it == byEntry_.end())
        return nullptr;
    return &functions_[it->second];
}

Function *
Program::functionAt(Addr entry)
{
    auto it = byEntry_.find(entry);
    if (it == byEntry_.end())
        return nullptr;
    return &functions_[it->second];
}

const Function *
Program::functionContaining(Addr addr) const
{
    for (const auto &fn : functions_) {
        if (addr >= fn.entry && addr < fn.entry + fn.byteSize())
            return &fn;
    }
    return nullptr;
}

void
Program::reindex()
{
    byEntry_.clear();
    for (std::size_t i = 0; i < functions_.size(); ++i)
        byEntry_[functions_[i].entry] = i;
}

} // namespace fits::ir
