#ifndef FITS_IR_FUNCTION_HH_
#define FITS_IR_FUNCTION_HH_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "ir/stmt.hh"
#include "ir/types.hh"

namespace fits::ir {

/**
 * A basic block: a straight-line statement sequence at a fixed address.
 *
 * A block ends either with an explicit terminator (Branch/Jump/Ret) or
 * implicitly falls through to the next block in function layout order
 * (for Branch, the not-taken edge is the fall-through edge).
 */
struct BasicBlock
{
    Addr addr = 0;
    std::vector<Stmt> stmts;

    /** Address of statement i within this block. */
    Addr
    stmtAddr(std::size_t i) const
    {
        return addr + static_cast<Addr>(i) * kStmtSize;
    }

    /** Encoded size of the block in the guest address space. */
    Addr
    byteSize() const
    {
        return static_cast<Addr>(stmts.size()) * kStmtSize;
    }

    /** Last statement, or nullptr if the block is empty. */
    const Stmt *
    terminator() const
    {
        if (stmts.empty() || !stmts.back().isTerminator())
            return nullptr;
        return &stmts.back();
    }
};

/**
 * A function: an entry address, an optional name (empty in stripped
 * binaries), and basic blocks in layout order (blocks[0] is the entry
 * block; its address equals the function entry).
 */
struct Function
{
    Addr entry = 0;
    /** Symbol name; empty for stripped custom functions. */
    std::string name;
    std::vector<BasicBlock> blocks;
    /** One past the largest temporary id used. */
    TmpId numTmps = 0;

    /** Total statement count across all blocks. */
    std::size_t stmtCount() const;

    /** Encoded byte size in the guest address space. */
    Addr byteSize() const;

    /** Index of the block at the given address, or npos. */
    std::size_t blockIndexAt(Addr addr) const;

    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

/**
 * A lifted program: all functions of one binary, addressable by entry.
 */
class Program
{
  public:
    /** Append a function; entries must be unique. */
    void addFunction(Function fn);

    const std::vector<Function> &functions() const { return functions_; }
    std::vector<Function> &functions() { return functions_; }

    /** Function with the given entry address, or nullptr. */
    const Function *functionAt(Addr entry) const;
    Function *functionAt(Addr entry);

    /** Function whose address range contains addr, or nullptr. */
    const Function *functionContaining(Addr addr) const;

    std::size_t size() const { return functions_.size(); }

    /** Rebuild the entry index (after external mutation of functions()). */
    void reindex();

  private:
    std::vector<Function> functions_;
    std::unordered_map<Addr, std::size_t> byEntry_;
};

} // namespace fits::ir

#endif // FITS_IR_FUNCTION_HH_
