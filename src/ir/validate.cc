#include "validate.hh"

#include <unordered_set>

#include "support/strings.hh"

namespace fits::ir {

namespace {

void
checkOperandTmps(const Operand &op, const Function &fn,
                 const std::unordered_set<TmpId> &defined,
                 const char *where, std::vector<std::string> &problems)
{
    using support::format;
    if (!op.isTmp())
        return;
    if (op.tmp >= fn.numTmps) {
        problems.push_back(format("%s: tmp t%u >= numTmps %u", where,
                                  op.tmp, fn.numTmps));
    } else if (defined.find(op.tmp) == defined.end()) {
        problems.push_back(format("%s: tmp t%u used but never defined",
                                  where, op.tmp));
    }
}

} // namespace

std::vector<std::string>
validateFunction(const Function &fn)
{
    using support::format;
    using support::hex;
    std::vector<std::string> problems;

    if (fn.blocks.empty()) {
        problems.push_back("function has no blocks");
        return problems;
    }
    if (fn.blocks.front().addr != fn.entry) {
        problems.push_back(format("entry block at %s != entry %s",
                                  hex(fn.blocks.front().addr).c_str(),
                                  hex(fn.entry).c_str()));
    }

    // Contiguous layout and block address set.
    std::unordered_set<Addr> blockAddrs;
    Addr cursor = fn.entry;
    for (const auto &block : fn.blocks) {
        if (block.addr != cursor) {
            problems.push_back(format("block %s not contiguous "
                                      "(expected %s)",
                                      hex(block.addr).c_str(),
                                      hex(cursor).c_str()));
        }
        if (block.stmts.empty())
            problems.push_back(format("block %s empty",
                                      hex(block.addr).c_str()));
        blockAddrs.insert(block.addr);
        cursor = block.addr + block.byteSize();
    }

    // Collect all defined tmps.
    std::unordered_set<TmpId> defined;
    for (const auto &block : fn.blocks) {
        for (const auto &stmt : block.stmts) {
            if (stmt.definesTmp()) {
                defined.insert(stmt.dst);
                if (stmt.dst >= fn.numTmps) {
                    problems.push_back(format("defined tmp t%u >= "
                                              "numTmps %u",
                                              stmt.dst, fn.numTmps));
                }
            }
        }
    }

    for (const auto &block : fn.blocks) {
        for (std::size_t i = 0; i < block.stmts.size(); ++i) {
            const Stmt &stmt = block.stmts[i];
            std::string where = format("%s",
                                       hex(block.stmtAddr(i)).c_str());

            if (stmt.isTerminator() && i + 1 != block.stmts.size()) {
                problems.push_back(where +
                                   ": terminator not last in block");
            }

            switch (stmt.kind) {
              case StmtKind::Get:
              case StmtKind::Put:
                if (stmt.reg >= kNumRegs)
                    problems.push_back(where + ": bad register id");
                break;
              default:
                break;
            }

            // Operand checks by kind.
            switch (stmt.kind) {
              case StmtKind::Put:
              case StmtKind::Load:
                checkOperandTmps(stmt.a, fn, defined, where.c_str(),
                                 problems);
                break;
              case StmtKind::Binop:
              case StmtKind::Store:
                checkOperandTmps(stmt.a, fn, defined, where.c_str(),
                                 problems);
                checkOperandTmps(stmt.b, fn, defined, where.c_str(),
                                 problems);
                break;
              case StmtKind::Branch:
                checkOperandTmps(stmt.a, fn, defined, where.c_str(),
                                 problems);
                break;
              case StmtKind::Call:
              case StmtKind::Jump:
                if (stmt.indirect) {
                    checkOperandTmps(stmt.a, fn, defined, where.c_str(),
                                     problems);
                }
                break;
              default:
                break;
            }

            // Direct intra-function control flow must land on blocks.
            if ((stmt.kind == StmtKind::Branch ||
                 (stmt.kind == StmtKind::Jump && !stmt.indirect)) &&
                blockAddrs.find(stmt.target) == blockAddrs.end()) {
                problems.push_back(where + ": target " +
                                   hex(stmt.target) +
                                   " is not a block boundary");
            }
        }
    }

    return problems;
}

std::vector<std::string>
validateProgram(const Program &program)
{
    std::vector<std::string> problems;
    for (const auto &fn : program.functions()) {
        for (auto &p : validateFunction(fn)) {
            problems.push_back(support::hex(fn.entry) + ": " +
                               std::move(p));
        }
    }
    return problems;
}

} // namespace fits::ir
