#ifndef FITS_IR_PRINTER_HH_
#define FITS_IR_PRINTER_HH_

#include <string>

#include "ir/function.hh"

namespace fits::ir {

/** Render a function as readable IR text (for debugging and tests). */
std::string printFunction(const Function &fn);

/** Render a whole program. */
std::string printProgram(const Program &program);

} // namespace fits::ir

#endif // FITS_IR_PRINTER_HH_
