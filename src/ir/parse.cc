#include "parse.hh"

#include <cctype>
#include <optional>

#include "chaos/chaos.hh"
#include "support/status.hh"
#include "support/strings.hh"

namespace fits::ir {

namespace {

/** Minimal recursive-descent cursor over one line. */
class Cursor
{
  public:
    explicit Cursor(std::string_view text)
        : text_(text)
    {
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() && text_[pos_] == ' ')
            ++pos_;
    }

    bool
    literal(std::string_view expected)
    {
        skipSpace();
        if (text_.substr(pos_, expected.size()) != expected)
            return false;
        pos_ += expected.size();
        return true;
    }

    std::optional<std::uint64_t>
    number()
    {
        skipSpace();
        std::size_t i = pos_;
        std::uint64_t value = 0;
        if (text_.substr(i, 2) == "0x") {
            i += 2;
            std::size_t digits = 0;
            while (i < text_.size() && std::isxdigit(
                                           static_cast<unsigned char>(
                                               text_[i]))) {
                const char c = text_[i];
                value = value * 16 +
                        static_cast<std::uint64_t>(
                            c <= '9' ? c - '0'
                                     : (c | 0x20) - 'a' + 10);
                ++i;
                ++digits;
            }
            if (digits == 0)
                return std::nullopt;
        } else {
            std::size_t digits = 0;
            while (i < text_.size() &&
                   std::isdigit(static_cast<unsigned char>(
                       text_[i]))) {
                value = value * 10 +
                        static_cast<std::uint64_t>(text_[i] - '0');
                ++i;
                ++digits;
            }
            if (digits == 0)
                return std::nullopt;
        }
        pos_ = i;
        return value;
    }

    std::optional<TmpId>
    tmp()
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != 't')
            return std::nullopt;
        ++pos_;
        auto n = number();
        if (!n)
            return std::nullopt;
        return static_cast<TmpId>(*n);
    }

    std::optional<RegId>
    reg()
    {
        skipSpace();
        if (pos_ >= text_.size() || text_[pos_] != 'r')
            return std::nullopt;
        ++pos_;
        auto n = number();
        if (!n)
            return std::nullopt;
        return static_cast<RegId>(*n);
    }

    std::optional<Operand>
    operand()
    {
        skipSpace();
        if (pos_ < text_.size() && text_[pos_] == 't') {
            auto t = tmp();
            if (!t)
                return std::nullopt;
            return Operand::ofTmp(*t);
        }
        auto n = number();
        if (!n)
            return std::nullopt;
        return Operand::ofImm(*n);
    }

    /** Identifier up to the next delimiter. */
    std::string
    word()
    {
        skipSpace();
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(
                    text_[pos_])) ||
                text_[pos_] == '_')) {
            ++pos_;
        }
        return std::string(text_.substr(start, pos_ - start));
    }

    bool
    done()
    {
        skipSpace();
        return pos_ >= text_.size();
    }

  private:
    std::string_view text_;
    std::size_t pos_ = 0;
};

std::optional<BinOp>
binOpByName(const std::string &name)
{
    for (int i = 0; i <= static_cast<int>(BinOp::CmpGe); ++i) {
        const auto op = static_cast<BinOp>(i);
        if (name == binOpName(op))
            return op;
    }
    return std::nullopt;
}

/** Parse one statement body (the part after "<addr>: "). */
std::optional<Stmt>
parseStmt(std::string_view body)
{
    Cursor c(body);

    if (c.literal("RET"))
        return c.done() ? std::optional<Stmt>(Stmt::ret())
                        : std::nullopt;

    if (c.literal("PUT(")) {
        auto r = c.reg();
        if (!r || !c.literal(")") || !c.literal("="))
            return std::nullopt;
        auto v = c.operand();
        if (!v || !c.done())
            return std::nullopt;
        return Stmt::put(*r, *v);
    }

    if (c.literal("STORE(")) {
        auto addr = c.operand();
        if (!addr || !c.literal(")") || !c.literal("="))
            return std::nullopt;
        auto v = c.operand();
        if (!v || !c.done())
            return std::nullopt;
        return Stmt::store(*addr, *v);
    }

    if (c.literal("CALL")) {
        Cursor probe = c;
        if (auto t = probe.tmp(); t && probe.done())
            return Stmt::callIndirect(Operand::ofTmp(*t));
        auto target = c.number();
        if (!target || !c.done())
            return std::nullopt;
        return Stmt::call(*target);
    }

    if (c.literal("IF (")) {
        auto cond = c.operand();
        if (!cond || !c.literal(")") || !c.literal("GOTO"))
            return std::nullopt;
        auto target = c.number();
        if (!target || !c.done())
            return std::nullopt;
        return Stmt::branch(*cond, *target);
    }

    if (c.literal("GOTO")) {
        Cursor probe = c;
        if (auto t = probe.tmp(); t && probe.done())
            return Stmt::jumpIndirect(Operand::ofTmp(*t));
        auto target = c.number();
        if (!target || !c.done())
            return std::nullopt;
        return Stmt::jump(*target);
    }

    // Assignments: "tN = ..."
    auto dst = c.tmp();
    if (!dst || !c.literal("="))
        return std::nullopt;

    if (c.literal("GET(")) {
        auto r = c.reg();
        if (!r || !c.literal(")") || !c.done())
            return std::nullopt;
        return Stmt::get(*dst, *r);
    }
    if (c.literal("LOAD(")) {
        auto addr = c.operand();
        if (!addr || !c.literal(")") || !c.done())
            return std::nullopt;
        return Stmt::load(*dst, *addr);
    }

    // Binop: "<Name>(a, b)" — or a bare constant.
    {
        Cursor probe = c;
        const std::string name = probe.word();
        if (auto op = binOpByName(name)) {
            if (!probe.literal("("))
                return std::nullopt;
            auto lhs = probe.operand();
            if (!lhs || !probe.literal(","))
                return std::nullopt;
            auto rhs = probe.operand();
            if (!rhs || !probe.literal(")") || !probe.done())
                return std::nullopt;
            return Stmt::binop(*dst, *op, *lhs, *rhs);
        }
    }

    auto value = c.number();
    if (!value || !c.done())
        return std::nullopt;
    return Stmt::cnst(*dst, *value);
}

} // namespace

support::Result<Function>
parseFunction(const std::string &text)
{
    using R = support::Result<Function>;
    const auto err = [](std::string message) {
        return R::error(support::Status::error(
            support::Stage::IrParse, support::ErrorCode::Corrupt,
            std::move(message)));
    };

    if (chaos::shouldInject("ir.parse"))
        return R::error(chaos::injectedStatus("ir.parse"));

    Function fn;
    bool sawHeader = false;
    BasicBlock *current = nullptr;
    int lineNo = 0;

    for (const std::string &rawLine : support::split(text, '\n')) {
        ++lineNo;
        // Trim.
        std::size_t begin = rawLine.find_first_not_of(" \t");
        if (begin == std::string::npos)
            continue;
        std::size_t end = rawLine.find_last_not_of(" \t\r");
        const std::string line =
            rawLine.substr(begin, end - begin + 1);

        if (support::startsWith(line, "function ")) {
            if (sawHeader)
                return err("duplicate function header");
            sawHeader = true;
            // "function <name> @ <addr> (...)"
            const std::size_t at = line.find(" @ ");
            if (at == std::string::npos)
                return err("malformed function header");
            std::string name =
                line.substr(9, at - 9);
            if (name == "<stripped>")
                name.clear();
            fn.name = std::move(name);
            Cursor c(std::string_view(line).substr(at + 3));
            auto entry = c.number();
            if (!entry)
                return err("missing entry address");
            fn.entry = *entry;
            continue;
        }

        if (support::startsWith(line, "block ")) {
            Cursor c(std::string_view(line).substr(6));
            auto addr = c.number();
            if (!addr || !c.literal(":"))
                return err(support::format(
                    "line %d: malformed block header", lineNo));
            fn.blocks.emplace_back();
            fn.blocks.back().addr = *addr;
            current = &fn.blocks.back();
            continue;
        }

        // "<addr>: <stmt>"
        if (!sawHeader || current == nullptr)
            return err(support::format(
                "line %d: statement outside a block", lineNo));
        const std::size_t colon = line.find(": ");
        if (colon == std::string::npos)
            return err(support::format(
                "line %d: missing statement address", lineNo));
        auto stmt =
            parseStmt(std::string_view(line).substr(colon + 2));
        if (!stmt)
            return err(support::format(
                "line %d: unparsable statement '%s'", lineNo,
                line.substr(colon + 2).c_str()));
        current->stmts.push_back(*stmt);
    }

    if (!sawHeader)
        return err("no function header");
    if (fn.blocks.empty())
        return err("function has no blocks");

    // Recompute numTmps from the statements.
    TmpId maxTmp = 0;
    bool anyTmp = false;
    auto see = [&](const Operand &op) {
        if (op.isTmp()) {
            maxTmp = std::max(maxTmp, op.tmp);
            anyTmp = true;
        }
    };
    for (const auto &block : fn.blocks) {
        for (const auto &stmt : block.stmts) {
            if (stmt.definesTmp()) {
                maxTmp = std::max(maxTmp, stmt.dst);
                anyTmp = true;
            }
            see(stmt.a);
            see(stmt.b);
        }
    }
    fn.numTmps = anyTmp ? maxTmp + 1 : 0;

    return R::ok(std::move(fn));
}

} // namespace fits::ir
