#include "stmt.hh"

#include "support/strings.hh"

namespace fits::ir {

Stmt
Stmt::get(TmpId dst, RegId reg)
{
    Stmt s;
    s.kind = StmtKind::Get;
    s.dst = dst;
    s.reg = reg;
    return s;
}

Stmt
Stmt::put(RegId reg, Operand value)
{
    Stmt s;
    s.kind = StmtKind::Put;
    s.reg = reg;
    s.a = value;
    return s;
}

Stmt
Stmt::cnst(TmpId dst, std::uint64_t value)
{
    Stmt s;
    s.kind = StmtKind::Const;
    s.dst = dst;
    s.a = Operand::ofImm(value);
    return s;
}

Stmt
Stmt::binop(TmpId dst, BinOp op, Operand lhs, Operand rhs)
{
    Stmt s;
    s.kind = StmtKind::Binop;
    s.dst = dst;
    s.op = op;
    s.a = lhs;
    s.b = rhs;
    return s;
}

Stmt
Stmt::load(TmpId dst, Operand addr)
{
    Stmt s;
    s.kind = StmtKind::Load;
    s.dst = dst;
    s.a = addr;
    return s;
}

Stmt
Stmt::store(Operand addr, Operand value)
{
    Stmt s;
    s.kind = StmtKind::Store;
    s.a = addr;
    s.b = value;
    return s;
}

Stmt
Stmt::call(Addr target)
{
    Stmt s;
    s.kind = StmtKind::Call;
    s.target = target;
    return s;
}

Stmt
Stmt::callIndirect(Operand target)
{
    Stmt s;
    s.kind = StmtKind::Call;
    s.indirect = true;
    s.a = target;
    return s;
}

Stmt
Stmt::branch(Operand cond, Addr taken)
{
    Stmt s;
    s.kind = StmtKind::Branch;
    s.a = cond;
    s.target = taken;
    return s;
}

Stmt
Stmt::jump(Addr target)
{
    Stmt s;
    s.kind = StmtKind::Jump;
    s.target = target;
    return s;
}

Stmt
Stmt::jumpIndirect(Operand target)
{
    Stmt s;
    s.kind = StmtKind::Jump;
    s.indirect = true;
    s.a = target;
    return s;
}

Stmt
Stmt::ret()
{
    Stmt s;
    s.kind = StmtKind::Ret;
    return s;
}

bool
Stmt::isTerminator() const
{
    switch (kind) {
      case StmtKind::Jump:
      case StmtKind::Ret:
        return true;
      default:
        return false;
    }
}

bool
Stmt::definesTmp() const
{
    switch (kind) {
      case StmtKind::Get:
      case StmtKind::Const:
      case StmtKind::Binop:
      case StmtKind::Load:
        return true;
      default:
        return false;
    }
}

std::string
Stmt::toString() const
{
    using support::format;
    using support::hex;
    switch (kind) {
      case StmtKind::Get:
        return format("t%u = GET(r%u)", dst, reg);
      case StmtKind::Put:
        return format("PUT(r%u) = %s", reg, a.toString().c_str());
      case StmtKind::Const:
        return format("t%u = %s", dst, hex(a.imm).c_str());
      case StmtKind::Binop:
        return format("t%u = %s(%s, %s)", dst, binOpName(op),
                      a.toString().c_str(), b.toString().c_str());
      case StmtKind::Load:
        return format("t%u = LOAD(%s)", dst, a.toString().c_str());
      case StmtKind::Store:
        return format("STORE(%s) = %s", a.toString().c_str(),
                      b.toString().c_str());
      case StmtKind::Call:
        if (indirect)
            return format("CALL %s", a.toString().c_str());
        return format("CALL %s", hex(target).c_str());
      case StmtKind::Branch:
        return format("IF (%s) GOTO %s", a.toString().c_str(),
                      hex(target).c_str());
      case StmtKind::Jump:
        if (indirect)
            return format("GOTO %s", a.toString().c_str());
        return format("GOTO %s", hex(target).c_str());
      case StmtKind::Ret:
        return "RET";
    }
    return "?";
}

} // namespace fits::ir
