#ifndef FITS_IR_STMT_HH_
#define FITS_IR_STMT_HH_

#include <string>

#include "ir/types.hh"

namespace fits::ir {

/**
 * Statement kinds of the FIR intermediate language.
 *
 * FIR deliberately mirrors the VEX statement forms enumerated in Table 2
 * of the FITS paper (PUT/GET/Binop/Load/Store), because the paper's
 * argument-backtracking rules are defined over exactly these forms; the
 * control-flow statements (Call/Branch/Jump/Ret) carry what the CFG and
 * call-graph builders need.
 */
enum class StmtKind : std::uint8_t {
    Get,    ///< t = GET(r)
    Put,    ///< PUT(r) = t | imm
    Const,  ///< t = imm
    Binop,  ///< t = op(a, b)
    Load,   ///< t = LOAD(a)
    Store,  ///< STORE(a) = b
    Call,   ///< call target (direct addr) or call a (indirect)
    Branch, ///< conditional side exit: if (a != 0) goto target, else
            ///< continue with the next statement (VEX Ist_Exit);
            ///< may appear anywhere in a block
    Jump,   ///< goto target (direct) or goto a (indirect); block ends
    Ret,    ///< return (value convention: r0); block ends
};

/**
 * One FIR statement. A flat tagged struct rather than a class hierarchy:
 * programs hold millions of statements, and the analyses sweep them
 * linearly.
 *
 * Field usage by kind:
 *   Get:    dst = GET(reg)
 *   Put:    PUT(reg) = a
 *   Const:  dst = a.imm (a is always Imm)
 *   Binop:  dst = op(a, b)
 *   Load:   dst = LOAD(a)
 *   Store:  STORE(a) = b
 *   Call:   direct: target is the callee entry; indirect: a holds target
 *   Branch: a is the condition, target is the taken block address
 *   Jump:   direct: target is the block address; indirect: a holds target
 *   Ret:    no fields
 */
struct Stmt
{
    StmtKind kind = StmtKind::Ret;
    TmpId dst = 0;
    RegId reg = 0;
    BinOp op = BinOp::Add;
    Operand a;
    Operand b;
    Addr target = 0;
    bool indirect = false;

    static Stmt get(TmpId dst, RegId reg);
    static Stmt put(RegId reg, Operand value);
    static Stmt cnst(TmpId dst, std::uint64_t value);
    static Stmt binop(TmpId dst, BinOp op, Operand lhs, Operand rhs);
    static Stmt load(TmpId dst, Operand addr);
    static Stmt store(Operand addr, Operand value);
    static Stmt call(Addr target);
    static Stmt callIndirect(Operand target);
    static Stmt branch(Operand cond, Addr taken);
    static Stmt jump(Addr target);
    static Stmt jumpIndirect(Operand target);
    static Stmt ret();

    /** True if the statement unconditionally ends a basic block
     * (Jump/Ret). Branch is a conditional side exit, not a
     * terminator. */
    bool isTerminator() const;

    /** True if the statement writes a temporary (dst is meaningful). */
    bool definesTmp() const;

    /** Render one line of IR text ("t3 = LOAD(t2)"). */
    std::string toString() const;
};

/**
 * Fixed size of one encoded statement in the guest address space. The
 * lifter and the synthetic generator agree on this so that statement
 * addresses (block address + index * kStmtSize) are stable identifiers
 * for call sites and definition points.
 */
constexpr Addr kStmtSize = 4;

} // namespace fits::ir

#endif // FITS_IR_STMT_HH_
