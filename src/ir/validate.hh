#ifndef FITS_IR_VALIDATE_HH_
#define FITS_IR_VALIDATE_HH_

#include <string>
#include <vector>

#include "ir/function.hh"

namespace fits::ir {

/**
 * Structural validation of a function. Returns a list of human-readable
 * problems; empty means the function is well-formed. Checks:
 *   - the entry block exists and its address equals the function entry;
 *   - blocks are laid out contiguously in address order;
 *   - every used temporary is defined somewhere in the function and all
 *     temporary ids are below numTmps;
 *   - direct branch/jump targets land on a block boundary inside the
 *     function;
 *   - terminators appear only in terminal position of a block;
 *   - register ids are within the guest register file.
 */
std::vector<std::string> validateFunction(const Function &fn);

/** Validate every function of a program; problems are prefixed with the
 * function entry address. */
std::vector<std::string> validateProgram(const Program &program);

} // namespace fits::ir

#endif // FITS_IR_VALIDATE_HH_
