#ifndef FITS_IR_TYPES_HH_
#define FITS_IR_TYPES_HH_

#include <cstdint>
#include <string>

namespace fits::ir {

/** Virtual address inside a binary's address space. */
using Addr = std::uint64_t;

/** Function-local temporary variable id (the VEX "t_i"). */
using TmpId = std::uint32_t;

/** Guest register id (the VEX "r_i"). */
using RegId = std::uint16_t;

/**
 * Guest register file, ARM32-flavoured: sixteen general registers with
 * the standard AAPCS roles. Arguments are passed in r0..r3, additional
 * arguments on the stack, and the return value in r0.
 */
constexpr RegId kRegR0 = 0;
constexpr RegId kRegR1 = 1;
constexpr RegId kRegR2 = 2;
constexpr RegId kRegR3 = 3;
constexpr RegId kRegSp = 13;
constexpr RegId kRegLr = 14;
constexpr RegId kRegPc = 15;
constexpr int kNumRegs = 16;

/** Number of register-passed arguments under the guest ABI. */
constexpr int kNumArgRegs = 4;

/** Return-value register under the guest ABI. */
constexpr RegId kRetReg = kRegR0;

/** Binary operations usable in Binop statements. */
enum class BinOp : std::uint8_t {
    Add, Sub, Mul, UDiv,
    And, Or, Xor, Shl, Shr,
    CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe,
};

/** True for the comparison subset of BinOp. */
bool isComparison(BinOp op);

/** Stable mnemonic for printing ("Add", "CmpEq", ...). */
const char *binOpName(BinOp op);

/** Evaluate a BinOp on concrete 64-bit values (comparisons yield 0/1). */
std::uint64_t evalBinOp(BinOp op, std::uint64_t lhs, std::uint64_t rhs);

/**
 * An operand of a statement: either a temporary or an immediate constant.
 * This mirrors VEX's RdTmp/Const expression atoms.
 */
struct Operand
{
    enum class Kind : std::uint8_t { Tmp, Imm };

    Kind kind = Kind::Imm;
    TmpId tmp = 0;
    std::uint64_t imm = 0;

    static Operand
    ofTmp(TmpId id)
    {
        Operand o;
        o.kind = Kind::Tmp;
        o.tmp = id;
        return o;
    }

    static Operand
    ofImm(std::uint64_t value)
    {
        Operand o;
        o.kind = Kind::Imm;
        o.imm = value;
        return o;
    }

    bool isTmp() const { return kind == Kind::Tmp; }
    bool isImm() const { return kind == Kind::Imm; }

    bool
    operator==(const Operand &other) const
    {
        if (kind != other.kind)
            return false;
        return isTmp() ? tmp == other.tmp : imm == other.imm;
    }

    /** Render as "t12" or "0x40". */
    std::string toString() const;
};

} // namespace fits::ir

#endif // FITS_IR_TYPES_HH_
