#include "types.hh"

#include "support/strings.hh"

namespace fits::ir {

bool
isComparison(BinOp op)
{
    switch (op) {
      case BinOp::CmpEq:
      case BinOp::CmpNe:
      case BinOp::CmpLt:
      case BinOp::CmpLe:
      case BinOp::CmpGt:
      case BinOp::CmpGe:
        return true;
      default:
        return false;
    }
}

const char *
binOpName(BinOp op)
{
    switch (op) {
      case BinOp::Add:   return "Add";
      case BinOp::Sub:   return "Sub";
      case BinOp::Mul:   return "Mul";
      case BinOp::UDiv:  return "UDiv";
      case BinOp::And:   return "And";
      case BinOp::Or:    return "Or";
      case BinOp::Xor:   return "Xor";
      case BinOp::Shl:   return "Shl";
      case BinOp::Shr:   return "Shr";
      case BinOp::CmpEq: return "CmpEq";
      case BinOp::CmpNe: return "CmpNe";
      case BinOp::CmpLt: return "CmpLt";
      case BinOp::CmpLe: return "CmpLe";
      case BinOp::CmpGt: return "CmpGt";
      case BinOp::CmpGe: return "CmpGe";
    }
    return "?";
}

std::uint64_t
evalBinOp(BinOp op, std::uint64_t lhs, std::uint64_t rhs)
{
    switch (op) {
      case BinOp::Add:   return lhs + rhs;
      case BinOp::Sub:   return lhs - rhs;
      case BinOp::Mul:   return lhs * rhs;
      case BinOp::UDiv:  return rhs == 0 ? 0 : lhs / rhs;
      case BinOp::And:   return lhs & rhs;
      case BinOp::Or:    return lhs | rhs;
      case BinOp::Xor:   return lhs ^ rhs;
      case BinOp::Shl:   return rhs >= 64 ? 0 : lhs << rhs;
      case BinOp::Shr:   return rhs >= 64 ? 0 : lhs >> rhs;
      case BinOp::CmpEq: return lhs == rhs ? 1 : 0;
      case BinOp::CmpNe: return lhs != rhs ? 1 : 0;
      case BinOp::CmpLt: return lhs < rhs ? 1 : 0;
      case BinOp::CmpLe: return lhs <= rhs ? 1 : 0;
      case BinOp::CmpGt: return lhs > rhs ? 1 : 0;
      case BinOp::CmpGe: return lhs >= rhs ? 1 : 0;
    }
    return 0;
}

std::string
Operand::toString() const
{
    if (isTmp())
        return support::format("t%u", tmp);
    return support::hex(imm);
}

} // namespace fits::ir
