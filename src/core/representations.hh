#ifndef FITS_CORE_REPRESENTATIONS_HH_
#define FITS_CORE_REPRESENTATIONS_HH_

#include "analysis/function_analysis.hh"
#include "mlkit/vector.hh"

namespace fits::core {

/**
 * Function representations compared in Table 7. Bfv is this paper's;
 * the other two are reimplementations of the *feature content* of the
 * published code representations (code-structure features only), which
 * is what the paper's comparison isolates: they capture code-level
 * similarity, not behaviour.
 */
enum class Representation : std::uint8_t {
    Bfv,
    AugmentedCfg,  ///< NERO-style: CFG structure augmented with call
                   ///< statistics
    AttributedCfg, ///< Gemini-style: aggregated per-block attributes
};

const char *representationName(Representation representation);

/**
 * NERO-style augmented-CFG vector: graph-shape statistics plus call
 * counts — [blocks, edges, backEdges, stmts, avgBlockLen, maxOutDeg,
 * calls, consts, loads, stores].
 */
ml::Vec augmentedCfgVector(const analysis::FunctionAnalysis &fa);

/**
 * Gemini-style attributed-CFG vector: aggregated basic-block
 * attributes — [stmts, arithmetic ops, comparisons, calls, branches,
 * loads+stores, consts, blocks, edges].
 */
ml::Vec attributedCfgVector(const analysis::FunctionAnalysis &fa);

} // namespace fits::core

#endif // FITS_CORE_REPRESENTATIONS_HH_
