#ifndef FITS_CORE_BFV_HH_
#define FITS_CORE_BFV_HH_

#include <string>

#include "mlkit/vector.hh"

namespace fits::core {

/**
 * The Behavioral Feature Vector of Table 1: six structural features
 * capturing static properties and five flow features capturing how the
 * function processes input. The example of §3.2 — fn16 with BFV
 * [17, True, 2, 3, 5, 6, True, True, True, True, 2] — fixes the
 * ordering used here.
 */
struct Bfv
{
    // Structural features (SF).
    double numBlocks = 0;          ///< 1. number of basic blocks
    bool hasLoop = false;          ///< 2. existence of loops
    double numCallers = 0;         ///< 3. number of callers (call sites)
    double numParams = 0;          ///< 4. number of parameters
    double numAnchorCalls = 0;     ///< 5. calls to anchor functions
    double numLibCalls = 0;        ///< 6. calls to library functions

    // Flow features (FF).
    bool paramsControlLoop = false;   ///< 7. params control loops
    bool paramsControlBranch = false; ///< 8. params control branches
    bool paramsToAnchor = false;      ///< 9. params passed to anchors
    bool argsHaveStrings = false;     ///< 10. arguments contain strings
    double numDistinctStrings = 0;    ///< 11. distinct strings, all sites

    static constexpr int kNumFeatures = 11;

    /** Short name of feature index 0..10 ("bb", "loops", ...). */
    static const char *featureName(int index);

    /** The 11-dimensional vector in Table-1 order. */
    ml::Vec toVector() const;

    /**
     * Vector with one feature removed (the CF-k ablation of §4.4;
     * dropIndex is 0-based) or with only one feature kept
     * (keepOnly >= 0, used by the single-feature experiment).
     */
    ml::Vec toVectorDropping(int dropIndex) const;
    ml::Vec toVectorKeepingOnly(int keepIndex) const;
};

} // namespace fits::core

#endif // FITS_CORE_BFV_HH_
