#ifndef FITS_CORE_BEHAVIOR_IO_HH_
#define FITS_CORE_BEHAVIOR_IO_HH_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/behavior.hh"
#include "firmware/fwimg.hh"

namespace fits::core {

/**
 * The whole-sample behavior product the analysis cache persists: what
 * stages 1-2 of the pipeline compute from raw firmware bytes, minus the
 * analysis chain (which taint engines need live and is therefore never
 * served from cache). A warm hit on this bundle lets `fits corpus` and
 * `fits rank` skip unpack, select, lift, UCSE, and BFV extraction and
 * jump straight to inference.
 */
struct BehaviorBundle
{
    fw::ImageInfo imageInfo;
    std::string binaryName;
    std::uint64_t numFunctions = 0;
    std::uint64_t binaryBytes = 0;
    BehaviorRepr behavior;
};

/**
 * Serialize to the versioned cache payload. Fixed-width little-endian
 * integers, length-prefixed strings, and doubles stored by bit pattern
 * — decode(encode(b)) reproduces every BFV and comparison vector
 * bit-for-bit, which the bit-identity guarantee of the cache rests on.
 */
std::string encodeBehaviorBundle(const BehaviorBundle &bundle);

/** Parse a payload; nullopt on any truncation, bad tag, or version
 * skew (the cache treats that as a miss). */
std::optional<BehaviorBundle> decodeBehaviorBundle(
    std::string_view payload);

/**
 * Fingerprint of every configuration knob that shapes a BehaviorRepr,
 * plus the serialization format version. Used as the second cache key
 * next to the firmware content hash; `jobs` is excluded (the parallel
 * extraction loop is bit-identical to serial), and the UCSE deadline is
 * excluded because deadline-bearing runs never consult the cache.
 */
std::uint64_t behaviorConfigFingerprint(
    const BehaviorAnalyzer::Config &config);

} // namespace fits::core

#endif // FITS_CORE_BEHAVIOR_IO_HH_
