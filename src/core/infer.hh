#ifndef FITS_CORE_INFER_HH_
#define FITS_CORE_INFER_HH_

#include <string>
#include <vector>

#include "core/behavior.hh"
#include "core/representations.hh"
#include "mlkit/dbscan.hh"

namespace fits::core {

/**
 * How candidate custom functions are selected before scoring. The
 * paper's pipeline uses BehaviorClustering; the other strategies are
 * the §4.5 comparison points (direct scoring, and scoring after PCA /
 * standardization / min-max normalization instead of clustering).
 */
enum class CandidateStrategy : std::uint8_t {
    BehaviorClustering,
    DirectScoring,
    Pca,
    Standardize,
    MinMax,
};

const char *candidateStrategyName(CandidateStrategy strategy);

/** Inference configuration (Algorithm 2 plus evaluation knobs). */
struct InferConfig
{
    CandidateStrategy strategy = CandidateStrategy::BehaviorClustering;

    /** Which function representation feeds clustering and scoring
     * (the Table-7 comparison swaps this). */
    Representation representation = Representation::Bfv;

    /** DBSCAN runs on max-abs-scaled BFVs. */
    ml::DbscanConfig dbscan{0.35, 3, ml::Metric::Euclidean};

    /** Similarity metric of the scoring stage (Table 8). */
    ml::Metric scoreMetric = ml::Metric::Cosine;

    /** CF-k ablation: remove this 0-based feature (-1 = keep all). */
    int dropFeature = -1;

    /** Single-feature inference: keep only this feature (-1 = all). */
    int onlyFeature = -1;

    /** PCA components when strategy == Pca. */
    std::size_t pcaComponents = 4;

    /** Treat DBSCAN noise points as singleton classes (the default)
     * rather than discarding them before the complexity filter. */
    bool noiseAsSingletons = true;

    /**
     * Vendor mode (Discussion §5): blend the symbol-name prior into
     * the score when function names are available (unstripped
     * builds). No effect on stripped binaries — names are empty.
     */
    bool useSymbolNames = false;

    /** Weight of the name prior when useSymbolNames is set. */
    double symbolWeight = 0.3;

    /** Cap on returned ranking length. */
    std::size_t maxRanked = 50;
};

/** One ranked custom function. */
struct RankedFunction
{
    analysis::FnId id = 0;
    ir::Addr entry = 0;
    std::string name;
    double score = 0.0;
};

/** Output of Algorithm 2, with stage statistics for the evaluation. */
struct InferenceResult
{
    std::vector<RankedFunction> ranking;
    std::size_t numCustom = 0;
    std::size_t numAnchors = 0;
    std::size_t numClusters = 0;
    std::size_t numCandidates = 0;
    double avgClassComplexity = 0.0;
    /** Wall time of the candidate-selection (clustering) and the
     * scoring/ranking stages — views over the "…/infer/cluster" and
     * "…/infer/rank" obs spans. */
    double clusterMs = 0.0;
    double rankMs = 0.0;
    std::string error; // non-empty when inference could not run

    bool ok() const { return error.empty(); }
};

/**
 * Eq. (1): complexity of one function from its BFV — the sum of its
 * basic-block, caller, library-call and anchor-call features, each
 * normalized by the per-dimension maximum over all custom functions.
 */
double functionComplexity(const Bfv &bfv, const Bfv &maxima);

/** Algorithm 2: cluster, filter by class complexity, score, rank. */
InferenceResult inferIts(const BehaviorRepr &repr,
                         const InferConfig &config = {});

} // namespace fits::core

#endif // FITS_CORE_INFER_HH_
