#ifndef FITS_CORE_TRIAGE_HH_
#define FITS_CORE_TRIAGE_HH_

#include <string>

#include "analysis/program_analysis.hh"

namespace fits::core {

/**
 * Sensitive-operation triage of custom functions (the paper's
 * Application discussion: high-scoring functions that are not ITSs
 * "tend to have sensitive operations, such as file writing and
 * operation selection", so analyzing them first beats starting from
 * main — and the same profile flags critical operations in malware).
 */
struct OperationProfile
{
    int fileOps = 0;    ///< fopen/fwrite/unlink/... call sites
    int execOps = 0;    ///< system/execve/popen call sites
    int netOps = 0;     ///< socket/send/connect call sites
    int memOps = 0;     ///< anchor (memory-operation) call sites
    int dispatch = 0;   ///< indirect calls (operation selection)

    /** True if the function touches an effectful capability (file,
     * exec, or network) or selects operations indirectly. */
    bool sensitive() const;

    /** "exec+net" style summary of the capabilities present. */
    std::string summary() const;
};

/** Profile one function's call sites. */
OperationProfile profileFunction(const analysis::ProgramAnalysis &pa,
                                 analysis::FnId id);

} // namespace fits::core

#endif // FITS_CORE_TRIAGE_HH_
