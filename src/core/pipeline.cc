#include "pipeline.hh"

#include "chaos/chaos.hh"
#include "obs/metrics.hh"
#include "support/logging.hh"

namespace fits::core {

namespace {

/** Flatten an artifact into the plain-data result the harness keeps. */
PipelineResult
resultFromArtifact(PipelineArtifact artifact)
{
    PipelineResult result;
    result.ok = artifact.ok;
    result.failureStage = artifact.failureStage;
    result.error = std::move(artifact.error);
    result.status = std::move(artifact.status);
    result.degraded = artifact.degraded;
    result.issues = std::move(artifact.issues);
    result.imageInfo = artifact.imageInfo;
    result.binaryName = std::move(artifact.binaryName);
    result.numFunctions = artifact.numFunctions;
    result.binaryBytes = artifact.binaryBytes;
    result.behavior = std::move(artifact.behavior);
    result.inference = std::move(artifact.inference);
    result.timings = artifact.timings;
    // The analysis chain borrows the target; it dies with `artifact`
    // right here and is never dereferenced again, so moving the target
    // out from under it is safe.
    if (artifact.target != nullptr)
        result.target = std::move(*artifact.target);
    return result;
}

const char *
failureStageName(PipelineResult::FailureStage stage)
{
    switch (stage) {
      case PipelineResult::FailureStage::None:      return "none";
      case PipelineResult::FailureStage::Unpack:    return "unpack";
      case PipelineResult::FailureStage::Select:    return "select";
      case PipelineResult::FailureStage::Inference: return "inference";
    }
    return "?";
}

void
recordRunCounters(const PipelineArtifact &artifact)
{
    if (!obs::enabled())
        return;
    obs::addCounter("pipeline.runs");
    if (artifact.ok) {
        obs::addCounter("pipeline.ok");
        obs::addCounter("pipeline.functions",
                        artifact.numFunctions);
    } else {
        obs::addCounter(std::string("pipeline.failures.") +
                        failureStageName(artifact.failureStage));
    }
    if (artifact.degraded)
        obs::addCounter("pipeline.degraded");
    if (!artifact.status.isOk()) {
        obs::addCounter(std::string("pipeline.errors.") +
                        support::stageName(artifact.status.stage()));
    }
    for (const auto &issue : artifact.issues) {
        obs::addCounter(std::string("pipeline.errors.") +
                        support::stageName(issue.stage()));
    }
}

} // namespace

FitsPipeline::FitsPipeline(PipelineConfig config)
    : config_(std::move(config))
{
}

PipelineResult
FitsPipeline::run(const std::vector<std::uint8_t> &firmware) const
{
    return resultFromArtifact(analyze(firmware));
}

PipelineResult
FitsPipeline::runOnTarget(fw::AnalysisTarget target) const
{
    return resultFromArtifact(analyzeTarget(std::move(target)));
}

PipelineArtifact
FitsPipeline::analyze(const std::vector<std::uint8_t> &firmware) const
{
    obs::ScopedTimer pipelineSpan("pipeline");
    PipelineArtifact artifact;

    // Stage 1a: unpack.
    obs::ScopedTimer unpackTimer("unpack");
    auto unpacked = fw::unpackFirmware(firmware);
    artifact.timings.unpackMs = unpackTimer.stopMs();
    if (!unpacked) {
        artifact.failureStage = PipelineResult::FailureStage::Unpack;
        artifact.error = unpacked.errorMessage();
        artifact.status = unpacked.status();
        recordRunCounters(artifact);
        return artifact;
    }

    // Stage 1b: select the network binary and resolve libraries.
    obs::ScopedTimer selectTimer("select");
    auto target = fw::selectAnalysisTarget(unpacked.value().filesystem);
    const double selectMs = selectTimer.stopMs();
    if (!target) {
        artifact.imageInfo = unpacked.value().info;
        artifact.timings.selectMs = selectMs;
        artifact.failureStage = PipelineResult::FailureStage::Select;
        artifact.error = target.errorMessage();
        artifact.status = target.status();
        recordRunCounters(artifact);
        return artifact;
    }

    PipelineArtifact rest = analyzeTargetStages(target.take());
    rest.imageInfo = unpacked.value().info;
    rest.timings.unpackMs = artifact.timings.unpackMs;
    rest.timings.selectMs = selectMs;
    recordRunCounters(rest);
    return rest;
}

PipelineArtifact
FitsPipeline::analyzeTarget(fw::AnalysisTarget target) const
{
    obs::ScopedTimer pipelineSpan("pipeline");
    PipelineArtifact artifact =
        analyzeTargetStages(std::move(target));
    recordRunCounters(artifact);
    return artifact;
}

PipelineArtifact
FitsPipeline::analyzeTargetStages(fw::AnalysisTarget target) const
{
    PipelineArtifact artifact;
    artifact.target =
        std::make_unique<fw::AnalysisTarget>(std::move(target));
    artifact.binaryName = artifact.target->main.name;
    artifact.numFunctions = artifact.target->main.program.size();
    artifact.binaryBytes = artifact.target->main.byteSize();

    // A library that failed to lift degrades the run: analysis
    // proceeds against what did load, with the gaps on record.
    for (const auto &dep : artifact.target->missingLibraries) {
        artifact.degraded = true;
        artifact.issues.push_back(support::Status::error(
            support::Stage::Select, support::ErrorCode::NotFound,
            "library did not lift: " + dep));
    }

    // Stage 2: behavior representation (Algorithm 1), as three spans:
    // lift (link the images into one view), UCSE (whole-program
    // analysis), and BFV extraction. The linked view and the analysis
    // are retained on the artifact so taint engines can reuse them
    // without re-analyzing the binary.
    {
        obs::ScopedTimer liftTimer("lift");
        artifact.linked = std::make_unique<analysis::LinkedProgram>(
            artifact.target->main, artifact.target->libraries);
        artifact.timings.liftMs = liftTimer.stopMs();
    }
    {
        obs::ScopedTimer ucseTimer("ucse");
        analysis::UcseConfig ucseConfig = config_.behavior.ucse;
        if (config_.budgets.behaviorMs > 0.0) {
            // One deadline for the whole stage, shared by every
            // function's exploration and dataflow pass.
            ucseConfig.deadline =
                support::Deadline::afterMs(config_.budgets.behaviorMs);
        }
        artifact.analysis =
            std::make_unique<analysis::ProgramAnalysis>(
                analysis::ProgramAnalysis::analyze(
                    *artifact.linked, ucseConfig));
        artifact.timings.ucseMs = ucseTimer.stopMs();

        std::size_t expired = 0;
        for (const auto &fa : artifact.analysis->fns) {
            if (fa.ucse.deadlineExpired || fa.flow.deadlineExpired)
                ++expired;
        }
        if (expired > 0) {
            artifact.degraded = true;
            artifact.issues.push_back(support::Status::error(
                support::Stage::Ucse, support::ErrorCode::Timeout,
                "behavior stage budget expired; " +
                    std::to_string(expired) +
                    " function(s) analyzed partially"));
        }
    }
    {
        obs::ScopedTimer bfvTimer("bfv");
        const BehaviorAnalyzer analyzer(config_.behavior);
        artifact.behavior = analyzer.analyze(*artifact.analysis);
        artifact.timings.bfvMs = bfvTimer.stopMs();
    }
    artifact.timings.behaviorMs = artifact.timings.liftMs +
                                  artifact.timings.ucseMs +
                                  artifact.timings.bfvMs;

    // Stage 3: inference (Algorithm 2).
    obs::ScopedTimer inferTimer("infer");
    if (chaos::shouldInject("infer.rank")) {
        artifact.timings.inferMs = inferTimer.stopMs();
        artifact.failureStage =
            PipelineResult::FailureStage::Inference;
        artifact.status = chaos::injectedStatus("infer.rank");
        artifact.error = artifact.status.message();
        return artifact;
    }
    artifact.inference = inferIts(artifact.behavior, config_.infer);
    artifact.timings.inferMs = inferTimer.stopMs();
    artifact.timings.clusterMs = artifact.inference.clusterMs;
    artifact.timings.rankMs = artifact.inference.rankMs;

    if (!artifact.inference.ok()) {
        artifact.failureStage =
            PipelineResult::FailureStage::Inference;
        artifact.error = artifact.inference.error;
        artifact.status = support::Status::error(
            support::Stage::Infer, support::ErrorCode::NotFound,
            artifact.inference.error);
        return artifact;
    }

    support::logInfo(
        "pipeline",
        artifact.binaryName + ": ranked " +
            std::to_string(artifact.inference.ranking.size()) +
            " ITS candidates");

    artifact.ok = true;
    return artifact;
}

} // namespace fits::core
