#include "pipeline.hh"

#include <chrono>

#include "support/logging.hh"

namespace fits::core {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

/** Flatten an artifact into the plain-data result the harness keeps. */
PipelineResult
resultFromArtifact(PipelineArtifact artifact)
{
    PipelineResult result;
    result.ok = artifact.ok;
    result.failureStage = artifact.failureStage;
    result.error = std::move(artifact.error);
    result.imageInfo = artifact.imageInfo;
    result.binaryName = std::move(artifact.binaryName);
    result.numFunctions = artifact.numFunctions;
    result.binaryBytes = artifact.binaryBytes;
    result.behavior = std::move(artifact.behavior);
    result.inference = std::move(artifact.inference);
    result.timings = artifact.timings;
    // The analysis chain borrows the target; it dies with `artifact`
    // right here and is never dereferenced again, so moving the target
    // out from under it is safe.
    if (artifact.target != nullptr)
        result.target = std::move(*artifact.target);
    return result;
}

} // namespace

FitsPipeline::FitsPipeline(PipelineConfig config)
    : config_(std::move(config))
{
}

PipelineResult
FitsPipeline::run(const std::vector<std::uint8_t> &firmware) const
{
    return resultFromArtifact(analyze(firmware));
}

PipelineResult
FitsPipeline::runOnTarget(fw::AnalysisTarget target) const
{
    return resultFromArtifact(analyzeTarget(std::move(target)));
}

PipelineArtifact
FitsPipeline::analyze(const std::vector<std::uint8_t> &firmware) const
{
    PipelineArtifact artifact;

    // Stage 1a: unpack.
    auto t0 = Clock::now();
    auto unpacked = fw::unpackFirmware(firmware);
    artifact.timings.unpackMs = msSince(t0);
    if (!unpacked) {
        artifact.failureStage = PipelineResult::FailureStage::Unpack;
        artifact.error = unpacked.errorMessage();
        return artifact;
    }

    // Stage 1b: select the network binary and resolve libraries.
    t0 = Clock::now();
    auto target = fw::selectAnalysisTarget(unpacked.value().filesystem);
    const double selectMs = msSince(t0);
    if (!target) {
        artifact.imageInfo = unpacked.value().info;
        artifact.timings.selectMs = selectMs;
        artifact.failureStage = PipelineResult::FailureStage::Select;
        artifact.error = target.errorMessage();
        return artifact;
    }

    PipelineArtifact rest = analyzeTarget(target.take());
    rest.imageInfo = unpacked.value().info;
    rest.timings.unpackMs = artifact.timings.unpackMs;
    rest.timings.selectMs = selectMs;
    return rest;
}

PipelineArtifact
FitsPipeline::analyzeTarget(fw::AnalysisTarget target) const
{
    PipelineArtifact artifact;
    artifact.target =
        std::make_unique<fw::AnalysisTarget>(std::move(target));
    artifact.binaryName = artifact.target->main.name;
    artifact.numFunctions = artifact.target->main.program.size();
    artifact.binaryBytes = artifact.target->main.byteSize();

    // Stage 2: behavior representation (Algorithm 1). The linked view
    // and the whole-program analysis are retained on the artifact so
    // taint engines can reuse them without re-analyzing the binary.
    auto t0 = Clock::now();
    artifact.linked = std::make_unique<analysis::LinkedProgram>(
        artifact.target->main, artifact.target->libraries);
    artifact.analysis = std::make_unique<analysis::ProgramAnalysis>(
        analysis::ProgramAnalysis::analyze(*artifact.linked,
                                           config_.behavior.ucse));
    const BehaviorAnalyzer analyzer(config_.behavior);
    artifact.behavior = analyzer.analyze(*artifact.analysis);
    artifact.timings.behaviorMs = msSince(t0);

    // Stage 3: inference (Algorithm 2).
    t0 = Clock::now();
    artifact.inference = inferIts(artifact.behavior, config_.infer);
    artifact.timings.inferMs = msSince(t0);

    if (!artifact.inference.ok()) {
        artifact.failureStage =
            PipelineResult::FailureStage::Inference;
        artifact.error = artifact.inference.error;
        return artifact;
    }

    support::logInfo(
        "pipeline",
        artifact.binaryName + ": ranked " +
            std::to_string(artifact.inference.ranking.size()) +
            " ITS candidates");

    artifact.ok = true;
    return artifact;
}

} // namespace fits::core
