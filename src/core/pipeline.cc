#include "pipeline.hh"

#include "cache/cache.hh"
#include "chaos/chaos.hh"
#include "core/behavior_io.hh"
#include "obs/metrics.hh"
#include "support/logging.hh"
#include "support/strings.hh"

namespace fits::core {

namespace {

/** Flatten an artifact into the plain-data result the harness keeps. */
PipelineResult
resultFromArtifact(PipelineArtifact artifact)
{
    PipelineResult result;
    result.ok = artifact.ok;
    result.failureStage = artifact.failureStage;
    result.error = std::move(artifact.error);
    result.status = std::move(artifact.status);
    result.degraded = artifact.degraded;
    result.issues = std::move(artifact.issues);
    result.imageInfo = artifact.imageInfo;
    result.binaryName = std::move(artifact.binaryName);
    result.numFunctions = artifact.numFunctions;
    result.binaryBytes = artifact.binaryBytes;
    result.behavior = std::move(artifact.behavior);
    result.inference = std::move(artifact.inference);
    result.timings = artifact.timings;
    // The analysis chain borrows the target; it dies with `artifact`
    // right here and is never dereferenced again, so moving the target
    // out from under it is safe.
    if (artifact.target != nullptr)
        result.target = std::move(*artifact.target);
    return result;
}

const char *
failureStageName(PipelineResult::FailureStage stage)
{
    switch (stage) {
      case PipelineResult::FailureStage::None:      return "none";
      case PipelineResult::FailureStage::Unpack:    return "unpack";
      case PipelineResult::FailureStage::Select:    return "select";
      case PipelineResult::FailureStage::Inference: return "inference";
    }
    return "?";
}

void
recordRunCounters(const PipelineArtifact &artifact)
{
    if (!obs::enabled())
        return;
    obs::addCounter("pipeline.runs");
    if (artifact.ok) {
        obs::addCounter("pipeline.ok");
        obs::addCounter("pipeline.functions",
                        artifact.numFunctions);
    } else {
        obs::addCounter(std::string("pipeline.failures.") +
                        failureStageName(artifact.failureStage));
    }
    if (artifact.degraded)
        obs::addCounter("pipeline.degraded");
    if (!artifact.status.isOk()) {
        obs::addCounter(std::string("pipeline.errors.") +
                        support::stageName(artifact.status.stage()));
    }
    for (const auto &issue : artifact.issues) {
        obs::addCounter(std::string("pipeline.errors.") +
                        support::stageName(issue.stage()));
    }
}

} // namespace

FitsPipeline::FitsPipeline(PipelineConfig config)
    : config_(std::move(config))
{
}

PipelineResult
FitsPipeline::run(const std::vector<std::uint8_t> &firmware) const
{
    return resultFromArtifact(analyze(firmware));
}

PipelineResult
FitsPipeline::runOnTarget(fw::AnalysisTarget target) const
{
    return resultFromArtifact(analyzeTarget(std::move(target)));
}

PipelineArtifact
FitsPipeline::analyze(const std::vector<std::uint8_t> &firmware) const
{
    obs::ScopedTimer pipelineSpan("pipeline");
    PipelineArtifact artifact;

    // Behavior-cache fast path: the whole-sample behavior product is
    // keyed by (firmware content hash, behavior-config fingerprint).
    // An active stage budget disqualifies the sample — budget-bound
    // results are timing-dependent and must be neither served nor
    // stored. A hit replays stage 3 on the decoded representation; any
    // decode defect silently falls through to the full pipeline.
    const bool cacheable = config_.behaviorCache &&
                           config_.budgets.behaviorMs <= 0.0 &&
                           !config_.behavior.ucse.deadline.active() &&
                           (cache::memoryUsable() ||
                            cache::diskUsable());
    std::uint64_t cacheKey1 = 0;
    std::uint64_t cacheKey2 = 0;
    if (cacheable) {
        cacheKey1 = support::fnv1a(firmware.data(), firmware.size());
        cacheKey2 = behaviorConfigFingerprint(config_.behavior);
        const auto payload =
            cache::fetchBlob("behavior", cacheKey1, cacheKey2);
        if (payload.has_value()) {
            auto bundle = decodeBehaviorBundle(*payload);
            if (bundle.has_value()) {
                artifact.imageInfo = bundle->imageInfo;
                artifact.binaryName = std::move(bundle->binaryName);
                artifact.numFunctions =
                    static_cast<std::size_t>(bundle->numFunctions);
                artifact.binaryBytes =
                    static_cast<std::size_t>(bundle->binaryBytes);
                artifact.behavior = std::move(bundle->behavior);
                runInferenceStage(artifact);
                recordRunCounters(artifact);
                return artifact;
            }
        }
    }

    // Stage 1a: unpack.
    obs::ScopedTimer unpackTimer("unpack");
    auto unpacked = fw::unpackFirmware(firmware);
    artifact.timings.unpackMs = unpackTimer.stopMs();
    if (!unpacked) {
        artifact.failureStage = PipelineResult::FailureStage::Unpack;
        artifact.error = unpacked.errorMessage();
        artifact.status = unpacked.status();
        recordRunCounters(artifact);
        return artifact;
    }

    // Stage 1b: select the network binary and resolve libraries.
    obs::ScopedTimer selectTimer("select");
    auto target = fw::selectAnalysisTarget(unpacked.value().filesystem);
    const double selectMs = selectTimer.stopMs();
    if (!target) {
        artifact.imageInfo = unpacked.value().info;
        artifact.timings.selectMs = selectMs;
        artifact.failureStage = PipelineResult::FailureStage::Select;
        artifact.error = target.errorMessage();
        artifact.status = target.status();
        recordRunCounters(artifact);
        return artifact;
    }

    PipelineArtifact rest = analyzeTargetStages(target.take());
    rest.imageInfo = unpacked.value().info;
    rest.timings.unpackMs = artifact.timings.unpackMs;
    rest.timings.selectMs = selectMs;

    // Store the behavior product for the next run over these bytes.
    // Degraded samples are excluded: their representation reflects
    // missing libraries or expired budgets, not the firmware.
    if (cacheable && rest.hasAnalysis() && !rest.degraded) {
        BehaviorBundle bundle;
        bundle.imageInfo = rest.imageInfo;
        bundle.binaryName = rest.binaryName;
        bundle.numFunctions = rest.numFunctions;
        bundle.binaryBytes = rest.binaryBytes;
        bundle.behavior = rest.behavior;
        cache::storeBlob("behavior", cacheKey1, cacheKey2,
                         encodeBehaviorBundle(bundle));
    }

    recordRunCounters(rest);
    return rest;
}

PipelineArtifact
FitsPipeline::analyzeTarget(fw::AnalysisTarget target) const
{
    obs::ScopedTimer pipelineSpan("pipeline");
    PipelineArtifact artifact =
        analyzeTargetStages(std::move(target));
    recordRunCounters(artifact);
    return artifact;
}

PipelineArtifact
FitsPipeline::analyzeTargetStages(fw::AnalysisTarget target) const
{
    PipelineArtifact artifact;
    artifact.target =
        std::make_unique<fw::AnalysisTarget>(std::move(target));
    artifact.binaryName = artifact.target->main->name;
    artifact.numFunctions = artifact.target->main->program.size();
    artifact.binaryBytes = artifact.target->main->byteSize();

    // A library that failed to lift degrades the run: analysis
    // proceeds against what did load, with the gaps on record.
    for (const auto &dep : artifact.target->missingLibraries) {
        artifact.degraded = true;
        artifact.issues.push_back(support::Status::error(
            support::Stage::Select, support::ErrorCode::NotFound,
            "library did not lift: " + dep));
    }

    // Stage 2: behavior representation (Algorithm 1), as three spans:
    // lift (link the images into one view), UCSE (whole-program
    // analysis), and BFV extraction. The linked view and the analysis
    // are retained on the artifact so taint engines can reuse them
    // without re-analyzing the binary.
    {
        obs::ScopedTimer liftTimer("lift");
        artifact.linked = std::make_unique<analysis::LinkedProgram>(
            *artifact.target->main, artifact.target->libraries);
        artifact.timings.liftMs = liftTimer.stopMs();
    }
    {
        obs::ScopedTimer ucseTimer("ucse");
        analysis::UcseConfig ucseConfig = config_.behavior.ucse;
        if (config_.budgets.behaviorMs > 0.0) {
            // One deadline for the whole stage, shared by every
            // function's exploration and dataflow pass.
            ucseConfig.deadline =
                support::Deadline::afterMs(config_.budgets.behaviorMs);
        }

        // Per-image analysis products come from the process-wide
        // cache keyed by image identity + config, so a library shared
        // by many samples is UCSE-analyzed once. Concatenating the
        // per-image vectors in [main, libs...] order reproduces the
        // LinkedProgram's FnId order exactly; the cache computes
        // directly (bit-identically) whenever it is bypassed — e.g.
        // under an active deadline or non-cache fault injection.
        std::vector<analysis::FunctionAnalysis> fns;
        fns.reserve(artifact.linked->fnCount());
        const auto appendImage =
            [&](const std::shared_ptr<const bin::BinaryImage> &image) {
                const auto cached =
                    cache::functionAnalyses(image, ucseConfig);
                fns.insert(fns.end(), cached->begin(), cached->end());
            };
        appendImage(artifact.target->main);
        for (const auto &lib : artifact.target->libraries)
            appendImage(lib);
        artifact.analysis =
            std::make_unique<analysis::ProgramAnalysis>(
                analysis::ProgramAnalysis::fromFunctionAnalyses(
                    *artifact.linked, std::move(fns)));
        artifact.timings.ucseMs = ucseTimer.stopMs();

        std::size_t expired = 0;
        for (const auto &fa : artifact.analysis->fns) {
            if (fa.ucse.deadlineExpired || fa.flow.deadlineExpired)
                ++expired;
        }
        if (expired > 0) {
            artifact.degraded = true;
            artifact.issues.push_back(support::Status::error(
                support::Stage::Ucse, support::ErrorCode::Timeout,
                "behavior stage budget expired; " +
                    std::to_string(expired) +
                    " function(s) analyzed partially"));
        }
    }
    {
        obs::ScopedTimer bfvTimer("bfv");
        const BehaviorAnalyzer analyzer(config_.behavior);
        artifact.behavior = analyzer.analyze(*artifact.analysis);
        artifact.timings.bfvMs = bfvTimer.stopMs();
    }
    artifact.timings.behaviorMs = artifact.timings.liftMs +
                                  artifact.timings.ucseMs +
                                  artifact.timings.bfvMs;

    // Stage 3: inference (Algorithm 2).
    runInferenceStage(artifact);
    return artifact;
}

void
FitsPipeline::runInferenceStage(PipelineArtifact &artifact) const
{
    obs::ScopedTimer inferTimer("infer");
    if (chaos::shouldInject("infer.rank")) {
        artifact.timings.inferMs = inferTimer.stopMs();
        artifact.failureStage =
            PipelineResult::FailureStage::Inference;
        artifact.status = chaos::injectedStatus("infer.rank");
        artifact.error = artifact.status.message();
        return;
    }
    artifact.inference = inferIts(artifact.behavior, config_.infer);
    artifact.timings.inferMs = inferTimer.stopMs();
    artifact.timings.clusterMs = artifact.inference.clusterMs;
    artifact.timings.rankMs = artifact.inference.rankMs;

    if (!artifact.inference.ok()) {
        artifact.failureStage =
            PipelineResult::FailureStage::Inference;
        artifact.error = artifact.inference.error;
        artifact.status = support::Status::error(
            support::Stage::Infer, support::ErrorCode::NotFound,
            artifact.inference.error);
        return;
    }

    support::logInfo(
        "pipeline",
        artifact.binaryName + ": ranked " +
            std::to_string(artifact.inference.ranking.size()) +
            " ITS candidates");

    artifact.ok = true;
}

} // namespace fits::core
