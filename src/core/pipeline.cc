#include "pipeline.hh"

#include <chrono>

#include "support/logging.hh"

namespace fits::core {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

} // namespace

FitsPipeline::FitsPipeline(PipelineConfig config)
    : config_(std::move(config))
{
}

PipelineResult
FitsPipeline::run(const std::vector<std::uint8_t> &firmware) const
{
    PipelineResult result;

    // Stage 1a: unpack.
    auto t0 = Clock::now();
    auto unpacked = fw::unpackFirmware(firmware);
    result.timings.unpackMs = msSince(t0);
    if (!unpacked) {
        result.failureStage = PipelineResult::FailureStage::Unpack;
        result.error = unpacked.errorMessage();
        return result;
    }
    result.imageInfo = unpacked.value().info;

    // Stage 1b: select the network binary and resolve libraries.
    t0 = Clock::now();
    auto target = fw::selectAnalysisTarget(unpacked.value().filesystem);
    result.timings.selectMs = msSince(t0);
    if (!target) {
        result.failureStage = PipelineResult::FailureStage::Select;
        result.error = target.errorMessage();
        return result;
    }

    PipelineResult rest = runOnTarget(target.take());
    rest.imageInfo = result.imageInfo;
    rest.timings.unpackMs = result.timings.unpackMs;
    rest.timings.selectMs = result.timings.selectMs;
    return rest;
}

PipelineResult
FitsPipeline::runOnTarget(fw::AnalysisTarget target) const
{
    PipelineResult result;
    result.binaryName = target.main.name;
    result.numFunctions = target.main.program.size();
    result.binaryBytes = target.main.byteSize();

    // Stage 2: behavior representation (Algorithm 1). The linked view
    // borrows from `target`, so it must stay alive until we are done.
    auto t0 = Clock::now();
    const analysis::LinkedProgram linked(target.main, target.libraries);
    const BehaviorAnalyzer analyzer(config_.behavior);
    result.behavior = analyzer.analyze(linked);
    result.timings.behaviorMs = msSince(t0);

    // Stage 3: inference (Algorithm 2).
    t0 = Clock::now();
    result.inference = inferIts(result.behavior, config_.infer);
    result.timings.inferMs = msSince(t0);

    if (!result.inference.ok()) {
        result.failureStage = PipelineResult::FailureStage::Inference;
        result.error = result.inference.error;
        result.target = std::move(target);
        return result;
    }

    support::logInfo(
        "pipeline",
        result.binaryName + ": ranked " +
            std::to_string(result.inference.ranking.size()) +
            " ITS candidates");

    result.ok = true;
    result.target = std::move(target);
    return result;
}

} // namespace fits::core
