#ifndef FITS_CORE_PIPELINE_HH_
#define FITS_CORE_PIPELINE_HH_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/behavior.hh"
#include "core/infer.hh"
#include "firmware/fwimg.hh"
#include "firmware/select.hh"
#include "support/deadline.hh"
#include "support/status.hh"

namespace fits::core {

/**
 * Per-stage wall-clock budgets in milliseconds; 0 = unlimited. The
 * default is taken from FITS_STAGE_TIMEOUT_MS (0 when unset), so an
 * operator can bound every stage of a corpus run with one knob. An
 * expired budget degrades the result (partial data, `degraded` set)
 * rather than failing it.
 */
struct StageBudgets
{
    /** Behavior stage: UCSE exploration + reaching definitions. */
    double behaviorMs = support::envStageTimeoutMs();
    /** Taint engines (consumed by the evaluation harness). */
    double taintMs = support::envStageTimeoutMs();
};

/** Configuration of the whole FITS pipeline. */
struct PipelineConfig
{
    BehaviorAnalyzer::Config behavior;
    InferConfig infer;
    StageBudgets budgets;

    /**
     * Consult the analysis cache's blob tier for whole-sample behavior
     * representations (keyed by firmware content hash + behavior-config
     * fingerprint): a warm hit skips unpack through BFV extraction and
     * goes straight to inference. Off by default because a cached
     * artifact carries no analysis chain — callers that need taint
     * analysis (or the artifact's linked/analysis members) must leave
     * this off. Rankings are bit-identical either way.
     */
    bool behaviorCache = false;
};

/**
 * Wall-clock time of each pipeline stage, in milliseconds. These are
 * plain-data views over the `fits::obs` span timers ("pipeline/…"):
 * the same measurement that lands in the metrics registry is copied
 * here so per-sample results stay self-contained.
 */
struct StageTimings
{
    double unpackMs = 0.0;
    double selectMs = 0.0;
    double behaviorMs = 0.0; ///< lift + UCSE + BFV extraction
    double inferMs = 0.0;    ///< clustering + ranking

    /** Sub-stages of behaviorMs ("pipeline/lift|ucse|bfv" spans). */
    double liftMs = 0.0;
    double ucseMs = 0.0;
    double bfvMs = 0.0;

    /** Sub-stages of inferMs ("pipeline/infer/cluster|rank" spans). */
    double clusterMs = 0.0;
    double rankMs = 0.0;

    double
    totalMs() const
    {
        return unpackMs + selectMs + behaviorMs + inferMs;
    }
};

/**
 * End-to-end result of running FITS on one firmware image. All fields
 * are plain data (no pointers into other fields), so results can be
 * collected in bulk by the evaluation harness.
 */
struct PipelineResult
{
    enum class FailureStage : std::uint8_t {
        None,
        Unpack,    ///< image did not unpack (magic / crypto / corrupt)
        Select,    ///< no network binary found
        Inference, ///< no anchors or no custom functions
    };

    bool ok = false;
    FailureStage failureStage = FailureStage::None;
    std::string error;
    /** Typed form of `error` (stage + code); Ok when the run passed. */
    support::Status status;

    /** The run produced usable but partial output: a library failed to
     * lift, or a stage budget expired mid-analysis. `issues` lists the
     * typed reasons. A degraded run still has ok == true. */
    bool degraded = false;
    std::vector<support::Status> issues;

    fw::ImageInfo imageInfo;
    std::string binaryName;
    std::size_t numFunctions = 0;
    std::size_t binaryBytes = 0;

    /** The selected binary and its libraries, kept for taint analysis. */
    fw::AnalysisTarget target;

    /** Behavior representations of all functions (kept so evaluation
     * variants can re-rank without re-analyzing). */
    BehaviorRepr behavior;

    InferenceResult inference;
    StageTimings timings;
};

/**
 * The reusable per-sample artifact: everything one pipeline pass
 * computes, *including* the whole-program analysis that PipelineResult
 * drops. Taint engines, re-ranking experiments, and combined
 * inference+taint evaluation all consume the same artifact, so a
 * sample is unpacked, selected, and analyzed exactly once.
 *
 * The target/linked/analysis chain borrows downward (ProgramAnalysis
 * borrows LinkedProgram borrows AnalysisTarget); each link is
 * heap-allocated so the artifact can be moved without invalidating the
 * chain. Move-only.
 */
struct PipelineArtifact
{
    bool ok = false;
    PipelineResult::FailureStage failureStage =
        PipelineResult::FailureStage::None;
    std::string error;
    support::Status status;

    /** See PipelineResult::degraded. */
    bool degraded = false;
    std::vector<support::Status> issues;

    fw::ImageInfo imageInfo;
    std::string binaryName;
    std::size_t numFunctions = 0;
    std::size_t binaryBytes = 0;

    std::unique_ptr<fw::AnalysisTarget> target;
    std::unique_ptr<analysis::LinkedProgram> linked;
    std::unique_ptr<analysis::ProgramAnalysis> analysis;

    BehaviorRepr behavior;
    InferenceResult inference;
    StageTimings timings;

    /** True once stage 1 succeeded (analysis chain is populated). */
    bool
    hasAnalysis() const
    {
        return analysis != nullptr;
    }
};

/**
 * The FITS pipeline of Figure 3: unpack the firmware, select the
 * network binary and its libraries, compute behavior representations,
 * and rank custom functions as ITS candidates.
 */
class FitsPipeline
{
  public:
    explicit FitsPipeline(PipelineConfig config = {});

    /** Full run from raw firmware image bytes. */
    PipelineResult run(const std::vector<std::uint8_t> &firmware) const;

    /** Run from an already-selected analysis target (skips stage 1). */
    PipelineResult runOnTarget(fw::AnalysisTarget target) const;

    /** Full run that retains the whole-program analysis for reuse. */
    PipelineArtifact analyze(
        const std::vector<std::uint8_t> &firmware) const;

    /** Artifact run from an already-selected target (skips stage 1). */
    PipelineArtifact analyzeTarget(fw::AnalysisTarget target) const;

    const PipelineConfig &config() const { return config_; }

  private:
    /** Stage 2+3 without the whole-run span (callers own that). */
    PipelineArtifact analyzeTargetStages(fw::AnalysisTarget target)
        const;

    /** Stage 3 on an artifact whose `behavior` is populated; shared by
     * the full path and the behavior-cache hit path. */
    void runInferenceStage(PipelineArtifact &artifact) const;

    PipelineConfig config_;
};

} // namespace fits::core

#endif // FITS_CORE_PIPELINE_HH_
