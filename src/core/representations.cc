#include "representations.hh"

namespace fits::core {

const char *
representationName(Representation representation)
{
    switch (representation) {
      case Representation::Bfv:           return "BFV";
      case Representation::AugmentedCfg:  return "Augmented-CFG";
      case Representation::AttributedCfg: return "Attributed-CFG";
    }
    return "?";
}

namespace {

struct StmtCounts
{
    double stmts = 0;
    double calls = 0;
    double consts = 0;
    double loads = 0;
    double stores = 0;
    double arith = 0;
    double compares = 0;
    double branches = 0;
};

StmtCounts
countStmts(const ir::Function &fn)
{
    StmtCounts c;
    for (const auto &block : fn.blocks) {
        for (const auto &stmt : block.stmts) {
            ++c.stmts;
            switch (stmt.kind) {
              case ir::StmtKind::Call:
                ++c.calls;
                break;
              case ir::StmtKind::Const:
                ++c.consts;
                break;
              case ir::StmtKind::Load:
                ++c.loads;
                break;
              case ir::StmtKind::Store:
                ++c.stores;
                break;
              case ir::StmtKind::Binop:
                if (ir::isComparison(stmt.op))
                    ++c.compares;
                else
                    ++c.arith;
                break;
              case ir::StmtKind::Branch:
                ++c.branches;
                break;
              default:
                break;
            }
        }
    }
    return c;
}

} // namespace

ml::Vec
augmentedCfgVector(const analysis::FunctionAnalysis &fa)
{
    const StmtCounts c = countStmts(*fa.fn);
    const double blocks = static_cast<double>(fa.fn->blocks.size());
    double maxOutDeg = 0.0;
    for (std::size_t b = 0; b < fa.cfg.numBlocks(); ++b) {
        maxOutDeg = std::max(
            maxOutDeg, static_cast<double>(fa.cfg.succs(b).size()));
    }
    return {
        blocks,
        static_cast<double>(fa.cfg.numEdges()),
        static_cast<double>(fa.loops.backEdges.size()),
        c.stmts,
        blocks > 0 ? c.stmts / blocks : 0.0,
        maxOutDeg,
        c.calls,
        c.consts,
        c.loads,
        c.stores,
    };
}

ml::Vec
attributedCfgVector(const analysis::FunctionAnalysis &fa)
{
    const StmtCounts c = countStmts(*fa.fn);
    return {
        c.stmts,
        c.arith,
        c.compares,
        c.calls,
        c.branches,
        c.loads + c.stores,
        c.consts,
        static_cast<double>(fa.fn->blocks.size()),
        static_cast<double>(fa.cfg.numEdges()),
    };
}

} // namespace fits::core
