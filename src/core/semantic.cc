#include "semantic.hh"

#include <algorithm>
#include <utility>
#include <vector>

#include "support/strings.hh"

namespace fits::core {

double
semanticNameScore(const std::string &name)
{
    if (name.empty())
        return 0.5; // stripped: no information

    static const std::vector<std::pair<const char *, double>>
        keywords = {
            // Getter-of-user-input vocabulary.
            {"getvar", 0.30},  {"get", 0.15},    {"fetch", 0.15},
            {"find", 0.10},    {"query", 0.10},  {"var", 0.10},
            {"param", 0.10},   {"arg", 0.05},    {"value", 0.05},
            {"field", 0.10},   {"input", 0.10},  {"req", 0.05},
            {"web", 0.05},     {"http", 0.05},
            // Vocabulary a vendor knows is *not* a user-input getter.
            {"err", -0.20},    {"log", -0.20},   {"print", -0.20},
            {"dbg", -0.15},    {"debug", -0.15}, {"nvram", -0.20},
            {"cfg", -0.15},    {"config", -0.15},{"sys", -0.10},
            {"init", -0.10},   {"free", -0.15},  {"close", -0.10},
        };

    const std::string lower = support::toLower(name);
    double score = 0.5;
    for (const auto &[keyword, weight] : keywords) {
        if (lower.find(keyword) != std::string::npos)
            score += weight;
    }
    return std::clamp(score, 0.0, 1.0);
}

} // namespace fits::core
