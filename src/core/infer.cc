#include "infer.hh"

#include <algorithm>
#include <cmath>

#include "core/semantic.hh"
#include "mlkit/pca.hh"
#include "mlkit/scaling.hh"
#include "obs/metrics.hh"

namespace fits::core {

using analysis::FnId;

const char *
candidateStrategyName(CandidateStrategy strategy)
{
    switch (strategy) {
      case CandidateStrategy::BehaviorClustering:
        return "behavior-clustering";
      case CandidateStrategy::DirectScoring:
        return "direct-scoring";
      case CandidateStrategy::Pca:
        return "pca";
      case CandidateStrategy::Standardize:
        return "standardize";
      case CandidateStrategy::MinMax:
        return "min-max";
    }
    return "?";
}

double
functionComplexity(const Bfv &bfv, const Bfv &maxima)
{
    auto normalized = [](double v, double max) {
        return max > 0.0 ? v / max : 0.0;
    };
    return normalized(bfv.numBlocks, maxima.numBlocks) +
           normalized(bfv.numCallers, maxima.numCallers) +
           normalized(bfv.numLibCalls, maxima.numLibCalls) +
           normalized(bfv.numAnchorCalls, maxima.numAnchorCalls);
}

namespace {

/** Representation choice plus the drop/keep-only feature transform. */
ml::Vec
featureVector(const FunctionRecord &rec, const InferConfig &config)
{
    switch (config.representation) {
      case Representation::AugmentedCfg:
        return rec.augmentedCfg;
      case Representation::AttributedCfg:
        return rec.attributedCfg;
      case Representation::Bfv:
        break;
    }
    if (config.onlyFeature >= 0)
        return rec.bfv.toVectorKeepingOnly(config.onlyFeature);
    if (config.dropFeature >= 0)
        return rec.bfv.toVectorDropping(config.dropFeature);
    return rec.bfv.toVector();
}

/** Per-dimension maxima of the custom functions' raw feature values,
 * for Eq. (1). */
Bfv
customMaxima(const BehaviorRepr &repr)
{
    Bfv maxima;
    for (FnId id : repr.customFns) {
        const Bfv &b = repr.records[id].bfv;
        maxima.numBlocks = std::max(maxima.numBlocks, b.numBlocks);
        maxima.numCallers = std::max(maxima.numCallers, b.numCallers);
        maxima.numLibCalls =
            std::max(maxima.numLibCalls, b.numLibCalls);
        maxima.numAnchorCalls =
            std::max(maxima.numAnchorCalls, b.numAnchorCalls);
    }
    return maxima;
}

} // namespace

InferenceResult
inferIts(const BehaviorRepr &repr, const InferConfig &config)
{
    InferenceResult result;
    result.numCustom = repr.customFns.size();
    result.numAnchors = repr.anchorFns.size();

    if (repr.customFns.empty()) {
        result.error = "no custom functions to rank";
        return result;
    }
    if (repr.anchorFns.empty()) {
        result.error = "no anchor implementations found in the "
                       "dependency libraries";
        return result;
    }

    // Feature matrices under the configured ablation.
    ml::Matrix customVecs;
    customVecs.reserve(repr.customFns.size());
    for (FnId id : repr.customFns)
        customVecs.push_back(featureVector(repr.records[id],
                                           config));
    ml::Matrix anchorVecs;
    anchorVecs.reserve(repr.anchorFns.size());
    for (FnId id : repr.anchorFns)
        anchorVecs.push_back(featureVector(repr.records[id],
                                           config));

    // ---- Candidate selection ---------------------------------------
    // Indices into repr.customFns.
    obs::ScopedTimer clusterTimer("cluster");
    std::vector<std::size_t> candidates;

    // Scoring may happen in a transformed space for the §4.5
    // preprocessing baselines. Non-transforming strategies score the
    // raw feature matrices in place — the transformed matrices are
    // materialized (and owned) only by the branches that need them,
    // instead of copying both full matrices up front.
    ml::Matrix transformedCustom;
    ml::Matrix transformedAnchor;
    const ml::Matrix *scoreCustom = &customVecs;
    const ml::Matrix *scoreAnchor = &anchorVecs;
    const auto scoreTransformed = [&] {
        scoreCustom = &transformedCustom;
        scoreAnchor = &transformedAnchor;
    };

    switch (config.strategy) {
      case CandidateStrategy::BehaviorClustering: {
        // Cluster max-abs-scaled BFVs; DBSCAN noise points become
        // singleton classes so rare behaviours are not discarded
        // outright — the complexity filter decides.
        //
        // Scoring also happens in this normalized space (with the
        // anchor rows scaled by the same per-dimension factors): raw-
        // scale cosine is dominated by whichever count feature is
        // largest — exactly the failure §4.5 attributes to removing
        // the multi-stage strategy, which the DirectScoring branch
        // below reproduces by scoring raw vectors.
        const ml::Vec factors = ml::columnAbsMax(customVecs);
        auto scaleBy = [&factors](const ml::Matrix &m) {
            ml::Matrix out = m;
            for (auto &row : out) {
                for (std::size_t c = 0; c < row.size(); ++c) {
                    if (factors[c] != 0.0)
                        row[c] /= factors[c];
                }
            }
            return out;
        };
        transformedCustom = scaleBy(customVecs);
        transformedAnchor = scaleBy(anchorVecs);
        scoreTransformed();
        const obs::ScopedTimer kernelTimer("kernel.cluster");
        const ml::DbscanResult clusters =
            ml::dbscan(transformedCustom, config.dbscan);
        result.numClusters =
            static_cast<std::size_t>(clusters.numClusters);

        std::vector<std::vector<std::size_t>> classes =
            clusters.allMembers();
        if (config.noiseAsSingletons) {
            for (std::size_t i = 0; i < clusters.labels.size(); ++i) {
                if (clusters.labels[i] == -1)
                    classes.push_back({i});
            }
        }

        // Eq. (1): class complexity = mean member complexity over the
        // normalized bb/caller/lib/anchor dimensions.
        const Bfv maxima = customMaxima(repr);
        std::vector<double> complexity(classes.size(), 0.0);
        double total = 0.0;
        for (std::size_t c = 0; c < classes.size(); ++c) {
            double sum = 0.0;
            for (std::size_t member : classes[c]) {
                const FnId id = repr.customFns[member];
                sum += functionComplexity(repr.records[id].bfv, maxima);
            }
            complexity[c] =
                sum / static_cast<double>(classes[c].size());
            total += complexity[c];
        }
        const double average =
            total / static_cast<double>(classes.size());
        result.avgClassComplexity = average;

        for (std::size_t c = 0; c < classes.size(); ++c) {
            if (complexity[c] > average) {
                for (std::size_t member : classes[c])
                    candidates.push_back(member);
            }
        }
        break;
      }
      case CandidateStrategy::DirectScoring:
        for (std::size_t i = 0; i < repr.customFns.size(); ++i)
            candidates.push_back(i);
        break;
      case CandidateStrategy::Pca: {
        // Fit on the union so both sides live in one component space.
        ml::Matrix all = customVecs;
        all.insert(all.end(), anchorVecs.begin(), anchorVecs.end());
        const ml::PcaModel pca =
            ml::fitPca(all, config.pcaComponents);
        transformedCustom = pca.transformAll(customVecs);
        transformedAnchor = pca.transformAll(anchorVecs);
        scoreTransformed();
        for (std::size_t i = 0; i < repr.customFns.size(); ++i)
            candidates.push_back(i);
        break;
      }
      case CandidateStrategy::Standardize:
      case CandidateStrategy::MinMax: {
        ml::Matrix all = customVecs;
        all.insert(all.end(), anchorVecs.begin(), anchorVecs.end());
        const ml::Matrix scaledAll =
            config.strategy == CandidateStrategy::Standardize
                ? ml::standardize(all)
                : ml::minMaxScale(all);
        transformedCustom.assign(scaledAll.begin(),
                                 scaledAll.begin() +
                                     static_cast<std::ptrdiff_t>(
                                         customVecs.size()));
        transformedAnchor.assign(scaledAll.begin() +
                                     static_cast<std::ptrdiff_t>(
                                         customVecs.size()),
                                 scaledAll.end());
        scoreTransformed();
        for (std::size_t i = 0; i < repr.customFns.size(); ++i)
            candidates.push_back(i);
        break;
      }
    }

    result.numCandidates = candidates.size();
    result.clusterMs = clusterTimer.stopMs();

    // ---- Scoring (Eq. 2): mean similarity to the anchor matrix -----
    obs::ScopedTimer rankTimer("rank");
    const obs::ScopedTimer kernelRankTimer("kernel.rank");
    const ml::Matrix &custom = *scoreCustom;
    const ml::Matrix &anchors = *scoreAnchor;

    // Cosine fast path: norm() is a pure function of one row, so the
    // anchor norms can be hoisted out of the candidate loop and the
    // candidate norm out of the anchor loop. The quotient below uses
    // the exact expression (and zero checks) of cosineSimilarity(),
    // making each addend — and hence every score — bit-identical to
    // the generic path.
    std::vector<double> anchorNorms;
    if (config.scoreMetric == ml::Metric::Cosine) {
        anchorNorms.reserve(anchors.size());
        for (const auto &anchorRow : anchors)
            anchorNorms.push_back(ml::norm(anchorRow));
    }

    std::vector<RankedFunction> ranked;
    ranked.reserve(candidates.size());
    for (std::size_t member : candidates) {
        const FnId id = repr.customFns[member];
        double sum = 0.0;
        if (config.scoreMetric == ml::Metric::Cosine) {
            const ml::Vec &row = custom[member];
            const double rowNorm = ml::norm(row);
            for (std::size_t a = 0; a < anchors.size(); ++a) {
                if (rowNorm == 0.0 || anchorNorms[a] == 0.0)
                    continue; // cosineSimilarity's zero-norm addend
                sum += ml::dot(row, anchors[a]) /
                       (rowNorm * anchorNorms[a]);
            }
        } else {
            for (const auto &anchorRow : anchors)
                sum += ml::similarity(config.scoreMetric,
                                      custom[member], anchorRow);
        }
        RankedFunction rf;
        rf.id = id;
        rf.entry = repr.records[id].entry;
        rf.name = repr.records[id].name;
        rf.score = sum / static_cast<double>(anchors.size());
        if (config.useSymbolNames && !rf.name.empty()) {
            // Vendor mode: blend the symbol-name prior (0.5-neutral).
            rf.score += config.symbolWeight *
                        (semanticNameScore(rf.name) - 0.5);
        }
        ranked.push_back(std::move(rf));
    }

    std::sort(ranked.begin(), ranked.end(),
              [](const RankedFunction &a, const RankedFunction &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.entry < b.entry; // deterministic ties
              });
    if (ranked.size() > config.maxRanked)
        ranked.resize(config.maxRanked);
    result.ranking = std::move(ranked);
    result.rankMs = rankTimer.stopMs();

    return result;
}

} // namespace fits::core
