#ifndef FITS_CORE_ANCHORS_HH_
#define FITS_CORE_ANCHORS_HH_

#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/linked.hh"

namespace fits::core {

/**
 * Anchor functions: standard library functions with memory-operation
 * behaviour (Figure 2 of the paper). FITS identifies them by name in
 * the dynamic symbol table — names of dynamically linked library
 * functions survive stripping — following BootStomp's matching
 * approach.
 */
const std::vector<std::string> &anchorFunctionNames();

/** True if the symbol name denotes an anchor function. */
bool isAnchorName(const std::string &name);

/**
 * Find the anchor implementations available in a linked program: the
 * library functions whose exported name is an anchor name. Their BFVs
 * form the scoring matrix of Eq. (2).
 */
std::vector<analysis::FnId> findAnchorFunctions(
    const analysis::LinkedProgram &linked);

} // namespace fits::core

#endif // FITS_CORE_ANCHORS_HH_
