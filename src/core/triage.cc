#include "triage.hh"

#include <unordered_set>
#include <vector>

#include "core/anchors.hh"
#include "support/strings.hh"

namespace fits::core {

namespace {

bool
isFileOp(const std::string &name)
{
    static const std::unordered_set<std::string> ops = {
        "fopen", "fwrite", "fread", "fprintf", "unlink", "rename",
        "open", "write", "read", "remove",
    };
    return ops.count(name) != 0;
}

bool
isExecOp(const std::string &name)
{
    static const std::unordered_set<std::string> ops = {
        "system", "execve", "execl", "popen", "fork", "vfork",
    };
    return ops.count(name) != 0;
}

bool
isNetOp(const std::string &name)
{
    static const std::unordered_set<std::string> ops = {
        "socket", "connect", "send", "sendto", "recv", "recvfrom",
        "bind", "listen", "accept",
    };
    return ops.count(name) != 0;
}

} // namespace

bool
OperationProfile::sensitive() const
{
    return fileOps > 0 || execOps > 0 || netOps > 0 || dispatch > 0;
}

std::string
OperationProfile::summary() const
{
    std::vector<std::string> parts;
    if (execOps > 0)
        parts.push_back(support::format("exec:%d", execOps));
    if (fileOps > 0)
        parts.push_back(support::format("file:%d", fileOps));
    if (netOps > 0)
        parts.push_back(support::format("net:%d", netOps));
    if (dispatch > 0)
        parts.push_back(support::format("dispatch:%d", dispatch));
    if (memOps > 0)
        parts.push_back(support::format("mem:%d", memOps));
    return parts.empty() ? "none" : support::join(parts, "+");
}

OperationProfile
profileFunction(const analysis::ProgramAnalysis &pa,
                analysis::FnId id)
{
    OperationProfile profile;
    for (std::size_t siteIdx : pa.callGraph.sitesOfCaller(id)) {
        const auto &site = pa.callGraph.sites()[siteIdx];
        if (site.indirect && !site.resolvesToFunction()) {
            ++profile.dispatch;
            continue;
        }
        const std::string &name = site.target.name;
        if (name.empty())
            continue;
        if (isExecOp(name))
            ++profile.execOps;
        if (isFileOp(name))
            ++profile.fileOps;
        if (isNetOp(name))
            ++profile.netOps;
        if (isAnchorName(name))
            ++profile.memOps;
    }
    return profile;
}

} // namespace fits::core
