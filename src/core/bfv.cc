#include "bfv.hh"

namespace fits::core {

const char *
Bfv::featureName(int index)
{
    switch (index) {
      case 0:  return "num-basic-blocks";
      case 1:  return "has-loops";
      case 2:  return "num-callers";
      case 3:  return "num-params";
      case 4:  return "num-anchor-calls";
      case 5:  return "num-lib-calls";
      case 6:  return "params-control-loops";
      case 7:  return "params-control-branches";
      case 8:  return "params-to-anchors";
      case 9:  return "args-have-strings";
      case 10: return "num-distinct-strings";
    }
    return "?";
}

ml::Vec
Bfv::toVector() const
{
    return {
        numBlocks,
        hasLoop ? 1.0 : 0.0,
        numCallers,
        numParams,
        numAnchorCalls,
        numLibCalls,
        paramsControlLoop ? 1.0 : 0.0,
        paramsControlBranch ? 1.0 : 0.0,
        paramsToAnchor ? 1.0 : 0.0,
        argsHaveStrings ? 1.0 : 0.0,
        numDistinctStrings,
    };
}

ml::Vec
Bfv::toVectorDropping(int dropIndex) const
{
    const ml::Vec full = toVector();
    if (dropIndex < 0 || dropIndex >= kNumFeatures)
        return full;
    ml::Vec out;
    out.reserve(full.size() - 1);
    for (int i = 0; i < kNumFeatures; ++i) {
        if (i != dropIndex)
            out.push_back(full[i]);
    }
    return out;
}

ml::Vec
Bfv::toVectorKeepingOnly(int keepIndex) const
{
    const ml::Vec full = toVector();
    if (keepIndex < 0 || keepIndex >= kNumFeatures)
        return full;
    return {full[keepIndex]};
}

} // namespace fits::core
