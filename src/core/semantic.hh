#ifndef FITS_CORE_SEMANTIC_HH_
#define FITS_CORE_SEMANTIC_HH_

#include <string>

namespace fits::core {

/**
 * Symbol-name prior for ITS inference (the paper's Discussion section:
 * "vendors who have access to the source code can leverage more
 * semantic information, such as function names, to improve the
 * performance of FITS").
 *
 * Third-party analysts see stripped binaries and cannot use this; a
 * vendor running FITS on its own unstripped build can. The score is a
 * keyword prior in [0, 1]: 0.5 is neutral, getter-of-user-input
 * vocabulary pushes up, logging/config vocabulary pushes down.
 */
double semanticNameScore(const std::string &name);

} // namespace fits::core

#endif // FITS_CORE_SEMANTIC_HH_
