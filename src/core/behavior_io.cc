#include "behavior_io.hh"

#include <bit>

#include "cache/fingerprint.hh"

namespace fits::core {

namespace {

/** Bumps whenever the layout below (or the meaning of any serialized
 * field) changes; mixed into the config fingerprint so stale disk
 * entries key-miss instead of mis-parsing. */
constexpr std::uint64_t kBundleFormatVersion = 1;

constexpr char kBundleMagic[4] = {'F', 'B', 'B', '1'};

// ---- encoding ------------------------------------------------------

void
putU8(std::string &out, std::uint8_t v)
{
    out.push_back(static_cast<char>(v));
}

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putF64(std::string &out, double v)
{
    putU64(out, std::bit_cast<std::uint64_t>(v));
}

void
putStr(std::string &out, std::string_view s)
{
    putU32(out, static_cast<std::uint32_t>(s.size()));
    out.append(s);
}

void
putVec(std::string &out, const ml::Vec &v)
{
    putU32(out, static_cast<std::uint32_t>(v.size()));
    for (double x : v)
        putF64(out, x);
}

void
putBfv(std::string &out, const Bfv &bfv)
{
    // Table-1 declaration order; any reordering is a format bump.
    putF64(out, bfv.numBlocks);
    putU8(out, bfv.hasLoop ? 1 : 0);
    putF64(out, bfv.numCallers);
    putF64(out, bfv.numParams);
    putF64(out, bfv.numAnchorCalls);
    putF64(out, bfv.numLibCalls);
    putU8(out, bfv.paramsControlLoop ? 1 : 0);
    putU8(out, bfv.paramsControlBranch ? 1 : 0);
    putU8(out, bfv.paramsToAnchor ? 1 : 0);
    putU8(out, bfv.argsHaveStrings ? 1 : 0);
    putF64(out, bfv.numDistinctStrings);
}

// ---- decoding ------------------------------------------------------

struct Cursor
{
    std::string_view data;
    std::size_t pos = 0;
    bool bad = false;

    std::uint8_t
    u8()
    {
        if (bad || data.size() - pos < 1) {
            bad = true;
            return 0;
        }
        return static_cast<unsigned char>(data[pos++]);
    }

    std::uint32_t
    u32()
    {
        if (bad || data.size() - pos < 4) {
            bad = true;
            return 0;
        }
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<std::uint32_t>(
                     static_cast<unsigned char>(data[pos + i]))
                 << (8 * i);
        pos += 4;
        return v;
    }

    std::uint64_t
    u64()
    {
        if (bad || data.size() - pos < 8) {
            bad = true;
            return 0;
        }
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(
                     static_cast<unsigned char>(data[pos + i]))
                 << (8 * i);
        pos += 8;
        return v;
    }

    double
    f64()
    {
        return std::bit_cast<double>(u64());
    }

    std::string
    str()
    {
        const std::uint32_t n = u32();
        if (bad || data.size() - pos < n) {
            bad = true;
            return {};
        }
        std::string s(data.substr(pos, n));
        pos += n;
        return s;
    }

    ml::Vec
    vec()
    {
        const std::uint32_t n = u32();
        // 8 bytes per element: bound before reserving so a corrupt
        // count cannot trigger a huge allocation.
        if (bad || (data.size() - pos) / 8 < n) {
            bad = true;
            return {};
        }
        ml::Vec v;
        v.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i)
            v.push_back(f64());
        return v;
    }

    Bfv
    bfv()
    {
        Bfv b;
        b.numBlocks = f64();
        b.hasLoop = u8() != 0;
        b.numCallers = f64();
        b.numParams = f64();
        b.numAnchorCalls = f64();
        b.numLibCalls = f64();
        b.paramsControlLoop = u8() != 0;
        b.paramsControlBranch = u8() != 0;
        b.paramsToAnchor = u8() != 0;
        b.argsHaveStrings = u8() != 0;
        b.numDistinctStrings = f64();
        return b;
    }
};

} // namespace

std::string
encodeBehaviorBundle(const BehaviorBundle &bundle)
{
    std::string out;
    out.append(kBundleMagic, 4);
    putU32(out, static_cast<std::uint32_t>(kBundleFormatVersion));

    putStr(out, bundle.imageInfo.vendor);
    putStr(out, bundle.imageInfo.product);
    putStr(out, bundle.imageInfo.version);
    putU8(out, static_cast<std::uint8_t>(bundle.imageInfo.encoding));

    putStr(out, bundle.binaryName);
    putU64(out, bundle.numFunctions);
    putU64(out, bundle.binaryBytes);

    const BehaviorRepr &br = bundle.behavior;
    putU32(out, static_cast<std::uint32_t>(br.records.size()));
    for (const FunctionRecord &rec : br.records) {
        putU32(out, rec.id);
        putU64(out, rec.entry);
        putStr(out, rec.name);
        putU8(out, rec.isCustom ? 1 : 0);
        putU8(out, rec.isAnchor ? 1 : 0);
        putBfv(out, rec.bfv);
        putVec(out, rec.augmentedCfg);
        putVec(out, rec.attributedCfg);
    }
    putU32(out, static_cast<std::uint32_t>(br.customFns.size()));
    for (analysis::FnId id : br.customFns)
        putU32(out, id);
    putU32(out, static_cast<std::uint32_t>(br.anchorFns.size()));
    for (analysis::FnId id : br.anchorFns)
        putU32(out, id);
    return out;
}

std::optional<BehaviorBundle>
decodeBehaviorBundle(std::string_view payload)
{
    if (payload.size() < 8 ||
        payload.compare(0, 4, kBundleMagic, 4) != 0)
        return std::nullopt;

    Cursor c{payload, 4};
    if (c.u32() != kBundleFormatVersion)
        return std::nullopt;

    BehaviorBundle bundle;
    bundle.imageInfo.vendor = c.str();
    bundle.imageInfo.product = c.str();
    bundle.imageInfo.version = c.str();
    bundle.imageInfo.encoding = static_cast<fw::Encoding>(c.u8());

    bundle.binaryName = c.str();
    bundle.numFunctions = c.u64();
    bundle.binaryBytes = c.u64();

    const std::uint32_t numRecords = c.u32();
    if (c.bad || (payload.size() - c.pos) / 16 < numRecords)
        return std::nullopt; // 16 = floor of a record's wire size
    bundle.behavior.records.reserve(numRecords);
    for (std::uint32_t i = 0; i < numRecords && !c.bad; ++i) {
        FunctionRecord rec;
        rec.id = c.u32();
        rec.entry = c.u64();
        rec.name = c.str();
        rec.isCustom = c.u8() != 0;
        rec.isAnchor = c.u8() != 0;
        rec.bfv = c.bfv();
        rec.augmentedCfg = c.vec();
        rec.attributedCfg = c.vec();
        bundle.behavior.records.push_back(std::move(rec));
    }

    const std::uint32_t numCustom = c.u32();
    if (c.bad || (payload.size() - c.pos) / 4 < numCustom)
        return std::nullopt;
    bundle.behavior.customFns.reserve(numCustom);
    for (std::uint32_t i = 0; i < numCustom; ++i)
        bundle.behavior.customFns.push_back(c.u32());

    const std::uint32_t numAnchor = c.u32();
    if (c.bad || (payload.size() - c.pos) / 4 < numAnchor)
        return std::nullopt;
    bundle.behavior.anchorFns.reserve(numAnchor);
    for (std::uint32_t i = 0; i < numAnchor; ++i)
        bundle.behavior.anchorFns.push_back(c.u32());

    if (c.bad || c.pos != payload.size())
        return std::nullopt;
    return bundle;
}

std::uint64_t
behaviorConfigFingerprint(const BehaviorAnalyzer::Config &config)
{
    return cache::Fingerprint()
        .mix(kBundleFormatVersion)
        .mix(static_cast<std::uint64_t>(config.ucse.maxSteps))
        .mix(static_cast<std::uint64_t>(config.ucse.maxVisitsPerBlock))
        .mix(static_cast<std::uint64_t>(config.maxStringsPerArg))
        .value();
}

} // namespace fits::core
