#ifndef FITS_CORE_BEHAVIOR_HH_
#define FITS_CORE_BEHAVIOR_HH_

#include <string>
#include <vector>

#include "analysis/program_analysis.hh"
#include "core/bfv.hh"

namespace fits::core {

/** One analyzed function with its behavior representation. */
struct FunctionRecord
{
    analysis::FnId id = 0;
    ir::Addr entry = 0;
    std::string name;
    /** A non-library function of the network binary. */
    bool isCustom = false;
    /** A library implementation of an anchor function. */
    bool isAnchor = false;
    Bfv bfv;

    /** Table-7 comparison representations of the same function. */
    ml::Vec augmentedCfg;
    ml::Vec attributedCfg;
};

/**
 * The behavioral representation BR of Algorithm 1: one BFV per
 * function, with the custom/anchor partition needed by Algorithm 2.
 */
struct BehaviorRepr
{
    /** Indexed by FnId. */
    std::vector<FunctionRecord> records;
    std::vector<analysis::FnId> customFns;
    std::vector<analysis::FnId> anchorFns;

    /** BFV rows of all anchor functions (Eq. 2's Matrix). */
    ml::Matrix anchorMatrix() const;
};

/**
 * Computes behavior representations for every function of a linked
 * program, per Algorithm 1: UCSE-based CFG/CG construction, structural
 * analysis, reaching-definition analysis for the intraprocedural flow
 * features, and call-site analysis with Table-2 backtracking for the
 * interprocedural ones.
 */
class BehaviorAnalyzer
{
  public:
    struct Config
    {
        analysis::UcseConfig ucse;
        /** Cap on backtracked constants classified per argument. */
        std::size_t maxStringsPerArg = 4;
        /**
         * Worker threads for the per-function feature-extraction loop
         * (functions are independent by construction; each worker
         * writes only its own record). 1 = serial. Intentionally NOT
         * tied to FITS_JOBS: corpus-level fan-out already saturates
         * the machine, so intra-sample parallelism is opt-in for
         * single-image workloads (the `fits rank` hot path).
         */
        std::size_t jobs = 1;
    };

    BehaviorAnalyzer();
    explicit BehaviorAnalyzer(Config config);

    /** Analyze from scratch (builds a ProgramAnalysis internally). */
    BehaviorRepr analyze(const analysis::LinkedProgram &linked) const;

    /** Extract BFVs from an existing whole-program analysis (shared
     * with the taint engines to avoid re-analyzing the binary). */
    BehaviorRepr analyze(const analysis::ProgramAnalysis &pa) const;

  private:
    Config config_;
};

} // namespace fits::core

#endif // FITS_CORE_BEHAVIOR_HH_
