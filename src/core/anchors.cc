#include "anchors.hh"

namespace fits::core {

const std::vector<std::string> &
anchorFunctionNames()
{
    static const std::vector<std::string> names = {
        "strcpy",  "strncpy", "strcat",  "strncat", "strcmp",
        "strncmp", "strstr",  "strchr",  "strrchr", "strlen",
        "strtok",  "strdup",  "memcpy",  "memmove", "memcmp",
        "memchr",  "memset",
    };
    return names;
}

bool
isAnchorName(const std::string &name)
{
    static const std::unordered_set<std::string> set(
        anchorFunctionNames().begin(), anchorFunctionNames().end());
    return set.find(name) != set.end();
}

std::vector<analysis::FnId>
findAnchorFunctions(const analysis::LinkedProgram &linked)
{
    std::vector<analysis::FnId> anchors;
    for (analysis::FnId id = 0; id < linked.fnCount(); ++id) {
        if (linked.isMainFn(id))
            continue;
        const auto &ref = linked.fn(id);
        if (!ref.fn->name.empty() && isAnchorName(ref.fn->name))
            anchors.push_back(id);
    }
    return anchors;
}

} // namespace fits::core
