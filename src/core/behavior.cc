#include "behavior.hh"

#include <set>

#include "core/anchors.hh"
#include "core/representations.hh"
#include "support/thread_pool.hh"

namespace fits::core {

using analysis::CallGraph;
using analysis::FnId;
using analysis::FunctionAnalysis;
using analysis::LinkedProgram;
using analysis::ProgramAnalysis;

ml::Matrix
BehaviorRepr::anchorMatrix() const
{
    ml::Matrix m;
    m.reserve(anchorFns.size());
    for (FnId id : anchorFns)
        m.push_back(records[id].bfv.toVector());
    return m;
}

BehaviorAnalyzer::BehaviorAnalyzer()
    : config_()
{
}

BehaviorAnalyzer::BehaviorAnalyzer(Config config)
    : config_(config)
{
}

BehaviorRepr
BehaviorAnalyzer::analyze(const LinkedProgram &linked) const
{
    const ProgramAnalysis pa =
        ProgramAnalysis::analyze(linked, config_.ucse);
    return analyze(pa);
}

BehaviorRepr
BehaviorAnalyzer::analyze(const ProgramAnalysis &pa) const
{
    const LinkedProgram &linked = *pa.linked;
    const CallGraph &cg = pa.callGraph;
    BehaviorRepr repr;
    const std::size_t n = linked.fnCount();

    const auto anchorIds = findAnchorFunctions(linked);
    std::vector<bool> isAnchorFn(n, false);
    for (FnId id : anchorIds)
        isAnchorFn[id] = true;

    repr.records.resize(n);
    // Per-function features only read the shared (immutable) analysis
    // and write the function's own record, so the loop fans out across
    // config_.jobs workers; iteration order does not affect results.
    const auto extractRecord = [&](std::size_t idx) {
        const FnId id = static_cast<FnId>(idx);
        const auto &ref = linked.fn(id);
        const FunctionAnalysis &fa = pa.fn(id);
        FunctionRecord &rec = repr.records[id];
        rec.id = id;
        rec.entry = ref.fn->entry;
        rec.name = ref.fn->name;
        rec.isCustom = linked.isMainFn(id);
        rec.isAnchor = isAnchorFn[id];
        rec.augmentedCfg = augmentedCfgVector(fa);
        rec.attributedCfg = attributedCfgVector(fa);

        Bfv &bfv = rec.bfv;

        // --- Structural features (Table 1, SF 1-6) ------------------
        bfv.numBlocks = static_cast<double>(ref.fn->blocks.size());
        bfv.hasLoop = fa.loops.hasLoop();
        bfv.numCallers = static_cast<double>(cg.callerSiteCount(id));
        bfv.numParams = static_cast<double>(fa.params.count);

        double anchorCalls = 0, libCalls = 0;
        for (std::size_t siteIdx : cg.sitesOfCaller(id)) {
            const auto &site = cg.sites()[siteIdx];
            if (!site.target.name.empty() &&
                isAnchorName(site.target.name)) {
                ++anchorCalls;
            }
            // Library calls: through the PLT, to unresolved imports,
            // or (inside a library) to sibling library functions.
            if (site.isLibraryCall() ||
                (site.resolvesToFunction() &&
                 !linked.isMainFn(site.target.fn))) {
                ++libCalls;
            }
        }
        bfv.numAnchorCalls = anchorCalls;
        bfv.numLibCalls = libCalls;

        // --- Intraprocedural flow features (FF 7-9) -----------------
        bfv.paramsControlLoop = fa.loopDepMask != 0;
        bfv.paramsControlBranch = fa.flow.branchDepMask != 0;

        bool paramsToAnchor = false;
        for (std::size_t siteIdx : cg.sitesOfCaller(id)) {
            const auto &site = cg.sites()[siteIdx];
            if (site.target.name.empty() ||
                !isAnchorName(site.target.name)) {
                continue;
            }
            if (fa.flow.stmtDeps[site.blockIdx][site.stmtIdx] != 0) {
                paramsToAnchor = true;
                break;
            }
        }
        bfv.paramsToAnchor = paramsToAnchor;
    };
    support::ThreadPool::parallelFor(config_.jobs, n, extractRecord);

    // --- Interprocedural flow features (FF 10-11) -------------------
    // For every call site targeting Fn, backtrack the argument
    // registers in the *caller* (Table 2) and classify string
    // constants (PT/MT rule).
    std::vector<std::set<std::string>> strings(n);
    for (const auto &site : cg.sites()) {
        if (!site.resolvesToFunction())
            continue;
        const FnId callee = site.target.fn;
        const FnId caller = site.caller;
        const FunctionAnalysis &callerFa = pa.fn(caller);
        const int calleeParams = pa.fn(callee).params.count;
        if (calleeParams == 0)
            continue;

        const analysis::ArgBacktracker tracker = callerFa.backtracker();
        for (int arg = 0; arg < calleeParams; ++arg) {
            const auto consts =
                tracker.resolveArg(site.blockIdx, site.stmtIdx, arg);
            std::size_t classified = 0;
            for (std::uint64_t value : consts) {
                if (classified >= config_.maxStringsPerArg)
                    break;
                if (auto s = tracker.classifyString(value)) {
                    strings[callee].insert(s->text);
                    ++classified;
                }
            }
        }
    }
    for (FnId id = 0; id < n; ++id) {
        repr.records[id].bfv.argsHaveStrings = !strings[id].empty();
        repr.records[id].bfv.numDistinctStrings =
            static_cast<double>(strings[id].size());
    }

    for (FnId id = 0; id < n; ++id) {
        if (repr.records[id].isCustom)
            repr.customFns.push_back(id);
        if (repr.records[id].isAnchor)
            repr.anchorFns.push_back(id);
    }

    return repr;
}

} // namespace fits::core
