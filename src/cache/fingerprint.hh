#ifndef FITS_CACHE_FINGERPRINT_HH_
#define FITS_CACHE_FINGERPRINT_HH_

#include <bit>
#include <cstdint>
#include <string_view>

namespace fits::cache {

/**
 * Incremental FNV-1a 64-bit hasher for deriving cache keys from
 * analysis configurations and serialized products. Field order is part
 * of the key: mix fields in declaration order and bump the consumer's
 * format version when that order (or a field's meaning) changes.
 *
 * Doubles are mixed by bit pattern, so two configs fingerprint equal
 * iff their fields are bit-identical — exactly the granularity at
 * which cached analysis results are reusable.
 */
class Fingerprint
{
  public:
    Fingerprint &
    mix(std::uint64_t value)
    {
        for (int i = 0; i < 8; ++i)
            step(static_cast<std::uint8_t>(value >> (8 * i)));
        return *this;
    }

    Fingerprint &
    mix(double value)
    {
        return mix(std::bit_cast<std::uint64_t>(value));
    }

    Fingerprint &
    mix(bool value)
    {
        step(value ? 1 : 0);
        return *this;
    }

    Fingerprint &
    mix(std::string_view text)
    {
        mix(static_cast<std::uint64_t>(text.size()));
        for (unsigned char c : text)
            step(c);
        return *this;
    }

    std::uint64_t
    value() const
    {
        return hash_;
    }

  private:
    void
    step(std::uint8_t byte)
    {
        hash_ ^= byte;
        hash_ *= 0x100000001b3ULL;
    }

    std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

} // namespace fits::cache

#endif // FITS_CACHE_FINGERPRINT_HH_
