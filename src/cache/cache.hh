#ifndef FITS_CACHE_CACHE_HH_
#define FITS_CACHE_CACHE_HH_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/function_analysis.hh"
#include "binary/image.hh"
#include "support/result.hh"

namespace fits::cache {

/**
 * Two-level analysis memoization, shared by every pipeline in the
 * process:
 *
 *  - *Memory tier:* content-hash-keyed canonical binary images
 *    (`loadImage`) and per-image function-analysis products
 *    (`functionAnalyses`), plus a byte-keyed blob store for serialized
 *    whole-sample products. A dependency library that appears in N
 *    corpus images is lifted and UCSE-analyzed once; concurrent
 *    CorpusRunner workers that miss on the same key compute it exactly
 *    once (single-flight futures).
 *  - *Disk tier:* an optional persistent blob store under a cache
 *    directory (`FITS_CACHE_DIR` or `configure()`), with a versioned,
 *    checksummed entry format. Any validation failure — bad magic,
 *    version skew, length or checksum mismatch, a short read — quietly
 *    degrades to a miss; repeated `fits corpus` invocations become
 *    incremental.
 *
 * Correctness rules, enforced here and relied on by the determinism
 * test suite:
 *  - Results are bit-identical with and without the cache, and across
 *    hits vs. misses: memory-tier products are shared immutable
 *    objects, and the blob tier stores doubles by bit pattern.
 *  - Caching is bypassed whenever fault injection is armed outside the
 *    "cache." sites (`chaos::rulesConfinedTo`): a fault that fires
 *    inside a cached computation must neither be masked by a hit nor
 *    baked into a stored entry.
 *  - Callers must additionally bypass when a wall-clock deadline is
 *    active (partial results are not reusable); `functionAnalyses`
 *    checks this itself.
 *
 * Eviction: the memory tier is LRU over approximate entry bytes with a
 * configurable budget; the disk tier is never evicted here (entries
 * are invalidated by version/fingerprint and can be deleted freely by
 * the operator).
 */

struct Options
{
    /** In-process tiers (images, analyses, memory blobs). */
    bool memory = true;
    /** Persistent blob tier; requires a non-empty `dir`. */
    bool disk = false;
    /** Disk tier root directory (created on first store). */
    std::string dir;
    /** Approximate memory-tier budget in bytes (LRU beyond this). */
    std::size_t maxBytes = 256ull << 20;
};

/** Replace the active options. Never clears cached entries — disable
 * tiers to stop consulting them, `clearMemory()` to drop them. */
void configure(const Options &options);

Options options();

/** Drop every in-process entry (tests; frees the memory budget). */
void clearMemory();

/** Monotonic counters since the last resetStats(). `bytes` is the
 * current approximate memory-tier footprint (not monotonic). */
struct Stats
{
    std::uint64_t hits = 0;       ///< memory-tier hits (all stores)
    std::uint64_t misses = 0;     ///< memory-tier misses
    std::uint64_t diskHits = 0;   ///< disk-tier hits
    std::uint64_t diskMisses = 0; ///< disk-tier misses
    std::uint64_t diskCorrupt = 0; ///< disk entries rejected as invalid
    std::uint64_t evictions = 0;  ///< memory-tier LRU evictions
    std::uint64_t bytes = 0;      ///< current memory-tier bytes
};

Stats stats();
void resetStats();

/** True when the memory tier may be consulted right now (enabled and
 * fault injection, if armed, is confined to "cache." sites). */
bool memoryUsable();

/** Same gate for the disk tier (also requires a directory). */
bool diskUsable();

/**
 * Load (lift) a binary through the cache: bytes are content-hashed and
 * the parsed image is shared — every caller passing the same bytes
 * gets the same immutable instance, so downstream pointer-keyed
 * structures (LinkedProgram, FunctionAnalysis) line up across samples.
 * On bypass, loads directly. Load failures are returned as-is and
 * never cached.
 */
support::Result<std::shared_ptr<const bin::BinaryImage>>
loadImage(const std::vector<std::uint8_t> &bytes);

/**
 * Per-image function analyses under `config`, keyed by (image
 * identity, config fingerprint) — identity keying makes the cached
 * `FunctionAnalysis::image`/`fn` pointers valid for the caller's
 * LinkedProgram by construction. The returned vector is in
 * `image->program` order (the LinkedProgram's per-image order) and
 * owns a reference to the image. Computes directly (uncached) when the
 * tier is bypassed or `config.deadline` is active.
 */
std::shared_ptr<const std::vector<analysis::FunctionAnalysis>>
functionAnalyses(const std::shared_ptr<const bin::BinaryImage> &image,
                 const analysis::UcseConfig &config);

/** Fingerprint of the UCSE knobs that shape analysis results (the
 * deadline is excluded — deadline-bearing runs bypass the cache). */
std::uint64_t fingerprintOf(const analysis::UcseConfig &config);

/**
 * Fetch a serialized product from the blob store: memory tier first,
 * then disk (a disk hit is promoted to memory). `kind` namespaces
 * independent products ("behavior", ...); keys are caller-derived
 * hashes (content hash + config fingerprint).
 */
std::optional<std::string> fetchBlob(std::string_view kind,
                                     std::uint64_t key1,
                                     std::uint64_t key2);

/** Store a serialized product in every usable tier. Disk write
 * failures (including injected "cache.write" faults) skip the entry
 * silently — the cache is an accelerator, never a correctness
 * dependency. */
void storeBlob(std::string_view kind, std::uint64_t key1,
               std::uint64_t key2, std::string_view payload);

/** Disk path a blob entry would use (tests poke at entries to corrupt
 * them); empty when no directory is configured. */
std::string blobPath(std::string_view kind, std::uint64_t key1,
                     std::uint64_t key2);

} // namespace fits::cache

#endif // FITS_CACHE_CACHE_HH_
