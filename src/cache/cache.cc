#include "cache.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "binary/fbin.hh"
#include "cache/fingerprint.hh"
#include "chaos/chaos.hh"
#include "obs/metrics.hh"
#include "support/strings.hh"

namespace fits::cache {

namespace {

/** Bumps when the meaning of any fingerprint input changes. */
constexpr std::uint64_t kAnalysisFingerprintVersion = 1;

/** Disk entry format version; a mismatch reads as a miss. */
constexpr std::uint32_t kDiskFormatVersion = 1;
constexpr char kDiskMagic[4] = {'F', 'C', 'H', '1'};

// ---- counters (lock-free; the mutex below guards only the maps) ----

struct Counters
{
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> diskHits{0};
    std::atomic<std::uint64_t> diskMisses{0};
    std::atomic<std::uint64_t> diskCorrupt{0};
    std::atomic<std::uint64_t> evictions{0};
};

Counters &
counters()
{
    static auto *c = new Counters;
    return *c;
}

void
bumpHit()
{
    counters().hits.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled())
        obs::addCounter("cache.hits");
}

void
bumpMiss()
{
    counters().misses.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled())
        obs::addCounter("cache.misses");
}

void
bumpDisk(bool hit)
{
    auto &c = hit ? counters().diskHits : counters().diskMisses;
    c.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled()) {
        obs::addCounter(hit ? "cache.disk.hits"
                            : "cache.disk.misses");
    }
}

void
bumpDiskCorrupt()
{
    counters().diskCorrupt.fetch_add(1, std::memory_order_relaxed);
    if (obs::enabled())
        obs::addCounter("cache.disk.corrupt");
}

// ---- memory tier ---------------------------------------------------

/** A lifted image together with one config's analysis products. The
 * two travel as one object so cached `FunctionAnalysis::image`/`fn`
 * pointers can never outlive — or diverge from — their image. */
struct AnalyzedImage
{
    std::shared_ptr<const bin::BinaryImage> image;
    std::vector<analysis::FunctionAnalysis> fns;
};

struct ImageOutcome
{
    std::shared_ptr<const bin::BinaryImage> image; ///< null = failed
    support::Status status;
};

template <typename V>
struct Slot
{
    std::shared_future<V> future;
    std::uint64_t id = 0;    ///< insertion identity (ABA guard)
    std::uint64_t tick = 0;  ///< LRU clock
    std::size_t bytes = 0;   ///< 0 while unresolved (never evicted)
};

struct BlobEntry
{
    std::shared_ptr<const std::string> payload;
    std::uint64_t tick = 0;
    std::size_t bytes = 0;
};

struct AnalysisKey
{
    const void *image = nullptr;
    std::uint64_t fingerprint = 0;

    bool
    operator==(const AnalysisKey &other) const
    {
        return image == other.image &&
               fingerprint == other.fingerprint;
    }
};

struct AnalysisKeyHash
{
    std::size_t
    operator()(const AnalysisKey &key) const
    {
        const auto a =
            reinterpret_cast<std::uintptr_t>(key.image);
        return static_cast<std::size_t>(
            (a * 0x9e3779b97f4a7c15ull) ^ key.fingerprint);
    }
};

struct State
{
    std::mutex mutex;
    Options options;
    std::uint64_t nextId = 0;
    std::uint64_t tick = 0;
    std::size_t totalBytes = 0;
    std::unordered_map<std::uint64_t, Slot<ImageOutcome>> images;
    std::unordered_map<AnalysisKey,
                       Slot<std::shared_ptr<const AnalyzedImage>>,
                       AnalysisKeyHash>
        analyses;
    std::unordered_map<std::string, BlobEntry> blobs;
};

State &
state()
{
    // Leaked singleton (mirrors obs/chaos): cached products may be
    // referenced from worker threads during static destruction.
    static auto *s = new State;
    return *s;
}

/** FITS_CACHE_DIR arms the disk tier at load time. */
struct EnvInit
{
    EnvInit()
    {
        const char *env = std::getenv("FITS_CACHE_DIR");
        if (env == nullptr || *env == '\0')
            return;
        State &s = state();
        const std::lock_guard<std::mutex> lock(s.mutex);
        s.options.disk = true;
        s.options.dir = env;
    }
};

const EnvInit g_envInit;

void
publishBytesLocked(const State &s)
{
    if (obs::enabled())
        obs::setGauge("cache.bytes",
                      static_cast<double>(s.totalBytes));
}

/** Rough footprint of a lifted image: section bytes dominate; code
 * statements and tables ride on fixed per-item estimates. */
std::size_t
approxImageBytes(const bin::BinaryImage &image)
{
    std::size_t total = sizeof(bin::BinaryImage) + 1024;
    total += image.byteSize();
    for (const auto &fn : image.program.functions()) {
        total += 128 + fn.blocks.size() * 64;
        for (const auto &block : fn.blocks)
            total += block.stmts.size() * sizeof(ir::Stmt);
    }
    return total;
}

std::size_t
approxAnalysesBytes(const AnalyzedImage &product)
{
    std::size_t total = sizeof(AnalyzedImage);
    for (const auto &fa : product.fns) {
        total += sizeof(analysis::FunctionAnalysis) + 256;
        std::size_t stmts = 0;
        for (const auto &block : fa.fn->blocks)
            stmts += block.stmts.size();
        // DDG chains and def sets scale with statement count.
        total += fa.fn->blocks.size() * 96 + stmts * 48;
        total += fa.flow.defs.size() * 32;
    }
    return total;
}

/** Evict resolved least-recently-used entries until under budget.
 * In-flight slots (bytes == 0) are skipped: their future is the
 * single-flight rendezvous. */
void
evictLocked(State &s)
{
    while (s.totalBytes > s.options.maxBytes) {
        enum class Kind { None, Image, Analysis, Blob };
        Kind kind = Kind::None;
        std::uint64_t best = ~0ull;
        std::uint64_t imageKey = 0;
        AnalysisKey analysisKey;
        const std::string *blobKey = nullptr;

        for (const auto &[key, slot] : s.images) {
            if (slot.bytes > 0 && slot.tick < best) {
                best = slot.tick;
                kind = Kind::Image;
                imageKey = key;
            }
        }
        for (const auto &[key, slot] : s.analyses) {
            if (slot.bytes > 0 && slot.tick < best) {
                best = slot.tick;
                kind = Kind::Analysis;
                analysisKey = key;
            }
        }
        for (const auto &[key, entry] : s.blobs) {
            if (entry.tick < best) {
                best = entry.tick;
                kind = Kind::Blob;
                blobKey = &key;
            }
        }

        switch (kind) {
          case Kind::None:
            return; // everything left is in-flight
          case Kind::Image: {
            auto it = s.images.find(imageKey);
            s.totalBytes -= it->second.bytes;
            s.images.erase(it);
            break;
          }
          case Kind::Analysis: {
            auto it = s.analyses.find(analysisKey);
            s.totalBytes -= it->second.bytes;
            s.analyses.erase(it);
            break;
          }
          case Kind::Blob: {
            auto it = s.blobs.find(*blobKey);
            s.totalBytes -= it->second.bytes;
            s.blobs.erase(it);
            break;
          }
        }
        counters().evictions.fetch_add(1, std::memory_order_relaxed);
        if (obs::enabled())
            obs::addCounter("cache.evictions");
    }
}

std::string
blobKeyOf(std::string_view kind, std::uint64_t key1,
          std::uint64_t key2)
{
    return std::string(kind) +
           support::format(":%016llx:%016llx",
                           static_cast<unsigned long long>(key1),
                           static_cast<unsigned long long>(key2));
}

// ---- disk tier -----------------------------------------------------

void
putU32(std::string &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

bool
getU32(std::string_view in, std::size_t &pos, std::uint32_t &v)
{
    if (in.size() - pos < 4)
        return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<unsigned char>(in[pos + i]))
             << (8 * i);
    pos += 4;
    return true;
}

bool
getU64(std::string_view in, std::size_t &pos, std::uint64_t &v)
{
    if (in.size() - pos < 8)
        return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(in[pos + i]))
             << (8 * i);
    pos += 8;
    return true;
}

/** Read + validate one disk entry; nullopt on any defect. */
std::optional<std::string>
readDiskEntry(const std::string &path, std::uint64_t key1,
              std::uint64_t key2)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::string raw((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    if (in.bad())
        return std::nullopt;

    const auto corrupt = [] {
        bumpDiskCorrupt();
        return std::nullopt;
    };

    std::size_t pos = 0;
    if (raw.size() < 4 ||
        raw.compare(0, 4, kDiskMagic, 4) != 0)
        return corrupt();
    pos = 4;
    std::uint32_t version = 0;
    std::uint64_t k1 = 0, k2 = 0, size = 0, checksum = 0;
    if (!getU32(raw, pos, version) || !getU64(raw, pos, k1) ||
        !getU64(raw, pos, k2) || !getU64(raw, pos, size) ||
        !getU64(raw, pos, checksum))
        return corrupt();
    if (version != kDiskFormatVersion || k1 != key1 || k2 != key2)
        return corrupt();
    if (raw.size() - pos != size)
        return corrupt();
    std::string payload = raw.substr(pos);
    if (support::fnv1a(payload) != checksum)
        return corrupt();
    return payload;
}

/** Write one disk entry atomically (temp file + rename). Failures are
 * swallowed: a cache store that does not land is just a future miss. */
void
writeDiskEntry(const std::string &dir, const std::string &path,
               std::uint64_t key1, std::uint64_t key2,
               std::string_view payload)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return;

    std::string entry;
    entry.reserve(40 + payload.size());
    entry.append(kDiskMagic, 4);
    putU32(entry, kDiskFormatVersion);
    putU64(entry, key1);
    putU64(entry, key2);
    putU64(entry, payload.size());
    putU64(entry, support::fnv1a(payload));
    entry.append(payload);

    const std::string tmp = path + support::format(
        ".tmp.%llu", static_cast<unsigned long long>(
                         reinterpret_cast<std::uintptr_t>(&entry)));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return;
        out.write(entry.data(),
                  static_cast<std::streamsize>(entry.size()));
        if (!out) {
            out.close();
            std::filesystem::remove(tmp, ec);
            return;
        }
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
}

/** Aliasing view of the product's analysis vector; keeps the image
 * (and the whole product) alive through the returned pointer. */
std::shared_ptr<const std::vector<analysis::FunctionAnalysis>>
fnsView(std::shared_ptr<const AnalyzedImage> product)
{
    const auto *fns = &product->fns;
    return {std::move(product), fns};
}

std::shared_ptr<const AnalyzedImage>
computeAnalyses(const std::shared_ptr<const bin::BinaryImage> &image,
                const analysis::UcseConfig &config)
{
    auto product = std::make_shared<AnalyzedImage>();
    product->image = image;
    product->fns.reserve(image->program.size());
    for (const auto &fn : image->program.functions()) {
        product->fns.push_back(
            analysis::FunctionAnalysis::analyze(*image, fn, config));
    }
    return product;
}

} // namespace

void
configure(const Options &options)
{
    State &s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.options = options;
    evictLocked(s);
    publishBytesLocked(s);
}

Options
options()
{
    State &s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    return s.options;
}

void
clearMemory()
{
    State &s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    s.images.clear();
    s.analyses.clear();
    s.blobs.clear();
    s.totalBytes = 0;
    publishBytesLocked(s);
}

Stats
stats()
{
    Stats out;
    const Counters &c = counters();
    out.hits = c.hits.load(std::memory_order_relaxed);
    out.misses = c.misses.load(std::memory_order_relaxed);
    out.diskHits = c.diskHits.load(std::memory_order_relaxed);
    out.diskMisses = c.diskMisses.load(std::memory_order_relaxed);
    out.diskCorrupt = c.diskCorrupt.load(std::memory_order_relaxed);
    out.evictions = c.evictions.load(std::memory_order_relaxed);
    State &s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    out.bytes = s.totalBytes;
    return out;
}

void
resetStats()
{
    Counters &c = counters();
    c.hits.store(0, std::memory_order_relaxed);
    c.misses.store(0, std::memory_order_relaxed);
    c.diskHits.store(0, std::memory_order_relaxed);
    c.diskMisses.store(0, std::memory_order_relaxed);
    c.diskCorrupt.store(0, std::memory_order_relaxed);
    c.evictions.store(0, std::memory_order_relaxed);
}

bool
memoryUsable()
{
    if (!chaos::rulesConfinedTo("cache."))
        return false;
    State &s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    return s.options.memory;
}

bool
diskUsable()
{
    if (!chaos::rulesConfinedTo("cache."))
        return false;
    State &s = state();
    const std::lock_guard<std::mutex> lock(s.mutex);
    return s.options.disk && !s.options.dir.empty();
}

std::uint64_t
fingerprintOf(const analysis::UcseConfig &config)
{
    return Fingerprint()
        .mix(kAnalysisFingerprintVersion)
        .mix(static_cast<std::uint64_t>(config.maxSteps))
        .mix(static_cast<std::uint64_t>(config.maxVisitsPerBlock))
        .value();
}

support::Result<std::shared_ptr<const bin::BinaryImage>>
loadImage(const std::vector<std::uint8_t> &bytes)
{
    using R = support::Result<std::shared_ptr<const bin::BinaryImage>>;
    if (!memoryUsable()) {
        auto loaded = bin::loadBinary(bytes);
        if (!loaded)
            return R::error(loaded.status());
        return R::ok(std::make_shared<const bin::BinaryImage>(
            loaded.take()));
    }

    const std::uint64_t key = support::fnv1a(bytes.data(),
                                             bytes.size());
    State &s = state();
    std::promise<ImageOutcome> promise;
    std::shared_future<ImageOutcome> future;
    bool owner = false;
    std::uint64_t id = 0;
    {
        const std::lock_guard<std::mutex> lock(s.mutex);
        auto it = s.images.find(key);
        if (it != s.images.end()) {
            it->second.tick = ++s.tick;
            future = it->second.future;
        } else {
            owner = true;
            id = ++s.nextId;
            Slot<ImageOutcome> slot;
            slot.future = promise.get_future().share();
            slot.id = id;
            slot.tick = ++s.tick;
            future = slot.future;
            s.images.emplace(key, std::move(slot));
        }
    }

    if (!owner) {
        // Single-flight join: someone else is (or was) loading these
        // exact bytes; share their outcome.
        const ImageOutcome &outcome = future.get();
        if (outcome.image == nullptr) {
            bumpMiss();
            return R::error(outcome.status);
        }
        bumpHit();
        return R::ok(outcome.image);
    }

    bumpMiss();
    ImageOutcome outcome;
    auto loaded = bin::loadBinary(bytes);
    if (!loaded) {
        outcome.status = loaded.status();
        promise.set_value(outcome);
        // Failures are not cached: drop the slot so a later call with
        // the same (possibly repaired on disk) content retries.
        const std::lock_guard<std::mutex> lock(s.mutex);
        auto it = s.images.find(key);
        if (it != s.images.end() && it->second.id == id)
            s.images.erase(it);
        return R::error(outcome.status);
    }
    outcome.image =
        std::make_shared<const bin::BinaryImage>(loaded.take());
    promise.set_value(outcome);

    const std::size_t entryBytes = approxImageBytes(*outcome.image);
    {
        const std::lock_guard<std::mutex> lock(s.mutex);
        auto it = s.images.find(key);
        if (it != s.images.end() && it->second.id == id) {
            it->second.bytes = entryBytes;
            s.totalBytes += entryBytes;
            evictLocked(s);
        }
        publishBytesLocked(s);
    }
    return R::ok(outcome.image);
}

std::shared_ptr<const std::vector<analysis::FunctionAnalysis>>
functionAnalyses(const std::shared_ptr<const bin::BinaryImage> &image,
                 const analysis::UcseConfig &config)
{
    // An active deadline makes results timing-dependent (partial
    // exploration); never share or store those.
    if (config.deadline.active() || !memoryUsable())
        return fnsView(computeAnalyses(image, config));

    const AnalysisKey key{image.get(), fingerprintOf(config)};
    State &s = state();
    std::promise<std::shared_ptr<const AnalyzedImage>> promise;
    std::shared_future<std::shared_ptr<const AnalyzedImage>> future;
    bool owner = false;
    std::uint64_t id = 0;
    {
        const std::lock_guard<std::mutex> lock(s.mutex);
        auto it = s.analyses.find(key);
        if (it != s.analyses.end()) {
            it->second.tick = ++s.tick;
            future = it->second.future;
        } else {
            owner = true;
            id = ++s.nextId;
            Slot<std::shared_ptr<const AnalyzedImage>> slot;
            slot.future = promise.get_future().share();
            slot.id = id;
            slot.tick = ++s.tick;
            future = slot.future;
            s.analyses.emplace(key, std::move(slot));
        }
    }

    if (!owner) {
        const std::shared_ptr<const AnalyzedImage> &product =
            future.get();
        if (product == nullptr) {
            // The computing thread failed; analyze independently so
            // its exception surfaces in the right worker.
            bumpMiss();
            return fnsView(computeAnalyses(image, config));
        }
        bumpHit();
        return fnsView(product);
    }

    bumpMiss();
    std::shared_ptr<const AnalyzedImage> product;
    try {
        product = computeAnalyses(image, config);
    } catch (...) {
        promise.set_value(nullptr);
        const std::lock_guard<std::mutex> lock(s.mutex);
        auto it = s.analyses.find(key);
        if (it != s.analyses.end() && it->second.id == id)
            s.analyses.erase(it);
        throw;
    }
    promise.set_value(product);

    const std::size_t entryBytes = approxAnalysesBytes(*product);
    {
        const std::lock_guard<std::mutex> lock(s.mutex);
        auto it = s.analyses.find(key);
        if (it != s.analyses.end() && it->second.id == id) {
            it->second.bytes = entryBytes;
            s.totalBytes += entryBytes;
            evictLocked(s);
        }
        publishBytesLocked(s);
    }
    return fnsView(product);
}

std::string
blobPath(std::string_view kind, std::uint64_t key1,
         std::uint64_t key2)
{
    State &s = state();
    std::string dir;
    {
        const std::lock_guard<std::mutex> lock(s.mutex);
        dir = s.options.dir;
    }
    if (dir.empty())
        return {};
    return dir + "/" + std::string(kind) +
           support::format("-%016llx%016llx.fcb",
                           static_cast<unsigned long long>(key1),
                           static_cast<unsigned long long>(key2));
}

std::optional<std::string>
fetchBlob(std::string_view kind, std::uint64_t key1,
          std::uint64_t key2)
{
    const bool memTier = memoryUsable();
    const bool diskTier = diskUsable();
    if (!memTier && !diskTier)
        return std::nullopt;

    const std::string key = blobKeyOf(kind, key1, key2);
    State &s = state();

    if (memTier) {
        std::shared_ptr<const std::string> payload;
        {
            const std::lock_guard<std::mutex> lock(s.mutex);
            auto it = s.blobs.find(key);
            if (it != s.blobs.end()) {
                it->second.tick = ++s.tick;
                payload = it->second.payload;
            }
        }
        if (payload != nullptr) {
            bumpHit();
            return *payload;
        }
        bumpMiss();
    }

    if (!diskTier)
        return std::nullopt;

    // Injected read fault: the entry is unreadable; degrade to a miss.
    if (chaos::shouldInject("cache.read")) {
        bumpDiskCorrupt();
        bumpDisk(false);
        return std::nullopt;
    }

    const std::string path = blobPath(kind, key1, key2);
    auto payload = readDiskEntry(path, key1, key2);
    bumpDisk(payload.has_value());
    if (!payload.has_value())
        return std::nullopt;

    if (memTier) {
        // Promote so the next fetch in this process skips the disk.
        const std::lock_guard<std::mutex> lock(s.mutex);
        auto &entry = s.blobs[key];
        if (entry.payload == nullptr) {
            entry.payload =
                std::make_shared<const std::string>(*payload);
            entry.bytes = key.size() + payload->size() + 64;
            entry.tick = ++s.tick;
            s.totalBytes += entry.bytes;
            evictLocked(s);
            publishBytesLocked(s);
        } else {
            entry.tick = ++s.tick;
        }
    }
    return payload;
}

void
storeBlob(std::string_view kind, std::uint64_t key1,
          std::uint64_t key2, std::string_view payload)
{
    const bool memTier = memoryUsable();
    const bool diskTier = diskUsable();
    if (!memTier && !diskTier)
        return;

    const std::string key = blobKeyOf(kind, key1, key2);
    State &s = state();

    if (memTier) {
        const std::lock_guard<std::mutex> lock(s.mutex);
        auto &entry = s.blobs[key];
        if (entry.payload == nullptr) {
            entry.payload =
                std::make_shared<const std::string>(payload);
            entry.bytes = key.size() + payload.size() + 64;
            entry.tick = ++s.tick;
            s.totalBytes += entry.bytes;
            evictLocked(s);
            publishBytesLocked(s);
        } else {
            // Keys are content-derived, so an existing entry already
            // holds these bytes; just refresh recency.
            entry.tick = ++s.tick;
        }
    }

    if (diskTier) {
        if (chaos::shouldInject("cache.write"))
            return; // injected write fault: entry never lands
        std::string dir;
        {
            const std::lock_guard<std::mutex> lock(s.mutex);
            dir = s.options.dir;
        }
        writeDiskEntry(dir, blobPath(kind, key1, key2), key1, key2,
                       payload);
    }
}

} // namespace fits::cache
