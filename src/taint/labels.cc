#include "labels.hh"

namespace fits::taint {

LabelTable
buildLabelTable(const std::vector<TaintSource> &sources)
{
    LabelTable table;
    std::size_t nextBit = 0;

    auto allocBit = [&nextBit]() {
        const std::size_t bit = nextBit < 63 ? nextBit : 63;
        ++nextBit;
        return std::uint64_t{1} << bit;
    };

    for (std::size_t i = 0; i < sources.size(); ++i) {
        const TaintSource &src = sources[i];
        LabelTable::SourceBits bits;

        bits.userBit = allocBit();
        LabelInfo user;
        user.sourceIndex = i;
        user.systemData = false;
        user.description = (src.kind == TaintSource::Kind::Cts
                                ? "cts:"
                                : "its-user:") +
                           src.name;
        table.labels.push_back(std::move(user));
        table.userMask |= bits.userBit;

        if (src.kind == TaintSource::Kind::Its) {
            bits.systemBit = allocBit();
            LabelInfo sys;
            sys.sourceIndex = i;
            sys.systemData = true;
            sys.description = "its-system:" + src.name;
            table.labels.push_back(std::move(sys));
        }

        table.bySource.push_back(bits);
    }

    return table;
}

} // namespace fits::taint
