#ifndef FITS_TAINT_LABELS_HH_
#define FITS_TAINT_LABELS_HH_

#include "taint/common.hh"

namespace fits::taint {

/**
 * The label bit assignment of one engine run. Each CTS gets one bit;
 * each ITS gets two — one for flows indexed by user-data keys and one
 * for flows indexed by system-data keys (subnet mask, MAC, ...). The
 * split is what makes the §4.3 string filter a pure mask operation.
 */
struct LabelTable
{
    struct SourceBits
    {
        std::uint64_t userBit = 0;
        std::uint64_t systemBit = 0; ///< 0 for CTS sources
    };

    std::vector<LabelInfo> labels;
    std::vector<SourceBits> bySource;
    /** Union of all user-data bits. */
    std::uint64_t userMask = 0;

    bool
    hasUserData(std::uint64_t mask) const
    {
        return (mask & userMask) != 0;
    }
};

/** Assign label bits for the given sources (at most 64 bits total;
 * surplus sources share the last bit, which only coarsens reports). */
LabelTable buildLabelTable(const std::vector<TaintSource> &sources);

} // namespace fits::taint

#endif // FITS_TAINT_LABELS_HH_
