#include "sta.hh"

#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "chaos/chaos.hh"
#include "obs/metrics.hh"
#include "support/deadline.hh"
#include "taint/labels.hh"

namespace fits::taint {

namespace {

using analysis::FnId;
using analysis::ProgramAnalysis;
using ir::Addr;
using ir::Operand;
using ir::Stmt;
using ir::StmtKind;

using Mask = std::uint64_t;

/** Memory cells are keyed per image so overlapping address spaces of
 * the main binary and its libraries do not alias. */
using CellKey = std::uint64_t;

CellKey
cellKey(std::size_t imageIdx, Addr addr)
{
    return (static_cast<CellKey>(imageIdx) << 48) | addr;
}

/** Imports whose primary effect is writing caller memory; the source
 * operands' taint lands in the destination. */
bool
isMemoryWriter(const std::string &name)
{
    static const std::unordered_set<std::string> writers = {
        "strcpy", "strncpy", "strcat", "strncat", "memcpy",
        "memmove", "sprintf", "snprintf",
    };
    return writers.count(name) != 0;
}

/** Per-function interprocedural summary state. */
struct FnState
{
    Mask paramIn[ir::kNumArgRegs] = {0, 0, 0, 0};
    Mask retOut = 0;
    Mask memOut = 0;
};

struct Engine
{
    const ProgramAnalysis &pa;
    const StaEngine::Config &config;
    const std::vector<TaintSource> &sources;
    LabelTable labelTable;

    std::vector<FnState> fnStates;
    std::unordered_map<CellKey, Mask> globalCells;
    Mask globalUnknown = 0;

    /** image pointer -> index (for cell keys). */
    std::unordered_map<const bin::BinaryImage *, std::size_t> imageIdx;

    /** CTS import name -> source index. */
    std::unordered_map<std::string, std::size_t> ctsByName;
    /** ITS FnId -> source index. */
    std::unordered_map<FnId, std::size_t> itsByFn;

    /** Per caller: (block,stmt) -> resolved call-site indices. */
    std::vector<std::unordered_map<std::uint64_t,
                                   std::vector<std::size_t>>>
        siteIndex;

    /** ITS call-site label cache: site index -> seed bit. */
    std::unordered_map<std::size_t, Mask> itsSiteLabel;

    std::size_t steps = 0;
    bool recording = false;
    std::map<std::pair<std::size_t, Addr>, Alert> alerts;

    explicit Engine(const ProgramAnalysis &pa_,
                    const StaEngine::Config &config_,
                    const std::vector<TaintSource> &sources_)
        : pa(pa_), config(config_), sources(sources_)
    {
        labelTable = buildLabelTable(sources);
        fnStates.resize(pa.linked->fnCount());
        siteIndex.resize(pa.linked->fnCount());

        std::size_t nImages = 0;
        for (FnId id = 0; id < pa.linked->fnCount(); ++id) {
            const auto *image = pa.linked->fn(id).image;
            if (imageIdx.emplace(image, nImages).second)
                ++nImages;
        }

        for (std::size_t i = 0; i < sources.size(); ++i) {
            if (sources[i].kind == TaintSource::Kind::Cts) {
                ctsByName[sources[i].name] = i;
            } else {
                auto fnId = pa.linked->fnIdOf(&pa.linked->mainImage(),
                                              sources[i].entry);
                if (fnId)
                    itsByFn[*fnId] = i;
            }
        }

        const auto &sites = pa.callGraph.sites();
        for (std::size_t s = 0; s < sites.size(); ++s) {
            const auto &site = sites[s];
            if (site.indirect && !config.resolveIndirectCalls)
                continue;
            const std::uint64_t key =
                (static_cast<std::uint64_t>(site.blockIdx) << 32) |
                site.stmtIdx;
            siteIndex[site.caller][key].push_back(s);
        }
    }

    std::size_t
    imageOf(FnId id) const
    {
        return imageIdx.at(pa.linked->fn(id).image);
    }

    /** Seed label for an ITS call site: user or system data depending
     * on the key string the caller passes (resolved with the Table-2
     * backtracker, as the paper's string matching does). */
    Mask
    itsLabelAt(std::size_t siteIdx, std::size_t sourceIdx)
    {
        auto it = itsSiteLabel.find(siteIdx);
        if (it != itsSiteLabel.end())
            return it->second;

        const auto &site = pa.callGraph.sites()[siteIdx];
        const auto &callerFa = pa.fn(site.caller);
        const auto tracker = callerFa.backtracker();
        bool system = false;
        for (std::uint64_t value :
             tracker.resolveArg(site.blockIdx, site.stmtIdx, 0)) {
            if (auto s = tracker.classifyString(value)) {
                if (isSystemDataKey(s->text)) {
                    system = true;
                    break;
                }
            }
        }
        const auto &bits = labelTable.bySource[sourceIdx];
        const Mask label =
            system && bits.systemBit != 0 ? bits.systemBit
                                          : bits.userBit;
        itsSiteLabel[siteIdx] = label;
        return label;
    }

    void
    recordAlert(FnId inFn, Addr sinkSite, const SinkSpec &sink,
                Mask mask)
    {
        if (!recording || mask == 0)
            return;
        const auto key = std::make_pair(imageOf(inFn), sinkSite);
        auto it = alerts.find(key);
        if (it == alerts.end()) {
            Alert alert;
            alert.sinkSite = sinkSite;
            alert.sinkName = sink.name;
            alert.vclass = sink.vclass;
            alert.labelMask = mask;
            alert.inFunction = pa.linked->fn(inFn).fn->entry;
            alert.imageIndex = key.first;
            alert.hasUserDataLabel = labelTable.hasUserData(mask);
            alerts.emplace(key, std::move(alert));
        } else {
            it->second.labelMask |= mask;
            it->second.hasUserDataLabel =
                labelTable.hasUserData(it->second.labelMask);
        }
    }

    /**
     * One dataflow pass over a function. Returns true if the
     * function's externally visible summary (retOut/memOut), the
     * global memory state, or any callee's paramIn changed.
     */
    bool
    analyzeFunction(FnId id, std::deque<FnId> &worklist,
                    std::vector<bool> &queued)
    {
        const auto &fa = pa.fn(id);
        const ir::Function &fn = *fa.fn;
        FnState &state = fnStates[id];
        const std::size_t myImage = imageOf(id);

        bool externallyChanged = false;

        std::vector<Mask> tmps(fn.numTmps, 0);
        Mask regs[ir::kNumRegs] = {};
        std::unordered_map<CellKey, Mask> localMem;
        Mask localUnknown = 0;

        // Pending monotone global updates, committed afterwards.
        std::unordered_map<CellKey, Mask> pendingCells;
        Mask pendingUnknown = 0;

        auto maskOf = [&](const Operand &op) -> Mask {
            if (op.isImm())
                return 0;
            return op.tmp < tmps.size() ? tmps[op.tmp] : 0;
        };

        auto enqueue = [&](FnId callee) {
            if (!queued[callee]) {
                queued[callee] = true;
                worklist.push_back(callee);
            }
        };

        for (std::size_t pass = 0; pass < config.passesPerFunction;
             ++pass) {
            for (int i = 0; i < ir::kNumArgRegs; ++i)
                regs[i] |= state.paramIn[i];

            for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
                const auto &block = fn.blocks[b];
                for (std::size_t s = 0; s < block.stmts.size(); ++s) {
                    ++steps;
                    const Stmt &stmt = block.stmts[s];
                    switch (stmt.kind) {
                      case StmtKind::Get:
                        tmps[stmt.dst] = regs[stmt.reg];
                        break;
                      case StmtKind::Put:
                        regs[stmt.reg] = maskOf(stmt.a);
                        break;
                      case StmtKind::Const:
                        tmps[stmt.dst] = 0;
                        break;
                      case StmtKind::Binop:
                        tmps[stmt.dst] =
                            maskOf(stmt.a) | maskOf(stmt.b);
                        break;
                      case StmtKind::Load: {
                        Mask m = maskOf(stmt.a);
                        if (auto addr = fa.consts.valueOf(stmt.a)) {
                            const CellKey key =
                                cellKey(myImage, *addr);
                            auto lm = localMem.find(key);
                            if (lm != localMem.end()) {
                                m |= lm->second;
                            } else {
                                auto gm = globalCells.find(key);
                                if (gm != globalCells.end())
                                    m |= gm->second;
                            }
                            m |= localUnknown | globalUnknown;
                        } else {
                            m |= localUnknown | globalUnknown;
                            for (const auto &cell : localMem)
                                m |= cell.second;
                        }
                        tmps[stmt.dst] = m;
                        break;
                      }
                      case StmtKind::Store: {
                        const Mask value = maskOf(stmt.b);
                        const bool constValue =
                            fa.consts.valueOf(stmt.b).has_value() ||
                            stmt.b.isImm();
                        if (auto addr = fa.consts.valueOf(stmt.a)) {
                            const CellKey key =
                                cellKey(myImage, *addr);
                            // Data sanitization per §3.4: writing a
                            // constant over memory clears its taint
                            // (locally; the global view stays
                            // monotone).
                            localMem[key] = constValue ? 0 : value;
                            if (value != 0)
                                pendingCells[key] |= value;
                        } else {
                            localUnknown |= value;
                            pendingUnknown |= value;
                        }
                        break;
                      }
                      case StmtKind::Call:
                        handleCall(id, b, s, block.stmtAddr(s), fa,
                                   tmps, regs, localMem, localUnknown,
                                   pendingCells, pendingUnknown,
                                   enqueue);
                        break;
                      case StmtKind::Ret:
                        if (regs[ir::kRetReg] != 0 &&
                            (state.retOut | regs[ir::kRetReg]) !=
                                state.retOut) {
                            state.retOut |= regs[ir::kRetReg];
                            externallyChanged = true;
                        }
                        break;
                      default:
                        break;
                    }
                }
            }
        }

        if ((state.memOut | localUnknown) != state.memOut) {
            state.memOut |= localUnknown;
            externallyChanged = true;
        }

        for (const auto &[key, mask] : pendingCells) {
            Mask &cell = globalCells[key];
            if ((cell | mask) != cell) {
                cell |= mask;
                externallyChanged = true;
            }
        }
        if ((globalUnknown | pendingUnknown) != globalUnknown) {
            globalUnknown |= pendingUnknown;
            externallyChanged = true;
        }

        return externallyChanged;
    }

    void
    handleCall(FnId caller, std::size_t blockIdx, std::size_t stmtIdx,
               Addr stmtAddr, const analysis::FunctionAnalysis &fa,
               std::vector<Mask> &tmps, Mask regs[],
               std::unordered_map<CellKey, Mask> &localMem,
               Mask &localUnknown,
               std::unordered_map<CellKey, Mask> &pendingCells,
               Mask &pendingUnknown,
               const std::function<void(FnId)> &enqueue)
    {
        (void)tmps;
        const std::size_t myImage = imageOf(caller);
        const std::uint64_t key =
            (static_cast<std::uint64_t>(blockIdx) << 32) | stmtIdx;
        auto sitesIt = siteIndex[caller].find(key);

        Mask retMask = 0;
        const Mask argUnion =
            regs[0] | regs[1] | regs[2] | regs[3];

        if (sitesIt != siteIndex[caller].end()) {
            for (std::size_t siteIdx : sitesIt->second) {
                const auto &site = pa.callGraph.sites()[siteIdx];
                const std::string &name = site.target.name;

                // Sink check first: the call consumes its arguments.
                if (const SinkSpec *sink = sinkByName(name)) {
                    Mask hit = 0;
                    for (int arg : sink->taintedArgs) {
                        if (arg >= 0 && arg < ir::kNumArgRegs)
                            hit |= regs[arg];
                    }
                    recordAlert(caller, stmtAddr, *sink, hit);
                }

                // CTS seeding.
                auto cts = name.empty() ? ctsByName.end()
                                        : ctsByName.find(name);
                if (cts != ctsByName.end()) {
                    const TaintSource &src = sources[cts->second];
                    const Mask label =
                        labelTable.bySource[cts->second].userBit;
                    if (src.origin == TaintSource::Origin::ReturnValue) {
                        retMask |= label;
                    } else {
                        const int argIdx = src.pointerArg;
                        bool resolved = false;
                        if (argIdx >= 0 && argIdx < ir::kNumArgRegs) {
                            const auto tracker = fa.backtracker();
                            for (std::uint64_t addr :
                                 tracker.resolveArg(blockIdx, stmtIdx,
                                                    argIdx)) {
                                for (Addr off = 0;
                                     off < kPointerSeedRange; ++off) {
                                    const CellKey cell =
                                        cellKey(myImage, addr + off);
                                    localMem[cell] = label;
                                    pendingCells[cell] |= label;
                                }
                                resolved = true;
                            }
                        }
                        if (!resolved) {
                            localUnknown |= label;
                            pendingUnknown |= label;
                        }
                    }
                }

                if (site.resolvesToFunction() &&
                    site.target.library.empty()) {
                    // Custom (same-image) callee: propagate parameter
                    // taint and pick up its summary.
                    const FnId callee = site.target.fn;
                    FnState &cs = fnStates[callee];
                    const int calleeParams =
                        pa.fn(callee).params.count;
                    bool changed = false;
                    for (int i = 0; i < calleeParams; ++i) {
                        if ((cs.paramIn[i] | regs[i]) !=
                            cs.paramIn[i]) {
                            cs.paramIn[i] |= regs[i];
                            changed = true;
                        }
                    }
                    if (changed)
                        enqueue(callee);
                    retMask |= cs.retOut;
                    localUnknown |= cs.memOut;

                    // ITS seeding: the verified taint origin is the
                    // return register of the ITS.
                    auto its = itsByFn.find(callee);
                    if (its != itsByFn.end())
                        retMask |= itsLabelAt(siteIdx, its->second);
                } else if (site.resolvesToFunction()) {
                    // Library function with an implementation: treat
                    // as a model (anchor semantics): taint flows from
                    // arguments to the return value, and for memory
                    // writers into the destination buffer.
                    retMask |= argUnion;
                    if (isMemoryWriter(name)) {
                        const Mask srcMask =
                            regs[1] | regs[2] | regs[3];
                        const auto tracker = fa.backtracker();
                        bool resolved = false;
                        for (std::uint64_t addr :
                             tracker.resolveArg(blockIdx, stmtIdx,
                                                0)) {
                            const CellKey cell =
                                cellKey(myImage, addr);
                            localMem[cell] = srcMask;
                            if (srcMask != 0)
                                pendingCells[cell] |= srcMask;
                            resolved = true;
                        }
                        if (!resolved && srcMask != 0) {
                            localUnknown |= srcMask;
                            pendingUnknown |= srcMask;
                        }
                    }
                } else {
                    // External import without implementation.
                    retMask |= argUnion;
                }
            }
        }

        // The callee clobbers caller-saved registers.
        regs[0] = retMask;
        regs[1] = regs[2] = regs[3] = 0;
    }
};

} // namespace

StaEngine::StaEngine()
    : config_()
{
}

StaEngine::StaEngine(Config config)
    : config_(config)
{
}

TaintReport
StaEngine::run(const ProgramAnalysis &pa,
               const std::vector<TaintSource> &sources) const
{
    obs::ScopedTimer runSpan("taint/sta");

    Engine engine(pa, config_, sources);

    std::deque<FnId> worklist;
    std::vector<bool> queued(pa.linked->fnCount(), true);
    for (FnId id = 0; id < pa.linked->fnCount(); ++id)
        worklist.push_back(id);

    const support::Deadline deadline =
        config_.deadlineMs > 0.0
            ? support::Deadline::afterMs(config_.deadlineMs)
            : support::Deadline::never();
    bool expired = chaos::shouldInject("taint.sta");
    if (expired)
        worklist.clear();

    std::size_t processed = 0;
    const std::size_t cap =
        config_.maxRounds * std::max<std::size_t>(
                                1, pa.linked->fnCount());
    bool exhausted = false;
    while (!worklist.empty()) {
        if (processed++ > cap) {
            exhausted = true;
            break;
        }
        if (deadline.expiredCoarse(processed)) {
            expired = true;
            break;
        }
        const FnId id = worklist.front();
        worklist.pop_front();
        queued[id] = false;
        if (engine.analyzeFunction(id, worklist, queued)) {
            // The function's summary or the global memory state
            // changed: anything may observe it (loads from global
            // cells have no call-graph edge), so requeue everything
            // still unqueued. The round cap bounds the fixpoint.
            for (FnId other = 0; other < pa.linked->fnCount();
                 ++other) {
                if (!queued[other]) {
                    queued[other] = true;
                    worklist.push_back(other);
                }
            }
        }
    }

    const std::size_t fixpointSteps = engine.steps;

    // Collection sweep: state is at (or near) fixpoint; record alerts.
    engine.recording = true;
    std::deque<FnId> dummy;
    std::vector<bool> dummyQueued(pa.linked->fnCount(), true);
    for (FnId id = 0; id < pa.linked->fnCount(); ++id)
        engine.analyzeFunction(id, dummy, dummyQueued);

    TaintReport report;
    report.labels = engine.labelTable.labels;
    for (auto &[key, alert] : engine.alerts)
        report.alerts.push_back(std::move(alert));
    sortAlerts(report.alerts);
    report.steps = engine.steps;
    report.budgetExhausted = exhausted;
    report.deadlineExpired = expired;
    report.analysisMs = runSpan.stopMs();

    if (obs::enabled()) {
        obs::addCounter("taint.sta.runs");
        obs::addCounter("taint.sta.fixpoint_steps", fixpointSteps);
        obs::addCounter("taint.sta.sweep_steps",
                        engine.steps - fixpointSteps);
        obs::addCounter("taint.sta.functions_processed", processed);
        obs::addCounter("taint.sta.alerts", report.alerts.size());
        if (exhausted)
            obs::addCounter("taint.sta.budget_exhausted");
        if (expired)
            obs::addCounter("taint.sta.deadline_expired");
    }
    return report;
}

} // namespace fits::taint
