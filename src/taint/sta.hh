#ifndef FITS_TAINT_STA_HH_
#define FITS_TAINT_STA_HH_

#include "analysis/program_analysis.hh"
#include "taint/common.hh"

namespace fits::taint {

/**
 * STA: the static taint analysis engine of §3.4. A whole-program,
 * summary-propagating dataflow over FIR: taint labels flow through
 * registers, temporaries, addressable memory cells and an "unknown"
 * memory bucket; functions expose parameter-in / return-out / memory-out
 * masks and the engine iterates the call graph to a fixpoint, then
 * sweeps once more to collect sink alerts.
 *
 * Two deliberate precision properties reproduce the paper's findings:
 *  - sanitization is data-only (storing constants over tainted memory
 *    clears it, per §3.4), so validation via *control flow* — bounds
 *    checks guarding a copy — is invisible, which is STA's main
 *    false-positive class;
 *  - the call graph view is name/entry-based like the IDA-Pro CG the
 *    paper built on, so indirect calls are not followed (Karonte's
 *    symbolic execution does follow them), which is STA's main
 *    false-negative class.
 */
class StaEngine
{
  public:
    struct Config
    {
        /** Follow UCSE-resolved indirect call edges. Off by default:
         * the paper's STA is built on an IDA CFG/CG without indirect
         * resolution. */
        bool resolveIndirectCalls = false;

        /** Fixpoint round cap (whole-program sweeps). */
        std::size_t maxRounds = 24;

        /** Per-function layout-order iterations per sweep. */
        std::size_t passesPerFunction = 2;

        /** Wall-clock budget in milliseconds; 0 = unlimited. On
         * expiry the fixpoint stops where it is and the collection
         * sweep still runs, so the report carries partial alerts with
         * deadlineExpired set. */
        double deadlineMs = 0.0;
    };

    StaEngine();
    explicit StaEngine(Config config);

    /** Run taint analysis with the given sources. */
    TaintReport run(const analysis::ProgramAnalysis &pa,
                    const std::vector<TaintSource> &sources) const;

  private:
    Config config_;
};

} // namespace fits::taint

#endif // FITS_TAINT_STA_HH_
