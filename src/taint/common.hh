#ifndef FITS_TAINT_COMMON_HH_
#define FITS_TAINT_COMMON_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "ir/types.hh"

namespace fits::taint {

/** Vulnerability classes detected by the engines (§3.4). */
enum class VulnClass : std::uint8_t { BufferOverflow, CommandInjection };

const char *vulnClassName(VulnClass vclass);

/** A risky library function used as a sink. */
struct SinkSpec
{
    std::string name;
    VulnClass vclass = VulnClass::BufferOverflow;
    /** Argument indices whose taint makes the call dangerous (e.g. the
     * source operand of strcpy, the format inputs of sprintf, the
     * command of system). */
    std::vector<int> taintedArgs;
};

/** The sink set of the paper: buffer-overflow-prone copy/format
 * functions and command-execution functions. */
const std::vector<SinkSpec> &defaultSinks();

/** Lookup a sink spec by symbol name; nullptr if not a sink. */
const SinkSpec *sinkByName(const std::string &name);

/**
 * A taint source: either a classical taint source (CTS — an interface
 * library function such as recv, identified by import name) or an
 * intermediate taint source (ITS — a custom function identified by its
 * entry address in the network binary, with the taint origin produced
 * during ITS verification).
 */
struct TaintSource
{
    enum class Kind : std::uint8_t { Cts, Its };
    enum class Origin : std::uint8_t {
        ReturnValue, ///< the return register carries user data
        PointerArg,  ///< the buffer behind argument `pointerArg` does
    };

    Kind kind = Kind::Cts;
    std::string name;       ///< import name (CTS) / display label (ITS)
    ir::Addr entry = 0;     ///< custom function entry (ITS only)
    Origin origin = Origin::PointerArg;
    int pointerArg = 1;

    static TaintSource cts(std::string name, Origin origin,
                           int pointerArg = 1);
    static TaintSource its(ir::Addr entry, std::string label);
};

/** The CTS set used by the evaluation: interface library functions
 * that receive user data. */
std::vector<TaintSource> classicalTaintSources();

/** Configuration keys FITS treats as system data (subnet masks, MAC
 * addresses, ...). ITS flows indexed by these keys are the
 * false-positive class the STA-ITS string filter removes. */
const std::vector<std::string> &systemDataKeys();

bool isSystemDataKey(const std::string &key);

/**
 * When a source writes user data through a pointer (recv's buffer),
 * the engines taint this many consecutive byte cells starting at the
 * resolved address — the memory-cell equivalent of tainting the whole
 * destination buffer.
 */
constexpr ir::Addr kPointerSeedRange = 64;

/** One taint-analysis report entry: tainted data reached a sink. */
struct Alert
{
    ir::Addr sinkSite = 0; ///< address of the sink call statement
    std::string sinkName;
    VulnClass vclass = VulnClass::BufferOverflow;
    /** Bitmask over the engine's label table (see LabelInfo). */
    std::uint64_t labelMask = 0;
    /** True if at least one contributing label carries user data (as
     * opposed to system data fetched through an ITS). */
    bool hasUserDataLabel = false;
    /** Function (entry address) containing the sink. */
    ir::Addr inFunction = 0;
    /** Index of the image (main binary / library) the sink lives in;
     * part of the deterministic report ordering. */
    std::size_t imageIndex = 0;
};

/**
 * Order alerts by the stable key (image, sink address, sink name,
 * label mask, containing function) so reports — and therefore
 * corpus-level diffs — are reproducible regardless of container
 * iteration order or worker count.
 */
void sortAlerts(std::vector<Alert> &alerts);

/** What one taint label stands for. */
struct LabelInfo
{
    std::size_t sourceIndex = 0; ///< index into the source list
    bool systemData = false;     ///< ITS flow keyed by a system key
    std::string description;
};

/** Output of one engine run. */
struct TaintReport
{
    std::vector<Alert> alerts;
    std::vector<LabelInfo> labels;
    double analysisMs = 0.0;
    std::size_t steps = 0;
    bool budgetExhausted = false;
    /** The wall-clock deadline (or a fault injection) cut the engine
     * short; alerts are a valid partial result, not a full sweep. */
    bool deadlineExpired = false;

    /** Alerts after dropping pure system-data flows (the STA-ITS
     * string-matching filter of §4.3). */
    std::vector<Alert> filteredAlerts() const;
};

} // namespace fits::taint

#endif // FITS_TAINT_COMMON_HH_
