#include "common.hh"

#include <algorithm>
#include <unordered_set>

namespace fits::taint {

const char *
vulnClassName(VulnClass vclass)
{
    switch (vclass) {
      case VulnClass::BufferOverflow:   return "buffer-overflow";
      case VulnClass::CommandInjection: return "command-injection";
    }
    return "?";
}

const std::vector<SinkSpec> &
defaultSinks()
{
    // Argument conventions follow libc: copy functions are dangerous
    // when the *source* operand (arg 1) is tainted, sprintf when any
    // value operand is, command functions when the command string is.
    static const std::vector<SinkSpec> sinks = {
        {"strcpy", VulnClass::BufferOverflow, {1}},
        {"strncpy", VulnClass::BufferOverflow, {1}},
        {"strcat", VulnClass::BufferOverflow, {1}},
        {"strncat", VulnClass::BufferOverflow, {1}},
        {"sprintf", VulnClass::BufferOverflow, {1, 2, 3}},
        {"memcpy", VulnClass::BufferOverflow, {1}},
        {"system", VulnClass::CommandInjection, {0}},
        {"execve", VulnClass::CommandInjection, {0, 1}},
        {"popen", VulnClass::CommandInjection, {0}},
    };
    return sinks;
}

const SinkSpec *
sinkByName(const std::string &name)
{
    for (const auto &sink : defaultSinks()) {
        if (sink.name == name)
            return &sink;
    }
    return nullptr;
}

TaintSource
TaintSource::cts(std::string name, Origin origin, int pointerArg)
{
    TaintSource s;
    s.kind = Kind::Cts;
    s.name = std::move(name);
    s.origin = origin;
    s.pointerArg = pointerArg;
    return s;
}

TaintSource
TaintSource::its(ir::Addr entry, std::string label)
{
    TaintSource s;
    s.kind = Kind::Its;
    s.entry = entry;
    s.name = std::move(label);
    s.origin = Origin::ReturnValue;
    return s;
}

std::vector<TaintSource>
classicalTaintSources()
{
    using O = TaintSource::Origin;
    return {
        TaintSource::cts("recv", O::PointerArg, 1),
        TaintSource::cts("recvfrom", O::PointerArg, 1),
        TaintSource::cts("read", O::PointerArg, 1),
        TaintSource::cts("fgets", O::PointerArg, 0),
        TaintSource::cts("getenv", O::ReturnValue),
        TaintSource::cts("BIO_read", O::PointerArg, 1),
    };
}

const std::vector<std::string> &
systemDataKeys()
{
    static const std::vector<std::string> keys = {
        "lan_mac",     "wan_mac",     "subnet_mask", "lan_gateway",
        "wan_gateway", "lan_ipaddr",  "wan_ipaddr",  "dns_server",
        "fw_version",  "hw_id",       "uptime",      "wan_proto",
        "lan_netmask", "serial_no",
    };
    return keys;
}

bool
isSystemDataKey(const std::string &key)
{
    static const std::unordered_set<std::string> set(
        systemDataKeys().begin(), systemDataKeys().end());
    return set.find(key) != set.end();
}

void
sortAlerts(std::vector<Alert> &alerts)
{
    std::sort(alerts.begin(), alerts.end(),
              [](const Alert &a, const Alert &b) {
                  if (a.imageIndex != b.imageIndex)
                      return a.imageIndex < b.imageIndex;
                  if (a.sinkSite != b.sinkSite)
                      return a.sinkSite < b.sinkSite;
                  if (a.sinkName != b.sinkName)
                      return a.sinkName < b.sinkName;
                  if (a.labelMask != b.labelMask)
                      return a.labelMask < b.labelMask;
                  return a.inFunction < b.inFunction;
              });
}

std::vector<Alert>
TaintReport::filteredAlerts() const
{
    std::vector<Alert> out;
    std::copy_if(alerts.begin(), alerts.end(), std::back_inserter(out),
                 [](const Alert &a) { return a.hasUserDataLabel; });
    return out;
}

} // namespace fits::taint
