#include "karonte.hh"

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "analysis/ucse.hh"
#include "chaos/chaos.hh"
#include "obs/metrics.hh"
#include "support/deadline.hh"
#include "taint/labels.hh"

namespace fits::taint {

namespace {

using analysis::AbsVal;
using analysis::FnId;
using analysis::ProgramAnalysis;
using ir::Addr;
using ir::Operand;
using ir::Stmt;
using ir::StmtKind;

using Mask = std::uint64_t;
using CellKey = std::uint64_t;

CellKey
cellKey(std::size_t imageIdx, Addr addr)
{
    return (static_cast<CellKey>(imageIdx) << 48) | addr;
}

bool
isMemoryWriter(const std::string &name)
{
    static const std::unordered_set<std::string> writers = {
        "strcpy", "strncpy", "strcat", "strncat", "memcpy",
        "memmove", "sprintf", "snprintf",
    };
    return writers.count(name) != 0;
}

/** A symbolic value with a taint mask. */
struct Value
{
    AbsVal val = AbsVal::unknown();
    Mask taint = 0;
    /** True if the value came from an order comparison (CmpLt/Le/...):
     * branching on it bounds the compared data, which is what makes a
     * range check count as sanitization. Equality/null checks do not
     * constrain lengths and must not sanitize. */
    bool fromOrderCmp = false;
};

bool
isOrderComparison(ir::BinOp op)
{
    return op == ir::BinOp::CmpLt || op == ir::BinOp::CmpLe ||
           op == ir::BinOp::CmpGt || op == ir::BinOp::CmpGe;
}

struct Frame
{
    FnId fn = 0;
    std::size_t block = 0;
    std::size_t stmt = 0;
    std::vector<Value> tmps;
};

struct PathState
{
    std::vector<Frame> frames;
    Value regs[ir::kNumRegs];
    /** Path-local memory taint (strong updates along the path). */
    std::map<CellKey, Mask> memTaint;
    Mask memUnknown = 0;
    /** Labels that appeared in a branch condition: constrained data. */
    Mask checkedMask = 0;
};

struct Engine
{
    const ProgramAnalysis &pa;
    const KaronteEngine::Config &config;
    const std::vector<TaintSource> &sources;
    LabelTable labelTable;

    std::unordered_map<const bin::BinaryImage *, std::size_t> imageIdx;
    std::unordered_map<std::string, std::size_t> ctsByName;
    std::unordered_map<FnId, std::size_t> itsByFn;
    std::vector<std::unordered_map<std::uint64_t,
                                   std::vector<std::size_t>>>
        siteIndex;
    std::unordered_map<std::size_t, Mask> itsSiteLabel;

    /** Cross-root (phase-handoff) memory taint, monotone. */
    std::map<CellKey, Mask> committedCells;

    std::map<std::pair<std::size_t, Addr>, Alert> alerts;
    std::size_t totalSteps = 0;
    /** Paths pushed onto an exploration stack (branch and call-target
     * forks) — the path-explosion signal the metrics export. */
    std::size_t forkedPaths = 0;
    /** Current whole-binary budget; raised for the ITS phase. */
    std::size_t budgetLimit = 0;
    bool budgetExhausted = false;
    /** Wall-clock budget shared by both phases. */
    support::Deadline deadline;
    bool deadlineExpired = false;
    std::size_t deadlineTick = 0;

    Engine(const ProgramAnalysis &pa_,
           const KaronteEngine::Config &config_,
           const std::vector<TaintSource> &sources_)
        : pa(pa_), config(config_), sources(sources_)
    {
        labelTable = buildLabelTable(sources);
        siteIndex.resize(pa.linked->fnCount());

        std::size_t nImages = 0;
        for (FnId id = 0; id < pa.linked->fnCount(); ++id) {
            const auto *image = pa.linked->fn(id).image;
            if (imageIdx.emplace(image, nImages).second)
                ++nImages;
        }
        for (std::size_t i = 0; i < sources.size(); ++i) {
            if (sources[i].kind == TaintSource::Kind::Cts) {
                ctsByName[sources[i].name] = i;
            } else {
                auto fnId = pa.linked->fnIdOf(&pa.linked->mainImage(),
                                              sources[i].entry);
                if (fnId)
                    itsByFn[*fnId] = i;
            }
        }
        const auto &sites = pa.callGraph.sites();
        for (std::size_t s = 0; s < sites.size(); ++s) {
            const auto &site = sites[s];
            if (site.indirect && !config.resolveIndirectCalls)
                continue;
            const std::uint64_t key =
                (static_cast<std::uint64_t>(site.blockIdx) << 32) |
                site.stmtIdx;
            siteIndex[site.caller][key].push_back(s);
        }
    }

    std::size_t
    imageOf(FnId id) const
    {
        return imageIdx.at(pa.linked->fn(id).image);
    }

    Mask
    itsLabelAt(std::size_t siteIdx, std::size_t sourceIdx)
    {
        auto it = itsSiteLabel.find(siteIdx);
        if (it != itsSiteLabel.end())
            return it->second;
        const auto &site = pa.callGraph.sites()[siteIdx];
        const auto &callerFa = pa.fn(site.caller);
        const auto tracker = callerFa.backtracker();
        bool system = false;
        for (std::uint64_t value :
             tracker.resolveArg(site.blockIdx, site.stmtIdx, 0)) {
            if (auto s = tracker.classifyString(value)) {
                if (isSystemDataKey(s->text)) {
                    system = true;
                    break;
                }
            }
        }
        const auto &bits = labelTable.bySource[sourceIdx];
        const Mask label = system && bits.systemBit != 0
                               ? bits.systemBit
                               : bits.userBit;
        itsSiteLabel[siteIdx] = label;
        return label;
    }

    void
    recordAlert(FnId inFn, Addr sinkSite, const SinkSpec &sink,
                Mask mask)
    {
        if (mask == 0)
            return;
        const auto key = std::make_pair(imageOf(inFn), sinkSite);
        auto it = alerts.find(key);
        if (it == alerts.end()) {
            Alert alert;
            alert.sinkSite = sinkSite;
            alert.sinkName = sink.name;
            alert.vclass = sink.vclass;
            alert.labelMask = mask;
            alert.inFunction = pa.linked->fn(inFn).fn->entry;
            alert.imageIndex = key.first;
            alert.hasUserDataLabel = labelTable.hasUserData(mask);
            alerts.emplace(key, std::move(alert));
        } else {
            it->second.labelMask |= mask;
            it->second.hasUserDataLabel =
                labelTable.hasUserData(it->second.labelMask);
        }
    }

    void
    commitCell(CellKey key, Mask mask)
    {
        if (mask != 0)
            committedCells[key] |= mask;
    }

    /** Explore all paths from the entry of `root`, respecting both
     * the per-root and the whole-binary step budgets. */
    void
    exploreRoot(FnId root)
    {
        if (deadlineExpired)
            return;
        if (totalSteps >= budgetLimit) {
            budgetExhausted = true;
            return;
        }
        std::size_t steps = 0;
        // Visit caps shared across the root's paths: this is the
        // path-explosion bound (the "analysis time of each data flow"
        // limit the paper describes).
        std::unordered_map<std::uint64_t, std::size_t> visits;

        PathState init;
        Frame frame;
        frame.fn = root;
        frame.tmps.assign(pa.fn(root).fn->numTmps, Value{});
        init.frames.push_back(std::move(frame));
        for (int i = 0; i < ir::kNumArgRegs; ++i) {
            init.regs[i].val = AbsVal::argument(i);
            init.regs[i].taint = 0;
        }
        init.memTaint = committedCells;

        const std::size_t rootBudget = std::min(
            config.maxStepsPerEntry, budgetLimit - totalSteps);

        std::vector<PathState> stack;
        stack.push_back(std::move(init));

        while (!stack.empty()) {
            if (steps >= rootBudget) {
                budgetExhausted = true;
                break;
            }
            PathState path = std::move(stack.back());
            stack.pop_back();
            runPath(std::move(path), stack, visits, steps, rootBudget);
        }
        totalSteps += steps;
    }

    /** Execute one path until it ends or exceeds the budget; forked
     * continuations are pushed onto `stack`. One statement per loop
     * iteration, with the frame re-fetched each time (handleCall may
     * reallocate the frame vector). */
    void
    runPath(PathState path, std::vector<PathState> &stack,
            std::unordered_map<std::uint64_t, std::size_t> &visits,
            std::size_t &steps, std::size_t rootBudget)
    {
        while (!path.frames.empty()) {
            if (steps >= rootBudget) {
                budgetExhausted = true;
                return;
            }
            if (deadline.expiredCoarse(deadlineTick++)) {
                deadlineExpired = true;
                return;
            }
            Frame &frame = path.frames.back();
            const ir::Function &fn = *pa.fn(frame.fn).fn;

            if (frame.block >= fn.blocks.size()) {
                doReturn(path);
                continue;
            }
            const ir::BasicBlock &block = fn.blocks[frame.block];

            if (frame.stmt == 0) {
                const std::uint64_t vkey =
                    (static_cast<std::uint64_t>(frame.fn) << 32) |
                    frame.block;
                if (++visits[vkey] > config.maxVisitsPerBlock)
                    return; // loop bound / path-explosion cutoff
            }

            if (frame.stmt >= block.stmts.size()) {
                // Fell off the block end: implicit fallthrough.
                if (frame.block + 1 < fn.blocks.size()) {
                    frame.block += 1;
                    frame.stmt = 0;
                } else {
                    doReturn(path);
                }
                continue;
            }

            ++steps;
            const Stmt &stmt = block.stmts[frame.stmt];
            const Addr stmtAddr = block.stmtAddr(frame.stmt);

            auto evalOp = [&](const Operand &op) -> Value {
                if (op.isImm())
                    return {AbsVal::constant(op.imm), 0};
                if (op.tmp < path.frames.back().tmps.size())
                    return path.frames.back().tmps[op.tmp];
                return {};
            };

            switch (stmt.kind) {
              case StmtKind::Get:
                frame.tmps[stmt.dst] = path.regs[stmt.reg];
                ++frame.stmt;
                break;
              case StmtKind::Put:
                path.regs[stmt.reg] = evalOp(stmt.a);
                ++frame.stmt;
                break;
              case StmtKind::Const:
                frame.tmps[stmt.dst] = {AbsVal::constant(stmt.a.imm),
                                        0};
                ++frame.stmt;
                break;
              case StmtKind::Binop: {
                const Value a = evalOp(stmt.a);
                const Value b = evalOp(stmt.b);
                Value out;
                if (a.val.isConst() && b.val.isConst()) {
                    out.val = AbsVal::constant(ir::evalBinOp(
                        stmt.op, a.val.value, b.val.value));
                }
                out.taint = a.taint | b.taint;
                out.fromOrderCmp = isOrderComparison(stmt.op);
                frame.tmps[stmt.dst] = out;
                ++frame.stmt;
                break;
              }
              case StmtKind::Load: {
                const Value addr = evalOp(stmt.a);
                Value out;
                out.taint = addr.taint | path.memUnknown;
                if (addr.val.isConst()) {
                    const auto *image = pa.linked->fn(frame.fn).image;
                    // Value folding only from read-only memory:
                    // writable cells change at runtime.
                    if (image->isRodata(addr.val.value)) {
                        if (auto word =
                                image->readWord(addr.val.value)) {
                            out.val = AbsVal::constant(*word);
                        }
                    }
                    auto cell = path.memTaint.find(
                        cellKey(imageOf(frame.fn), addr.val.value));
                    if (cell != path.memTaint.end())
                        out.taint |= cell->second;
                }
                frame.tmps[stmt.dst] = out;
                ++frame.stmt;
                break;
              }
              case StmtKind::Store: {
                const Value addr = evalOp(stmt.a);
                const Value value = evalOp(stmt.b);
                if (addr.val.isConst()) {
                    const CellKey key =
                        cellKey(imageOf(frame.fn), addr.val.value);
                    // Strong update: storing clean data over a tainted
                    // cell sanitizes it on this path.
                    path.memTaint[key] = value.taint;
                    commitCell(key, value.taint);
                } else if (value.taint != 0) {
                    path.memUnknown |= value.taint;
                }
                ++frame.stmt;
                break;
              }
              case StmtKind::Call:
                // Advances the statement cursor itself and may push a
                // callee frame (invalidating `frame`).
                handleCall(path, stack, stmtAddr);
                break;
              case StmtKind::Branch: {
                // Conditional side exit: taken -> target block, not
                // taken -> next statement.
                const Value cond = evalOp(stmt.a);
                if (config.constraintSanitization && cond.fromOrderCmp)
                    path.checkedMask |= cond.taint;
                const std::size_t takenIdx =
                    fn.blockIndexAt(stmt.target);
                const bool haveTaken =
                    takenIdx != ir::Function::npos;
                if (cond.val.isConst()) {
                    // Path-sensitive pruning: constant conditions take
                    // exactly one side, so dead debug paths never
                    // alert.
                    if (cond.val.value != 0) {
                        if (haveTaken) {
                            frame.block = takenIdx;
                            frame.stmt = 0;
                        } else {
                            doReturn(path);
                        }
                    } else {
                        ++frame.stmt;
                    }
                } else {
                    if (haveTaken) {
                        PathState forked = path;
                        forked.frames.back().block = takenIdx;
                        forked.frames.back().stmt = 0;
                        stack.push_back(std::move(forked));
                        ++forkedPaths;
                    }
                    ++frame.stmt;
                }
                break;
              }
              case StmtKind::Jump: {
                std::size_t targetIdx = ir::Function::npos;
                if (!stmt.indirect) {
                    targetIdx = fn.blockIndexAt(stmt.target);
                } else {
                    const Value t = evalOp(stmt.a);
                    if (t.val.isConst())
                        targetIdx = fn.blockIndexAt(t.val.value);
                }
                if (targetIdx != ir::Function::npos) {
                    frame.block = targetIdx;
                    frame.stmt = 0;
                } else {
                    doReturn(path);
                }
                break;
              }
              case StmtKind::Ret:
                doReturn(path);
                break;
            }
        }
    }

    void
    doReturn(PathState &path)
    {
        path.frames.pop_back();
        // r0 keeps the callee's return value/taint; the caller frame
        // resumes at its stored statement index.
    }

    void
    handleCall(PathState &path, std::vector<PathState> &stack,
               Addr stmtAddr)
    {
        (void)stmtAddr;
        Frame &frame = path.frames.back();
        const FnId caller = frame.fn;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(frame.block) << 32) |
            frame.stmt;
        ++frame.stmt; // resume after the call in all outcomes

        auto sitesIt = siteIndex[caller].find(key);
        const Mask argUnion = path.regs[0].taint | path.regs[1].taint |
                              path.regs[2].taint | path.regs[3].taint;

        if (sitesIt == siteIndex[caller].end()) {
            // Unresolved indirect call: the data flow is interrupted.
            path.regs[0] = Value{};
            path.regs[1] = path.regs[2] = path.regs[3] = Value{};
            return;
        }

        // Collect descend targets; model imports/sources in place.
        std::vector<std::pair<std::size_t, FnId>> descendTargets;
        Mask retTaint = 0;
        bool modeled = false;

        for (std::size_t siteIdx : sitesIt->second) {
            const auto &site = pa.callGraph.sites()[siteIdx];
            const std::string &name = site.target.name;

            if (const SinkSpec *sink = sinkByName(name)) {
                Mask hit = 0;
                for (int arg : sink->taintedArgs) {
                    if (arg >= 0 && arg < ir::kNumArgRegs)
                        hit |= path.regs[arg].taint;
                }
                if (config.constraintSanitization)
                    hit &= ~path.checkedMask;
                recordAlert(caller, stmtAddr, *sink, hit);
                modeled = true;
            }

            auto cts = name.empty() ? ctsByName.end()
                                    : ctsByName.find(name);
            if (cts != ctsByName.end()) {
                const TaintSource &src = sources[cts->second];
                const Mask label =
                    labelTable.bySource[cts->second].userBit;
                if (src.origin == TaintSource::Origin::ReturnValue) {
                    retTaint |= label;
                } else if (src.pointerArg >= 0 &&
                           src.pointerArg < ir::kNumArgRegs) {
                    const Value &ptr = path.regs[src.pointerArg];
                    if (ptr.val.isConst()) {
                        for (Addr off = 0; off < kPointerSeedRange;
                             ++off) {
                            const CellKey cell =
                                cellKey(imageOf(caller),
                                        ptr.val.value + off);
                            path.memTaint[cell] |= label;
                            commitCell(cell, label);
                        }
                    } else {
                        path.memUnknown |= label;
                    }
                }
                modeled = true;
                continue;
            }

            if (site.resolvesToFunction() &&
                site.target.library.empty()) {
                const FnId callee = site.target.fn;
                auto its = itsByFn.find(callee);
                if (its != itsByFn.end()) {
                    // ITS source: apply the verified taint origin and
                    // do not descend — this is how ITSs shorten the
                    // explored path.
                    retTaint |= itsLabelAt(siteIdx, its->second);
                    modeled = true;
                    continue;
                }
                if (static_cast<int>(path.frames.size()) <
                    config.maxCallDepth) {
                    descendTargets.emplace_back(siteIdx, callee);
                } else {
                    // Depth budget reached: approximate with a
                    // taint-through model.
                    retTaint |= argUnion;
                    modeled = true;
                }
                continue;
            }

            if (site.resolvesToFunction()) {
                // Library implementation: modeled (anchor semantics).
                retTaint |= argUnion;
                if (isMemoryWriter(name)) {
                    const Mask srcMask = path.regs[1].taint |
                                         path.regs[2].taint |
                                         path.regs[3].taint;
                    const Value &dest = path.regs[0];
                    if (dest.val.isConst()) {
                        const CellKey cell = cellKey(
                            imageOf(caller), dest.val.value);
                        path.memTaint[cell] = srcMask;
                        commitCell(cell, srcMask);
                    } else if (srcMask != 0) {
                        path.memUnknown |= srcMask;
                    }
                }
                modeled = true;
                continue;
            }

            // External import with no implementation.
            retTaint |= argUnion;
            modeled = true;
        }

        if (!descendTargets.empty()) {
            // Fork one path per additional target; descend into the
            // first on this path. Argument registers carry over.
            constexpr std::size_t kMaxTargets = 3;
            for (std::size_t k = 1;
                 k < descendTargets.size() && k < kMaxTargets; ++k) {
                PathState forked = path;
                Frame callee;
                callee.fn = descendTargets[k].second;
                callee.tmps.assign(
                    pa.fn(callee.fn).fn->numTmps, Value{});
                forked.frames.push_back(std::move(callee));
                stack.push_back(std::move(forked));
                ++forkedPaths;
            }
            Frame callee;
            callee.fn = descendTargets[0].second;
            callee.tmps.assign(pa.fn(callee.fn).fn->numTmps, Value{});
            path.frames.push_back(std::move(callee));
            return;
        }

        // Stayed in the caller: apply the modeled return effect.
        path.regs[0].val = AbsVal::unknown();
        path.regs[0].taint = modeled ? retTaint : 0;
        path.regs[1] = path.regs[2] = path.regs[3] = Value{};
    }
};

} // namespace

KaronteEngine::KaronteEngine()
    : config_()
{
}

KaronteEngine::KaronteEngine(Config config)
    : config_(config)
{
}

TaintReport
KaronteEngine::run(const ProgramAnalysis &pa,
                   const std::vector<TaintSource> &sources) const
{
    obs::ScopedTimer runSpan("taint/karonte");
    Engine engine(pa, config_, sources);
    if (config_.deadlineMs > 0.0)
        engine.deadline = support::Deadline::afterMs(config_.deadlineMs);
    if (chaos::shouldInject("taint.karonte"))
        engine.deadlineExpired = true;

    // Roots: functions containing a source site (CTS import call or
    // ITS call) — Karonte's border-function seeding. The CTS-rooted
    // phases run first, to the same budget as a vanilla run, so the
    // ITS-augmented run's findings are a superset of the vanilla
    // run's; ITS roots then spend only the extra budget slice.
    std::set<FnId> queued;
    std::vector<FnId> queue;
    auto enqueue = [&](FnId id) {
        if (queued.insert(id).second)
            queue.push_back(id);
    };

    // Discover tainted-global readers and queue them (Karonte's
    // data-key propagation across shared memory).
    auto queueCellReaders = [&]() {
        for (FnId id = 0; id < pa.linked->fnCount(); ++id) {
            if (!pa.linked->isMainFn(id) || queued.count(id) != 0)
                continue;
            const auto &fa = pa.fn(id);
            const std::size_t img = engine.imageOf(id);
            bool reads = false;
            for (const auto &block : fa.fn->blocks) {
                for (const auto &stmt : block.stmts) {
                    if (stmt.kind != StmtKind::Load)
                        continue;
                    if (auto addr = fa.consts.valueOf(stmt.a)) {
                        auto it = engine.committedCells.find(
                            cellKey(img, *addr));
                        if (it != engine.committedCells.end() &&
                            it->second != 0) {
                            reads = true;
                            break;
                        }
                    }
                }
                if (reads)
                    break;
            }
            if (reads)
                enqueue(id);
        }
    };

    auto runPhases = [&]() {
        std::size_t cursor = 0;
        for (int phase = 0; phase < 4; ++phase) {
            if (cursor == queue.size())
                break;
            while (cursor < queue.size())
                engine.exploreRoot(queue[cursor++]);
            queueCellReaders();
        }
        // Catch roots queued by the last discovery round.
        while (cursor < queue.size())
            engine.exploreRoot(queue[cursor++]);
    };

    // Phase A: CTS roots under the vanilla budget.
    engine.budgetLimit = config_.maxTotalSteps;
    for (const auto &site : pa.callGraph.sites()) {
        if (!pa.linked->isMainFn(site.caller))
            continue;
        const std::string &name = site.target.name;
        if (!name.empty() && engine.ctsByName.count(name) != 0)
            enqueue(site.caller);
    }
    runPhases();
    const std::size_t phaseASteps = engine.totalSteps;
    const bool phaseAExhausted = engine.budgetExhausted;

    // Phase B: ITS roots under the extra budget slice (relative to
    // what phase A actually consumed — the vanilla cap is a limit,
    // not a quota).
    engine.budgetLimit =
        engine.totalSteps + config_.maxItsExtraSteps;
    queue.clear();
    for (const auto &site : pa.callGraph.sites()) {
        if (!pa.linked->isMainFn(site.caller))
            continue;
        if (site.resolvesToFunction() &&
            engine.itsByFn.count(site.target.fn) != 0) {
            enqueue(site.caller);
        }
    }
    runPhases();

    TaintReport report;
    report.labels = engine.labelTable.labels;
    for (auto &[key, alert] : engine.alerts)
        report.alerts.push_back(std::move(alert));
    sortAlerts(report.alerts);
    report.steps = engine.totalSteps;
    report.budgetExhausted = engine.budgetExhausted;
    report.deadlineExpired = engine.deadlineExpired;
    report.analysisMs = runSpan.stopMs();

    if (obs::enabled()) {
        obs::addCounter("taint.karonte.runs");
        obs::addCounter("taint.karonte.phase_a_steps", phaseASteps);
        obs::addCounter("taint.karonte.phase_b_steps",
                        engine.totalSteps - phaseASteps);
        obs::addCounter("taint.karonte.forked_paths",
                        engine.forkedPaths);
        obs::addCounter("taint.karonte.alerts",
                        report.alerts.size());
        if (phaseAExhausted)
            obs::addCounter("taint.karonte.phase_a_exhausted");
        if (engine.budgetExhausted)
            obs::addCounter("taint.karonte.budget_exhausted");
        if (engine.deadlineExpired)
            obs::addCounter("taint.karonte.deadline_expired");
    }
    return report;
}

} // namespace fits::taint
