#ifndef FITS_TAINT_KARONTE_HH_
#define FITS_TAINT_KARONTE_HH_

#include "analysis/program_analysis.hh"
#include "taint/common.hh"

namespace fits::taint {

/**
 * A Karonte-style taint engine: symbolic path exploration from the
 * binary's entry functions, with taint tracked along each explored
 * path. Reproduces the mechanisms that distinguish Karonte in the
 * paper's evaluation:
 *
 *  - *path budget and call-depth limit*: exploration stops at a frame
 *    depth and step budget, so bugs deep in the call chain from a CTS
 *    are missed (the false-negative class the ITSs fix);
 *  - *constraint modeling*: conditions on tainted data constrain it —
 *    a bounds-checked value that later reaches a sink is not reported
 *    (fewer false positives than STA), and branches with constant
 *    conditions are pruned, so dead debug paths do not alert;
 *  - *indirect call resolution*: UCSE-resolved function-pointer
 *    targets are followed, finding handler-table flows STA's
 *    name-based call graph cannot see;
 *  - ITS taint sources are applied at their call sites without
 *    descending into the ITS body, which is exactly how intermediate
 *    sources shorten the analyzed data-flow path.
 */
class KaronteEngine
{
  public:
    struct Config
    {
        /** Maximum call-frame depth from an entry function (the paper
         * observes Karonte reaching depth ~4 on large firmware). */
        int maxCallDepth = 4;

        /** Statement budget per entry function. */
        std::size_t maxStepsPerEntry = 400000;

        /**
         * Whole-binary statement budget for the CTS-rooted
         * exploration — the analysis-time limit the paper describes.
         */
        std::size_t maxTotalSteps = 30000;

        /**
         * Additional budget granted for ITS-rooted exploration. The
         * CTS phases always run first and to the same limit, so the
         * ITS-augmented run finds a strict superset of the vanilla
         * run's bugs — but only as many more as this slice allows,
         * which is why Karonte-ITS gains far fewer bugs than STA-ITS
         * (and why its analysis takes longer, as the paper notes).
         */
        std::size_t maxItsExtraSteps = 60;

        /** Per-(function, block) visit cap across all paths. */
        std::size_t maxVisitsPerBlock = 6;

        /** Treat compare-guarded tainted data as sanitized. */
        bool constraintSanitization = true;

        /** Follow UCSE-resolved indirect call edges. */
        bool resolveIndirectCalls = true;

        /** Wall-clock budget in milliseconds; 0 = unlimited. On
         * expiry exploration stops and the report carries the alerts
         * found so far with deadlineExpired set. */
        double deadlineMs = 0.0;
    };

    KaronteEngine();
    explicit KaronteEngine(Config config);

    TaintReport run(const analysis::ProgramAnalysis &pa,
                    const std::vector<TaintSource> &sources) const;

  private:
    Config config_;
};

} // namespace fits::taint

#endif // FITS_TAINT_KARONTE_HH_
