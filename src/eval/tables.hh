#ifndef FITS_EVAL_TABLES_HH_
#define FITS_EVAL_TABLES_HH_

#include <cstdio>
#include <string>
#include <vector>

namespace fits::eval {

/**
 * Fixed-width text-table printer for the bench binaries, so every
 * reproduced table renders in the same style as the paper's.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    void addRow(std::vector<std::string> cells);

    /** Insert a horizontal separator before the next row. */
    void addSeparator();

    /** Render the table as a newline-terminated string. */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    static const std::string kSeparatorTag_;
};

/** "89%"-style rendering of a [0,1] ratio. */
std::string percent(double ratio);

/** "h:mm"-style rendering of milliseconds. */
std::string hmm(double ms);

/** Fixed-precision rendering. */
std::string fixed(double value, int digits = 1);

} // namespace fits::eval

#endif // FITS_EVAL_TABLES_HH_
