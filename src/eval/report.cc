#include "eval/report.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#include "analysis/program_analysis.hh"
#include "cache/cache.hh"
#include "eval/tables.hh"
#include "firmware/fwimg.hh"
#include "firmware/select.hh"
#include "support/strings.hh"
#include "taint/karonte.hh"
#include "taint/sta.hh"

namespace fits::eval {

namespace {

bool
readFileBytes(const std::string &path,
              std::vector<std::uint8_t> &bytes)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    return true;
}

} // namespace

bool
loadCorpusDir(const std::string &dir,
              std::vector<synth::GeneratedFirmware> *corpus,
              std::string *error)
{
    namespace fs = std::filesystem;
    corpus->clear();

    std::error_code ec;
    const fs::file_status st = fs::status(dir, ec);
    if (ec || st.type() == fs::file_type::not_found) {
        *error = support::format("bad --dir %s: no such directory\n",
                                 dir.c_str());
        return false;
    }
    if (st.type() != fs::file_type::directory) {
        *error = support::format("bad --dir %s: not a directory\n",
                                 dir.c_str());
        return false;
    }

    std::vector<fs::path> paths;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".fwimg")
            paths.push_back(entry.path());
    }
    if (ec) {
        *error = support::format("bad --dir %s: %s\n", dir.c_str(),
                                 ec.message().c_str());
        return false;
    }
    std::sort(paths.begin(), paths.end());

    corpus->reserve(paths.size());
    for (const auto &path : paths) {
        synth::GeneratedFirmware fw;
        fw.spec.name = path.filename().string();
        if (!readFileBytes(path.string(), fw.bytes)) {
            std::fprintf(stderr, "cannot read %s, skipping\n",
                         path.string().c_str());
            continue;
        }
        corpus->push_back(std::move(fw));
    }
    return true;
}

CorpusReport
runCorpusReport(const CorpusOptions &options)
{
    CorpusReport report;

    std::vector<synth::GeneratedFirmware> corpus;
    if (options.dir.empty()) {
        corpus = synth::generateStandardCorpus();
    } else if (!loadCorpusDir(options.dir, &corpus, &report.error)) {
        return report;
    }
    if (corpus.empty()) {
        report.error = support::format(
            "no corpus samples%s%s\n",
            options.dir.empty() ? "" : " under ",
            options.dir.c_str());
        return report;
    }

    CorpusRunner::Config config;
    config.jobs = options.jobs;
    config.cache = options.cache;
    config.pipeline = options.pipeline;
    const CorpusRunner runner(config);

    report.ok = true;
    report.samples = corpus.size();
    report.jobs = runner.jobs();
    report.header = support::format(
        "evaluating %zu samples with %zu worker threads...\n\n",
        corpus.size(), runner.jobs());
    if (options.onHeader)
        options.onHeader(report.header);

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<CorpusRunner::FullOutcome> outcomes;
    if (options.taint) {
        outcomes = runner.runFull(corpus);
    } else {
        auto inference = runner.runInference(corpus);
        outcomes.resize(inference.size());
        for (std::size_t i = 0; i < inference.size(); ++i)
            outcomes[i].inference = std::move(inference[i]);
    }
    report.wallMs = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

    // Per-vendor inference precision.
    const std::vector<std::string> vendorOrder = {
        "NETGEAR", "D-Link", "TP-Link", "Tenda", "Cisco"};
    TablePrinter table({"Vendor", "#FW", "Top-1", "Top-2", "Top-3"});
    PrecisionStats overall;
    for (const auto &vendor : vendorOrder) {
        PrecisionStats stats;
        for (std::size_t i = 0; i < corpus.size(); ++i) {
            if (corpus[i].spec.profile.vendor != vendor)
                continue;
            const auto &outcome = outcomes[i].inference;
            stats.addRank(outcome.ok ? outcome.firstItsRank : -1);
        }
        overall.total += stats.total;
        overall.top1 += stats.top1;
        overall.top2 += stats.top2;
        overall.top3 += stats.top3;
        table.addRow({vendor, std::to_string(stats.total),
                      percent(stats.p1()), percent(stats.p2()),
                      percent(stats.p3())});
    }
    table.addSeparator();
    table.addRow({"Overall", std::to_string(overall.total),
                  percent(overall.p1()), percent(overall.p2()),
                  percent(overall.p3())});
    report.text += table.render();

    if (options.taint) {
        EngineStats karonte, karonteIts, sta, staIts;
        int analyzed = 0;
        for (const auto &outcome : outcomes) {
            if (!outcome.taint.ok)
                continue;
            ++analyzed;
            karonte += outcome.taint.karonte;
            karonteIts += outcome.taint.karonteIts;
            sta += outcome.taint.sta;
            staIts += outcome.taint.staIts;
        }
        report.text += support::format(
            "\ntaint engines (%d analyzable samples, one "
            "shared analysis per sample):\n",
            analyzed);
        TablePrinter engines(
            {"", "Karonte", "Karonte-ITS", "STA", "STA-ITS"});
        engines.addRow({"Alerts", std::to_string(karonte.alerts),
                        std::to_string(karonteIts.alerts),
                        std::to_string(sta.alerts),
                        std::to_string(staIts.alerts)});
        engines.addRow({"Bugs", std::to_string(karonte.bugs),
                        std::to_string(karonteIts.bugs),
                        std::to_string(sta.bugs),
                        std::to_string(staIts.bugs)});
        engines.addRow({"FP rate", percent(karonte.falsePositiveRate()),
                        percent(karonteIts.falsePositiveRate()),
                        percent(sta.falsePositiveRate()),
                        percent(staIts.falsePositiveRate())});
        report.text += engines.render();
    }

    // Failure accounting: every sample whose pipeline (or taint
    // batch) errored, identified by its spec. Degraded samples
    // (partial results) are listed separately and are not failures.
    for (const auto &outcome : outcomes) {
        const std::string &name = outcome.inference.spec.name.empty()
                                      ? outcome.taint.spec.name
                                      : outcome.inference.spec.name;
        if (outcome.inference.retried || outcome.taint.retried)
            ++report.retried;
        if (outcome.inference.degraded ||
            (options.taint && outcome.taint.degraded)) {
            ++report.degraded;
            const auto &issues = outcome.inference.degraded
                                     ? outcome.inference.issues
                                     : outcome.taint.issues;
            std::string why;
            for (const auto &issue : issues) {
                if (!why.empty())
                    why += "; ";
                why += issue.toString();
            }
            report.diagnostics += support::format(
                "sample degraded: %s: %s\n",
                name.empty() ? "<unnamed>" : name.c_str(),
                why.empty() ? "partial result" : why.c_str());
        }
        const bool bad = !outcome.inference.ok ||
                         (options.taint && !outcome.taint.ok);
        if (!bad)
            continue;
        ++report.failed;
        const std::string &error = outcome.inference.error.empty()
                                       ? outcome.taint.error
                                       : outcome.inference.error;
        report.diagnostics += support::format(
            "sample failed: %s: %s\n",
            name.empty() ? "<unnamed>" : name.c_str(),
            error.empty() ? "unknown error" : error.c_str());
    }
    report.text += support::format("\nfailed samples: %zu/%zu\n",
                                   report.failed, outcomes.size());
    if (report.degraded > 0 || report.retried > 0) {
        report.text += support::format(
            "degraded samples: %zu/%zu (%zu retried)\n",
            report.degraded, outcomes.size(), report.retried);
    }
    return report;
}

std::string
renderWallClock(double wallMs, std::size_t jobs)
{
    return support::format("wall clock: %.1f ms with %zu jobs\n",
                           wallMs, jobs);
}

std::string
renderCacheSummary()
{
    // A memory miss that the disk tier served still counts as a hit
    // overall.
    const cache::Stats cstats = cache::stats();
    const cache::Options copts = cache::options();
    const std::uint64_t hits = cstats.hits + cstats.diskHits;
    const std::uint64_t misses =
        copts.memory
            ? cstats.misses - std::min(cstats.misses, cstats.diskHits)
            : cstats.diskMisses;
    const char *tier = copts.memory && copts.disk ? "mem+disk"
                       : copts.disk               ? "disk"
                       : copts.memory             ? "mem"
                                                  : "off";
    return support::format(
        "cache: %llu hits / %llu misses, %.1f MiB, tier=%s\n",
        static_cast<unsigned long long>(hits),
        static_cast<unsigned long long>(misses),
        static_cast<double>(cstats.bytes) / (1024.0 * 1024.0), tier);
}

TextReport
runRankReport(const std::vector<std::uint8_t> &bytes, std::size_t top,
              bool useSymbols, const core::PipelineConfig &base)
{
    TextReport report;
    core::PipelineConfig config = base;
    // Repeated ranks of the same image are served from the cache
    // (persistently so under FITS_CACHE_DIR); the ranking is
    // bit-identical either way.
    config.behaviorCache = true;
    config.infer.useSymbolNames = useSymbols;

    const core::FitsPipeline pipeline(config);
    const auto result = pipeline.run(bytes);
    if (!result.ok) {
        report.error = support::format("pipeline failed: %s\n",
                                       result.error.c_str());
        return report;
    }
    report.ok = true;
    report.text += support::format(
        "analyzed %s: %zu functions in %.1f ms "
        "(%zu candidates after clustering)\n\n",
        result.binaryName.c_str(), result.numFunctions,
        result.timings.totalMs(), result.inference.numCandidates);
    for (std::size_t i = 0;
         i < top && i < result.inference.ranking.size(); ++i) {
        const auto &rf = result.inference.ranking[i];
        report.text += support::format(
            "#%-3zu %-12s score %.4f%s%s\n", i + 1,
            support::hex(rf.entry).c_str(), rf.score,
            rf.name.empty() ? "" : "  ", rf.name.c_str());
    }
    return report;
}

TextReport
runTaintReport(const std::vector<std::uint8_t> &bytes,
               const std::string &engine,
               const std::vector<std::uint64_t> &itsAddrs)
{
    TextReport report;
    auto unpacked = fw::unpackFirmware(bytes);
    if (!unpacked) {
        report.error =
            support::format("unpack failed: %s\n",
                            unpacked.errorMessage().c_str());
        return report;
    }
    auto target =
        fw::selectAnalysisTarget(unpacked.value().filesystem);
    if (!target) {
        report.error =
            support::format("selection failed: %s\n",
                            target.errorMessage().c_str());
        return report;
    }
    const analysis::LinkedProgram linked(*target.value().main,
                                         target.value().libraries);
    const auto pa = analysis::ProgramAnalysis::analyze(linked);

    auto sources = taint::classicalTaintSources();
    for (std::uint64_t addr : itsAddrs)
        sources.push_back(
            taint::TaintSource::its(addr, support::hex(addr)));

    taint::TaintReport taintReport;
    if (engine == "sta") {
        taintReport = taint::StaEngine().run(pa, sources);
    } else {
        taintReport = taint::KaronteEngine().run(pa, sources);
    }
    const auto alerts = itsAddrs.empty()
                            ? taintReport.alerts
                            : taintReport.filteredAlerts();

    report.ok = true;
    report.text += support::format(
        "%s: %zu alerts in %.1f ms (%zu sources, %zu of "
        "them ITSs%s)\n\n",
        engine.c_str(), alerts.size(), taintReport.analysisMs,
        sources.size(), itsAddrs.size(),
        itsAddrs.empty() ? "" : "; system-data filtered");
    for (const auto &alert : alerts) {
        report.text += support::format(
            "  %-8s at %-10s in fn %-10s [%s]\n",
            alert.sinkName.c_str(),
            support::hex(alert.sinkSite).c_str(),
            support::hex(alert.inFunction).c_str(),
            taint::vulnClassName(alert.vclass));
    }
    return report;
}

} // namespace fits::eval
