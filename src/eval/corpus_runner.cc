#include "corpus_runner.hh"

#include <algorithm>

#include "cache/cache.hh"

namespace fits::eval {

namespace {

/** A failure worth one more attempt: an expired deadline, an injected
 * fault, or an internal error — anything a second, cheaper run can
 * plausibly get past. Deterministic parse errors are not retried. */
bool
retryable(const InferenceOutcome &outcome)
{
    return !outcome.ok && !outcome.status.isOk() &&
           outcome.status.isTransient();
}

} // namespace

CorpusRunner::CorpusRunner(Config config)
    : config_(std::move(config)),
      jobs_(support::resolveJobs(config_.jobs))
{
    if (!config_.cacheDir.empty()) {
        cache::Options options = cache::options();
        options.disk = true;
        options.dir = config_.cacheDir;
        cache::configure(options);
    }
}

core::PipelineConfig
CorpusRunner::degradedPipelineConfig() const
{
    // The retry runs under a reduced UCSE budget: a sample that timed
    // out (or tripped a transient fault) gets one more chance to
    // produce a partial result instead of none.
    core::PipelineConfig config = config_.pipeline;
    config.behavior.ucse.maxSteps = std::min<std::size_t>(
        config.behavior.ucse.maxSteps, 10000);
    config.behavior.ucse.maxVisitsPerBlock = std::min<std::size_t>(
        config.behavior.ucse.maxVisitsPerBlock, 2);
    // Retries never touch the behavior cache: a sample that just
    // failed transiently should be recomputed from scratch, not
    // have its recovery product stored for future runs.
    config.behaviorCache = false;
    return config;
}

core::PipelineConfig
CorpusRunner::inferencePipelineConfig() const
{
    core::PipelineConfig config = config_.pipeline;
    config.behaviorCache = config_.cache;
    return config;
}

core::PipelineConfig
CorpusRunner::taintPipelineConfig() const
{
    core::PipelineConfig config = config_.pipeline;
    config.behaviorCache = false;
    return config;
}

std::vector<InferenceOutcome>
CorpusRunner::runInference(
    const std::vector<synth::GeneratedFirmware> &corpus) const
{
    const core::PipelineConfig pipeline = inferencePipelineConfig();
    return map<InferenceOutcome>(
        corpus.size(),
        [&](std::size_t i) {
            auto outcome = eval::runInference(corpus[i], pipeline);
            if (retryable(outcome)) {
                obs::addCounter("corpus.retries");
                outcome = eval::runInference(
                    corpus[i], degradedPipelineConfig());
                outcome.retried = true;
            }
            return outcome;
        },
        [&](std::size_t i, const std::string &message) {
            InferenceOutcome outcome;
            outcome.spec = corpus[i].spec;
            outcome.truth = corpus[i].truth;
            outcome.error = "worker exception: " + message;
            outcome.status = support::Status::internal(outcome.error);
            return outcome;
        });
}

std::vector<InferenceOutcome>
CorpusRunner::runInferenceOnSpecs(
    const std::vector<synth::SampleSpec> &specs) const
{
    const core::PipelineConfig pipeline = inferencePipelineConfig();
    return map<InferenceOutcome>(
        specs.size(),
        [&](std::size_t i) {
            const auto fw = synth::generateFirmware(specs[i]);
            auto outcome = eval::runInference(fw, pipeline);
            if (retryable(outcome)) {
                obs::addCounter("corpus.retries");
                outcome =
                    eval::runInference(fw, degradedPipelineConfig());
                outcome.retried = true;
            }
            return outcome;
        },
        [&](std::size_t i, const std::string &message) {
            InferenceOutcome outcome;
            outcome.spec = specs[i];
            outcome.error = "worker exception: " + message;
            outcome.status = support::Status::internal(outcome.error);
            return outcome;
        });
}

std::vector<TaintOutcome>
CorpusRunner::runTaint(
    const std::vector<synth::GeneratedFirmware> &corpus) const
{
    const core::PipelineConfig pipeline = taintPipelineConfig();
    return map<TaintOutcome>(
        corpus.size(),
        [&](std::size_t i) {
            auto outcome = eval::runTaint(corpus[i], pipeline);
            if (!outcome.ok && !outcome.status.isOk() &&
                outcome.status.isTransient()) {
                obs::addCounter("corpus.retries");
                outcome = eval::runTaint(corpus[i],
                                         degradedPipelineConfig());
                outcome.retried = true;
            }
            return outcome;
        },
        [&](std::size_t i, const std::string &message) {
            TaintOutcome outcome;
            outcome.spec = corpus[i].spec;
            outcome.error = "worker exception: " + message;
            outcome.status = support::Status::internal(outcome.error);
            return outcome;
        });
}

std::vector<CorpusRunner::FullOutcome>
CorpusRunner::runFull(
    const std::vector<synth::GeneratedFirmware> &corpus) const
{
    return map<FullOutcome>(
        corpus.size(),
        [&](std::size_t i) {
            const auto analyzeWith =
                [&](const core::PipelineConfig &config) {
                    const core::FitsPipeline pipeline(config);
                    const core::PipelineArtifact artifact =
                        pipeline.analyze(corpus[i].bytes);
                    FullOutcome full;
                    full.inference = inferenceOutcome(
                        artifact, corpus[i].spec, corpus[i].truth);
                    full.taint = taintOutcome(
                        artifact, corpus[i].spec, corpus[i].truth,
                        config.budgets.taintMs);
                    return full;
                };
            FullOutcome full = analyzeWith(taintPipelineConfig());
            if (retryable(full.inference)) {
                obs::addCounter("corpus.retries");
                full = analyzeWith(degradedPipelineConfig());
                full.inference.retried = true;
                full.taint.retried = true;
            }
            return full;
        },
        [&](std::size_t i, const std::string &message) {
            FullOutcome full;
            full.inference.spec = corpus[i].spec;
            full.inference.truth = corpus[i].truth;
            full.inference.error = "worker exception: " + message;
            full.inference.status =
                support::Status::internal(full.inference.error);
            full.taint.spec = corpus[i].spec;
            full.taint.error = full.inference.error;
            full.taint.status = full.inference.status;
            return full;
        });
}

} // namespace fits::eval
