#include "corpus_runner.hh"

namespace fits::eval {

CorpusRunner::CorpusRunner(Config config)
    : config_(std::move(config)),
      jobs_(support::resolveJobs(config_.jobs))
{
}

std::vector<InferenceOutcome>
CorpusRunner::runInference(
    const std::vector<synth::GeneratedFirmware> &corpus) const
{
    return map<InferenceOutcome>(
        corpus.size(),
        [&](std::size_t i) {
            return eval::runInference(corpus[i], config_.pipeline);
        },
        [&](std::size_t i, const std::string &message) {
            InferenceOutcome outcome;
            outcome.spec = corpus[i].spec;
            outcome.truth = corpus[i].truth;
            outcome.error = "worker exception: " + message;
            return outcome;
        });
}

std::vector<InferenceOutcome>
CorpusRunner::runInferenceOnSpecs(
    const std::vector<synth::SampleSpec> &specs) const
{
    return map<InferenceOutcome>(
        specs.size(),
        [&](std::size_t i) {
            return eval::runInference(synth::generateFirmware(specs[i]),
                                      config_.pipeline);
        },
        [&](std::size_t i, const std::string &message) {
            InferenceOutcome outcome;
            outcome.spec = specs[i];
            outcome.error = "worker exception: " + message;
            return outcome;
        });
}

std::vector<TaintOutcome>
CorpusRunner::runTaint(
    const std::vector<synth::GeneratedFirmware> &corpus) const
{
    return map<TaintOutcome>(
        corpus.size(),
        [&](std::size_t i) {
            return eval::runTaint(corpus[i], config_.pipeline);
        },
        [&](std::size_t i, const std::string &message) {
            TaintOutcome outcome;
            outcome.spec = corpus[i].spec;
            outcome.error = "worker exception: " + message;
            return outcome;
        });
}

std::vector<CorpusRunner::FullOutcome>
CorpusRunner::runFull(
    const std::vector<synth::GeneratedFirmware> &corpus) const
{
    return map<FullOutcome>(
        corpus.size(),
        [&](std::size_t i) {
            const core::FitsPipeline pipeline(config_.pipeline);
            const core::PipelineArtifact artifact =
                pipeline.analyze(corpus[i].bytes);
            FullOutcome full;
            full.inference = inferenceOutcome(artifact, corpus[i].spec,
                                              corpus[i].truth);
            full.taint = taintOutcome(artifact, corpus[i].spec,
                                      corpus[i].truth);
            return full;
        },
        [&](std::size_t i, const std::string &message) {
            FullOutcome full;
            full.inference.spec = corpus[i].spec;
            full.inference.truth = corpus[i].truth;
            full.inference.error = "worker exception: " + message;
            full.taint.spec = corpus[i].spec;
            full.taint.error = full.inference.error;
            return full;
        });
}

} // namespace fits::eval
