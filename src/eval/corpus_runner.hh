#ifndef FITS_EVAL_CORPUS_RUNNER_HH_
#define FITS_EVAL_CORPUS_RUNNER_HH_

#include <chrono>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "eval/harness.hh"
#include "obs/metrics.hh"
#include "support/thread_pool.hh"

namespace fits::eval {

/**
 * Parallel corpus evaluation engine: fans per-sample analysis out
 * across a fixed worker pool and collects results in input order.
 *
 * Guarantees, relied on by every bench binary and the `fits corpus`
 * CLI path:
 *  - *Determinism:* result i is whatever the serial loop would have
 *    produced for sample i. Samples share only immutable state (the
 *    corpus, the config), every worker writes only its own result
 *    slot, and per-sample analysis is seeded/RNG-free, so the jobs
 *    count never changes any reported number — only wall-clock time.
 *  - *Failure isolation:* a sample whose task throws (or whose
 *    pipeline errors) yields a failed outcome in its own slot and
 *    never poisons the rest of the batch.
 *  - *Jobs knob:* Config::jobs > 0 wins, else the FITS_JOBS
 *    environment variable, else hardware concurrency.
 */
class CorpusRunner
{
  public:
    struct Config
    {
        /** Worker count; 0 = FITS_JOBS env var / hardware. */
        std::size_t jobs = 0;
        /** Pipeline configuration applied to every sample. */
        core::PipelineConfig pipeline;
        /** Reuse cached behavior products for inference runs. Taint
         * runs always re-analyze — they need the live analysis chain.
         * Results are bit-identical either way; only time changes. */
        bool cache = true;
        /** Non-empty: persist cached products here (the on-disk tier),
         * making repeated invocations over the same corpus
         * incremental. Defaults to the FITS_CACHE_DIR env var. */
        std::string cacheDir;
    };

    CorpusRunner()
        : CorpusRunner(Config{})
    {
    }

    explicit CorpusRunner(Config config);

    /** Resolved worker count actually used for fan-out. */
    std::size_t jobs() const { return jobs_; }

    /** Inference outcomes for each sample, in corpus order. */
    std::vector<InferenceOutcome>
    runInference(const std::vector<synth::GeneratedFirmware> &corpus)
        const;

    /** Like runInference, but generates each firmware inside its
     * worker — lower peak memory for large sweeps. */
    std::vector<InferenceOutcome>
    runInferenceOnSpecs(const std::vector<synth::SampleSpec> &specs)
        const;

    /** Table-5 taint outcomes for each sample, in corpus order. */
    std::vector<TaintOutcome>
    runTaint(const std::vector<synth::GeneratedFirmware> &corpus)
        const;

    /** Inference and taint outcomes derived from ONE shared
     * per-sample pipeline artifact (the sample is unpacked, selected,
     * and analyzed exactly once). */
    struct FullOutcome
    {
        InferenceOutcome inference;
        TaintOutcome taint;
    };

    std::vector<FullOutcome>
    runFull(const std::vector<synth::GeneratedFirmware> &corpus) const;

    /**
     * Generic deterministic fan-out: results[i] = make(i), computed on
     * the pool, with per-item failure isolation — if make(i) throws,
     * results[i] = onFailure(i, message) and every other item is
     * unaffected. R must be default-constructible.
     */
    template <typename R, typename MakeFn, typename FailFn>
    std::vector<R>
    map(std::size_t count, MakeFn &&make, FailFn &&onFailure) const
    {
        const bool metrics = obs::enabled();
        if (metrics) {
            obs::setGauge("corpus.jobs", static_cast<double>(jobs_));
            obs::addCounter("corpus.batches");
            obs::addCounter("corpus.samples", count);
        }
        std::vector<R> results(count);
        support::ThreadPool pool(jobs_);
        for (std::size_t i = 0; i < count; ++i) {
            pool.submit([&results, &make, &onFailure, metrics, i] {
                const auto start =
                    std::chrono::steady_clock::now();
                try {
                    results[i] = make(i);
                } catch (const std::exception &e) {
                    obs::addCounter("corpus.failures");
                    results[i] = onFailure(i, std::string(e.what()));
                } catch (...) {
                    obs::addCounter("corpus.failures");
                    results[i] =
                        onFailure(i, std::string("unknown exception"));
                }
                if (metrics) {
                    obs::observe(
                        "corpus.sample_ms",
                        std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count());
                }
            });
        }
        pool.wait();
        return results;
    }

  private:
    /** Reduced-budget pipeline config used for the one retry a
     * transiently-failed sample gets. */
    core::PipelineConfig degradedPipelineConfig() const;

    /** Pipeline config for inference-only runs: behavior caching on
     * when Config::cache allows it. */
    core::PipelineConfig inferencePipelineConfig() const;

    /** Pipeline config for runs that feed taint engines: behavior
     * caching forced off, since a cache hit carries no analysis
     * chain for the taint stage to reuse. */
    core::PipelineConfig taintPipelineConfig() const;

    Config config_;
    std::size_t jobs_ = 1;
};

} // namespace fits::eval

#endif // FITS_EVAL_CORPUS_RUNNER_HH_
