#include "tables.hh"

#include <algorithm>

#include "support/strings.hh"

namespace fits::eval {

const std::string TablePrinter::kSeparatorTag_ = "\x01sep";

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

void
TablePrinter::addSeparator()
{
    rows_.push_back({kSeparatorTag_});
}

std::string
TablePrinter::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        if (!row.empty() && row[0] == kSeparatorTag_)
            continue;
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::string out;
    auto renderSeparator = [&]() {
        out += "+";
        for (std::size_t w : widths)
            out += std::string(w + 2, '-') + "+";
        out += "\n";
    };
    auto renderCells = [&](const std::vector<std::string> &cells) {
        out += "|";
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell =
                c < cells.size() ? cells[c] : std::string();
            out += " " + cell +
                   std::string(widths[c] - cell.size(), ' ') + " |";
        }
        out += "\n";
    };

    renderSeparator();
    renderCells(headers_);
    renderSeparator();
    for (const auto &row : rows_) {
        if (!row.empty() && row[0] == kSeparatorTag_)
            renderSeparator();
        else
            renderCells(row);
    }
    renderSeparator();
    return out;
}

void
TablePrinter::print() const
{
    std::fputs(render().c_str(), stdout);
}

std::string
percent(double ratio)
{
    return support::format("%.0f%%", ratio * 100.0);
}

std::string
hmm(double ms)
{
    const long totalSeconds = static_cast<long>(ms / 1000.0);
    return support::format("%ld:%02ld.%03ld", totalSeconds / 60,
                           totalSeconds % 60,
                           static_cast<long>(ms) % 1000);
}

std::string
fixed(double value, int digits)
{
    return support::format("%.*f", digits, value);
}

} // namespace fits::eval
