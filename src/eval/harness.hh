#ifndef FITS_EVAL_HARNESS_HH_
#define FITS_EVAL_HARNESS_HH_

#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "synth/firmware_gen.hh"
#include "taint/common.hh"

namespace fits::eval {

/**
 * Result of running the FITS inference pipeline on one corpus sample,
 * with everything the experiment tables need: the ranking, the rank of
 * the first true ITS (the paper's top-n criterion), per-stage timing,
 * and the retained behavior representation so ablation experiments can
 * re-rank without re-analyzing the binary.
 */
struct InferenceOutcome
{
    synth::SampleSpec spec;
    bool ok = false;
    std::string error;
    /** Typed form of `error`; Ok when the pipeline passed. */
    support::Status status;
    core::PipelineResult::FailureStage failureStage =
        core::PipelineResult::FailureStage::None;

    /** Partial result: see core::PipelineResult::degraded. */
    bool degraded = false;
    std::vector<support::Status> issues;
    /** The corpus runner re-ran this sample once after a transient
     * failure (timeout / injected fault). */
    bool retried = false;

    std::vector<core::RankedFunction> ranking;
    /** 1-based rank of the first verified ITS; -1 if absent. */
    int firstItsRank = -1;

    std::string binaryName;
    std::size_t numFunctions = 0;
    std::size_t binaryBytes = 0;
    double analysisMs = 0.0;

    core::BehaviorRepr behavior;
    synth::GroundTruth truth;
};

/** Run the full pipeline on one generated sample. */
InferenceOutcome runInference(const synth::GeneratedFirmware &fw,
                              const core::PipelineConfig &config = {});

/**
 * Score an already-computed pipeline artifact as an InferenceOutcome.
 * Lets inference- and taint-side evaluation share one per-sample
 * analysis instead of re-running unpack/select/behavior per consumer.
 */
InferenceOutcome inferenceOutcome(const core::PipelineArtifact &artifact,
                                  const synth::SampleSpec &spec,
                                  const synth::GroundTruth &truth);

/** 1-based rank of the first true ITS in a ranking (-1 if none). */
int rankOfFirstIts(const std::vector<core::RankedFunction> &ranking,
                   const synth::GroundTruth &truth);

/** Top-n success counters ("at least one true ITS in the top n"). */
struct PrecisionStats
{
    int top1 = 0;
    int top2 = 0;
    int top3 = 0;
    int total = 0;

    void addRank(int rank); ///< rank is 1-based; <= 0 means miss
    double p1() const;
    double p2() const;
    double p3() const;
};

/** Aggregate outcome of one taint-engine run against ground truth. */
struct EngineStats
{
    std::size_t alerts = 0;
    std::size_t bugs = 0; ///< distinct true-positive sink sites
    double ms = 0.0;

    double
    falsePositiveRate() const
    {
        return alerts == 0
                   ? 0.0
                   : static_cast<double>(alerts - bugs) /
                         static_cast<double>(alerts);
    }

    EngineStats &operator+=(const EngineStats &other);
};

/** The four engine configurations of Table 5 on one sample. */
struct TaintOutcome
{
    /** Identity of the sample this outcome describes — populated on
     * success AND failure paths so an errored outcome still says
     * which sample it came from. */
    synth::SampleSpec spec;
    bool ok = false;
    std::string error;
    /** Typed form of `error`; Ok when the engines ran. */
    support::Status status;
    /** Partial result: the shared artifact was degraded or an engine
     * hit its wall-clock budget; `issues` lists the reasons. */
    bool degraded = false;
    std::vector<support::Status> issues;
    bool retried = false;
    EngineStats karonte;
    EngineStats karonteIts;
    EngineStats sta;
    EngineStats staIts;
    /** Bug-site sets found, for cross-engine set relations. */
    std::vector<ir::Addr> karonteBugs;
    std::vector<ir::Addr> karonteItsBugs;
    std::vector<ir::Addr> staBugs;
    std::vector<ir::Addr> staItsBugs;
};

/**
 * Run all four Table 5 configurations on one sample: build one shared
 * whole-program analysis, infer ITSs, verify the top-3 against ground
 * truth (the paper's manual-verification step), and run each engine
 * with CTS or CTS+ITS sources. ITS-sourced runs apply the §4.3
 * system-data string filter.
 */
TaintOutcome runTaint(const synth::GeneratedFirmware &fw,
                      const core::PipelineConfig &config = {});

/**
 * The four Table 5 engine configurations evaluated against an
 * already-computed pipeline artifact (no unpack/select/behavior
 * re-run). Engines still execute when only the inference stage failed
 * — they then run with classical sources alone, as before.
 */
TaintOutcome taintOutcome(const core::PipelineArtifact &artifact,
                          const synth::SampleSpec &spec,
                          const synth::GroundTruth &truth,
                          double taintBudgetMs = 0.0);

/** Score a taint report against ground truth. */
EngineStats scoreReport(const std::vector<taint::Alert> &alerts,
                        const synth::GroundTruth &truth, double ms,
                        std::vector<ir::Addr> *bugSites = nullptr);

} // namespace fits::eval

#endif // FITS_EVAL_HARNESS_HH_
