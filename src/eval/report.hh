#ifndef FITS_EVAL_REPORT_HH_
#define FITS_EVAL_REPORT_HH_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/pipeline.hh"
#include "eval/corpus_runner.hh"
#include "synth/firmware_gen.hh"

namespace fits::eval {

/**
 * Text-report layer shared by the one-shot CLI (`fits corpus`,
 * `fits rank`, `fits taint`) and the resident service (`fits serve`):
 * one implementation renders the evaluation tables, so the serial
 * client path can be diffed bit-for-bit against the one-shot tool.
 *
 * Everything here is deterministic except wall-clock milliseconds,
 * which are reported as data (never baked into `text`) so callers can
 * place — or filter — the timing line themselves.
 */

/** One corpus evaluation request. */
struct CorpusOptions
{
    /** Worker count; 0 = FITS_JOBS / hardware (CorpusRunner rules). */
    std::size_t jobs = 0;
    /** Also run the four Table-5 taint configurations. */
    bool taint = false;
    /** Consult the analysis cache (identical results either way). */
    bool cache = true;
    /** Evaluate every *.fwimg under this directory instead of the
     * standard synthetic corpus. */
    std::string dir;
    /** Pipeline configuration applied to every sample. */
    core::PipelineConfig pipeline;
    /** Called with the "evaluating N samples..." header once the
     * corpus is loaded, before the (long) evaluation runs — the
     * one-shot CLI uses it for eager progress output. */
    std::function<void(const std::string &)> onHeader;
};

/** Rendered outcome of one corpus evaluation. */
struct CorpusReport
{
    /** False when the corpus could not be loaded at all (bad --dir,
     * zero samples); `error` carries the exact one-shot diagnostic. */
    bool ok = false;
    std::string error;

    /** "evaluating N samples with J worker threads...\n\n" */
    std::string header;
    /** Deterministic report body: the per-vendor precision table,
     * the taint-engine table (when requested), and the
     * failed/degraded summary lines. */
    std::string text;
    /** Per-sample "sample failed:"/"sample degraded:" diagnostics,
     * one per line, in outcome order (the one-shot stderr stream). */
    std::string diagnostics;

    std::size_t samples = 0;
    std::size_t failed = 0;
    std::size_t degraded = 0;
    std::size_t retried = 0;
    /** Resolved worker count used for the fan-out. */
    std::size_t jobs = 0;
    double wallMs = 0.0;

    /** One-shot process exit code: 1 when every sample failed. */
    int
    exitCode() const
    {
        return samples > 0 && failed == samples ? 1 : 0;
    }
};

/** Run a corpus evaluation and render it. Loads the corpus (standard
 * or --dir), fans out through a CorpusRunner, and renders exactly the
 * tables `fits corpus` prints. */
CorpusReport runCorpusReport(const CorpusOptions &options);

/** "wall clock: %.1f ms with %zu jobs\n" — the one-shot timing line. */
std::string renderWallClock(double wallMs, std::size_t jobs);

/** "cache: H hits / M misses, X MiB, tier=...\n" over the process-wide
 * cache counters, exactly as `fits corpus` prints it. */
std::string renderCacheSummary();

/** Rendered outcome of a single-image report (rank / taint). */
struct TextReport
{
    bool ok = false;
    std::string error; ///< one-shot stderr diagnostic when !ok
    std::string text;  ///< one-shot stdout text when ok
};

/** `fits rank` body: run the pipeline on image bytes and render the
 * analyzed-summary line plus the top-`top` ranking. */
TextReport runRankReport(const std::vector<std::uint8_t> &bytes,
                         std::size_t top, bool useSymbols,
                         const core::PipelineConfig &base = {});

/** `fits taint` body: run one engine ("sta" or "karonte") with the
 * classical sources plus the given ITS addresses and render the alert
 * list (ITS runs apply the system-data filter). */
TextReport runTaintReport(const std::vector<std::uint8_t> &bytes,
                          const std::string &engine,
                          const std::vector<std::uint64_t> &itsAddrs);

/** Load every *.fwimg under `dir` (sorted by path) as a corpus
 * sample; ground truth stays empty. Returns false with the exact
 * one-shot diagnostic in `error` when `dir` is missing, not a
 * directory, or unlistable. */
bool loadCorpusDir(const std::string &dir,
                   std::vector<synth::GeneratedFirmware> *corpus,
                   std::string *error);

} // namespace fits::eval

#endif // FITS_EVAL_REPORT_HH_
