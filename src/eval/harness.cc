#include "harness.hh"

#include <algorithm>
#include <set>

#include "support/strings.hh"
#include "taint/karonte.hh"
#include "taint/sta.hh"

namespace fits::eval {

InferenceOutcome
runInference(const synth::GeneratedFirmware &fw,
             const core::PipelineConfig &config)
{
    const core::FitsPipeline pipeline(config);
    return inferenceOutcome(pipeline.analyze(fw.bytes), fw.spec,
                            fw.truth);
}

InferenceOutcome
inferenceOutcome(const core::PipelineArtifact &artifact,
                 const synth::SampleSpec &spec,
                 const synth::GroundTruth &truth)
{
    InferenceOutcome outcome;
    outcome.spec = spec;
    outcome.truth = truth;

    outcome.failureStage = artifact.failureStage;
    outcome.error = artifact.error;
    outcome.status = artifact.status;
    outcome.degraded = artifact.degraded;
    outcome.issues = artifact.issues;
    outcome.binaryName = artifact.binaryName;
    outcome.numFunctions = artifact.numFunctions;
    outcome.binaryBytes = artifact.binaryBytes;
    outcome.analysisMs = artifact.timings.totalMs();
    if (!artifact.ok)
        return outcome;

    outcome.ok = true;
    outcome.ranking = artifact.inference.ranking;
    outcome.behavior = artifact.behavior;
    outcome.firstItsRank = rankOfFirstIts(outcome.ranking, truth);
    return outcome;
}

int
rankOfFirstIts(const std::vector<core::RankedFunction> &ranking,
               const synth::GroundTruth &truth)
{
    for (std::size_t i = 0; i < ranking.size(); ++i) {
        if (std::find(truth.itsFunctions.begin(),
                      truth.itsFunctions.end(),
                      ranking[i].entry) != truth.itsFunctions.end()) {
            return static_cast<int>(i) + 1;
        }
    }
    return -1;
}

void
PrecisionStats::addRank(int rank)
{
    ++total;
    if (rank == 1)
        ++top1;
    if (rank >= 1 && rank <= 2)
        ++top2;
    if (rank >= 1 && rank <= 3)
        ++top3;
}

namespace {

double
ratio(int hits, int total)
{
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
}

} // namespace

double
PrecisionStats::p1() const
{
    return ratio(top1, total);
}

double
PrecisionStats::p2() const
{
    return ratio(top2, total);
}

double
PrecisionStats::p3() const
{
    return ratio(top3, total);
}

EngineStats &
EngineStats::operator+=(const EngineStats &other)
{
    alerts += other.alerts;
    bugs += other.bugs;
    ms += other.ms;
    return *this;
}

EngineStats
scoreReport(const std::vector<taint::Alert> &alerts,
            const synth::GroundTruth &truth, double ms,
            std::vector<ir::Addr> *bugSites)
{
    EngineStats stats;
    stats.ms = ms;
    stats.alerts = alerts.size();
    std::set<ir::Addr> bugs;
    for (const auto &alert : alerts) {
        const synth::SinkSite *site = truth.siteAt(alert.sinkSite);
        if (site != nullptr && site->isBug())
            bugs.insert(alert.sinkSite);
    }
    stats.bugs = bugs.size();
    if (bugSites != nullptr)
        bugSites->assign(bugs.begin(), bugs.end());
    return stats;
}

TaintOutcome
runTaint(const synth::GeneratedFirmware &fw,
         const core::PipelineConfig &config)
{
    const core::FitsPipeline pipeline(config);
    return taintOutcome(pipeline.analyze(fw.bytes), fw.spec, fw.truth,
                        config.budgets.taintMs);
}

TaintOutcome
taintOutcome(const core::PipelineArtifact &artifact,
             const synth::SampleSpec &spec,
             const synth::GroundTruth &truth, double taintBudgetMs)
{
    TaintOutcome outcome;
    outcome.spec = spec;
    outcome.degraded = artifact.degraded;
    outcome.issues = artifact.issues;

    // Stage-1 failures have nothing to run the engines on. An
    // inference-stage failure still does: the engines run with the
    // classical sources alone (the ranking is simply empty).
    if (!artifact.hasAnalysis()) {
        outcome.error = artifact.error;
        outcome.status = artifact.status;
        return outcome;
    }
    const analysis::ProgramAnalysis &pa = *artifact.analysis;

    // "Verify" the inferred ITSs: the top-3 candidates that ground
    // truth confirms (the manual-verification step of §4.1).
    std::vector<taint::TaintSource> itsSources;
    const std::size_t considered =
        std::min<std::size_t>(3, artifact.inference.ranking.size());
    for (std::size_t i = 0; i < considered; ++i) {
        const ir::Addr entry = artifact.inference.ranking[i].entry;
        if (std::find(truth.itsFunctions.begin(),
                      truth.itsFunctions.end(),
                      entry) != truth.itsFunctions.end()) {
            itsSources.push_back(taint::TaintSource::its(
                entry, support::hex(entry)));
        }
    }

    const auto cts = taint::classicalTaintSources();
    auto ctsPlusIts = cts;
    ctsPlusIts.insert(ctsPlusIts.end(), itsSources.begin(),
                      itsSources.end());

    taint::KaronteEngine::Config karonteConfig;
    karonteConfig.deadlineMs = taintBudgetMs;
    taint::StaEngine::Config staConfig;
    staConfig.deadlineMs = taintBudgetMs;
    const taint::KaronteEngine karonte(karonteConfig);
    const taint::StaEngine sta(staConfig);

    // A report cut short by the wall-clock budget is still scored —
    // its alerts are valid, just not a full sweep — and the outcome is
    // flagged so aggregate tables can exclude or annotate it.
    const auto noteExpiry = [&outcome](const taint::TaintReport &report,
                                       const char *engine) {
        if (!report.deadlineExpired)
            return;
        outcome.degraded = true;
        outcome.issues.push_back(support::Status::error(
            support::Stage::Taint, support::ErrorCode::Timeout,
            std::string(engine) + " stopped at the stage deadline"));
    };

    {
        const auto report = karonte.run(pa, cts);
        noteExpiry(report, "karonte");
        outcome.karonte = scoreReport(report.alerts, truth,
                                      report.analysisMs,
                                      &outcome.karonteBugs);
    }
    {
        const auto report = karonte.run(pa, ctsPlusIts);
        noteExpiry(report, "karonte+its");
        outcome.karonteIts = scoreReport(report.filteredAlerts(),
                                         truth, report.analysisMs,
                                         &outcome.karonteItsBugs);
    }
    {
        const auto report = sta.run(pa, cts);
        noteExpiry(report, "sta");
        outcome.sta = scoreReport(report.alerts, truth,
                                  report.analysisMs,
                                  &outcome.staBugs);
    }
    {
        const auto report = sta.run(pa, ctsPlusIts);
        noteExpiry(report, "sta+its");
        outcome.staIts = scoreReport(report.filteredAlerts(),
                                     truth, report.analysisMs,
                                     &outcome.staItsBugs);
    }

    outcome.ok = true;
    return outcome;
}

} // namespace fits::eval
