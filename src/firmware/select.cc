#include "select.hh"

#include "cache/cache.hh"
#include "chaos/chaos.hh"
#include "support/logging.hh"
#include "support/status.hh"

namespace fits::fw {

const std::vector<std::string> &
networkImportNames()
{
    static const std::vector<std::string> names = {
        "socket", "bind", "listen", "accept", "recv", "recvfrom",
        "recvmsg", "send", "sendto", "select", "inet_ntoa", "htons",
        "setsockopt",
    };
    return names;
}

namespace {

bool
isReceiveStyle(const std::string &name)
{
    return name == "recv" || name == "recvfrom" || name == "recvmsg" ||
           name == "accept";
}

} // namespace

int
networkScore(const bin::BinaryImage &image)
{
    int score = 0;
    for (const auto &name : networkImportNames()) {
        if (image.importByName(name) != nullptr)
            score += isReceiveStyle(name) ? 2 : 1;
    }
    return score;
}

support::Result<AnalysisTarget>
selectAnalysisTarget(const Filesystem &filesystem)
{
    using R = support::Result<AnalysisTarget>;
    using support::ErrorCode;
    using support::Stage;
    using support::Status;

    if (chaos::shouldInject("select.binary"))
        return R::error(chaos::injectedStatus("select.binary"));

    bool anyParsed = false;
    int bestScore = 0;
    std::shared_ptr<const bin::BinaryImage> best;

    for (const FileEntry *entry :
         filesystem.filesOfType(FileType::Executable)) {
        auto loaded = cache::loadImage(entry->bytes);
        if (!loaded) {
            support::logWarn("select", entry->path + ": " +
                                           loaded.errorMessage());
            continue;
        }
        anyParsed = true;
        const int score = networkScore(*loaded.value());
        if (score > bestScore) {
            bestScore = score;
            best = loaded.take();
        }
    }

    if (!anyParsed) {
        return R::error(Status::error(
            Stage::Select, ErrorCode::NotFound,
            "no executable in the file system parses as FBIN"));
    }
    if (bestScore == 0) {
        return R::error(Status::error(
            Stage::Select, ErrorCode::NotFound,
            "no executable imports the network interface"));
    }

    AnalysisTarget target;
    target.main = std::move(best);

    for (const auto &dep : target.main->neededLibraries) {
        // A library that fails to lift is a *degradation*, not a
        // failure: analysis proceeds against the main binary (and any
        // libraries that did load) and the target records what is
        // missing so the pipeline can flag the sample as partial.
        if (chaos::shouldInject("select.library")) {
            target.missingLibraries.push_back(dep);
            continue;
        }
        const FileEntry *libEntry = filesystem.findByBasename(dep);
        if (!libEntry) {
            target.missingLibraries.push_back(dep);
            continue;
        }
        auto lib = cache::loadImage(libEntry->bytes);
        if (!lib) {
            target.missingLibraries.push_back(dep);
            support::logWarn("select",
                             dep + ": " + lib.errorMessage());
            continue;
        }
        target.libraries.push_back(lib.take());
    }

    return R::ok(std::move(target));
}

} // namespace fits::fw
