#ifndef FITS_FIRMWARE_FWIMG_HH_
#define FITS_FIRMWARE_FWIMG_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "firmware/filesystem.hh"
#include "support/result.hh"

namespace fits::fw {

/**
 * Payload encodings seen in vendor firmware. None/Xor/Rot are handled by
 * the unpacker (magic-keyed, like the D-Link schemes the paper cites);
 * Opaque simulates a vendor scheme with an unpublished key, which makes
 * pre-processing fail — the paper reports four such samples.
 */
enum class Encoding : std::uint8_t { None, Xor, Rot, Opaque };

const char *encodingName(Encoding encoding);

/** Metadata carried in a firmware image header. */
struct ImageInfo
{
    std::string vendor;
    std::string product;
    std::string version;
    Encoding encoding = Encoding::None;
};

/**
 * A firmware image ready for packing: header info plus file system.
 */
struct FirmwareImage
{
    ImageInfo info;
    Filesystem filesystem;
};

/**
 * Pack an image into FWIMG bytes. The payload (file table) is encoded
 * per info.encoding and protected by an FNV checksum; `bootPadding`
 * bytes of opaque bootloader blob are prepended before the magic, so
 * unpacking requires a magic scan (what Binwalk does for real images).
 *
 * Layout: [padding] "FWIM" u32 version, vendor, product, fwversion,
 *         u8 encoding, u64 checksum(plain payload), u32 payloadSize,
 *         encoded payload.
 * Payload: u32 nFiles { path, u8 type, u32 size, bytes }.
 */
std::vector<std::uint8_t> packFirmware(const FirmwareImage &image,
                                       std::size_t bootPadding = 0);

/**
 * Scan for the FWIM magic, decode the header, decrypt the payload and
 * verify its checksum, then parse the file table. Fails (with a
 * diagnostic) on missing magic, Opaque encoding, bad checksum, or a
 * malformed file table.
 */
support::Result<FirmwareImage> unpackFirmware(
    const std::vector<std::uint8_t> &bytes);

/**
 * XOR/ROT codec used by packFirmware; exposed for tests. The key is
 * derived from the vendor string, mirroring magic-byte-keyed vendor
 * schemes.
 */
std::uint8_t vendorKey(const std::string &vendor);
void encodePayload(std::vector<std::uint8_t> &payload, Encoding encoding,
                   std::uint8_t key);
void decodePayload(std::vector<std::uint8_t> &payload, Encoding encoding,
                   std::uint8_t key);

} // namespace fits::fw

#endif // FITS_FIRMWARE_FWIMG_HH_
