#include "filesystem.hh"

#include "support/strings.hh"

namespace fits::fw {

const char *
fileTypeName(FileType type)
{
    switch (type) {
      case FileType::Executable: return "executable";
      case FileType::Library:    return "library";
      case FileType::Config:     return "config";
      case FileType::Other:      return "other";
    }
    return "?";
}

void
Filesystem::addFile(FileEntry entry)
{
    files_.push_back(std::move(entry));
}

const FileEntry *
Filesystem::find(const std::string &path) const
{
    for (const auto &f : files_) {
        if (f.path == path)
            return &f;
    }
    return nullptr;
}

const FileEntry *
Filesystem::findByBasename(const std::string &basename) const
{
    for (const auto &f : files_) {
        if (f.path == basename ||
            support::endsWith(f.path, "/" + basename)) {
            return &f;
        }
    }
    return nullptr;
}

std::vector<const FileEntry *>
Filesystem::filesOfType(FileType type) const
{
    std::vector<const FileEntry *> out;
    for (const auto &f : files_) {
        if (f.type == type)
            out.push_back(&f);
    }
    return out;
}

std::size_t
Filesystem::totalBytes() const
{
    std::size_t n = 0;
    for (const auto &f : files_)
        n += f.bytes.size();
    return n;
}

} // namespace fits::fw
