#ifndef FITS_FIRMWARE_SELECT_HH_
#define FITS_FIRMWARE_SELECT_HH_

#include <memory>
#include <string>
#include <vector>

#include "binary/image.hh"
#include "firmware/filesystem.hh"
#include "support/result.hh"

namespace fits::fw {

/**
 * The unit FITS analyzes: the network-facing binary plus its resolved
 * dependency libraries (found via the DT_NEEDED-style list). Images are
 * shared immutable instances owned by the analysis cache: the same
 * library bytes appearing in many firmware samples select the same
 * in-memory image, which is what lets per-image analysis products be
 * reused across samples.
 */
struct AnalysisTarget
{
    std::shared_ptr<const bin::BinaryImage> main;
    std::vector<std::shared_ptr<const bin::BinaryImage>> libraries;
    /** Dependencies that could not be found in the file system. */
    std::vector<std::string> missingLibraries;
};

/**
 * Import names that indicate a binary exports network services. Used by
 * the PIE-style selector: network communication is the major source of
 * cyber threats, so these binaries are the analysis targets.
 */
const std::vector<std::string> &networkImportNames();

/**
 * Network-facing score of a binary: weighted count of network imports
 * (receive-style functions count double, since a binary that only sends
 * is not an input parser).
 */
int networkScore(const bin::BinaryImage &image);

/**
 * Select the network binary with the highest score from the file
 * system's executables and resolve its dependency libraries. Fails when
 * no executable parses as FBIN or none imports the network interface —
 * the pre-processing failure mode of §4.2.
 */
support::Result<AnalysisTarget> selectAnalysisTarget(
    const Filesystem &filesystem);

} // namespace fits::fw

#endif // FITS_FIRMWARE_SELECT_HH_
