#ifndef FITS_FIRMWARE_FILESYSTEM_HH_
#define FITS_FIRMWARE_FILESYSTEM_HH_

#include <cstdint>
#include <string>
#include <vector>

namespace fits::fw {

/** Coarse file classification inside a firmware file system. */
enum class FileType : std::uint8_t {
    Executable, ///< an FBIN program (e.g. /usr/sbin/httpd)
    Library,    ///< an FBIN shared library (e.g. /lib/libc.so)
    Config,     ///< text configuration
    Other,      ///< web assets, scripts, ...
};

const char *fileTypeName(FileType type);

/** One file extracted from a firmware image. */
struct FileEntry
{
    std::string path;
    FileType type = FileType::Other;
    std::vector<std::uint8_t> bytes;
};

/**
 * The unpacked firmware file system: a flat path -> bytes table (the
 * squashfs tree of a real image, without the directory ceremony that
 * none of the analyses need).
 */
class Filesystem
{
  public:
    void addFile(FileEntry entry);

    const std::vector<FileEntry> &files() const { return files_; }

    /** Entry with the exact path, or nullptr. */
    const FileEntry *find(const std::string &path) const;

    /** Entry whose path ends with the given basename, or nullptr. */
    const FileEntry *findByBasename(const std::string &basename) const;

    /** All entries of one type. */
    std::vector<const FileEntry *> filesOfType(FileType type) const;

    std::size_t size() const { return files_.size(); }

    /** Total bytes across all files. */
    std::size_t totalBytes() const;

  private:
    std::vector<FileEntry> files_;
};

} // namespace fits::fw

#endif // FITS_FIRMWARE_FILESYSTEM_HH_
