#include "fwimg.hh"

#include <string_view>

#include "binary/bytebuf.hh"
#include "chaos/chaos.hh"
#include "support/status.hh"
#include "support/strings.hh"

namespace fits::fw {

namespace {

constexpr char kMagic[4] = {'F', 'W', 'I', 'M'};
constexpr std::uint32_t kVersion = 2;

std::uint64_t
payloadChecksum(const std::vector<std::uint8_t> &payload)
{
    return support::fnv1a(std::string_view(
        reinterpret_cast<const char *>(payload.data()), payload.size()));
}

} // namespace

const char *
encodingName(Encoding encoding)
{
    switch (encoding) {
      case Encoding::None:   return "none";
      case Encoding::Xor:    return "xor";
      case Encoding::Rot:    return "rot";
      case Encoding::Opaque: return "opaque";
    }
    return "?";
}

std::uint8_t
vendorKey(const std::string &vendor)
{
    // Key byte derived from the vendor name, as vendor schemes key off
    // image header bytes. 0 would make XOR a no-op, so avoid it.
    std::uint8_t key =
        static_cast<std::uint8_t>(support::fnv1a(vendor) & 0xff);
    return key == 0 ? 0x5a : key;
}

void
encodePayload(std::vector<std::uint8_t> &payload, Encoding encoding,
              std::uint8_t key)
{
    switch (encoding) {
      case Encoding::None:
        break;
      case Encoding::Xor:
        for (auto &b : payload)
            b ^= key;
        break;
      case Encoding::Rot:
        for (auto &b : payload)
            b = static_cast<std::uint8_t>(b + key);
        break;
      case Encoding::Opaque:
        // An unpublished scheme: a position-dependent scramble the
        // unpacker does not implement.
        for (std::size_t i = 0; i < payload.size(); ++i) {
            payload[i] = static_cast<std::uint8_t>(
                (payload[i] ^ (key + i * 31)) + 17);
        }
        break;
    }
}

void
decodePayload(std::vector<std::uint8_t> &payload, Encoding encoding,
              std::uint8_t key)
{
    switch (encoding) {
      case Encoding::None:
        break;
      case Encoding::Xor:
        for (auto &b : payload)
            b ^= key;
        break;
      case Encoding::Rot:
        for (auto &b : payload)
            b = static_cast<std::uint8_t>(b - key);
        break;
      case Encoding::Opaque:
        // Deliberately not implemented: this is the unsupported-vendor-
        // crypto failure mode. Callers never reach here (unpackFirmware
        // refuses Opaque first).
        break;
    }
}

std::vector<std::uint8_t>
packFirmware(const FirmwareImage &image, std::size_t bootPadding)
{
    using bin::ByteWriter;

    // Build the plain payload: the file table.
    ByteWriter payload;
    payload.u32(static_cast<std::uint32_t>(image.filesystem.size()));
    for (const auto &f : image.filesystem.files()) {
        payload.str(f.path);
        payload.u8(static_cast<std::uint8_t>(f.type));
        payload.u32(static_cast<std::uint32_t>(f.bytes.size()));
        payload.raw(f.bytes);
    }
    std::vector<std::uint8_t> plain = payload.take();
    const std::uint64_t checksum = payloadChecksum(plain);

    encodePayload(plain, image.info.encoding,
                  vendorKey(image.info.vendor));

    ByteWriter w;
    // Opaque bootloader blob before the magic; bytes depend on the
    // vendor so the scan cannot cheat with a fixed offset.
    const std::uint8_t pad = vendorKey(image.info.vendor + "boot");
    for (std::size_t i = 0; i < bootPadding; ++i)
        w.u8(static_cast<std::uint8_t>(pad + i * 7));

    for (char m : kMagic)
        w.u8(static_cast<std::uint8_t>(m));
    w.u32(kVersion);
    w.str(image.info.vendor);
    w.str(image.info.product);
    w.str(image.info.version);
    w.u8(static_cast<std::uint8_t>(image.info.encoding));
    w.u64(checksum);
    w.u32(static_cast<std::uint32_t>(plain.size()));
    w.raw(plain);
    return w.take();
}

support::Result<FirmwareImage>
unpackFirmware(const std::vector<std::uint8_t> &bytes)
{
    using R = support::Result<FirmwareImage>;
    using bin::ByteReader;
    using support::ErrorCode;
    using support::Stage;
    using support::Status;
    const auto err = [](Stage stage, ErrorCode code,
                        std::string message) {
        return R::error(
            Status::error(stage, code, std::move(message)));
    };

    if (chaos::shouldInject("unpack.magic"))
        return R::error(chaos::injectedStatus("unpack.magic"));

    // Magic scan (what Binwalk does): find "FWIM" at any offset.
    std::size_t start = bytes.size();
    for (std::size_t i = 0; i + 4 <= bytes.size(); ++i) {
        if (bytes[i] == 'F' && bytes[i + 1] == 'W' &&
            bytes[i + 2] == 'I' && bytes[i + 3] == 'M') {
            start = i;
            break;
        }
    }
    if (start == bytes.size()) {
        return err(Stage::Unpack, ErrorCode::BadMagic,
                   "no FWIM magic found in image");
    }

    if (chaos::shouldInject("unpack.header"))
        return R::error(chaos::injectedStatus("unpack.header"));

    ByteReader r(bytes.data() + start, bytes.size() - start);
    std::uint8_t magic[4];
    for (auto &m : magic)
        r.u8(m);

    std::uint32_t version;
    if (!r.u32(version)) {
        return err(Stage::Unpack, ErrorCode::Truncated,
                   "truncated firmware header");
    }
    if (version != kVersion) {
        return err(Stage::Unpack, ErrorCode::BadVersion,
                   support::format(
                       "unsupported firmware format version %u",
                       version));
    }

    FirmwareImage image;
    std::uint8_t encoding;
    std::uint64_t checksum;
    std::uint32_t payloadSize;
    if (!r.str(image.info.vendor) || !r.str(image.info.product) ||
        !r.str(image.info.version) || !r.u8(encoding) ||
        !r.u64(checksum) || !r.u32(payloadSize)) {
        return err(Stage::Unpack, ErrorCode::Truncated,
                   "truncated firmware header");
    }
    if (encoding > static_cast<std::uint8_t>(Encoding::Opaque)) {
        return err(Stage::Unpack, ErrorCode::Corrupt,
                   "unknown payload encoding");
    }
    image.info.encoding = static_cast<Encoding>(encoding);

    if (image.info.encoding == Encoding::Opaque) {
        return err(Stage::Unpack, ErrorCode::Unsupported,
                   "vendor uses an unsupported encryption scheme "
                   "(opaque payload)");
    }

    std::vector<std::uint8_t> payload;
    if (!r.raw(payload, payloadSize)) {
        return err(Stage::Unpack, ErrorCode::Truncated,
                   "truncated firmware payload");
    }

    decodePayload(payload, image.info.encoding,
                  vendorKey(image.info.vendor));
    if (chaos::shouldInject("unpack.payload"))
        return R::error(chaos::injectedStatus("unpack.payload"));
    if (payloadChecksum(payload) != checksum) {
        return err(Stage::Unpack, ErrorCode::Corrupt,
                   "payload checksum mismatch "
                   "(corrupt image or wrong key)");
    }

    if (chaos::shouldInject("fs.filetable"))
        return R::error(chaos::injectedStatus("fs.filetable"));

    ByteReader pr(payload);
    std::uint32_t nFiles;
    if (!pr.u32(nFiles)) {
        return err(Stage::Filesystem, ErrorCode::Truncated,
                   "truncated file table");
    }
    for (std::uint32_t i = 0; i < nFiles && pr.ok(); ++i) {
        FileEntry entry;
        std::uint8_t type;
        std::uint32_t size;
        if (!pr.str(entry.path) || !pr.u8(type) || !pr.u32(size) ||
            !pr.raw(entry.bytes, size)) {
            return err(Stage::Filesystem, ErrorCode::Truncated,
                       "malformed file entry");
        }
        if (type > static_cast<std::uint8_t>(FileType::Other)) {
            return err(Stage::Filesystem, ErrorCode::Corrupt,
                       "unknown file type");
        }
        entry.type = static_cast<FileType>(type);
        image.filesystem.addFile(std::move(entry));
    }
    if (!pr.ok()) {
        return err(Stage::Filesystem, ErrorCode::Truncated,
                   "truncated file table");
    }

    return R::ok(std::move(image));
}

} // namespace fits::fw
