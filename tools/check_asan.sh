#!/bin/sh
# Build the test suite under AddressSanitizer (+ UBSan, via the
# FITS_SANITIZE=address toolchain flags) and run the full suite. Any
# heap error, overflow, or leak fails the run.
#
# Usage: tools/check_asan.sh [build-dir]   (default: build-asan)
set -e

. "$(dirname "$0")/lib.sh"
BUILD=${1:-"$FITS_ROOT/build-asan"}

fits_sanitized_tests "$BUILD" address

ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" FITS_JOBS=4 \
    "$BUILD/tests/fits_tests"

# Second pass: the chaos fault-injection sweep and the corruption
# fuzzers (truncated / bit-flipped containers) specifically probe the
# decoder bounds checks that ASan is best at catching.
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" FITS_JOBS=4 \
    "$BUILD/tests/fits_tests" \
    --gtest_filter='ChaosTest.*:Corruption.*:Fbin.RejectsEveryTruncation:Fbin.SurvivesRandomByteFlips'

echo "asan: no memory errors detected"
