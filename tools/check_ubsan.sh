#!/bin/sh
# Build the test suite under UndefinedBehaviorSanitizer and run the
# suites most likely to hit UB on adversarial input: the corruption /
# truncation fuzzers, the chaos fault-injection sweep, and the binary
# and firmware container decoders. Any UB report aborts the run
# (-fno-sanitize-recover=all).
#
# Usage: tools/check_ubsan.sh [build-dir]   (default: build-ubsan)
set -e

ROOT=$(cd "$(dirname "$0")/.." && pwd)
BUILD=${1:-"$ROOT/build-ubsan"}

cmake -B "$BUILD" -S "$ROOT" -DFITS_SANITIZE=undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" --target fits_tests -j "$(nproc)"

UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" FITS_JOBS=4 \
    "$BUILD/tests/fits_tests" \
    --gtest_filter='ChaosTest.*:Deadline.*:Corruption.*:Fbin.*:ByteBuf.*:Fwimg.*'

echo "ubsan: no undefined behavior detected"
