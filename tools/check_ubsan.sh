#!/bin/sh
# Build the test suite under UndefinedBehaviorSanitizer and run the
# suites most likely to hit UB on adversarial input: the corruption /
# truncation fuzzers, the chaos fault-injection sweep, the binary and
# firmware container decoders, and the serve wire codec (hostile
# frames). Any UB report aborts the run (-fno-sanitize-recover=all).
#
# Usage: tools/check_ubsan.sh [build-dir]   (default: build-ubsan)
set -e

. "$(dirname "$0")/lib.sh"
BUILD=${1:-"$FITS_ROOT/build-ubsan"}

fits_sanitized_tests "$BUILD" undefined

UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" FITS_JOBS=4 \
    "$BUILD/tests/fits_tests" \
    --gtest_filter='ChaosTest.*:Deadline.*:Corruption.*:Fbin.*:ByteBuf.*:Fwimg.*:ServeWire.*'

echo "ubsan: no undefined behavior detected"
