/**
 * @file
 * `fits` — command-line driver over the library, for working with
 * firmware images on disk:
 *
 *   fits gen <out.fwimg> [--vendor V] [--seed N] [--keep-symbols]
 *       Generate a synthetic firmware sample (plus a ground-truth
 *       sidecar <out.fwimg.truth> for scoring).
 *   fits info <image.fwimg>
 *       Unpack and describe: file system, selected network binary,
 *       imports, anchors.
 *   fits rank <image.fwimg> [--top N] [--use-symbols]
 *       Run the FITS pipeline and print the ITS ranking.
 *   fits taint <image.fwimg> [--engine sta|karonte] [--its ADDR]...
 *       Run a taint engine with the classical sources plus any given
 *       intermediate sources and print the alerts.
 *   fits corpus [--jobs N] [--taint] [--dir DIR]
 *               [--metrics-out FILE] [--no-cache]
 *       Evaluate the standard 59-sample corpus in parallel (per-vendor
 *       precision; with --taint also the four engine configurations,
 *       from one shared analysis pass per sample). --dir evaluates
 *       every *.fwimg under DIR instead of the synthetic corpus;
 *       --metrics-out enables the fits::obs registry and writes its
 *       JSON snapshot after the run; --no-cache disables the analysis
 *       cache (results are identical either way — set FITS_CACHE_DIR
 *       to persist the cache across invocations). Exits non-zero when
 *       every sample fails.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/program_analysis.hh"
#include "cache/cache.hh"
#include "chaos/chaos.hh"
#include "core/anchors.hh"
#include "core/pipeline.hh"
#include "eval/corpus_runner.hh"
#include "eval/tables.hh"
#include "firmware/fwimg.hh"
#include "firmware/select.hh"
#include "ir/printer.hh"
#include "obs/metrics.hh"
#include "support/strings.hh"
#include "synth/firmware_gen.hh"
#include "taint/karonte.hh"
#include "taint/sta.hh"

namespace {

using namespace fits;

int
usage()
{
    std::fprintf(
        stderr,
        "usage:\n"
        "  fits gen <out.fwimg> [--vendor NETGEAR|D-Link|TP-Link|"
        "Tenda|Cisco]\n"
        "           [--seed N] [--keep-symbols]\n"
        "  fits info <image.fwimg>\n"
        "  fits rank <image.fwimg> [--top N] [--use-symbols]\n"
        "  fits taint <image.fwimg> [--engine sta|karonte] "
        "[--its ADDR]...\n"
        "  fits disasm <image.fwimg> <function-addr>\n"
        "  fits score <image.fwimg>   (needs <image>.truth sidecar)\n"
        "  fits corpus [--jobs N] [--taint] [--dir DIR] "
        "[--metrics-out FILE] [--no-cache]\n"
        "              (FITS_JOBS also sets N; FITS_CACHE_DIR "
        "persists the analysis cache;\n"
        "              exits 1 when every sample fails)\n"
        "  fits faults   (list fault-injection sites; arm with "
        "FITS_FAULTS=<spec>[:<seed>])\n"
        "env: FITS_STAGE_TIMEOUT_MS bounds each cooperative pipeline "
        "stage\n");
    return 2;
}

int
cmdFaults()
{
    std::printf("fault-injection sites (arm with "
                "FITS_FAULTS=<rules>[:<seed>], e.g.\n"
                "FITS_FAULTS='unpack.*@25,taint.sta:7'; rules are "
                "site[@percent][#max-fires],\n"
                "'*' is a trailing glob):\n\n");
    std::printf("  %-16s %-10s %s\n", "site", "stage", "effect");
    for (const auto &site : chaos::knownSites()) {
        std::printf("  %-16s %-10s %s\n", site.name,
                    support::stageName(site.stage), site.description);
    }
    return 0;
}

bool
readFile(const std::string &path, std::vector<std::uint8_t> &bytes)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    return true;
}

/** Read an image argument, or print WHY it cannot be read (missing,
 * a directory, unreadable) to stderr and return false. */
bool
readImageArg(const std::string &path, std::vector<std::uint8_t> &bytes)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    const fs::file_status st = fs::status(path, ec);
    if (ec || st.type() == fs::file_type::not_found) {
        std::fprintf(stderr, "cannot read %s: no such file\n",
                     path.c_str());
        return false;
    }
    if (st.type() == fs::file_type::directory) {
        std::fprintf(stderr,
                     "cannot read %s: is a directory "
                     "(expected a .fwimg file)\n",
                     path.c_str());
        return false;
    }
    if (!readFile(path, bytes)) {
        std::fprintf(stderr, "cannot read %s: open failed "
                             "(permissions?)\n",
                     path.c_str());
        return false;
    }
    return true;
}

bool
writeFile(const std::string &path,
          const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(out);
}

synth::VendorProfile
profileByName(const std::string &vendor)
{
    if (vendor == "D-Link")
        return synth::dlinkProfile();
    if (vendor == "TP-Link")
        return synth::tplinkProfile();
    if (vendor == "Tenda")
        return synth::tendaProfile();
    if (vendor == "Cisco")
        return synth::ciscoProfile();
    return synth::netgearProfile();
}

int
cmdGen(int argc, char **argv)
{
    if (argc < 1)
        return usage();
    const std::string out = argv[0];
    std::string vendor = "NETGEAR";
    std::uint64_t seed = 1;
    bool keepSymbols = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--vendor" && i + 1 < argc) {
            vendor = argv[++i];
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--keep-symbols") {
            keepSymbols = true;
        } else {
            return usage();
        }
    }

    synth::SampleSpec spec;
    spec.profile = profileByName(vendor);
    spec.product = spec.profile.series.front();
    spec.version = support::format("V1.0.%llu",
                                   static_cast<unsigned long long>(
                                       seed % 100));
    spec.name = spec.product + "-" + spec.version;
    spec.seed = seed;
    spec.keepSymbols = keepSymbols;

    const auto firmware = synth::generateFirmware(spec);
    if (!writeFile(out, firmware.bytes)) {
        std::fprintf(stderr, "cannot write %s\n", out.c_str());
        return 1;
    }

    // Ground-truth sidecar for scoring tools.
    std::ofstream truth(out + ".truth");
    truth << "# ground truth for " << spec.name << "\n";
    for (ir::Addr its : firmware.truth.itsFunctions)
        truth << "its " << support::hex(its) << "\n";
    for (const auto &site : firmware.truth.sinkSites) {
        truth << "sink " << support::hex(site.addr) << " "
              << synth::siteClassName(site.cls) << " "
              << synth::flowKindName(site.flow) << " "
              << site.sinkName << "\n";
    }

    std::printf("wrote %s (%zu bytes, %s %s, %zu planted bugs) and "
                "%s.truth\n",
                out.c_str(), firmware.bytes.size(), vendor.c_str(),
                spec.name.c_str(), firmware.truth.bugCount(),
                out.c_str());
    return 0;
}

int
cmdInfo(const std::string &path)
{
    std::vector<std::uint8_t> bytes;
    if (!readImageArg(path, bytes))
        return 1;
    auto unpacked = fw::unpackFirmware(bytes);
    if (!unpacked) {
        std::fprintf(stderr, "unpack failed: %s\n",
                     unpacked.errorMessage().c_str());
        return 1;
    }
    const auto &image = unpacked.value();
    std::printf("vendor:  %s\nproduct: %s %s\nencoding: %s\n",
                image.info.vendor.c_str(),
                image.info.product.c_str(),
                image.info.version.c_str(),
                fw::encodingName(image.info.encoding));
    std::printf("file system (%zu files, %zu bytes):\n",
                image.filesystem.size(),
                image.filesystem.totalBytes());
    for (const auto &file : image.filesystem.files()) {
        std::printf("  %-24s %-10s %7zu bytes\n", file.path.c_str(),
                    fw::fileTypeName(file.type), file.bytes.size());
    }

    auto target = fw::selectAnalysisTarget(image.filesystem);
    if (!target) {
        std::printf("no analyzable network binary: %s\n",
                    target.errorMessage().c_str());
        return 0;
    }
    const auto &main = *target.value().main;
    std::printf("\nnetwork binary: %s (%s, %zu functions, "
                "stripped: %s)\n",
                main.name.c_str(), bin::archName(main.arch),
                main.program.size(), main.stripped ? "yes" : "no");
    std::printf("imports (%zu):", main.imports.size());
    for (const auto &imp : main.imports) {
        std::printf(" %s%s", imp.name.c_str(),
                    core::isAnchorName(imp.name) ? "*" : "");
    }
    std::printf("   (* = anchor)\n");
    return 0;
}

int
cmdRank(const std::string &path, int argc, char **argv)
{
    std::size_t top = 10;
    core::PipelineConfig config;
    // Repeated ranks of the same image are served from the cache
    // (persistently so under FITS_CACHE_DIR); the ranking is
    // bit-identical either way.
    config.behaviorCache = true;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--top" && i + 1 < argc) {
            top = std::strtoul(argv[++i], nullptr, 0);
        } else if (arg == "--use-symbols") {
            config.infer.useSymbolNames = true;
        } else {
            return usage();
        }
    }

    std::vector<std::uint8_t> bytes;
    if (!readImageArg(path, bytes))
        return 1;
    const core::FitsPipeline pipeline(config);
    const auto result = pipeline.run(bytes);
    if (!result.ok) {
        std::fprintf(stderr, "pipeline failed: %s\n",
                     result.error.c_str());
        return 1;
    }
    std::printf("analyzed %s: %zu functions in %.1f ms "
                "(%zu candidates after clustering)\n\n",
                result.binaryName.c_str(), result.numFunctions,
                result.timings.totalMs(),
                result.inference.numCandidates);
    for (std::size_t i = 0;
         i < top && i < result.inference.ranking.size(); ++i) {
        const auto &rf = result.inference.ranking[i];
        std::printf("#%-3zu %-12s score %.4f%s%s\n", i + 1,
                    support::hex(rf.entry).c_str(), rf.score,
                    rf.name.empty() ? "" : "  ",
                    rf.name.c_str());
    }
    return 0;
}

int
cmdTaint(const std::string &path, int argc, char **argv)
{
    std::string engine = "sta";
    std::vector<ir::Addr> itsAddrs;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--engine" && i + 1 < argc) {
            engine = argv[++i];
        } else if (arg == "--its" && i + 1 < argc) {
            itsAddrs.push_back(
                std::strtoull(argv[++i], nullptr, 0));
        } else {
            return usage();
        }
    }
    if (engine != "sta" && engine != "karonte")
        return usage();

    std::vector<std::uint8_t> bytes;
    if (!readImageArg(path, bytes))
        return 1;
    auto unpacked = fw::unpackFirmware(bytes);
    if (!unpacked) {
        std::fprintf(stderr, "unpack failed: %s\n",
                     unpacked.errorMessage().c_str());
        return 1;
    }
    auto target = fw::selectAnalysisTarget(unpacked.value().filesystem);
    if (!target) {
        std::fprintf(stderr, "selection failed: %s\n",
                     target.errorMessage().c_str());
        return 1;
    }
    const analysis::LinkedProgram linked(*target.value().main,
                                         target.value().libraries);
    const auto pa = analysis::ProgramAnalysis::analyze(linked);

    auto sources = taint::classicalTaintSources();
    for (ir::Addr addr : itsAddrs)
        sources.push_back(
            taint::TaintSource::its(addr, support::hex(addr)));

    taint::TaintReport report;
    if (engine == "sta") {
        report = taint::StaEngine().run(pa, sources);
    } else {
        report = taint::KaronteEngine().run(pa, sources);
    }
    const auto alerts =
        itsAddrs.empty() ? report.alerts : report.filteredAlerts();

    std::printf("%s: %zu alerts in %.1f ms (%zu sources, %zu of "
                "them ITSs%s)\n\n",
                engine.c_str(), alerts.size(), report.analysisMs,
                sources.size(), itsAddrs.size(),
                itsAddrs.empty() ? "" : "; system-data filtered");
    for (const auto &alert : alerts) {
        std::printf("  %-8s at %-10s in fn %-10s [%s]\n",
                    alert.sinkName.c_str(),
                    support::hex(alert.sinkSite).c_str(),
                    support::hex(alert.inFunction).c_str(),
                    taint::vulnClassName(alert.vclass));
    }
    return 0;
}

int
cmdScore(const std::string &path)
{
    std::vector<std::uint8_t> bytes;
    if (!readImageArg(path, bytes))
        return 1;
    // Parse the ground-truth sidecar.
    std::ifstream truthIn(path + ".truth");
    if (!truthIn) {
        std::fprintf(stderr, "cannot read %s.truth\n", path.c_str());
        return 1;
    }
    std::vector<ir::Addr> itsAddrs;
    std::vector<std::pair<ir::Addr, bool>> sites; // (addr, isBug)
    std::string line;
    while (std::getline(truthIn, line)) {
        const auto fields = support::split(line, ' ');
        if (fields.size() >= 2 && fields[0] == "its") {
            itsAddrs.push_back(
                std::strtoull(fields[1].c_str(), nullptr, 0));
        } else if (fields.size() >= 3 && fields[0] == "sink") {
            sites.emplace_back(
                std::strtoull(fields[1].c_str(), nullptr, 0),
                fields[2] == "real-bug");
        }
    }

    const core::FitsPipeline pipeline;
    const auto result = pipeline.run(bytes);
    if (!result.ok) {
        std::fprintf(stderr, "pipeline failed: %s\n",
                     result.error.c_str());
        return 1;
    }

    // Rank of the first true ITS.
    int rank = -1;
    std::vector<taint::TaintSource> verified =
        taint::classicalTaintSources();
    for (std::size_t i = 0; i < result.inference.ranking.size();
         ++i) {
        const ir::Addr entry = result.inference.ranking[i].entry;
        const bool isIts =
            std::find(itsAddrs.begin(), itsAddrs.end(), entry) !=
            itsAddrs.end();
        if (isIts && rank < 0)
            rank = static_cast<int>(i) + 1;
        if (isIts && i < 3) {
            verified.push_back(
                taint::TaintSource::its(entry,
                                        support::hex(entry)));
        }
    }
    std::printf("ITS rank: %d (top-3 %s)\n", rank,
                rank >= 1 && rank <= 3 ? "hit" : "miss");

    // Taint with the verified top-3 ITSs; score against the sidecar.
    auto unpacked = fw::unpackFirmware(bytes);
    auto target =
        fw::selectAnalysisTarget(unpacked.value().filesystem);
    const analysis::LinkedProgram linked(*target.value().main,
                                         target.value().libraries);
    const auto pa = analysis::ProgramAnalysis::analyze(linked);
    const auto report = taint::StaEngine().run(pa, verified);
    const auto alerts = report.filteredAlerts();
    std::size_t tp = 0, fp = 0;
    for (const auto &alert : alerts) {
        bool bug = false;
        for (const auto &[addr, isBug] : sites) {
            if (addr == alert.sinkSite && isBug)
                bug = true;
        }
        bug ? ++tp : ++fp;
    }
    std::size_t plantedBugs = 0;
    for (const auto &[addr, isBug] : sites)
        plantedBugs += isBug ? 1 : 0;
    std::printf("STA-ITS: %zu alerts, %zu true positives, %zu false "
                "positives\n",
                alerts.size(), tp, fp);
    std::printf("planted bugs: %zu, recall %.0f%%\n", plantedBugs,
                plantedBugs == 0
                    ? 0.0
                    : 100.0 * static_cast<double>(tp) /
                          static_cast<double>(plantedBugs));
    return 0;
}

int
cmdDisasm(const std::string &path, const std::string &addrText)
{
    std::vector<std::uint8_t> bytes;
    if (!readImageArg(path, bytes))
        return 1;
    auto unpacked = fw::unpackFirmware(bytes);
    if (!unpacked) {
        std::fprintf(stderr, "unpack failed: %s\n",
                     unpacked.errorMessage().c_str());
        return 1;
    }
    auto target = fw::selectAnalysisTarget(unpacked.value().filesystem);
    if (!target) {
        std::fprintf(stderr, "selection failed: %s\n",
                     target.errorMessage().c_str());
        return 1;
    }
    const ir::Addr addr = std::strtoull(addrText.c_str(), nullptr, 0);
    const ir::Function *fn =
        target.value().main->program.functionAt(addr);
    if (fn == nullptr)
        fn = target.value().main->program.functionContaining(addr);
    if (fn == nullptr) {
        std::fprintf(stderr, "no function at %s\n",
                     support::hex(addr).c_str());
        return 1;
    }
    std::fputs(ir::printFunction(*fn).c_str(), stdout);
    return 0;
}

/** Load every *.fwimg under `dir` (sorted by path) as a corpus
 * sample. Files are analyzed as-is: the spec carries only the file
 * name for identity and the ground truth stays empty. Sets *dirOk to
 * false (with a message on stderr) when `dir` is missing, not a
 * directory, or unlistable. */
std::vector<synth::GeneratedFirmware>
loadCorpusDir(const std::string &dir, bool *dirOk)
{
    namespace fs = std::filesystem;
    *dirOk = true;

    std::error_code ec;
    const fs::file_status st = fs::status(dir, ec);
    if (ec || st.type() == fs::file_type::not_found) {
        std::fprintf(stderr, "bad --dir %s: no such directory\n",
                     dir.c_str());
        *dirOk = false;
        return {};
    }
    if (st.type() != fs::file_type::directory) {
        std::fprintf(stderr, "bad --dir %s: not a directory\n",
                     dir.c_str());
        *dirOk = false;
        return {};
    }

    std::vector<fs::path> paths;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".fwimg")
            paths.push_back(entry.path());
    }
    if (ec) {
        std::fprintf(stderr, "bad --dir %s: %s\n", dir.c_str(),
                     ec.message().c_str());
        *dirOk = false;
        return {};
    }
    std::sort(paths.begin(), paths.end());

    std::vector<synth::GeneratedFirmware> corpus;
    corpus.reserve(paths.size());
    for (const auto &path : paths) {
        synth::GeneratedFirmware fw;
        fw.spec.name = path.filename().string();
        if (!readFile(path.string(), fw.bytes)) {
            std::fprintf(stderr, "cannot read %s, skipping\n",
                         path.string().c_str());
            continue;
        }
        corpus.push_back(std::move(fw));
    }
    return corpus;
}

int
cmdCorpus(int argc, char **argv)
{
    std::size_t jobs = 0;
    bool withTaint = false;
    bool useCache = true;
    std::string corpusDir;
    std::string metricsOut;
    for (int i = 0; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--jobs" && i + 1 < argc) {
            jobs = std::strtoul(argv[++i], nullptr, 0);
        } else if (arg == "--taint") {
            withTaint = true;
        } else if (arg == "--no-cache") {
            useCache = false;
        } else if (arg == "--dir" && i + 1 < argc) {
            corpusDir = argv[++i];
        } else if (arg == "--metrics-out" && i + 1 < argc) {
            metricsOut = argv[++i];
        } else {
            return usage();
        }
    }

    if (!metricsOut.empty())
        obs::setEnabled(true);
    if (!useCache) {
        // Turn off every tier, including the in-process one the
        // pipeline uses for per-image analyses.
        cache::Options off;
        off.memory = false;
        off.disk = false;
        cache::configure(off);
    }
    cache::resetStats();

    eval::CorpusRunner::Config config;
    config.jobs = jobs;
    config.cache = useCache;
    const eval::CorpusRunner runner(config);
    bool dirOk = true;
    const auto corpus = corpusDir.empty()
                            ? synth::generateStandardCorpus()
                            : loadCorpusDir(corpusDir, &dirOk);
    if (!dirOk)
        return 1;
    if (corpus.empty()) {
        std::fprintf(stderr, "no corpus samples%s%s\n",
                     corpusDir.empty() ? "" : " under ",
                     corpusDir.c_str());
        return 1;
    }
    std::printf("evaluating %zu samples with %zu worker threads...\n\n",
                corpus.size(), runner.jobs());

    const auto t0 = std::chrono::steady_clock::now();
    std::vector<eval::CorpusRunner::FullOutcome> outcomes;
    if (withTaint) {
        outcomes = runner.runFull(corpus);
    } else {
        auto inference = runner.runInference(corpus);
        outcomes.resize(inference.size());
        for (std::size_t i = 0; i < inference.size(); ++i)
            outcomes[i].inference = std::move(inference[i]);
    }
    const double wallMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    // Per-vendor inference precision.
    const std::vector<std::string> vendorOrder = {
        "NETGEAR", "D-Link", "TP-Link", "Tenda", "Cisco"};
    eval::TablePrinter table(
        {"Vendor", "#FW", "Top-1", "Top-2", "Top-3"});
    eval::PrecisionStats overall;
    for (const auto &vendor : vendorOrder) {
        eval::PrecisionStats stats;
        for (std::size_t i = 0; i < corpus.size(); ++i) {
            if (corpus[i].spec.profile.vendor != vendor)
                continue;
            const auto &outcome = outcomes[i].inference;
            stats.addRank(outcome.ok ? outcome.firstItsRank : -1);
        }
        overall.total += stats.total;
        overall.top1 += stats.top1;
        overall.top2 += stats.top2;
        overall.top3 += stats.top3;
        table.addRow({vendor, std::to_string(stats.total),
                      eval::percent(stats.p1()),
                      eval::percent(stats.p2()),
                      eval::percent(stats.p3())});
    }
    table.addSeparator();
    table.addRow({"Overall", std::to_string(overall.total),
                  eval::percent(overall.p1()),
                  eval::percent(overall.p2()),
                  eval::percent(overall.p3())});
    table.print();

    if (withTaint) {
        eval::EngineStats karonte, karonteIts, sta, staIts;
        int analyzed = 0;
        for (const auto &outcome : outcomes) {
            if (!outcome.taint.ok)
                continue;
            ++analyzed;
            karonte += outcome.taint.karonte;
            karonteIts += outcome.taint.karonteIts;
            sta += outcome.taint.sta;
            staIts += outcome.taint.staIts;
        }
        std::printf("\ntaint engines (%d analyzable samples, one "
                    "shared analysis per sample):\n",
                    analyzed);
        eval::TablePrinter engines(
            {"", "Karonte", "Karonte-ITS", "STA", "STA-ITS"});
        engines.addRow({"Alerts", std::to_string(karonte.alerts),
                        std::to_string(karonteIts.alerts),
                        std::to_string(sta.alerts),
                        std::to_string(staIts.alerts)});
        engines.addRow({"Bugs", std::to_string(karonte.bugs),
                        std::to_string(karonteIts.bugs),
                        std::to_string(sta.bugs),
                        std::to_string(staIts.bugs)});
        engines.addRow(
            {"FP rate", eval::percent(karonte.falsePositiveRate()),
             eval::percent(karonteIts.falsePositiveRate()),
             eval::percent(sta.falsePositiveRate()),
             eval::percent(staIts.falsePositiveRate())});
        engines.print();
    }

    // Failure accounting: every sample whose pipeline (or taint
    // batch) errored, identified by its spec. All-samples-failed is a
    // hard error — the run produced no usable numbers. Degraded
    // samples (partial results: a missing library, an expired stage
    // budget) are listed separately and are not failures.
    std::size_t failed = 0;
    std::size_t degraded = 0;
    std::size_t retried = 0;
    for (const auto &outcome : outcomes) {
        const std::string &name = outcome.inference.spec.name.empty()
                                      ? outcome.taint.spec.name
                                      : outcome.inference.spec.name;
        if (outcome.inference.retried || outcome.taint.retried)
            ++retried;
        if (outcome.inference.degraded ||
            (withTaint && outcome.taint.degraded)) {
            ++degraded;
            const auto &issues = outcome.inference.degraded
                                     ? outcome.inference.issues
                                     : outcome.taint.issues;
            std::string why;
            for (const auto &issue : issues) {
                if (!why.empty())
                    why += "; ";
                why += issue.toString();
            }
            std::fprintf(stderr, "sample degraded: %s: %s\n",
                         name.empty() ? "<unnamed>" : name.c_str(),
                         why.empty() ? "partial result" : why.c_str());
        }
        const bool bad = !outcome.inference.ok ||
                         (withTaint && !outcome.taint.ok);
        if (!bad)
            continue;
        ++failed;
        const std::string &error = outcome.inference.error.empty()
                                       ? outcome.taint.error
                                       : outcome.inference.error;
        std::fprintf(stderr, "sample failed: %s: %s\n",
                     name.empty() ? "<unnamed>" : name.c_str(),
                     error.empty() ? "unknown error" : error.c_str());
    }
    std::printf("\nfailed samples: %zu/%zu\n", failed,
                outcomes.size());
    if (degraded > 0 || retried > 0) {
        std::printf("degraded samples: %zu/%zu (%zu retried)\n",
                    degraded, outcomes.size(), retried);
    }
    std::printf("wall clock: %.1f ms with %zu jobs\n", wallMs,
                runner.jobs());

    // Cache effectiveness: a memory miss that the disk tier served
    // still counts as a hit overall.
    const cache::Stats cstats = cache::stats();
    const cache::Options copts = cache::options();
    const std::uint64_t hits = cstats.hits + cstats.diskHits;
    const std::uint64_t misses =
        copts.memory
            ? cstats.misses - std::min(cstats.misses, cstats.diskHits)
            : cstats.diskMisses;
    const char *tier = copts.memory && copts.disk ? "mem+disk"
                       : copts.disk               ? "disk"
                       : copts.memory             ? "mem"
                                                  : "off";
    std::printf("cache: %llu hits / %llu misses, %.1f MiB, "
                "tier=%s\n",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<double>(cstats.bytes) / (1024.0 * 1024.0),
                tier);

    if (!metricsOut.empty()) {
        if (obs::Registry::instance().exportToFile(metricsOut)) {
            std::printf("metrics written to %s\n", metricsOut.c_str());
        } else {
            std::fprintf(stderr, "cannot write metrics to %s\n",
                         metricsOut.c_str());
            return 1;
        }
    }

    return failed == outcomes.size() ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    if (command == "corpus")
        return cmdCorpus(argc - 2, argv + 2);
    if (command == "faults")
        return cmdFaults();
    if (argc < 3)
        return usage();
    if (command == "gen")
        return cmdGen(argc - 2, argv + 2);
    if (command == "info")
        return cmdInfo(argv[2]);
    if (command == "rank")
        return cmdRank(argv[2], argc - 3, argv + 3);
    if (command == "taint")
        return cmdTaint(argv[2], argc - 3, argv + 3);
    if (command == "disasm" && argc >= 4)
        return cmdDisasm(argv[2], argv[3]);
    if (command == "score")
        return cmdScore(argv[2]);
    return usage();
}
